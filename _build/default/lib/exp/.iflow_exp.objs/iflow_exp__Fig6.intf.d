lib/exp/fig6.mli: Format Iflow_stats Scale
