(* Query-planner benchmark: exact closed-form answers vs the MH
   sampler on the paper's timing substrate (~6K nodes) — the PR 8
   acceptance measurement.

   Three measurements on a 6000-node random tree (every flow query is
   exact-eligible):
   - exact: per-query latency through Engine.query with the planner on
     and the cache off — the full route (plan + cone + certify +
     closed form) paid on every ask;
   - mh: per-query latency with the planner off, on an MH config that
     actually mixes at this edge count (thinning on the order of the
     edge count — a proposal touches one edge in ~6000, so anything
     less reads the same coin state over and over);
   - agreement: the exact answer must sit within 5 MCSE of the MH
     estimate on every timed query.

   Plus the cost of failing: on a dense G(n,m) graph every query is
   refused (unsound joins), and the planner's refusal latency is the
   pure overhead the MH path inherits from this PR.

   Results go to BENCH_PR8.json (committed from a full run). --quick
   (or IFLOW_BENCH_QUICK=1) shortens the run for CI. *)

module Rng = Iflow_stats.Rng
module Gen = Iflow_graph.Gen
module Digraph = Iflow_graph.Digraph
module Icm = Iflow_core.Icm
module Engine = Iflow_engine.Engine
module Query = Iflow_engine.Query
module Planner = Iflow_plan.Planner
module Clock = Iflow_obs.Clock

let quick =
  Array.exists (fun a -> a = "--quick") Sys.argv
  || Sys.getenv_opt "IFLOW_BENCH_QUICK" <> None

let nodes = 6000
let n_exact_queries = if quick then 50 else 500
let n_mh_queries = if quick then 2 else 10

let timed f =
  let t0 = Clock.now_ns () in
  let x = f () in
  (x, Clock.seconds_of_ns (Clock.elapsed_ns t0))

(* random tree rooted at 0: node v >= 1 gets one parent among 0..v-1 *)
let tree_icm rng ~nodes =
  let edges = Array.init (nodes - 1) (fun i -> (Rng.int rng (i + 1), i + 1)) in
  let g = Digraph.of_edges ~nodes (Array.to_list edges) in
  Icm.create g
    (Array.init (nodes - 1) (fun _ -> 0.2 +. (0.75 *. Rng.uniform rng)))

let () =
  let rng = Rng.create 20120402 in
  let icm = tree_icm rng ~nodes in
  Printf.printf "plan bench: %d-node tree (quick=%b)\n%!" nodes quick;

  (* depth-2/3 sinks so the MH estimates are comfortably away from 0 *)
  let first_child v =
    let c = ref None in
    Digraph.iter_out (Icm.graph icm) v (fun e ->
        if !c = None then c := Some (Digraph.edge_dst (Icm.graph icm) e));
    !c
  in
  let shallow_sinks =
    List.filter_map
      (fun v -> Option.bind (first_child v) first_child)
      (List.init 400 (fun i -> i))
  in
  let mh_sinks =
    List.filteri (fun i _ -> i < n_mh_queries) shallow_sinks
  in
  let exact_sinks =
    List.init n_exact_queries (fun _ -> 1 + Rng.int rng (nodes - 1))
  in

  (* no cache: every ask pays the full route *)
  let exact_engine =
    Engine.create
      ~config:{ Engine.default_config with Engine.cache_capacity = 0 }
      ~seed:7 icm
  in
  let exact_dt_of sinks =
    let (), dt =
      timed (fun () ->
          List.iter
            (fun dst ->
              match
                (Engine.query exact_engine (Query.flow ~src:0 ~dst ()))
                  .Engine.plan
              with
              | Engine.Plan_exact _ -> ()
              | Engine.Plan_mh _ ->
                Printf.eprintf "FATAL: tree query 0 ~> %d not exact\n%!" dst;
                exit 1)
            sinks)
    in
    dt
  in
  (* warm up code paths once, then measure *)
  ignore (exact_dt_of [ List.hd exact_sinks ]);
  let exact_dt = exact_dt_of exact_sinks in
  let exact_mean_s = exact_dt /. float_of_int n_exact_queries in
  Printf.printf "  exact:     %10.1f queries/s (%.3f ms/query, %d queries)\n%!"
    (1.0 /. exact_mean_s) (1000.0 *. exact_mean_s) n_exact_queries;

  (* MH on the same model, planner off, thinning matched to edge count *)
  let mh_config =
    {
      Engine.default_config with
      Engine.planner = false;
      cache_capacity = 0;
      chains = 4;
      burn_in = 30_000;
      thin = 3_000;
      round_samples = 100;
      max_samples = (if quick then 400 else 600);
      rhat_target = 1.2;
      mcse_target = 0.005;
    }
  in
  let mh_engine = Engine.create ~config:mh_config ~seed:7 icm in
  let mh_results, mh_dt =
    timed (fun () ->
        List.map
          (fun dst -> (dst, Engine.query mh_engine (Query.flow ~src:0 ~dst ())))
          mh_sinks)
  in
  let mh_mean_s = mh_dt /. float_of_int n_mh_queries in
  Printf.printf "  mh:        %10.1f queries/s (%.1f ms/query, %d queries)\n%!"
    (1.0 /. mh_mean_s) (1000.0 *. mh_mean_s) n_mh_queries;

  (* agreement within the sampler's own error bar *)
  let agreed =
    List.for_all
      (fun (dst, (mh : Engine.result)) ->
        let exact = Engine.query exact_engine (Query.flow ~src:0 ~dst ()) in
        let tol = (5.0 *. mh.Engine.mcse) +. 1e-9 in
        let ok = Float.abs (exact.Engine.estimate -. mh.Engine.estimate) <= tol in
        if not ok then
          Printf.eprintf "DISAGREE 0 ~> %d: exact %.6f vs mh %.6f (mcse %.6f)\n%!"
            dst exact.Engine.estimate mh.Engine.estimate mh.Engine.mcse;
        ok)
      mh_results
  in
  if not agreed then exit 1;
  Printf.printf "  agreement: every exact answer within 5 MCSE of MH\n%!";

  let speedup = mh_mean_s /. exact_mean_s in
  Printf.printf "  speedup:   %10.0fx per exact-eligible query\n%!" speedup;

  (* refusal overhead: a dense graph where certification always fails *)
  let dense =
    let rng = Rng.create 7 in
    let g = Gen.gnm rng ~nodes ~edges:(4 * nodes) in
    Icm.create g
      (Array.init (4 * nodes) (fun _ -> 0.05 +. (0.9 *. Rng.uniform rng)))
  in
  let n_refusals = if quick then 50 else 500 in
  let refusal_targets =
    List.init n_refusals (fun _ ->
        (Rng.int rng nodes, Rng.int rng nodes))
  in
  let refused, refusal_dt =
    timed (fun () ->
        List.fold_left
          (fun acc (src, dst) ->
            if src = dst then acc
            else
              match Planner.plan dense ~targets:[ (src, dst) ] ~conditions:[] with
              | Error _ -> acc + 1
              | Ok _ -> acc)
          0 refusal_targets)
  in
  let refusal_mean_us = 1e6 *. refusal_dt /. float_of_int n_refusals in
  Printf.printf
    "  refusal:   %10.1f us/query planning overhead on unsound graphs (%d/%d \
     refused)\n\
     %!"
    refusal_mean_us refused n_refusals;

  let json =
    Printf.sprintf
      "{\n\
      \  \"bench\": \"query_planner\",\n\
      \  \"pr\": 8,\n\
      \  \"graph\": {\"nodes\": %d, \"edges\": %d, \"generator\": \
       \"random_tree\", \"seed\": 20120402},\n\
      \  \"quick\": %b,\n\
      \  \"measured\": {\n\
      \    \"exact_queries_per_sec\": %.1f,\n\
      \    \"exact_mean_ms\": %.4f,\n\
      \    \"mh_queries_per_sec\": %.2f,\n\
      \    \"mh_mean_ms\": %.1f,\n\
      \    \"speedup_exact_vs_mh\": %.0f,\n\
      \    \"exact_within_5_mcse_of_mh\": %b,\n\
      \    \"refusal_overhead_us\": %.1f,\n\
      \    \"refusals_checked\": %d\n\
      \  }\n\
       }\n"
      nodes (Icm.n_edges icm) quick (1.0 /. exact_mean_s)
      (1000.0 *. exact_mean_s) (1.0 /. mh_mean_s) (1000.0 *. mh_mean_s)
      speedup agreed refusal_mean_us n_refusals
  in
  let oc = open_out "BENCH_PR8.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_PR8.json\n%!";
  Bench_obs.write_metrics_out ()
