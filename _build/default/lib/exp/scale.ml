type t = Quick | Full

let from_env () =
  match Sys.getenv_opt "IFLOW_FULL" with
  | None | Some "" | Some "0" -> Quick
  | Some _ -> Full

let pick t ~quick ~full = match t with Quick -> quick | Full -> full

let mcmc t =
  pick t
    ~quick:{ Iflow_mcmc.Estimator.burn_in = 400; thin = 5; samples = 400 }
    ~full:{ Iflow_mcmc.Estimator.burn_in = 2000; thin = 20; samples = 2000 }

let pp ppf t =
  Format.pp_print_string ppf (match t with Quick -> "quick" | Full -> "full")
