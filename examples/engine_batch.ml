(* Batch flow queries through the parallel query engine.

   Scenario: a security team holds one trained model of how documents
   move through an organisation and needs many leak-risk numbers at
   once — every (workstation, external sink) pair, plus a few
   conditional "given the mail gateway already has it" variants. The
   engine answers the whole batch with multi-chain MH, stops each query
   adaptively once split-R-hat and the Monte-Carlo standard error pass,
   dedups repeats, and memoises results in its LRU cache. *)

module Gen = Iflow_graph.Gen
module Icm = Iflow_core.Icm
module Rng = Iflow_stats.Rng
module Engine = Iflow_engine.Engine
module Query = Iflow_engine.Query
module Lru = Iflow_engine.Lru

let () =
  let rng = Rng.create 2012 in
  let nodes = 60 in
  let g = Gen.preferential_attachment rng ~nodes ~mean_out_degree:3 in
  let m = Iflow_graph.Digraph.n_edges g in
  let icm = Icm.create g (Array.init m (fun _ -> 0.2 +. (0.7 *. Rng.uniform rng))) in

  let engine = Engine.create ~seed:7 icm in
  Printf.printf "model %s: %d nodes, %d edges; pool of %d domain(s)\n\n"
    (String.sub (Engine.digest engine) 0 8) nodes m (Engine.pool_size engine);

  (* risk of three workstations leaking to two external sinks — the
     latest-arriving nodes the graph can actually route to — plus the
     same queries again (dedup) and a conditional variant: "given the
     object already crossed workstation 0's first hop" *)
  let workstations = [ 0; 1; 2 ] in
  let sinks =
    List.filteri (fun i _ -> i < 2)
      (List.filter
         (fun dst ->
           List.for_all
             (fun src -> Iflow_graph.Traverse.reaches g ~src ~dst)
             workstations)
         (List.init (nodes - 3) (fun i -> nodes - 1 - i)))
  in
  let far_sink = List.hd sinks in
  let conditional =
    match Iflow_graph.Digraph.out_neighbours g 0 with
    | hop :: _ ->
      [ Query.flow ~conditions:[ (0, hop, true) ] ~src:0 ~dst:far_sink () ]
    | [] -> []
  in
  let queries =
    List.concat_map
      (fun src -> List.map (fun dst -> Query.flow ~src ~dst ()) sinks)
      workstations
    @ List.map (fun src -> Query.flow ~src ~dst:far_sink ()) workstations
    @ conditional
  in

  let results = Engine.query_all engine queries in
  Printf.printf "%-28s %10s %8s %8s %9s %7s\n" "query" "estimate" "rhat"
    "ess" "samples" "cached";
  List.iter2
    (fun q (r : Engine.result) ->
      Printf.printf "%-28s %10.5f %8.4f %8.0f %9d %7s\n"
        (Format.asprintf "%a" Query.pp q)
        r.Engine.estimate r.Engine.rhat r.Engine.ess r.Engine.total_samples
        (if r.Engine.cached then "yes" else "no"))
    queries results;

  Format.printf "\ncache: %a\n" Lru.pp_stats (Engine.cache_stats engine)
