lib/core/beta_icm.ml: Array Evidence Float Format Hashtbl Icm Iflow_graph Iflow_stats List
