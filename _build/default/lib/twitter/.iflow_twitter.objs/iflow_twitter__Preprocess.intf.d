lib/twitter/preprocess.mli: Hashtbl Iflow_core Iflow_graph Tweet
