(* Shared observability plumbing for the benchmark executables:
   [--metrics-out FILE] Prometheus dumps (scraped by the CI format
   check) and the merged BENCH_PR4.json that records metrics-on vs
   metrics-off throughput alongside an Obs metrics snapshot. Each bench
   owns one top-level key ("sampler", "stream") and rewrites only its
   own section, so the two executables can run in either order. *)

module Metrics = Iflow_obs.Metrics
module Prometheus = Iflow_obs.Prometheus
module Jsonl = Iflow_engine.Jsonl

let metrics_out_file () =
  let rec find = function
    | "--metrics-out" :: file :: _ -> Some file
    | _ :: tl -> find tl
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let write_metrics_out () =
  match metrics_out_file () with
  | None -> ()
  | Some file ->
    Prometheus.write_file Metrics.default file;
    Printf.printf "wrote %s\n%!" file

let snapshot () =
  match Jsonl.parse (Metrics.to_json_string Metrics.default) with
  | Ok v -> v
  | Error msg -> failwith ("Bench_obs.snapshot: bad metrics JSON: " ^ msg)

(* BENCH_PR4.json is committed, so pretty-print it: objects and mixed
   lists indent, scalar-only lists stay on one line. Scalars reuse
   [Jsonl.pp] so the output round-trips through [Jsonl.parse]. *)
let pretty v =
  let buf = Buffer.create 4096 in
  let scalar = function
    | Jsonl.Obj _ | Jsonl.List _ -> false
    | Jsonl.Null | Jsonl.Bool _ | Jsonl.Num _ | Jsonl.Str _ -> true
  in
  let rec go indent v =
    match v with
    | Jsonl.Obj [] -> Buffer.add_string buf "{}"
    | Jsonl.Obj kvs ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v') ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (String.make (indent + 2) ' ');
          Buffer.add_string buf (Format.asprintf "%a" Jsonl.pp (Jsonl.Str k));
          Buffer.add_string buf ": ";
          go (indent + 2) v')
        kvs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf '}'
    | Jsonl.List vs when vs = [] || List.for_all scalar vs ->
      Buffer.add_string buf (Format.asprintf "%a" Jsonl.pp v)
    | Jsonl.List vs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i v' ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (String.make (indent + 2) ' ');
          go (indent + 2) v')
        vs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf ']'
    | Jsonl.Null | Jsonl.Bool _ | Jsonl.Num _ | Jsonl.Str _ ->
      Buffer.add_string buf (Format.asprintf "%a" Jsonl.pp v)
  in
  go 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let bench_file = "BENCH_PR4.json"

let update_bench_json ~key section =
  let existing =
    if Sys.file_exists bench_file then begin
      let ic = open_in_bin bench_file in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Jsonl.parse s with Ok (Jsonl.Obj kvs) -> kvs | Ok _ | Error _ -> []
    end
    else []
  in
  let kvs =
    List.filter (fun (k, _) -> k <> key) existing @ [ (key, section) ]
  in
  (* stable order across runs: sort the top-level keys *)
  let kvs = List.sort (fun (a, _) (b, _) -> compare a b) kvs in
  let oc = open_out bench_file in
  output_string oc (pretty (Jsonl.Obj kvs));
  close_out oc;
  Printf.printf "updated %s (%S)\n%!" bench_file key
