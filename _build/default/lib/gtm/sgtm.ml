module Icm = Iflow_core.Icm
module Digraph = Iflow_graph.Digraph
module Rng = Iflow_stats.Rng

let influence icm ~node ~active =
  let g = Icm.graph icm in
  let survive =
    Digraph.fold_in g node ~init:1.0 ~f:(fun acc e ->
        if active.(Digraph.edge_src g e) then acc *. (1.0 -. Icm.prob icm e)
        else acc)
  in
  1.0 -. survive

let run rng icm ~sources =
  let n = Icm.n_nodes icm in
  let active = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Sgtm.run: source out of range";
      active.(v) <- true)
    sources;
  let threshold = Array.init n (fun _ -> Rng.uniform rng) in
  (* The active parent set only grows, so iterate to a fixpoint; each
     sweep activates any node whose current influence has crossed its
     threshold. *)
  let changed = ref true in
  while !changed do
    changed := false;
    for v = 0 to n - 1 do
      if (not active.(v)) && influence icm ~node:v ~active > threshold.(v)
      then begin
        active.(v) <- true;
        changed := true
      end
    done
  done;
  active

let activation_frequency rng icm ~sources ~runs =
  if runs <= 0 then invalid_arg "Sgtm.activation_frequency: runs <= 0";
  let n = Icm.n_nodes icm in
  let counts = Array.make n 0 in
  for _ = 1 to runs do
    let active = run rng icm ~sources in
    Array.iteri (fun v a -> if a then counts.(v) <- counts.(v) + 1) active
  done;
  Array.map (fun c -> float_of_int c /. float_of_int runs) counts
