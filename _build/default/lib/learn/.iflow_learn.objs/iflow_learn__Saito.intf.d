lib/learn/saito.mli: Iflow_core Iflow_graph Iflow_stats Trainer
