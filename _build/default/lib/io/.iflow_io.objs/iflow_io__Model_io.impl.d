lib/io/model_io.ml: Array Fun Iflow_core Iflow_graph Iflow_stats Iflow_twitter List Printf String
