(* Tests for the streaming ingestion subsystem (lib/stream) and the
   satellites it leans on: batched/in-place conjugate updates, model
   digests, v2 model files, and engine hot-swap.

   The acceptance criteria pinned here:
   - replay determinism: any batch size, and any checkpoint/restore
     split, reproduces the batch [train_attributed] posterior bit for
     bit, and a streamed engine answers queries exactly like a fresh
     engine built on the same final model and seed;
   - drift: an injected rate shift is flagged within a bounded number
     of trials, with zero false alarms on the stationary prefix;
   - interleavings of evidence and graph-change events match the
     functional fold over the same sequence (property test). *)

module Rng = Iflow_stats.Rng
module Beta = Iflow_stats.Dist.Beta
module Gen = Iflow_graph.Gen
module Digraph = Iflow_graph.Digraph
module Icm = Iflow_core.Icm
module Beta_icm = Iflow_core.Beta_icm
module Cascade = Iflow_core.Cascade
module Evidence = Iflow_core.Evidence
module Engine = Iflow_engine.Engine
module Query = Iflow_engine.Query
module Lru = Iflow_engine.Lru
module Model_io = Iflow_io.Model_io
module Event = Iflow_stream.Event
module Online = Iflow_stream.Online
module Drift = Iflow_stream.Drift
module Snapshot = Iflow_stream.Snapshot
module Runner = Iflow_stream.Runner

let qcheck tests =
  List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0 |])) tests

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_float msg a b = Alcotest.(check (float 0.0)) msg a b

let with_temp_file f =
  let path = Filename.temp_file "iflow_stream_test" ".bicm" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* a small substrate with its simulated event-log lines *)
let substrate seed ~events =
  let rng = Rng.create seed in
  let g = Gen.gnm rng ~nodes:30 ~edges:120 in
  let m = Digraph.n_edges g in
  let icm = Icm.create g (Array.init m (fun _ -> 0.1 +. (0.6 *. Rng.uniform rng))) in
  let objects =
    List.init events (fun _ ->
        Cascade.run rng icm ~sources:[ Rng.int rng (Digraph.n_nodes g) ])
  in
  let lines = List.map (fun o -> Event.to_line (Event.of_attributed g o)) objects in
  (g, objects, lines)

(* ---------- Event round-trip ---------- *)

let test_event_roundtrip () =
  let events =
    [
      Event.Attributed
        { sources = [ 0; 2 ]; nodes = [ 0; 2; 5 ]; edges = [ (0, 5); (2, 5) ] };
      Event.Trace { sources = [ 1 ]; times = [ (3, 1); (4, 2) ] };
      Event.Add_nodes { count = 3 };
      Event.Add_edges { edges = [ (1, 7); (2, 7) ]; prior = Beta.v 2.5 0.5 };
      Event.Remove_edges { edges = [ (0, 5) ] };
    ]
  in
  List.iter
    (fun ev ->
      match Event.of_line (Event.to_line ev) with
      | Ok ev' -> check_bool (Event.to_line ev) true (ev = ev')
      | Error msg -> Alcotest.failf "round-trip failed: %s" msg)
    events

let test_event_rejects () =
  let bad =
    [
      "not json at all";
      {|{"sources":[0]}|};
      {|{"type":"teleport"}|};
      {|{"type":"attributed","sources":[0],"nodes":"x","edges":[]}|};
      {|{"type":"attributed","sources":[0],"nodes":[1]}|};
      {|{"type":"trace","sources":[0],"times":[[1]]}|};
      {|{"type":"add_nodes"}|};
      {|{"type":"add_edges","edges":[[0,1]],"alpha":0}|};
    ]
  in
  List.iter
    (fun line ->
      check_bool line true (Result.is_error (Event.of_line line)))
    bad

(* ---------- observe_many and the in-place accumulator ---------- *)

let tiny_model () =
  let g = Digraph.of_edges ~nodes:3 [ (0, 1); (1, 2); (0, 2) ] in
  Beta_icm.uninformed g

let test_observe_many_matches_observe () =
  let model = tiny_model () in
  let obs = [ (0, true); (1, false); (0, true); (2, false); (1, true) ] in
  let batched = Beta_icm.observe_many model obs in
  let folded =
    List.fold_left
      (fun m (edge, fired) -> Beta_icm.observe m ~edge ~fired)
      model obs
  in
  check_string "batched = folded" (Beta_icm.digest folded)
    (Beta_icm.digest batched);
  check_bool "out of range" true
    (match Beta_icm.observe_many model [ (3, true) ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_accum_matches_functional () =
  let model = tiny_model () in
  let obs = [ (0, true); (1, false); (2, true); (0, false) ] in
  let acc = Beta_icm.Accum.of_model model in
  List.iter (fun (edge, fired) -> Beta_icm.Accum.observe acc ~edge ~fired) obs;
  check_int "observed" 4 (Beta_icm.Accum.observed acc);
  check_string "freeze = observe_many"
    (Beta_icm.digest (Beta_icm.observe_many model obs))
    (Beta_icm.digest (Beta_icm.Accum.freeze acc));
  (* freezing must not alias the live accumulator *)
  let frozen = Beta_icm.Accum.freeze acc in
  Beta_icm.Accum.observe acc ~edge:0 ~fired:true;
  check_string "frozen unaffected"
    (Beta_icm.digest (Beta_icm.observe_many model obs))
    (Beta_icm.digest frozen)

let test_accum_decay () =
  let acc = Beta_icm.Accum.of_model (tiny_model ()) in
  Beta_icm.Accum.observe acc ~edge:0 ~fired:true;
  Beta_icm.Accum.observe acc ~edge:0 ~fired:true;
  (* (3, 1) scaled by 0.5: the mean survives, the mass halves *)
  Beta_icm.Accum.decay acc ~lambda:0.5;
  let b = Beta_icm.edge_beta (Beta_icm.Accum.freeze acc) 0 in
  check_float "alpha" 1.5 b.Beta.alpha;
  check_float "beta" 0.5 b.Beta.beta;
  check_float "mean preserved" 0.75 (Beta.mean b);
  check_bool "lambda = 1 rejected" true
    (match Beta_icm.Accum.decay acc ~lambda:1.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_beta_icm_digest () =
  let model = tiny_model () in
  check_string "stable" (Beta_icm.digest model) (Beta_icm.digest model);
  check_bool "sensitive to counts" true
    (Beta_icm.digest model
    <> Beta_icm.digest (Beta_icm.observe model ~edge:0 ~fired:true));
  check_bool "sensitive to topology" true
    (Beta_icm.digest model
    <> Beta_icm.digest
         (Beta_icm.uninformed (Digraph.of_edges ~nodes:3 [ (0, 1); (1, 2) ])))

(* ---------- quarantine ---------- *)

let test_quarantine () =
  let g = Digraph.of_edges ~nodes:3 [ (0, 1); (1, 2) ] in
  let online = Online.create (Beta_icm.uninformed g) in
  let before = Beta_icm.digest (Online.model online) in
  let quarantined line =
    match Online.apply_line online line with
    | `Quarantined _ -> true
    | `Applied -> false
  in
  check_bool "parse error" true (quarantined "{{{");
  check_bool "unknown type" true (quarantined {|{"type":"teleport"}|});
  check_bool "node out of range" true
    (quarantined {|{"type":"attributed","sources":[99],"nodes":[],"edges":[]}|});
  check_bool "unknown edge" true
    (quarantined
       {|{"type":"attributed","sources":[0],"nodes":[2],"edges":[[0,2]]}|});
  check_bool "inconsistent object" true
    (quarantined
       {|{"type":"attributed","sources":[0],"nodes":[2],"edges":[[1,2]]}|});
  check_bool "inconsistent trace" true
    (quarantined {|{"type":"trace","sources":[],"times":[[2,5]]}|});
  (* removing an unknown pair is documented as an ignored no-op *)
  check_bool "unknown removal is a no-op, not an error" true
    (not (quarantined {|{"type":"remove_edges","edges":[[2,0]]}|}));
  let s = Online.stats online in
  check_int "only the no-op removal applied" 1 s.Online.applied;
  check_int "parse errors" 2 s.Online.parse_errors;
  check_int "inconsistent" 2 s.Online.inconsistent;
  check_int "unknown refs" 2 s.Online.unknown_refs;
  check_int "quarantined total" 6 (Online.quarantined s);
  check_string "model untouched" before (Beta_icm.digest (Online.model online))

let test_trace_counting () =
  let g = Digraph.of_edges ~nodes:3 [ (0, 1); (1, 2); (0, 2) ] in
  let online = Online.create (Beta_icm.uninformed g) in
  (* 0 at t=0, 1 at t=1, 2 at t=2: edges (0,1) and (1,2) fire at the
     naive +1 step; (0,2) was attempted at t=1 and provably missed *)
  (match
     Online.apply online
       (Event.Trace { sources = [ 0 ]; times = [ (1, 1); (2, 2) ] })
   with
  | `Applied -> ()
  | `Quarantined msg -> Alcotest.failf "quarantined: %s" msg);
  let check_edge src dst alpha beta =
    let e = Option.get (Digraph.find_edge g ~src ~dst) in
    let b = Beta_icm.edge_beta (Online.model online) e in
    check_float (Printf.sprintf "alpha(%d,%d)" src dst) alpha b.Beta.alpha;
    check_float (Printf.sprintf "beta(%d,%d)" src dst) beta b.Beta.beta
  in
  check_edge 0 1 2.0 1.0;
  check_edge 1 2 2.0 1.0;
  check_edge 0 2 1.0 2.0

(* ---------- replay determinism (acceptance) ---------- *)

let test_replay_determinism () =
  let g, objects, lines = substrate 7 ~events:400 in
  let expected = Beta_icm.digest (Beta_icm.train_attributed g objects) in
  List.iter
    (fun batch ->
      let online = Online.create (Beta_icm.uninformed g) in
      let snapshot = Snapshot.create (Beta_icm.uninformed g) in
      let report =
        Runner.run { Runner.batch; checkpoint_every = None } online snapshot
          (Runner.lines_of_list lines)
      in
      check_int (Printf.sprintf "batch %d: all applied" batch) 400
        report.Runner.stats.Online.applied;
      check_string
        (Printf.sprintf "batch %d: digest matches train_attributed" batch)
        expected report.Runner.final.Snapshot.digest)
    [ 1; 7; 64; 1000 ]

let test_checkpoint_restore_determinism () =
  let g, objects, lines = substrate 11 ~events:300 in
  let expected = Beta_icm.digest (Beta_icm.train_attributed g objects) in
  with_temp_file (fun path ->
      (* crash after a 137-line prefix, leaving a checkpoint behind *)
      let crashed =
        Runner.run
          { Runner.batch = 32; checkpoint_every = Some 50 }
          (Online.create (Beta_icm.uninformed g))
          (Snapshot.create ~checkpoint_path:path (Beta_icm.uninformed g))
          (Runner.lines_of_list (List.filteri (fun i _ -> i < 137) lines))
      in
      check_int "prefix consumed" 137 crashed.Runner.lines;
      let model, offset, version = Snapshot.recover path in
      check_int "recovered offset" 137 offset;
      check_bool "mid-stream version" true (version > 0);
      let report =
        Runner.run ~skip:offset
          { Runner.batch = 32; checkpoint_every = None }
          (Online.create model)
          (Snapshot.create ~id:version ~offset model)
          (Runner.lines_of_list lines)
      in
      check_int "resumed to the end" 300 report.Runner.lines;
      check_string "restored replay matches train_attributed" expected
        report.Runner.final.Snapshot.digest;
      check_bool "version numbering continues" true
        (report.Runner.final.Snapshot.id > version))

let light_config =
  {
    Engine.default_config with
    Engine.chains = 2;
    burn_in = 100;
    thin = 2;
    round_samples = 100;
    max_samples = 200;
    rhat_target = 10.0;
    mcse_target = 1.0;
  }

let test_streamed_engine_matches_fresh () =
  let g, _, lines = substrate 13 ~events:200 in
  let prior = Beta_icm.uninformed g in
  let engine = Engine.create ~config:light_config ~seed:42 (Beta_icm.expected_icm prior) in
  let report =
    Runner.run ~engine
      { Runner.batch = 50; checkpoint_every = None }
      (Online.create prior) (Snapshot.create prior)
      (Runner.lines_of_list lines)
  in
  let final = report.Runner.final.Snapshot.model in
  let fresh = Engine.create ~config:light_config ~seed:42 (Beta_icm.expected_icm final) in
  check_string "digests agree" (Engine.digest fresh) (Engine.digest engine);
  let probe = Query.flow ~src:0 ~dst:(Digraph.n_nodes g - 1) () in
  let r_streamed = Engine.query engine probe in
  let r_fresh = Engine.query fresh probe in
  check_float "estimates agree bit for bit" r_fresh.Engine.estimate
    r_streamed.Engine.estimate

(* ---------- forgetting ---------- *)

let test_forgetting_changes_posterior_not_replay () =
  let g, _, lines = substrate 17 ~events:200 in
  let run ~forget =
    let online = Online.create ~forget (Beta_icm.uninformed g) in
    let report =
      Runner.run
        { Runner.batch = 50; checkpoint_every = None }
        online
        (Snapshot.create (Beta_icm.uninformed g))
        (Runner.lines_of_list lines)
    in
    report.Runner.final.Snapshot.digest
  in
  check_string "forget = 0 is exact replay" (run ~forget:0.0) (run ~forget:0.0);
  check_bool "forgetting discounts history" true
    (run ~forget:0.1 <> run ~forget:0.0);
  check_string "forgetting itself is deterministic" (run ~forget:0.1)
    (run ~forget:0.1)

(* ---------- drift detection (acceptance) ---------- *)

let test_drift_flags_shift_no_false_alarms () =
  let g = Digraph.of_edges ~nodes:2 [ (0, 1) ] in
  let model = Beta_icm.uninformed g in
  let config = { Drift.window = 50; delta = 1e-3; min_reference = 50.0 } in
  let d = Drift.create config model in
  (* stationary: exactly rate 1/2, six full windows *)
  let alarms = ref 0 in
  for i = 1 to 300 do
    match Drift.observe d ~edge:0 ~fired:(i mod 2 = 0) with
    | Some _ -> incr alarms
    | None -> ()
  done;
  check_int "zero false alarms on the stationary prefix" 0 !alarms;
  check_int "no flags yet" 0 (Drift.flagged d);
  (* shift to rate 1: must alert within two windows *)
  let detected_at = ref None in
  (try
     for i = 1 to 100 do
       match Drift.observe d ~edge:0 ~fired:true with
       | Some _ ->
         detected_at := Some i;
         raise Exit
       | None -> ()
     done
   with Exit -> ());
  (match !detected_at with
  | Some i -> check_bool "bounded detection delay" true (i <= 2 * config.Drift.window)
  | None -> Alcotest.fail "shift never detected");
  check_bool "edge flagged" true (Drift.is_flagged d 0);
  check_int "one flagged edge" 1 (Drift.flagged d);
  (match Drift.alerts d with
  | a :: _ ->
    check_int "alert names the edge" 0 a.Drift.edge;
    check_bool "window rate above reference" true
      (a.Drift.window_rate > a.Drift.reference_rate)
  | [] -> Alcotest.fail "alert list empty");
  (* revert to the reference rate: the next clean window clears the flag *)
  for i = 1 to 2 * config.Drift.window do
    ignore (Drift.observe d ~edge:0 ~fired:(i mod 2 = 0))
  done;
  check_int "flag cleared after a passing window" 0 (Drift.flagged d)

let test_drift_through_online () =
  (* same shift, driven through the full event pipeline *)
  let g = Digraph.of_edges ~nodes:2 [ (0, 1) ] in
  let config = { Drift.window = 40; delta = 1e-3; min_reference = 40.0 } in
  let online = Online.create ~drift:config (Beta_icm.uninformed g) in
  let event ~fired =
    Event.to_line
      (Event.Attributed
         {
           sources = [ 0 ];
           nodes = (if fired then [ 0; 1 ] else [ 0 ]);
           edges = (if fired then [ (0, 1) ] else []);
         })
  in
  let lines =
    List.init 200 (fun i -> event ~fired:(i mod 2 = 0))
    @ List.init 100 (fun _ -> event ~fired:true)
  in
  let alerts = ref [] in
  let report =
    Runner.run
      ~on_alert:(fun a -> alerts := a :: !alerts)
      { Runner.batch = 25; checkpoint_every = None }
      online
      (Snapshot.create (Beta_icm.uninformed g))
      (Runner.lines_of_list lines)
  in
  check_bool "alerts fired" true (List.length report.Runner.drift_alerts > 0);
  check_int "on_alert saw every alert"
    (List.length report.Runner.drift_alerts)
    (List.length !alerts);
  List.iter
    (fun a ->
      check_int "alert src" 0 a.Drift.src;
      check_int "alert dst" 1 a.Drift.dst;
      check_bool "alert is post-shift" true (a.Drift.at_trial > 100))
    report.Runner.drift_alerts

(* ---------- graph changes and the interleaving property ---------- *)

let test_graph_change_events () =
  let g = Digraph.of_edges ~nodes:2 [ (0, 1) ] in
  let online = Online.create (Beta_icm.uninformed g) in
  let apply ev =
    match Online.apply online ev with
    | `Applied -> ()
    | `Quarantined msg -> Alcotest.failf "quarantined: %s" msg
  in
  apply (Event.Add_nodes { count = 1 });
  apply (Event.Add_edges { edges = [ (1, 2) ]; prior = Beta.v 3.0 1.0 });
  apply
    (Event.Attributed
       { sources = [ 0 ]; nodes = [ 0; 1; 2 ]; edges = [ (0, 1); (1, 2) ] });
  apply (Event.Remove_edges { edges = [ (0, 1) ] });
  let model = Online.model online in
  check_int "3 nodes" 3 (Beta_icm.n_nodes model);
  check_int "1 surviving edge" 1 (Beta_icm.n_edges model);
  let b = Beta_icm.edge_beta model 0 in
  (* the added edge kept its prior and absorbed the traversal *)
  check_float "alpha" 4.0 b.Beta.alpha;
  check_float "beta" 1.0 b.Beta.beta;
  let s = Online.stats online in
  check_int "graph changes" 3 s.Online.graph_changes;
  check_int "applied" 4 s.Online.applied

(* Build a random interleaving of cascades and graph changes, folding a
   functional reference model alongside the emitted events. *)
let random_interleaving seed =
  let rng = Rng.create (1000 + seed) in
  let g0 = Gen.gnm rng ~nodes:6 ~edges:10 in
  let model = ref (Beta_icm.uninformed g0) in
  let events = ref [] in
  let emit e = events := e :: !events in
  for _ = 1 to 40 do
    let g = Beta_icm.graph !model in
    let n = Digraph.n_nodes g and m = Digraph.n_edges g in
    let r = Rng.uniform rng in
    if r < 0.7 then begin
      if m > 0 then begin
        let icm = Icm.create g (Array.make m 0.4) in
        let o = Cascade.run rng icm ~sources:[ Rng.int rng n ] in
        emit (Event.of_attributed g o);
        let obs = ref [] in
        for e = 0 to m - 1 do
          if o.Evidence.active_nodes.(Digraph.edge_src g e) then
            obs := (e, o.Evidence.active_edges.(e)) :: !obs
        done;
        model := Beta_icm.observe_many !model !obs
      end
    end
    else if r < 0.85 then begin
      let prior = Beta.v (0.5 +. Rng.uniform rng) 1.0 in
      emit (Event.Add_nodes { count = 1 });
      model := Beta_icm.grow !model ~new_nodes:1 ~new_edges:[];
      let src = Rng.int rng n in
      emit (Event.Add_edges { edges = [ (src, n) ]; prior });
      model := Beta_icm.grow !model ~new_nodes:0 ~new_edges:[ (src, n, prior) ]
    end
    else if m > 0 then begin
      let e = Rng.int rng m in
      let pair = (Digraph.edge_src g e, Digraph.edge_dst g e) in
      emit (Event.Remove_edges { edges = [ pair ] });
      model := Beta_icm.remove_edges !model [ pair ]
    end
  done;
  (g0, List.rev !events, !model)

let prop_interleaving_matches_functional_fold =
  QCheck.Test.make ~count:30
    ~name:"streamed interleavings match the functional fold"
    QCheck.small_nat
    (fun seed ->
      let g0, events, reference = random_interleaving seed in
      let online = Online.create (Beta_icm.uninformed g0) in
      List.iter
        (fun ev ->
          match Online.apply_line online (Event.to_line ev) with
          | `Applied -> ()
          | `Quarantined msg ->
            QCheck.Test.fail_reportf "quarantined %s: %s" (Event.to_line ev)
              msg)
        events;
      Beta_icm.digest (Online.model online) = Beta_icm.digest reference)

(* ---------- v2 model files ---------- *)

let test_model_io_v2_roundtrip () =
  let model =
    Beta_icm.observe_many (tiny_model ()) [ (0, true); (2, false) ]
  in
  with_temp_file (fun path ->
      Model_io.save_beta_icm ~meta:[ ("offset", "123"); ("version", "7") ] path
        model;
      let loaded, meta = Model_io.load_beta_icm_meta path in
      check_string "model survives" (Beta_icm.digest model)
        (Beta_icm.digest loaded);
      check_string "digest recorded" (Beta_icm.digest model)
        (List.assoc "digest" meta);
      check_string "offset recorded" "123" (List.assoc "offset" meta);
      check_string "version recorded" "7" (List.assoc "version" meta))

let test_model_io_legacy () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "bicm 3\n0 1 2.0 1.0\n1 2 1.0 1.0\n";
      close_out oc;
      let model, meta = Model_io.load_beta_icm_meta path in
      check_int "legacy file loads" 2 (Beta_icm.n_edges model);
      check_bool "no metadata" true (meta = []);
      let b = Beta_icm.edge_beta model 0 in
      check_float "counts" 2.0 b.Beta.alpha)

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let read_lines path =
  let ic = open_in path in
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read [] in
  close_in ic;
  lines

let write_lines path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

(* tamper with the last edge row's alpha *)
let tamper_last_edge lines =
  match List.rev lines with
  | last :: rest -> (
    match String.split_on_char ' ' last with
    | src :: dst :: _alpha :: tl ->
      List.rev (String.concat " " (src :: dst :: "9" :: tl) :: rest)
    | _ -> Alcotest.fail "unexpected edge row")
  | [] -> Alcotest.fail "empty file"

let test_model_io_digest_mismatch () =
  let model = Beta_icm.observe (tiny_model ()) ~edge:0 ~fired:true in
  (* v3: physical damage is caught by the CRC footer first *)
  with_temp_file (fun path ->
      Model_io.save_beta_icm path model;
      write_lines path (tamper_last_edge (read_lines path));
      match Model_io.load_beta_icm path with
      | _ -> Alcotest.fail "tampered v3 file loaded"
      | exception Failure msg ->
        (* the tamper shortens the body, so the footer's length check
           fires; a length-preserving flip would hit the CRC check *)
        check_bool "crc named" true (contains "crc32" msg));
  (* v2 (tag rewritten, footer dropped): the semantic digest check
     still fails loudly *)
  with_temp_file (fun path ->
      Model_io.save_beta_icm path model;
      let as_v2 = function
        | l when contains "crc32" l -> None
        | l when contains "bicm-v3" l ->
          Some ("# bicm-v2" ^ String.sub l 9 (String.length l - 9))
        | l -> Some l
      in
      write_lines path
        (tamper_last_edge (List.filter_map as_v2 (read_lines path)));
      match Model_io.load_beta_icm path with
      | _ -> Alcotest.fail "tampered v2 file loaded"
      | exception Failure msg ->
        check_bool "mismatch named" true (contains "digest mismatch" msg))

let test_model_io_meta_validation () =
  let model = tiny_model () in
  with_temp_file (fun path ->
      let rejects meta =
        match Model_io.save_beta_icm ~meta path model with
        | exception Invalid_argument _ -> true
        | () -> false
      in
      check_bool "digest reserved" true (rejects [ ("digest", "x") ]);
      check_bool "no spaces" true (rejects [ ("a b", "x") ]);
      check_bool "no equals" true (rejects [ ("k", "a=b") ]);
      check_bool "non-empty" true (rejects [ ("", "x") ]))

(* ---------- engine hot-swap and invalidation ---------- *)

let five_node_model seed =
  let rng = Rng.create seed in
  let g = Gen.gnm rng ~nodes:5 ~edges:12 in
  Icm.create g (Array.init 12 (fun _ -> 0.1 +. (0.8 *. Rng.uniform rng)))

let test_engine_swap_and_invalidate () =
  let a = five_node_model 3 and b = five_node_model 4 in
  let engine = Engine.create ~config:light_config ~seed:9 a in
  let q1 = Query.flow ~src:0 ~dst:4 () in
  let q2 = Query.flow ~src:1 ~dst:3 () in
  let r1 = Engine.query engine q1 in
  let r2 = Engine.query engine q2 in
  check_bool "cached on repeat" true (Engine.query engine q1).Engine.cached;
  let evicted = Engine.swap engine b in
  check_int "both entries evicted" 2 evicted;
  check_string "digest tracks the new model" (Engine.icm_digest b)
    (Engine.digest engine);
  check_bool "cache cold after swap" true
    (not (Engine.query engine q1).Engine.cached);
  check_bool "evictions counted" true
    ((Engine.cache_stats engine).Lru.evictions >= 2);
  (* swap back: same seed + same model digest = the original answers *)
  ignore (Engine.swap engine a);
  check_float "q1 reproduced bit for bit" r1.Engine.estimate
    (Engine.query engine q1).Engine.estimate;
  check_float "q2 reproduced bit for bit" r2.Engine.estimate
    (Engine.query engine q2).Engine.estimate;
  check_int "swap onto the same digest evicts nothing" 0 (Engine.swap engine a);
  (* invalidate by digest only touches matching entries *)
  ignore (Engine.query engine q1);
  check_int "foreign digest evicts nothing" 0
    (Engine.invalidate engine ~digest:"no-such-digest");
  check_bool "current digest evicts the entry" true
    (Engine.invalidate engine ~digest:(Engine.digest engine) >= 1)

let test_lru_evict_where () =
  let cache = Lru.create 8 in
  List.iter (fun k -> Lru.add cache k k) [ "a/1"; "a/2"; "b/1"; "c/1" ];
  let n =
    Lru.evict_where cache (fun k -> String.length k > 0 && k.[0] = 'a')
  in
  check_int "two evicted" 2 n;
  check_int "two remain" 2 (Lru.length cache);
  check_bool "survivors intact" true
    (Lru.mem cache "b/1" && Lru.mem cache "c/1");
  check_int "evictions counted" 2 (Lru.stats cache).Lru.evictions

(* ---------- snapshot versioning ---------- *)

let test_snapshot_versioning () =
  let model = tiny_model () in
  let snap = Snapshot.create model in
  check_int "seed version" 0 (Snapshot.current snap).Snapshot.id;
  let m1 = Beta_icm.observe model ~edge:0 ~fired:true in
  let v1 = Snapshot.publish snap m1 ~offset:10 in
  check_int "monotonic id" 1 v1.Snapshot.id;
  check_int "offset recorded" 10 v1.Snapshot.offset;
  check_string "digest of the published model" (Beta_icm.digest m1)
    v1.Snapshot.digest;
  let resumed = Snapshot.create ~id:7 ~offset:99 model in
  check_int "resume keeps numbering" 7 (Snapshot.current resumed).Snapshot.id;
  check_int "resume keeps offset" 99 (Snapshot.current resumed).Snapshot.offset;
  check_int "no checkpoint path = no checkpoints" 0
    (Snapshot.checkpoint snap;
     Snapshot.checkpoints_written snap)

let () =
  Alcotest.run "stream"
    [
      ( "events",
        [
          Alcotest.test_case "round-trip" `Quick test_event_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_event_rejects;
        ] );
      ( "updates",
        [
          Alcotest.test_case "observe_many = folded observe" `Quick
            test_observe_many_matches_observe;
          Alcotest.test_case "accumulator = functional" `Quick
            test_accum_matches_functional;
          Alcotest.test_case "decay preserves the mean" `Quick test_accum_decay;
          Alcotest.test_case "digest" `Quick test_beta_icm_digest;
        ] );
      ( "online",
        [
          Alcotest.test_case "quarantine counts, never crashes" `Quick
            test_quarantine;
          Alcotest.test_case "trace counting rule" `Quick test_trace_counting;
          Alcotest.test_case "graph-change events" `Quick
            test_graph_change_events;
        ] );
      ( "replay",
        [
          Alcotest.test_case "any batch size = train_attributed" `Quick
            test_replay_determinism;
          Alcotest.test_case "checkpoint/restore split" `Quick
            test_checkpoint_restore_determinism;
          Alcotest.test_case "streamed engine = fresh engine" `Slow
            test_streamed_engine_matches_fresh;
          Alcotest.test_case "forgetting" `Quick
            test_forgetting_changes_posterior_not_replay;
        ] );
      ( "drift",
        [
          Alcotest.test_case "flags the shift, no false alarms" `Quick
            test_drift_flags_shift_no_false_alarms;
          Alcotest.test_case "through the event pipeline" `Quick
            test_drift_through_online;
        ] );
      ("interleaving", qcheck [ prop_interleaving_matches_functional_fold ]);
      ( "model-io",
        [
          Alcotest.test_case "v2 round-trip with metadata" `Quick
            test_model_io_v2_roundtrip;
          Alcotest.test_case "legacy files still load" `Quick
            test_model_io_legacy;
          Alcotest.test_case "digest mismatch fails loudly" `Quick
            test_model_io_digest_mismatch;
          Alcotest.test_case "metadata validation" `Quick
            test_model_io_meta_validation;
        ] );
      ( "engine",
        [
          Alcotest.test_case "hot-swap and invalidation" `Quick
            test_engine_swap_and_invalidate;
          Alcotest.test_case "lru evict_where" `Quick test_lru_evict_where;
        ] );
      ("snapshot", [ Alcotest.test_case "versioning" `Quick test_snapshot_versioning ]);
    ]
