(* The crash-recovery property test, in its own executable because
   Unix.fork is forbidden once any domain has been spawned (and the
   rest of the fault suite exercises the domain pool):

     SIGKILL an ingest child at a random instant; recovering from the
     newest valid checkpoint in the rotated set and replaying the rest
     of the event log must reach the exact final digest of an
     uninterrupted run. *)

module Rng = Iflow_stats.Rng
module Gen = Iflow_graph.Gen
module Digraph = Iflow_graph.Digraph
module Icm = Iflow_core.Icm
module Beta_icm = Iflow_core.Beta_icm
module Cascade = Iflow_core.Cascade
module Event = Iflow_stream.Event
module Online = Iflow_stream.Online
module Snapshot = Iflow_stream.Snapshot
module Runner = Iflow_stream.Runner
module Retry = Iflow_fault.Retry
module Durable = Iflow_fault.Durable

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let with_temp_file f =
  let path = Filename.temp_file "iflow_crash_test" ".bicm" in
  (* temp_file pre-creates an empty file; the checkpoint path must not
     exist until the child actually writes one *)
  Sys.remove path;
  let cleanup () =
    List.iter
      (fun p -> if Sys.file_exists p then Sys.remove p)
      (Durable.tmp_of path :: List.init 8 (Durable.rotated path))
  in
  Fun.protect ~finally:cleanup (fun () -> f path)

let substrate seed ~events =
  let rng = Rng.create seed in
  let g = Gen.gnm rng ~nodes:30 ~edges:120 in
  let m = Digraph.n_edges g in
  let icm =
    Icm.create g (Array.init m (fun _ -> 0.1 +. (0.6 *. Rng.uniform rng)))
  in
  let lines =
    List.init events (fun _ ->
        Event.to_line
          (Event.of_attributed g
             (Cascade.run rng icm ~sources:[ Rng.int rng (Digraph.n_nodes g) ])))
  in
  (g, lines)

let wait_for pid =
  let rec go () =
    match Unix.waitpid [] pid with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let test_sigkill_recovery () =
  let g, lines = substrate 31 ~events:400 in
  let prior = Beta_icm.uninformed g in
  let config = { Runner.batch = 16; checkpoint_every = Some 20 } in
  let reference =
    (Runner.run config (Online.create prior) (Snapshot.create prior)
       (Runner.lines_of_list lines))
      .Runner.final.Snapshot.digest
  in
  List.iteri
    (fun trial delay ->
      with_temp_file (fun path ->
          flush stdout;
          flush stderr;
          match Unix.fork () with
          | 0 ->
            (* the child ingests with rotated checkpoints, throttled so
               the parent's kill lands mid-run *)
            (try
               ignore
                 (Runner.run ~on_publish:(fun _ -> Unix.sleepf 0.002) config
                    (Online.create prior)
                    (Snapshot.create ~checkpoint_path:path ~keep:2
                       ~retry:Retry.no_delay prior)
                    (Runner.lines_of_list lines));
               Unix._exit 0
             with _ -> Unix._exit 1)
          | pid ->
            Unix.sleepf delay;
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            wait_for pid;
            let model, offset, version =
              match
                Snapshot.recover ~on_skip:(fun ~path:_ ~reason:_ -> ()) path
              with
              | r -> r
              | exception (Sys_error _ | Failure _) ->
                (* killed before the first complete checkpoint (no file,
                   or only a torn one): resume from zero — the property
                   still has to hold *)
                (prior, 0, 0)
            in
            check_bool
              (Printf.sprintf "trial %d: offset within the log" trial)
              true
              (offset >= 0 && offset <= List.length lines);
            let resumed =
              Runner.run ~skip:offset config (Online.create model)
                (Snapshot.create ~id:version ~offset model)
                (Runner.lines_of_list lines)
            in
            check_string
              (Printf.sprintf
                 "trial %d: killed after %.0f ms at offset %d, resume is \
                  bit-identical"
                 trial (delay *. 1000.0) offset)
              reference resumed.Runner.final.Snapshot.digest))
    [ 0.0; 0.01; 0.04; 0.12 ]

let () =
  Alcotest.run "crash"
    [
      ( "crash-recovery",
        [ Alcotest.test_case "SIGKILL + resume" `Quick test_sigkill_recovery ] );
    ]
