(** Fig 3: does the betaICM carry the uncertainty of the evidence?

    For a source/sink pair: (a) the {e empirical} Beta over the
    source-to-sink retweet rate, counted directly from the training
    cascades; (b) the distribution of flow probabilities obtained by
    nested Metropolis-Hastings (~100 point ICMs sampled from the
    trained betaICM); (c) the Beta implied by the nested samples'
    moments. The paper shows (b)/(c) mirroring (a). *)

type pair_result = {
  source : int;
  sink : int;
  empirical : Iflow_stats.Dist.Beta.t;
  samples : float array; (** nested-MH flow probability samples *)
  implied : Iflow_stats.Dist.Beta.t option; (** moment fit to [samples] *)
}

val run : Scale.t -> Iflow_stats.Rng.t -> Twitter_lab.t -> pair_result list
(** Two source/sink pairs, like the paper's two panels. *)

val report :
  Scale.t -> Iflow_stats.Rng.t -> Twitter_lab.t -> Format.formatter ->
  pair_result list
