(** Synthetic Twitter corpus generation.

    The paper's experiments use the Choudhury et al. crawl (10M tweets,
    118K users), which is unavailable; per DESIGN.md we substitute a
    generator that reproduces the crawl's relevant properties:

    - a scale-free follower graph with a ground-truth retweet ICM on the
      flow edges (so calibration can be checked against truth);
    - raw tweet {i text} with real syntax, so the whole preprocessing
      pipeline (RT-chain parsing, original recovery) is exercised;
    - incompleteness: a configurable fraction of tweets is dropped,
      originals more often than retweets (the crawl is described as
      containing "many retweeted messages without the original");
    - hashtags that also enter "offline" (several users adopting a tag
      spontaneously — events, acronyms), while URLs are unique,
      shortener-style, and spread only through the network: the
      asymmetry behind Fig 8 vs Fig 9. *)

type params = {
  originals : int; (** number of original (non-retweet) tweets *)
  hashtag_pool : int; (** distinct hashtags, Zipf-distributed popularity *)
  hashtag_prob : float; (** probability an original carries a hashtag *)
  url_prob : float; (** probability an original carries a URL *)
  offline_hashtag_rate : float;
      (** probability a hashtag use sparks spontaneous offline adoption *)
  offline_adopters : int; (** spontaneous adopters per offline event *)
  drop_original_rate : float; (** corpus sparsity for originals *)
  drop_retweet_rate : float; (** corpus sparsity for retweets *)
  words_per_tweet : int * int; (** min/max filler words *)
}

val default_params : params

type t = {
  tweets : Tweet.t list; (** the observable corpus, sorted by time *)
  names : string array; (** ground truth: node id -> user name *)
  graph : Iflow_graph.Digraph.t; (** ground truth follow/flow graph *)
  truth : Iflow_core.Icm.t; (** ground truth retweet ICM *)
  truth_objects : Iflow_core.Evidence.attributed;
      (** ground-truth attribution per original: the (parent ->
          retweeter) tree the message travelled — what a perfect
          preprocessing pass would reconstruct from complete data *)
  dropped : int; (** tweets removed for sparsity *)
}

val generate :
  ?params:params -> Iflow_stats.Rng.t -> Iflow_core.Icm.t -> t
(** [generate rng truth_icm] simulates tweeting and retweeting on the
    ground-truth model. Authors of originals are drawn with probability
    proportional to 1 + audience size (out-degree). The ICM's graph
    supplies both topology and names ("user0", "user1", ...). *)

val node_of_name : t -> string -> int option
