lib/stats/rng.ml: Array Random
