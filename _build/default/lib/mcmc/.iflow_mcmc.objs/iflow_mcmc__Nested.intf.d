lib/mcmc/nested.mli: Conditions Estimator Iflow_core Iflow_graph Iflow_stats
