lib/twitter/tweet.mli: Format
