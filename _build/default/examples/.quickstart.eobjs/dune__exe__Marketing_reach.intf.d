examples/marketing_reach.mli:
