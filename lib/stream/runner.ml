module Engine = Iflow_engine.Engine

type config = { batch : int; checkpoint_every : int option }

let default_config = { batch = 256; checkpoint_every = None }

type report = {
  lines : int;
  stats : Online.stats;
  final : Snapshot.version;
  versions_published : int;
  checkpoints_written : int;
  cache_evictions : int;
  drift_alerts : Drift.alert list;
}

let lines_of_channel ic () =
  match input_line ic with line -> Some line | exception End_of_file -> None

let lines_of_list lines =
  let rest = ref lines in
  fun () ->
    match !rest with
    | [] -> None
    | line :: tl ->
      rest := tl;
      Some line

let run ?engine ?(skip = 0) ?on_alert ?on_publish config online snapshot next =
  if config.batch < 1 then invalid_arg "Runner.run: batch must be >= 1";
  (match config.checkpoint_every with
  | Some k when k < 1 -> invalid_arg "Runner.run: checkpoint_every must be >= 1"
  | _ -> ());
  if skip < 0 then invalid_arg "Runner.run: negative skip";
  for _ = 1 to skip do
    ignore (next ())
  done;
  let lines = ref skip in
  let pending = ref 0 in
  let last_checkpoint = ref skip in
  let evictions = ref 0 in
  let published = ref 0 in
  let checkpoints = ref 0 in
  let seen_alerts = ref 0 in
  let swap () =
    match engine with
    | Some e -> evictions := !evictions + Snapshot.swap_into snapshot e
    | None -> ()
  in
  swap ();
  let drain_alerts () =
    match (Online.drift online, on_alert) with
    | Some d, Some f ->
      let count = Drift.alert_count d in
      if count > !seen_alerts then begin
        List.iteri
          (fun i a -> if i >= !seen_alerts then f a)
          (Drift.alerts d);
        seen_alerts := count
      end
    | _ -> ()
  in
  let checkpoint_due () =
    match config.checkpoint_every with
    | Some k -> !lines - !last_checkpoint >= k
    | None -> false
  in
  let write_checkpoint () =
    Snapshot.checkpoint snapshot;
    incr checkpoints;
    last_checkpoint := !lines
  in
  let publish () =
    let v = Snapshot.publish snapshot (Online.model online) ~offset:!lines in
    swap ();
    (* forgetting is per published batch: evidence already absorbed
       loses weight (1 - lambda) before the next batch accumulates *)
    Online.decay online;
    incr published;
    pending := 0;
    (match on_publish with Some f -> f v | None -> ());
    if checkpoint_due () then write_checkpoint ()
  in
  let rec loop () =
    match next () with
    | None -> ()
    | Some line ->
      incr lines;
      (match Online.apply_line online line with
      | `Applied -> incr pending
      | `Quarantined _ -> ());
      drain_alerts ();
      if !pending >= config.batch then publish ();
      loop ()
  in
  loop ();
  if !pending > 0 then publish ();
  if config.checkpoint_every <> None && !last_checkpoint <> !lines then
    write_checkpoint ();
  {
    lines = !lines;
    stats = Online.stats online;
    final = Snapshot.current snapshot;
    versions_published = !published;
    checkpoints_written = !checkpoints;
    cache_evictions = !evictions;
    drift_alerts =
      (match Online.drift online with Some d -> Drift.alerts d | None -> []);
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%d lines: %a@,\
     final version %d (digest %s, offset %d); %d published, %d checkpoints, \
     %d cache evictions, %d drift alerts@]"
    r.lines Online.pp_stats r.stats r.final.Snapshot.id r.final.Snapshot.digest
    r.final.Snapshot.offset r.versions_published r.checkpoints_written
    r.cache_evictions
    (List.length r.drift_alerts)
