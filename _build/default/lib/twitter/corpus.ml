module Digraph = Iflow_graph.Digraph
module Icm = Iflow_core.Icm
module Rng = Iflow_stats.Rng
module Dist = Iflow_stats.Dist

type params = {
  originals : int;
  hashtag_pool : int;
  hashtag_prob : float;
  url_prob : float;
  offline_hashtag_rate : float;
  offline_adopters : int;
  drop_original_rate : float;
  drop_retweet_rate : float;
  words_per_tweet : int * int;
}

let default_params =
  {
    originals = 2000;
    hashtag_pool = 40;
    hashtag_prob = 0.35;
    url_prob = 0.3;
    offline_hashtag_rate = 0.5;
    offline_adopters = 3;
    drop_original_rate = 0.15;
    drop_retweet_rate = 0.03;
    words_per_tweet = (2, 6);
  }

type t = {
  tweets : Tweet.t list;
  names : string array;
  graph : Digraph.t;
  truth : Icm.t;
  truth_objects : Iflow_core.Evidence.attributed;
  dropped : int;
}

let vocabulary =
  [| "coffee"; "today"; "breaking"; "news"; "great"; "launch"; "watch";
     "live"; "thread"; "thoughts"; "update"; "finally"; "wow"; "love";
     "best"; "paper"; "data"; "graph"; "flow"; "model" |]

(* Real tweets are almost never textually identical; a random pseudo-word
   per message keeps cascade keys distinct, like wording variation does
   in practice. *)
let pseudo_word rng =
  String.init 5 (fun _ -> Char.chr (Char.code 'a' + Rng.int rng 26))

let filler_words rng (lo, hi) =
  let count = lo + Rng.int rng (max 1 (hi - lo + 1)) in
  String.concat " "
    (pseudo_word rng :: List.init count (fun _ -> Rng.choose rng vocabulary))

(* Zipf-ish hashtag popularity: weight 1/(k+1). *)
let pick_hashtag rng pool =
  let weights = Array.init pool (fun k -> 1.0 /. float_of_int (k + 1)) in
  Printf.sprintf "#tag%d" (Dist.categorical rng weights)

let base36 n =
  let digits = "0123456789abcdefghijklmnopqrstuvwxyz" in
  let rec go n acc =
    if n = 0 then (if acc = "" then "0" else acc)
    else go (n / 36) (String.make 1 digits.[n mod 36] ^ acc)
  in
  go n ""

(* Cascade simulation that also records each activation's parent, so we
   can emit the retweet text chain. *)
let simulate_with_parents rng icm ~source =
  let g = Icm.graph icm in
  let n = Digraph.n_nodes g in
  let parent = Array.make n (-1) in
  let depth = Array.make n (-1) in
  let active = Array.make n false in
  active.(source) <- true;
  depth.(source) <- 0;
  let order = ref [] in
  let queue = Queue.create () in
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Digraph.iter_out g v (fun e ->
        if Rng.bernoulli rng (Icm.prob icm e) then begin
          let w = Digraph.edge_dst g e in
          if not active.(w) then begin
            active.(w) <- true;
            parent.(w) <- v;
            depth.(w) <- depth.(v) + 1;
            order := w :: !order;
            Queue.add w queue
          end
        end)
  done;
  (List.rev !order, parent, depth)

let generate ?(params = default_params) rng truth =
  let g = Icm.graph truth in
  let n = Digraph.n_nodes g in
  if n = 0 then invalid_arg "Corpus.generate: empty graph";
  let names = Array.init n (fun v -> Printf.sprintf "user%d" v) in
  let audience = Array.init n (fun v -> 1.0 +. float_of_int (Digraph.out_degree g v)) in
  let next_id = ref 0 in
  let next_url = ref 0 in
  let clock = ref 0 in
  let tweets = ref [] in
  let truth_objects = ref [] in
  let dropped = ref 0 in
  let emit ~keep_prob tweet =
    if Rng.uniform rng < keep_prob then tweets := tweet :: !tweets
    else incr dropped
  in
  let fresh_id () =
    incr next_id;
    !next_id
  in
  for _ = 1 to params.originals do
    let author = Dist.categorical rng audience in
    let parts = ref [] in
    if Rng.uniform rng < params.url_prob then begin
      incr next_url;
      parts := Printf.sprintf "http://t.co/%s" (base36 (1000 + !next_url)) :: !parts
    end;
    let tag =
      if Rng.uniform rng < params.hashtag_prob then
        Some (pick_hashtag rng params.hashtag_pool)
      else None
    in
    (match tag with Some t -> parts := t :: !parts | None -> ());
    parts := filler_words rng params.words_per_tweet :: !parts;
    (* URL first so truncation eats filler, not the payload. *)
    let text = String.concat " " (List.rev !parts) in
    clock := !clock + 1 + Rng.int rng 3;
    let original =
      Tweet.make ~id:(fresh_id ()) ~author:names.(author) ~time:!clock ~text
    in
    emit ~keep_prob:(1.0 -. params.drop_original_rate) original;
    (* The cascade of retweets. *)
    let order, parent, depth = simulate_with_parents rng truth ~source:author in
    (* Record the ground-truth attribution for this object: the tree of
       (parent -> retweeter) edges the message actually travelled. *)
    let active_nodes = Array.make n false in
    let active_edges = Array.make (Digraph.n_edges g) false in
    active_nodes.(author) <- true;
    List.iter
      (fun w ->
        active_nodes.(w) <- true;
        match Digraph.find_edge g ~src:parent.(w) ~dst:w with
        | Some e -> active_edges.(e) <- true
        | None -> ())
      order;
    truth_objects :=
      { Iflow_core.Evidence.sources = [ author ]; active_nodes; active_edges }
      :: !truth_objects;
    let tweet_of_node = Array.make n None in
    tweet_of_node.(author) <- Some original;
    List.iter
      (fun w ->
        match tweet_of_node.(parent.(w)) with
        | None -> () (* unreachable: parents are processed first *)
        | Some parent_tweet ->
          let rt =
            Tweet.retweet ~id:(fresh_id ()) ~retweeter:names.(w)
              ~time:(!clock + depth.(w)) ~of_:parent_tweet
          in
          tweet_of_node.(w) <- Some rt;
          emit ~keep_prob:(1.0 -. params.drop_retweet_rate) rt)
      order;
    (* Offline hashtag adoption: the same tag surfaces independently. *)
    match tag with
    | Some tag when Rng.uniform rng < params.offline_hashtag_rate ->
      for _ = 1 to params.offline_adopters do
        let adopter = Rng.int rng n in
        let text =
          String.concat " " [ filler_words rng params.words_per_tweet; tag ]
        in
        let t =
          Tweet.make ~id:(fresh_id ()) ~author:names.(adopter)
            ~time:(!clock + 1 + Rng.int rng 5)
            ~text
        in
        emit ~keep_prob:(1.0 -. params.drop_original_rate) t
      done
    | Some _ | None -> ()
  done;
  let sorted =
    List.sort
      (fun (a : Tweet.t) (b : Tweet.t) ->
        match compare a.time b.time with 0 -> compare a.id b.id | c -> c)
      !tweets
  in
  {
    tweets = sorted;
    names;
    graph = g;
    truth;
    truth_objects = List.rev !truth_objects;
    dropped = !dropped;
  }

let node_of_name t name =
  let found = ref None in
  Array.iteri (fun v n -> if n = name then found := Some v) t.names;
  !found
