type level = Error | Warn | Info | Debug

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3
let current = ref Warn
let set_level l = current := l
let level () = !current

let string_of_level = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii s with
  | "error" | "err" -> Result.Ok Error
  | "warn" | "warning" -> Result.Ok Warn
  | "info" -> Result.Ok Info
  | "debug" -> Result.Ok Debug
  | other ->
    Result.Error
      (Printf.sprintf "unknown log level %S (expected error|warn|info|debug)"
         other)

(* One writer at a time: domains and server threads log concurrently,
   and unserialised Format output interleaves partial lines. The whole
   line is built first so the lock covers only one write + flush. *)
let mu = Mutex.create ()

let log lvl ?component ?rid fmt =
  if severity lvl <= severity !current then
    Format.kasprintf
      (fun msg ->
        let ts = Clock.now_ns () in
        let b = Buffer.create (64 + String.length msg) in
        Buffer.add_string b
          (Printf.sprintf "%.6f " (float_of_int ts /. 1e9));
        Buffer.add_string b (string_of_level lvl);
        (match component with
        | Some c ->
          Buffer.add_string b " [";
          Buffer.add_string b c;
          Buffer.add_char b ']'
        | None -> ());
        (match rid with
        | Some r ->
          Buffer.add_string b " rid=";
          Buffer.add_string b r
        | None -> ());
        Buffer.add_char b ' ';
        Buffer.add_string b msg;
        Buffer.add_char b '\n';
        Mutex.lock mu;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock mu)
          (fun () ->
            output_string stderr (Buffer.contents b);
            flush stderr))
      fmt
  else Format.ifprintf Format.err_formatter fmt

let err ?component ?rid fmt = log Error ?component ?rid fmt
let warn ?component ?rid fmt = log Warn ?component ?rid fmt
let info ?component ?rid fmt = log Info ?component ?rid fmt
let debug ?component ?rid fmt = log Debug ?component ?rid fmt
