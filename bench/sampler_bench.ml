(* Sampler micro-benchmark: raw Metropolis-Hastings steps/sec on the
   paper's timing setting (~6K users, ~12K edges), at 0, 1 and 3 flow
   conditions.

   Two implementations are timed side by side on this machine:
   - "legacy": the seed sampler's condition check — a fresh allocating
     BFS from every condition source on every accepted proposal
     (replicated here against the public API);
   - "incremental": the live Chain, whose per-source reachability
     caches decide most flips in O(1) and recompute only when a
     BFS-tree edge is cut.

   Results go to BENCH_PR2.json (machine-readable, committed) so the
   perf trajectory is recorded from PR 2 onward; the JSON also carries
   the pre-PR baseline numbers recorded when this benchmark was first
   written. --quick (or IFLOW_BENCH_QUICK=1) shortens the timed windows
   for CI. *)

module Rng = Iflow_stats.Rng
module Fenwick = Iflow_stats.Fenwick
module Icm = Iflow_core.Icm
module Pseudo_state = Iflow_core.Pseudo_state
module Gen = Iflow_graph.Gen
module Digraph = Iflow_graph.Digraph
module Traverse = Iflow_graph.Traverse
module Chain = Iflow_mcmc.Chain
module Conditions = Iflow_mcmc.Conditions
module Clock = Iflow_obs.Clock
module Metrics = Iflow_obs.Metrics
module Jsonl = Bench_obs.Jsonl

let quick =
  Array.exists (fun a -> a = "--quick") Sys.argv
  || Sys.getenv_opt "IFLOW_BENCH_QUICK" <> None

let measure_seconds = if quick then 0.25 else 1.5
let warmup_steps = if quick then 2_000 else 20_000

(* Pre-PR 2 steps/sec of the seed implementation, measured in full mode
   on the development machine (6000-node preferential-attachment graph,
   seed 20120402): the trajectory's time-zero point. *)
let baseline_pre_pr = [ (0, 3_927_589.0); (1, 106_810.0); (3, 37_495.0) ]

(* The seed sampler, replicated against the public API: single-edge-flip
   proposals from a Fenwick tree, and `Conditions.satisfied` — a fresh
   allocating BFS per condition source — on every accepted proposal. *)
module Legacy = struct
  type t = {
    icm : Icm.t;
    conditions : Conditions.t;
    state : Pseudo_state.t;
    weights : Fenwick.t;
    mutable z : float;
  }

  let proposal_weight icm state e =
    let p = Icm.prob icm e in
    if Pseudo_state.get state e then 1.0 -. p else p

  let create rng icm conditions =
    let state =
      match Conditions.initial_state rng icm conditions with
      | Some s -> s
      | None -> failwith "Legacy.create: could not satisfy conditions"
    in
    let weights =
      Fenwick.of_array
        (Array.init (Icm.n_edges icm) (proposal_weight icm state))
    in
    { icm; conditions; state; weights; z = Fenwick.total weights }

  let step rng t =
    if t.z > 0.0 then begin
      let e = Fenwick.sample rng t.weights in
      let w = Fenwick.get t.weights e in
      let z' = t.z +. 1.0 -. (2.0 *. w) in
      let a = if t.z < z' then t.z /. z' else 1.0 in
      if Rng.uniform rng <= a then begin
        Pseudo_state.flip t.state e;
        if Conditions.satisfied t.icm t.state t.conditions then begin
          Fenwick.set t.weights e (1.0 -. w);
          t.z <- Fenwick.total t.weights
        end
        else Pseudo_state.flip t.state e
      end
    end

  let advance rng t k =
    for _ = 1 to k do
      step rng t
    done
end

(* Array-based connected pair pick (no list scan). *)
let connected_pair rng g =
  let n = Digraph.n_nodes g in
  let dsts = Array.make n 0 in
  let rec go () =
    let src = Rng.int rng n in
    let reachable = Traverse.reachable_from g [ src ] in
    let count = ref 0 in
    Array.iteri
      (fun v r ->
        if r && v <> src then begin
          dsts.(!count) <- v;
          incr count
        end)
      reachable;
    if !count = 0 then go () else (src, dsts.(Rng.int rng !count))
  in
  go ()

let timed advance =
  advance warmup_steps;
  let batch = 1_000 in
  let t0 = Clock.now_ns () in
  let steps = ref 0 in
  let elapsed = ref 0.0 in
  while !elapsed < measure_seconds do
    advance batch;
    steps := !steps + batch;
    elapsed := Clock.seconds_of_ns (Clock.elapsed_ns t0)
  done;
  float_of_int !steps /. !elapsed

let () =
  let rng = Rng.create 20120402 in
  let g = Gen.preferential_attachment rng ~nodes:6000 ~mean_out_degree:2 in
  let m = Digraph.n_edges g in
  let probs = Array.init m (fun _ -> 0.1 +. (0.8 *. Rng.uniform rng)) in
  let icm = Icm.create g probs in
  let pairs = List.init 3 (fun _ -> connected_pair rng g) in
  let conds k =
    Conditions.v
      (List.filteri (fun i _ -> i < k)
         (List.map (fun (u, v) -> (u, v, true)) pairs))
  in
  Printf.printf "sampler bench: %d nodes, %d edges (quick=%b)\n%!"
    (Digraph.n_nodes g) m quick;
  let counts = [ 0; 1; 3 ] in
  let measure_legacy k =
    let chain_rng = Rng.create (808 + k) in
    let chain = Legacy.create chain_rng icm (conds k) in
    timed (Legacy.advance chain_rng chain)
  in
  let measure_incremental k =
    let chain_rng = Rng.create (808 + k) in
    let chain = Chain.create ~conditions:(conds k) chain_rng icm in
    timed (Chain.advance chain_rng chain)
  in
  let legacy = List.map (fun k -> (k, measure_legacy k)) counts in
  let incremental = List.map (fun k -> (k, measure_incremental k)) counts in
  (* the same chains again with the metrics registry recording: the
     ISSUE 4 gate is < 3% throughput overhead with instrumentation on.
     The two modes are interleaved and the best of three passes kept
     per mode, so CPU-frequency drift across the run doesn't
     masquerade as (or hide) instrumentation cost. *)
  let overhead_pair k =
    let off = ref 0.0 and on = ref 0.0 in
    for _ = 1 to 3 do
      off := Float.max !off (measure_incremental k);
      Metrics.set_recording true;
      on := Float.max !on (measure_incremental k);
      Metrics.set_recording false
    done;
    (!off, !on)
  in
  let overhead = List.map (fun k -> (k, overhead_pair k)) counts in
  let metrics_off = List.map (fun (k, (off, _)) -> (k, off)) overhead in
  let metrics_on = List.map (fun (k, (_, on)) -> (k, on)) overhead in
  let overhead_pct =
    List.map (fun (k, (off, on)) -> (k, 100.0 *. (off -. on) /. off)) overhead
  in
  Printf.printf "%12s %16s %16s %10s\n" "conditions" "legacy steps/s"
    "incremental" "speedup";
  List.iter2
    (fun (k, l) (_, i) ->
      Printf.printf "%12d %16.0f %16.0f %9.1fx\n" k l i (i /. l))
    legacy incremental;
  Printf.printf "%12s %16s %16s %10s\n" "conditions" "metrics off"
    "metrics on" "overhead";
  List.iter
    (fun (k, (off, on)) ->
      Printf.printf "%12d %16.0f %16.0f %9.1f%%\n" k off on
        (100.0 *. (off -. on) /. off))
    overhead;
  let json =
    let b = Buffer.create 1024 in
    let rates label xs =
      Buffer.add_string b (Printf.sprintf "    %S: {" label);
      List.iteri
        (fun i (k, r) ->
          Buffer.add_string b
            (Printf.sprintf "%s\"c%d\": %.0f" (if i > 0 then ", " else "") k r))
        xs;
      Buffer.add_string b "}"
    in
    Buffer.add_string b "{\n";
    Buffer.add_string b "  \"bench\": \"sampler_steps_per_sec\",\n";
    Buffer.add_string b "  \"pr\": 2,\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"graph\": {\"nodes\": %d, \"edges\": %d, \"generator\": \
          \"preferential_attachment\", \"seed\": 20120402},\n"
         (Digraph.n_nodes g) m);
    Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" quick);
    Buffer.add_string b "  \"baseline_pre_pr\": {\n";
    Buffer.add_string b
      "    \"note\": \"seed implementation, full mode, development \
       machine, recorded at PR 2\",\n";
    rates "steps_per_sec" baseline_pre_pr;
    Buffer.add_string b "\n  },\n";
    Buffer.add_string b "  \"measured\": {\n";
    rates "legacy_fresh_bfs" legacy;
    Buffer.add_string b ",\n";
    rates "incremental" incremental;
    Buffer.add_string b "\n  },\n";
    Buffer.add_string b "  \"speedup_incremental_vs_legacy\": {";
    List.iteri
      (fun i ((k, l), (_, inc)) ->
        Buffer.add_string b
          (Printf.sprintf "%s\"c%d\": %.1f"
             (if i > 0 then ", " else "")
             k (inc /. l)))
      (List.combine legacy incremental);
    Buffer.add_string b "}\n";
    Buffer.add_string b "}\n";
    Buffer.contents b
  in
  let oc = open_out "BENCH_PR2.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_PR2.json\n%!";
  (* PR 4: instrumentation overhead and the registry's own view of the
     metrics-on run, merged into BENCH_PR4.json next to the stream
     bench's section *)
  let num x = Jsonl.Num x in
  let rates ?(round = true) xs =
    Jsonl.Obj
      (List.map
         (fun (k, r) ->
           (Printf.sprintf "c%d" k, num (if round then Float.round r else r)))
         xs)
  in
  Bench_obs.update_bench_json ~key:"sampler"
    (Jsonl.Obj
       [
         ("bench", Jsonl.Str "sampler_metrics_overhead");
         ("pr", num 4.0);
         ("quick", Jsonl.Bool quick);
         ( "graph",
           Jsonl.Obj
             [
               ("nodes", num (float_of_int (Digraph.n_nodes g)));
               ("edges", num (float_of_int m));
               ("generator", Jsonl.Str "preferential_attachment");
               ("seed", num 20120402.0);
             ] );
         ("metrics_off_steps_per_sec", rates metrics_off);
         ("metrics_on_steps_per_sec", rates metrics_on);
         ("overhead_pct", rates ~round:false overhead_pct);
         ("target_overhead_pct", num 3.0);
         ("obs_snapshot", Bench_obs.snapshot ());
       ]);
  Bench_obs.write_metrics_out ()
