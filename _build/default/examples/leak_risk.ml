(* Risk-aware information leakage: the paper's motivating scenario of
   "assessing or limiting the damage associated with the undesired
   disclosure of sensitive information".

   An organisation's sharing network is modelled as a betaICM trained
   from past document-sharing cascades. A sensitive document has just
   been seen on an internal analyst's desk; we ask:

   1. How likely is it to reach the external contractor at all?
   2. Conditional on the fact we already know it reached the analyst,
      how do other estimates shift?
   3. Since the model is uncertain, what does the *distribution* of
      that leak probability look like (risk quantiles, not just means)?

   Run with: dune exec examples/leak_risk.exe *)
module Digraph = Iflow_graph.Digraph
module Rng = Iflow_stats.Rng
module Icm = Iflow_core.Icm
module Cascade = Iflow_core.Cascade
module Beta_icm = Iflow_core.Beta_icm
module Estimator = Iflow_mcmc.Estimator
module Conditions = Iflow_mcmc.Conditions
module Nested = Iflow_mcmc.Nested
module Descriptive = Iflow_stats.Descriptive

(* A small organisation: 0 = CEO office, 1-3 = managers, 4-7 = analysts,
   8 = external contractor, 9 = competitor contact. *)
let names =
  [| "ceo"; "mgr-eng"; "mgr-sales"; "mgr-ops"; "analyst-a"; "analyst-b";
     "analyst-c"; "analyst-d"; "contractor"; "competitor" |]

let sharing_edges =
  [
    (0, 1); (0, 2); (0, 3); (* ceo briefs managers *)
    (1, 4); (1, 5); (2, 5); (2, 6); (3, 6); (3, 7); (* managers brief analysts *)
    (4, 5); (5, 6); (6, 7); (7, 4); (* analysts gossip in a ring *)
    (5, 8); (6, 8); (* two analysts work with the contractor *)
    (8, 9); (* the contractor talks to a competitor contact *)
  ]

(* Ground-truth sharing propensities, used only to simulate the history
   the model trains on. *)
let truth g rng =
  Icm.create g
    (Array.init (Digraph.n_edges g) (fun e ->
         let { Digraph.src; dst } = Digraph.edge g e in
         if dst = 9 then 0.3 (* contractor leaks to competitor sometimes *)
         else if dst = 8 then 0.25
         else if src = 0 then 0.9 (* top-down briefings almost always land *)
         else 0.2 +. (0.3 *. Rng.uniform rng)))

let () =
  let rng = Rng.create 7 in
  let g = Digraph.of_edges ~nodes:(Array.length names) sharing_edges in
  let ground_truth = truth g rng in

  (* Train from 400 past document cascades, all starting at the CEO. *)
  let history =
    List.init 400 (fun _ -> Cascade.run rng ground_truth ~sources:[ 0 ])
  in
  let model = Beta_icm.train_attributed g history in
  let icm = Beta_icm.expected_icm model in
  let config = { Estimator.burn_in = 1000; thin = 10; samples = 4000 } in

  let competitor = 9 and contractor = 8 and analyst_b = 5 in
  Printf.printf "Leak-risk analysis for a document originating at %s\n\n"
    names.(0);

  (* 1. Unconditional leak probabilities. *)
  let p_contractor =
    Estimator.flow_probability rng icm config ~src:0 ~dst:contractor
  in
  let p_competitor =
    Estimator.flow_probability rng icm config ~src:0 ~dst:competitor
  in
  Printf.printf "Pr(reaches %-10s) = %.3f\n" names.(contractor) p_contractor;
  Printf.printf "Pr(reaches %-10s) = %.3f\n\n" names.(competitor) p_competitor;

  (* 2. Incident response: the document has been spotted with analyst-b.
        Conditional flow sharpens every downstream estimate. *)
  let seen = Conditions.v [ (0, analyst_b, true) ] in
  let p_competitor_given =
    Estimator.flow_probability ~conditions:seen rng icm config ~src:0
      ~dst:competitor
  in
  Printf.printf "Document confirmed at %s.\n" names.(analyst_b);
  Printf.printf "Pr(reaches %-10s | seen at %s) = %.3f  (was %.3f)\n\n"
    names.(competitor) names.(analyst_b) p_competitor_given p_competitor;

  (* 3. Risk-aware view: the betaICM's uncertainty induces a
        distribution over the leak probability itself. A risk officer
        cares about the 95th percentile, not the mean. *)
  let samples =
    Nested.flow_samples rng model config ~reps:80 ~src:0 ~dst:competitor
  in
  let mean, (lo, hi) = Nested.mean_and_interval samples in
  Printf.printf "Leak probability to %s under model uncertainty:\n"
    names.(competitor);
  Printf.printf "  mean %.3f, central 95%% interval [%.3f, %.3f]\n" mean lo hi;
  Printf.printf "  95th percentile (risk figure): %.3f\n"
    (Descriptive.quantile samples 0.95);

  (* 4. Timing: sharing takes time (edge latency). How likely is the
        document to be outside within 48 hours — the window the incident
        team has to rotate the credentials it contains? *)
  let latency =
    Iflow_mcmc.Delay.uniform_delay icm
      (Iflow_mcmc.Delay.Exponential 12.0 (* hours per hop, on average *))
  in
  let p48 =
    Iflow_mcmc.Delay.probability_within rng latency config ~src:0
      ~dst:competitor ~deadline:48.0
  in
  let arrivals =
    Iflow_mcmc.Delay.arrival_samples rng latency config ~src:0 ~dst:competitor
  in
  Printf.printf "\nWith ~12h average sharing latency per hop:\n";
  Printf.printf "Pr(reaches %s within 48h) = %.3f (eventual: %.3f)\n"
    names.(competitor) p48 p_competitor;
  if Array.length arrivals.Iflow_mcmc.Delay.times > 0 then
    Printf.printf "median time-to-leak when it happens: %.0f hours\n"
      (Descriptive.median arrivals.Iflow_mcmc.Delay.times);

  (* 5. Mitigation what-if: cutting both analyst-contractor links. *)
  let probs = Icm.probs icm in
  List.iteri
    (fun e (_, dst) -> if dst = contractor then probs.(e) <- 0.0)
    (Digraph.edges g);
  let hardened = Icm.create g probs in
  Printf.printf
    "\nAfter revoking the contractor's access (both inbound links):\n";
  Printf.printf "Pr(reaches %-10s) = %.3f\n" names.(competitor)
    (Estimator.flow_probability rng hardened config ~src:0 ~dst:competitor)
