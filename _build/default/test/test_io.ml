(* Round-trip and error-handling tests for iflow_io. *)
module Digraph = Iflow_graph.Digraph
module Gen = Iflow_graph.Gen
module Rng = Iflow_stats.Rng
module Beta = Iflow_stats.Dist.Beta
module Icm = Iflow_core.Icm
module Beta_icm = Iflow_core.Beta_icm
module Generator = Iflow_core.Generator
module Model_io = Iflow_io.Model_io
module Tweet = Iflow_twitter.Tweet

let temp_file suffix =
  Filename.temp_file "iflow_test" suffix

let with_temp suffix f =
  let path = temp_file suffix in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_beta_icm_roundtrip () =
  let rng = Rng.create 301 in
  let model = Generator.default_beta_icm rng ~nodes:20 ~edges:60 in
  with_temp ".bicm" (fun path ->
      Model_io.save_beta_icm path model;
      let loaded = Model_io.load_beta_icm path in
      Alcotest.(check int) "nodes" 20 (Beta_icm.n_nodes loaded);
      Alcotest.(check int) "edges" 60 (Beta_icm.n_edges loaded);
      let g = Beta_icm.graph model and g' = Beta_icm.graph loaded in
      for e = 0 to 59 do
        Alcotest.(check int) "src" (Digraph.edge_src g e) (Digraph.edge_src g' e);
        Alcotest.(check int) "dst" (Digraph.edge_dst g e) (Digraph.edge_dst g' e);
        let b = Beta_icm.edge_beta model e and b' = Beta_icm.edge_beta loaded e in
        Alcotest.(check (float 1e-12)) "alpha" b.Beta.alpha b'.Beta.alpha;
        Alcotest.(check (float 1e-12)) "beta" b.Beta.beta b'.Beta.beta
      done)

let test_icm_roundtrip () =
  let rng = Rng.create 302 in
  let g = Gen.gnm rng ~nodes:10 ~edges:25 in
  let icm = Icm.create g (Array.init 25 (fun _ -> Rng.uniform rng)) in
  with_temp ".icm" (fun path ->
      Model_io.save_icm path icm;
      let loaded = Model_io.load_icm path in
      for e = 0 to 24 do
        Alcotest.(check (float 1e-12)) "prob" (Icm.prob icm e)
          (Icm.prob loaded e)
      done)

let test_tweets_roundtrip () =
  let tweets =
    [
      Tweet.make ~id:1 ~author:"alice" ~time:3 ~text:"hello #x http://t.co/a";
      Tweet.make ~id:2 ~author:"bob" ~time:5 ~text:"RT @alice: hello #x";
    ]
  in
  with_temp ".tsv" (fun path ->
      Model_io.save_tweets path tweets;
      let loaded = Model_io.load_tweets path in
      Alcotest.(check int) "count" 2 (List.length loaded);
      List.iter2
        (fun (a : Tweet.t) (b : Tweet.t) ->
          Alcotest.(check int) "id" a.Tweet.id b.Tweet.id;
          Alcotest.(check string) "author" a.Tweet.author b.Tweet.author;
          Alcotest.(check int) "time" a.Tweet.time b.Tweet.time;
          Alcotest.(check string) "text" a.Tweet.text b.Tweet.text)
        tweets loaded)

let test_tweets_sanitised () =
  (* tabs/newlines in text must not break the TSV format *)
  let dirty = [ Tweet.make ~id:1 ~author:"a" ~time:0 ~text:"has\ttab\nand nl" ] in
  with_temp ".tsv" (fun path ->
      Model_io.save_tweets path dirty;
      match Model_io.load_tweets path with
      | [ t ] -> Alcotest.(check string) "sanitised" "has tab and nl" t.Tweet.text
      | other -> Alcotest.failf "expected 1 tweet, got %d" (List.length other))

let test_names_roundtrip () =
  with_temp ".names" (fun path ->
      Model_io.save_names path [| "alice"; "bob"; "carol" |];
      Alcotest.(check (array string)) "names" [| "alice"; "bob"; "carol" |]
        (Model_io.load_names path))

let expect_failure what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Failure" what
  | exception Failure _ -> ()

let test_malformed_inputs () =
  with_temp ".bicm" (fun path ->
      let write s =
        let oc = open_out path in
        output_string oc s;
        close_out oc
      in
      write "wrong header\n";
      expect_failure "bad magic" (fun () -> Model_io.load_beta_icm path);
      write "bicm 3\n0 1 notanumber 2\n";
      expect_failure "bad payload" (fun () -> Model_io.load_beta_icm path);
      write "bicm 3\n0 1 2.0 -1.0\n";
      expect_failure "negative beta" (fun () -> Model_io.load_beta_icm path);
      write "bicm 2\n0 5 1 1\n";
      (* out-of-range endpoint: surfaced by graph construction *)
      (match Model_io.load_beta_icm path with
      | _ -> Alcotest.fail "expected failure"
      | exception (Failure _ | Invalid_argument _) -> ());
      write "icm 2\n0 1 1.5\n";
      expect_failure "probability out of range" (fun () ->
          Model_io.load_icm path))

let () =
  Alcotest.run "iflow_io"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "beta icm" `Quick test_beta_icm_roundtrip;
          Alcotest.test_case "icm" `Quick test_icm_roundtrip;
          Alcotest.test_case "tweets" `Quick test_tweets_roundtrip;
          Alcotest.test_case "tweet sanitising" `Quick test_tweets_sanitised;
          Alcotest.test_case "names" `Quick test_names_roundtrip;
        ] );
      ( "errors",
        [ Alcotest.test_case "malformed inputs" `Quick test_malformed_inputs ] );
    ]
