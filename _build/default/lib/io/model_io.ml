module Digraph = Iflow_graph.Digraph
module Beta = Iflow_stats.Dist.Beta
module Beta_icm = Iflow_core.Beta_icm
module Icm = Iflow_core.Icm
module Tweet = Iflow_twitter.Tweet

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let with_in path f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let fold_lines ic f init =
  let rec loop lineno acc =
    match input_line ic with
    | line -> loop (lineno + 1) (f lineno acc line)
    | exception End_of_file -> acc
  in
  loop 1 init

let malformed path lineno what =
  failwith (Printf.sprintf "%s:%d: malformed %s" path lineno what)

(* ----- graph-with-edge-payload formats ----- *)

let save_edges path ~magic ~nodes ~n_edges ~edge_line =
  with_out path (fun oc ->
      Printf.fprintf oc "%s %d\n" magic nodes;
      for e = 0 to n_edges - 1 do
        output_string oc (edge_line e);
        output_char oc '\n'
      done)

let load_edges path ~magic ~parse_payload =
  with_in path (fun ic ->
      let header = try input_line ic with End_of_file -> "" in
      let nodes =
        match String.split_on_char ' ' header with
        | [ m; n ] when m = magic -> (
          match int_of_string_opt n with
          | Some n when n >= 0 -> n
          | Some _ | None -> malformed path 1 "header")
        | _ -> malformed path 1 (Printf.sprintf "header (expected '%s <n>')" magic)
      in
      let rows =
        fold_lines ic
          (fun lineno acc line ->
            if String.trim line = "" then acc
            else begin
              match String.split_on_char ' ' line with
              | src :: dst :: payload -> (
                match (int_of_string_opt src, int_of_string_opt dst) with
                | Some s, Some d -> (s, d, parse_payload path (lineno + 1) payload) :: acc
                | _ -> malformed path (lineno + 1) "edge endpoints")
              | _ -> malformed path (lineno + 1) "edge line"
            end)
          []
      in
      (nodes, List.rev rows))

let save_beta_icm path model =
  let g = Beta_icm.graph model in
  save_edges path ~magic:"bicm" ~nodes:(Digraph.n_nodes g)
    ~n_edges:(Digraph.n_edges g) ~edge_line:(fun e ->
      let { Digraph.src; dst } = Digraph.edge g e in
      let b = Beta_icm.edge_beta model e in
      Printf.sprintf "%d %d %.17g %.17g" src dst b.Beta.alpha b.Beta.beta)

let load_beta_icm path =
  let parse path lineno = function
    | [ a; b ] -> (
      match (float_of_string_opt a, float_of_string_opt b) with
      | Some a, Some b when a > 0.0 && b > 0.0 -> Beta.v a b
      | _ -> malformed path lineno "beta parameters")
    | _ -> malformed path lineno "beta parameters"
  in
  let nodes, rows = load_edges path ~magic:"bicm" ~parse_payload:parse in
  let g = Digraph.of_edges ~nodes (List.map (fun (s, d, _) -> (s, d)) rows) in
  Beta_icm.create g (Array.of_list (List.map (fun (_, _, b) -> b) rows))

let save_icm path icm =
  let g = Icm.graph icm in
  save_edges path ~magic:"icm" ~nodes:(Digraph.n_nodes g)
    ~n_edges:(Digraph.n_edges g) ~edge_line:(fun e ->
      let { Digraph.src; dst } = Digraph.edge g e in
      Printf.sprintf "%d %d %.17g" src dst (Icm.prob icm e))

let load_icm path =
  let parse path lineno = function
    | [ p ] -> (
      match float_of_string_opt p with
      | Some p when p >= 0.0 && p <= 1.0 -> p
      | _ -> malformed path lineno "probability")
    | _ -> malformed path lineno "probability"
  in
  let nodes, rows = load_edges path ~magic:"icm" ~parse_payload:parse in
  let g = Digraph.of_edges ~nodes (List.map (fun (s, d, _) -> (s, d)) rows) in
  Icm.create g (Array.of_list (List.map (fun (_, _, p) -> p) rows))

(* ----- tweets ----- *)

let sanitise text =
  String.map (fun c -> if c = '\t' || c = '\n' || c = '\r' then ' ' else c) text

let save_tweets path tweets =
  with_out path (fun oc ->
      List.iter
        (fun (t : Tweet.t) ->
          Printf.fprintf oc "%d\t%s\t%d\t%s\n" t.Tweet.id t.Tweet.author
            t.Tweet.time (sanitise t.Tweet.text))
        tweets)

let load_tweets path =
  with_in path (fun ic ->
      List.rev
        (fold_lines ic
           (fun lineno acc line ->
             if String.trim line = "" then acc
             else begin
               match String.split_on_char '\t' line with
               | [ id; author; time; text ] -> (
                 match (int_of_string_opt id, int_of_string_opt time) with
                 | Some id, Some time ->
                   Tweet.make ~id ~author ~time ~text :: acc
                 | _ -> malformed path lineno "tweet ids")
               | _ -> malformed path lineno "tweet line"
             end)
           []))

let save_names path names =
  with_out path (fun oc ->
      Array.iter (fun n -> Printf.fprintf oc "%s\n" n) names)

let load_names path =
  with_in path (fun ic ->
      Array.of_list (List.rev (fold_lines ic (fun _ acc line -> line :: acc) [])))
