open Iflow_core
open Iflow_twitter
open Iflow_learn
module Digraph = Iflow_graph.Digraph
module Traverse = Iflow_graph.Traverse
module Rng = Iflow_stats.Rng
module Measures = Iflow_stats.Measures
module Estimator = Iflow_mcmc.Estimator
module Bucket = Iflow_bucket.Bucket

type method_name = Ours | Goyal | Ours_gaussian of int

let method_label = function
  | Ours -> "ours"
  | Goyal -> "goyal"
  | Ours_gaussian reps -> Printf.sprintf "ours-gaussian(%d reps)" reps

type result = {
  kind : Unattributed.item_kind;
  radius : int;
  trainer : method_name;
  bucket : Bucket.t;
}

(* First real (non-omnipotent) user of each item, by activation time. *)
let originator (tr : Evidence.trace) ~omni =
  let best = ref None in
  Array.iteri
    (fun v t ->
      if v <> omni && t >= 0 then begin
        match !best with
        | Some (_, t0) when t0 <= t -> ()
        | _ -> best := Some (v, t)
      end)
    tr.Evidence.times;
  Option.map fst !best

let split_items rng items =
  let arr = Array.of_list items in
  Rng.shuffle rng arr;
  let cut = 4 * Array.length arr / 5 in
  ( Array.to_list (Array.sub arr 0 cut),
    Array.to_list (Array.sub arr cut (Array.length arr - cut)) )

(* Focus users: top originators of training items that also originate at
   least one test item (otherwise there is nothing to predict). *)
let choose_focuses ~count ~nodes ~omni ~train_traces ~test_traces =
  let train_counts = Array.make nodes 0 in
  List.iter
    (fun tr ->
      match originator tr ~omni with
      | Some v -> train_counts.(v) <- train_counts.(v) + 1
      | None -> ())
    train_traces;
  let has_test = Array.make nodes false in
  List.iter
    (fun tr ->
      match originator tr ~omni with
      | Some v -> has_test.(v) <- true
      | None -> ())
    test_traces;
  let ranked =
    List.init nodes (fun v -> (train_counts.(v), v))
    |> List.filter (fun (c, v) -> c > 0 && has_test.(v))
    |> List.sort (fun a b -> compare b a)
  in
  List.filteri (fun i _ -> i < count) (List.map snd ranked)

let jb_options scale =
  Scale.pick scale
    ~quick:
      { Joint_bayes.default_options with burn_in = 120; samples = 150; thin = 2 }
    ~full:
      { Joint_bayes.default_options with burn_in = 300; samples = 400; thin = 3 }

(* Train every sink inside [keep] with the joint Bayes or Goyal method;
   returns the per-sink estimates. *)
let train_estimates scale rng method_ aug train_traces ~keep ~omni =
  let estimates = ref [] in
  Array.iteri
    (fun sink inside ->
      if inside && sink <> omni then begin
        let summary = Summary.build aug train_traces ~sink in
        if Summary.n_entries summary > 0 then begin
          let est =
            match method_ with
            | Ours | Ours_gaussian _ ->
              Joint_bayes.train ~options:(jb_options scale) rng summary
            | Goyal -> Iflow_learn.Goyal.train summary
          in
          estimates := est :: !estimates
        end
      end)
    keep;
  !estimates

(* Flow estimates from one focus to every kept node, according to the
   method: a single source_to_all on the point ICM, or one per Gaussian
   resample. Returns a list of per-node probability arrays (one per
   repetition; singleton for point methods). *)
let flow_tables rng method_ aug estimates config ~focus =
  match method_ with
  | Ours | Goyal ->
    let icm = Trainer.apply_to_icm (Icm.const aug 0.0) estimates in
    [ Estimator.source_to_all rng icm config ~src:focus ]
  | Ours_gaussian reps ->
    let mean, std =
      Trainer.mean_std_arrays aug ~default_mean:0.0 ~default_std:0.0 estimates
    in
    List.init reps (fun _ ->
        let icm = Beta_icm.mean_std_icm rng ~mean ~std aug in
        Estimator.source_to_all rng icm config ~src:focus)

let run scale rng (lab : Twitter_lab.t) ~kind ~radii ~methods =
  let g = lab.Twitter_lab.graph in
  let aug, omni = Unattributed.augment_with_omnipotent g in
  let node_of_name = Corpus.node_of_name lab.Twitter_lab.corpus in
  let traces =
    Unattributed.item_traces ~kind ~node_of_name
      ~n_nodes:(Digraph.n_nodes aug) ~omni lab.Twitter_lab.corpus.Corpus.tweets
  in
  let traces = List.map snd traces in
  let train_traces, test_traces = split_items rng traces in
  let focus_count = Scale.pick scale ~quick:5 ~full:10 in
  let focuses =
    choose_focuses ~count:focus_count ~nodes:(Digraph.n_nodes g) ~omni
      ~train_traces ~test_traces
  in
  let config = Scale.mcmc scale in
  List.concat_map
    (fun radius ->
      List.map
        (fun trainer ->
          let predictions = ref [] in
          List.iter
            (fun focus ->
              let keep_users =
                Traverse.within_radius ~direction:Traverse.Both g
                  ~centre:focus ~radius
              in
              (* omnipotent user always kept: it feeds every in-star *)
              let keep = Array.append keep_users [| true |] in
              let estimates =
                train_estimates scale rng trainer aug train_traces ~keep ~omni
              in
              let tables =
                flow_tables rng trainer aug estimates config ~focus
              in
              List.iter
                (fun (tr : Evidence.trace) ->
                  match originator tr ~omni with
                  | Some origin when origin = focus ->
                    List.iter
                      (fun flow ->
                        Array.iteri
                          (fun v inside ->
                            if inside && v <> focus && v <> omni then
                              predictions :=
                                {
                                  Measures.estimate = flow.(v);
                                  outcome = tr.Evidence.times.(v) >= 0;
                                }
                                :: !predictions)
                          keep)
                      tables
                  | Some _ | None -> ())
                test_traces)
            focuses;
          let label =
            Printf.sprintf "%s radius %d (%s)"
              (match kind with
              | Unattributed.Url -> "URLs"
              | Unattributed.Hashtag -> "hashtags")
              radius (method_label trainer)
          in
          let bucket =
            match !predictions with
            | [] ->
              Bucket.run ~bins:30 ~label
                [ { Measures.estimate = 0.0; outcome = false } ]
            | preds -> Bucket.run ~bins:30 ~label preds
          in
          { kind; radius; trainer; bucket })
        methods)
    radii

let report scale rng lab ~kind ppf =
  let results = run scale rng lab ~kind ~radii:[ 4; 5 ] ~methods:[ Ours; Goyal ] in
  let title =
    match kind with
    | Unattributed.Url -> "Fig 8: flow of URLs"
    | Unattributed.Hashtag -> "Fig 9: flow of hashtags"
  in
  Format.fprintf ppf "@[<v>== %s (unattributed training) ==@," title;
  List.iter
    (fun r ->
      Format.fprintf ppf "-- radius %d, %s --@,%a" r.radius
        (method_label r.trainer) Bucket.pp r.bucket)
    results;
  Format.fprintf ppf "@]";
  results
