test/test_twitter.ml: Alcotest Array Corpus Float Hashtbl Iflow_core Iflow_graph Iflow_stats Iflow_twitter List Preprocess Printf String Tweet Unattributed
