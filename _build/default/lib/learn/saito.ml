module Summary = Iflow_core.Summary
module Evidence = Iflow_core.Evidence
module Digraph = Iflow_graph.Digraph
module Rng = Iflow_stats.Rng

type options = {
  max_iterations : int;
  tolerance : float;
  init : [ `Half | `Random of Rng.t ];
}

let default_options = { max_iterations = 200; tolerance = 1e-10; init = `Half }

(* Keep estimates strictly inside (0, 1) so the E step never divides by
   a vanishing characteristic probability. *)
let clamp p = Float.max 1e-9 (Float.min (1.0 -. 1e-9) p)

let em_on_summary options (summary : Summary.t) =
  let parents = Summary.parents_union summary in
  let d = Array.length parents in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i p -> Hashtbl.add index p i) parents;
  let kappa =
    Array.init d (fun _ ->
        match options.init with
        | `Half -> 0.5
        | `Random rng -> clamp (Rng.uniform rng))
  in
  (* Denominator sum_{J ∋ v} n_J is iteration-independent. *)
  let exposure = Array.make d 0.0 in
  List.iter
    (fun (e : Summary.entry) ->
      Array.iter
        (fun p ->
          let i = Hashtbl.find index p in
          exposure.(i) <- exposure.(i) +. float_of_int e.count)
        e.parents)
    summary.entries;
  let numerator = Array.make d 0.0 in
  let iteration () =
    Array.fill numerator 0 d 0.0;
    List.iter
      (fun (e : Summary.entry) ->
        if e.leaks > 0 then begin
          (* E step for this characteristic: P_J under current kappa. *)
          let p_j =
            1.0
            -. Array.fold_left
                 (fun acc p ->
                   acc *. (1.0 -. kappa.(Hashtbl.find index p)))
                 1.0 e.parents
          in
          let p_j = Float.max p_j 1e-12 in
          Array.iter
            (fun p ->
              let i = Hashtbl.find index p in
              numerator.(i) <-
                numerator.(i) +. (float_of_int e.leaks *. kappa.(i) /. p_j))
            e.parents
        end)
      summary.entries;
    let delta = ref 0.0 in
    for i = 0 to d - 1 do
      if exposure.(i) > 0.0 then begin
        let updated = clamp (numerator.(i) /. exposure.(i)) in
        delta := Float.max !delta (Float.abs (updated -. kappa.(i)));
        kappa.(i) <- updated
      end
    done;
    !delta
  in
  let rec run i =
    if i < options.max_iterations then begin
      let delta = iteration () in
      if delta > options.tolerance then run (i + 1)
    end
  in
  run 0;
  {
    Trainer.sink = summary.sink;
    parents;
    mean = Array.copy kappa;
    std = Array.make d 0.0;
  }

let train ?(options = default_options) summary = em_on_summary options summary

let discrete_summary g traces ~sink =
  let rows = Hashtbl.create 64 in
  let observe parents leaked =
    let key = Array.to_list parents in
    let count, leaks =
      match Hashtbl.find_opt rows key with
      | Some row -> row
      | None ->
        let row = (ref 0, ref 0) in
        Hashtbl.add rows key row;
        row
    in
    incr count;
    if leaked then incr leaks
  in
  List.iter
    (fun (tr : Evidence.trace) ->
      if not (List.mem sink tr.trace_sources) then begin
        let t_sink = tr.times.(sink) in
        let parent_times =
          List.filter_map
            (fun u ->
              if tr.times.(u) >= 0 then Some (u, tr.times.(u)) else None)
            (Digraph.in_neighbours g sink)
        in
        (* One observation per step t at which some in-neighbour
           activated at t - 1, while the sink was not yet active. *)
        let steps =
          List.sort_uniq compare (List.map (fun (_, t) -> t + 1) parent_times)
        in
        List.iter
          (fun t ->
            if t_sink < 0 || t <= t_sink then begin
              let at_step =
                List.filter_map
                  (fun (u, tu) -> if tu = t - 1 then Some u else None)
                  parent_times
              in
              match at_step with
              | [] -> ()
              | ps ->
                observe
                  (Array.of_list (List.sort_uniq compare ps))
                  (t_sink = t)
            end)
          steps
      end)
    traces;
  let table =
    Hashtbl.fold
      (fun key (count, leaks) acc ->
        (Array.of_list key, !count, !leaks) :: acc)
      rows []
  in
  Summary.of_table ~sink table

let train_discrete ?(options = default_options) g traces ~sink =
  em_on_summary options (discrete_summary g traces ~sink)

let restarts ?options rng ~n summary =
  let base = Option.value options ~default:default_options in
  List.init n (fun _ ->
      em_on_summary { base with init = `Random (Rng.split rng) } summary)
