(* Tests for the network serving layer (lib/serve) and the engine
   thread-safety it rests on.

   The acceptance criteria pinned here:
   - serve ≡ batch: answers delivered over a socket parse back
     bit-identical to Engine.query on the same model, seed, and config,
     regardless of client concurrency;
   - bounded backlog: with the executors stalled, exactly
     queue_capacity requests wait and the next one is refused
     immediately with a typed over_capacity response;
   - quotas: a tenant's token bucket grants its burst and then denies
     with quota_exceeded and a retry hint, without touching other
     tenants;
   - hot-swap consistency: under concurrent query traffic and live
     evidence ingestion, every answer's (version, digest) pair is one
     the learner actually published (no torn version), and a failed
     swap degrades the server instead of killing it;
   - concurrent Engine.query callers (threads sharing one engine,
     racing cache hits against swaps) always observe one of the models
     ever installed, bit for bit. *)

module Rng = Iflow_stats.Rng
module Beta = Iflow_stats.Dist.Beta
module Gen = Iflow_graph.Gen
module Digraph = Iflow_graph.Digraph
module Icm = Iflow_core.Icm
module Beta_icm = Iflow_core.Beta_icm
module Cascade = Iflow_core.Cascade
module Engine = Iflow_engine.Engine
module Query = Iflow_engine.Query
module Jsonl = Iflow_engine.Jsonl
module Event = Iflow_stream.Event
module Online = Iflow_stream.Online
module Snapshot = Iflow_stream.Snapshot
module Runner = Iflow_stream.Runner
module Fail = Iflow_fault.Fail
module Bqueue = Iflow_serve.Bqueue
module Quota = Iflow_serve.Quota
module Sockio = Iflow_serve.Sockio
module Http = Iflow_serve.Http
module Wire = Iflow_serve.Wire
module Server = Iflow_serve.Server
module Flight = Iflow_obs.Flight
module Trace = Iflow_obs.Trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_float msg a b = Alcotest.(check (float 0.0)) msg a b

(* a small model answering queries quickly under a tight MCMC budget *)
let five_node_icm seed =
  let rng = Rng.create seed in
  let g = Gen.gnm rng ~nodes:5 ~edges:12 in
  Icm.create g (Array.init 12 (fun _ -> 0.1 +. (0.8 *. Rng.uniform rng)))

let fast_config =
  {
    Engine.default_config with
    Engine.chains = 2;
    burn_in = 50;
    thin = 2;
    round_samples = 100;
    max_samples = 400;
    rhat_target = 10.0;
    (* effectively unreachable: every query runs to max_samples, so the
       sample count is deterministic *)
    mcse_target = 1e-12;
  }

let spin ?(timeout_s = 10.0) msg cond =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if cond () then ()
    else if Unix.gettimeofday () -. t0 > timeout_s then
      Alcotest.failf "timed out waiting for %s" msg
    else begin
      Thread.yield ();
      go ()
    end
  in
  go ()

(* ---------- Bqueue ---------- *)

let test_bqueue_order () =
  let q = Bqueue.create 8 in
  List.iter (fun i -> check_bool "push" true (Bqueue.try_push q i)) [ 1; 2; 3 ];
  check_int "length" 3 (Bqueue.length q);
  check_int "fifo 1" 1 (Option.get (Bqueue.pop q));
  check_int "fifo 2" 2 (Option.get (Bqueue.pop q));
  check_int "fifo 3" 3 (Option.get (Bqueue.pop q))

let test_bqueue_bounded () =
  let q = Bqueue.create 2 in
  check_bool "1 fits" true (Bqueue.try_push q 1);
  check_bool "2 fits" true (Bqueue.try_push q 2);
  check_bool "3 refused" false (Bqueue.try_push q 3);
  ignore (Bqueue.pop q);
  check_bool "space again" true (Bqueue.try_push q 3);
  check_int "capacity" 2 (Bqueue.capacity q)

let test_bqueue_close () =
  let q = Bqueue.create 4 in
  ignore (Bqueue.try_push q 1);
  Bqueue.close q;
  check_bool "closed refuses pushes" false (Bqueue.try_push q 2);
  check_bool "is_closed" true (Bqueue.is_closed q);
  (* drains what was admitted, then reports end-of-stream *)
  check_int "drains" 1 (Option.get (Bqueue.pop q));
  check_bool "then None" true (Bqueue.pop q = None)

let test_bqueue_blocking_pop () =
  let q = Bqueue.create 4 in
  let got = ref None in
  let th = Thread.create (fun () -> got := Bqueue.pop q) () in
  Thread.yield ();
  ignore (Bqueue.try_push q 42);
  Thread.join th;
  check_int "woken with the value" 42 (Option.get !got);
  (* close wakes a parked consumer too *)
  let th = Thread.create (fun () -> got := Bqueue.pop q) () in
  Thread.yield ();
  Bqueue.close q;
  Thread.join th;
  check_bool "woken with None" true (!got = None)

let test_bqueue_validation () =
  match Bqueue.create 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 accepted"

(* ---------- Quota (synthetic clock: decisions are deterministic) ---------- *)

let test_quota_burst_then_deny () =
  let q = Quota.create { Quota.rate = 10.0; burst = 3.0 } in
  let admit now = Quota.admit q ~now_ns:now ~tenant:"alice" in
  for i = 1 to 3 do
    match admit 0 with
    | Quota.Granted -> ()
    | Quota.Denied _ -> Alcotest.failf "burst request %d denied" i
  done;
  (match admit 0 with
  | Quota.Denied { retry_after_ns } ->
    (* an empty bucket at 10 tokens/s refills one token in 100 ms *)
    check_int "retry hint" 100_000_000 retry_after_ns
  | Quota.Granted -> Alcotest.fail "4th burst request granted");
  (* 100 ms later exactly one token has refilled *)
  (match admit 100_000_000 with
  | Quota.Granted -> ()
  | Quota.Denied _ -> Alcotest.fail "refilled token denied");
  match admit 100_000_000 with
  | Quota.Denied _ -> ()
  | Quota.Granted -> Alcotest.fail "second token granted after one refill"

let test_quota_tenants_independent () =
  let q = Quota.create { Quota.rate = 1.0; burst = 1.0 } in
  (match Quota.admit q ~now_ns:0 ~tenant:"a" with
  | Quota.Granted -> ()
  | Quota.Denied _ -> Alcotest.fail "a denied");
  (match Quota.admit q ~now_ns:0 ~tenant:"a" with
  | Quota.Denied _ -> ()
  | Quota.Granted -> Alcotest.fail "a over-granted");
  (match Quota.admit q ~now_ns:0 ~tenant:"b" with
  | Quota.Granted -> ()
  | Quota.Denied _ -> Alcotest.fail "b starved by a's bucket");
  check_int "two buckets" 2 (Quota.tenants q)

let test_quota_refill_caps_at_burst () =
  let q = Quota.create { Quota.rate = 1000.0; burst = 2.0 } in
  (* a long quiet period must not accumulate more than [burst] tokens *)
  ignore (Quota.admit q ~now_ns:0 ~tenant:"t");
  check_float "capped" 2.0
    (Quota.tokens q ~now_ns:3_600_000_000_000 ~tenant:"t")

let test_quota_validation () =
  (match Quota.create { Quota.rate = 0.0; burst = 1.0 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rate 0 accepted");
  match Quota.create { Quota.rate = 1.0; burst = 0.5 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "burst < 1 accepted"

(* ---------- Sockio / Http over a pipe ---------- *)

let with_pipe_reader ?max_line_bytes bytes f =
  let r_fd, w_fd = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r_fd with Unix.Unix_error _ -> ());
      try Unix.close w_fd with Unix.Unix_error _ -> ())
    (fun () ->
      Sockio.write_all w_fd bytes;
      Unix.close w_fd;
      f (Sockio.reader ?max_line_bytes r_fd))

let test_sockio_lines () =
  with_pipe_reader "a\nbb\r\n\nfinal" (fun r ->
      check_string "lf" "a" (match Sockio.read_line r with
        | Sockio.Line l -> l | _ -> "<eof>");
      check_string "crlf stripped" "bb" (match Sockio.read_line r with
        | Sockio.Line l -> l | _ -> "<eof>");
      check_string "empty line" "" (match Sockio.read_line r with
        | Sockio.Line l -> l | _ -> "<eof>");
      check_string "unterminated tail" "final" (match Sockio.read_line r with
        | Sockio.Line l -> l | _ -> "<eof>");
      check_bool "then eof" true (Sockio.read_line r = Sockio.Eof))

let test_sockio_too_long () =
  (* no terminator: the reader must refuse once the accumulated bytes
     exceed the cap rather than buffering without bound *)
  with_pipe_reader ~max_line_bytes:8 (String.make 64 'x') (fun r ->
      check_bool "refused" true (Sockio.read_line r = Sockio.Too_long))

let test_http_parse () =
  let body = {|{"type":"flow","src":0,"dst":1}|} in
  let raw =
    Printf.sprintf
      "POST /query HTTP/1.1\r\nHost: x\r\nX-Tenant: Alice\r\n\
       Content-Length: %d\r\n\r\n%s"
      (String.length body) body
  in
  with_pipe_reader raw (fun r ->
      match Sockio.read_line r with
      | Sockio.Line first -> (
        check_bool "verb sniffed" true (Http.is_http_verb first);
        match Http.read_request r ~first_line:first with
        | Http.Request req ->
          check_string "method" "POST" req.Http.meth;
          check_string "path" "/query" req.Http.path;
          check_string "body" body req.Http.body;
          check_string "header case-insensitive" "Alice"
            (Option.get (Http.header req "x-TENANT"))
        | Http.Malformed m | Http.Overflow m -> Alcotest.fail m)
      | _ -> Alcotest.fail "no request line")

let test_http_rejects () =
  check_bool "jsonl is not http" false
    (Http.is_http_verb {|{"type":"flow"}|});
  with_pipe_reader "GET /x HTTP/1.1\r\nbroken header\r\n\r\n" (fun r ->
      match Sockio.read_line r with
      | Sockio.Line first -> (
        match Http.read_request r ~first_line:first with
        | Http.Malformed _ -> ()
        | _ -> Alcotest.fail "accepted header without a colon")
      | _ -> Alcotest.fail "no request line");
  with_pipe_reader "POST /x HTTP/1.1\r\nContent-Length: 99\r\n\r\nhi"
    (fun r ->
      match Sockio.read_line r with
      | Sockio.Line first -> (
        match Http.read_request ~max_body_bytes:10 r ~first_line:first with
        | Http.Overflow _ -> ()
        | _ -> Alcotest.fail "accepted oversized body")
      | _ -> Alcotest.fail "no request line")

(* ---------- Wire ---------- *)

let test_wire_result_roundtrip () =
  let r =
    {
      Engine.estimate = 0.1 +. 0.2;
      rhat = 1.000000000000004;
      ess = 1963.0960471382934;
      mcse = Float.min_float;
      total_samples = 4000;
      chains_used = 4;
      cached = true;
      partial = false;
      model_digest = "abc\"\\def";
      plan = Engine.Plan_mh { fallback = Some "unsound_join" };
    }
  in
  let line = Wire.result_line ~id:"q-1" ~version:7 ~degraded:false r in
  match Jsonl.parse line with
  | Error msg -> Alcotest.failf "unparseable: %s" msg
  | Ok json -> (
    match Wire.parsed_result json with
    | Error msg -> Alcotest.failf "decode: %s" msg
    | Ok (r', version) ->
      (* bit-for-bit, not approximately *)
      check_bool "estimate bits" true
        (Int64.equal (Int64.bits_of_float r.Engine.estimate)
           (Int64.bits_of_float r'.Engine.estimate));
      check_bool "rhat bits" true
        (Int64.equal (Int64.bits_of_float r.Engine.rhat)
           (Int64.bits_of_float r'.Engine.rhat));
      check_bool "mcse bits" true
        (Int64.equal (Int64.bits_of_float r.Engine.mcse)
           (Int64.bits_of_float r'.Engine.mcse));
      check_int "samples" r.Engine.total_samples r'.Engine.total_samples;
      check_int "chains" r.Engine.chains_used r'.Engine.chains_used;
      check_bool "cached" r.Engine.cached r'.Engine.cached;
      check_string "digest escaping" r.Engine.model_digest
        r'.Engine.model_digest;
      check_bool "plan round-trips" true (r'.Engine.plan = r.Engine.plan);
      check_int "version" 7 (Option.get version);
      check_string "id echo" "q-1"
        (match Jsonl.member "id" json with
        | Some (Jsonl.Str s) -> s
        | _ -> "<missing>"))

let test_wire_nonfinite () =
  (* rhat is nan when every sample agrees (unreachable pair); the line
     must stay valid JSON and parse back as nan *)
  let r =
    {
      Engine.estimate = 0.0;
      rhat = Float.nan;
      ess = Float.infinity;
      mcse = 0.0;
      total_samples = 400;
      chains_used = 2;
      cached = false;
      partial = false;
      model_digest = "d";
      plan = Engine.Plan_exact { cone_nodes = 3; validated = false };
    }
  in
  let line = Wire.result_line r in
  match Jsonl.parse line with
  | Error msg -> Alcotest.failf "non-finite result not valid JSON: %s" msg
  | Ok json -> (
    match Wire.parsed_result json with
    | Error msg -> Alcotest.failf "decode: %s" msg
    | Ok (r', _) ->
      check_bool "rhat nan" true (Float.is_nan r'.Engine.rhat);
      check_bool "ess nan" true (Float.is_nan r'.Engine.ess);
      check_float "estimate" 0.0 r'.Engine.estimate;
      check_bool "exact plan round-trips" true (r'.Engine.plan = r.Engine.plan))

let test_wire_error_line () =
  let line = Wire.error_line ~id:"x" ~retry_after_ms:250 Wire.Quota_exceeded
      "tenant \"a\" over quota" in
  match Jsonl.parse line with
  | Error msg -> Alcotest.failf "unparseable: %s" msg
  | Ok json ->
    check_string "code" "quota_exceeded"
      (match Jsonl.member "error" json with
      | Some (Jsonl.Str s) -> s
      | _ -> "<missing>");
    check_int "retry hint" 250
      (match Jsonl.member "retry_after_ms" json with
      | Some (Jsonl.Num f) -> int_of_float f
      | _ -> -1);
    check_int "status mapping" 429 (Wire.http_status Wire.Quota_exceeded);
    check_int "status mapping" 503 (Wire.http_status Wire.Shutting_down)

let test_decode_errors_carry_line_numbers () =
  (match Query.of_line ~lineno:41 "{\"type\":\"flow\"}" with
  | Error msg ->
    check_bool "query error has lineno" true
      (String.length msg >= 8 && String.sub msg 0 8 = "line 41:")
  | Ok _ -> Alcotest.fail "decoded a flow query without src/dst");
  match Event.of_line ~lineno:7 "{\"type\":\"nonsense\"}" with
  | Error msg ->
    check_bool "event error has lineno" true
      (String.length msg >= 7 && String.sub msg 0 7 = "line 7:")
  | Ok _ -> Alcotest.fail "decoded a nonsense event"

(* ---------- loopback clients ---------- *)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let with_server ?config ?gate ?(engine_config = fast_config) ?(seed = 7)
    ?(icm_seed = 3) f =
  let icm = five_node_icm icm_seed in
  let engine = Engine.create ~config:engine_config ~seed icm in
  let server = Server.create ?config ?gate ~engine () in
  Server.start server;
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () -> f server engine)

(* one JSONL round trip on an already-open session *)
let ask r fd line =
  Sockio.write_all fd (line ^ "\n");
  match Sockio.read_line r with
  | Sockio.Line l -> l
  | Sockio.Eof -> Alcotest.fail "server closed the session"
  | Sockio.Too_long -> Alcotest.fail "oversized response"
  | Sockio.Timeout -> Alcotest.fail "client-side read timeout"

let query_json ?id ~src ~dst () =
  let id = match id with
    | Some id -> Printf.sprintf "\"id\":\"%s\"," id
    | None -> ""
  in
  Printf.sprintf {|{%s"type":"flow","src":%d,"dst":%d}|} id src dst

let parse_ok line =
  match Jsonl.parse line with
  | Error msg -> Alcotest.failf "bad response %S: %s" line msg
  | Ok json -> (
    match Wire.parsed_result json with
    | Ok (r, version) -> (r, version)
    | Error msg -> Alcotest.failf "error response %S: %s" line msg)

let same_result msg (a : Engine.result) (b : Engine.result) =
  check_bool (msg ^ ": estimate") true
    (Int64.equal (Int64.bits_of_float a.Engine.estimate)
       (Int64.bits_of_float b.Engine.estimate));
  check_bool (msg ^ ": rhat") true
    (Int64.equal (Int64.bits_of_float a.Engine.rhat)
       (Int64.bits_of_float b.Engine.rhat));
  check_bool (msg ^ ": ess") true
    (Int64.equal (Int64.bits_of_float a.Engine.ess)
       (Int64.bits_of_float b.Engine.ess));
  check_bool (msg ^ ": mcse") true
    (Int64.equal (Int64.bits_of_float a.Engine.mcse)
       (Int64.bits_of_float b.Engine.mcse));
  check_int (msg ^ ": samples") a.Engine.total_samples b.Engine.total_samples;
  check_string (msg ^ ": digest") a.Engine.model_digest b.Engine.model_digest

(* ---------- serve ≡ batch ---------- *)

let test_serve_bit_identical () =
  with_server (fun server _engine ->
      (* reference: a fresh engine, same model / seed / config *)
      let reference = Engine.create ~config:fast_config ~seed:7
          (five_node_icm 3) in
      let queries = [ (0, 1); (0, 2); (1, 3); (2, 4); (3, 0); (4, 2) ] in
      let expected =
        List.map (fun (src, dst) ->
            Engine.query reference (Query.flow ~src ~dst ())) queries
      in
      (* several clients, each asking every query over one session *)
      let failures = Bqueue.create 64 in
      let client i =
        let fd = connect (Server.port server) in
        Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
            let r = Sockio.reader fd in
            List.iteri
              (fun j (src, dst) ->
                let id = Printf.sprintf "c%d-%d" i j in
                let line = ask r fd (query_json ~id ~src ~dst ()) in
                let got, _version = parse_ok line in
                let want = List.nth expected j in
                if
                  Int64.bits_of_float got.Engine.estimate
                  <> Int64.bits_of_float want.Engine.estimate
                  || got.Engine.total_samples <> want.Engine.total_samples
                then ignore (Bqueue.try_push failures (id, line)))
              queries)
      in
      let threads = List.init 4 (fun i -> Thread.create client i) in
      List.iter Thread.join threads;
      (match Bqueue.pop_opt failures with
      | Some (id, line) ->
        Alcotest.failf "query %s diverged from direct Engine.query: %s" id line
      | None -> ());
      (* spot-check full bit-identity on one parsed response *)
      let fd = connect (Server.port server) in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          let r = Sockio.reader fd in
          let got, version = parse_ok (ask r fd (query_json ~src:0 ~dst:1 ())) in
          same_result "serve vs direct" (List.hd expected)
            { got with Engine.cached = (List.hd expected).Engine.cached };
          check_int "initial version" 0 (Option.get version)))

let test_serve_http_dialect () =
  with_server (fun server engine ->
      let expected = Engine.query engine (Query.flow ~src:0 ~dst:1 ()) in
      let fd = connect (Server.port server) in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          let body =
            query_json ~src:0 ~dst:1 () ^ "\n" ^ "not json at all"
          in
          Sockio.write_all fd
            (Printf.sprintf
               "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s"
               (String.length body) body);
          let r = Sockio.reader fd in
          (match Sockio.read_line r with
          | Sockio.Line status ->
            check_string "status line" "HTTP/1.1 200 OK" status
          | _ -> Alcotest.fail "no status line");
          (* skip headers *)
          let rec skip () =
            match Sockio.read_line r with
            | Sockio.Line "" -> ()
            | Sockio.Line _ -> skip ()
            | _ -> Alcotest.fail "truncated headers"
          in
          skip ();
          (match Sockio.read_line r with
          | Sockio.Line l ->
            let got, _ = parse_ok l in
            same_result "http vs direct"
              { expected with Engine.cached = got.Engine.cached }
              got
          | _ -> Alcotest.fail "no answer line");
          match Sockio.read_line r with
          | Sockio.Line l ->
            check_bool "typed error for the bad line" true
              (match Jsonl.parse l with
              | Ok json -> (
                match Jsonl.member "error" json with
                | Some (Jsonl.Str "bad_request") -> (
                  (* the message carries the body line number *)
                  match Jsonl.member "message" json with
                  | Some (Jsonl.Str m) ->
                    String.length m >= 7 && String.sub m 0 7 = "line 2:"
                  | _ -> false)
                | _ -> false)
              | Error _ -> false)
          | _ -> Alcotest.fail "no error line"))

let test_serve_healthz_and_metrics () =
  with_server (fun server _engine ->
      let health = Server.health_json server in
      (match Jsonl.parse health with
      | Error msg -> Alcotest.failf "healthz not JSON: %s" msg
      | Ok json ->
        check_string "status ok"
          "ok"
          (match Jsonl.member "status" json with
          | Some (Jsonl.Str s) -> s
          | _ -> "<missing>"));
      let fd = connect (Server.port server) in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          Sockio.write_all fd "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n";
          let r = Sockio.reader fd in
          (match Sockio.read_line r with
          | Sockio.Line status ->
            check_string "metrics status" "HTTP/1.1 200 OK" status
          | _ -> Alcotest.fail "no status line");
          let content_length = ref 0 in
          let rec skip () =
            match Sockio.read_line r with
            | Sockio.Line "" -> ()
            | Sockio.Line h ->
              (match String.index_opt h ':' with
              | Some i when String.lowercase_ascii (String.sub h 0 i)
                            = "content-length" ->
                content_length :=
                  int_of_string
                    (String.trim
                       (String.sub h (i + 1) (String.length h - i - 1)))
              | _ -> ());
              skip ()
            | _ -> Alcotest.fail "truncated headers"
          in
          skip ();
          let body = Option.get (Sockio.read_exactly r !content_length) in
          (* the exposition must pass the same validator the CI gate uses *)
          match Iflow_obs.Prometheus.check body with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "/metrics failed prom-check: %s" msg))

(* ---------- admission control ---------- *)

let test_serve_sheds_over_capacity () =
  let gate_m = Mutex.create () in
  let gate_cv = Condition.create () in
  let gate_open = ref false in
  let stalled = ref 0 in
  let gate () =
    Mutex.protect gate_m (fun () ->
        incr stalled;
        while not !gate_open do
          Condition.wait gate_cv gate_m
        done)
  in
  let config =
    { Server.default_config with Server.queue_capacity = 2; workers = 1 }
  in
  with_server ~config ~gate (fun server _engine ->
      let open_sessions = ref [] in
      let submit src dst =
        let fd = connect (Server.port server) in
        open_sessions := fd :: !open_sessions;
        Sockio.write_all fd (query_json ~src ~dst () ^ "\n");
        fd
      in
      Fun.protect
        ~finally:(fun () ->
          Mutex.protect gate_m (fun () ->
              gate_open := true;
              Condition.broadcast gate_cv);
          List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            !open_sessions)
        (fun () ->
          (* occupy the lone executor… *)
          let busy = submit 0 1 in
          spin "executor stalled in gate" (fun () ->
              Mutex.protect gate_m (fun () -> !stalled = 1));
          (* …fill the whole queue… *)
          let q1 = submit 0 2 in
          let q2 = submit 0 3 in
          spin "queue full" (fun () -> Server.queue_depth server = 2);
          (* …and the next request must be refused, immediately and typed *)
          let fd = connect (Server.port server) in
          open_sessions := fd :: !open_sessions;
          let r = Sockio.reader fd in
          let line = ask r fd (query_json ~src:0 ~dst:4 ()) in
          (match Jsonl.parse line with
          | Ok json ->
            check_string "typed shed" "over_capacity"
              (match Jsonl.member "error" json with
              | Some (Jsonl.Str s) -> s
              | _ -> "<missing>")
          | Error msg -> Alcotest.failf "unparseable shed response: %s" msg);
          check_int "shed counted" 1 (Server.stats server).Server.shed_capacity;
          (* release the executors: everything admitted still completes *)
          Mutex.protect gate_m (fun () ->
              gate_open := true;
              Condition.broadcast gate_cv);
          List.iter
            (fun fd ->
              let r = Sockio.reader fd in
              match Sockio.read_line r with
              | Sockio.Line l -> ignore (parse_ok l)
              | _ -> Alcotest.fail "admitted request lost on release")
            [ busy; q1; q2 ]))

let test_serve_quota_shed () =
  (* refill so slow it cannot interfere within the test's lifetime *)
  let config =
    {
      Server.default_config with
      Server.quota = Some { Quota.rate = 1e-6; burst = 2.0 };
    }
  in
  with_server ~config (fun server _engine ->
      let fd = connect (Server.port server) in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          let r = Sockio.reader fd in
          let tenant t src dst =
            ask r fd
              (Printf.sprintf
                 {|{"tenant":"%s","type":"flow","src":%d,"dst":%d}|} t src dst)
          in
          ignore (parse_ok (tenant "a" 0 1));
          ignore (parse_ok (tenant "a" 0 1));
          (match Jsonl.parse (tenant "a" 0 1) with
          | Ok json ->
            check_string "typed quota shed" "quota_exceeded"
              (match Jsonl.member "error" json with
              | Some (Jsonl.Str s) -> s
              | _ -> "<missing>");
            check_bool "retry hint present" true
              (match Jsonl.member "retry_after_ms" json with
              | Some (Jsonl.Num ms) -> ms >= 1.0
              | _ -> false)
          | Error msg -> Alcotest.failf "unparseable: %s" msg);
          (* a different tenant is unaffected *)
          ignore (parse_ok (tenant "b" 0 1));
          check_int "shed counted" 1 (Server.stats server).Server.shed_quota))

(* ---------- hot-swap under live traffic ---------- *)

(* a Beta-ICM substrate whose evidence the online learner accepts *)
let beta_substrate seed =
  let rng = Rng.create seed in
  let g = Gen.gnm rng ~nodes:12 ~edges:40 in
  let m = Digraph.n_edges g in
  let model = Beta_icm.create g (Array.init m (fun _ -> Beta.v 1.0 1.0)) in
  let icm =
    Icm.create g (Array.init m (fun _ -> 0.2 +. (0.6 *. Rng.uniform rng)))
  in
  let lines n =
    List.init n (fun _ ->
        let src = Rng.int rng (Digraph.n_nodes g) in
        Event.to_line (Event.of_attributed g (Cascade.run rng icm ~sources:[ src ])))
  in
  (g, model, lines)

let run_learner server engine model ~batch =
  let online = Online.create model in
  let snapshot = Snapshot.create ~id:0 ~offset:0 model in
  ignore engine;
  Thread.create
    (fun () ->
      ignore
        (Runner.run ~engine
           ~on_degraded:(fun ~stage e -> Server.note_degraded server ~stage e)
           ~on_publish:(Server.on_publish server)
           { Runner.batch; checkpoint_every = None }
           online snapshot
           (Server.ingest_source server)))
    ()

let test_serve_hot_swap_under_load () =
  let _g, model, lines = beta_substrate 17 in
  let engine =
    Engine.create ~config:fast_config ~seed:7 (Beta_icm.expected_icm model)
  in
  let server = Server.create ~engine () in
  Server.start server;
  (* record exactly what the learner publishes: digest -> version id *)
  let published = Hashtbl.create 8 in
  let pub_m = Mutex.create () in
  Hashtbl.replace published (Engine.digest engine) 0;
  let online = Online.create model in
  let snapshot = Snapshot.create ~id:0 ~offset:0 model in
  let learner =
    Thread.create
      (fun () ->
        ignore
          (Runner.run ~engine
             ~on_degraded:(fun ~stage e ->
               Server.note_degraded server ~stage e)
             ~on_publish:(fun v ->
               Server.on_publish server v;
               Mutex.protect pub_m (fun () ->
                   Hashtbl.replace published (Engine.digest engine)
                     v.Snapshot.id))
             { Runner.batch = 16; checkpoint_every = None }
             online snapshot
             (Server.ingest_source server)))
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Thread.join learner)
    (fun () ->
      let torn = Bqueue.create 256 in
      let stop_clients = ref false in
      let client i =
        let fd = connect (Server.port server) in
        Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
            let r = Sockio.reader fd in
            let n = ref 0 in
            while not !stop_clients do
              incr n;
              let src = (i + !n) mod 12 and dst = (i + (2 * !n) + 1) mod 12 in
              if src <> dst then begin
                let line = ask r fd (query_json ~src ~dst ()) in
                let got, version = parse_ok line in
                let expect =
                  Mutex.protect pub_m (fun () ->
                      Hashtbl.find_opt published got.Engine.model_digest)
                in
                match (expect, version) with
                | Some v, Some v' when v = v' -> ()
                | _ ->
                  ignore (Bqueue.try_push torn (line, expect, version))
              end
            done)
      in
      let clients = List.init 3 (fun i -> Thread.create client i) in
      (* stream evidence under the running query load: 5 batches *)
      List.iter
        (fun line ->
          spin "ingest accepted" (fun () -> Server.ingest_line server line))
        (lines 80);
      spin "several versions published" (fun () ->
          Server.current_version server >= 4);
      stop_clients := true;
      List.iter Thread.join clients;
      (match Bqueue.pop_opt torn with
      | Some (line, expect, got) ->
        Alcotest.failf
          "torn answer %s: digest maps to version %s but response said %s"
          line
          (match expect with Some v -> string_of_int v | None -> "<none>")
          (match got with Some v -> string_of_int v | None -> "<none>")
      | None -> ());
      check_bool "versions advanced" true (Server.current_version server >= 4);
      check_bool "never degraded" false (Server.degraded server);
      (* the live engine now answers bit-identically to a fresh engine
         built on the final published model *)
      let final = (Snapshot.current snapshot).Snapshot.model in
      let fresh =
        Engine.create ~config:fast_config ~seed:7 (Beta_icm.expected_icm final)
      in
      let q = Query.flow ~src:0 ~dst:5 () in
      same_result "post-swap vs fresh engine" (Engine.query fresh q)
        (Engine.query engine q))

let test_serve_degraded_swap () =
  let _g, model, lines = beta_substrate 23 in
  let engine =
    Engine.create ~config:fast_config ~seed:7 (Beta_icm.expected_icm model)
  in
  let server = Server.create ~engine () in
  Server.start server;
  let learner = run_learner server engine model ~batch:8 in
  Fun.protect
    ~finally:(fun () ->
      Fail.reset ();
      Server.stop server;
      Thread.join learner)
    (fun () ->
      (* let the first batch publish cleanly — arming before the
         learner's startup swap would consume the failure there *)
      List.iter
        (fun line ->
          spin "ingest accepted" (fun () -> Server.ingest_line server line))
        (lines 8);
      spin "first publish" (fun () -> Server.current_version server >= 1);
      let good_version = Server.current_version server in
      let good_digest = Engine.digest engine in
      (* the next publish fails its swap: the engine must keep serving
         the last-good model and the server must report degraded *)
      Fail.arm ~count:1 "runner.swap";
      List.iter
        (fun line ->
          spin "ingest accepted" (fun () -> Server.ingest_line server line))
        (lines 8);
      spin "degraded surfaced" (fun () -> Server.degraded server);
      check_string "still the last-good model" good_digest
        (Engine.digest engine);
      let fd = connect (Server.port server) in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          let r = Sockio.reader fd in
          let got, version = parse_ok (ask r fd (query_json ~src:0 ~dst:1 ())) in
          check_string "answers from last-good digest" good_digest
            got.Engine.model_digest;
          check_int "answers from last-good version" good_version
            (Option.get version));
      (match Jsonl.parse (Server.health_json server) with
      | Ok json ->
        check_string "healthz degraded" "degraded"
          (match Jsonl.member "status" json with
          | Some (Jsonl.Str s) -> s
          | _ -> "<missing>")
      | Error msg -> Alcotest.failf "healthz: %s" msg);
      (* the next batch swaps cleanly and recovery is automatic *)
      List.iter
        (fun line ->
          spin "ingest accepted" (fun () -> Server.ingest_line server line))
        (lines 8);
      spin "recovered" (fun () -> not (Server.degraded server));
      check_bool "version advanced past the failure" true
        (Server.current_version server > good_version);
      check_bool "digest moved" true (Engine.digest engine <> good_digest))

(* ---------- request ids and the flight recorder ---------- *)

let member_str name json =
  match Jsonl.member name json with
  | Some (Jsonl.Str s) -> Some s
  | _ -> None

let test_serve_request_id_echo () =
  with_server (fun server _engine ->
      (* JSONL: a client-supplied request_id comes back verbatim *)
      let fd = connect (Server.port server) in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          let r = Sockio.reader fd in
          let line =
            ask r fd {|{"request_id":"mine-1","type":"flow","src":0,"dst":1}|}
          in
          (match Jsonl.parse line with
          | Ok json ->
            check_string "jsonl echo" "mine-1"
              (Option.value ~default:"<missing>"
                 (member_str "request_id" json))
          | Error msg -> Alcotest.failf "unparseable: %s" msg);
          (* an unnamed request gets a server-minted id, also echoed *)
          let line = ask r fd (query_json ~src:0 ~dst:1 ()) in
          (* errors carry the id too *)
          let err_line = ask r fd {|{"request_id":"broken","type":"flow"}|} in
          (match Jsonl.parse line with
          | Ok json ->
            check_bool "minted id nonempty" true
              (match member_str "request_id" json with
              | Some s -> String.length s > 0
              | None -> false)
          | Error msg -> Alcotest.failf "unparseable: %s" msg);
          match Jsonl.parse err_line with
          | Ok json ->
            check_bool "typed error" true (Jsonl.member "error" json <> None);
            check_string "error echoes the id" "broken"
              (Option.value ~default:"<missing>"
                 (member_str "request_id" json))
          | Error msg -> Alcotest.failf "unparseable: %s" msg);
      (* HTTP: X-Request-Id honoured per body line and echoed in the
         response header; batched bodies get a -<lineno> suffix *)
      let fd = connect (Server.port server) in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          let body =
            query_json ~src:0 ~dst:1 () ^ "\n" ^ query_json ~src:0 ~dst:2 ()
          in
          Sockio.write_all fd
            (Printf.sprintf
               "POST /query HTTP/1.1\r\nHost: t\r\nX-Request-Id: req-9\r\n\
                Content-Length: %d\r\n\r\n%s"
               (String.length body) body);
          let r = Sockio.reader fd in
          (match Sockio.read_line r with
          | Sockio.Line status ->
            check_string "status" "HTTP/1.1 200 OK" status
          | _ -> Alcotest.fail "no status line");
          let header_echo = ref "<missing>" in
          let rec skip () =
            match Sockio.read_line r with
            | Sockio.Line "" -> ()
            | Sockio.Line h ->
              (match String.index_opt h ':' with
              | Some i when
                  String.lowercase_ascii (String.sub h 0 i) = "x-request-id"
                ->
                header_echo :=
                  String.trim (String.sub h (i + 1) (String.length h - i - 1))
              | _ -> ());
              skip ()
            | _ -> Alcotest.fail "truncated headers"
          in
          skip ();
          check_string "header echo" "req-9" !header_echo;
          let line_id () =
            match Sockio.read_line r with
            | Sockio.Line l -> (
              match Jsonl.parse l with
              | Ok json ->
                Option.value ~default:"<missing>"
                  (member_str "request_id" json)
              | Error msg -> Alcotest.failf "unparseable: %s" msg)
            | _ -> Alcotest.fail "missing answer line"
          in
          check_string "batched line 1" "req-9-1" (line_id ());
          check_string "batched line 2" "req-9-2" (line_id ())))

let test_serve_minted_ids_unique () =
  (* 64 concurrent sessions, no client ids: every answer must carry a
     distinct server-minted id *)
  with_server (fun server _engine ->
      let ids = Bqueue.create 128 in
      let client _i =
        let fd = connect (Server.port server) in
        Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
            let r = Sockio.reader fd in
            let line = ask r fd (query_json ~src:0 ~dst:1 ()) in
            match Jsonl.parse line with
            | Ok json -> (
              match member_str "request_id" json with
              | Some s -> ignore (Bqueue.try_push ids s)
              | None -> ())
            | Error _ -> ())
      in
      let threads = List.init 64 (fun i -> Thread.create client i) in
      List.iter Thread.join threads;
      let tbl = Hashtbl.create 64 in
      let n = ref 0 in
      let rec drain () =
        match Bqueue.pop_opt ids with
        | Some id ->
          incr n;
          Hashtbl.replace tbl id ();
          drain ()
        | None -> ()
      in
      drain ();
      check_int "64 answers carried ids" 64 !n;
      check_int "all ids distinct" 64 (Hashtbl.length tbl))

let test_serve_flight_record_matches_answer () =
  (* Server.start configures the process-global ring from config
     (default capacity 1024), so records land without further setup *)
  with_server (fun server _engine ->
      let fd = connect (Server.port server) in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          let r = Sockio.reader fd in
          let line =
            ask r fd
              {|{"request_id":"flight-1","type":"flow","src":0,"dst":1}|}
          in
          let got, version = parse_ok line in
          let rc =
            match Flight.find "flight-1" with
            | Some rc -> rc
            | None -> Alcotest.fail "no flight record for flight-1"
          in
          check_string "digest matches answer" got.Engine.model_digest
            rc.Flight.digest;
          check_int "version matches answer" (Option.get version)
            rc.Flight.version;
          let expected_path =
            if got.Engine.cached then Flight.Cache
            else
              match got.Engine.plan with
              | Engine.Plan_exact _ -> Flight.Exact
              | Engine.Plan_mh _ -> Flight.Mh
          in
          check_string "path matches answer"
            (Flight.string_of_path expected_path)
            (Flight.string_of_path rc.Flight.path);
          check_int "samples match answer" got.Engine.total_samples
            rc.Flight.samples;
          check_bool "serialize phase timed" true (rc.Flight.serialize_ns > 0);
          (* a refused request still gets a record, on the error path *)
          let err_line = ask r fd {|{"request_id":"flight-2","type":"flow"}|} in
          (match Jsonl.parse err_line with
          | Ok json ->
            check_bool "typed error" true (Jsonl.member "error" json <> None)
          | Error msg -> Alcotest.failf "unparseable: %s" msg);
          match Flight.find "flight-2" with
          | Some rc ->
            check_string "error path" "error"
              (Flight.string_of_path rc.Flight.path);
            check_string "error code recorded" "bad_request" rc.Flight.error
          | None -> Alcotest.fail "no flight record for the refusal"))

let test_serve_observability_bit_identity () =
  (* the PR 4 invariant extended: answers over the wire with the flight
     recorder AND the trace sink on are bit-identical to a plain
     Engine.query with both off *)
  let reference =
    Engine.create ~config:fast_config ~seed:7 (five_node_icm 3)
  in
  let queries = [ (0, 1); (1, 3); (2, 4) ] in
  let baseline =
    List.map
      (fun (src, dst) -> Engine.query reference (Query.flow ~src ~dst ()))
      queries
  in
  let tmp = Filename.temp_file "iflow_serve_trace" ".json" in
  Trace.to_file tmp;
  Fun.protect
    ~finally:(fun () ->
      Trace.close ();
      Flight.disable ();
      Sys.remove tmp)
    (fun () ->
      with_server (fun server _engine ->
          let fd = connect (Server.port server) in
          Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
              let r = Sockio.reader fd in
              List.iteri
                (fun i (src, dst) ->
                  let id = Printf.sprintf "bit-%d" i in
                  let got, _ = parse_ok (ask r fd (query_json ~id ~src ~dst ())) in
                  let want = List.nth baseline i in
                  same_result "observed vs bare"
                    { want with Engine.cached = got.Engine.cached }
                    got)
                queries));
      Trace.close ();
      check_bool "trace recorded request flow events" true
        (let ic = open_in tmp in
         Fun.protect
           ~finally:(fun () -> close_in_noerr ic)
           (fun () ->
             let len = in_channel_length ic in
             let s = really_input_string ic len in
             (* flow phases s/t/f all present *)
             let has needle =
               let nl = String.length needle and sl = String.length s in
               let rec go i =
                 i + nl <= sl && (String.sub s i nl = needle || go (i + 1))
               in
               go 0
             in
             has {|"ph": "s"|} && has {|"ph": "t"|} && has {|"ph": "f"|})))

(* ---------- concurrent Engine.query callers ---------- *)

let test_engine_concurrent_queries_and_swaps () =
  let icm_a = five_node_icm 3 in
  let icm_b = five_node_icm 4 in
  let engine = Engine.create ~config:fast_config ~seed:7 icm_a in
  let queries = List.init 6 (fun i -> Query.flow ~src:(i mod 5)
                                        ~dst:((i + 2) mod 5) ()) in
  (* reference answers for both models, same seed and config *)
  let reference icm =
    let e = Engine.create ~config:fast_config ~seed:7 icm in
    List.map (fun q -> (Query.key q, Engine.query e q)) queries
  in
  let ref_a = reference icm_a and ref_b = reference icm_b in
  let digest_a = Engine.icm_digest icm_a and digest_b = Engine.icm_digest icm_b in
  let mismatches = Bqueue.create 1024 in
  let stop = ref false in
  let worker _i =
    while not !stop do
      List.iter
        (fun q ->
          let r = Engine.query engine q in
          let table =
            if String.equal r.Engine.model_digest digest_a then Some ref_a
            else if String.equal r.Engine.model_digest digest_b then Some ref_b
            else None
          in
          match table with
          | None -> ignore (Bqueue.try_push mismatches (Query.key q, "digest"))
          | Some table ->
            let want = List.assoc (Query.key q) table in
            if
              Int64.bits_of_float r.Engine.estimate
              <> Int64.bits_of_float want.Engine.estimate
              || r.Engine.total_samples <> want.Engine.total_samples
              || Int64.bits_of_float r.Engine.rhat
                 <> Int64.bits_of_float want.Engine.rhat
            then ignore (Bqueue.try_push mismatches (Query.key q, "value")))
        queries
    done
  in
  let threads = List.init 4 (fun i -> Thread.create worker i) in
  (* swap back and forth under the running queries: each swap
     invalidates the cache, so hits and misses race with the swaps *)
  for i = 1 to 20 do
    ignore (Engine.swap engine (if i mod 2 = 0 then icm_a else icm_b));
    Thread.yield ()
  done;
  stop := true;
  List.iter Thread.join threads;
  (match Bqueue.pop_opt mismatches with
  | Some (key, kind) ->
    Alcotest.failf
      "concurrent query %s returned a %s not matching either installed model"
      key kind
  | None -> ());
  (* cache still coherent after the storm: a repeat of every query on
     the final model is a hit with identical bits *)
  let final_ref = if Engine.digest engine = digest_a then ref_a else ref_b in
  List.iter
    (fun q ->
      let r = Engine.query engine q in
      same_result "post-storm cache" (List.assoc (Query.key q) final_ref)
        { r with Engine.cached = (List.assoc (Query.key q) final_ref).Engine.cached })
    queries

(* ---------- deadlines & cancellation ---------- *)

let error_code line =
  match Jsonl.parse line with
  | Error msg -> Alcotest.failf "unparseable response %S: %s" line msg
  | Ok json -> (
    match Jsonl.member "error" json with
    | Some (Jsonl.Str s) -> s
    | _ -> "<no error member>")

(* mcse_target is unreachable, so only a tripped token can stop the
   sampler — the serve-side twin of the engine's never_converge *)
let never_converge =
  {
    fast_config with
    Engine.planner = false;
    chains = 2;
    burn_in = 20;
    thin = 1;
    round_samples = 20;
    max_samples = 10_000_000;
    rhat_target = 1.0;
    mcse_target = 1e-300;
  }

let test_wire_partial_and_deadline_codes () =
  let r =
    {
      Engine.estimate = 0.5;
      rhat = 1.2;
      ess = 40.0;
      mcse = 0.04;
      total_samples = 80;
      chains_used = 2;
      cached = false;
      partial = true;
      model_digest = "d";
      plan = Engine.Plan_mh { fallback = None };
    }
  in
  (match Jsonl.parse (Wire.result_line r) with
  | Error msg -> Alcotest.failf "unparseable: %s" msg
  | Ok json -> (
    check_bool "partial on the wire" true
      (match Jsonl.member "partial" json with
      | Some (Jsonl.Bool b) -> b
      | _ -> false);
    match Wire.parsed_result json with
    | Ok (r', _) -> check_bool "partial round-trips" true r'.Engine.partial
    | Error msg -> Alcotest.failf "decode: %s" msg));
  (* lines from pre-deadline peers carry no "partial": default false *)
  (match
     Jsonl.parse
       {|{"estimate":0.5,"rhat":1.0,"ess":1.0,"mcse":0.1,"samples":1,"chains":1,"cached":false,"digest":"d"}|}
   with
  | Error msg -> Alcotest.failf "unparseable: %s" msg
  | Ok json -> (
    match Wire.parsed_result json with
    | Ok (r', _) ->
      check_bool "absent partial defaults false" false r'.Engine.partial
    | Error msg -> Alcotest.failf "decode: %s" msg));
  check_string "exceeded code" "deadline_exceeded"
    (Wire.code_string Wire.Deadline_exceeded);
  check_int "exceeded is 504" 504 (Wire.http_status Wire.Deadline_exceeded);
  check_string "unmeetable code" "deadline_unmeetable"
    (Wire.code_string Wire.Deadline_unmeetable);
  check_int "unmeetable is 503" 503 (Wire.http_status Wire.Deadline_unmeetable)

let test_bqueue_iter () =
  let q = Bqueue.create 4 in
  List.iter (fun i -> ignore (Bqueue.try_push q i)) [ 1; 2; 3 ];
  let seen = ref [] in
  Bqueue.iter q (fun i -> seen := i :: !seen);
  Alcotest.(check (list int)) "visits in order, without removing" [ 1; 2; 3 ]
    (List.rev !seen);
  check_int "items still queued" 3 (Bqueue.length q);
  (* close leaves admitted items visible to iter, so a draining
     consumer can still account for queued work *)
  Bqueue.close q;
  let n = ref 0 in
  Bqueue.iter q (fun _ -> incr n);
  check_int "iter after close" 3 !n

let test_quota_retry_after_honest () =
  (* the retry hint must be honest in both directions: still denied
     just before it, granted at exactly the hinted instant *)
  let q = Quota.create { Quota.rate = 10.0; burst = 1.0 } in
  let t0 = 5_000_000_000 in
  let drain tenant =
    (match Quota.admit q ~now_ns:t0 ~tenant with
    | Quota.Granted -> ()
    | Quota.Denied _ -> Alcotest.fail "burst denied");
    match Quota.admit q ~now_ns:t0 ~tenant with
    | Quota.Granted -> Alcotest.fail "empty bucket granted"
    | Quota.Denied { retry_after_ns } ->
      check_bool "hint positive" true (retry_after_ns > 0);
      retry_after_ns
  in
  let retry_a = drain "a" in
  (match Quota.admit q ~now_ns:(t0 + retry_a - 1_000_000) ~tenant:"a" with
  | Quota.Denied _ -> ()
  | Quota.Granted -> Alcotest.fail "granted before its own retry hint");
  let retry_b = drain "b" in
  match Quota.admit q ~now_ns:(t0 + retry_b) ~tenant:"b" with
  | Quota.Granted -> ()
  | Quota.Denied _ -> Alcotest.fail "denied at its own retry hint"

let test_sockio_timeout () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt_float a Unix.SO_RCVTIMEO 0.05;
      let r = Sockio.reader a in
      (* a partial line arrives, then silence: the receive window
         expires and must surface as Timeout, not Eof or a line *)
      ignore (Unix.write_substring b "no newline" 0 10);
      match Sockio.read_line r with
      | Sockio.Timeout -> ()
      | Sockio.Line l -> Alcotest.failf "line without terminator: %S" l
      | Sockio.Eof -> Alcotest.fail "reported Eof for a timeout"
      | Sockio.Too_long -> Alcotest.fail "reported Too_long for a timeout")

let test_serve_deadline_expired_in_queue () =
  Flight.reset_load_hint ();
  let gate_m = Mutex.create () in
  let gate_cv = Condition.create () in
  let gate_open = ref false in
  let stalled = ref 0 in
  let gate () =
    Mutex.protect gate_m (fun () ->
        incr stalled;
        while not !gate_open do
          Condition.wait gate_cv gate_m
        done)
  in
  let config =
    { Server.default_config with Server.queue_capacity = 4; workers = 1 }
  in
  with_server ~config ~gate (fun server _engine ->
      let busy_fd = connect (Server.port server) in
      let dl_fd = connect (Server.port server) in
      Fun.protect
        ~finally:(fun () ->
          Mutex.protect gate_m (fun () ->
              gate_open := true;
              Condition.broadcast gate_cv);
          List.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            [ busy_fd; dl_fd ])
        (fun () ->
          (* occupy the lone executor with a deadline-free request… *)
          Sockio.write_all busy_fd (query_json ~src:0 ~dst:1 () ^ "\n");
          spin "executor stalled in gate" (fun () ->
              Mutex.protect gate_m (fun () -> !stalled = 1));
          (* …queue a 25 ms deadline behind it and let it lapse *)
          Sockio.write_all dl_fd
            ({|{"request_id":"dl-q","deadline_ms":25,"type":"flow","src":0,"dst":2}|}
            ^ "\n");
          spin "deadline request queued" (fun () ->
              Server.queue_depth server = 1);
          Unix.sleepf 0.05;
          Mutex.protect gate_m (fun () ->
              gate_open := true;
              Condition.broadcast gate_cv);
          (* the occupied request answers normally *)
          let rb = Sockio.reader busy_fd in
          (match Sockio.read_line rb with
          | Sockio.Line l -> ignore (parse_ok l)
          | _ -> Alcotest.fail "deadline-free request lost");
          (* the expired one is dropped at dequeue, typed *)
          let rd = Sockio.reader dl_fd in
          (match Sockio.read_line rd with
          | Sockio.Line l ->
            check_string "typed refusal" "deadline_exceeded" (error_code l)
          | _ -> Alcotest.fail "deadline request lost");
          (* shed before sampling: the flight record shows zero samples *)
          match Flight.find "dl-q" with
          | Some rc ->
            check_int "zero samples burned" 0 rc.Flight.samples;
            check_int "zero rounds" 0 rc.Flight.rounds;
            check_bool "marked cancelled" true rc.Flight.cancelled;
            check_bool "budget recorded" true (rc.Flight.deadline_ns > 0);
            check_string "typed in the record" "deadline_exceeded"
              rc.Flight.error
          | None -> Alcotest.fail "no flight record for dl-q"))

let test_serve_deadline_unmeetable () =
  Fun.protect
    ~finally:(fun () -> Flight.reset_load_hint ())
    (fun () ->
      with_server (fun server _engine ->
          (* prime the admission floor: recent requests paid ~51 ms of
             queue wait + serialize, so a 10 ms budget cannot fit *)
          Flight.reset_load_hint ();
          let rc =
            {
              Flight.seq = -1;
              id = "prime";
              tenant = "";
              kind = "flow 0 1";
              path = Flight.Mh;
              fallback = "";
              error = "";
              version = 0;
              digest = "";
              queue_wait_ns = 50_000_000;
              plan_ns = 0;
              sample_ns = 1_000_000;
              serialize_ns = 1_000_000;
              rounds = 1;
              samples = 1;
              rhat = 1.0;
              mcse = 0.0;
              deadline_ns = 0;
              cancelled = false;
              ts_ns = 0;
            }
          in
          for _ = 1 to 40 do
            Flight.submit rc
          done;
          let fd = connect (Server.port server) in
          Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
              let r = Sockio.reader fd in
              let line =
                ask r fd {|{"deadline_ms":10,"type":"flow","src":0,"dst":1}|}
              in
              check_string "typed refusal" "deadline_unmeetable"
                (error_code line);
              check_int "counted in shed_deadline" 1
                (Server.stats server).Server.shed_deadline;
              (* an ample budget clears the same floor *)
              ignore
                (parse_ok
                   (ask r fd
                      {|{"deadline_ms":60000,"type":"flow","src":0,"dst":2}|}));
              (* and a request with no deadline is never floor-checked *)
              ignore (parse_ok (ask r fd (query_json ~src:0 ~dst:3 ()))))))

let test_serve_deadline_validation_and_header () =
  with_server (fun server _engine ->
      let fd = connect (Server.port server) in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          let r = Sockio.reader fd in
          check_string "non-numeric deadline refused" "bad_request"
            (error_code
               (ask r fd
                  {|{"deadline_ms":"soon","type":"flow","src":0,"dst":1}|}));
          check_string "negative deadline refused" "bad_request"
            (error_code
               (ask r fd {|{"deadline_ms":-5,"type":"flow","src":0,"dst":1}|}));
          check_string "fractional deadline refused" "bad_request"
            (error_code
               (ask r fd
                  {|{"deadline_ms":1.5,"type":"flow","src":0,"dst":1}|})));
      (* HTTP: a malformed X-Deadline-Ms header 400s the request *)
      let fd = connect (Server.port server) in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          let body = query_json ~src:0 ~dst:1 () in
          Sockio.write_all fd
            (Printf.sprintf
               "POST /query HTTP/1.1\r\nHost: t\r\nX-Deadline-Ms: never\r\n\
                Content-Length: %d\r\n\r\n%s"
               (String.length body) body);
          let r = Sockio.reader fd in
          match Sockio.read_line r with
          | Sockio.Line status ->
            check_string "400 on a bad header" "400"
              (String.sub status 9 3)
          | _ -> Alcotest.fail "no status line");
      (* HTTP: a valid header deadline rides the body line; with an
         ample budget the answer is full and bit-identical to a bare
         Engine.query — the token was armed but never tripped *)
      let fd = connect (Server.port server) in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          let body = query_json ~src:0 ~dst:1 () in
          Sockio.write_all fd
            (Printf.sprintf
               "POST /query HTTP/1.1\r\nHost: t\r\nX-Deadline-Ms: 60000\r\n\
                Content-Length: %d\r\n\r\n%s"
               (String.length body) body);
          let r = Sockio.reader fd in
          (match Sockio.read_line r with
          | Sockio.Line status -> check_string "status" "HTTP/1.1 200 OK" status
          | _ -> Alcotest.fail "no status line");
          let rec skip () =
            match Sockio.read_line r with
            | Sockio.Line "" -> ()
            | Sockio.Line _ -> skip ()
            | _ -> Alcotest.fail "truncated headers"
          in
          skip ();
          match Sockio.read_line r with
          | Sockio.Line l ->
            let got, _ = parse_ok l in
            check_bool "full answer under an ample deadline" false
              got.Engine.partial;
            let reference =
              Engine.create ~config:fast_config ~seed:7 (five_node_icm 3)
            in
            let want = Engine.query reference (Query.flow ~src:0 ~dst:1 ()) in
            same_result "deadline-armed vs bare" want
              { got with Engine.cached = want.Engine.cached }
          | _ -> Alcotest.fail "no body line"))

let test_serve_partial_answer_over_the_wire () =
  Flight.reset_load_hint ();
  with_server ~engine_config:never_converge (fun server _engine ->
      let fd = connect (Server.port server) in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          let r = Sockio.reader fd in
          let line =
            ask r fd
              {|{"request_id":"dl-partial","deadline_ms":150,"type":"flow","src":0,"dst":1}|}
          in
          let got, _ = parse_ok line in
          check_bool "partial over the wire" true got.Engine.partial;
          check_bool "pooled real rounds" true (got.Engine.total_samples >= 40);
          (* partial answers are never cached: the repeat samples again *)
          let got2, _ =
            parse_ok
              (ask r fd
                 {|{"request_id":"dl-partial-2","deadline_ms":150,"type":"flow","src":0,"dst":1}|})
          in
          check_bool "repeat not served from cache" false got2.Engine.cached;
          match Flight.find "dl-partial" with
          | Some rc ->
            check_bool "marked cancelled" true rc.Flight.cancelled;
            check_bool "budget recorded" true (rc.Flight.deadline_ns > 0)
          | None -> Alcotest.fail "no flight record for dl-partial"))

let test_serve_read_timeout_slow_loris () =
  let config =
    { Server.default_config with Server.read_timeout_ms = Some 120 }
  in
  with_server ~config (fun server _engine ->
      let fd = connect (Server.port server) in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let t0 = Unix.gettimeofday () in
          (* a partial line, then silence: the classic slow-loris *)
          Sockio.write_all fd {|{"type":"flow"|};
          let r = Sockio.reader fd in
          (match Sockio.read_line r with
          | Sockio.Line l ->
            check_string "typed timeout" "bad_request" (error_code l)
          | Sockio.Eof -> Alcotest.fail "closed without a typed error"
          | _ -> Alcotest.fail "unexpected read result");
          check_bool "fired after the window, not instantly" true
            (Unix.gettimeofday () -. t0 >= 0.05);
          check_bool "connection closed afterwards" true
            (Sockio.read_line r = Sockio.Eof)))

let test_serve_reaper_closes_dribbler () =
  let config = { Server.default_config with Server.read_timeout_ms = Some 50 } in
  with_server ~config (fun server _engine ->
      let fd = connect (Server.port server) in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* one byte every 25 ms defeats SO_RCVTIMEO — each byte
             restarts the receive window — but never completes a line;
             only the reaper's no-progress clock catches it *)
          let t0 = Unix.gettimeofday () in
          let closed = ref false in
          while (not !closed) && Unix.gettimeofday () -. t0 < 5.0 do
            (try ignore (Unix.write_substring fd "x" 0 1)
             with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
               closed := true);
            if not !closed then
              match Unix.select [ fd ] [] [] 0.025 with
              | [ _ ], _, _ -> (
                let buf = Bytes.create 256 in
                try
                  if Unix.read fd buf 0 256 = 0 then closed := true
                with Unix.Unix_error (Unix.ECONNRESET, _, _) -> closed := true)
              | _ -> ()
          done;
          check_bool "reaper closed the dribbling connection" true !closed;
          check_bool "but not before the no-progress window (4 windows)" true
            (Unix.gettimeofday () -. t0 >= 0.15)))

let test_serve_shutdown_refuses_queued () =
  let gate_m = Mutex.create () in
  let gate_cv = Condition.create () in
  let gate_open = ref false in
  let stalled = ref 0 in
  let gate () =
    Mutex.protect gate_m (fun () ->
        incr stalled;
        while not !gate_open do
          Condition.wait gate_cv gate_m
        done)
  in
  let config =
    { Server.default_config with Server.queue_capacity = 4; workers = 1 }
  in
  with_server ~config ~gate (fun server _engine ->
      let busy_fd = connect (Server.port server) in
      let q_fd = connect (Server.port server) in
      Fun.protect
        ~finally:(fun () ->
          Mutex.protect gate_m (fun () ->
              gate_open := true;
              Condition.broadcast gate_cv);
          List.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            [ busy_fd; q_fd ])
        (fun () ->
          Sockio.write_all busy_fd (query_json ~src:0 ~dst:1 () ^ "\n");
          spin "executor stalled in gate" (fun () ->
              Mutex.protect gate_m (fun () -> !stalled = 1));
          (* a deadline-free request waits in the queue when stop lands:
             the drain must stay bounded — no sampling — and the client
             gets a typed shutting_down *)
          Sockio.write_all q_fd (query_json ~src:0 ~dst:2 () ^ "\n");
          spin "second request queued" (fun () ->
              Server.queue_depth server = 1);
          let stopper = Thread.create (fun () -> Server.stop server) () in
          Unix.sleepf 0.05;
          Mutex.protect gate_m (fun () ->
              gate_open := true;
              Condition.broadcast gate_cv);
          (* the in-flight request still finishes normally… *)
          let rb = Sockio.reader busy_fd in
          (match Sockio.read_line rb with
          | Sockio.Line l -> ignore (parse_ok l)
          | _ -> Alcotest.fail "in-flight request lost at shutdown");
          (* …the queued one is refused without sampling *)
          let rq = Sockio.reader q_fd in
          (match Sockio.read_line rq with
          | Sockio.Line l ->
            check_string "typed refusal" "shutting_down" (error_code l)
          | _ -> Alcotest.fail "queued request lost at shutdown");
          Thread.join stopper))

let () =
  Alcotest.run "serve"
    [
      ( "bqueue",
        [
          Alcotest.test_case "fifo" `Quick test_bqueue_order;
          Alcotest.test_case "bounded" `Quick test_bqueue_bounded;
          Alcotest.test_case "close semantics" `Quick test_bqueue_close;
          Alcotest.test_case "blocking pop" `Quick test_bqueue_blocking_pop;
          Alcotest.test_case "validation" `Quick test_bqueue_validation;
        ] );
      ( "quota",
        [
          Alcotest.test_case "burst then deny" `Quick test_quota_burst_then_deny;
          Alcotest.test_case "tenants independent" `Quick
            test_quota_tenants_independent;
          Alcotest.test_case "refill caps at burst" `Quick
            test_quota_refill_caps_at_burst;
          Alcotest.test_case "validation" `Quick test_quota_validation;
        ] );
      ( "sockio-http",
        [
          Alcotest.test_case "line framing" `Quick test_sockio_lines;
          Alcotest.test_case "line cap" `Quick test_sockio_too_long;
          Alcotest.test_case "request parse" `Quick test_http_parse;
          Alcotest.test_case "rejects" `Quick test_http_rejects;
        ] );
      ( "wire",
        [
          Alcotest.test_case "result round-trip" `Quick
            test_wire_result_roundtrip;
          Alcotest.test_case "non-finite diagnostics" `Quick
            test_wire_nonfinite;
          Alcotest.test_case "error line" `Quick test_wire_error_line;
          Alcotest.test_case "decode errors carry line numbers" `Quick
            test_decode_errors_carry_line_numbers;
        ] );
      ( "server",
        [
          Alcotest.test_case "serve = batch, bit for bit" `Slow
            test_serve_bit_identical;
          Alcotest.test_case "http dialect" `Slow test_serve_http_dialect;
          Alcotest.test_case "healthz and metrics" `Quick
            test_serve_healthz_and_metrics;
          Alcotest.test_case "sheds over capacity" `Slow
            test_serve_sheds_over_capacity;
          Alcotest.test_case "quota shed" `Slow test_serve_quota_shed;
          Alcotest.test_case "hot-swap under load" `Slow
            test_serve_hot_swap_under_load;
          Alcotest.test_case "degraded swap" `Slow test_serve_degraded_swap;
        ] );
      ( "request-ids",
        [
          Alcotest.test_case "request_id echo, both dialects" `Slow
            test_serve_request_id_echo;
          Alcotest.test_case "minted ids unique across 64 sessions" `Slow
            test_serve_minted_ids_unique;
          Alcotest.test_case "flight record matches the wire answer" `Slow
            test_serve_flight_record_matches_answer;
          Alcotest.test_case "bit-identical with flight + trace on" `Slow
            test_serve_observability_bit_identity;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "partial flag and deadline codes" `Quick
            test_wire_partial_and_deadline_codes;
          Alcotest.test_case "bqueue iter" `Quick test_bqueue_iter;
          Alcotest.test_case "quota retry hint honest" `Quick
            test_quota_retry_after_honest;
          Alcotest.test_case "sockio surfaces SO_RCVTIMEO" `Quick
            test_sockio_timeout;
          Alcotest.test_case "expired in queue, shed before sampling" `Slow
            test_serve_deadline_expired_in_queue;
          Alcotest.test_case "unmeetable budget refused at admission" `Slow
            test_serve_deadline_unmeetable;
          Alcotest.test_case "validation + X-Deadline-Ms header" `Slow
            test_serve_deadline_validation_and_header;
          Alcotest.test_case "partial answer over the wire" `Slow
            test_serve_partial_answer_over_the_wire;
          Alcotest.test_case "slow-loris read timeout" `Slow
            test_serve_read_timeout_slow_loris;
          Alcotest.test_case "reaper closes the byte-dribbler" `Slow
            test_serve_reaper_closes_dribbler;
          Alcotest.test_case "shutdown refuses queued work" `Slow
            test_serve_shutdown_refuses_queued;
        ] );
      ( "engine-concurrency",
        [
          Alcotest.test_case "queries race swaps" `Slow
            test_engine_concurrent_queries_and_swaps;
        ] );
    ]
