lib/twitter/unattributed.ml: Array Hashtbl Iflow_core Iflow_graph List Tweet
