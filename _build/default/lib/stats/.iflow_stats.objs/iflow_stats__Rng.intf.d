lib/stats/rng.mli: Random
