(** Fenwick (binary indexed) tree over non-negative weights, supporting
    O(log n) point update, prefix sum, and weighted index sampling.

    This is the "search tree" the paper uses to draw the
    Metropolis-Hastings edge-flip proposal and maintain its normalising
    constant in O(log m) per step. *)

type t

val create : int -> t
(** [create n] is a tree over indices [0 .. n-1], all weights 0. *)

val of_array : float array -> t
(** Build in O(n). Weights must be non-negative. *)

val length : t -> int

val get : t -> int -> float
(** Current weight at an index, O(1). *)

val set : t -> int -> float -> unit
(** [set t i w] replaces the weight at [i] with [w >= 0], O(log n). *)

val total : t -> float
(** Sum of all weights. Maintained incrementally; see {!rebuild}. *)

val prefix_sum : t -> int -> float
(** [prefix_sum t i] is the sum of weights at indices [< i], O(log n). *)

val find_prefix : t -> float -> int
(** [find_prefix t u] for [0 <= u < total t] is the smallest index [i]
    such that the running sum through [i] exceeds [u] — i.e. an index
    drawn proportionally to its weight when [u] is uniform. O(log n). *)

val sample : Rng.t -> t -> int
(** [sample rng t] draws an index with probability proportional to its
    weight. Raises [Invalid_argument] when [total t = 0]. *)

val rebuild : t -> unit
(** Recompute all internal sums from the stored exact weights, clearing
    any floating-point drift accumulated by incremental updates. The MH
    chain calls this periodically. *)
