lib/exp/synthetic_bucket.mli: Iflow_bucket Iflow_mcmc Iflow_stats
