module Metrics = Iflow_obs.Metrics
module Clock = Iflow_obs.Clock

let m_tasks =
  Metrics.counter ~help:"Tasks executed by the worker pool"
    "iflow_engine_pool_tasks_total"

let m_busy_ns =
  Metrics.counter ~help:"Nanoseconds pool domains spent running task blocks"
    "iflow_engine_pool_busy_ns_total"

let m_domains =
  Metrics.gauge ~help:"Workers used by the most recent pool run"
    "iflow_engine_pool_domains"

let m_inflight =
  Metrics.gauge ~help:"Tasks submitted to the in-progress pool run (0 when idle)"
    "iflow_engine_pool_inflight_tasks"

type t = { size : int }

let create ?size () =
  let size =
    match size with
    | Some s ->
      if s < 1 then invalid_arg "Pool.create: size must be >= 1";
      s
    | None -> Domain.recommended_domain_count ()
  in
  { size }

let size t = t.size

let run_results t f tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let workers = min t.size n in
    (* sampled once so every block of this run agrees on whether to read
       the clock; busy time lands in the recording domain's own shard *)
    let rec_on = Metrics.recording () in
    if rec_on then begin
      Metrics.set m_domains (float_of_int workers);
      Metrics.set m_inflight (float_of_int n);
      Metrics.add m_tasks n
    end;
    let results = Array.make n None in
    if workers = 1 then begin
      let t0 = if rec_on then Clock.now_ns () else 0 in
      Array.iteri
        (fun i task ->
          results.(i) <-
            (match f task with
            | v -> Some (Ok v)
            | exception e -> Some (Error e)))
        tasks;
      if rec_on then Metrics.add m_busy_ns (Clock.now_ns () - t0)
    end
    else begin
      (* worker w owns indices with i mod workers = w: assignment is a
         pure function of the index, never of timing *)
      let run_block w () =
        let t0 = if rec_on then Clock.now_ns () else 0 in
        let i = ref w in
        while !i < n do
          (results.(!i) <-
            (match f tasks.(!i) with
            | v -> Some (Ok v)
            | exception e -> Some (Error e)));
          i := !i + workers
        done;
        if rec_on then Metrics.add m_busy_ns (Clock.now_ns () - t0)
      in
      let domains =
        Array.init (workers - 1) (fun w -> Domain.spawn (run_block (w + 1)))
      in
      run_block 0 ();
      Array.iter Domain.join domains
    end;
    if rec_on then Metrics.set m_inflight 0.0;
    Array.map (function Some r -> r | None -> assert false) results
  end

let run t f tasks =
  Array.map
    (function Ok v -> v | Error e -> raise e)
    (run_results t f tasks)
