module Beta_icm = Iflow_core.Beta_icm
module Engine = Iflow_engine.Engine
module Model_io = Iflow_io.Model_io

type version = {
  id : int;
  digest : string;
  model : Beta_icm.t;
  offset : int;
}

type t = {
  checkpoint_path : string option;
  mutable current : version;
  mutable checkpoints : int;
}

let create ?checkpoint_path ?(id = 0) ?(offset = 0) model =
  if id < 0 || offset < 0 then invalid_arg "Snapshot.create: negative id/offset";
  {
    checkpoint_path;
    current = { id; digest = Beta_icm.digest model; model; offset };
    checkpoints = 0;
  }

let current t = t.current
let published t = t.current.id
let checkpoints_written t = t.checkpoints

let publish t model ~offset =
  let v =
    {
      id = t.current.id + 1;
      digest = Beta_icm.digest model;
      model;
      offset;
    }
  in
  t.current <- v;
  v

let swap_into t engine =
  Engine.swap engine (Beta_icm.expected_icm t.current.model)

let checkpoint t =
  match t.checkpoint_path with
  | None -> ()
  | Some path ->
    Model_io.save_beta_icm
      ~meta:
        [
          ("offset", string_of_int t.current.offset);
          ("version", string_of_int t.current.id);
        ]
      path t.current.model;
    t.checkpoints <- t.checkpoints + 1

let recover path =
  let model, meta = Model_io.load_beta_icm_meta path in
  let field name =
    match Option.bind (List.assoc_opt name meta) int_of_string_opt with
    | Some v when v >= 0 -> v
    | Some _ | None ->
      failwith
        (Printf.sprintf "%s: not a streaming checkpoint (missing or bad %S \
                         header field)"
           path name)
  in
  (model, field "offset", field "version")
