module Digraph = Iflow_graph.Digraph
module Reach = Iflow_graph.Reach
module Icm = Iflow_core.Icm

(* The reachability cone of (src, dst): every node on at least one
   src -> dst path through edges of positive probability, as an induced
   subgraph with id maps back to the full model. Restricting the flow
   event to the cone is exact — every src -> dst path lies inside it,
   and so does every src -> l sub-path for any cone node l, so the
   exclusion recursion never needs a node outside. Zero-probability
   edges can never fire and carry no dependence, so they are left out
   of the membership BFS (they may still appear as induced sub-edges;
   the evaluator skips them by probability). *)

type t = {
  sub : Digraph.t;
  probs : float array; (* per sub-edge activation probability *)
  node_of_sub : int array; (* sub node id -> model node id (ascending) *)
  edge_of_sub : int array; (* sub edge id -> model edge id *)
  src : int; (* cone-local endpoints *)
  dst : int;
}

let n_nodes c = Digraph.n_nodes c.sub
let n_edges c = Digraph.n_edges c.sub

let local c v =
  let a = c.node_of_sub in
  let rec go lo hi =
    if lo > hi then raise Not_found
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then mid
      else if a.(mid) < v then go (mid + 1) hi
      else go lo (mid - 1)
    end
  in
  go 0 (Array.length a - 1)

let extract icm ~src ~dst =
  let g = Icm.graph icm in
  let n = Digraph.n_nodes g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Cone.extract: node out of range";
  if src = dst then invalid_arg "Cone.extract: src = dst has no cone";
  let active e = Icm.prob icm e > 0.0 in
  let ws = Reach.workspace n in
  Reach.bfs ws ~active g ~src;
  if not (Reach.marked ws dst) then None
  else begin
    let fwd = Reach.snapshot ws in
    Reach.bfs_rev ws ~active g ~dst;
    let keep = Array.init n (fun v -> fwd.(v) && Reach.marked ws v) in
    let sub, node_of_sub, edge_of_sub = Digraph.induced g ~keep in
    let probs = Array.map (fun e -> Icm.prob icm e) edge_of_sub in
    let c = { sub; probs; node_of_sub; edge_of_sub; src = 0; dst = 0 } in
    Some { c with src = local c src; dst = local c dst }
  end
