(* Streaming replay: the always-on learner end to end.

   A synthetic Twitter-style substrate generates attributed cascades
   which are encoded as JSONL log events and streamed through the
   ingestion subsystem: the online updater absorbs them in batches,
   each batch publishes an immutable model version that is hot-swapped
   into a live query engine (probe queries show the estimate tracking
   the evidence), and a checkpoint is written mid-stream.

   Two claims are demonstrated at the end:
   - replay determinism: the streamed posterior is bit-for-bit the
     batch [train_attributed] posterior over the same objects, and a
     second run recovered from the mid-stream checkpoint agrees too;
   - drift detection: half-way through, one community's edge
     probabilities are re-drawn much hotter; the Hoeffding detector
     flags exactly those edges within a bounded number of events. *)

module Rng = Iflow_stats.Rng
module Beta = Iflow_stats.Dist.Beta
module Gen = Iflow_graph.Gen
module Digraph = Iflow_graph.Digraph
module Icm = Iflow_core.Icm
module Beta_icm = Iflow_core.Beta_icm
module Cascade = Iflow_core.Cascade
module Generator = Iflow_core.Generator
module Engine = Iflow_engine.Engine
module Query = Iflow_engine.Query
module Event = Iflow_stream.Event
module Online = Iflow_stream.Online
module Drift = Iflow_stream.Drift
module Snapshot = Iflow_stream.Snapshot
module Runner = Iflow_stream.Runner

let () =
  let rng = Rng.create 20120402 in
  let g = Gen.preferential_attachment rng ~nodes:300 ~mean_out_degree:4 in
  let truth = Generator.retweet_ground_truth rng g in
  Printf.printf "substrate: %d nodes, %d edges\n" (Digraph.n_nodes g)
    (Digraph.n_edges g);

  (* the drifting regime: edges out of the first 10 nodes re-drawn hot *)
  let community v = v < 10 in
  let shifted_probs = Icm.probs truth in
  Digraph.iter_edges g (fun e { Digraph.src; _ } ->
      if community src then
        shifted_probs.(e) <- 0.75 +. (0.2 *. Rng.uniform rng));
  let shifted = Icm.create g shifted_probs in

  (* sources biased toward the community so its out-edges see enough
     trials for the detector's windows to fill *)
  let simulate icm count =
    List.init count (fun _ ->
        let src =
          if Rng.uniform rng < 0.3 then Rng.int rng 10
          else Rng.int rng (Digraph.n_nodes g)
        in
        Event.to_line (Event.of_attributed g (Cascade.run rng icm ~sources:[ src ])))
  in
  let stationary = simulate truth 1500 in
  let drifted = simulate shifted 1500 in
  let lines = stationary @ drifted in

  let prior = Beta_icm.uninformed g in
  let engine = Engine.create ~seed:42 (Beta_icm.expected_icm prior) in
  (* hub edges see a few hundred trials over this stream, so test in
     windows of 50 rather than the default 200 *)
  let drift = { Drift.default_config with Drift.window = 50 } in
  let online = Online.create ~drift prior in
  let snapshot = Snapshot.create prior in
  let probe =
    let src = 0 and dst = Digraph.n_nodes g - 1 in
    Query.flow ~src ~dst ()
  in
  let report =
    Runner.run ~engine
      ~on_publish:(fun v ->
        if v.Snapshot.id mod 4 = 0 then begin
          let r = Engine.query engine probe in
          Printf.printf "  version %2d (offset %5d): Pr(%s) = %.4f\n"
            v.Snapshot.id v.Snapshot.offset (Query.key probe)
            r.Engine.estimate
        end)
      { Runner.batch = 250; checkpoint_every = None }
      online snapshot
      (Runner.lines_of_list lines)
  in
  Format.printf "%a@." Runner.pp_report report;

  (* 1. replay determinism vs batch training *)
  let batch_objects =
    List.filter_map
      (fun line ->
        match Event.of_line line with
        | Ok (Event.Attributed { sources; nodes; edges }) ->
          let active_nodes = Array.make (Digraph.n_nodes g) false in
          List.iter (fun v -> active_nodes.(v) <- true) (sources @ nodes);
          let active_edges = Array.make (Digraph.n_edges g) false in
          List.iter
            (fun (s, d) ->
              match Digraph.find_edge g ~src:s ~dst:d with
              | Some e -> active_edges.(e) <- true
              | None -> assert false)
            edges;
          Some { Iflow_core.Evidence.sources; active_nodes; active_edges }
        | _ -> None)
      lines
  in
  let batch_model = Beta_icm.train_attributed g batch_objects in
  let identical =
    Beta_icm.digest batch_model
    = report.Runner.final.Snapshot.digest
  in
  Printf.printf "stream == batch train_attributed: %b\n" identical;

  (* 2. crash mid-stream, recover from the checkpoint, replay the rest *)
  let checkpoint_path = Filename.temp_file "stream_replay" ".bicm" in
  let half = 1600 in
  let crashed =
    Runner.run
      { Runner.batch = 250; checkpoint_every = Some 500 }
      (Online.create prior)
      (Snapshot.create ~checkpoint_path prior)
      (Runner.lines_of_list (List.filteri (fun i _ -> i < half) lines))
  in
  ignore crashed;
  let model, offset, version = Snapshot.recover checkpoint_path in
  let online' = Online.create model in
  let snapshot' = Snapshot.create ~id:version ~offset model in
  let report' =
    Runner.run ~skip:offset { Runner.batch = 250; checkpoint_every = None }
      online' snapshot'
      (Runner.lines_of_list lines)
  in
  Printf.printf
    "recovered at offset %d of %d, replayed the rest: digests agree: %b\n"
    offset (List.length lines)
    (report'.Runner.final.Snapshot.digest
    = report.Runner.final.Snapshot.digest);
  Sys.remove checkpoint_path;

  (* 3. drift alerts point at the shifted community *)
  let alerts = report.Runner.drift_alerts in
  let in_community =
    List.length (List.filter (fun a -> community a.Drift.src) alerts)
  in
  Printf.printf "drift alerts: %d (%d on shifted-community edges)\n"
    (List.length alerts) in_community;
  (match Online.drift online with
  | Some d -> Printf.printf "edges currently flagged: %d\n" (Drift.flagged d)
  | None -> ());
  (match alerts with
  | first :: _ ->
    Format.printf "  first: %a@." Drift.pp_alert first
  | [] -> ());

  (* engine still serving the final version *)
  let r = Engine.query engine probe in
  Printf.printf "final engine answer: Pr(%s) = %.4f (digest %s)\n"
    (Query.key probe) r.Engine.estimate (Engine.digest engine)
