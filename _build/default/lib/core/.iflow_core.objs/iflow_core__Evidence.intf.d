lib/core/evidence.mli: Iflow_graph
