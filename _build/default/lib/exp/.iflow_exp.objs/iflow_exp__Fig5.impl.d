lib/exp/fig5.ml: Format Iflow_bucket Scale Synthetic_bucket
