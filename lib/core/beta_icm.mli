(** betaICMs: ICMs whose edge activation probabilities are uncertain and
    carried as independent Beta distributions (paper Section II-A).

    A betaICM is a distribution over point-probability ICMs; flow queries
    either collapse it to the expected ICM or sample ICMs from it (nested
    Metropolis-Hastings, Section III-E). *)

type t

val create : Iflow_graph.Digraph.t -> Iflow_stats.Dist.Beta.t array -> t
(** One beta per edge; length must match the edge count. *)

val uninformed : Iflow_graph.Digraph.t -> t
(** Beta(1, 1) everywhere — the untrained prior. *)

val graph : t -> Iflow_graph.Digraph.t
val edge_beta : t -> int -> Iflow_stats.Dist.Beta.t
val n_nodes : t -> int
val n_edges : t -> int

val train_attributed : Iflow_graph.Digraph.t -> Evidence.attributed -> t
(** The paper's attributed training rule: start every edge at
    Beta(1, 1); for each object, increment an edge's alpha when the
    object traversed it, and its beta when the edge's parent was active
    but the edge was not traversed. *)

val observe : t -> edge:int -> fired:bool -> t
(** Single-edge Bayesian update (functional); exposed for incremental /
    streaming training. Thin wrapper over {!observe_many}. *)

val observe_many : t -> (int * bool) list -> t
(** Batched conjugate update: one [(edge, fired)] Bernoulli observation
    per list element, applied with a single copy of the beta array
    (where {!observe} would copy once per event). Raises
    [Invalid_argument] on an out-of-range edge. *)

(** In-place evidence accumulator — the zero-copy hot path behind the
    streaming updater ({!Iflow_stream.Online}). Holds the posterior as
    two raw pseudo-count arrays; [observe] is two array writes. Convert
    back to an immutable model with [freeze] when publishing. *)
module Accum : sig
  type model = t
  type t

  val of_model : model -> t
  (** Copies the model's pseudo-counts; the model is not aliased. *)

  val graph : t -> Iflow_graph.Digraph.t
  val n_edges : t -> int

  val observed : t -> int
  (** Bernoulli observations absorbed since [of_model]. *)

  val observe : t -> edge:int -> fired:bool -> unit

  val decay : t -> lambda:float -> unit
  (** Exponential forgetting for non-stationary streams:
      [(alpha, beta) <- (1 - lambda) * (alpha, beta)] on every edge.
      Scaling both pseudo-counts preserves each posterior mean while
      inflating its variance, so old evidence loses weight without
      biasing the estimate. [lambda = 0] is a no-op; raises
      [Invalid_argument] outside [0, 1). *)

  val grow :
    t -> new_nodes:int ->
    new_edges:(int * int * Iflow_stats.Dist.Beta.t) list -> unit
  (** In-place counterparts of the functional {!Beta_icm.grow} /
      {!Beta_icm.remove_edges}; graph changes are rare events, so these
      rebuild the arrays rather than complicating the observe path. *)

  val remove_edges : t -> (int * int) list -> unit

  val freeze : t -> model
  (** An immutable snapshot; the accumulator remains usable. *)
end

val digest : t -> string
(** FNV-1a fingerprint of the topology and every (alpha, beta) pair —
    the identity used by checkpoint headers and model versioning. *)

val grow :
  t -> new_nodes:int -> new_edges:(int * int * Iflow_stats.Dist.Beta.t) list -> t
(** Absorb a network change (paper intro: models "should be able to
    absorb network changes efficiently"): append [new_nodes] fresh
    nodes, then add the listed edges with their priors. Existing node
    ids and edge ids are preserved; new edges get the next ids in list
    order. *)

val remove_edges : t -> (int * int) list -> t
(** Drop the listed (src, dst) edges, keeping everything else (including
    accumulated evidence) intact. Unknown pairs are ignored. Edge ids
    above a removed edge shift down. *)

val expected_icm : t -> Icm.t
(** Point ICM with each activation probability set to its posterior
    mean [alpha / (alpha + beta)]. *)

val mode_icm : t -> Icm.t

val sample_icm : Iflow_stats.Rng.t -> t -> Icm.t
(** Draw a point ICM: each edge probability sampled from its beta. *)

val mean_std_icm :
  Iflow_stats.Rng.t -> mean:float array -> std:float array ->
  Iflow_graph.Digraph.t -> Icm.t
(** Draw a point ICM from a per-edge Gaussian approximation (mean, std),
    clipped to [0, 1] — the paper's Fig 10 smoothing device for posteriors
    stored as summary statistics. *)

val pp : Format.formatter -> t -> unit
