(** Ablation studies for the design choices DESIGN.md calls out. *)

val report_proposal_tree : Iflow_stats.Rng.t -> Format.formatter -> unit
(** Fenwick-tree O(log m) proposal vs a naive O(m) scan, as
    steps/second over growing edge counts — the claim behind the
    paper's "O(log |E|) by constructing a search tree". *)

val report_thinning : Iflow_stats.Rng.t -> Format.formatter -> unit
(** Estimation error vs brute force at a fixed budget of retained
    samples, across thinning intervals: unthinned chains autocorrelate
    and converge slower per retained sample. *)

val report_summarisation : Iflow_stats.Rng.t -> Format.formatter -> unit
(** Likelihood-evaluation cost, per-event Bernoulli vs summarised
    Binomial — the paper's Bernoulli-to-Binomial reduction. *)

val report_conditional_strategies : Iflow_stats.Rng.t -> Format.formatter -> unit
(** Constrained-chain conditional sampling vs the paper's footnote-2
    alternative (unconstrained chain, joint/condition sample ratio):
    accuracy and cost on the same query. *)

val report_point_vs_nested :
  Scale.t -> Iflow_stats.Rng.t -> Format.formatter -> unit
(** Calibration of expected-ICM point estimates vs nested-MH means on
    the synthetic bucket experiment. *)
