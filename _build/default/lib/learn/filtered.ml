module Summary = Iflow_core.Summary
module Beta = Iflow_stats.Dist.Beta

let beta_for summary ~parent =
  let leaks, count =
    List.fold_left
      (fun (l, c) (p, leaks, count) ->
        if p = parent then (l + leaks, c + count) else (l, c))
      (0, 0)
      (Summary.unambiguous summary)
  in
  Beta.of_counts ~successes:leaks ~failures:(count - leaks)

let train (summary : Summary.t) =
  let parents = Summary.parents_union summary in
  let betas = Array.map (fun p -> beta_for summary ~parent:p) parents in
  {
    Trainer.sink = summary.sink;
    parents;
    mean = Array.map Beta.mean betas;
    std = Array.map Beta.std betas;
  }
