lib/exp/fig10.mli: Format Iflow_bucket Iflow_stats Scale Twitter_lab
