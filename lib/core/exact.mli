(** Exact flow evaluation — exponential-time oracles.

    Two methods:

    - {!brute_force_flow} and friends: enumeration of all [2^m]
      pseudo-states (Equation 3 summed per Equations 4/5). This is the
      ground truth the Metropolis-Hastings sampler is validated against.
    - {!flow_probability}: the paper's recursive exclusion-set rewriting
      (Equation 2), which handles cycles by excluding already-visited
      sinks. {b Caveat} (documented in DESIGN.md): Equation 2 multiplies
      one factor per incoming edge as if the flows to different parents
      were independent. When those flows share edges (two parents fed
      through a common bottleneck), they are positively correlated and
      the recursion overestimates the union slightly; the formula is
      exact whenever the parent flows are edge-disjoint (trees, the
      paper's triangle and cycle examples, in-stars). The test suite
      pins both the agreeing and the disagreeing cases. *)

val flow_probability : Icm.t -> src:int -> dst:int -> float
(** [Pr (src ~> dst)] by the paper's recursive exclusion formula,
    memoised on (target, exclusion set). Requires [n_nodes <= 62]
    (exclusion sets are bitmasks). Worst case exponential — small
    graphs only. See the module caveat about shared-edge parent flows:
    this entry point is {e unchecked} and reproduces the paper's
    recursion verbatim, overestimate and all.

    {b Deprecated} as an API (kept as a thin wrapper for the paper
    reproduction and its pinned tests): new callers should use
    {!flow_probability_checked}, which returns the failure modes as
    typed data instead of raising on size and silently overestimating
    on unsound shapes. *)

type error =
  | Too_large of { nodes : int; limit : int }
      (** the graph exceeds the 62-node bitmask limit — use
          [Iflow_plan] (cone extraction + scalable exclusion sets) *)
  | Unsound of { join : int }
      (** parent flows share ancestry at node [join], so Eq. 2 would
          overestimate; only enumeration (or MH) answers exactly *)

val pp_error : Format.formatter -> error -> unit

val flow_probability_checked :
  Icm.t -> src:int -> dst:int -> (float, error) result
(** Like {!flow_probability}, but typed instead of trusting: sizes past
    the bitmask limit come back as [Too_large], and the edge-disjoint
    soundness certificate (DESIGN.md §2h) is verified over the
    (src, dst) reachability cone first — shapes where the recursion is
    a documented overestimate come back as [Unsound] so callers can
    fall back instead of silently shipping the wrong number. [Ok p] is
    bit-equal to {!flow_probability} on the same input. *)

val brute_force_flow : Icm.t -> src:int -> dst:int -> float
(** Same probability by full pseudo-state enumeration. Requires
    [n_edges <= 24]. *)

val brute_force_conditional :
  Icm.t -> conditions:(int * int * bool) list -> src:int -> dst:int -> float
(** [Pr (src ~> dst | C)] where each condition [(u, v, a)] enforces
    flow [u ~> v] (when [a]) or its absence. Conditions with sources
    other than [src] are supported; all constrained flows are
    single-source flows from their own [u]. Raises [Failure] when the
    conditions have probability 0. *)

val brute_force_community : Icm.t -> src:int -> sinks:int list -> float
(** Probability the object reaches {e every} listed sink — the paper's
    source-to-community flow. *)

val brute_force_impact : Icm.t -> src:int -> float array
(** [impact.(k)] is the probability exactly [k] non-source nodes are
    reached from [src]. *)
