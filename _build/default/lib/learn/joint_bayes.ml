module Summary = Iflow_core.Summary
module Beta = Iflow_stats.Dist.Beta
module Rng = Iflow_stats.Rng
module Descriptive = Iflow_stats.Descriptive

type options = {
  burn_in : int;
  thin : int;
  samples : int;
  step_std : float;
  prior : [ `Uniform | `Informed | `Custom of int -> Beta.t ];
}

let default_options =
  { burn_in = 500; thin = 5; samples = 1000; step_std = 0.08; prior = `Uniform }

let epsilon = 1e-9
let clamp p = Float.max epsilon (Float.min (1.0 -. epsilon) p)

(* Reflect a random-walk proposal back into (0, 1); symmetric, so the
   Metropolis acceptance needs no proposal correction. *)
let reflect x =
  let rec fix x =
    if x < 0.0 then fix (-.x) else if x > 1.0 then fix (2.0 -. x) else x
  in
  clamp (fix x)

let informed_prior summary j =
  let leaks, count =
    List.fold_left
      (fun (l, c) (p, leaks, count) ->
        if p = j then (l + leaks, c + count) else (l, c))
      (0, 0)
      (Summary.unambiguous summary)
  in
  Beta.of_counts ~successes:leaks ~failures:(count - leaks)

let resolve_prior options summary =
  match options.prior with
  | `Uniform -> ((fun _ -> Beta.uniform), false)
  | `Informed -> ((fun j -> informed_prior summary j), true)
  | `Custom f -> (f, false)

let entry_term ambiguous_only (e : Summary.entry) kappa index =
  if ambiguous_only && Array.length e.parents = 1 then 0.0
  else begin
    let survive =
      Array.fold_left
        (fun acc p -> acc *. (1.0 -. kappa.(Hashtbl.find index p)))
        1.0 e.parents
    in
    let p_j = clamp (1.0 -. survive) in
    (float_of_int e.leaks *. Float.log p_j)
    +. (float_of_int (e.count - e.leaks) *. Float.log (1.0 -. p_j))
  end

let log_posterior ~prior ~ambiguous_only (summary : Summary.t) kappa =
  let parents = Summary.parents_union summary in
  if Array.length kappa <> Array.length parents then
    invalid_arg "Joint_bayes.log_posterior: dimension mismatch";
  let index = Hashtbl.create 16 in
  Array.iteri (fun i p -> Hashtbl.add index p i) parents;
  let prior_term =
    ref 0.0
  in
  Array.iteri
    (fun i j -> prior_term := !prior_term +. Beta.log_pdf (prior j) kappa.(i))
    parents;
  List.fold_left
    (fun acc e -> acc +. entry_term ambiguous_only e kappa index)
    !prior_term summary.entries

type result = {
  estimate : Trainer.estimate;
  samples : float array array;
  acceptance : float;
}

let run ?(options = default_options) rng (summary : Summary.t) =
  if options.burn_in < 0 || options.thin < 1 || options.samples < 1 then
    invalid_arg "Joint_bayes.run: bad options";
  let parents = Summary.parents_union summary in
  let d = Array.length parents in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i p -> Hashtbl.add index p i) parents;
  let prior, ambiguous_only = resolve_prior options summary in
  let priors = Array.map prior parents in
  (* entries_of.(i): the summary entries whose characteristic contains
     parent i — the only likelihood terms a coordinate move touches. *)
  let entries_of = Array.make d [] in
  List.iter
    (fun (e : Summary.entry) ->
      Array.iter
        (fun p ->
          let i = Hashtbl.find index p in
          entries_of.(i) <- e :: entries_of.(i))
        e.parents)
    summary.entries;
  let kappa = Array.map Beta.mean priors in
  Array.iteri (fun i k -> kappa.(i) <- clamp k) kappa;
  let local_log_density i =
    Beta.log_pdf priors.(i) kappa.(i)
    +. List.fold_left
         (fun acc e -> acc +. entry_term ambiguous_only e kappa index)
         0.0 entries_of.(i)
  in
  let proposed = ref 0 and accepted = ref 0 in
  let sweep () =
    for i = 0 to d - 1 do
      incr proposed;
      let current = kappa.(i) in
      let before = local_log_density i in
      kappa.(i) <-
        reflect
          (current
          +. Iflow_stats.Dist.gaussian rng ~mean:0.0 ~std:options.step_std);
      let after = local_log_density i in
      if Float.log (Float.max (Rng.uniform rng) 1e-300) <= after -. before then
        incr accepted
      else kappa.(i) <- current
    done
  in
  for _ = 1 to options.burn_in do
    sweep ()
  done;
  let samples =
    Array.init options.samples (fun _ ->
        for _ = 1 to options.thin do
          sweep ()
        done;
        Array.copy kappa)
  in
  let column i = Array.map (fun s -> s.(i)) samples in
  let mean = Array.init d (fun i -> Descriptive.mean (column i)) in
  let std = Array.init d (fun i -> Descriptive.std (column i)) in
  {
    estimate = { Trainer.sink = summary.sink; parents; mean; std };
    samples;
    acceptance =
      (if !proposed = 0 then 0.0
       else float_of_int !accepted /. float_of_int !proposed);
  }

let train ?options rng summary = (run ?options rng summary).estimate
