module Engine = Iflow_engine.Engine
module Metrics = Iflow_obs.Metrics
module Trace = Iflow_obs.Trace
module Clock = Iflow_obs.Clock
module Fail = Iflow_fault.Fail
module Retry = Iflow_fault.Retry

let m_published =
  Metrics.counter ~help:"Model versions published"
    "iflow_stream_versions_published_total"

let m_checkpoints =
  Metrics.counter ~help:"Checkpoints written" "iflow_stream_checkpoints_total"

let m_offset =
  Metrics.gauge ~help:"Log offset (lines consumed) — resume point / ingest lag"
    "iflow_stream_ingest_offset"

let m_batch_seconds =
  Metrics.histogram ~scale:1e-9
    ~help:"Wall time from one publish to the next (evidence absorption \
           included)"
    "iflow_stream_batch_seconds"

let m_publish_seconds =
  Metrics.histogram ~scale:1e-9
    ~help:"Wall time of freeze + publish + engine swap + decay"
    "iflow_stream_publish_seconds"

let m_swap_seconds =
  Metrics.histogram ~scale:1e-9
    ~help:"Wall time of hot-swapping a published version into the engine"
    "iflow_stream_swap_seconds"

let m_read_errors =
  Metrics.counter
    ~help:"Ingest-source read failures absorbed by the on_error policy"
    "iflow_stream_read_errors_total"

let m_swap_failures =
  Metrics.counter
    ~help:"Engine swaps that failed — the engine keeps serving the \
           last-good version (degraded)"
    "iflow_stream_degraded_swaps_total"

let m_checkpoint_failures =
  Metrics.counter
    ~help:"Checkpoint writes that failed after retries (ingest continues)"
    "iflow_stream_checkpoint_failures_total"

type error_policy = Fail_fast | Skip_line | Retry_reads of Retry.policy

type config = { batch : int; checkpoint_every : int option }

let default_config = { batch = 256; checkpoint_every = None }

type report = {
  lines : int;
  stats : Online.stats;
  final : Snapshot.version;
  versions_published : int;
  checkpoints_written : int;
  cache_evictions : int;
  drift_alerts : Drift.alert list;
  read_errors : int;
  swap_failures : int;
  checkpoint_failures : int;
  wall_ns : int;
  events_per_sec : float;
}

let is_eintr = function
  | Unix.Unix_error (Unix.EINTR, _, _) -> true
  | Sys_error msg ->
    (* channel reads surface errno as strerror text *)
    let needle = "Interrupted system call" in
    let n = String.length needle and h = String.length msg in
    let rec go i = i + n <= h && (String.sub msg i n = needle || go (i + 1)) in
    go 0
  | _ -> false

let lines_of_channel ic () =
  (* EINTR is not data loss — a signal (SIGCHLD from a supervised
     child, a profiler tick) interrupted the read before any byte moved.
     Resume the same read instead of killing the ingest loop. *)
  let rec go () =
    match input_line ic with
    | line -> Some line
    | exception End_of_file -> None
    | exception e when is_eintr e -> go ()
  in
  go ()

let lines_of_list lines =
  let rest = ref lines in
  fun () ->
    match !rest with
    | [] -> None
    | line :: tl ->
      rest := tl;
      Some line

(* Skip_line re-pulls after a failed read; a source whose fault is
   permanent (closed channel, dead disk) would spin forever, so give up
   after this many consecutive failures. *)
let max_consecutive_read_errors = 100

let run ?engine ?(skip = 0) ?(on_error = Fail_fast) ?on_degraded ?on_alert
    ?on_publish ?on_quarantine config online snapshot next =
  if config.batch < 1 then invalid_arg "Runner.run: batch must be >= 1";
  (match config.checkpoint_every with
  | Some k when k < 1 -> invalid_arg "Runner.run: checkpoint_every must be >= 1"
  | _ -> ());
  if skip < 0 then invalid_arg "Runner.run: negative skip";
  for _ = 1 to skip do
    ignore (next ())
  done;
  let t_start = Clock.now_ns () in
  let t_last_publish = ref t_start in
  let lines = ref skip in
  let pending = ref 0 in
  let last_checkpoint = ref skip in
  let evictions = ref 0 in
  let published = ref 0 in
  let checkpoints = ref 0 in
  let seen_alerts = ref 0 in
  let read_errors = ref 0 in
  let swap_failures = ref 0 in
  let checkpoint_failures = ref 0 in
  let degraded stage e =
    match on_degraded with Some f -> f ~stage e | None -> ()
  in
  let consecutive = ref 0 in
  let rec pull () =
    let attempt () =
      Fail.point "runner.read";
      next ()
    in
    match
      (match on_error with
      | Retry_reads policy -> Retry.with_policy policy attempt
      | Fail_fast | Skip_line -> attempt ())
    with
    | v ->
      consecutive := 0;
      v
    | exception e -> (
      match on_error with
      | Fail_fast -> raise e
      | Retry_reads _ ->
        incr read_errors;
        Metrics.inc m_read_errors;
        raise e
      | Skip_line ->
        incr read_errors;
        Metrics.inc m_read_errors;
        incr consecutive;
        if !consecutive > max_consecutive_read_errors then raise e
        else begin
          degraded "read" e;
          pull ()
        end)
  in
  let swap () =
    match engine with
    | Some e -> (
      let t0 = Clock.now_ns () in
      match
        Fail.point "runner.swap";
        Snapshot.swap_into snapshot e
      with
      | evicted ->
        evictions := !evictions + evicted;
        Metrics.observe m_swap_seconds (Clock.now_ns () - t0)
      | exception ex ->
        (* the engine keeps answering from the last version it
           successfully swapped onto; the next publish retries *)
        incr swap_failures;
        Metrics.inc m_swap_failures;
        degraded "swap" ex)
    | None -> ()
  in
  swap ();
  let drain_alerts () =
    match Online.drift online with
    | None -> ()
    | Some d ->
      let count = Drift.alert_count d in
      if count > !seen_alerts then begin
        List.iteri
          (fun i a ->
            if i >= !seen_alerts then begin
              if Trace.enabled () then
                Trace.instant "stream.drift_alert"
                  ~args:
                    [
                      ("edge", Trace.Int a.Drift.edge);
                      ("reference_rate", Trace.Float a.Drift.reference_rate);
                      ("window_rate", Trace.Float a.Drift.window_rate);
                    ]
                  ();
              match on_alert with Some f -> f a | None -> ()
            end)
          (Drift.alerts d);
        seen_alerts := count
      end
  in
  let checkpoint_due () =
    match config.checkpoint_every with
    | Some k -> !lines - !last_checkpoint >= k
    | None -> false
  in
  let write_checkpoint () =
    match Snapshot.checkpoint snapshot with
    | () ->
      incr checkpoints;
      Metrics.inc m_checkpoints;
      last_checkpoint := !lines
    | exception ex ->
      (* retries inside Snapshot.checkpoint are exhausted; keep
         ingesting — [last_checkpoint] stays put, so the next publish
         tries again, and recovery still has the previous generation *)
      incr checkpoint_failures;
      Metrics.inc m_checkpoint_failures;
      degraded "checkpoint" ex
  in
  let publish () =
    Trace.with_span "stream.publish" ~args:[ ("offset", Trace.Int !lines) ]
    @@ fun () ->
    let t0 = Clock.now_ns () in
    let v = Snapshot.publish snapshot (Online.model online) ~offset:!lines in
    swap ();
    (* forgetting is per published batch: evidence already absorbed
       loses weight (1 - lambda) before the next batch accumulates *)
    Online.decay online;
    incr published;
    pending := 0;
    Metrics.inc m_published;
    Metrics.set m_offset (float_of_int !lines);
    let t1 = Clock.now_ns () in
    Metrics.observe m_publish_seconds (t1 - t0);
    Metrics.observe m_batch_seconds (t1 - !t_last_publish);
    t_last_publish := t1;
    (match on_publish with Some f -> f v | None -> ());
    if checkpoint_due () then write_checkpoint ()
  in
  let rec loop () =
    match pull () with
    | None -> ()
    | Some line ->
      incr lines;
      (match Online.apply_line ~lineno:!lines online line with
      | `Applied -> incr pending
      | `Quarantined reason -> (
        match on_quarantine with
        | Some f -> f ~line:!lines ~reason
        | None -> ()));
      drain_alerts ();
      if !pending >= config.batch then publish ();
      loop ()
  in
  loop ();
  if !pending > 0 then publish ();
  if config.checkpoint_every <> None && !last_checkpoint <> !lines then
    write_checkpoint ();
  let wall_ns = Clock.now_ns () - t_start in
  let stats = Online.stats online in
  {
    lines = !lines;
    stats;
    final = Snapshot.current snapshot;
    versions_published = !published;
    checkpoints_written = !checkpoints;
    cache_evictions = !evictions;
    drift_alerts =
      (match Online.drift online with Some d -> Drift.alerts d | None -> []);
    read_errors = !read_errors;
    swap_failures = !swap_failures;
    checkpoint_failures = !checkpoint_failures;
    wall_ns;
    events_per_sec =
      (if wall_ns <= 0 then 0.0
       else
         float_of_int stats.Online.applied /. Clock.seconds_of_ns wall_ns);
  }

let run_binlog ?engine ?(skip = 0) ?(on_error = Fail_fast) ?on_degraded
    ?on_publish ?on_quarantine config sharded snapshot reader =
  if config.batch < 1 then invalid_arg "Runner.run_binlog: batch must be >= 1";
  (match config.checkpoint_every with
  | Some k when k < 1 ->
    invalid_arg "Runner.run_binlog: checkpoint_every must be >= 1"
  | _ -> ());
  if skip < 0 then invalid_arg "Runner.run_binlog: negative skip";
  if Binlog.Reader.skip reader skip < skip then
    failwith "Runner.run_binlog: resume offset is past the end of the log";
  let t_start = Clock.now_ns () in
  let t_last_publish = ref t_start in
  let lines = ref skip in
  let pending = ref 0 in
  let last_checkpoint = ref skip in
  let evictions = ref 0 in
  let published = ref 0 in
  let checkpoints = ref 0 in
  let read_errors = ref 0 in
  let swap_failures = ref 0 in
  let checkpoint_failures = ref 0 in
  let degraded stage e =
    match on_degraded with Some f -> f ~stage e | None -> ()
  in
  let batch = Binlog.Batch.create () in
  let consecutive = ref 0 in
  (* Publish cadence matches the JSONL loop exactly: never read more
     frames than would fill the current batch of applied events, so the
     set of events absorbed between any two publishes is the sequential
     one — digests stay comparable even with forgetting on. *)
  let rec pull () =
    let attempt () =
      Fail.point "runner.read";
      Binlog.Reader.read_batch reader batch ~max:(config.batch - !pending)
    in
    match
      (match on_error with
      | Retry_reads policy -> Retry.with_policy policy attempt
      | Fail_fast | Skip_line -> attempt ())
    with
    | more ->
      consecutive := 0;
      more
    | exception e -> (
      match on_error with
      | Fail_fast -> raise e
      | Retry_reads _ ->
        incr read_errors;
        Metrics.inc m_read_errors;
        raise e
      | Skip_line ->
        incr read_errors;
        Metrics.inc m_read_errors;
        incr consecutive;
        if !consecutive > max_consecutive_read_errors then raise e
        else begin
          degraded "read" e;
          pull ()
        end)
  in
  let swap () =
    match engine with
    | Some e -> (
      let t0 = Clock.now_ns () in
      match
        Fail.point "runner.swap";
        Snapshot.swap_into snapshot e
      with
      | evicted ->
        evictions := !evictions + evicted;
        Metrics.observe m_swap_seconds (Clock.now_ns () - t0)
      | exception ex ->
        incr swap_failures;
        Metrics.inc m_swap_failures;
        degraded "swap" ex)
    | None -> ()
  in
  swap ();
  let checkpoint_due () =
    match config.checkpoint_every with
    | Some k -> !lines - !last_checkpoint >= k
    | None -> false
  in
  let write_checkpoint () =
    match Snapshot.checkpoint snapshot with
    | () ->
      incr checkpoints;
      Metrics.inc m_checkpoints;
      last_checkpoint := !lines
    | exception ex ->
      incr checkpoint_failures;
      Metrics.inc m_checkpoint_failures;
      degraded "checkpoint" ex
  in
  let publish () =
    Trace.with_span "stream.publish" ~args:[ ("offset", Trace.Int !lines) ]
    @@ fun () ->
    let t0 = Clock.now_ns () in
    let v = Snapshot.publish snapshot (Sharded.model sharded) ~offset:!lines in
    swap ();
    Sharded.decay sharded;
    incr published;
    pending := 0;
    Metrics.inc m_published;
    Metrics.set m_offset (float_of_int !lines);
    let t1 = Clock.now_ns () in
    Metrics.observe m_publish_seconds (t1 - t0);
    Metrics.observe m_batch_seconds (t1 - !t_last_publish);
    t_last_publish := t1;
    (match on_publish with Some f -> f v | None -> ());
    if checkpoint_due () then write_checkpoint ()
  in
  let rec loop () =
    if pull () then begin
      let first_line = !lines + 1 in
      let n = Binlog.Batch.length batch in
      let applied = Sharded.apply_batch ?on_quarantine sharded batch ~first_line in
      lines := !lines + n;
      pending := !pending + applied;
      if !pending >= config.batch then publish ();
      loop ()
    end
  in
  loop ();
  if !pending > 0 then publish ();
  if config.checkpoint_every <> None && !last_checkpoint <> !lines then
    write_checkpoint ();
  let wall_ns = Clock.now_ns () - t_start in
  let stats = Sharded.stats sharded in
  {
    lines = !lines;
    stats;
    final = Snapshot.current snapshot;
    versions_published = !published;
    checkpoints_written = !checkpoints;
    cache_evictions = !evictions;
    drift_alerts = [];
    read_errors = !read_errors;
    swap_failures = !swap_failures;
    checkpoint_failures = !checkpoint_failures;
    wall_ns;
    events_per_sec =
      (if wall_ns <= 0 then 0.0
       else
         float_of_int stats.Online.applied /. Clock.seconds_of_ns wall_ns);
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%d lines: %a@,\
     final version %d (digest %s, offset %d); %d published, %d checkpoints, \
     %d cache evictions, %d drift alerts; %d read errors, %d degraded swaps, \
     %d checkpoint failures; %.3f s (%.0f events/s)@]"
    r.lines Online.pp_stats r.stats r.final.Snapshot.id r.final.Snapshot.digest
    r.final.Snapshot.offset r.versions_published r.checkpoints_written
    r.cache_evictions
    (List.length r.drift_alerts)
    r.read_errors r.swap_failures r.checkpoint_failures
    (Iflow_obs.Clock.seconds_of_ns r.wall_ns)
    r.events_per_sec
