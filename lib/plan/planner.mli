(** The exact-oracle query planner.

    Decides whether a whole engine query — a conjunction of flow
    targets plus optional flow conditions — is answerable in closed
    form, and answers it when it is. The decision procedure
    ({!Cone} extraction + {!Exact_eval} certification) is conservative:
    a query is answered exactly only when every target cone certifies
    individually, all cones involved are pairwise edge-disjoint (so the
    events ride on disjoint, independent edge coins and conjunctions
    multiply while conditions cancel), and every condition is feasible
    or vacuous. Everything else returns a typed fallback {!reason} for
    the MH path — the planner refuses, it never approximates.

    Counters ([iflow_plan_exact_hits_total],
    [iflow_plan_fallbacks_total{reason=...}],
    [iflow_plan_validations_total],
    [iflow_plan_validate_disagreements_total]) are registered on the
    default {!Iflow_obs.Metrics} registry; callers report outcomes via
    {!record_exact} / {!record_fallback} / {!record_validation}. *)

type reason =
  | Disabled  (** planning turned off by configuration *)
  | Unsound_join of { node : int }
      (** parent flows share ancestry at this model node: Eq. 2 would
          overestimate there *)
  | Budget_exceeded  (** certification/evaluation work budget ran out *)
  | Target_overlap  (** two target cones share a live edge *)
  | Condition_overlap
      (** a condition cone shares a live edge with the query or with
          another condition *)
  | Condition_infeasible of { c_src : int; c_dst : int; want : bool }
      (** the condition has probability 0 (positive on an impossible
          flow, negative on a certain one) — MH will refuse it too *)

val reason_label : reason -> string
(** Stable snake_case label, used as the metric's [reason] label and on
    the wire. *)

val describe : reason -> string
(** Human-readable one-liner for [explain]. *)

type target_plan = {
  t_src : int;
  t_dst : int;
  cone_nodes : int;
  cone_edges : int;
  probability : float;
  path : int list option;
      (** model node ids of the unique src->dst path, for tree cones *)
}

type exact = {
  value : float;  (** the query's exact probability *)
  cone_nodes : int;  (** summed over evaluated target cones *)
  cone_edges : int;
  work : int;  (** budget units actually spent *)
  targets : target_plan list;
  dropped_conditions : int;
      (** vacuous negative conditions (on impossible flows) ignored *)
}

val default_budget : int

val plan :
  ?budget:int ->
  Iflow_core.Icm.t ->
  targets:(int * int) list ->
  conditions:(int * int * bool) list ->
  (exact, reason) result
(** [plan icm ~targets ~conditions] — targets are (src, dst) pairs: one
    for a flow query, (src, sink) per sink for a community, the pairs
    themselves for a joint. Deterministic and RNG-free: planning can
    never perturb the MH path. Raises [Invalid_argument] on
    out-of-range nodes or an empty target list. *)

val record_exact : unit -> unit
val record_fallback : reason -> unit
val record_validation : agreed:bool -> unit
