(** Figs 8, 9 and 10: predicting the flow of URLs (Fig 8) and hashtags
    (Fig 9) with edge probabilities learned from unattributed evidence,
    on radius-limited social graphs around "interesting" users (the top
    originators), with the omnipotent user standing in for the outside
    world. Fig 10 is the same URL experiment with edge probabilities
    redrawn from a per-edge Gaussian posterior approximation on each of
    several repetitions.

    Expected shapes: our method calibrates better than Goyal on URLs
    (which only spread in-network); both degrade markedly on hashtags,
    whose offline adoption violates the cascade assumption. *)

type method_name =
  | Ours (** joint Bayes posterior means *)
  | Goyal (** credit heuristic *)
  | Ours_gaussian of int
      (** joint Bayes mean/std, edges resampled from a clipped Gaussian
          on each of the given number of repetitions (Fig 10) *)

val method_label : method_name -> string

type result = {
  kind : Iflow_twitter.Unattributed.item_kind;
  radius : int;
  trainer : method_name;
  bucket : Iflow_bucket.Bucket.t;
}

val run :
  Scale.t -> Iflow_stats.Rng.t -> Twitter_lab.t ->
  kind:Iflow_twitter.Unattributed.item_kind ->
  radii:int list -> methods:method_name list -> result list

val report :
  Scale.t -> Iflow_stats.Rng.t -> Twitter_lab.t ->
  kind:Iflow_twitter.Unattributed.item_kind -> Format.formatter -> result list
(** The paper's four panels: radii [4; 5] x [Ours; Goyal]. *)
