lib/learn/trainer.ml: Array Float Iflow_core Iflow_graph Iflow_stats List Option
