lib/core/evidence.ml: Array Iflow_graph List Queue
