module Digraph = Iflow_graph.Digraph
module Beta = Iflow_stats.Dist.Beta
module Beta_icm = Iflow_core.Beta_icm
module Icm = Iflow_core.Icm
module Tweet = Iflow_twitter.Tweet

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let with_in path f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let fold_lines ic f init =
  let rec loop lineno acc =
    match input_line ic with
    | line -> loop (lineno + 1) (f lineno acc line)
    | exception End_of_file -> acc
  in
  loop 1 init

let malformed path lineno what =
  failwith (Printf.sprintf "%s:%d: malformed %s" path lineno what)

(* ----- graph-with-edge-payload formats ----- *)

(* v2 files open with a comment header carrying the model fingerprint
   (and free-form key=value metadata such as a checkpoint's event
   offset) ahead of the legacy "<magic> <n>" line:

     # bicm-v2 digest=29ab... events=1200
     bicm 50
     ...

   Loaders accept legacy headerless files, and verify the digest of a
   v2 file against the reloaded model — a checkpoint replayed against
   the wrong event log (or a corrupted file) fails loudly instead of
   silently training the wrong posterior. *)

let meta_field_ok s =
  s <> "" && String.for_all (fun c -> c <> ' ' && c <> '=' && c <> '\n') s

let header_of_meta ~magic ~digest meta =
  List.iter
    (fun (k, v) ->
      if k = "digest" || not (meta_field_ok k && meta_field_ok v) then
        invalid_arg "Model_io: bad metadata field")
    meta;
  String.concat " "
    (Printf.sprintf "# %s-v2 digest=%s" magic digest
    :: List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) meta)

let meta_of_header path ~magic line =
  (* "# <magic>-v2 k=v ..." -> Some fields; None when not a v2 header *)
  match String.split_on_char ' ' line with
  | "#" :: tag :: fields when tag = magic ^ "-v2" ->
    Some
      (List.filter_map
         (fun field ->
           if field = "" then None
           else
             match String.index_opt field '=' with
             | Some i ->
               Some
                 ( String.sub field 0 i,
                   String.sub field (i + 1) (String.length field - i - 1) )
             | None -> malformed path 1 "header field (expected key=value)")
         fields)
  | "#" :: _ -> malformed path 1 (Printf.sprintf "header (expected '# %s-v2')" magic)
  | _ -> None

let save_edges path ~magic ~header ~nodes ~n_edges ~edge_line =
  with_out path (fun oc ->
      output_string oc header;
      output_char oc '\n';
      Printf.fprintf oc "%s %d\n" magic nodes;
      for e = 0 to n_edges - 1 do
        output_string oc (edge_line e);
        output_char oc '\n'
      done)

let load_edges path ~magic ~parse_payload =
  with_in path (fun ic ->
      let first = try input_line ic with End_of_file -> "" in
      let meta, header, body_start =
        match meta_of_header path ~magic first with
        | Some meta ->
          let line = try input_line ic with End_of_file -> "" in
          (Some meta, line, 3)
        | None -> (None, first, 2)
      in
      let nodes =
        match String.split_on_char ' ' header with
        | [ m; n ] when m = magic -> (
          match int_of_string_opt n with
          | Some n when n >= 0 -> n
          | Some _ | None -> malformed path (body_start - 1) "header")
        | _ ->
          malformed path (body_start - 1)
            (Printf.sprintf "header (expected '%s <n>')" magic)
      in
      let rows =
        fold_lines ic
          (fun lineno acc line ->
            let lineno = lineno + body_start - 1 in
            if String.trim line = "" then acc
            else begin
              match String.split_on_char ' ' line with
              | src :: dst :: payload -> (
                match (int_of_string_opt src, int_of_string_opt dst) with
                | Some s, Some d -> (s, d, parse_payload path lineno payload) :: acc
                | _ -> malformed path lineno "edge endpoints")
              | _ -> malformed path lineno "edge line"
            end)
          []
      in
      (meta, nodes, List.rev rows))

let check_digest path meta digest =
  match Option.bind meta (List.assoc_opt "digest") with
  | Some expected when expected <> digest ->
    failwith
      (Printf.sprintf
         "%s: model digest mismatch (header %s, contents %s) — the file is \
          corrupted or this checkpoint belongs to a different model / event \
          log"
         path expected digest)
  | Some _ | None -> ()

let save_beta_icm ?(meta = []) path model =
  let g = Beta_icm.graph model in
  save_edges path ~magic:"bicm"
    ~header:(header_of_meta ~magic:"bicm" ~digest:(Beta_icm.digest model) meta)
    ~nodes:(Digraph.n_nodes g) ~n_edges:(Digraph.n_edges g)
    ~edge_line:(fun e ->
      let { Digraph.src; dst } = Digraph.edge g e in
      let b = Beta_icm.edge_beta model e in
      Printf.sprintf "%d %d %.17g %.17g" src dst b.Beta.alpha b.Beta.beta)

let load_beta_icm_meta path =
  let parse path lineno = function
    | [ a; b ] -> (
      match (float_of_string_opt a, float_of_string_opt b) with
      | Some a, Some b when a > 0.0 && b > 0.0 -> Beta.v a b
      | _ -> malformed path lineno "beta parameters")
    | _ -> malformed path lineno "beta parameters"
  in
  let meta, nodes, rows = load_edges path ~magic:"bicm" ~parse_payload:parse in
  let g = Digraph.of_edges ~nodes (List.map (fun (s, d, _) -> (s, d)) rows) in
  let model =
    Beta_icm.create g (Array.of_list (List.map (fun (_, _, b) -> b) rows))
  in
  check_digest path meta (Beta_icm.digest model);
  (model, Option.value meta ~default:[])

let load_beta_icm path = fst (load_beta_icm_meta path)

let save_icm ?(meta = []) path icm =
  let g = Icm.graph icm in
  save_edges path ~magic:"icm"
    ~header:(header_of_meta ~magic:"icm" ~digest:(Icm.digest icm) meta)
    ~nodes:(Digraph.n_nodes g) ~n_edges:(Digraph.n_edges g)
    ~edge_line:(fun e ->
      let { Digraph.src; dst } = Digraph.edge g e in
      Printf.sprintf "%d %d %.17g" src dst (Icm.prob icm e))

let load_icm_meta path =
  let parse path lineno = function
    | [ p ] -> (
      match float_of_string_opt p with
      | Some p when p >= 0.0 && p <= 1.0 -> p
      | _ -> malformed path lineno "probability")
    | _ -> malformed path lineno "probability"
  in
  let meta, nodes, rows = load_edges path ~magic:"icm" ~parse_payload:parse in
  let g = Digraph.of_edges ~nodes (List.map (fun (s, d, _) -> (s, d)) rows) in
  let icm = Icm.create g (Array.of_list (List.map (fun (_, _, p) -> p) rows)) in
  check_digest path meta (Icm.digest icm);
  (icm, Option.value meta ~default:[])

let load_icm path = fst (load_icm_meta path)

(* ----- tweets ----- *)

let sanitise text =
  String.map (fun c -> if c = '\t' || c = '\n' || c = '\r' then ' ' else c) text

let save_tweets path tweets =
  with_out path (fun oc ->
      List.iter
        (fun (t : Tweet.t) ->
          Printf.fprintf oc "%d\t%s\t%d\t%s\n" t.Tweet.id t.Tweet.author
            t.Tweet.time (sanitise t.Tweet.text))
        tweets)

let load_tweets path =
  with_in path (fun ic ->
      List.rev
        (fold_lines ic
           (fun lineno acc line ->
             if String.trim line = "" then acc
             else begin
               match String.split_on_char '\t' line with
               | [ id; author; time; text ] -> (
                 match (int_of_string_opt id, int_of_string_opt time) with
                 | Some id, Some time ->
                   Tweet.make ~id ~author ~time ~text :: acc
                 | _ -> malformed path lineno "tweet ids")
               | _ -> malformed path lineno "tweet line"
             end)
           []))

let save_names path names =
  with_out path (fun oc ->
      Array.iter (fun n -> Printf.fprintf oc "%s\n" n) names)

let load_names path =
  with_in path (fun ic ->
      Array.of_list (List.rev (fold_lines ic (fun _ acc line -> line :: acc) [])))
