type t = { mutable h : int64 }

let fnv_offset_basis = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let create () = { h = fnv_offset_basis }

let add_byte t b =
  t.h <- Int64.mul (Int64.logxor t.h (Int64.of_int (b land 0xff))) fnv_prime

let add_int64 t x =
  for i = 0 to 7 do
    add_byte t (Int64.to_int (Int64.shift_right_logical x (8 * i)))
  done

let add_int t x = add_int64 t (Int64.of_int x)
let add_float t x = add_int64 t (Int64.bits_of_float x)
let add_bool t b = add_byte t (if b then 1 else 0)

let add_string t s =
  String.iter (fun c -> add_byte t (Char.code c)) s;
  (* length fold keeps ["ab";"c"] distinct from ["a";"bc"] *)
  add_int t (String.length s)

let add_floats t xs = Array.iter (add_float t) xs; add_int t (Array.length xs)
let add_ints t xs = Array.iter (add_int t) xs; add_int t (Array.length xs)

let value t = t.h
let to_hex t = Printf.sprintf "%016Lx" t.h

let to_seed t =
  (* fold to a non-negative OCaml int, mixing the top bit back in *)
  let x = t.h in
  let folded = Int64.logxor x (Int64.shift_right_logical x 61) in
  Int64.to_int (Int64.logand folded 0x3fffffffffffffffL)
