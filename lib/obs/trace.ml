type arg = Int of int | Float of float | Str of string

type sink = { oc : out_channel; mutable first : bool }

let lock = Mutex.create ()
let sink : sink option ref = ref None

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let close_locked () =
  match !sink with
  | None -> ()
  | Some s ->
    output_string s.oc "\n]\n";
    close_out_noerr s.oc;
    sink := None

let close () = locked close_locked

(* A crashed or non-closing run used to leave an unterminated JSON
   array; registering the close once per process (not once per
   [to_file]) keeps repeated re-installs from stacking exit hooks. *)
let exit_hook = ref false

let to_file path =
  let oc = open_out path in
  locked (fun () ->
      close_locked ();
      output_string oc "[";
      sink := Some { oc; first = true };
      if not !exit_hook then begin
        exit_hook := true;
        at_exit close
      end)

let enabled () = !sink <> None

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_arg buf (k, v) =
  Buffer.add_char buf '"';
  escape buf k;
  Buffer.add_string buf "\": ";
  match v with
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
    else Buffer.add_string buf "null"
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'

(* ts/dur in microseconds with nanosecond decimals, the unit the trace
   viewers expect *)
let us ns = Printf.sprintf "%.3f" (float_of_int ns /. 1e3)

let emit ~name ~ph ?flow ?(args = []) ~ts_ns ?dur_ns () =
  let tid = (Domain.self () :> int) in
  let buf = Buffer.create 160 in
  Buffer.add_string buf "{\"name\": \"";
  escape buf name;
  Buffer.add_string buf (Printf.sprintf "\", \"ph\": \"%s\"" ph);
  Buffer.add_string buf (Printf.sprintf ", \"ts\": %s" (us ts_ns));
  (match dur_ns with
  | Some d -> Buffer.add_string buf (Printf.sprintf ", \"dur\": %s" (us d))
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf ", \"pid\": %d, \"tid\": %d" (Unix.getpid ()) tid);
  if ph = "i" then Buffer.add_string buf ", \"s\": \"t\"";
  (match flow with
  | Some id ->
    (* flow events need a category and a numeric id; a finish binds to
       its enclosing slice so viewers draw the arrow into the span *)
    Buffer.add_string buf (Printf.sprintf ", \"cat\": \"request\", \"id\": %d" id);
    if ph = "f" then Buffer.add_string buf ", \"bp\": \"e\""
  | None -> ());
  if args <> [] then begin
    Buffer.add_string buf ", \"args\": {";
    List.iteri
      (fun i a ->
        if i > 0 then Buffer.add_string buf ", ";
        add_arg buf a)
      args
  end;
  if args <> [] then Buffer.add_string buf "}";
  Buffer.add_string buf "}";
  locked (fun () ->
      match !sink with
      | None -> ()
      | Some s ->
        output_string s.oc (if s.first then "\n" else ",\n");
        s.first <- false;
        output_string s.oc (Buffer.contents buf))

let complete ?args name ~ts_ns ~dur_ns =
  if enabled () then emit ~name ~ph:"X" ?args ~ts_ns ~dur_ns ()

let instant name ?args () =
  if enabled () then emit ~name ~ph:"i" ?args ~ts_ns:(Clock.now_ns ()) ()

let with_span name ?args f =
  if not (enabled ()) then f ()
  else begin
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        emit ~name ~ph:"X" ?args ~ts_ns:t0 ~dur_ns:(Clock.now_ns () - t0) ())
      f
  end

(* flow ids hash the request id into the numeric id field trace viewers
   key arrows on; collisions only cross two arrows in the UI *)
let flow_id rid = Hashtbl.hash rid land 0x3fffffff

let flow_start ?args name ~id =
  if enabled () then emit ~name ~ph:"s" ~flow:id ?args ~ts_ns:(Clock.now_ns ()) ()

let flow_step ?args name ~id =
  if enabled () then emit ~name ~ph:"t" ~flow:id ?args ~ts_ns:(Clock.now_ns ()) ()

let flow_finish ?args name ~id =
  if enabled () then emit ~name ~ph:"f" ~flow:id ?args ~ts_ns:(Clock.now_ns ()) ()
