(** The online betaICM updater: applies decoded {!Event}s to an
    in-place {!Iflow_core.Beta_icm.Accum} accumulator, quarantining
    anything malformed or inconsistent (count, don't crash).

    {b Update rules.}
    - [attributed]: exactly the batch rule of
      {!Iflow_core.Beta_icm.train_attributed} — for every edge, a
      traversed edge counts one success, an untraversed edge whose
      source node was active counts one failure. Replaying a log of
      attributed events therefore reproduces batch training bit for
      bit (integer pseudo-counts add associatively in floats).
    - [trace]: the naive frequency rule over activation times — for an
      edge (u, v) with u active at time [t]: v active at [t + 1] counts
      a success (u is a candidate parent); v never active, or active
      only later than [t + 1], counts a failure (u's attempt provably
      missed); v active at or before [t] carries no information. This
      is deliberately the cheap streaming counterpart of the paper's
      (batch, expensive) joint-Bayes unattributed method.
    - graph changes: routed to {!Iflow_core.Beta_icm.Accum.grow} /
      [remove_edges]; accumulated evidence on surviving edges is kept.
      A graph change re-anchors the drift detector (edge ids shift).

    {b Quarantine.} An event is quarantined — counted, never applied,
    never fatal — when it references unknown nodes or edges, fails
    {!Iflow_core.Evidence.attributed_object_is_consistent} /
    [trace_is_consistent], or (via {!apply_line}) does not parse. *)

type stats = {
  applied : int;        (** events absorbed into the model *)
  observations : int;   (** Bernoulli edge updates they produced *)
  graph_changes : int;  (** applied add/remove events *)
  parse_errors : int;   (** lines that failed to decode *)
  inconsistent : int;   (** evidence failing the consistency checks *)
  unknown_refs : int;   (** events naming nodes/edges not in the graph *)
}

val quarantined : stats -> int
(** [parse_errors + inconsistent + unknown_refs]. *)

type t

val create : ?forget:float -> ?drift:Drift.config -> Iflow_core.Beta_icm.t -> t
(** Start from a model (typically {!Iflow_core.Beta_icm.uninformed} or
    a loaded checkpoint). [forget] is the per-{!decay} forgetting factor
    lambda in [0, 1) (default 0, off); [drift] enables the detector.
    Raises [Invalid_argument] on a bad lambda. *)

val apply : t -> Event.t -> [ `Applied | `Quarantined of string ]

val apply_line : ?lineno:int -> t -> string -> [ `Applied | `Quarantined of string ]
(** Decode then {!apply}; a parse failure is quarantined like any other
    bad event. Quarantine reasons carry the byte offset of malformed
    JSON, and the ["line N: "] prefix when [lineno] is given (the
    {!Runner} threads its running line count through here). *)

val decay : t -> unit
(** Apply one step of exponential forgetting,
    [(alpha, beta) <- (1 - lambda) * (alpha, beta)] — the {!Runner}
    calls this once per published batch. No-op when [forget] is 0. *)

val model : t -> Iflow_core.Beta_icm.t
(** Freeze the accumulator into an immutable model (the accumulator
    keeps absorbing). *)

val graph : t -> Iflow_graph.Digraph.t
val drift : t -> Drift.t option
val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
