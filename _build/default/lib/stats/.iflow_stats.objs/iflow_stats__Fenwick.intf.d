lib/stats/fenwick.mli: Rng
