module Descriptive = Iflow_stats.Descriptive

type summary = {
  mean : float;
  rhat : float;
  ess : float;
  mcse : float;
  n_total : int;
}

(* Split each chain in half so a single chain still yields a between-
   sequence comparison and slow drift within a chain inflates R-hat. *)
let split_sequences chains =
  let out = ref [] in
  Array.iter
    (fun (c : float array) ->
      let n = Array.length c in
      if n >= 4 then begin
        let half = n / 2 in
        out := Array.sub c 0 half :: Array.sub c (n - half) half :: !out
      end
      else if n > 0 then out := c :: !out)
    chains;
  Array.of_list (List.rev !out)

let split_rhat chains =
  let seqs = split_sequences chains in
  let m = Array.length seqs in
  if m < 2 then Float.nan
  else begin
    (* truncate to a common length so unequal chains stay comparable *)
    let n = Array.fold_left (fun acc s -> min acc (Array.length s))
        (Array.length seqs.(0)) seqs in
    let seqs = Array.map (fun s -> Array.sub s 0 n) seqs in
    if n < 2 then Float.nan
    else begin
      let means = Array.map Descriptive.mean seqs in
      let vars = Array.map Descriptive.variance seqs in
      let w = Descriptive.mean vars in
      let b = float_of_int n *. Descriptive.variance means in
      if w <= 0.0 then
        (* all sequences constant: identical -> converged; else divergent *)
        if b <= 0.0 then 1.0 else Float.infinity
      else begin
        let nf = float_of_int n in
        let var_plus = ((nf -. 1.0) /. nf *. w) +. (b /. nf) in
        Float.sqrt (var_plus /. w)
      end
    end
  end

let ess chains =
  Array.fold_left
    (fun acc (c : float array) ->
      if Array.length c = 0 then acc
      else acc +. Descriptive.effective_sample_size c)
    0.0 chains

let pooled_mean chains =
  let sum = ref 0.0 and n = ref 0 in
  Array.iter
    (fun c ->
      Array.iter (fun x -> sum := !sum +. x) c;
      n := !n + Array.length c)
    chains;
  if !n = 0 then Float.nan else !sum /. float_of_int !n

let pooled_variance chains =
  let m = pooled_mean chains in
  let acc = ref 0.0 and n = ref 0 in
  Array.iter
    (fun c ->
      Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) c;
      n := !n + Array.length c)
    chains;
  if !n < 2 then 0.0 else !acc /. float_of_int (!n - 1)

let mcse chains =
  let e = ess chains in
  if e <= 0.0 then Float.nan
  else Float.sqrt (pooled_variance chains /. e)

let summary chains =
  let n_total = Array.fold_left (fun acc c -> acc + Array.length c) 0 chains in
  {
    mean = pooled_mean chains;
    rhat = split_rhat chains;
    ess = ess chains;
    mcse = mcse chains;
    n_total;
  }

let converged ~rhat_target ~mcse_target s =
  (* NaN compares false, so undiagnosable summaries never pass *)
  s.rhat <= rhat_target && s.mcse <= mcse_target

let pp_summary ppf s =
  Format.fprintf ppf "mean %.5f, R-hat %.4f, ESS %.0f, MCSE %.5f (n=%d)"
    s.mean s.rhat s.ess s.mcse s.n_total
