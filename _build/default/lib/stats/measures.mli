(** Accuracy measures from the paper's appendix (Table III) plus the
    standard error metrics used in Section V-C (Fig 7).

    A prediction is a pair [(p, z)]: an estimated probability [p] and the
    boolean outcome [z] that was actually observed. *)

type prediction = { estimate : float; outcome : bool }

val brier : prediction list -> float
(** Mean squared difference between estimate and outcome — lower is
    better, 0 is perfect. Raises [Invalid_argument] on []. *)

val normalised_likelihood : ?epsilon:float -> prediction list -> float
(** Geometric mean of the probability assigned to the observed outcome —
    closer to 1 is better. As in the paper, estimates of exactly 0 or 1
    are nudged by [epsilon] (default 1e-6) so a single surprising outcome
    cannot collapse the whole product to 0. *)

val middle_values : prediction list -> prediction list
(** Drop predictions that are exactly 0 or 1 — the paper's "middle
    values" variant that stops near-certain predictions washing out the
    differences between methods. *)

val rmse : expected:float array -> actual:float array -> float
(** Root mean squared error between paired arrays (Fig 7's metric).
    Raises [Invalid_argument] on length mismatch or empty input. *)

val mae : expected:float array -> actual:float array -> float

type row = {
  label : string;
  nl_all : float;
  brier_all : float;
  count_all : int;
  nl_middle : float option;
  brier_middle : float option;
  count_middle : int;
}
(** One line of the paper's Table III. *)

val table_row : label:string -> prediction list -> row
val pp_row : Format.formatter -> row -> unit
val pp_table : Format.formatter -> row list -> unit
