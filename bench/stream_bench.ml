(* Streaming-ingestion benchmark: events/sec through the online
   updater and hot-swap latency into a live engine, on the paper's
   timing setting (~6K users, ~12K edges).

   Three measurements:
   - ingest: decode + validate + apply attributed log lines into the
     in-place accumulator, with and without the drift detector;
   - end to end: the same lines through [Runner.run] with its
     publish/swap cadence against a live engine;
   - swap: publish-a-version and hot-swap-into-the-engine latencies,
     measured per call with a warm query cache so invalidation has
     real entries to evict.

   Results go to BENCH_PR3.json (machine-readable, committed) so the
   perf trajectory is recorded from PR 3 onward. --quick (or
   IFLOW_BENCH_QUICK=1) shortens the run for CI. *)

module Rng = Iflow_stats.Rng
module Gen = Iflow_graph.Gen
module Digraph = Iflow_graph.Digraph
module Beta_icm = Iflow_core.Beta_icm
module Cascade = Iflow_core.Cascade
module Generator = Iflow_core.Generator
module Engine = Iflow_engine.Engine
module Query = Iflow_engine.Query
module Event = Iflow_stream.Event
module Online = Iflow_stream.Online
module Drift = Iflow_stream.Drift
module Snapshot = Iflow_stream.Snapshot
module Runner = Iflow_stream.Runner
module Clock = Iflow_obs.Clock
module Metrics = Iflow_obs.Metrics
module Jsonl = Bench_obs.Jsonl

let quick =
  Array.exists (fun a -> a = "--quick") Sys.argv
  || Sys.getenv_opt "IFLOW_BENCH_QUICK" <> None

let n_events = if quick then 2_000 else 20_000
let n_swaps = if quick then 20 else 200

let timed f =
  let t0 = Clock.now_ns () in
  let x = f () in
  (x, Clock.seconds_of_ns (Clock.elapsed_ns t0))

let () =
  let rng = Rng.create 20120402 in
  let g = Gen.preferential_attachment rng ~nodes:6000 ~mean_out_degree:2 in
  let truth = Generator.retweet_ground_truth rng g in
  Printf.printf "stream bench: %d nodes, %d edges, %d events (quick=%b)\n%!"
    (Digraph.n_nodes g) (Digraph.n_edges g) n_events quick;

  let lines =
    List.init n_events (fun _ ->
        let src = Rng.int rng (Digraph.n_nodes g) in
        Event.to_line
          (Event.of_attributed g (Cascade.run rng truth ~sources:[ src ])))
  in
  let prior = Beta_icm.uninformed g in

  (* 1. raw ingest: decode + validate + apply *)
  let ingest ?drift () =
    let online = Online.create ?drift prior in
    let (), dt =
      timed (fun () ->
          List.iter (fun line -> ignore (Online.apply_line online line)) lines)
    in
    (float_of_int n_events /. dt, Online.stats online)
  in
  let plain_rate, plain_stats = ingest () in
  let drift_rate, _ = ingest ~drift:Drift.default_config () in
  let obs = plain_stats.Online.observations in
  Printf.printf "  ingest:          %10.0f events/s (%.0f obs/s)\n%!" plain_rate
    (plain_rate *. float_of_int obs /. float_of_int n_events);
  Printf.printf "  ingest + drift:  %10.0f events/s\n%!" drift_rate;

  (* 2. end to end through the runner, publishing into a live engine *)
  let light =
    {
      Engine.default_config with
      Engine.chains = 2;
      burn_in = 100;
      round_samples = 50;
      max_samples = 100;
      rhat_target = 10.0;
      mcse_target = 1.0;
    }
  in
  let engine = Engine.create ~config:light ~seed:42 (Beta_icm.expected_icm prior) in
  let runner_rate =
    let online = Online.create prior in
    let snapshot = Snapshot.create prior in
    let report, dt =
      timed (fun () ->
          Runner.run ~engine
            { Runner.batch = 500; checkpoint_every = None }
            online snapshot
            (Runner.lines_of_list lines))
    in
    ignore report;
    float_of_int n_events /. dt
  in
  Printf.printf "  runner + engine: %10.0f events/s\n%!" runner_rate;

  (* 3. per-call publish and swap latency, warm cache *)
  let online = Online.create prior in
  let snapshot = Snapshot.create prior in
  let probes =
    [ Query.flow ~src:0 ~dst:1 (); Query.flow ~src:1 ~dst:2 () ]
  in
  let rest = ref lines and consumed = ref 0 in
  let publish_ts = ref [] and swap_ts = ref [] in
  let evictions = ref 0 in
  for _ = 1 to n_swaps do
    (* advance the model a little so each published version is new *)
    for _ = 1 to 20 do
      match !rest with
      | [] -> ()
      | line :: tl ->
        ignore (Online.apply_line online line);
        incr consumed;
        rest := tl
    done;
    let v, dt_pub =
      timed (fun () ->
          Snapshot.publish snapshot (Online.model online) ~offset:!consumed)
    in
    ignore v;
    let evicted, dt_swap = timed (fun () -> Snapshot.swap_into snapshot engine) in
    evictions := !evictions + evicted;
    publish_ts := dt_pub :: !publish_ts;
    swap_ts := dt_swap :: !swap_ts;
    (* warm the cache against the new version *)
    List.iter (fun q -> ignore (Engine.query engine q)) probes
  done;
  let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
  let max_of xs = List.fold_left Float.max 0.0 xs in
  let us x = 1e6 *. x in
  Printf.printf
    "  publish:         %10.1f us mean, %.1f us max over %d versions\n%!"
    (us (mean !publish_ts))
    (us (max_of !publish_ts))
    n_swaps;
  Printf.printf
    "  swap:            %10.1f us mean, %.1f us max (%d cache evictions)\n%!"
    (us (mean !swap_ts))
    (us (max_of !swap_ts))
    !evictions;

  let json =
    Printf.sprintf
      "{\n\
      \  \"bench\": \"stream_ingest\",\n\
      \  \"pr\": 3,\n\
      \  \"graph\": {\"nodes\": %d, \"edges\": %d, \"generator\": \
       \"preferential_attachment\", \"seed\": 20120402},\n\
      \  \"quick\": %b,\n\
      \  \"events\": %d,\n\
      \  \"observations\": %d,\n\
      \  \"measured\": {\n\
      \    \"ingest_events_per_sec\": %.0f,\n\
      \    \"ingest_with_drift_events_per_sec\": %.0f,\n\
      \    \"runner_with_engine_events_per_sec\": %.0f,\n\
      \    \"publish_mean_us\": %.1f,\n\
      \    \"publish_max_us\": %.1f,\n\
      \    \"swap_mean_us\": %.1f,\n\
      \    \"swap_max_us\": %.1f,\n\
      \    \"swap_cache_evictions\": %d\n\
      \  }\n\
       }\n"
      (Digraph.n_nodes g) (Digraph.n_edges g) quick n_events obs plain_rate
      drift_rate runner_rate
      (us (mean !publish_ts))
      (us (max_of !publish_ts))
      (us (mean !swap_ts))
      (us (max_of !swap_ts))
      !evictions
  in
  let oc = open_out "BENCH_PR3.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_PR3.json\n%!";

  (* PR 4: the same ingest and runner paths with the metrics registry
     recording, plus the registry's own snapshot, merged into
     BENCH_PR4.json next to the sampler bench's section *)
  Metrics.set_recording true;
  let ingest_on_rate, _ = ingest () in
  let runner_on_rate =
    let online = Online.create prior in
    let snapshot = Snapshot.create prior in
    let report, dt =
      timed (fun () ->
          Runner.run ~engine
            { Runner.batch = 500; checkpoint_every = None }
            online snapshot
            (Runner.lines_of_list lines))
    in
    ignore report;
    float_of_int n_events /. dt
  in
  Metrics.set_recording false;
  Printf.printf "  metrics on:      %10.0f events/s ingest, %.0f runner\n%!"
    ingest_on_rate runner_on_rate;
  let num x = Jsonl.Num x in
  Bench_obs.update_bench_json ~key:"stream"
    (Jsonl.Obj
       [
         ("bench", Jsonl.Str "stream_metrics_overhead");
         ("pr", num 4.0);
         ("quick", Jsonl.Bool quick);
         ("events", num (float_of_int n_events));
         ("metrics_off_ingest_events_per_sec", num (Float.round plain_rate));
         ("metrics_on_ingest_events_per_sec", num (Float.round ingest_on_rate));
         ( "ingest_overhead_pct",
           num (100.0 *. (plain_rate -. ingest_on_rate) /. plain_rate) );
         ("metrics_off_runner_events_per_sec", num (Float.round runner_rate));
         ("metrics_on_runner_events_per_sec", num (Float.round runner_on_rate));
         ("obs_snapshot", Bench_obs.snapshot ());
       ]);
  Bench_obs.write_metrics_out ()
