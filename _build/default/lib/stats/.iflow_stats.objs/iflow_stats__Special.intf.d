lib/stats/special.mli:
