module Jsonl = Iflow_engine.Jsonl
module Beta = Iflow_stats.Dist.Beta

type t =
  | Attributed of {
      sources : int list;
      nodes : int list;
      edges : (int * int) list;
    }
  | Trace of { sources : int list; times : (int * int) list }
  | Add_nodes of { count : int }
  | Add_edges of { edges : (int * int) list; prior : Beta.t }
  | Remove_edges of { edges : (int * int) list }

let of_attributed g (o : Iflow_core.Evidence.attributed_object) =
  let module Digraph = Iflow_graph.Digraph in
  let nodes = ref [] in
  Array.iteri
    (fun v active -> if active then nodes := v :: !nodes)
    o.Iflow_core.Evidence.active_nodes;
  let edges = ref [] in
  Array.iteri
    (fun e active ->
      if active then
        edges := (Digraph.edge_src g e, Digraph.edge_dst g e) :: !edges)
    o.Iflow_core.Evidence.active_edges;
  Attributed
    {
      sources = o.Iflow_core.Evidence.sources;
      nodes = List.rev !nodes;
      edges = List.rev !edges;
    }

let of_trace (tr : Iflow_core.Evidence.trace) =
  let times = ref [] in
  Array.iteri
    (fun v t -> if t > 0 then times := (v, t) :: !times)
    tr.Iflow_core.Evidence.times;
  Trace
    { sources = tr.Iflow_core.Evidence.trace_sources; times = List.rev !times }

(* ----- decoding -----

   Errors travel as an exception raised from shared top-level helpers:
   the happy path builds no [Printf] closure, bind continuation, or
   intermediate [result] per valid line (per-line closure construction
   showed up in ingest profiles). Error branches allocate freely. *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let rec int_items name acc = function
  | [] -> List.rev acc
  | v :: rest -> (
    match Jsonl.to_int v with
    | Some i -> int_items name (i :: acc) rest
    | None -> bad "field %S: expected integers" name)

let rec pair_items name acc = function
  | [] -> List.rev acc
  | Jsonl.List [ a; b ] :: rest -> (
    match Jsonl.to_int a with
    | None -> bad "field %S: expected [int, int] pairs" name
    | Some x -> (
      match Jsonl.to_int b with
      | None -> bad "field %S: expected [int, int] pairs" name
      | Some y -> pair_items name ((x, y) :: acc) rest))
  | _ :: _ -> bad "field %S: expected [int, int] pairs" name

let list_field name json =
  match Jsonl.member name json with
  | Some (Jsonl.List vs) -> vs
  | Some _ -> bad "field %S: expected a list" name
  | None -> bad "missing field %S" name

let int_list_field name json = int_items name [] (list_field name json)
let pair_list_field name json = pair_items name [] (list_field name json)

let float_field_default name default json =
  match Jsonl.member name json with
  | None -> default
  | Some (Jsonl.Num f) -> f
  | Some _ -> bad "field %S: expected a number" name

let int_field name json =
  match Jsonl.member name json with
  | None -> bad "missing field %S" name
  | Some v -> (
    match Jsonl.to_int v with
    | Some i -> i
    | None -> bad "field %S: expected an integer" name)

let of_json_exn json =
  match Option.bind (Jsonl.member "type" json) Jsonl.to_string with
  | Some "attributed" ->
    let sources = int_list_field "sources" json in
    let nodes = int_list_field "nodes" json in
    let edges = pair_list_field "edges" json in
    Attributed { sources; nodes; edges }
  | Some "trace" ->
    let sources = int_list_field "sources" json in
    let times = pair_list_field "times" json in
    Trace { sources; times }
  | Some "add_nodes" -> Add_nodes { count = int_field "count" json }
  | Some "add_edges" ->
    let edges = pair_list_field "edges" json in
    let alpha = float_field_default "alpha" 1.0 json in
    let beta = float_field_default "beta" 1.0 json in
    if alpha > 0.0 && beta > 0.0 then
      Add_edges { edges; prior = Beta.v alpha beta }
    else raise (Bad "add_edges: prior parameters must be > 0")
  | Some "remove_edges" -> Remove_edges { edges = pair_list_field "edges" json }
  | Some other -> bad "unknown event type %S" other
  | None -> raise (Bad "missing field \"type\"")

let of_json json =
  match of_json_exn json with
  | ev -> Ok ev
  | exception Bad msg -> Error msg

let of_line ?lineno line =
  let r =
    match Jsonl.parse line with Ok json -> of_json json | Error _ as e -> e
  in
  match (r, lineno) with
  | Error msg, Some n -> Error (Printf.sprintf "line %d: %s" n msg)
  | _ -> r

(* ----- encoding ----- *)

let add_ints b ids =
  Buffer.add_char b '[';
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int v))
    ids;
  Buffer.add_char b ']'

let add_pairs b pairs =
  Buffer.add_char b '[';
  List.iteri
    (fun i (x, y) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "[%d,%d]" x y))
    pairs;
  Buffer.add_char b ']'

let to_line t =
  let b = Buffer.create 64 in
  (match t with
  | Attributed { sources; nodes; edges } ->
    Buffer.add_string b {|{"type":"attributed","sources":|};
    add_ints b sources;
    Buffer.add_string b {|,"nodes":|};
    add_ints b nodes;
    Buffer.add_string b {|,"edges":|};
    add_pairs b edges;
    Buffer.add_char b '}'
  | Trace { sources; times } ->
    Buffer.add_string b {|{"type":"trace","sources":|};
    add_ints b sources;
    Buffer.add_string b {|,"times":|};
    add_pairs b times;
    Buffer.add_char b '}'
  | Add_nodes { count } ->
    Buffer.add_string b (Printf.sprintf {|{"type":"add_nodes","count":%d}|} count)
  | Add_edges { edges; prior } ->
    Buffer.add_string b {|{"type":"add_edges","edges":|};
    add_pairs b edges;
    Buffer.add_string b
      (Printf.sprintf {|,"alpha":%.17g,"beta":%.17g}|} prior.Beta.alpha
         prior.Beta.beta)
  | Remove_edges { edges } ->
    Buffer.add_string b {|{"type":"remove_edges","edges":|};
    add_pairs b edges;
    Buffer.add_char b '}');
  Buffer.contents b

let pp ppf t = Format.pp_print_string ppf (to_line t)
