module Digraph = Iflow_graph.Digraph
module Reach = Iflow_graph.Reach
module Icm = Iflow_core.Icm
module Metrics = Iflow_obs.Metrics

(* The planner proper: given a query's targets and conditions, decide
   whether the whole query is answerable in closed form, and answer it.

   A query is a conjunction of flow targets (src, dst) — one for a flow
   query, one per sink for a community, one per pair for a joint —
   conditioned on flow conditions (u, v, ±). It is answered exactly
   when
   - every target cone individually certifies (Exact_eval), and
   - all target cones are pairwise edge-disjoint (their events then
     depend on disjoint edge coins, so the conjunction is the product),
     and
   - every condition is either vacuous (a negative condition on an
     impossible flow), or individually feasible with a cone that is
     edge-disjoint from all target cones and all other condition cones
     — independence then gives Pr[targets | conditions] = Pr[targets]
     and Pr[conditions] > 0.
   Anything else falls back to MH with a counted reason; the planner
   never approximates. *)

type reason =
  | Disabled
  | Unsound_join of { node : int } (* model node id *)
  | Budget_exceeded
  | Target_overlap
  | Condition_overlap
  | Condition_infeasible of { c_src : int; c_dst : int; want : bool }

let reason_label = function
  | Disabled -> "disabled"
  | Unsound_join _ -> "unsound_join"
  | Budget_exceeded -> "budget_exceeded"
  | Target_overlap -> "target_overlap"
  | Condition_overlap -> "condition_overlap"
  | Condition_infeasible _ -> "condition_infeasible"

let describe = function
  | Disabled -> "planner disabled"
  | Unsound_join { node } ->
    Printf.sprintf "parent flows share ancestry at node %d" node
  | Budget_exceeded -> "work budget exhausted"
  | Target_overlap -> "target cones share edges"
  | Condition_overlap -> "condition cone overlaps the query or another condition"
  | Condition_infeasible { c_src; c_dst; want } ->
    Printf.sprintf "condition %d:%d:%c has probability %c" c_src c_dst
      (if want then '+' else '-')
      (if want then '0' else '1')

(* every reason is pre-registered so the exposition shows a zero series
   per label from the first scrape *)
let m_exact_hits =
  Metrics.counter ~help:"Queries answered in closed form by the planner"
    "iflow_plan_exact_hits_total"

let fallback_counter label =
  Metrics.counter
    ~labels:[ ("reason", label) ]
    ~help:"Planner fallbacks to the MH sampler, by reason"
    "iflow_plan_fallbacks_total"

let fallback_counters =
  List.map
    (fun label -> (label, fallback_counter label))
    [
      "disabled"; "unsound_join"; "budget_exceeded"; "target_overlap";
      "condition_overlap"; "condition_infeasible";
    ]

let m_validations =
  Metrics.counter ~help:"Exact answers cross-checked against a full MH run"
    "iflow_plan_validations_total"

let m_disagreements =
  Metrics.counter
    ~help:"Cross-checks where exact and MH disagreed beyond tolerance"
    "iflow_plan_validate_disagreements_total"

let record_exact () = Metrics.inc m_exact_hits

let record_fallback r =
  Metrics.inc (List.assoc (reason_label r) fallback_counters)

let record_validation ~agreed =
  Metrics.inc m_validations;
  if not agreed then Metrics.inc m_disagreements

type target_plan = {
  t_src : int;
  t_dst : int;
  cone_nodes : int;
  cone_edges : int;
  probability : float;
  path : int list option; (* model node ids, src first, for tree cones *)
}

type exact = {
  value : float;
  cone_nodes : int; (* summed over evaluated targets *)
  cone_edges : int;
  work : int;
  targets : target_plan list;
  dropped_conditions : int; (* vacuous negative conditions ignored *)
}

let default_budget = 200_000

exception Stop of reason

(* Edge-disjointness ledger across every cone the plan relies on. Only
   live (positive-probability) edges carry dependence; a deterministic
   0-probability edge shared between cones is harmless. *)
type claim = Claim_condition | Claim_target

let claim ledger kind (c : Cone.t) =
  let m = Digraph.n_edges c.Cone.sub in
  for e = 0 to m - 1 do
    if c.Cone.probs.(e) > 0.0 then begin
      let orig = c.Cone.edge_of_sub.(e) in
      (match ledger.(orig) with
      | None -> ()
      | Some Claim_condition -> raise (Stop Condition_overlap)
      | Some Claim_target ->
        raise
          (Stop
             (match kind with
             | Claim_condition -> Condition_overlap
             | Claim_target -> Target_overlap)));
      ledger.(orig) <- Some kind
    end
  done

let plan ?(budget = default_budget) icm ~targets ~conditions =
  let g = Icm.graph icm in
  let n = Digraph.n_nodes g in
  let check what v =
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Planner.plan: %s node %d out of range" what v)
  in
  List.iter
    (fun (s, d) ->
      check "target" s;
      check "target" d)
    targets;
  List.iter
    (fun (u, v, _) ->
      check "condition" u;
      check "condition" v)
    conditions;
  if targets = [] then invalid_arg "Planner.plan: no targets";
  let ledger = Array.make (Digraph.n_edges g) None in
  let work = ref 0 in
  let ws = lazy (Reach.workspace n) in
  try
    (* conditions first: their joint feasibility must hold even when
       the target product collapses to 0 (MH raises on infeasible
       conditions, and an exact 0 must not mask that) *)
    let dropped = ref 0 in
    List.iter
      (fun (u, v, want) ->
        if u = v then begin
          if want then incr dropped (* u ~> u is certain *)
          else raise (Stop (Condition_infeasible { c_src = u; c_dst = v; want }))
        end
        else
          match Cone.extract icm ~src:u ~dst:v with
          | None ->
            if want then
              raise (Stop (Condition_infeasible { c_src = u; c_dst = v; want }))
            else incr dropped (* the flow is impossible: certainly absent *)
          | Some cone ->
            work := !work + Cone.n_nodes cone + Cone.n_edges cone;
            if !work > budget then raise (Stop Budget_exceeded);
            if not want then begin
              (* certainly-present flow (an all-probability-1 path)
                 makes a negative condition infeasible *)
              let ws = Lazy.force ws in
              Reach.bfs ws ~active:(fun e -> Icm.prob icm e >= 1.0) g ~src:u;
              if Reach.marked ws v then
                raise
                  (Stop (Condition_infeasible { c_src = u; c_dst = v; want }))
            end;
            claim ledger Claim_condition cone)
      conditions;
    (* targets, sequentially; the first impossible one short-circuits
       the whole conjunction to an exact 0 *)
    let reports = ref [] in
    let value = ref 1.0 in
    let total_nodes = ref 0 in
    let total_edges = ref 0 in
    let zero = ref false in
    List.iter
      (fun (s, d) ->
        if not !zero then
          if s = d then begin
            reports :=
              {
                t_src = s;
                t_dst = d;
                cone_nodes = 1;
                cone_edges = 0;
                probability = 1.0;
                path = Some [ s ];
              }
              :: !reports;
            total_nodes := !total_nodes + 1
          end
          else
            match Cone.extract icm ~src:s ~dst:d with
            | None ->
              zero := true;
              value := 0.0;
              reports :=
                {
                  t_src = s;
                  t_dst = d;
                  cone_nodes = 0;
                  cone_edges = 0;
                  probability = 0.0;
                  path = None;
                }
                :: !reports
            | Some cone -> (
              work := !work + Cone.n_nodes cone + Cone.n_edges cone;
              let remaining = budget - !work in
              if remaining <= 0 then raise (Stop Budget_exceeded);
              match Exact_eval.eval ~budget:remaining cone with
              | Exact_eval.Unsound { join } ->
                raise
                  (Stop (Unsound_join { node = cone.Cone.node_of_sub.(join) }))
              | Exact_eval.Budget { work = w } ->
                work := !work + w;
                raise (Stop Budget_exceeded)
              | Exact_eval.Value { p; work = w; path } ->
                work := !work + w;
                claim ledger Claim_target cone;
                value := !value *. p;
                total_nodes := !total_nodes + Cone.n_nodes cone;
                total_edges := !total_edges + Cone.n_edges cone;
                reports :=
                  {
                    t_src = s;
                    t_dst = d;
                    cone_nodes = Cone.n_nodes cone;
                    cone_edges = Cone.n_edges cone;
                    probability = p;
                    path =
                      Option.map
                        (List.map (fun v -> cone.Cone.node_of_sub.(v)))
                        path;
                  }
                  :: !reports))
      targets;
    Ok
      {
        value = !value;
        cone_nodes = !total_nodes;
        cone_edges = !total_edges;
        work = !work;
        targets = List.rev !reports;
        dropped_conditions = !dropped;
      }
  with Stop r -> Error r
