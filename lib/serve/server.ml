module Engine = Iflow_engine.Engine
module Query = Iflow_engine.Query
module Jsonl = Iflow_engine.Jsonl
module Metrics = Iflow_obs.Metrics
module Prometheus = Iflow_obs.Prometheus
module Log = Iflow_obs.Log
module Clock = Iflow_obs.Clock
module Trace = Iflow_obs.Trace
module Flight = Iflow_obs.Flight
module Snapshot = Iflow_stream.Snapshot
module Cancel = Iflow_mcmc.Cancel
module Retry = Iflow_fault.Retry

let m_connections =
  Metrics.counter ~help:"Connections accepted" "iflow_serve_connections_total"

let m_active =
  Metrics.gauge ~help:"Connections open right now"
    "iflow_serve_active_connections"

let m_requests =
  Metrics.counter ~help:"Query requests decoded (both dialects)"
    "iflow_serve_requests_total"

let m_answers =
  Metrics.counter ~help:"Query requests answered with an estimate"
    "iflow_serve_answers_total"

let shed_counter reason =
  Metrics.counter
    ~labels:[ ("reason", reason) ]
    ~help:"Requests refused by admission control"
    "iflow_serve_shed_total"

let m_shed_capacity = shed_counter "capacity"
let m_shed_quota = shed_counter "quota"
let m_shed_connections = shed_counter "connections"
let m_shed_deadline = shed_counter "deadline"

(* Final outcome of every deadline-carrying request; requests without
   a deadline never touch this family *)
let deadline_outcome outcome =
  Metrics.counter
    ~labels:[ ("outcome", outcome) ]
    ~help:"Deadline-carrying requests by final outcome"
    "iflow_serve_deadline_total"

let m_deadline_ok = deadline_outcome "ok"
let m_deadline_partial = deadline_outcome "partial"
let m_deadline_exceeded = deadline_outcome "deadline_exceeded"
let m_deadline_unmeetable = deadline_outcome "deadline_unmeetable"

let m_reaped =
  Metrics.counter ~help:"Idle connections closed by the reaper"
    "iflow_serve_reaped_connections_total"

let m_bad =
  Metrics.counter ~help:"Undecodable or unanswerable requests"
    "iflow_serve_bad_requests_total"

let m_engine_errors =
  Metrics.counter ~help:"Queries failed in the engine (Chains_failed)"
    "iflow_serve_engine_errors_total"

let m_request_seconds =
  Metrics.histogram ~scale:1e-9
    ~help:"End-to-end request latency, admission to answer (the SLO \
           histogram)"
    "iflow_serve_request_seconds"

let m_queue_wait_seconds =
  Metrics.histogram ~scale:1e-9
    ~help:"Time admitted requests waited in the bounded queue"
    "iflow_serve_queue_wait_seconds"

let m_queue_depth =
  Metrics.gauge ~help:"Admission queue depth at last dequeue"
    "iflow_serve_queue_depth"

let m_degraded_answers =
  Metrics.counter
    ~help:"Answers completed from surviving chains only (degraded)"
    "iflow_serve_degraded_answers_total"

let m_degraded =
  Metrics.gauge
    ~help:"1 while the engine serves a stale model because a hot-swap \
           failed, else 0"
    "iflow_serve_degraded"

let m_evidence =
  Metrics.counter ~help:"Evidence lines accepted via POST /evidence"
    "iflow_serve_evidence_lines_total"

let m_slow =
  Metrics.counter ~help:"Requests over the --slow-query-ms threshold"
    "iflow_serve_slow_queries_total"

(* Per-tenant, per-phase latency decomposition. A tenant's four
   histogram handles live together in an immutable assoc list swapped
   through an Atomic, so the per-request path is one lock-free lookup;
   the mutex only serialises the rare first sight of a tenant. Tenant
   cardinality is capped so a label-spraying client cannot grow the
   registry without bound — tenants past the cap account under
   "overflow" (and pay the slow path, which stays bounded too). *)
let max_phase_tenants = 64

type phase_handles = {
  ph_queue_wait : Metrics.histogram;
  ph_plan : Metrics.histogram;
  ph_sample : Metrics.histogram;
  ph_serialize : Metrics.histogram;
}

let phase_handles =
  let table : (string * phase_handles) list Atomic.t = Atomic.make [] in
  let mu = Mutex.create () in
  let mk tenant phase =
    Metrics.histogram ~scale:1e-9
      ~labels:[ ("tenant", tenant); ("phase", phase) ]
      ~help:
        "Request latency decomposed by phase (queue_wait / plan / sample / \
         serialize)"
      "iflow_serve_phase_seconds"
  in
  let register tenant =
    Mutex.protect mu (fun () ->
        let t = Atomic.get table in
        match List.assoc_opt tenant t with
        | Some h -> h
        | None -> (
          let tenant =
            if List.length t < max_phase_tenants then tenant else "overflow"
          in
          match List.assoc_opt tenant t with
          | Some h -> h
          | None ->
            let h =
              {
                ph_queue_wait = mk tenant "queue_wait";
                ph_plan = mk tenant "plan";
                ph_sample = mk tenant "sample";
                ph_serialize = mk tenant "serialize";
              }
            in
            Atomic.set table ((tenant, h) :: t);
            h))
  in
  fun tenant ->
    match List.assoc_opt tenant (Atomic.get table) with
    | Some h -> h
    | None -> register tenant

type config = {
  host : string;
  port : int;
  backlog : int;
  queue_capacity : int;
  workers : int;
  max_connections : int;
  quota : Quota.config option;
  ingest_capacity : int;
  max_line_bytes : int;
  max_body_bytes : int;
  flight_capacity : int;
  slow_query_ms : int option;
  default_deadline_ms : int option;
  max_deadline_ms : int option;
  read_timeout_ms : int option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    backlog = 128;
    queue_capacity = 64;
    workers = 2;
    max_connections = 1024;
    quota = None;
    ingest_capacity = 65_536;
    max_line_bytes = 1 lsl 20;
    max_body_bytes = 8 lsl 20;
    flight_capacity = 1024;
    slow_query_ms = None;
    default_deadline_ms = None;
    max_deadline_ms = None;
    read_timeout_ms = Some 30_000;
  }

type reply =
  | Answer of { result : Engine.result; version : int option; degraded : bool }
  | Refused of {
      code : Wire.error_code;
      msg : string;
      retry_after_ms : int option;
    }

type ivar = {
  im : Mutex.t;
  icv : Condition.t;
  mutable value : reply option;
}

let ivar () = { im = Mutex.create (); icv = Condition.create (); value = None }

let ivar_fill iv r =
  Mutex.protect iv.im (fun () ->
      iv.value <- Some r;
      Condition.broadcast iv.icv)

let ivar_wait iv =
  Mutex.protect iv.im (fun () ->
      let rec go () =
        match iv.value with
        | Some r -> r
        | None ->
          Condition.wait iv.icv iv.im;
          go ()
      in
      go ())

type work = {
  wq : Query.t;
  enqueue_ns : int;
  rid : string;
  tenant : string;
  ph : Engine.phases; (* filled by the engine on the worker thread *)
  mutable queue_wait_ns : int;
  deadline_budget_ns : int; (* the client's budget; 0 = none *)
  cancel : Cancel.t; (* armed per-request for deadline'd entries;
                        deadline-free entries share [Cancel.none] so
                        the common path allocates nothing *)
  iv : ivar;
}

(* Per-connection state the reaper inspects. [c_inflight] is true
   while a request from this connection is queued or running — the
   reaper never touches a connection with a live request, however
   long it runs. *)
type conn = {
  c_fd : Unix.file_descr;
  mutable c_last_progress_ns : int; (* last completed request line *)
  mutable c_inflight : bool;
  mutable c_reaped : bool;
}

type state = Idle | Running | Stopped

type t = {
  config : config;
  engine : Engine.t;
  gate : (unit -> unit) option;
  queue : work Bqueue.t;
  ingest : string Bqueue.t;
  quota : Quota.t option;
  (* digest -> published version id, for the [version] response field *)
  vlock : Mutex.t;
  versions : (string, int) Hashtbl.t;
  mutable current : int;
  mutable swap_failed_pending : bool;
  mutable is_degraded : bool;
  (* lifecycle *)
  lock : Mutex.t;
  stopped_cv : Condition.t;
  mutable state : state;
  mutable listen_fd : Unix.file_descr option;
  mutable bound_port : int;
  mutable accept_thread : Thread.t option;
  mutable reaper_thread : Thread.t option;
  mutable workers : Thread.t list;
  mutable conn_threads : Thread.t list;
  conns : (int, conn) Hashtbl.t;
  mutable next_conn : int;
  t_start : int;
  (* stats *)
  s_connections : int Atomic.t;
  s_active : int Atomic.t;
  s_requests : int Atomic.t;
  s_answered : int Atomic.t;
  s_shed_capacity : int Atomic.t;
  s_shed_quota : int Atomic.t;
  s_shed_deadline : int Atomic.t;
  s_bad : int Atomic.t;
  s_engine_errors : int Atomic.t;
  s_evidence : int Atomic.t;
  next_rid : int Atomic.t;
}

let validate_config c =
  let bad fmt = Printf.ksprintf invalid_arg ("Server: bad config: " ^^ fmt) in
  if c.queue_capacity < 1 then
    bad "queue_capacity must be >= 1 (got %d)" c.queue_capacity;
  if c.workers < 1 then bad "workers must be >= 1 (got %d)" c.workers;
  if c.max_connections < 1 then
    bad "max_connections must be >= 1 (got %d)" c.max_connections;
  if c.ingest_capacity < 1 then
    bad "ingest_capacity must be >= 1 (got %d)" c.ingest_capacity;
  if c.max_line_bytes < 64 then
    bad "max_line_bytes must be >= 64 (got %d)" c.max_line_bytes;
  if c.backlog < 1 then bad "backlog must be >= 1 (got %d)" c.backlog;
  if c.flight_capacity < 0 then
    bad "flight_capacity must be >= 0 (got %d)" c.flight_capacity;
  let positive name v =
    match v with
    | Some ms when ms < 1 -> bad "%s must be >= 1 (got %d)" name ms
    | _ -> ()
  in
  positive "slow_query_ms" c.slow_query_ms;
  positive "default_deadline_ms" c.default_deadline_ms;
  positive "max_deadline_ms" c.max_deadline_ms;
  positive "read_timeout_ms" c.read_timeout_ms;
  match (c.default_deadline_ms, c.max_deadline_ms) with
  | Some d, Some mx when d > mx ->
    bad "default_deadline_ms %d exceeds max_deadline_ms %d" d mx
  | _ -> ()

let create ?(config = default_config) ?gate ?(initial_version = 0) ~engine () =
  validate_config config;
  if initial_version < 0 then
    invalid_arg "Server: negative initial_version";
  let versions = Hashtbl.create 16 in
  Hashtbl.replace versions (Engine.digest engine) initial_version;
  {
    config;
    engine;
    gate;
    queue = Bqueue.create config.queue_capacity;
    ingest = Bqueue.create config.ingest_capacity;
    quota = Option.map Quota.create config.quota;
    vlock = Mutex.create ();
    versions;
    current = initial_version;
    swap_failed_pending = false;
    is_degraded = false;
    lock = Mutex.create ();
    stopped_cv = Condition.create ();
    state = Idle;
    listen_fd = None;
    bound_port = 0;
    accept_thread = None;
    reaper_thread = None;
    workers = [];
    conn_threads = [];
    conns = Hashtbl.create 64;
    next_conn = 0;
    t_start = Clock.now_ns ();
    s_connections = Atomic.make 0;
    s_active = Atomic.make 0;
    s_requests = Atomic.make 0;
    s_answered = Atomic.make 0;
    s_shed_capacity = Atomic.make 0;
    s_shed_quota = Atomic.make 0;
    s_shed_deadline = Atomic.make 0;
    s_bad = Atomic.make 0;
    s_engine_errors = Atomic.make 0;
    s_evidence = Atomic.make 0;
    next_rid = Atomic.make 1;
  }

(* ----- version registry / learner integration ----- *)

let version_of t digest =
  Mutex.protect t.vlock (fun () -> Hashtbl.find_opt t.versions digest)

let current_version t = Mutex.protect t.vlock (fun () -> t.current)
let degraded t = Mutex.protect t.vlock (fun () -> t.is_degraded)

let on_publish t (v : Snapshot.version) =
  Mutex.protect t.vlock (fun () ->
      if t.swap_failed_pending then
        (* the swap preceding this publish failed: the engine still
           serves the previous version, so the mapping must not move *)
        t.swap_failed_pending <- false
      else begin
        (* the runner swaps before publishing, so the engine digest
           read here is exactly the digest of version [v] *)
        Hashtbl.replace t.versions (Engine.digest t.engine) v.Snapshot.id;
        t.current <- v.Snapshot.id;
        t.is_degraded <- false;
        Metrics.set m_degraded 0.0
      end)

let note_degraded t ~stage e =
  if stage = "swap" then
    Mutex.protect t.vlock (fun () ->
        t.swap_failed_pending <- true;
        t.is_degraded <- true;
        Metrics.set m_degraded 1.0);
  Log.warn ~component:"serve" "degraded (%s): %s" stage (Printexc.to_string e)

(* ----- ingest bridge ----- *)

(* A full ingest queue is usually transient — the learner runner
   drains it in batches — so the enqueue rides it out with a few
   quick re-attempts inside a ~5 ms budget. A persistently full (or
   closed) queue still answers [over_capacity] instead of blocking
   the connection thread without bound. *)
let ingest_policy =
  {
    Retry.max_attempts = 4;
    base_delay = 0.0005;
    multiplier = 2.0;
    jitter = 0.0;
    max_delay = 0.002;
    budget = Some 0.005;
  }

exception Ingest_full

let ingest_line t line =
  let push () = if not (Bqueue.try_push t.ingest line) then raise Ingest_full in
  let ok =
    match
      Retry.with_policy ingest_policy
        ~retryable:(function
          | Ingest_full -> not (Bqueue.is_closed t.ingest)
          | _ -> false)
        push
    with
    | () -> true
    | exception Ingest_full -> false
  in
  if ok then begin
    Atomic.incr t.s_evidence;
    Metrics.inc m_evidence
  end;
  ok

let ingest_source t () = Bqueue.pop t.ingest
let ingest_pending t = Bqueue.length t.ingest

(* ----- the admission pipeline ----- *)

let ns_to_ms_ceil ns = (ns + 999_999) / 1_000_000

let mint_rid t =
  Printf.sprintf "r%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add t.next_rid 1)

(* The unmeetable predictor needs this many executed requests folded
   into the load hint before it trusts the floor estimate *)
let unmeetable_min_samples = 32

(* Returns the reply plus the work entry when the request actually ran
   (carrying its queue-wait and engine phase timings); [None] for
   refusals at admission, which never waited anywhere. [conn], when
   given, has its inflight token set for the duration of the wait so
   the idle reaper leaves the connection alone. *)
let process_query ?conn t ~tenant ~rid ~deadline_budget_ns q =
  Atomic.incr t.s_requests;
  Metrics.inc m_requests;
  let t0 = Clock.now_ns () in
  let has_deadline = deadline_budget_ns > 0 in
  (* every deadline-carrying request settles into exactly one outcome *)
  let count_outcome reply =
    if has_deadline then
      (match reply with
      | Answer { result; _ } when result.Engine.partial ->
        Metrics.inc m_deadline_partial
      | Answer _ -> Metrics.inc m_deadline_ok
      | Refused { code = Wire.Deadline_exceeded; _ } ->
        Metrics.inc m_deadline_exceeded
      | Refused { code = Wire.Deadline_unmeetable; _ } ->
        Metrics.inc m_deadline_unmeetable
      | Refused _ -> ());
    reply
  in
  let quota_verdict =
    match t.quota with
    | None -> Quota.Granted
    | Some quota -> Quota.admit quota ~now_ns:t0 ~tenant
  in
  match quota_verdict with
  | Quota.Denied { retry_after_ns } ->
    Atomic.incr t.s_shed_quota;
    Metrics.inc m_shed_quota;
    ( count_outcome
        (Refused
           {
             code = Wire.Quota_exceeded;
             msg = Printf.sprintf "tenant %S over quota" tenant;
             retry_after_ms = Some (max 1 (ns_to_ms_ceil retry_after_ns));
           }),
      None )
  | Quota.Granted ->
    (* deadline-aware admission: when even the floor recent requests
       paid (queue wait + serialization EWMA) exceeds the budget,
       refusing now is cheaper for everyone than queueing work the
       worker will throw away expired *)
    let hint = Flight.load_hint () in
    let floor_ns = hint.Flight.h_queue_wait_ns + hint.Flight.h_serialize_ns in
    if
      has_deadline
      && hint.Flight.h_count >= unmeetable_min_samples
      && floor_ns > deadline_budget_ns
    then begin
      Atomic.incr t.s_shed_deadline;
      Metrics.inc m_shed_deadline;
      ( count_outcome
          (Refused
             {
               code = Wire.Deadline_unmeetable;
               msg =
                 Printf.sprintf
                   "deadline of %d ms is below the current overhead floor \
                    of ~%d ms (recent queue wait + serialization)"
                   (ns_to_ms_ceil deadline_budget_ns) (ns_to_ms_ceil floor_ns);
               retry_after_ms = None;
             }),
        None )
    end
    else begin
      let cancel =
        if has_deadline then
          Cancel.create ~deadline_ns:(t0 + deadline_budget_ns) ()
        else Cancel.none
      in
      let w =
        {
          wq = q;
          enqueue_ns = t0;
          rid;
          tenant;
          ph = Engine.phases ();
          queue_wait_ns = 0;
          deadline_budget_ns;
          cancel;
          iv = ivar ();
        }
      in
      if Trace.enabled () then
        Trace.flow_start "request" ~id:(Trace.flow_id rid)
          ~args:[ ("rid", Trace.Str rid) ];
      if Bqueue.try_push t.queue w then begin
        (match conn with Some c -> c.c_inflight <- true | None -> ());
        let reply = ivar_wait w.iv in
        (match conn with Some c -> c.c_inflight <- false | None -> ());
        Metrics.observe m_request_seconds (Clock.now_ns () - t0);
        (count_outcome reply, Some w)
      end
      else if Bqueue.is_closed t.queue then
        ( Refused
            {
              code = Wire.Shutting_down;
              msg = "server is shutting down";
              retry_after_ms = None;
            },
          None )
      else begin
        Atomic.incr t.s_shed_capacity;
        Metrics.inc m_shed_capacity;
        ( Refused
            {
              code = Wire.Over_capacity;
              msg =
                Printf.sprintf "request queue full (%d waiting)"
                  (Bqueue.length t.queue);
              retry_after_ms = None;
            },
          None )
      end
    end

let worker_loop t =
  let chains = (Engine.config t.engine).Engine.chains in
  let rec go () =
    match Bqueue.pop t.queue with
    | None -> ()
    | Some w ->
      (* snapshot before the gate: an entry popped while the queue was
         open is "already running" and must finish normally even if
         [stop] lands during its execution *)
      let draining = Bqueue.is_closed t.queue in
      (match t.gate with Some g -> g () | None -> ());
      let t_deq = Clock.now_ns () in
      w.queue_wait_ns <- t_deq - w.enqueue_ns;
      Metrics.observe m_queue_wait_seconds w.queue_wait_ns;
      Metrics.set m_queue_depth (float_of_int (Bqueue.length t.queue));
      let reply =
        if draining then
          (* popped during the shutdown drain: [stop] closed the queue
             before this entry could run, so answer typed without
             sampling — deadline-free entries share [Cancel.none] and
             cannot be fired individually *)
          Refused
            {
              code = Wire.Shutting_down;
              msg = "request cancelled: shutdown";
              retry_after_ms = None;
            }
        else
        match Cancel.status w.cancel with
        | Cancel.Expired ->
          (* the deadline passed while the entry queued: shed it here,
             before burn-in, so expired requests cost no sampler CPU *)
          Refused
            {
              code = Wire.Deadline_exceeded;
              msg =
                Printf.sprintf "deadline of %d ms expired after %d ms in queue"
                  (ns_to_ms_ceil w.deadline_budget_ns)
                  (ns_to_ms_ceil w.queue_wait_ns);
              retry_after_ms = None;
            }
        | Cancel.Fired reason ->
          let code =
            if reason = "shutdown" then Wire.Shutting_down
            else Wire.Deadline_exceeded
          in
          Refused
            { code; msg = "request cancelled: " ^ reason; retry_after_ms = None }
        | Cancel.Live -> (
          match
            Engine.query ~rid:w.rid ~phases:w.ph ~cancel:w.cancel
              ~on_deadline:`Partial t.engine w.wq
          with
          | r ->
            Atomic.incr t.s_answered;
            Metrics.inc m_answers;
            (* exact-planned answers have no chains to lose *)
            let degraded =
              match r.Engine.plan with
              | Engine.Plan_exact _ -> false
              | Engine.Plan_mh _ -> r.Engine.chains_used < chains
            in
            if degraded then Metrics.inc m_degraded_answers;
            Answer
              { result = r; version = version_of t r.Engine.model_digest; degraded }
          | exception Engine.Deadline_exceeded { reason; rounds; _ } ->
            let code =
              if reason = "shutdown" then Wire.Shutting_down
              else Wire.Deadline_exceeded
            in
            Refused
              {
                code;
                msg =
                  Printf.sprintf "query %s: %s after %d round%s" (Query.key w.wq)
                    reason rounds
                    (if rounds = 1 then "" else "s");
                retry_after_ms = None;
              }
          | exception Engine.Chains_failed _ ->
            Atomic.incr t.s_engine_errors;
            Metrics.inc m_engine_errors;
            Refused
              {
                code = Wire.Chains_failed;
                msg =
                  Printf.sprintf "query %s: too many chains failed"
                    (Query.key w.wq);
                retry_after_ms = None;
              }
          | exception (Invalid_argument msg | Failure msg) ->
            Atomic.incr t.s_bad;
            Metrics.inc m_bad;
            Refused
              { code = Wire.Bad_query; msg; retry_after_ms = None })
      in
      if Metrics.recording () then begin
        let h = phase_handles w.tenant in
        Metrics.observe h.ph_queue_wait w.queue_wait_ns;
        Metrics.observe h.ph_plan w.ph.Engine.plan_ns;
        Metrics.observe h.ph_sample w.ph.Engine.sample_ns
      end;
      ivar_fill w.iv reply;
      go ()
  in
  go ()

let reply_line ?id ~rid = function
  | Answer { result; version; degraded } ->
    Wire.result_line ?id ~request_id:rid ?version ~degraded result
  | Refused { code; msg; retry_after_ms } ->
    Wire.error_line ?id ~request_id:rid ?retry_after_ms code msg

(* One flight record per answered-or-refused line. The record is built
   on the connection thread after serialisation (the last phase it
   measures), submitted to the ring, and reused verbatim for the
   slow-query log line, so the log and /debug/requests can never
   disagree about a request. *)
let finish_request t ~rid ~tenant ~kind ~reply ~work ~deadline_budget_ns
    ~serialize_ns ~total_ns =
  if Metrics.recording () then
    Metrics.observe (phase_handles tenant).ph_serialize serialize_ns;
  if Trace.enabled () then
    Trace.flow_finish "request" ~id:(Trace.flow_id rid);
  let slow =
    match t.config.slow_query_ms with
    | Some ms -> total_ns >= ms * 1_000_000
    | None -> false
  in
  if Flight.enabled () || slow then begin
    let queue_wait_ns, plan_ns, sample_ns, rounds =
      match work with
      | Some w ->
        (w.queue_wait_ns, w.ph.Engine.plan_ns, w.ph.Engine.sample_ns,
         w.ph.Engine.rounds)
      | None -> (0, 0, 0, 0)
    in
    (* the deadline cut this request short: a partial answer or a
       typed deadline_exceeded refusal *)
    let dl_cancelled =
      match reply with
      | Answer { result; _ } -> result.Engine.partial
      | Refused { code = Wire.Deadline_exceeded; _ } -> true
      | Refused _ -> false
    in
    let r =
      match reply with
      | Answer { result = res; version; degraded = _ } ->
        let path =
          if res.Engine.cached then Flight.Cache
          else
            match res.Engine.plan with
            | Engine.Plan_exact _ -> Flight.Exact
            | Engine.Plan_mh _ -> Flight.Mh
        in
        let fallback =
          match res.Engine.plan with
          | Engine.Plan_mh { fallback = Some f } -> f
          | _ -> ""
        in
        {
          Flight.seq = -1;
          id = rid;
          tenant;
          kind;
          path;
          fallback;
          error = "";
          version = Option.value version ~default:(-1);
          digest = res.Engine.model_digest;
          queue_wait_ns;
          plan_ns;
          sample_ns;
          serialize_ns;
          rounds;
          samples = res.Engine.total_samples;
          rhat = res.Engine.rhat;
          mcse = res.Engine.mcse;
          deadline_ns = deadline_budget_ns;
          cancelled = dl_cancelled;
          ts_ns = 0;
        }
      | Refused { code; _ } ->
        {
          Flight.seq = -1;
          id = rid;
          tenant;
          kind;
          path = Flight.Err;
          fallback = "";
          error = Wire.code_string code;
          version = -1;
          digest = "";
          queue_wait_ns;
          plan_ns;
          sample_ns;
          serialize_ns;
          rounds;
          samples = 0;
          rhat = Float.nan;
          mcse = Float.nan;
          deadline_ns = deadline_budget_ns;
          cancelled = dl_cancelled;
          ts_ns = 0;
        }
    in
    Flight.submit r;
    if slow then begin
      Metrics.inc m_slow;
      Log.warn ~component:"serve" ~rid "slow query (%d ms >= %d ms): %s"
        (ns_to_ms_ceil total_ns)
        (Option.value t.config.slow_query_ms ~default:0)
        (Flight.to_json r)
    end
  end

(* Decode one request line: the query object itself, plus the serving
   extensions ("id" echoed back, "tenant" for quota accounting,
   "request_id" client-supplied or minted here — [?rid] carries the
   HTTP dialect's X-Request-Id assignment, [?deadline_default] its
   X-Deadline-Ms header, which a per-line "deadline_ms" member
   overrides). *)
let handle_query_line t ~tenant_default ?rid ?deadline_default ?conn ~lineno
    line =
  if String.trim line = "" then None
  else begin
    let t_admit = Clock.now_ns () in
    let parsed = Jsonl.parse line in
    let member_rid json =
      match Jsonl.member "request_id" json with
      | Some (Jsonl.Str s) when s <> "" -> Some s
      | _ -> None
    in
    let rid =
      match (Result.to_option parsed, rid) with
      | Some json, _ when member_rid json <> None -> Option.get (member_rid json)
      | _, Some r -> r
      | _, None -> mint_rid t
    in
    let finish ~tenant ~kind ~reply ~work ?(deadline_budget_ns = 0) build =
      let t_ser = Clock.now_ns () in
      let resp = build () in
      let t_done = Clock.now_ns () in
      finish_request t ~rid ~tenant ~kind ~reply ~work ~deadline_budget_ns
        ~serialize_ns:(t_done - t_ser) ~total_ns:(t_done - t_admit);
      resp
    in
    let bad msg =
      Atomic.incr t.s_bad;
      Metrics.inc m_bad;
      msg
    in
    Some
      (match parsed with
      | Error msg ->
        let msg = bad (Printf.sprintf "line %d: %s" lineno msg) in
        let reply =
          Refused { code = Wire.Bad_request; msg; retry_after_ms = None }
        in
        finish ~tenant:tenant_default ~kind:"" ~reply ~work:None (fun () ->
            Wire.error_line ~request_id:rid Wire.Bad_request msg)
      | Ok json -> (
        let id =
          match Jsonl.member "id" json with
          | Some (Jsonl.Str s) -> Some s
          | Some (Jsonl.Num f) when Float.is_integer f ->
            Some (string_of_int (int_of_float f))
          | _ -> None
        in
        let tenant =
          match Jsonl.member "tenant" json with
          | Some (Jsonl.Str s) -> s
          | _ -> tenant_default
        in
        let deadline_ms =
          match Jsonl.member "deadline_ms" json with
          | Some (Jsonl.Num f)
            when Float.is_integer f && f >= 1.0 && f <= 4e15 ->
            Ok (Some (int_of_float f))
          | Some _ ->
            Error "deadline_ms must be a positive integer of milliseconds"
          | None -> Ok None
        in
        match deadline_ms with
        | Error dmsg ->
          let msg = bad (Printf.sprintf "line %d: %s" lineno dmsg) in
          let reply =
            Refused { code = Wire.Bad_request; msg; retry_after_ms = None }
          in
          finish ~tenant ~kind:"" ~reply ~work:None (fun () ->
              Wire.error_line ?id ~request_id:rid Wire.Bad_request msg)
        | Ok dl_member -> (
          match Query.of_json json with
          | Error msg ->
            let msg = bad (Printf.sprintf "line %d: %s" lineno msg) in
            let reply =
              Refused { code = Wire.Bad_request; msg; retry_after_ms = None }
            in
            finish ~tenant ~kind:"" ~reply ~work:None (fun () ->
                Wire.error_line ?id ~request_id:rid Wire.Bad_request msg)
          | Ok q ->
            (* line member > connection header > server default; the
               server-wide cap clamps whatever won *)
            let budget_ms =
              match (dl_member, deadline_default) with
              | Some v, _ -> Some v
              | None, Some v -> Some v
              | None, None -> t.config.default_deadline_ms
            in
            let budget_ms =
              match (budget_ms, t.config.max_deadline_ms) with
              | Some v, Some mx -> Some (min v mx)
              | v, _ -> v
            in
            let deadline_budget_ns =
              match budget_ms with Some ms -> ms * 1_000_000 | None -> 0
            in
            let reply, work =
              process_query ?conn t ~tenant ~rid ~deadline_budget_ns q
            in
            finish ~tenant ~kind:(Query.key q) ~reply ~work
              ~deadline_budget_ns (fun () -> reply_line ?id ~rid reply))))
  end

(* ----- health ----- *)

type stats = {
  connections : int;
  active : int;
  requests : int;
  answered : int;
  shed_capacity : int;
  shed_quota : int;
  shed_deadline : int;
  bad_requests : int;
  engine_errors : int;
  evidence_lines : int;
}

let stats t =
  {
    connections = Atomic.get t.s_connections;
    active = Atomic.get t.s_active;
    requests = Atomic.get t.s_requests;
    answered = Atomic.get t.s_answered;
    shed_capacity = Atomic.get t.s_shed_capacity;
    shed_quota = Atomic.get t.s_shed_quota;
    shed_deadline = Atomic.get t.s_shed_deadline;
    bad_requests = Atomic.get t.s_bad;
    engine_errors = Atomic.get t.s_engine_errors;
    evidence_lines = Atomic.get t.s_evidence;
  }

and queue_depth t = Bqueue.length t.queue

let health_json t =
  let s = stats t in
  let degraded = degraded t in
  Printf.sprintf
    "{\"status\":%s,\"version\":%d,\"digest\":%s,\"uptime_s\":%.3f,\
     \"queue_depth\":%d,\"queue_capacity\":%d,\"active_connections\":%d,\
     \"requests\":%d,\"answered\":%d,\"shed_capacity\":%d,\"shed_quota\":%d,\
     \"shed_deadline\":%d,\"bad_requests\":%d,\"engine_errors\":%d,\
     \"evidence_pending\":%d,\"workers\":%d}"
    (Wire.escape (if degraded then "degraded" else "ok"))
    (current_version t)
    (Wire.escape (Engine.digest t.engine))
    (Clock.seconds_of_ns (Clock.now_ns () - t.t_start))
    (queue_depth t) t.config.queue_capacity s.active s.requests s.answered
    s.shed_capacity s.shed_quota s.shed_deadline s.bad_requests
    s.engine_errors (ingest_pending t) t.config.workers

(* ----- connection handling ----- *)

let handle_jsonl t conn fd r first_line =
  let buf = Buffer.create 256 in
  let respond line lineno =
    match
      handle_query_line t ~tenant_default:"anonymous" ~conn ~lineno line
    with
    | None -> ()
    | Some resp ->
      Buffer.clear buf;
      Buffer.add_string buf resp;
      Buffer.add_char buf '\n';
      Sockio.write_all fd (Buffer.contents buf)
  in
  respond first_line 1;
  let rec go lineno =
    match Sockio.read_line r with
    | Sockio.Eof -> ()
    | Sockio.Timeout ->
      Sockio.write_all fd
        (Wire.error_line Wire.Bad_request
           (Printf.sprintf "read timed out after %d ms with no complete line"
              (Option.value t.config.read_timeout_ms ~default:0))
        ^ "\n")
    | Sockio.Too_long ->
      Sockio.write_all fd
        (Wire.error_line Wire.Bad_request
           (Printf.sprintf "line %d exceeds %d bytes" lineno
              t.config.max_line_bytes)
        ^ "\n")
    | Sockio.Line line ->
      conn.c_last_progress_ns <- Clock.now_ns ();
      respond line lineno;
      go (lineno + 1)
  in
  go 2

let handle_http t conn fd r first_line =
  let send ?headers ?content_type ~status body =
    Sockio.write_all fd (Http.response ?headers ?content_type ~status body)
  in
  match
    Http.read_request ~max_body_bytes:t.config.max_body_bytes r
      ~first_line
  with
  | Http.Malformed msg ->
    send ~status:400 (Wire.error_line Wire.Bad_request msg ^ "\n")
  | Http.Overflow msg ->
    send ~status:413 (Wire.error_line Wire.Bad_request msg ^ "\n")
  | Http.Request req -> (
    let path, query = Http.split_target req.Http.path in
    match (req.Http.meth, path) with
    | "GET", "/healthz" ->
      let body = health_json t ^ "\n" in
      send ~status:(if degraded t then 503 else 200) body
    | "GET", "/metrics" ->
      send ~status:200
        ~content_type:"text/plain; version=0.0.4"
        (Prometheus.to_string Metrics.default)
    | "GET", "/debug/requests" ->
      let n =
        match Http.query_param query "n" with
        | Some s -> (
          match int_of_string_opt s with
          | Some n when n > 0 -> n
          | _ -> 64)
        | None -> 64
      in
      let body =
        match Flight.recent n with
        | [] -> "[]\n"
        | recs ->
          "[" ^ String.concat ",\n " (List.map Flight.to_json recs) ^ "]\n"
      in
      send ~status:200 body
    | "POST", "/query" -> (
      let tenant_default =
        match Http.header req "x-tenant" with
        | Some tn when tn <> "" -> tn
        | _ -> "anonymous"
      in
      (* X-Deadline-Ms sets the whole body's deadline; a per-line
         "deadline_ms" member overrides it line by line *)
      let deadline_hdr =
        match Http.header req "x-deadline-ms" with
        | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some v when v >= 1 -> Ok (Some v)
          | _ -> Error s)
        | None -> Ok None
      in
      match deadline_hdr with
      | Error s ->
        Atomic.incr t.s_bad;
        Metrics.inc m_bad;
        send ~status:400
          (Wire.error_line Wire.Bad_request
             (Printf.sprintf
                "X-Deadline-Ms must be a positive integer, got %S" s)
          ^ "\n")
      | Ok deadline_default ->
        let lines = String.split_on_char '\n' req.Http.body in
        (* a client-supplied X-Request-Id names a single-line body
           verbatim; batched lines get a -<lineno> suffix so every
           answer (and flight record) still has its own id *)
        let client_rid =
          match Http.header req "x-request-id" with
          | Some r when r <> "" -> Some r
          | _ -> None
        in
        let single = List.length lines = 1 in
        let rid_for i =
          Option.map
            (fun base ->
              if single then base else Printf.sprintf "%s-%d" base (i + 1))
            client_rid
        in
        let replies =
          List.filter_map
            (fun (i, line) ->
              handle_query_line t ~tenant_default ?rid:(rid_for i)
                ?deadline_default ~conn ~lineno:(i + 1) line)
            (List.mapi (fun i line -> (i, line)) lines)
        in
        let headers =
          match client_rid with
          | Some r -> [ ("X-Request-Id", r) ]
          | None -> []
        in
        send ~headers ~status:200 (String.concat "\n" replies ^ "\n"))
    | "POST", "/evidence" ->
      let lines =
        List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' req.Http.body)
      in
      let accepted = List.fold_left
          (fun n line -> if ingest_line t line then n + 1 else n)
          0 lines
      in
      let total = List.length lines in
      if accepted = total then
        send ~status:202 (Printf.sprintf "{\"accepted\":%d}\n" accepted)
      else
        send ~status:429
          (Printf.sprintf
             "{\"accepted\":%d,\"error\":\"over_capacity\",\"message\":\
              \"evidence queue full after %d of %d lines\"}\n"
             accepted accepted total)
    | meth, path ->
      send ~status:404
        (Wire.error_line Wire.Bad_request
           (Printf.sprintf "no route %s %s" meth path)
        ^ "\n"))

let handle_conn t conn_id conn =
  let fd = conn.c_fd in
  Fun.protect
    ~finally:(fun () ->
      (* out of the table first, under the lock, so the reaper never
         sees (and pokes) a connection whose fd is being closed *)
      Mutex.protect t.lock (fun () -> Hashtbl.remove t.conns conn_id);
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Atomic.decr t.s_active;
      Metrics.set m_active (float_of_int (Atomic.get t.s_active)))
    (fun () ->
      try
        let r = Sockio.reader ~max_line_bytes:t.config.max_line_bytes fd in
        match Sockio.read_line r with
        | Sockio.Eof -> ()
        | Sockio.Timeout ->
          Sockio.write_all fd
            (Wire.error_line Wire.Bad_request
               "read timed out before a complete first line"
            ^ "\n")
        | Sockio.Too_long ->
          Sockio.write_all fd
            (Wire.error_line Wire.Bad_request "first line too long" ^ "\n")
        | Sockio.Line first ->
          conn.c_last_progress_ns <- Clock.now_ns ();
          if Http.is_http_verb first then handle_http t conn fd r first
          else handle_jsonl t conn fd r first
      with
      | Unix.Unix_error _ -> (* peer went away; nothing to salvage *) ()
      | Sys_error _ -> ())

let accept_loop t listen_fd =
  let stopping () = Mutex.protect t.lock (fun () -> t.state <> Running) in
  let rec go () =
    match Unix.accept listen_fd with
    | fd, _addr ->
      Atomic.incr t.s_connections;
      Metrics.inc m_connections;
      if Atomic.get t.s_active >= t.config.max_connections then begin
        Metrics.inc m_shed_connections;
        (try
           Sockio.write_all fd
             (Wire.error_line Wire.Over_capacity "connection limit reached"
             ^ "\n")
         with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
      end
      else begin
        Atomic.incr t.s_active;
        Metrics.set m_active (float_of_int (Atomic.get t.s_active));
        (* the slow-loris guard: a peer that sends nothing inside one
           receive window surfaces as [Sockio.Timeout] instead of
           holding the connection thread forever *)
        (match t.config.read_timeout_ms with
        | Some ms ->
          let s = float_of_int ms /. 1000.0 in
          (try
             Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
             Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
           with Unix.Unix_error _ | Invalid_argument _ -> ())
        | None -> ());
        let conn =
          {
            c_fd = fd;
            c_last_progress_ns = Clock.now_ns ();
            c_inflight = false;
            c_reaped = false;
          }
        in
        let conn_id =
          Mutex.protect t.lock (fun () ->
              let id = t.next_conn in
              t.next_conn <- id + 1;
              Hashtbl.replace t.conns id conn;
              id)
        in
        let th = Thread.create (fun () -> handle_conn t conn_id conn) () in
        Mutex.protect t.lock (fun () ->
            t.conn_threads <- th :: t.conn_threads)
      end;
      go ()
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
      go ()
    | exception Unix.Unix_error _ when stopping () -> ()
    | exception Unix.Unix_error (e, _, _) ->
      Log.err ~component:"serve" "accept: %s" (Unix.error_message e)
  in
  go ()

(* The receive timeout catches a peer that sends nothing inside one
   read window; the reaper catches the byte-dribbler that keeps each
   read alive without ever completing a request line. A connection is
   reaped when it has no request in flight and has not completed a
   line for ~4 receive windows — a connection waiting on a long
   engine answer has a live inflight token and is never touched. *)
let reaper_loop t ~timeout_ns =
  let idle_ns = 4 * timeout_ns in
  let tick = Float.min 0.25 (float_of_int timeout_ns *. 1e-9 /. 4.0) in
  let running () = Mutex.protect t.lock (fun () -> t.state = Running) in
  while running () do
    Thread.delay tick;
    let now = Clock.now_ns () in
    let reaped =
      Mutex.protect t.lock (fun () ->
          Hashtbl.fold
            (fun _ c acc ->
              if
                (not c.c_reaped)
                && (not c.c_inflight)
                && now - c.c_last_progress_ns > idle_ns
              then begin
                c.c_reaped <- true;
                (* in the table + under the lock = fd still open *)
                (try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL
                 with Unix.Unix_error _ -> ());
                acc + 1
              end
              else acc)
            t.conns 0)
    in
    for _ = 1 to reaped do
      Metrics.inc m_reaped
    done
  done

(* ----- lifecycle ----- *)

let port t = Mutex.protect t.lock (fun () -> t.bound_port)

let start t =
  let listen_fd =
    Mutex.protect t.lock (fun () ->
        if t.state <> Idle then invalid_arg "Server.start: already started";
        (* a peer closing mid-write must be an EPIPE error, not a
           process-killing signal *)
        (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
         with Invalid_argument _ -> ());
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try
           Unix.setsockopt fd Unix.SO_REUSEADDR true;
           let addr =
             Unix.ADDR_INET (Unix.inet_addr_of_string t.config.host, t.config.port)
           in
           Unix.bind fd addr;
           Unix.listen fd t.config.backlog
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        (match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> t.bound_port <- p
        | Unix.ADDR_UNIX _ -> ());
        t.listen_fd <- Some fd;
        t.state <- Running;
        fd)
  in
  if t.config.flight_capacity > 0 then
    Flight.configure ~capacity:t.config.flight_capacity ();
  let workers =
    List.init t.config.workers (fun _ -> Thread.create worker_loop t)
  in
  let acceptor = Thread.create (fun () -> accept_loop t listen_fd) () in
  let reaper =
    Option.map
      (fun ms ->
        let timeout_ns = ms * 1_000_000 in
        Thread.create (fun () -> reaper_loop t ~timeout_ns) ())
      t.config.read_timeout_ms
  in
  Mutex.protect t.lock (fun () ->
      t.workers <- workers;
      t.accept_thread <- Some acceptor;
      t.reaper_thread <- reaper);
  Log.info ~component:"serve" "listening on %s:%d (%d workers, queue %d)"
    t.config.host (port t) t.config.workers t.config.queue_capacity

let stop t =
  let to_stop =
    Mutex.protect t.lock (fun () ->
        match t.state with
        | Running ->
          t.state <- Stopped;
          true
        | Idle ->
          t.state <- Stopped;
          Condition.broadcast t.stopped_cv;
          false
        | Stopped -> false)
  in
  if to_stop then begin
    (* 1. stop accepting — shutdown() before close(): closing a
       listening fd does not wake a thread parked in accept(2), but
       shutting it down makes accept fail immediately *)
    (match t.listen_fd with
    | Some fd ->
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (* 2. refuse new work: closing the queue bounds the drain —
       workers answer [shutting_down] for anything they pop after the
       close, without sampling. The request a worker is already
       running finishes normally. *)
    Bqueue.close t.queue;
    List.iter Thread.join t.workers;
    (match t.reaper_thread with Some th -> Thread.join th | None -> ());
    (* 3. unblock connection threads parked in read_line *)
    let fds =
      Mutex.protect t.lock (fun () ->
          Hashtbl.fold (fun _ c acc -> c.c_fd :: acc) t.conns [])
    in
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      fds;
    let conns = Mutex.protect t.lock (fun () -> t.conn_threads) in
    List.iter Thread.join conns;
    (* 4. end the evidence stream so a Runner on [ingest_source] exits *)
    Bqueue.close t.ingest;
    Mutex.protect t.lock (fun () -> Condition.broadcast t.stopped_cv)
  end

let wait t =
  Mutex.protect t.lock (fun () ->
      while t.state <> Stopped do
        Condition.wait t.stopped_cv t.lock
      done)
