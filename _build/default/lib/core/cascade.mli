(** Forward simulation of the Independent Cascade Model.

    A cascade starts with the source nodes active at step 0; whenever a
    node is active, each of its out-edges fires independently with its
    activation probability, activating the destination node (paper
    Section II). Each edge's coin is tossed at most once per object. *)

val run :
  Iflow_stats.Rng.t -> Icm.t -> sources:int list -> Evidence.attributed_object
(** Simulate one object. The returned record contains exactly the
    attributed evidence the paper trains betaICMs from: sources, active
    nodes, and active (traversed) edges — including fired edges into
    nodes that were already active, which still count as [i]-active. *)

val run_trace :
  Iflow_stats.Rng.t -> Icm.t -> sources:int list -> Evidence.trace
(** Simulate and keep only activation times (BFS steps) — ground-truth
    generation for the unattributed-learning experiments. *)

val run_many :
  Iflow_stats.Rng.t -> Icm.t -> sources:int list -> count:int ->
  Evidence.attributed
(** [count] independent objects from the same sources. *)

val run_contextual :
  Iflow_stats.Rng.t -> source_icm:Icm.t -> relay_icm:Icm.t ->
  sources:int list -> Evidence.attributed_object
(** Context-dependent dynamics (the paper's Discussion extension): an
    edge leaving one of the object's {e source} nodes fires with its
    [source_icm] probability, every other edge with its [relay_icm]
    probability — users forward fresh originals differently from
    relayed copies. The two ICMs must share a graph. *)

val reached_count : Evidence.attributed_object -> int
(** Number of active non-source nodes — the "impact" of the object
    (paper Fig 4 counts retweeting users this way). *)
