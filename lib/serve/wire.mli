(** The serving wire format: one JSON object per line, in both
    directions, shared by the raw JSONL dialect and the HTTP
    [POST /query] body.

    Requests are {!Iflow_engine.Query} objects, optionally extended
    with ["id"] (any string, echoed back verbatim so pipelined clients
    can match answers to questions) and ["tenant"] (quota accounting;
    the HTTP dialect defaults it from the [X-Tenant] header).

    Every response line is either an answer or a {e typed} error — an
    ["error"] code machine-matchable by clients, never prose alone —
    so shed load ([over_capacity], [quota_exceeded]) is distinguishable
    from bad input ([bad_request], [bad_query]) and from engine faults
    ([chains_failed]). Estimates are printed with round-trip float
    precision: a client parsing the line recovers bit-identical values
    to what {!Iflow_engine.Engine.query} returned. Non-finite
    diagnostics (rhat over zero-variance samples) serialize as [null]
    and parse back as [nan] — JSON has no nan/inf literals. *)

type error_code =
  | Bad_request      (** undecodable line (message carries line/offset) *)
  | Bad_query        (** decoded, but unanswerable (node out of range,
                         unsatisfiable conditions) *)
  | Over_capacity    (** admission queue full — retry later *)
  | Quota_exceeded   (** tenant token bucket dry — retry after hint *)
  | Chains_failed    (** engine lost too many chains to vouch for an
                         answer; the server stays up *)
  | Shutting_down
  | Deadline_exceeded
      (** the request's deadline passed before an answer converged
          (and no partial answer was available) *)
  | Deadline_unmeetable
      (** rejected at admission: recent queue-wait/serialize stats say
          the deadline cannot be met — retry with a larger one *)

val code_string : error_code -> string
(** ["bad_request"], ["over_capacity"], ... — the wire spelling. *)

val http_status : error_code -> int
(** 400 / 422 / 429 / 429 / 500 / 503 / 504 / 503 respectively. *)

val result_line :
  ?id:string -> ?request_id:string -> ?version:int -> ?degraded:bool ->
  Iflow_engine.Engine.result -> string
(** Serialise an answer (no trailing newline). [request_id] is the
    server-side request id (client-supplied via the ["request_id"]
    field / [X-Request-Id] header, or minted at admission), echoed as
    ["request_id"] so a wire line can be joined to its
    {!Iflow_obs.Flight} record and trace flow. [version] is the
    published model version the answer's digest maps to; [degraded]
    (default false) marks answers completed from surviving chains
    only — the server computes it from the engine's configured chain
    count (exact-planned answers are never degraded). The answer's
    {!Iflow_engine.Engine.plan} is carried as ["plan":"exact"] with
    ["plan_cone"] / ["plan_validated"], or ["plan":"mh"] with an
    optional ["plan_fallback"] reason label. Anytime answers cut short
    by a deadline carry ["partial":true] (absent-as-false for peers
    predating the field). *)

val error_line :
  ?id:string -> ?request_id:string -> ?retry_after_ms:int ->
  error_code -> string -> string

val parsed_result :
  Iflow_engine.Jsonl.value ->
  (Iflow_engine.Engine.result * int option, string) result
(** Client-side decode of a {!result_line} (tests, bench): the result
    with [model_digest] restored and the version field. *)

val escape : string -> string
(** JSON string escaping (quotes included). *)
