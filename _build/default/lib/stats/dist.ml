let two_pi = 2.0 *. Float.pi

let gaussian rng ~mean ~std =
  if std < 0.0 then invalid_arg "Dist.gaussian: std < 0";
  (* Box-Muller; guard against log 0. *)
  let u1 = Float.max (Rng.uniform rng) 1e-300 in
  let u2 = Rng.uniform rng in
  mean +. (std *. Float.sqrt (-2.0 *. Float.log u1) *. Float.cos (two_pi *. u2))

let gaussian_log_pdf ~mean ~std x =
  if std <= 0.0 then invalid_arg "Dist.gaussian_log_pdf: std <= 0";
  let z = (x -. mean) /. std in
  -0.5 *. ((z *. z) +. Float.log (two_pi *. std *. std))

(* Marsaglia & Tsang (2000). For shape < 1 we boost to shape + 1 and
   apply the standard power-of-uniform correction. *)
let rec gamma rng ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then
    invalid_arg (Printf.sprintf "Dist.gamma: shape = %g, scale = %g" shape scale);
  if shape < 1.0 then begin
    let u = Float.max (Rng.uniform rng) 1e-300 in
    gamma rng ~shape:(shape +. 1.0) ~scale *. Float.pow u (1.0 /. shape)
  end
  else begin
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. Float.sqrt (9.0 *. d) in
    let rec loop () =
      let x = gaussian rng ~mean:0.0 ~std:1.0 in
      let v = 1.0 +. (c *. x) in
      if v <= 0.0 then loop ()
      else begin
        let v = v *. v *. v in
        let u = Float.max (Rng.uniform rng) 1e-300 in
        if
          Float.log u
          < (0.5 *. x *. x) +. d -. (d *. v) +. (d *. Float.log v)
        then d *. v
        else loop ()
      end
    in
    scale *. loop ()
  end

let binomial_log_pmf ~n ~p k =
  if n < 0 then invalid_arg "Dist.binomial_log_pmf: n < 0";
  if k < 0 || k > n then neg_infinity
  else if p <= 0.0 then (if k = 0 then 0.0 else neg_infinity)
  else if p >= 1.0 then (if k = n then 0.0 else neg_infinity)
  else
    Special.log_choose n k
    +. (float_of_int k *. Float.log p)
    +. (float_of_int (n - k) *. Float.log (1.0 -. p))

let binomial rng ~n ~p =
  if n < 0 then invalid_arg "Dist.binomial: n < 0";
  if p <= 0.0 then 0
  else if p >= 1.0 then n
  else if n <= 64 then begin
    let count = ref 0 in
    for _ = 1 to n do
      if Rng.bernoulli rng p then incr count
    done;
    !count
  end
  else begin
    (* pmf inversion with the multiplicative recurrence
       pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/(1-p). *)
    let q = 1.0 -. p in
    let ratio = p /. q in
    let u = ref (Rng.uniform rng) in
    let pmf = ref (Float.exp (float_of_int n *. Float.log q)) in
    let k = ref 0 in
    (* If q^n underflows, fall back on a gaussian approximation clipped to
       the support; only reachable for huge n*p. *)
    if !pmf <= 0.0 then begin
      let nf = float_of_int n in
      let x = gaussian rng ~mean:(nf *. p) ~std:(Float.sqrt (nf *. p *. q)) in
      int_of_float (Float.max 0.0 (Float.min nf (Float.round x)))
    end
    else begin
      while !u > !pmf && !k < n do
        u := !u -. !pmf;
        pmf := !pmf *. (float_of_int (n - !k) /. float_of_int (!k + 1)) *. ratio;
        incr k
      done;
      !k
    end
  end

let categorical rng weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if not (total > 0.0) then invalid_arg "Dist.categorical: non-positive total";
  let u = Rng.float rng total in
  let n = Array.length weights in
  let rec scan i acc =
    if i >= n - 1 then n - 1
    else begin
      let acc = acc +. weights.(i) in
      if u < acc then i else scan (i + 1) acc
    end
  in
  scan 0 0.0

module Beta = struct
  type t = { alpha : float; beta : float }

  let v alpha beta =
    if alpha <= 0.0 || beta <= 0.0 then
      invalid_arg (Printf.sprintf "Dist.Beta.v: alpha = %g, beta = %g" alpha beta);
    { alpha; beta }

  let uniform = { alpha = 1.0; beta = 1.0 }
  let mean { alpha; beta } = alpha /. (alpha +. beta)

  let variance { alpha; beta } =
    let s = alpha +. beta in
    alpha *. beta /. (s *. s *. (s +. 1.0))

  let std t = Float.sqrt (variance t)

  let mode ({ alpha; beta } as t) =
    if alpha > 1.0 && beta > 1.0 then (alpha -. 1.0) /. (alpha +. beta -. 2.0)
    else mean t

  let log_pdf { alpha; beta } x =
    if x < 0.0 || x > 1.0 then neg_infinity
    else if (x = 0.0 && alpha > 1.0) || (x = 1.0 && beta > 1.0) then neg_infinity
    else
      ((alpha -. 1.0) *. Float.log (Float.max x 1e-300))
      +. ((beta -. 1.0) *. Float.log (Float.max (1.0 -. x) 1e-300))
      -. Special.log_beta alpha beta

  let cdf { alpha; beta } x = Special.betai alpha beta x
  let quantile { alpha; beta } p = Special.betai_inv alpha beta p

  let interval t mass =
    if mass <= 0.0 || mass >= 1.0 then invalid_arg "Dist.Beta.interval";
    let tail = (1.0 -. mass) /. 2.0 in
    (quantile t tail, quantile t (1.0 -. tail))

  let sample rng { alpha; beta } =
    let x = gamma rng ~shape:alpha ~scale:1.0 in
    let y = gamma rng ~shape:beta ~scale:1.0 in
    x /. (x +. y)

  let fit_moments ~mean ~variance =
    if mean <= 0.0 || mean >= 1.0 || variance <= 0.0 then None
    else begin
      let bound = mean *. (1.0 -. mean) in
      if variance >= bound then None
      else begin
        let nu = (bound /. variance) -. 1.0 in
        Some { alpha = mean *. nu; beta = (1.0 -. mean) *. nu }
      end
    end

  let of_counts ~successes ~failures =
    if successes < 0 || failures < 0 then invalid_arg "Dist.Beta.of_counts";
    { alpha = float_of_int (successes + 1); beta = float_of_int (failures + 1) }

  let pp ppf { alpha; beta } = Format.fprintf ppf "Beta(%g, %g)" alpha beta
end
