(** Structured trace spans, written as Chrome [trace_event] records so
    a run opens directly in [chrome://tracing] or Perfetto.

    The sink is a process-global JSONL file: one event object per line,
    wrapped in a JSON array ([[] on open, [\]] on {!close}) — the exact
    shape both viewers ingest; a crash that skips {!close} leaves an
    unterminated array, which they also accept. Each record carries
    [{name, ph, ts, dur, pid, tid, args}] with [ts]/[dur] in
    microseconds from {!Clock}, [tid] the recording domain's id.

    Tracing is independent of {!Metrics} recording: a span with no sink
    installed costs one load and a branch, and never touches the
    clock. Writers from multiple domains serialise on one mutex — spans
    are per-query / per-publish constructs, not per-MH-step ones. *)

type arg = Int of int | Float of float | Str of string

val to_file : string -> unit
(** Install a sink writing to [path] (truncates). Replaces (and
    closes) any previous sink. Raises [Sys_error] like [open_out]. *)

val close : unit -> unit
(** Terminate the JSON array and close the sink. Idempotent; a no-op
    when no sink is installed. *)

val enabled : unit -> bool

val with_span : string -> ?args:(string * arg) list -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] and emits one complete ("ph":"X") event
    covering it, exceptional exits included. When no sink is installed
    this is just [f ()]. *)

val instant : string -> ?args:(string * arg) list -> unit -> unit
(** Emit an instant ("ph":"i") event, e.g. a drift alert. *)

val complete : ?args:(string * arg) list -> string -> ts_ns:int ->
  dur_ns:int -> unit
(** Emit a complete event from an externally measured interval. *)
