(** Reachability cones: the subgraph a flow event actually depends on.

    [extract icm ~src ~dst] is the induced subgraph on
    {e descendants(src) ∩ ancestors(dst)} over positive-probability
    edges — every node on at least one [src -> dst] path that can fire.
    Restricting the flow event (and the paper's Eq. 2 recursion) to the
    cone is exact: any realised [src -> dst] path lies inside it, and so
    does any [src -> l] sub-path for a cone node [l]. The cone is what
    the {!Exact_eval} certifier and evaluator operate on, keeping their
    cost proportional to the query, not the model. *)

type t = {
  sub : Iflow_graph.Digraph.t;  (** induced subgraph on the cone *)
  probs : float array;  (** per sub-edge activation probability *)
  node_of_sub : int array;
      (** sub node id -> model node id, ascending *)
  edge_of_sub : int array;  (** sub edge id -> model edge id *)
  src : int;  (** cone-local source *)
  dst : int;  (** cone-local sink *)
}

val extract : Iflow_core.Icm.t -> src:int -> dst:int -> t option
(** [None] when [dst] is unreachable from [src] through edges that can
    fire (the flow probability is exactly 0). Raises [Invalid_argument]
    on out-of-range nodes or [src = dst] (a trivial flow has no cone —
    callers special-case it to probability 1). *)

val n_nodes : t -> int
val n_edges : t -> int

val local : t -> int -> int
(** Cone-local id of a model node (binary search over [node_of_sub]).
    Raises [Not_found] when the node is outside the cone. *)
