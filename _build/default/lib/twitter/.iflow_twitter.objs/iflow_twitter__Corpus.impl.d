lib/twitter/corpus.ml: Array Char Iflow_core Iflow_graph Iflow_stats List Printf Queue String Tweet
