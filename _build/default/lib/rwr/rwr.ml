module Icm = Iflow_core.Icm
module Digraph = Iflow_graph.Digraph

let scores ?(restart = 0.15) ?(tolerance = 1e-10) ?(max_iterations = 1000) icm
    ~src =
  if restart <= 0.0 || restart > 1.0 then invalid_arg "Rwr.scores: restart";
  let g = Icm.graph icm in
  let n = Digraph.n_nodes g in
  if src < 0 || src >= n then invalid_arg "Rwr.scores: src out of range";
  let out_weight = Array.make n 0.0 in
  Digraph.iter_edges g (fun e { Digraph.src = u; _ } ->
      out_weight.(u) <- out_weight.(u) +. Icm.prob icm e);
  let r = Array.make n 0.0 in
  r.(src) <- 1.0;
  let next = Array.make n 0.0 in
  let rec iterate k =
    Array.fill next 0 n 0.0;
    let teleported = ref 0.0 in
    for v = 0 to n - 1 do
      if r.(v) > 0.0 then begin
        if out_weight.(v) > 0.0 then begin
          let carry = (1.0 -. restart) *. r.(v) in
          Digraph.iter_out g v (fun e ->
              let w = Digraph.edge_dst g e in
              next.(w) <-
                next.(w) +. (carry *. Icm.prob icm e /. out_weight.(v)));
          teleported := !teleported +. (restart *. r.(v))
        end
        else teleported := !teleported +. r.(v)
      end
    done;
    next.(src) <- next.(src) +. !teleported;
    let delta = ref 0.0 in
    for v = 0 to n - 1 do
      delta := !delta +. Float.abs (next.(v) -. r.(v));
      r.(v) <- next.(v)
    done;
    if !delta > tolerance && k < max_iterations then iterate (k + 1)
  in
  iterate 0;
  Array.copy r

let flow_estimate ?restart icm ~src ~dst =
  let r = scores ?restart icm ~src in
  let peak = ref 0.0 in
  Array.iteri (fun v s -> if v <> src then peak := Float.max !peak s) r;
  if !peak <= 0.0 then 0.0 else Float.min 1.0 (r.(dst) /. !peak)
