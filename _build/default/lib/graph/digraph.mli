(** Immutable directed graphs in compressed sparse row form.

    Nodes are dense integers [0 .. n_nodes - 1]; edges are dense integers
    [0 .. n_edges - 1] carrying a (source, destination) pair. Both ICMs
    and betaICMs attach per-edge payloads by indexing arrays with the
    edge id, so edge ids are stable and exposed. *)

type t

type edge = { src : int; dst : int }

val of_edges : nodes:int -> (int * int) list -> t
(** [of_edges ~nodes pairs] builds a graph with [nodes] vertices and one
    edge per (src, dst) pair, in list order (edge id = list position).
    Raises [Invalid_argument] on out-of-range endpoints, self loops, or
    duplicate pairs — the ICM has at most one edge per ordered pair. *)

val n_nodes : t -> int
val n_edges : t -> int
val edge : t -> int -> edge
val edge_src : t -> int -> int
val edge_dst : t -> int -> int

val find_edge : t -> src:int -> dst:int -> int option
(** Edge id for an ordered pair, if present. O(out-degree of src). *)

val mem_edge : t -> src:int -> dst:int -> bool

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val iter_out : t -> int -> (int -> unit) -> unit
(** [iter_out g v f] applies [f] to the id of every edge leaving [v]. *)

val iter_in : t -> int -> (int -> unit) -> unit
(** [iter_in g v f] applies [f] to the id of every edge entering [v]. *)

val fold_out : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a
val fold_in : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

val out_edges : t -> int -> int list
val in_edges : t -> int -> int list

val in_neighbours : t -> int -> int list
val out_neighbours : t -> int -> int list

val edges : t -> (int * int) list
(** All edges as (src, dst) pairs in edge-id order. *)

val iter_edges : t -> (int -> edge -> unit) -> unit

val induced : t -> keep:bool array -> t * int array * int array
(** [induced g ~keep] is the subgraph on the kept nodes. Returns
    [(sub, node_of_sub, edge_of_sub)] where [node_of_sub.(v')] is the
    original id of sub-node [v'] and [edge_of_sub.(e')] the original id
    of sub-edge [e']. *)

val pp : Format.formatter -> t -> unit
