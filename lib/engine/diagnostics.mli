(** Cross-chain convergence diagnostics for the query engine.

    All functions take per-chain sample streams ([chains.(k)] is the
    retained-sample series of chain [k], e.g. 0/1 indicator draws) and
    implement the standard MCMC battery:

    - {b split-R̂} (Gelman–Rubin with split chains): each chain is
      halved, then R̂ = sqrt(var̂⁺ / W) over the resulting sequences.
      Near 1 when chains agree and are stationary; > 1 under
      disagreement or drift.
    - {b effective sample size}: per-chain
      {!Iflow_stats.Descriptive.effective_sample_size}, summed.
    - {b Monte-Carlo standard error}: pooled standard deviation divided
      by sqrt(ESS).

    The engine's adaptive stopping rule draws rounds of samples until
    {!converged}, capped at a sample budget. *)

type summary = {
  mean : float;       (** pooled mean over all chains *)
  rhat : float;       (** split-R̂; [nan] when undiagnosable (too few samples) *)
  ess : float;        (** total effective sample size *)
  mcse : float;       (** Monte-Carlo standard error of [mean] *)
  n_total : int;      (** raw retained samples across chains *)
}

val split_rhat : float array array -> float
(** [nan] when there are fewer than two split sequences or fewer than
    two samples per sequence; [1.0] when every sequence is constant and
    identical; [infinity] when sequences are constant but disagree. *)

val ess : float array array -> float

val mcse : float array array -> float

val summary : float array array -> summary

val converged : rhat_target:float -> mcse_target:float -> summary -> bool
(** [rhat <= rhat_target && mcse <= mcse_target]; NaNs never pass. *)

val pp_summary : Format.formatter -> summary -> unit
