examples/marketing_reach.ml: Array Iflow_core Iflow_graph Iflow_mcmc Iflow_stats List Printf String
