(** A minimal JSON parser for the batch-query wire format.

    The container deliberately carries no third-party JSON dependency,
    so the engine ships its own ~150-line recursive-descent parser:
    full JSON values (objects, arrays, strings with escapes, numbers,
    booleans, null), one document per call — i.e. one JSONL line.
    Numbers are represented as floats, as in JavaScript. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of value list
  | Obj of (string * value) list

val parse : string -> (value, string) result
(** Parse one complete JSON document; trailing non-whitespace is an
    error (JSONL framing is the caller's job: one line, one call). *)

val member : string -> value -> value option
(** Field lookup on an [Obj]; [None] on missing field or non-object. *)

val to_int : value -> int option
(** [Num] with an integral value. *)

val to_string : value -> string option
val to_list : value -> value list option

val pp : Format.formatter -> value -> unit
(** Re-serialise (compact, valid JSON for the subset we produce). *)
