(** Sliding-window drift detection over per-edge firing rates.

    Each Bernoulli edge trial the {!Online} updater absorbs is also fed
    here. Per edge we keep a reference rate (seeded from the posterior
    mean, with the posterior's pseudo-count mass as its sample size) and
    a tumbling window of the most recent trials. When an edge's window
    fills, its empirical rate is compared against the reference with the
    two-sample Hoeffding bound used by AALpy's [HoeffdingChecker]:

    {v
    |p_win - p_ref| > (sqrt(1/n_ref) + sqrt(1/n_win)) * sqrt(ln(2/delta) / 2)
    v}

    A window that passes is absorbed into the reference (so the
    reference sharpens over a stationary stream); a window that fails
    raises an {!alert}, leaves the reference untouched, and flags the
    edge — so a persistent shift keeps alerting once per window until
    the model is re-anchored with {!reset}. Detection delay is bounded:
    a shifted edge alerts within at most [2 * window - 1] of its own
    trials after the shift (the partial window in flight, plus one full
    window). *)

type config = {
  window : int;
      (** per-edge trials per test window (and minimum detection
          resolution) *)
  delta : float;
      (** significance level of the Hoeffding bound; smaller = fewer
          false alarms, larger detection threshold *)
  min_reference : float;
      (** do not test an edge until its reference mass (posterior
          pseudo-counts plus absorbed windows) reaches this *)
}

val default_config : config
(** window 200, delta 1e-3, min_reference 50. *)

type alert = {
  edge : int;
  src : int;
  dst : int;
  reference_rate : float;
  window_rate : float;
  window_trials : int;
  threshold : float;  (** the bound the deviation exceeded *)
  at_trial : int;     (** global trial count when raised *)
}

type t

val create : config -> Iflow_core.Beta_icm.t -> t
(** Reference rates and masses from the model's posterior. Raises
    [Invalid_argument] on a non-positive window or delta outside
    (0, 1). *)

val observe : t -> edge:int -> fired:bool -> alert option
(** Feed one trial; returns the alert if this trial completed a window
    that failed the test. *)

val reset : t -> Iflow_core.Beta_icm.t -> unit
(** Re-anchor on a (possibly re-shaped) model: references are re-seeded
    from its posterior, windows and flags cleared, cumulative alert
    history and trial count kept. Used after graph-change events, where
    edge ids shift. *)

val trials : t -> int
(** Total trials fed since creation. *)

val flagged : t -> int
(** Edges currently flagged as drifted — the global drift signal. *)

val is_flagged : t -> int -> bool

val alerts : t -> alert list
(** All alerts so far, oldest first. *)

val alert_count : t -> int
(** [List.length (alerts t)], O(1). *)

val pp_alert : Format.formatter -> alert -> unit
