module Digraph = Iflow_graph.Digraph
module Rng = Iflow_stats.Rng

(* One BFS over the ICM. Each edge out of an active node fires once; a
   fired edge is i-active even when its destination was already active
   (the object "arrives again" without effect, but the traversal
   happened, which is what attributed training counts). *)
let run rng icm ~sources =
  let g = Icm.graph icm in
  let n = Digraph.n_nodes g and m = Digraph.n_edges g in
  let active_nodes = Array.make n false in
  let active_edges = Array.make m false in
  let queue = Queue.create () in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Cascade.run: source out of range";
      if not active_nodes.(v) then begin
        active_nodes.(v) <- true;
        Queue.add v queue
      end)
    sources;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Digraph.iter_out g v (fun e ->
        if Rng.bernoulli rng (Icm.prob icm e) then begin
          active_edges.(e) <- true;
          let w = Digraph.edge_dst g e in
          if not active_nodes.(w) then begin
            active_nodes.(w) <- true;
            Queue.add w queue
          end
        end)
  done;
  { Evidence.sources; active_nodes; active_edges }

let run_contextual rng ~source_icm ~relay_icm ~sources =
  let g = Icm.graph source_icm in
  if Icm.graph relay_icm != g then begin
    (* allow structurally equal graphs built separately *)
    if
      Digraph.n_nodes (Icm.graph relay_icm) <> Digraph.n_nodes g
      || Digraph.n_edges (Icm.graph relay_icm) <> Digraph.n_edges g
    then invalid_arg "Cascade.run_contextual: graphs differ"
  end;
  let n = Digraph.n_nodes g and m = Digraph.n_edges g in
  let is_source = Array.make n false in
  let active_nodes = Array.make n false in
  let active_edges = Array.make m false in
  let queue = Queue.create () in
  List.iter
    (fun v ->
      if v < 0 || v >= n then
        invalid_arg "Cascade.run_contextual: source out of range";
      is_source.(v) <- true;
      if not active_nodes.(v) then begin
        active_nodes.(v) <- true;
        Queue.add v queue
      end)
    sources;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    let icm = if is_source.(v) then source_icm else relay_icm in
    Digraph.iter_out g v (fun e ->
        if Rng.bernoulli rng (Icm.prob icm e) then begin
          active_edges.(e) <- true;
          let w = Digraph.edge_dst g e in
          if not active_nodes.(w) then begin
            active_nodes.(w) <- true;
            Queue.add w queue
          end
        end)
  done;
  { Evidence.sources; active_nodes; active_edges }

let run_trace rng icm ~sources =
  let o = run rng icm ~sources in
  Evidence.forget_attribution (Icm.graph icm) o

let run_many rng icm ~sources ~count =
  List.init count (fun _ -> run rng icm ~sources)

let reached_count (o : Evidence.attributed_object) =
  let is_source = Array.make (Array.length o.active_nodes) false in
  List.iter (fun v -> is_source.(v) <- true) o.sources;
  let acc = ref 0 in
  Array.iteri
    (fun v active -> if active && not is_source.(v) then incr acc)
    o.active_nodes;
  !acc
