lib/mcmc/conditions.ml: Array Format Hashtbl Iflow_core Iflow_graph Iflow_stats List Printf
