lib/core/cascade.mli: Evidence Icm Iflow_stats
