examples/leak_risk.ml: Array Iflow_core Iflow_graph Iflow_mcmc Iflow_stats List Printf
