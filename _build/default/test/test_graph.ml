open Iflow_graph
module Rng = Iflow_stats.Rng

let diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  Digraph.of_edges ~nodes:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_construction () =
  let g = diamond () in
  Alcotest.(check int) "nodes" 4 (Digraph.n_nodes g);
  Alcotest.(check int) "edges" 4 (Digraph.n_edges g);
  Alcotest.(check int) "edge 0 src" 0 (Digraph.edge_src g 0);
  Alcotest.(check int) "edge 0 dst" 1 (Digraph.edge_dst g 0);
  Alcotest.(check int) "out degree 0" 2 (Digraph.out_degree g 0);
  Alcotest.(check int) "in degree 3" 2 (Digraph.in_degree g 3);
  Alcotest.(check int) "in degree 0" 0 (Digraph.in_degree g 0)

let test_construction_errors () =
  Alcotest.check_raises "self loop"
    (Invalid_argument "Digraph.of_edges: self loop at 1") (fun () ->
      ignore (Digraph.of_edges ~nodes:2 [ (1, 1) ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Digraph.of_edges: duplicate edge (0, 1)") (fun () ->
      ignore (Digraph.of_edges ~nodes:2 [ (0, 1); (0, 1) ]));
  Alcotest.check_raises "range"
    (Invalid_argument "Digraph.of_edges: edge (0, 5) out of range") (fun () ->
      ignore (Digraph.of_edges ~nodes:2 [ (0, 5) ]))

let test_find_edge () =
  let g = diamond () in
  Alcotest.(check (option int)) "present" (Some 2)
    (Digraph.find_edge g ~src:1 ~dst:3);
  Alcotest.(check (option int)) "absent" None
    (Digraph.find_edge g ~src:3 ~dst:0);
  Alcotest.(check bool) "mem" true (Digraph.mem_edge g ~src:0 ~dst:2)

let test_adjacency () =
  let g = diamond () in
  Alcotest.(check (list int)) "out 0" [ 0; 1 ] (Digraph.out_edges g 0);
  Alcotest.(check (list int)) "in 3" [ 2; 3 ] (Digraph.in_edges g 3);
  Alcotest.(check (list int)) "in neighbours 3" [ 1; 2 ]
    (Digraph.in_neighbours g 3);
  Alcotest.(check (list int)) "out neighbours 0" [ 1; 2 ]
    (Digraph.out_neighbours g 0)

let test_induced () =
  let g = diamond () in
  let keep = [| true; true; false; true |] in
  let sub, node_of_sub, edge_of_sub = Digraph.induced g ~keep in
  Alcotest.(check int) "sub nodes" 3 (Digraph.n_nodes sub);
  Alcotest.(check int) "sub edges" 2 (Digraph.n_edges sub);
  Alcotest.(check (array int)) "node map" [| 0; 1; 3 |] node_of_sub;
  Alcotest.(check (array int)) "edge map" [| 0; 2 |] edge_of_sub;
  (* kept edges are 0->1 and 1->3, remapped *)
  Alcotest.(check bool) "0->1 kept" true (Digraph.mem_edge sub ~src:0 ~dst:1);
  Alcotest.(check bool) "1->3 remapped" true (Digraph.mem_edge sub ~src:1 ~dst:2)

let test_reachability () =
  let g = diamond () in
  let marked = Traverse.reachable_from g [ 0 ] in
  Alcotest.(check (array bool)) "all reachable" [| true; true; true; true |]
    marked;
  let marked = Traverse.reachable_from g [ 1 ] in
  Alcotest.(check (array bool)) "from 1" [| false; true; false; true |] marked;
  (* restrict active edges: kill edge 0 (0->1) and 1 (0->2) *)
  let marked = Traverse.reachable_from ~active:(fun e -> e > 1) g [ 0 ] in
  Alcotest.(check (array bool)) "blocked" [| true; false; false; false |]
    marked

let test_reaches () =
  let g = diamond () in
  Alcotest.(check bool) "0 to 3" true (Traverse.reaches g ~src:0 ~dst:3);
  Alcotest.(check bool) "3 to 0" false (Traverse.reaches g ~src:3 ~dst:0);
  Alcotest.(check bool) "self" true (Traverse.reaches g ~src:2 ~dst:2)

let test_within_radius () =
  let g = Gen.path 5 in
  Alcotest.(check (array bool)) "out radius 2 from 0"
    [| true; true; true; false; false |]
    (Traverse.within_radius ~direction:Traverse.Out g ~centre:0 ~radius:2);
  Alcotest.(check (array bool)) "in radius 1 from 2"
    [| false; true; true; false; false |]
    (Traverse.within_radius ~direction:Traverse.In g ~centre:2 ~radius:1);
  Alcotest.(check (array bool)) "both radius 1 from 2"
    [| false; true; true; true; false |]
    (Traverse.within_radius ~direction:Traverse.Both g ~centre:2 ~radius:1)

let test_shortest_path () =
  let g = diamond () in
  (match Traverse.shortest_path g ~src:0 ~dst:3 with
  | Some [ a; b ] ->
    Alcotest.(check bool) "two hops" true
      ((a = 0 && b = 2) || (a = 1 && b = 3))
  | Some other -> Alcotest.failf "unexpected path length %d" (List.length other)
  | None -> Alcotest.fail "no path");
  Alcotest.(check bool) "no reverse path" true
    (Traverse.shortest_path g ~src:3 ~dst:0 = None);
  Alcotest.(check bool) "self" true (Traverse.shortest_path g ~src:1 ~dst:1 = Some [])

let test_gnm () =
  let rng = Rng.create 1 in
  let g = Gen.gnm rng ~nodes:20 ~edges:50 in
  Alcotest.(check int) "nodes" 20 (Digraph.n_nodes g);
  Alcotest.(check int) "edges" 50 (Digraph.n_edges g);
  (* dense fallback branch *)
  let g = Gen.gnm rng ~nodes:5 ~edges:20 in
  Alcotest.(check int) "dense edges" 20 (Digraph.n_edges g);
  Alcotest.check_raises "too many"
    (Invalid_argument "Gen.gnm: 21 edges > 20 possible") (fun () ->
      ignore (Gen.gnm rng ~nodes:5 ~edges:21))

let test_preferential_attachment () =
  let rng = Rng.create 2 in
  let g = Gen.preferential_attachment rng ~nodes:300 ~mean_out_degree:3 in
  Alcotest.(check int) "nodes" 300 (Digraph.n_nodes g);
  Alcotest.(check bool) "has edges" true (Digraph.n_edges g > 500);
  (* scale-free-ish: the max audience should be much larger than the mean *)
  let max_out = ref 0 and total = ref 0 in
  for v = 0 to 299 do
    let d = Digraph.out_degree g v in
    max_out := max !max_out d;
    total := !total + d
  done;
  let mean = float_of_int !total /. 300.0 in
  Alcotest.(check bool) "heavy tail" true (float_of_int !max_out > 4.0 *. mean)

let test_fixed_generators () =
  let s = Gen.star ~centre_to_leaves:true ~leaves:4 in
  Alcotest.(check int) "star out degree" 4 (Digraph.out_degree s 0);
  let s = Gen.star ~centre_to_leaves:false ~leaves:4 in
  Alcotest.(check int) "in-star in degree" 4 (Digraph.in_degree s 0);
  let c = Gen.complete 4 in
  Alcotest.(check int) "complete edges" 12 (Digraph.n_edges c)

let prop_gnm_no_self_loops_or_dups =
  QCheck.Test.make ~count:50 ~name:"gnm produces simple digraphs"
    QCheck.(pair (int_range 2 15) small_nat)
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let m = min (n * (n - 1)) (n * 2) in
      let g = Gen.gnm rng ~nodes:n ~edges:m in
      (* of_edges would have rejected self loops/dups; check count *)
      Digraph.n_edges g = m)

let prop_reachability_monotone =
  QCheck.Test.make ~count:50
    ~name:"activating more edges never shrinks the reachable set"
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Gen.gnm rng ~nodes:12 ~edges:30 in
      let active1 = Array.init 30 (fun _ -> Rng.bool rng) in
      let active2 =
        Array.mapi (fun _ a -> a || Rng.bool rng) active1
      in
      let r1 = Traverse.reachable_from ~active:(fun e -> active1.(e)) g [ 0 ] in
      let r2 = Traverse.reachable_from ~active:(fun e -> active2.(e)) g [ 0 ] in
      Array.for_all2 (fun a b -> (not a) || b) r1 r2)

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0 |])) tests

let () =
  Alcotest.run "iflow_graph"
    [
      ( "digraph",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "construction errors" `Quick test_construction_errors;
          Alcotest.test_case "find edge" `Quick test_find_edge;
          Alcotest.test_case "adjacency" `Quick test_adjacency;
          Alcotest.test_case "induced subgraph" `Quick test_induced;
        ] );
      ( "traverse",
        [
          Alcotest.test_case "reachability" `Quick test_reachability;
          Alcotest.test_case "reaches" `Quick test_reaches;
          Alcotest.test_case "within radius" `Quick test_within_radius;
          Alcotest.test_case "shortest path" `Quick test_shortest_path;
        ]
        @ qcheck [ prop_reachability_monotone ] );
      ( "gen",
        [
          Alcotest.test_case "gnm" `Quick test_gnm;
          Alcotest.test_case "preferential attachment" `Quick test_preferential_attachment;
          Alcotest.test_case "fixed generators" `Quick test_fixed_generators;
        ]
        @ qcheck [ prop_gnm_no_self_loops_or_dups ] );
    ]
