(** Fig 11 (and Table II): EM finds isolated local maxima; the joint
    Bayes posterior exposes the full (multimodal) uncertainty.

    On the Table II evidence we run Saito's EM from many random
    restarts, and our MCMC once, then render the (A, B) and (A, C)
    probability scatters as density grids. *)

type result = {
  em_points : (float * float * float) list; (** (A, B, C) per restart *)
  mcmc_points : (float * float * float) list; (** (A, B, C) per sample *)
}

val table_two : unit -> Iflow_core.Summary.t

val run : Scale.t -> Iflow_stats.Rng.t -> result

val density_grid :
  cells:int -> lo:float -> hi:float -> (float * float) list -> int array array
(** [density_grid ~cells ~lo ~hi points] counts points per cell; row 0
    is the lowest y band. *)

val report : Scale.t -> Iflow_stats.Rng.t -> Format.formatter -> result
