module Rng = Iflow_stats.Rng

let gnm rng ~nodes ~edges =
  if nodes < 0 || edges < 0 then invalid_arg "Gen.gnm: negative size";
  let capacity = nodes * (nodes - 1) in
  if edges > capacity then
    invalid_arg
      (Printf.sprintf "Gen.gnm: %d edges > %d possible" edges capacity);
  let chosen = Hashtbl.create (2 * edges) in
  let pairs = ref [] in
  (* Rejection sampling is fine while edges is well below capacity; fall
     back to dense enumeration when the graph is nearly complete. *)
  if edges * 2 <= capacity then begin
    let count = ref 0 in
    while !count < edges do
      let s = Rng.int rng nodes in
      let d = Rng.int rng nodes in
      if s <> d && not (Hashtbl.mem chosen (s, d)) then begin
        Hashtbl.add chosen (s, d) ();
        pairs := (s, d) :: !pairs;
        incr count
      end
    done
  end
  else begin
    let all = Array.make capacity (0, 0) in
    let i = ref 0 in
    for s = 0 to nodes - 1 do
      for d = 0 to nodes - 1 do
        if s <> d then begin
          all.(!i) <- (s, d);
          incr i
        end
      done
    done;
    Rng.shuffle rng all;
    for j = 0 to edges - 1 do
      pairs := all.(j) :: !pairs
    done
  end;
  Digraph.of_edges ~nodes !pairs

let preferential_attachment rng ~nodes ~mean_out_degree =
  if nodes <= 0 then invalid_arg "Gen.preferential_attachment: nodes <= 0";
  if mean_out_degree <= 0 then
    invalid_arg "Gen.preferential_attachment: degree <= 0";
  (* weight of node v as a source of followed content: 1 + #followers *)
  let weight = Array.make nodes 1.0 in
  let tree = Iflow_stats.Fenwick.of_array (Array.make nodes 0.0) in
  Iflow_stats.Fenwick.set tree 0 weight.(0);
  let pairs = ref [] in
  let seen = Hashtbl.create (4 * nodes) in
  for v = 1 to nodes - 1 do
    let links = min v mean_out_degree in
    let made = ref 0 in
    let attempts = ref 0 in
    while !made < links && !attempts < 20 * links do
      incr attempts;
      let u = Iflow_stats.Fenwick.sample rng tree in
      if u <> v && not (Hashtbl.mem seen (u, v)) then begin
        Hashtbl.add seen (u, v) ();
        (* v follows u: information flows u -> v *)
        pairs := (u, v) :: !pairs;
        weight.(u) <- weight.(u) +. 1.0;
        Iflow_stats.Fenwick.set tree u weight.(u);
        incr made
      end
    done;
    Iflow_stats.Fenwick.set tree v weight.(v)
  done;
  Digraph.of_edges ~nodes !pairs

let star ~centre_to_leaves ~leaves =
  if leaves < 0 then invalid_arg "Gen.star: negative leaves";
  let pairs =
    List.init leaves (fun i ->
        if centre_to_leaves then (0, i + 1) else (i + 1, 0))
  in
  Digraph.of_edges ~nodes:(leaves + 1) pairs

let path n =
  if n <= 0 then invalid_arg "Gen.path: n <= 0";
  Digraph.of_edges ~nodes:n (List.init (n - 1) (fun i -> (i, i + 1)))

let complete n =
  if n < 0 then invalid_arg "Gen.complete: negative n";
  let pairs = ref [] in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if s <> d then pairs := (s, d) :: !pairs
    done
  done;
  Digraph.of_edges ~nodes:n !pairs
