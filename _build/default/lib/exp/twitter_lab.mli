(** Shared setup for the Twitter experiments (Figs 2, 3, 4, 8, 9, 10):
    one synthetic corpus standing in for the Choudhury et al. crawl,
    split into a training prefix and a testing suffix by cascade. *)

type t = {
  corpus : Iflow_twitter.Corpus.t;
  graph : Iflow_graph.Digraph.t; (** the ground-truth follow graph *)
  train_objects : Iflow_core.Evidence.attributed;
      (** attributed retweet evidence parsed from the training tweets *)
  test_cascades : Iflow_twitter.Preprocess.cascade list;
      (** held-out cascades, for outcomes *)
  model : Iflow_core.Beta_icm.t; (** betaICM trained on [train_objects] *)
}

val make : Scale.t -> Iflow_stats.Rng.t -> t
(** Build the standard corpus (preferential-attachment graph, skewed
    ground-truth retweet probabilities), parse it, split cascades
    80/20 by time, and train the betaICM. *)

val interesting_users : t -> count:int -> int list
(** The paper focuses on users "who tweet frequently and whose tweets
    are retweeted often": rank source users by total retweets of their
    cascades in the training data. *)

val subgraph_around :
  t -> centre:int -> radius:int ->
  Iflow_core.Beta_icm.t * int array * int
(** Radius-limited trained sub-model around a focus user. Returns
    (sub-betaICM, original node id per sub-node, the focus's sub-id). *)

val cascade_outcomes :
  t -> source:int -> (int * bool array) list
(** For each held-out cascade originating at [source]: (cascade index,
    per-node activation) — the empirical flow outcomes. *)
