lib/core/pseudo_state.mli: Format Icm Iflow_stats
