(* Flight-recorder / request-id overhead benchmark: the ISSUE 9
   acceptance number. Measures the serving path end to end (loopback
   TCP, cached requests — the worst case for relative overhead, since
   there is no sampling to hide behind) in three arms:

   - off:     flight recorder disabled, metrics recording off — the
              PR 6 baseline path plus the always-on rid plumbing;
   - flight:  flight recorder on (ring 4096) — every answer writes one
              record into the domain-sharded ring;
   - metrics: flight off, metrics recording on — the pre-existing
              (PR 4/PR 6) recording cost, the baseline for "full";
   - full:    flight recorder AND metrics recording on — adds the new
              phase histograms (queue_wait/plan/sample/serialize, per
              tenant) observing on every request.

   The two numbers the PR pins (< 3% each): flight vs off, and full vs
   metrics — i.e. the marginal cost of this PR's observability in both
   recording regimes, not the long-pinned cost of metrics itself.

   Arms alternate across rounds and the best round per arm is kept, so
   scheduler noise hits all arms alike. A direct-call microbench
   (cache-hit Engine.query with and without ?rid/?phases) isolates the
   engine-side threading cost from the socket path.

   Results go to BENCH_PR9.json with the overhead percentages the PR
   pins (< 3%). --quick / IFLOW_BENCH_QUICK=1 shortens for CI. *)

module Rng = Iflow_stats.Rng
module Digraph = Iflow_graph.Digraph
module Beta_icm = Iflow_core.Beta_icm
module Generator = Iflow_core.Generator
module Engine = Iflow_engine.Engine
module Query = Iflow_engine.Query
module Clock = Iflow_obs.Clock
module Metrics = Iflow_obs.Metrics
module Flight = Iflow_obs.Flight
module Jsonl = Iflow_engine.Jsonl
module Sockio = Iflow_serve.Sockio
module Server = Iflow_serve.Server

let quick =
  Array.exists (fun a -> a = "--quick") Sys.argv
  || Sys.getenv_opt "IFLOW_BENCH_QUICK" <> None

let rounds = 3
let clients = 8
let requests_per_round = if quick then 2_000 else 20_000
let direct_calls = if quick then 50_000 else 500_000
let warm_set = 32

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let ask r fd line =
  Sockio.write_all fd (line ^ "\n");
  match Sockio.read_line r with
  | Sockio.Line l -> l
  | Sockio.Eof | Sockio.Too_long | Sockio.Timeout ->
    failwith "flight_bench: session lost"

let assert_answer line =
  match Jsonl.parse line with
  | Ok json when Jsonl.member "estimate" json <> None -> ()
  | Ok _ -> failwith ("flight_bench: refused: " ^ line)
  | Error msg -> failwith ("flight_bench: bad response: " ^ msg)

let query_line (src, dst) =
  Printf.sprintf {|{"type":"flow","src":%d,"dst":%d}|} src dst

(* closed-loop cached storm: [clients] sessions splitting [total]
   requests drawn round-robin from the warm set; returns qps *)
let run_storm server ~total lines =
  let per = max 1 (total / clients) in
  let m = Mutex.create () in
  let cv = Condition.create () in
  let go = ref false in
  let ready = ref 0 in
  let client _i =
    let fd = connect (Server.port server) in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let r = Sockio.reader fd in
        Mutex.protect m (fun () ->
            incr ready;
            Condition.broadcast cv;
            while not !go do
              Condition.wait cv m
            done);
        for j = 0 to per - 1 do
          assert_answer (ask r fd lines.(j mod Array.length lines))
        done)
  in
  let threads = List.init clients (fun i -> Thread.create client i) in
  Mutex.protect m (fun () ->
      while !ready < clients do
        Condition.wait cv m
      done);
  let t0 = Clock.now_ns () in
  Mutex.protect m (fun () ->
      go := true;
      Condition.broadcast cv);
  List.iter Thread.join threads;
  let wall = Clock.seconds_of_ns (Clock.elapsed_ns t0) in
  float_of_int (per * clients) /. wall

let () =
  let rng = Rng.create 20120402 in
  let model = Generator.default_beta_icm rng ~nodes:6000 ~edges:12000 in
  let icm = Beta_icm.expected_icm model in
  let g = Beta_icm.graph model in
  let n = Digraph.n_nodes g in
  let light =
    {
      Engine.default_config with
      Engine.chains = 2;
      burn_in = 50;
      thin = 2;
      round_samples = 50;
      max_samples = 100;
      rhat_target = 10.0;
      cache_capacity = 4096;
    }
  in
  Printf.printf
    "flight_bench: %d nodes, %d edges; %d clients, %d cached requests \
     per round, %d rounds per arm%s\n%!"
    n (Digraph.n_edges g) clients requests_per_round rounds
    (if quick then " (quick)" else "");

  (* ---- direct-call microbench: ?rid/?phases threading cost ---- *)
  let engine = Engine.create ~config:light ~seed:7 icm in
  let q = Query.flow ~src:0 ~dst:(n / 2) () in
  ignore (Engine.query engine q) (* warm the cache *);
  let direct label f =
    (* one warm-up pass, then timed *)
    for _ = 1 to direct_calls / 10 do
      f ()
    done;
    let t0 = Clock.now_ns () in
    for _ = 1 to direct_calls do
      f ()
    done;
    let ns = Clock.elapsed_ns t0 in
    let per_call = float_of_int ns /. float_of_int direct_calls in
    Printf.printf "  direct %-10s %8.1f ns/call (cache hit)\n%!" label
      per_call;
    per_call
  in
  let bare_ns = direct "bare" (fun () -> ignore (Engine.query engine q)) in
  let threaded_ns =
    let ph = Engine.phases () in
    direct "rid+phases" (fun () ->
        ignore (Engine.query ~rid:"bench-1" ~phases:ph engine q))
  in

  (* ---- serving-path arms ---- *)
  let serve_arm ~flight ~recording =
    let config =
      {
        Server.default_config with
        Server.queue_capacity = 256;
        workers = 4;
        flight_capacity = (if flight then 4096 else 0);
      }
    in
    if not flight then Flight.disable ();
    Metrics.set_recording recording;
    let server = Server.create ~config ~engine () in
    Server.start server;
    Fun.protect
      ~finally:(fun () ->
        Server.stop server;
        Metrics.set_recording false)
      (fun () ->
        let warm =
          Array.init warm_set (fun i -> query_line (i, (i + n / 2) mod n))
        in
        let fd = connect (Server.port server) in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            let r = Sockio.reader fd in
            Array.iter (fun line -> assert_answer (ask r fd line)) warm);
        run_storm server ~total:requests_per_round warm)
  in
  let arms =
    [
      ("off", false, false);
      ("flight", true, false);
      ("metrics", false, true);
      ("full", true, true);
    ]
  in
  let best = Hashtbl.create 4 in
  for round = 1 to rounds do
    List.iter
      (fun (label, flight, recording) ->
        let qps = serve_arm ~flight ~recording in
        Printf.printf "  round %d %-6s %10.0f qps\n%!" round label qps;
        let prev =
          Option.value ~default:0.0 (Hashtbl.find_opt best label)
        in
        Hashtbl.replace best label (Float.max prev qps))
      arms
  done;
  let qps label = Hashtbl.find best label in
  let overhead label ~vs = 100.0 *. (1.0 -. (qps label /. qps vs)) in
  let flight_overhead = overhead "flight" ~vs:"off" in
  let full_overhead = overhead "full" ~vs:"metrics" in
  Printf.printf
    "best: off %.0f qps, flight %.0f qps (%.2f%% vs off); metrics %.0f \
     qps, full %.0f qps (%.2f%% vs metrics)\n%!"
    (qps "off") (qps "flight") flight_overhead (qps "metrics") (qps "full")
    full_overhead;
  Printf.printf "direct cache hit: bare %.1f ns, rid+phases %.1f ns\n%!"
    bare_ns threaded_ns;

  let json =
    Jsonl.Obj
      [
        ("bench", Jsonl.Str "flight_overhead");
        ("pr", Jsonl.Num 9.0);
        ("quick", Jsonl.Bool quick);
        ( "workload",
          Jsonl.Obj
            [
              ("nodes", Jsonl.Num (float_of_int n));
              ("edges", Jsonl.Num (float_of_int (Digraph.n_edges g)));
              ("clients", Jsonl.Num (float_of_int clients));
              ( "requests_per_round",
                Jsonl.Num (float_of_int requests_per_round) );
              ("rounds", Jsonl.Num (float_of_int rounds));
              ("dialect", Jsonl.Str "jsonl_cached");
            ] );
        ( "note",
          Jsonl.Str
            "cached loopback storm, best round per arm (arms alternate \
             within each round); off = flight ring disabled, flight = \
             ring 4096, metrics = recording on without the ring, full = \
             ring + recording (adds the phase histograms). Pinned \
             overheads are marginal: flight vs off, full vs metrics. \
             direct = cache-hit Engine.query ns/call" );
        ( "serve",
          Jsonl.Obj
            [
              ("off_qps", Jsonl.Num (qps "off"));
              ("flight_qps", Jsonl.Num (qps "flight"));
              ("metrics_qps", Jsonl.Num (qps "metrics"));
              ("full_qps", Jsonl.Num (qps "full"));
              ( "flight_overhead_percent_vs_off",
                Jsonl.Num flight_overhead );
              ( "full_overhead_percent_vs_metrics",
                Jsonl.Num full_overhead );
              ("budget_percent", Jsonl.Num 3.0);
            ] );
        ( "direct",
          Jsonl.Obj
            [
              ("bare_ns_per_call", Jsonl.Num bare_ns);
              ("rid_phases_ns_per_call", Jsonl.Num threaded_ns);
            ] );
      ]
  in
  let oc = open_out "BENCH_PR9.json" in
  output_string oc (Bench_obs.pretty json);
  close_out oc;
  Printf.printf "wrote BENCH_PR9.json\n%!";
  Bench_obs.write_metrics_out ()
