module Digraph = Iflow_graph.Digraph
module Evidence = Iflow_core.Evidence

let augment_with_omnipotent g =
  let n = Digraph.n_nodes g in
  let omni = n in
  let pairs = Digraph.edges g @ List.init n (fun v -> (omni, v)) in
  (Digraph.of_edges ~nodes:(n + 1) pairs, omni)

type item_kind = Hashtag | Url

let items_of kind text =
  match kind with
  | Hashtag -> Tweet.hashtags text
  | Url -> Tweet.urls text

let item_traces ?(min_users = 1) ~kind ~node_of_name ~n_nodes ~omni tweets =
  (* first_use.(item) : node -> earliest tweet time mentioning item *)
  let table : (string, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (tw : Tweet.t) ->
      match node_of_name tw.author with
      | None -> ()
      | Some node ->
        List.iter
          (fun item ->
            let uses =
              match Hashtbl.find_opt table item with
              | Some uses -> uses
              | None ->
                let uses = Hashtbl.create 8 in
                Hashtbl.add table item uses;
                uses
            in
            match Hashtbl.find_opt uses node with
            | Some t0 when t0 <= tw.time -> ()
            | _ -> Hashtbl.replace uses node tw.time)
          (items_of kind tw.text))
    tweets;
  let traces =
    Hashtbl.fold
      (fun item uses acc ->
        if Hashtbl.length uses < min_users then acc
        else begin
          let times = Array.make n_nodes (-1) in
          times.(omni) <- 0;
          (* Rank distinct raw times so traces use small dense steps
             starting at 1 (after the omnipotent source at 0). *)
          let raw = Hashtbl.fold (fun node t acc -> (node, t) :: acc) uses [] in
          let distinct =
            List.sort_uniq compare (List.map snd raw)
          in
          let rank = Hashtbl.create 16 in
          List.iteri (fun i t -> Hashtbl.add rank t (i + 1)) distinct;
          List.iter
            (fun (node, t) ->
              if node < n_nodes then times.(node) <- Hashtbl.find rank t)
            raw;
          (item, { Evidence.trace_sources = [ omni ]; times }) :: acc
        end)
      table []
  in
  List.sort (fun (a, _) (b, _) -> compare a b) traces
