(** Fig 6: cost of drawing one sample, our joint Bayes vs Goyal.

    Goyal's whole computation is one pass over the evidence (m + n
    divisions, mn additions); our method's per-sample core is one
    evaluation of the summarised posterior (n Beta and omega Binomial
    log-densities). Panel (a) compares those core computations; panel
    (b) adds the one-off summarisation cost, both as a single sample and
    amortised over many samples. *)

type row = {
  parents : int;
  objects : int;
  unique_characteristics : int;
  goyal_seconds : float; (** one full Goyal pass *)
  ours_core_seconds : float; (** one posterior evaluation *)
  ours_with_summary_seconds : float; (** summarise + one evaluation *)
  ours_amortised_seconds : float; (** (summarise + k evals) / k *)
}

val run : Scale.t -> Iflow_stats.Rng.t -> row list
val report : Scale.t -> Iflow_stats.Rng.t -> Format.formatter -> row list
