type config = { rate : float; burst : float }

let default_config = { rate = 100.0; burst = 200.0 }

type decision = Granted | Denied of { retry_after_ns : int }

type bucket = { mutable tokens : float; mutable last_ns : int }

type t = {
  config : config;
  buckets : (string, bucket) Hashtbl.t;
  lock : Mutex.t;
}

let create config =
  if not (config.rate > 0.0) then
    invalid_arg "Quota.create: rate must be > 0";
  if not (config.burst >= 1.0) then
    invalid_arg "Quota.create: burst must be >= 1";
  { config; buckets = Hashtbl.create 64; lock = Mutex.create () }

let refill t b ~now_ns =
  (* monotonic input assumed; clamp regardless so a caller mixing clock
     sources cannot mint tokens from a negative interval *)
  let dt_ns = max 0 (now_ns - b.last_ns) in
  b.tokens <-
    Float.min t.config.burst
      (b.tokens +. (float_of_int dt_ns *. 1e-9 *. t.config.rate));
  b.last_ns <- now_ns

let bucket t ~now_ns tenant =
  match Hashtbl.find_opt t.buckets tenant with
  | Some b -> b
  | None ->
    let b = { tokens = t.config.burst; last_ns = now_ns } in
    Hashtbl.add t.buckets tenant b;
    b

let admit t ~now_ns ~tenant =
  Mutex.protect t.lock (fun () ->
      let b = bucket t ~now_ns tenant in
      refill t b ~now_ns;
      if b.tokens >= 1.0 then begin
        b.tokens <- b.tokens -. 1.0;
        Granted
      end
      else
        Denied
          {
            retry_after_ns =
              int_of_float (Float.ceil ((1.0 -. b.tokens) /. t.config.rate *. 1e9));
          })

let tenants t = Mutex.protect t.lock (fun () -> Hashtbl.length t.buckets)

let tokens t ~now_ns ~tenant =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.buckets tenant with
      | None -> t.config.burst
      | Some b ->
        refill t b ~now_ns;
        b.tokens)
