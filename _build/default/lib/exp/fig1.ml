let run scale rng =
  let models = Scale.pick scale ~quick:250 ~full:2000 in
  Synthetic_bucket.run rng ~models ~nodes:50 ~edges:200
    ~estimator:(Synthetic_bucket.Metropolis_hastings (Scale.mcmc scale))
    ~label:"Fig 1 (MH on synthetic betaICMs)"

let report scale rng ppf =
  let bucket = run scale rng in
  Format.fprintf ppf
    "@[<v>== Fig 1: Metropolis-Hastings bucket experiment (synthetic) ==@,%a%a@,@]"
    Iflow_bucket.Bucket.pp bucket
    (fun ppf b ->
      Format.fprintf ppf "summary: %a" Iflow_bucket.Bucket.pp_summary b)
    bucket;
  bucket
