let run scale rng lab =
  let reps = Scale.pick scale ~quick:10 ~full:30 in
  match
    Fig8_9.run scale rng lab ~kind:Iflow_twitter.Unattributed.Url ~radii:[ 4 ]
      ~methods:[ Fig8_9.Ours_gaussian reps ]
  with
  | [ r ] -> r.Fig8_9.bucket
  | _ -> assert false

let report scale rng lab ppf =
  let bucket = run scale rng lab in
  Format.fprintf ppf
    "@[<v>== Fig 10: gaussian-approximation edge sampling (URLs, radius 4) ==@,%a@]"
    Iflow_bucket.Bucket.pp bucket;
  bucket
