lib/exp/fig11.ml: Array Format Iflow_core Iflow_learn Iflow_stats Joint_bayes List Saito Scale Summary Trainer
