module Crc32 = Iflow_fault.Crc32
module Beta = Iflow_stats.Dist.Beta

let magic = "IBL1"
let format_version = 1
let header_size = 28
let default_segment_bytes = 64 * 1024 * 1024

(* A record longer than this is damage, not data: the writer caps
   frames at the segment size, and a length varint decoded from a
   corrupt byte run must not make the reader skip gigabytes. *)
let max_payload = 1 lsl 28

type reason = Bad_crc | Truncated | Bad_varint | Unknown_tag

let reason_label = function
  | Bad_crc -> "bad_crc"
  | Truncated -> "truncated"
  | Bad_varint -> "bad_varint"
  | Unknown_tag -> "unknown_tag"

type error = {
  segment : string;
  offset : int;
  reason : reason;
  detail : string;
}

let error_message e =
  Printf.sprintf "%s@%d: %s (%s)" e.segment e.offset (reason_label e.reason)
    e.detail

exception Corrupt of string
exception Malformed of reason * string

let tag_attributed = 1
let tag_trace = 2
let tag_add_nodes = 3
let tag_add_edges = 4
let tag_remove_edges = 5
let is_graph_change_tag t = t >= tag_add_nodes && t <= tag_remove_edges

let segment_path base k = if k = 0 then base else base ^ "." ^ string_of_int k

(* ----- varints ----- *)

module Varint = struct
  let write b v =
    if v < 0 then invalid_arg "Binlog.Varint.write: negative value";
    let rec go v =
      if v < 0x80 then Buffer.add_char b (Char.unsafe_chr v)
      else begin
        Buffer.add_char b (Char.unsafe_chr (0x80 lor (v land 0x7f)));
        go (v lsr 7)
      end
    in
    go v
end

module Cursor = struct
  type t = { mutable buf : Bytes.t; mutable pos : int; mutable limit : int }

  let create () = { buf = Bytes.empty; pos = 0; limit = 0 }

  let set c buf ~pos ~limit =
    c.buf <- buf;
    c.pos <- pos;
    c.limit <- limit

  let pos c = c.pos
  let remaining c = c.limit - c.pos
  let at_end c = c.pos >= c.limit

  let varint c =
    let v = ref 0 and shift = ref 0 and fin = ref false in
    while not !fin do
      if c.pos >= c.limit then
        raise (Malformed (Truncated, "varint runs past the payload"));
      let byte = Char.code (Bytes.unsafe_get c.buf c.pos) in
      c.pos <- c.pos + 1;
      if !shift > 56 then
        raise (Malformed (Bad_varint, "varint longer than 63 bits"));
      v := !v lor ((byte land 0x7f) lsl !shift);
      shift := !shift + 7;
      if byte < 0x80 then fin := true
    done;
    if !v < 0 then raise (Malformed (Bad_varint, "varint overflows"));
    !v

  let float64 c =
    if c.limit - c.pos < 8 then
      raise (Malformed (Truncated, "float runs past the payload"));
    let v = Int64.float_of_bits (Bytes.get_int64_le c.buf c.pos) in
    c.pos <- c.pos + 8;
    v
end

(* ----- payload encoding ----- *)

let add_ints b vs =
  Varint.write b (List.length vs);
  List.iter (fun v -> Varint.write b v) vs

let add_pairs b pairs =
  Varint.write b (List.length pairs);
  List.iter
    (fun (x, y) ->
      Varint.write b x;
      Varint.write b y)
    pairs

let encode_payload b = function
  | Event.Attributed { sources; nodes; edges } ->
    Buffer.add_char b (Char.chr tag_attributed);
    add_ints b sources;
    add_ints b nodes;
    add_pairs b edges
  | Event.Trace { sources; times } ->
    Buffer.add_char b (Char.chr tag_trace);
    add_ints b sources;
    add_pairs b times
  | Event.Add_nodes { count } ->
    Buffer.add_char b (Char.chr tag_add_nodes);
    Varint.write b count
  | Event.Add_edges { edges; prior } ->
    Buffer.add_char b (Char.chr tag_add_edges);
    add_pairs b edges;
    Buffer.add_int64_le b (Int64.bits_of_float prior.Beta.alpha);
    Buffer.add_int64_le b (Int64.bits_of_float prior.Beta.beta)
  | Event.Remove_edges { edges } ->
    Buffer.add_char b (Char.chr tag_remove_edges);
    add_pairs b edges

(* ----- payload decoding (allocating path) ----- *)

let read_list c ~min_bytes_per_item read_item =
  let k = Cursor.varint c in
  (* each item needs at least [min_bytes_per_item] bytes, so an insane
     length from a corrupt byte fails here instead of looping *)
  if k * min_bytes_per_item > Cursor.remaining c then
    raise (Malformed (Truncated, "list length exceeds the payload"));
  let acc = ref [] in
  for _ = 1 to k do
    acc := read_item c :: !acc
  done;
  List.rev !acc

let read_ints c = read_list c ~min_bytes_per_item:1 Cursor.varint

let read_pairs c =
  read_list c ~min_bytes_per_item:2 (fun c ->
      let x = Cursor.varint c in
      let y = Cursor.varint c in
      (x, y))

let decode_event c =
  if Cursor.at_end c then raise (Malformed (Truncated, "empty payload"));
  let tag = Cursor.varint c in
  if tag = tag_attributed then begin
    let sources = read_ints c in
    let nodes = read_ints c in
    let edges = read_pairs c in
    Event.Attributed { sources; nodes; edges }
  end
  else if tag = tag_trace then begin
    let sources = read_ints c in
    let times = read_pairs c in
    Event.Trace { sources; times }
  end
  else if tag = tag_add_nodes then Event.Add_nodes { count = Cursor.varint c }
  else if tag = tag_add_edges then begin
    let edges = read_pairs c in
    let alpha = Cursor.float64 c in
    let beta = Cursor.float64 c in
    (* same gate as the JSONL decoder: a non-positive (or NaN) prior is
       a malformed event, not a graph change *)
    if not (alpha > 0.0 && beta > 0.0) then
      raise (Malformed (Bad_varint, "add_edges: prior parameters must be > 0"));
    Event.Add_edges { edges; prior = Beta.v alpha beta }
  end
  else if tag = tag_remove_edges then
    Event.Remove_edges { edges = read_pairs c }
  else
    raise (Malformed (Unknown_tag, Printf.sprintf "unknown event tag %d" tag))

(* ----- segment headers ----- *)

let make_header ~segment ~base_events =
  let h = Bytes.make header_size '\000' in
  Bytes.blit_string magic 0 h 0 4;
  Bytes.set h 4 (Char.chr format_version);
  Bytes.set_int64_le h 8 (Int64.of_int segment);
  Bytes.set_int64_le h 16 (Int64.of_int base_events);
  let crc = Crc32.update 0 (Bytes.unsafe_to_string h) 0 24 in
  Bytes.set_int32_le h 24 (Int32.of_int crc);
  h

let validate_header ~path ~index b =
  if Bytes.length b < header_size then
    raise (Corrupt (path ^ ": segment shorter than its header"));
  if Bytes.sub_string b 0 4 <> magic then
    raise (Corrupt (path ^ ": bad magic (not a binary event log)"));
  let v = Char.code (Bytes.get b 4) in
  if v <> format_version then
    raise (Corrupt (Printf.sprintf "%s: unsupported binlog version %d" path v));
  let stored = Int32.to_int (Bytes.get_int32_le b 24) land 0xFFFFFFFF in
  let computed = Crc32.update 0 (Bytes.unsafe_to_string b) 0 24 in
  if stored <> computed then
    raise
      (Corrupt
         (Printf.sprintf "%s: header CRC mismatch (stored %s, computed %s)"
            path (Crc32.to_hex stored) (Crc32.to_hex computed)));
  let seg = Int64.to_int (Bytes.get_int64_le b 8) in
  if seg <> index then
    raise
      (Corrupt
         (Printf.sprintf "%s: segment header says index %d, expected %d" path
            seg index))

let is_binlog path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic 4 with
        | s -> s = magic
        | exception End_of_file -> false)

(* ----- writer ----- *)

module Writer = struct
  type t = {
    base : string;
    segment_bytes : int;
    payload : Buffer.t;
    head : Buffer.t;
    crc_buf : Bytes.t;
    mutable scratch : Bytes.t;
    mutable oc : out_channel;
    mutable seg_index : int;
    mutable seg_pos : int;
    mutable events : int;
    mutable closed : bool;
  }

  let open_segment base index ~base_events =
    let oc = open_out_bin (segment_path base index) in
    output_bytes oc (make_header ~segment:index ~base_events);
    oc

  let create ?(segment_bytes = default_segment_bytes) base =
    if segment_bytes < header_size + 64 then
      invalid_arg "Binlog.Writer.create: segment_bytes too small";
    {
      base;
      segment_bytes;
      payload = Buffer.create 256;
      head = Buffer.create 16;
      crc_buf = Bytes.create 4;
      scratch = Bytes.create 256;
      oc = open_segment base 0 ~base_events:0;
      seg_index = 0;
      seg_pos = header_size;
      events = 0;
      closed = false;
    }

  let events t = t.events
  let segments t = t.seg_index + 1

  let roll t =
    close_out t.oc;
    t.seg_index <- t.seg_index + 1;
    t.oc <- open_segment t.base t.seg_index ~base_events:t.events;
    t.seg_pos <- header_size

  let append t ev =
    if t.closed then invalid_arg "Binlog.Writer.append: writer is closed";
    Buffer.clear t.payload;
    encode_payload t.payload ev;
    let plen = Buffer.length t.payload in
    if plen > max_payload then
      invalid_arg "Binlog.Writer.append: oversized event";
    Buffer.clear t.head;
    Varint.write t.head plen;
    let frame = Buffer.length t.head + plen + 4 in
    (* a frame never spans segments; roll before writing when it would
       overflow (a lone oversized frame still goes out whole) *)
    if t.seg_pos > header_size && t.seg_pos + frame > t.segment_bytes then
      roll t;
    Buffer.output_buffer t.oc t.head;
    Buffer.output_buffer t.oc t.payload;
    if Bytes.length t.scratch < plen then
      t.scratch <- Bytes.create (max plen (2 * Bytes.length t.scratch));
    Buffer.blit t.payload 0 t.scratch 0 plen;
    let crc = Crc32.update 0 (Bytes.unsafe_to_string t.scratch) 0 plen in
    Bytes.set_int32_le t.crc_buf 0 (Int32.of_int crc);
    output_bytes t.oc t.crc_buf;
    t.seg_pos <- t.seg_pos + frame;
    t.events <- t.events + 1

  let close t =
    if not t.closed then begin
      t.closed <- true;
      close_out t.oc
    end
end

(* ----- batches ----- *)

module Batch = struct
  type t = {
    mutable n : int;
    mutable cap : int;
    mutable src : Bytes.t array;
    mutable off : int array;
    mutable len : int array; (* -1 marks a framing-error slot *)
    mutable crc : int array;
    mutable foff : int array;
    mutable seg : string array;
    mutable errors : (int * error) list;
  }

  let create () =
    {
      n = 0;
      cap = 0;
      src = [||];
      off = [||];
      len = [||];
      crc = [||];
      foff = [||];
      seg = [||];
      errors = [];
    }

  let length b = b.n

  let ensure b cap =
    if b.cap < cap then begin
      let ncap = max cap (max 16 (2 * b.cap)) in
      let grow_i a =
        let na = Array.make ncap 0 in
        Array.blit a 0 na 0 b.cap;
        na
      in
      b.src <-
        (let na = Array.make ncap Bytes.empty in
         Array.blit b.src 0 na 0 b.cap;
         na);
      b.seg <-
        (let na = Array.make ncap "" in
         Array.blit b.seg 0 na 0 b.cap;
         na);
      b.off <- grow_i b.off;
      b.len <- grow_i b.len;
      b.crc <- grow_i b.crc;
      b.foff <- grow_i b.foff;
      b.cap <- ncap
    end
end

let frame_len (b : Batch.t) i = b.len.(i)
let frame_tag (b : Batch.t) i = Char.code (Bytes.get b.src.(i) b.off.(i))
let frame_bytes (b : Batch.t) i = b.src.(i)
let frame_off (b : Batch.t) i = b.off.(i)
let frame_segment (b : Batch.t) i = b.seg.(i)
let frame_offset (b : Batch.t) i = b.foff.(i)
let frame_error (b : Batch.t) i = List.assoc_opt i b.errors

let check_crc (b : Batch.t) i =
  Crc32.update 0 (Bytes.unsafe_to_string b.src.(i)) b.off.(i) b.len.(i)
  = b.crc.(i)

let crc_error (b : Batch.t) i =
  {
    segment = b.seg.(i);
    offset = b.foff.(i);
    reason = Bad_crc;
    detail =
      Printf.sprintf "payload CRC mismatch (stored %s)" (Crc32.to_hex b.crc.(i));
  }

let decode_frame (b : Batch.t) i =
  match frame_error b i with
  | Some e -> Error e
  | None ->
    if not (check_crc b i) then Error (crc_error b i)
    else begin
      let c = Cursor.create () in
      Cursor.set c b.src.(i) ~pos:b.off.(i) ~limit:(b.off.(i) + b.len.(i));
      match decode_event c with
      | ev ->
        if Cursor.at_end c then Ok ev
        else
          Error
            {
              segment = b.seg.(i);
              offset = b.foff.(i);
              reason = Bad_varint;
              detail = "trailing bytes after the event body";
            }
      | exception Malformed (reason, detail) ->
        Error { segment = b.seg.(i); offset = b.foff.(i); reason; detail }
    end

(* ----- reader ----- *)

module Reader = struct
  type t = {
    base : string;
    mutable buf : Bytes.t;
    mutable blen : int;
    mutable pos : int;
    mutable seg_path : string;
    mutable next_index : int;
    mutable exhausted : bool;
    mutable events : int;
    mutable scratch : Batch.t option; (* lazily built, for [next]/[skip] *)
  }

  let load_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        let b = Bytes.create len in
        really_input ic b 0 len;
        b)

  let open_ base =
    let b = load_file base in
    validate_header ~path:base ~index:0 b;
    {
      base;
      buf = b;
      blen = Bytes.length b;
      pos = header_size;
      seg_path = base;
      next_index = 1;
      exhausted = false;
      events = 0;
      scratch = None;
    }

  let advance r =
    let path = segment_path r.base r.next_index in
    if Sys.file_exists path then begin
      let b = load_file path in
      validate_header ~path ~index:r.next_index b;
      r.buf <- b;
      r.blen <- Bytes.length b;
      r.pos <- header_size;
      r.seg_path <- path;
      r.next_index <- r.next_index + 1
    end
    else r.exhausted <- true

  let read_len r =
    let v = ref 0 and shift = ref 0 and fin = ref false in
    while not !fin do
      if r.pos >= r.blen then
        raise
          (Malformed (Truncated, "record length runs past the segment end"));
      let byte = Char.code (Bytes.unsafe_get r.buf r.pos) in
      r.pos <- r.pos + 1;
      if !shift > 56 then
        raise (Malformed (Bad_varint, "record length longer than 63 bits"));
      v := !v lor ((byte land 0x7f) lsl !shift);
      shift := !shift + 7;
      if byte < 0x80 then fin := true
    done;
    if !v < 0 then raise (Malformed (Bad_varint, "record length overflows"));
    !v

  let framing_error r (b : Batch.t) i ~start reason detail =
    b.src.(i) <- Bytes.empty;
    b.off.(i) <- 0;
    b.len.(i) <- -1;
    b.crc.(i) <- 0;
    b.foff.(i) <- start;
    b.seg.(i) <- r.seg_path;
    b.errors <-
      (i, { segment = r.seg_path; offset = start; reason; detail })
      :: b.errors;
    (* the frame chain is unrecoverable past this point — consume the
       rest of the segment as this one quarantined event and resume at
       the next segment boundary *)
    r.pos <- r.blen

  let read_batch r (b : Batch.t) ~max =
    if max < 1 then invalid_arg "Binlog.Reader.read_batch: max must be >= 1";
    b.n <- 0;
    b.errors <- [];
    Batch.ensure b max;
    while b.n < max && not r.exhausted do
      if r.pos >= r.blen then advance r
      else begin
        let start = r.pos in
        let i = b.n in
        (match read_len r with
        | len when len >= 1 && len <= max_payload && r.pos + len + 4 <= r.blen
          ->
          b.src.(i) <- r.buf;
          b.off.(i) <- r.pos;
          b.len.(i) <- len;
          b.crc.(i) <-
            Int32.to_int (Bytes.get_int32_le r.buf (r.pos + len))
            land 0xFFFFFFFF;
          b.foff.(i) <- start;
          b.seg.(i) <- r.seg_path;
          r.pos <- r.pos + len + 4
        | len ->
          let reason, detail =
            if len < 1 then (Bad_varint, "zero-length record")
            else if len > max_payload then
              (Bad_varint, Printf.sprintf "implausible record length %d" len)
            else
              ( Truncated,
                Printf.sprintf "record of %d bytes runs past the segment end"
                  len )
          in
          framing_error r b i ~start reason detail
        | exception Malformed (reason, detail) ->
          framing_error r b i ~start reason detail);
        b.n <- b.n + 1;
        r.events <- r.events + 1
      end
    done;
    b.n > 0

  let scratch_batch r =
    match r.scratch with
    | Some b -> b
    | None ->
      let b = Batch.create () in
      r.scratch <- Some b;
      b

  let next r =
    let b = scratch_batch r in
    if read_batch r b ~max:1 then Some (decode_frame b 0) else None

  let skip r n =
    if n < 0 then invalid_arg "Binlog.Reader.skip: negative count";
    let b = scratch_batch r in
    let remaining = ref n in
    let progressing = ref true in
    while !remaining > 0 && !progressing do
      if read_batch r b ~max:(min !remaining 4096) then
        remaining := !remaining - b.Batch.n
      else progressing := false
    done;
    n - !remaining

  let events_seen r = r.events
  let segment r = r.seg_path
end
