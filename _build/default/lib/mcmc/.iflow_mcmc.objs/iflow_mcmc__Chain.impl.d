lib/mcmc/chain.ml: Array Conditions Iflow_core Iflow_stats
