(** Evidence about past information flows (paper Sections II-A and V).

    {b Attributed} evidence records, per information object, the full
    cascade: source nodes, the nodes the object reached, and the edges it
    traversed — "we can directly attribute an incident node as cause".

    {b Unattributed} evidence records only {i activation times}: who held
    the object and in what order, not which neighbour passed it on. *)

type attributed_object = {
  sources : int list; (** [V_i^+]: where the object originated *)
  active_nodes : bool array; (** [V_i]: everyone who held it (incl. sources) *)
  active_edges : bool array; (** [E_i]: edges it traversed *)
}

type attributed = attributed_object list

val attributed_object_is_consistent :
  Iflow_graph.Digraph.t -> attributed_object -> bool
(** Sanity check used by tests and by the Twitter preprocessing: array
    sizes match the graph, sources are active, every active edge has
    active endpoints, and every non-source active node has an active
    incoming edge. *)

type trace = {
  trace_sources : int list;
  times : int array;
      (** [times.(v)] is the activation step of node [v], or [-1] when the
          object never reached [v]. Sources activate at step 0. *)
}

type unattributed = trace list

val trace_of_active : sources:int list -> times:(int * int) list -> n:int -> trace
(** Build a trace over [n] nodes from an association list of
    (node, activation time) pairs; sources get time 0 automatically. *)

val trace_is_consistent : Iflow_graph.Digraph.t -> trace -> bool
(** Times are [>= -1], sources have time 0, and every activated
    non-source node has an in-neighbour that activated strictly
    earlier. *)

val forget_attribution : Iflow_graph.Digraph.t -> attributed_object -> trace
(** Project an attributed cascade down to its activation times (BFS
    depth through the active edges) — how unattributed evidence is
    generated from ground-truth cascades in the synthetic experiments. *)
