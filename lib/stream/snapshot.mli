(** Model versioning for the streaming pipeline: immutable published
    versions with monotonic ids and content digests, crash-safe rotated
    [.bicm] checkpoints carrying a replay offset, and hot-swap into a
    running {!Iflow_engine.Engine}.

    The accumulator mutates continuously; what the rest of the system
    sees are the {e versions} published here. Each version is an
    immutable frozen model plus its {!Iflow_core.Beta_icm.digest} and
    the log offset (lines consumed) it reflects. Swapping a version
    into an engine evicts the retired version's cache entries by
    digest; queries already running finish on the version they
    captured.

    {b Durability.} Checkpoints are written atomically
    ({!Iflow_io.Model_io} v3: tmp + fsync + rename + CRC-32 footer) and
    rotated ([path], [path.1], ..., newest first), with writes wrapped
    in a {!Iflow_fault.Retry} policy. {!recover} walks the rotated set
    newest-first and returns the first checkpoint that loads and
    verifies, so a crash mid-write — or a torn copy — costs at most one
    checkpoint interval of replay, never the run. *)

type version = {
  id : int;          (** monotonic, starting at 0 for the seed model *)
  digest : string;   (** {!Iflow_core.Beta_icm.digest} of [model] *)
  model : Iflow_core.Beta_icm.t;
  offset : int;      (** event-log lines consumed when published *)
}

type t

val create :
  ?checkpoint_path:string -> ?keep:int -> ?retry:Iflow_fault.Retry.policy ->
  ?id:int -> ?offset:int -> Iflow_core.Beta_icm.t -> t
(** The given seed model becomes the current version — id 0 at offset 0
    unless resuming from a {!recover}ed checkpoint, whose id and offset
    continue the original numbering. When [checkpoint_path] is set,
    {!checkpoint} writes there, retaining [keep] total generations
    (default 1: just the current file, no rotation) and retrying failed
    writes per [retry] (default {!Iflow_fault.Retry.default}). Raises
    [Invalid_argument] on negative id/offset or [keep < 1]. *)

val current : t -> version

val published : t -> int
(** The current version id. *)

val checkpoints_written : t -> int

val publish : t -> Iflow_core.Beta_icm.t -> offset:int -> version
(** Freeze a new current version with the next id. *)

val swap_into : t -> Iflow_engine.Engine.t -> int
(** Hot-swap the engine onto the current version's expected ICM via
    {!Iflow_engine.Engine.swap}; returns the evicted cache-entry
    count. *)

val checkpoint : t -> unit
(** Rotate the checkpoint set down one generation, then atomically
    write the current version to [checkpoint_path] as a v3 [.bicm]
    whose header records [digest], [offset] and [version] — everything
    {!recover} needs. Transient write failures are retried per the
    [retry] policy; the exception of the final failed attempt
    propagates (the rotation has already preserved the previous
    generation, so a failed write never destroys a good checkpoint).
    No-op without a path. Failpoints: [snapshot.checkpoint] before each
    attempt, plus [model_io.write]/[fsync]/[rename] inside the atomic
    write. *)

val recover :
  ?on_skip:(path:string -> reason:string -> unit) ->
  string -> Iflow_core.Beta_icm.t * int * int
(** [recover path] loads the newest valid checkpoint of the rotated set
    ([path], then [path.1], ...) and returns [(model, offset, version)].
    Replay resumes by skipping [offset] lines of the event log. Damaged
    generations (truncated, bit-flipped, digest mismatch, missing
    offset/version fields) are reported to [on_skip] with the
    underlying error — which names the file and byte offset of the
    damage, see {!Iflow_io.Model_io} — counted in
    [iflow_stream_recover_fallbacks_total], and skipped. The last
    candidate's error propagates as-is when nothing in the set is
    loadable. *)
