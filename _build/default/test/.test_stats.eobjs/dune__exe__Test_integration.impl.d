test/test_integration.ml: Alcotest Array Beta_icm Cascade Evidence Generator Icm Iflow_bucket Iflow_core Iflow_graph Iflow_learn Iflow_mcmc Iflow_stats Iflow_twitter List Printf Summary
