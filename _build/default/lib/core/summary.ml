module Digraph = Iflow_graph.Digraph

type entry = { parents : int array; count : int; leaks : int }
type t = { sink : int; entries : entry list }

let characteristic_key parents =
  String.concat "," (Array.to_list (Array.map string_of_int parents))

let is_strictly_sorted a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i - 1) >= a.(i) then ok := false
  done;
  !ok

(* Accumulate (count, leaks) per characteristic into a table, then
   freeze. *)
let freeze sink table =
  let entries =
    Hashtbl.fold
      (fun _key (parents, count, leaks) acc ->
        { parents; count = !count; leaks = !leaks } :: acc)
      table []
  in
  let entries =
    List.sort (fun a b -> compare a.parents b.parents) entries
  in
  { sink; entries }

let observe table parents leaked =
  let key = characteristic_key parents in
  let _, count, leaks =
    match Hashtbl.find_opt table key with
    | Some row -> row
    | None ->
      let row = (parents, ref 0, ref 0) in
      Hashtbl.add table key row;
      row
  in
  incr count;
  if leaked then incr leaks

(* Characteristic of one trace for sink k: in-neighbours active strictly
   before k's activation time, or (when k never activated) active at all. *)
let trace_characteristic g (tr : Evidence.trace) ~sink =
  let t_sink = tr.times.(sink) in
  let parents =
    List.filter
      (fun u ->
        let t_u = tr.times.(u) in
        t_u >= 0 && (t_sink < 0 || t_u < t_sink))
      (Digraph.in_neighbours g sink)
  in
  let parents = Array.of_list (List.sort_uniq compare parents) in
  (parents, t_sink >= 0)

let build g traces ~sink =
  let table = Hashtbl.create 64 in
  List.iter
    (fun (tr : Evidence.trace) ->
      if not (List.mem sink tr.trace_sources) then begin
        let parents, leaked = trace_characteristic g tr ~sink in
        if Array.length parents > 0 then observe table parents leaked
      end)
    traces;
  freeze sink table

let build_all g traces =
  Array.init (Digraph.n_nodes g) (fun sink -> build g traces ~sink)

let of_table ~sink rows =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (parents, count, leaks) ->
      if count < 0 || leaks < 0 || leaks > count then
        invalid_arg "Summary.of_table: bad counts";
      if not (is_strictly_sorted parents) then
        invalid_arg "Summary.of_table: characteristic not strictly sorted";
      if Array.length parents = 0 then
        invalid_arg "Summary.of_table: empty characteristic";
      let key = characteristic_key parents in
      if Hashtbl.mem table key then
        invalid_arg "Summary.of_table: duplicate characteristic";
      Hashtbl.add table key (parents, ref count, ref leaks))
    rows;
  freeze sink table

let n_entries t = List.length t.entries
let total_observations t = List.fold_left (fun a e -> a + e.count) 0 t.entries
let total_leaks t = List.fold_left (fun a e -> a + e.leaks) 0 t.entries

let parents_union t =
  let module IS = Set.Make (Int) in
  let set =
    List.fold_left
      (fun acc e -> Array.fold_left (fun acc p -> IS.add p acc) acc e.parents)
      IS.empty t.entries
  in
  Array.of_list (IS.elements set)

let unambiguous t =
  List.filter_map
    (fun e ->
      if Array.length e.parents = 1 then Some (e.parents.(0), e.leaks, e.count)
      else None)
    t.entries

let characteristic_prob prob parents =
  let survive =
    Array.fold_left (fun acc j -> acc *. (1.0 -. prob j)) 1.0 parents
  in
  1.0 -. survive

let log_term p n l =
  let lf = float_of_int l and nf = float_of_int n in
  let pos = if l = 0 then 0.0 else lf *. Float.log (Float.max p 1e-300) in
  let neg =
    if n = l then 0.0
    else (nf -. lf) *. Float.log (Float.max (1.0 -. p) 1e-300)
  in
  pos +. neg

let log_likelihood t ~prob =
  List.fold_left
    (fun acc e ->
      acc +. log_term (characteristic_prob prob e.parents) e.count e.leaks)
    0.0 t.entries

let log_likelihood_exact t ~prob =
  List.fold_left
    (fun acc e ->
      acc
      +. Iflow_stats.Special.log_choose e.count e.leaks
      +. log_term (characteristic_prob prob e.parents) e.count e.leaks)
    0.0 t.entries

let pp ppf t =
  Format.fprintf ppf "summary(sink %d)@." t.sink;
  Format.fprintf ppf "%-20s %8s %8s@." "characteristic" "count" "leaks";
  List.iter
    (fun e ->
      let cs =
        String.concat " "
          (Array.to_list (Array.map string_of_int e.parents))
      in
      Format.fprintf ppf "{%s}%s %8d %8d@." cs
        (String.make (max 0 (18 - String.length cs)) ' ')
        e.count e.leaks)
    t.entries
