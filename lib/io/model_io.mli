(** Plain-text serialisation of models and corpora, so the CLI can pass
    artifacts between subcommands.

    betaICM format ([.bicm], v2):
    {v
    # bicm-v2 digest=<fnv-hex> [key=value ...]
    bicm <n_nodes>
    <src> <dst> <alpha> <beta>      (one line per edge)
    v}

    ICM format ([.icm]): same with a single probability column and an
    [# icm-v2] header. Legacy headerless files are still accepted.

    The header digest is the model's {!Iflow_core.Beta_icm.digest} /
    {!Iflow_core.Icm.digest}; loaders recompute it and raise [Failure]
    on a mismatch, so a corrupted file — or a streaming checkpoint
    replayed against the wrong model or event log — fails loudly. The
    remaining [key=value] fields are free-form metadata (the streaming
    layer records its event offset and version id there).

    Tweets are tab-separated [id author time text] lines, one per tweet
    (tweet text never contains tabs or newlines).

    All loaders raise [Failure] with a line-numbered message on
    malformed input. *)

val save_beta_icm :
  ?meta:(string * string) list -> string -> Iflow_core.Beta_icm.t -> unit
(** Writes a v2 file. [meta] keys and values must be non-empty and free
    of spaces, [=] and newlines; the [digest] key is reserved. Raises
    [Invalid_argument] otherwise. *)

val load_beta_icm : string -> Iflow_core.Beta_icm.t

val load_beta_icm_meta :
  string -> Iflow_core.Beta_icm.t * (string * string) list
(** Also return the header's metadata fields (including [digest];
    empty for a legacy file). *)

val save_icm :
  ?meta:(string * string) list -> string -> Iflow_core.Icm.t -> unit

val load_icm : string -> Iflow_core.Icm.t
val load_icm_meta : string -> Iflow_core.Icm.t * (string * string) list

val save_tweets : string -> Iflow_twitter.Tweet.t list -> unit
val load_tweets : string -> Iflow_twitter.Tweet.t list

val save_names : string -> string array -> unit
(** One name per line; line number = node id. *)

val load_names : string -> string array
