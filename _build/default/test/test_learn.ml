open Iflow_core
open Iflow_learn
module Digraph = Iflow_graph.Digraph
module Rng = Iflow_stats.Rng
module Beta = Iflow_stats.Dist.Beta
module Descriptive = Iflow_stats.Descriptive

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* Paper Table I, nodes A=0, B=1, C=2, sink k=3. *)
let table_one () =
  Summary.of_table ~sink:3
    [ ([| 0; 1 |], 5, 1); ([| 1; 2 |], 50, 15); ([| 0; 2 |], 10, 2) ]

(* Paper Table II: the multimodal example behind Fig 11. *)
let table_two () =
  Summary.of_table ~sink:3
    [ ([| 0; 1 |], 100, 50); ([| 1; 2 |], 100, 50); ([| 0; 1; 2 |], 100, 75) ]

(* ---------- Trainer helpers ---------- *)

let test_trainer_lookup_and_rmse () =
  let e =
    {
      Trainer.sink = 3;
      parents = [| 0; 2; 5 |];
      mean = [| 0.1; 0.5; 0.9 |];
      std = [| 0.0; 0.0; 0.0 |];
    }
  in
  Alcotest.(check (option int)) "index" (Some 1) (Trainer.parent_index e 2);
  Alcotest.(check (option int)) "missing" None (Trainer.parent_index e 3);
  Alcotest.(check (option (float 1e-9))) "mean_for" (Some 0.9)
    (Trainer.mean_for e 5);
  check_close "rmse zero" 0.0
    (Trainer.rmse_vs_truth e ~truth:(fun p -> e.Trainer.mean.(Option.get (Trainer.parent_index e p))));
  check_close ~eps:1e-12 "rmse known" 0.1
    (Trainer.rmse_vs_truth e ~truth:(fun p ->
         match p with 0 -> 0.2 | 2 -> 0.4 | _ -> 1.0))

let test_trainer_apply_to_icm () =
  let g = Digraph.of_edges ~nodes:3 [ (0, 2); (1, 2) ] in
  let base = Icm.const g 0.0 in
  let e =
    {
      Trainer.sink = 2;
      parents = [| 0; 1 |];
      mean = [| 0.3; 0.7 |];
      std = [| 0.0; 0.0 |];
    }
  in
  let icm = Trainer.apply_to_icm base [ e ] in
  check_close "edge 0" 0.3 (Icm.prob icm 0);
  check_close "edge 1" 0.7 (Icm.prob icm 1);
  let mean, std =
    Trainer.mean_std_arrays g ~default_mean:0.5 ~default_std:0.1 [ e ]
  in
  check_close "mean arr" 0.7 mean.(1);
  check_close "std arr" 0.0 std.(1)

(* ---------- Goyal ---------- *)

let test_goyal_table_one () =
  let est = Goyal.train (table_one ()) in
  (* credit_A = 1/2 (from {A,B}) + 2/2 (from {A,C}) = 1.5; exposure 15 *)
  Alcotest.(check (option (float 1e-9))) "A" (Some 0.1) (Trainer.mean_for est 0);
  (* credit_B = 1/2 + 15/2 = 8; exposure 55 *)
  Alcotest.(check (option (float 1e-9))) "B" (Some (8.0 /. 55.0))
    (Trainer.mean_for est 1);
  (* credit_C = 15/2 + 2/2 = 8.5; exposure 60 *)
  Alcotest.(check (option (float 1e-9))) "C" (Some (8.5 /. 60.0))
    (Trainer.mean_for est 2)

let test_goyal_unambiguous_exact () =
  (* with only singleton characteristics, Goyal is the empirical rate *)
  let s = Summary.of_table ~sink:1 [ ([| 0 |], 20, 14) ] in
  let est = Goyal.train s in
  Alcotest.(check (option (float 1e-9))) "rate" (Some 0.7)
    (Trainer.mean_for est 0)

(* Goyal's credit rule biases towards the mean of all incident edges:
   with one strong and one weak parent always observed together, both
   get the same estimate. *)
let test_goyal_bias_on_joint_observations () =
  let s = Summary.of_table ~sink:2 [ ([| 0; 1 |], 100, 80) ] in
  let est = Goyal.train s in
  Alcotest.(check (option (float 1e-9))) "equal credit 0" (Some 0.4)
    (Trainer.mean_for est 0);
  Alcotest.(check (option (float 1e-9))) "equal credit 1" (Some 0.4)
    (Trainer.mean_for est 1)

(* ---------- Filtered ---------- *)

let test_filtered () =
  let s =
    Summary.of_table ~sink:2
      [ ([| 0 |], 8, 6); ([| 0; 1 |], 100, 90) ]
  in
  let est = Filtered.train s in
  (* parent 0: Beta(7, 3) posterior mean 0.7 *)
  Alcotest.(check (option (float 1e-9))) "unambiguous used" (Some 0.7)
    (Trainer.mean_for est 0);
  (* parent 1 has no unambiguous rows: uniform prior *)
  Alcotest.(check (option (float 1e-9))) "prior fallback" (Some 0.5)
    (Trainer.mean_for est 1);
  let b = Filtered.beta_for s ~parent:0 in
  check_close "alpha" 7.0 b.Beta.alpha;
  check_close "beta" 3.0 b.Beta.beta

(* ---------- Saito EM ---------- *)

let test_saito_single_parent_fixed_point () =
  let s = Summary.of_table ~sink:1 [ ([| 0 |], 10, 7) ] in
  let est = Saito.train s in
  Alcotest.(check (option (float 1e-6))) "mle" (Some 0.7)
    (Trainer.mean_for est 0)

(* EM must reach a stationary point of the summarised likelihood: no
   coordinate-wise improvement. *)
let test_saito_reaches_local_maximum () =
  let s = table_two () in
  let est =
    Saito.train
      ~options:{ Saito.default_options with max_iterations = 50000 }
      s
  in
  let kappa = est.Trainer.mean in
  let prob i = kappa.(i) in
  let base = Summary.log_likelihood s ~prob in
  Array.iteri
    (fun i k ->
      List.iter
        (fun delta ->
          let perturbed j = if j = i then Float.max 0.001 (Float.min 0.999 (k +. delta)) else kappa.(j) in
          let ll = Summary.log_likelihood s ~prob:perturbed in
          if ll > base +. 1e-6 then
            Alcotest.failf "coordinate %d improvable by %g (%.9f > %.9f)" i
              delta ll base)
        [ -0.01; 0.01 ])
    kappa

let test_saito_multimodal_restarts () =
  (* Table II: restarts must find at least two distinct local maxima. *)
  let rng = Rng.create 71 in
  let results = Saito.restarts rng ~n:60 (table_two ()) in
  let firsts =
    List.map (fun (e : Trainer.estimate) -> Float.round (e.mean.(0) *. 50.0)) results
  in
  let distinct = List.sort_uniq compare firsts in
  Alcotest.(check bool)
    (Printf.sprintf "multiple modes (%d distinct)" (List.length distinct))
    true
    (List.length distinct >= 2)

let test_saito_discrete_summary () =
  (* Graph 0 -> 2, 1 -> 2. Trace: node 0 at t=0, node 1 at t=1, sink 2
     at t=2. Discrete-time: at step 1 the candidate set {0} failed; at
     step 2 the set {1} leaked. *)
  let g = Digraph.of_edges ~nodes:3 [ (0, 2); (1, 2) ] in
  let tr =
    Evidence.trace_of_active ~sources:[ 0 ] ~times:[ (1, 1); (2, 2) ] ~n:3
  in
  let s = Saito.discrete_summary g [ tr ] ~sink:2 in
  let find parents =
    List.find_opt (fun (e : Summary.entry) -> e.parents = parents) s.entries
  in
  (match find [| 0 |] with
  | Some e ->
    Alcotest.(check int) "{0} count" 1 e.count;
    Alcotest.(check int) "{0} leaks" 0 e.leaks
  | None -> Alcotest.fail "{0} missing");
  (match find [| 1 |] with
  | Some e ->
    Alcotest.(check int) "{1} count" 1 e.count;
    Alcotest.(check int) "{1} leaks" 1 e.leaks
  | None -> Alcotest.fail "{1} missing");
  let est = Saito.train_discrete g [ tr ] ~sink:2 in
  (* single observation each: MLE 0 for parent 0, 1 for parent 1 *)
  (match Trainer.mean_for est 0 with
  | Some p -> Alcotest.(check bool) "parent 0 low" true (p < 0.01)
  | None -> Alcotest.fail "parent 0 missing");
  match Trainer.mean_for est 1 with
  | Some p -> Alcotest.(check bool) "parent 1 high" true (p > 0.99)
  | None -> Alcotest.fail "parent 1 missing"

(* ---------- Joint Bayes ---------- *)

let jb_options =
  { Joint_bayes.default_options with burn_in = 400; samples = 800; thin = 3 }

let test_joint_bayes_single_parent_posterior () =
  (* summary {0}: 10 observations, 7 leaks; uniform prior -> Beta(8,4) *)
  let s = Summary.of_table ~sink:1 [ ([| 0 |], 10, 7) ] in
  let rng = Rng.create 81 in
  let result = Joint_bayes.run ~options:jb_options rng s in
  let est = result.Joint_bayes.estimate in
  check_close ~eps:0.03 "posterior mean" (8.0 /. 12.0) est.Trainer.mean.(0);
  let b = Beta.v 8.0 4.0 in
  check_close ~eps:0.02 "posterior std" (Beta.std b) est.Trainer.std.(0);
  Alcotest.(check bool) "acceptance reasonable" true
    (result.Joint_bayes.acceptance > 0.1)

let test_joint_bayes_prior_formulations_agree () =
  let s =
    Summary.of_table ~sink:2
      [ ([| 0 |], 30, 21); ([| 1 |], 10, 2); ([| 0; 1 |], 40, 30) ]
  in
  let uniform =
    Joint_bayes.train ~options:jb_options (Rng.create 82) s
  in
  let informed =
    Joint_bayes.train
      ~options:{ jb_options with prior = `Informed }
      (Rng.create 83) s
  in
  Array.iteri
    (fun i m ->
      check_close ~eps:0.04
        (Printf.sprintf "parent %d" i)
        m informed.Trainer.mean.(i))
    uniform.Trainer.mean

let test_joint_bayes_log_posterior () =
  let s = Summary.of_table ~sink:1 [ ([| 0 |], 10, 7) ] in
  let lp =
    Joint_bayes.log_posterior
      ~prior:(fun _ -> Beta.uniform)
      ~ambiguous_only:false s [| 0.7 |]
  in
  check_close ~eps:1e-9 "bernoulli likelihood + flat prior"
    ((7.0 *. Float.log 0.7) +. (3.0 *. Float.log 0.3))
    lp

let test_joint_bayes_table_two_spread () =
  (* Fig 11: the posterior is broad/multimodal; samples should span a
     wide range rather than collapsing to a point. *)
  let rng = Rng.create 84 in
  let result =
    Joint_bayes.run
      ~options:{ jb_options with samples = 1500 }
      rng (table_two ())
  in
  let spread_a = result.Joint_bayes.estimate.Trainer.std.(0) in
  Alcotest.(check bool)
    (Printf.sprintf "posterior spread %.3f" spread_a)
    true (spread_a > 0.05)

(* ---------- Contextual (discussion extension) ---------- *)

let test_contextual_recovers_both_regimes () =
  let rng = Rng.create 87 in
  let g = Iflow_graph.Gen.gnm rng ~nodes:12 ~edges:40 in
  (* originals are forwarded eagerly, relays reluctantly *)
  let source_icm = Icm.const g 0.7 in
  let relay_icm = Icm.const g 0.15 in
  let objects =
    List.init 4000 (fun _ ->
        Cascade.run_contextual rng ~source_icm ~relay_icm
          ~sources:[ Rng.int rng 12 ])
  in
  let model = Contextual.train g objects in
  (* per-edge means, restricted to well-observed edges *)
  let check context truth =
    let errors = ref [] in
    for e = 0 to 39 do
      let b = Contextual.edge_beta model context e in
      if b.Beta.alpha +. b.Beta.beta > 100.0 then
        errors := Float.abs (Beta.mean b -. truth) :: !errors
    done;
    Alcotest.(check bool) "has well-observed edges" true
      (List.length !errors > 5);
    let worst = List.fold_left Float.max 0.0 !errors in
    Alcotest.(check bool)
      (Printf.sprintf "max error %.3f" worst)
      true (worst < 0.1)
  in
  check Contextual.From_source 0.7;
  check Contextual.From_relay 0.15;
  (* the pooled model sits between the two regimes and would mislead *)
  let pooled = Contextual.pooled model in
  let gap_seen = ref false in
  for e = 0 to 39 do
    if Contextual.context_gap model e > 0.3 then gap_seen := true;
    let m = Beta.mean (Iflow_core.Beta_icm.edge_beta pooled e) in
    if m > 0.75 || m < 0.05 then
      Alcotest.failf "pooled mean %.3f outside blended range" m
  done;
  Alcotest.(check bool) "context gap detected" true !gap_seen

let test_contextual_pooled_equals_plain_training () =
  let rng = Rng.create 88 in
  let g = Iflow_graph.Gen.gnm rng ~nodes:8 ~edges:20 in
  let icm = Icm.create g (Array.init 20 (fun _ -> Rng.uniform rng)) in
  let objects =
    List.init 300 (fun _ -> Cascade.run rng icm ~sources:[ Rng.int rng 8 ])
  in
  let contextual = Contextual.pooled (Contextual.train g objects) in
  let plain = Iflow_core.Beta_icm.train_attributed g objects in
  for e = 0 to 19 do
    let a = Iflow_core.Beta_icm.edge_beta contextual e in
    let b = Iflow_core.Beta_icm.edge_beta plain e in
    check_close "alpha" b.Beta.alpha a.Beta.alpha;
    check_close "beta" b.Beta.beta a.Beta.beta
  done

(* ---------- Recovery comparison (the Fig 7 claim, in miniature) ---------- *)

let traces_for_star rng icm ~objects =
  let g = Icm.graph icm in
  let n = Digraph.n_nodes g in
  let d = n - 1 in
  List.init objects (fun _ ->
      (* random nonempty subset of parents is active as sources *)
      let sources =
        List.filter (fun _ -> Rng.bool rng) (List.init d (fun j -> j))
      in
      let sources = if sources = [] then [ Rng.int rng d ] else sources in
      Iflow_core.Cascade.run_trace rng icm ~sources)

let test_methods_recover_ground_truth () =
  let probs = [| 0.15; 0.68; 0.83 |] in
  let g, icm, sink = Generator.in_star_icm ~probs in
  let rng = Rng.create 85 in
  let traces = traces_for_star rng icm ~objects:4000 in
  let summary = Summary.build g traces ~sink in
  let truth j = probs.(j) in
  let ours = Joint_bayes.train ~options:jb_options (Rng.create 86) summary in
  let goyal = Goyal.train summary in
  let saito = Saito.train summary in
  let rmse_ours = Trainer.rmse_vs_truth ours ~truth in
  let rmse_goyal = Trainer.rmse_vs_truth goyal ~truth in
  let rmse_saito = Trainer.rmse_vs_truth saito ~truth in
  Alcotest.(check bool)
    (Printf.sprintf "ours accurate (%.3f)" rmse_ours)
    true (rmse_ours < 0.06);
  Alcotest.(check bool)
    (Printf.sprintf "saito accurate (%.3f)" rmse_saito)
    true (rmse_saito < 0.08);
  Alcotest.(check bool)
    (Printf.sprintf "ours (%.3f) beats goyal (%.3f)" rmse_ours rmse_goyal)
    true
    (rmse_ours < rmse_goyal)

let prop_goyal_estimates_in_unit_interval =
  QCheck.Test.make ~count:60 ~name:"goyal estimates lie in [0,1]"
    QCheck.(
      list_of_size Gen.(1 -- 6)
        (triple (int_range 0 4) (int_range 1 50) (int_range 0 50)))
    (fun rows ->
      (* build a valid random table: distinct characteristics *)
      let seen = Hashtbl.create 8 in
      let rows =
        List.filter_map
          (fun (p, count, leaks) ->
            let parents = [| p; p + 5 |] in
            if Hashtbl.mem seen p then None
            else begin
              Hashtbl.add seen p ();
              Some (parents, count, min leaks count)
            end)
          rows
      in
      match rows with
      | [] -> true
      | _ ->
        let s = Summary.of_table ~sink:99 rows in
        let est = Goyal.train s in
        Array.for_all (fun m -> m >= 0.0 && m <= 1.0) est.Trainer.mean)

let prop_saito_estimates_in_unit_interval =
  QCheck.Test.make ~count:40 ~name:"saito EM estimates stay in (0,1)"
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 2 + Rng.int rng 3 in
      let probs = Array.init d (fun _ -> Rng.uniform rng) in
      let g, icm, sink = Generator.in_star_icm ~probs in
      let traces = traces_for_star rng icm ~objects:50 in
      let s = Summary.build g traces ~sink in
      if Summary.n_entries s = 0 then true
      else begin
        let est = Saito.train s in
        Array.for_all (fun m -> m >= 0.0 && m <= 1.0) est.Trainer.mean
      end)

let qcheck tests =
  List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0 |])) tests

let () =
  Alcotest.run "iflow_learn"
    [
      ( "trainer",
        [
          Alcotest.test_case "lookup and rmse" `Quick test_trainer_lookup_and_rmse;
          Alcotest.test_case "apply to icm" `Quick test_trainer_apply_to_icm;
        ] );
      ( "goyal",
        [
          Alcotest.test_case "table I" `Quick test_goyal_table_one;
          Alcotest.test_case "unambiguous exact" `Quick test_goyal_unambiguous_exact;
          Alcotest.test_case "joint-observation bias" `Quick test_goyal_bias_on_joint_observations;
        ]
        @ qcheck [ prop_goyal_estimates_in_unit_interval ] );
      ("filtered", [ Alcotest.test_case "filtered rule" `Quick test_filtered ]);
      ( "saito",
        [
          Alcotest.test_case "single parent fixed point" `Quick test_saito_single_parent_fixed_point;
          Alcotest.test_case "reaches local maximum" `Quick test_saito_reaches_local_maximum;
          Alcotest.test_case "multimodal restarts (Fig 11)" `Quick test_saito_multimodal_restarts;
          Alcotest.test_case "discrete summary" `Quick test_saito_discrete_summary;
        ]
        @ qcheck [ prop_saito_estimates_in_unit_interval ] );
      ( "joint_bayes",
        [
          Alcotest.test_case "single-parent posterior" `Slow test_joint_bayes_single_parent_posterior;
          Alcotest.test_case "prior formulations agree" `Slow test_joint_bayes_prior_formulations_agree;
          Alcotest.test_case "log posterior" `Quick test_joint_bayes_log_posterior;
          Alcotest.test_case "table II spread (Fig 11)" `Slow test_joint_bayes_table_two_spread;
        ] );
      ( "contextual",
        [
          Alcotest.test_case "recovers both regimes" `Slow
            test_contextual_recovers_both_regimes;
          Alcotest.test_case "pooled equals plain training" `Quick
            test_contextual_pooled_equals_plain_training;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "methods recover truth" `Slow test_methods_recover_ground_truth;
        ] );
    ]
