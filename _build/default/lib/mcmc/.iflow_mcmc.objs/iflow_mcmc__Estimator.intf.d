lib/mcmc/estimator.mli: Conditions Iflow_core Iflow_stats
