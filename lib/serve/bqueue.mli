(** A bounded multi-producer / multi-consumer queue — the server's
    explicit admission boundary.

    Producers (connection threads) offer work with {!try_push}, which
    {e refuses} instead of blocking when the queue is full: the caller
    turns that refusal into a typed over-capacity response, so overload
    sheds at the front door instead of growing an unbounded backlog.
    Consumers (executor workers) block in {!pop} until work arrives or
    the queue is closed {e and} drained — close is graceful: everything
    admitted before the close is still handed out. *)

type 'a t

val create : int -> 'a t
(** [create capacity]. Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Current depth (racy by nature; exact at the instant of the lock). *)

val try_push : 'a t -> 'a -> bool
(** Enqueue unless the queue is full or closed; never blocks. [false]
    is the admission-control signal: the item was {e not} accepted. *)

val pop : 'a t -> 'a option
(** Block until an item is available ([Some]) or the queue is closed
    and empty ([None]). *)

val pop_opt : 'a t -> 'a option
(** Non-blocking variant: [None] when currently empty (closed or not). *)

val iter : 'a t -> ('a -> unit) -> unit
(** Visit every queued item in order, under the queue lock — items are
    {e not} removed. [f] must be quick and must not touch the queue
    (deadlock). Shutdown uses this to fire the cancel tokens of work
    still waiting when {!close} lands. *)

val close : 'a t -> unit
(** Refuse new pushes; wake every blocked consumer. Idempotent. *)

val is_closed : 'a t -> bool
