(* Tests for the fault-tolerance layer (lib/fault) and its wiring:
   CRC-32 checkpoints, failpoint injection, retry supervision, atomic
   writes with rotation, degraded pool/engine/runner behaviour, and the
   SIGKILL crash-recovery property:

     kill an ingest child at a random instant; recovering from the
     newest valid checkpoint and replaying the rest of the log must
     reach the exact final digest of an uninterrupted run. *)

module Rng = Iflow_stats.Rng
module Gen = Iflow_graph.Gen
module Digraph = Iflow_graph.Digraph
module Icm = Iflow_core.Icm
module Beta_icm = Iflow_core.Beta_icm
module Cascade = Iflow_core.Cascade
module Engine = Iflow_engine.Engine
module Pool = Iflow_engine.Pool
module Query = Iflow_engine.Query
module Model_io = Iflow_io.Model_io
module Event = Iflow_stream.Event
module Online = Iflow_stream.Online
module Snapshot = Iflow_stream.Snapshot
module Runner = Iflow_stream.Runner
module Crc32 = Iflow_fault.Crc32
module Fail = Iflow_fault.Fail
module Retry = Iflow_fault.Retry
module Durable = Iflow_fault.Durable

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let with_temp_file f =
  let path = Filename.temp_file "iflow_fault_test" ".bicm" in
  let cleanup () =
    (* the rotated set and the atomic-write temporary ride along *)
    List.iter
      (fun p -> if Sys.file_exists p then Sys.remove p)
      (Durable.tmp_of path :: List.init 8 (Durable.rotated path))
  in
  Fun.protect ~finally:cleanup (fun () -> Fail.reset (); f path)

(* every test that arms failpoints must leave the registry clean *)
let with_failpoints f = Fun.protect ~finally:Fail.reset f

(* ---------- Crc32 ---------- *)

let test_crc32_known_answers () =
  (* the standard CRC-32/ISO-HDLC check value *)
  check_int "123456789" 0xcbf43926 (Crc32.string "123456789");
  check_int "empty" 0 (Crc32.string "");
  check_string "hex" "cbf43926" (Crc32.to_hex (Crc32.string "123456789"));
  check_bool "of_hex inverts" true
    (Crc32.of_hex "cbf43926" = Some 0xcbf43926);
  check_bool "of_hex rejects" true
    (Crc32.of_hex "xyz" = None && Crc32.of_hex "cbf4392" = None)

let test_crc32_chunked () =
  let s = String.init 257 (fun i -> Char.chr (i * 7 mod 256)) in
  let whole = Crc32.string s in
  let chunked =
    let crc = Crc32.update 0 s 0 100 in
    let crc = Crc32.update crc s 100 1 in
    Crc32.update crc s 101 (String.length s - 101)
  in
  check_int "chunked = whole" whole chunked;
  check_bool "range checked" true
    (match Crc32.update 0 s 200 100 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- Fail ---------- *)

let test_fail_disarmed () =
  Fail.reset ();
  check_bool "disabled" false (Fail.enabled ());
  Fail.point "anything" (* must be a no-op *)

let test_fail_arm_and_count () =
  with_failpoints (fun () ->
      Fail.arm ~count:2 "x";
      check_bool "enabled" true (Fail.enabled ());
      let fired name =
        match Fail.point name with
        | () -> false
        | exception Fail.Injected n ->
          check_string "carries name" name n;
          true
      in
      check_bool "other points untouched" false (fired "y");
      check_bool "first" true (fired "x");
      check_bool "second" true (fired "x");
      check_bool "exhausted" false (fired "x");
      check_int "hits" 2 (Fail.hits "x");
      Fail.arm "z";
      Fail.disarm "z";
      check_bool "disarmed" false (fired "z"))

let test_fail_probability () =
  with_failpoints (fun () ->
      Fail.set_seed 42;
      Fail.arm ~prob:0.0 "never";
      for _ = 1 to 100 do
        Fail.point "never"
      done;
      check_int "prob 0 never fires" 0 (Fail.hits "never");
      Fail.arm ~prob:0.5 "half";
      let fired = ref 0 in
      for _ = 1 to 1000 do
        match Fail.point "half" with
        | () -> ()
        | exception Fail.Injected _ -> incr fired
      done;
      check_bool "prob 0.5 fires about half the time" true
        (!fired > 350 && !fired < 650);
      (* reseeding reproduces the exact draw sequence *)
      let run_seeded () =
        Fail.set_seed 7;
        Fail.arm ~prob:0.3 "seeded";
        let fired = ref [] in
        for i = 1 to 50 do
          match Fail.point "seeded" with
          | () -> ()
          | exception Fail.Injected _ -> fired := i :: !fired
        done;
        !fired
      in
      check_bool "deterministic under a seed" true (run_seeded () = run_seeded ()))

let test_fail_wildcard () =
  with_failpoints (fun () ->
      Fail.arm "*";
      check_bool "wildcard catches" true
        (match Fail.point "some.site" with
        | exception Fail.Injected _ -> true
        | () -> false);
      Fail.arm ~prob:0.0 "some.site";
      (* a specific entry shadows the catch-all *)
      Fail.point "some.site")

let test_fail_configure () =
  with_failpoints (fun () ->
      (match Fail.configure "a=raise;b=2*raise;c=50%raise;d=1%3*raise" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "spec rejected: %s" e);
      check_bool "a armed" true
        (match Fail.point "a" with
        | exception Fail.Injected _ -> true
        | () -> false);
      (match Fail.configure "a=off" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "off rejected: %s" e);
      Fail.point "a";
      List.iter
        (fun bad ->
          check_bool bad true (Result.is_error (Fail.configure bad)))
        [ "noeq"; "x="; "x=150%raise"; "x=0*raise"; "x=launch"; "=raise" ])

(* ---------- Retry ---------- *)

let test_retry_rides_out_transients () =
  let calls = ref 0 in
  let v =
    Retry.with_policy Retry.no_delay (fun () ->
        incr calls;
        if !calls < 3 then failwith "transient";
        "ok")
  in
  check_string "succeeds" "ok" v;
  check_int "attempts" 3 !calls

let test_retry_exhausts () =
  let calls = ref 0 in
  let retries = ref [] in
  (match
     Retry.with_policy
       ~on_retry:(fun ~attempt ~delay:_ e ->
         check_bool "sees the exn" true (e = Failure "persistent");
         retries := attempt :: !retries)
       Retry.no_delay
       (fun () ->
         incr calls;
         failwith "persistent")
   with
  | _ -> Alcotest.fail "should have raised"
  | exception Failure m -> check_string "last exn propagates" "persistent" m);
  check_int "max_attempts honoured" Retry.no_delay.Retry.max_attempts !calls;
  check_bool "on_retry saw each re-attempt" true (List.rev !retries = [ 1; 2 ])

let test_retry_retryable_filter () =
  let calls = ref 0 in
  (match
     Retry.with_policy
       ~retryable:(function Failure _ -> false | _ -> true)
       Retry.no_delay
       (fun () ->
         incr calls;
         failwith "fatal")
   with
  | _ -> Alcotest.fail "should have raised"
  | exception Failure _ -> ());
  check_int "not retried" 1 !calls

let test_retry_backoff_and_budget () =
  let p =
    {
      Retry.max_attempts = 10;
      base_delay = 1.0;
      multiplier = 2.0;
      jitter = 0.0;
      max_delay = 5.0;
      budget = None;
    }
  in
  check_bool "geometric then capped" true
    (Retry.delay_for p ~attempt:1 = 1.0
    && Retry.delay_for p ~attempt:2 = 2.0
    && Retry.delay_for p ~attempt:3 = 4.0
    && Retry.delay_for p ~attempt:4 = 5.0);
  (* a 2.5-delay budget admits sleeps 1 + 2 = 3? no: 1 fits, 1+2 > 2.5,
     so the third attempt is never made *)
  let slept = ref 0.0 in
  let calls = ref 0 in
  (match
     Retry.with_policy
       ~sleep:(fun d -> slept := !slept +. d)
       { p with budget = Some 2.5 }
       (fun () ->
         incr calls;
         failwith "always")
   with
  | _ -> Alcotest.fail "should have raised"
  | exception Failure _ -> ());
  check_int "budget cut the attempts" 2 !calls;
  check_bool "slept only the admitted delay" true (!slept = 1.0)

(* ---------- Durable ---------- *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_durable_write_atomic () =
  with_temp_file (fun path ->
      Durable.write_atomic path (fun oc -> output_string oc "first\n");
      check_string "written" "first\n" (read_file path);
      check_bool "tmp gone" false (Sys.file_exists (Durable.tmp_of path));
      (* tearing any stage leaves the previous content untouched *)
      List.iter
        (fun stage ->
          with_failpoints (fun () ->
              Fail.arm ("durable." ^ stage);
              (match
                 Durable.write_atomic path (fun oc -> output_string oc "second\n")
               with
              | () -> Alcotest.failf "%s did not tear" stage
              | exception Fail.Injected _ -> ());
              check_string (stage ^ " left original") "first\n" (read_file path);
              check_bool (stage ^ " cleaned tmp") false
                (Sys.file_exists (Durable.tmp_of path))))
        [ "write"; "fsync"; "rename" ];
      (* and an exception from the content writer itself does too *)
      (match
         Durable.write_atomic path (fun oc ->
             output_string oc "gar";
             failwith "writer died")
       with
      | () -> Alcotest.fail "should have raised"
      | exception Failure _ -> ());
      check_string "still original" "first\n" (read_file path))

let test_durable_rotation () =
  with_temp_file (fun path ->
      let write s = Durable.write_atomic path (fun oc -> output_string oc s) in
      check_bool "keep validated" true
        (match Durable.rotate path ~keep:0 with
        | exception Invalid_argument _ -> true
        | () -> false);
      write "g3";
      Durable.rotate path ~keep:3;
      write "g2";
      Durable.rotate path ~keep:3;
      write "g1";
      Durable.rotate path ~keep:3;
      write "g0";
      check_string "current" "g0" (read_file path);
      check_string "gen1" "g1" (read_file (Durable.rotated path 1));
      check_string "gen2" "g2" (read_file (Durable.rotated path 2));
      check_bool "g3 rotated out" false (Sys.file_exists (Durable.rotated path 3));
      check_bool "newest first" true
        (Durable.generations path ~limit:8
        = [ path; Durable.rotated path 1; Durable.rotated path 2 ]);
      (* a crash can leave generation 0 missing; older ones still count *)
      Sys.remove path;
      check_bool "gap at current tolerated" true
        (Durable.generations path ~limit:8
        = [ Durable.rotated path 1; Durable.rotated path 2 ]);
      Sys.remove (Durable.rotated path 1);
      check_bool "interior gap stops the walk" true
        (Durable.generations path ~limit:8 = []))

(* ---------- Model_io integrity: every truncation, every bit flip ---------- *)

let tiny_model () =
  let g = Digraph.of_edges ~nodes:3 [ (0, 1); (1, 2); (0, 2) ] in
  Beta_icm.observe_many (Beta_icm.uninformed g) [ (0, true); (2, false) ]

let test_model_io_every_truncation () =
  let model = tiny_model () in
  with_temp_file (fun path ->
      Model_io.save_beta_icm path model;
      let full = read_file path in
      let n = String.length full in
      for len = 0 to n - 1 do
        let oc = open_out_bin path in
        output_string oc (String.sub full 0 len);
        close_out oc;
        match Model_io.load_beta_icm path with
        | _ -> Alcotest.failf "truncation to %d/%d bytes loaded" len n
        | exception Failure _ -> ()
      done)

let test_model_io_every_bit_flip () =
  let model = tiny_model () in
  with_temp_file (fun path ->
      Model_io.save_beta_icm path model;
      let full = read_file path in
      let n = String.length full in
      for pos = 0 to n - 1 do
        for bit = 0 to 7 do
          let flipped = Bytes.of_string full in
          Bytes.set flipped pos
            (Char.chr (Char.code full.[pos] lxor (1 lsl bit)));
          let oc = open_out_bin path in
          output_bytes oc flipped;
          close_out oc;
          match Model_io.load_beta_icm path with
          | _ -> Alcotest.failf "bit %d of byte %d flipped, still loaded" bit pos
          | exception Failure _ -> ()
        done
      done)

let test_model_io_errors_name_the_damage () =
  let model = tiny_model () in
  with_temp_file (fun path ->
      Model_io.save_beta_icm path model;
      let full = read_file path in
      let oc = open_out_bin path in
      output_string oc (String.sub full 0 (String.length full - 3));
      close_out oc;
      match Model_io.load_beta_icm path with
      | _ -> Alcotest.fail "truncated file loaded"
      | exception Failure msg ->
        check_bool "names the file" true (contains path msg);
        check_bool "names the cause" true
          (contains "crc32" msg || contains "truncated" msg))

(* ---------- Snapshot: rotation, retry, recover fallback ---------- *)

let test_snapshot_checkpoint_retry () =
  with_temp_file (fun path ->
      with_failpoints (fun () ->
          let model = tiny_model () in
          let snap =
            Snapshot.create ~checkpoint_path:path ~keep:2
              ~retry:Retry.no_delay model
          in
          (* one transient fault per write: every checkpoint needs one retry *)
          Fail.arm ~count:1 "snapshot.checkpoint";
          Snapshot.checkpoint snap;
          check_int "fault ridden out" 1 (Fail.hits "snapshot.checkpoint");
          let m, off, ver = Snapshot.recover path in
          check_string "checkpoint valid" (Beta_icm.digest model)
            (Beta_icm.digest m);
          check_int "offset" 0 off;
          check_int "version" 0 ver))

let test_snapshot_recover_falls_back () =
  with_temp_file (fun path ->
      let model = tiny_model () in
      let snap =
        Snapshot.create ~checkpoint_path:path ~keep:3 ~retry:Retry.no_delay
          model
      in
      Snapshot.checkpoint snap;
      let m2 = Beta_icm.observe model ~edge:1 ~fired:true in
      ignore (Snapshot.publish snap m2 ~offset:40);
      Snapshot.checkpoint snap;
      (* tear the newest generation *)
      let full = read_file path in
      let oc = open_out_bin path in
      output_string oc (String.sub full 0 (String.length full / 2));
      close_out oc;
      let skipped = ref [] in
      let m, off, ver =
        Snapshot.recover
          ~on_skip:(fun ~path ~reason ->
            check_bool "reason is concrete" true (String.length reason > 0);
            skipped := path :: !skipped)
          path
      in
      check_bool "damaged generation reported" true (!skipped = [ path ]);
      check_string "previous generation recovered" (Beta_icm.digest model)
        (Beta_icm.digest m);
      check_int "its offset" 0 off;
      check_int "its version" 0 ver;
      (* rewrite a good v1, then tear the NEXT write at the rename:
         atomicity means the destination is never touched, and recover
         still finds v1 one generation down *)
      Snapshot.checkpoint snap;
      with_failpoints (fun () ->
          Fail.arm "model_io.rename";
          (match Snapshot.checkpoint snap with
          | () -> Alcotest.fail "rename failpoint did not fire"
          | exception Fail.Injected _ -> ());
          Fail.reset ();
          let m, off, ver =
            Snapshot.recover ~on_skip:(fun ~path:_ ~reason:_ -> ()) path
          in
          check_int "rotation preserved the good generation" 1 ver;
          check_int "and its offset" 40 off;
          check_string "and its model" (Beta_icm.digest m2) (Beta_icm.digest m)))

let test_snapshot_recover_missing () =
  check_bool "no checkpoint at all" true
    (match Snapshot.recover "/nonexistent/iflow.bicm" with
    | exception Sys_error _ -> true
    | _ -> false)

(* ---------- Pool: per-task capture ---------- *)

let test_pool_run_results () =
  List.iter
    (fun size ->
      let pool = Pool.create ~size () in
      let r =
        Pool.run_results pool
          (fun i -> if i mod 3 = 0 then failwith (string_of_int i) else i * 10)
          (Array.init 7 Fun.id)
      in
      check_int "all tasks attempted" 7 (Array.length r);
      Array.iteri
        (fun i -> function
          | Ok v ->
            check_bool "ok slot" true (i mod 3 <> 0);
            check_int "value" (i * 10) v
          | Error (Failure m) ->
            check_bool "error slot" true (i mod 3 = 0);
            check_string "carries the task's exn" (string_of_int i) m
          | Error _ -> Alcotest.fail "unexpected exn")
        r;
      (* run still raises the lowest-index failure *)
      check_bool "run re-raises" true
        (match Pool.run pool (fun i -> if i = 2 then failwith "boom" else i)
                 (Array.init 4 Fun.id)
         with
        | exception Failure m -> m = "boom"
        | _ -> false))
    [ 1; 4 ]

(* ---------- Engine: degraded queries ---------- *)

let five_node_model seed =
  let rng = Rng.create seed in
  let g = Gen.gnm rng ~nodes:5 ~edges:12 in
  Icm.create g (Array.init 12 (fun _ -> 0.1 +. (0.8 *. Rng.uniform rng)))

let light_config =
  {
    Engine.default_config with
    Engine.chains = 4;
    domains = Some 1;
    burn_in = 50;
    thin = 2;
    round_samples = 50;
    max_samples = 400;
    rhat_target = 10.0;
    mcse_target = 1.0;
  }

let test_engine_degrades_and_recovers () =
  with_failpoints (fun () ->
      let engine =
        Engine.create ~config:light_config ~seed:5 (five_node_model 8)
      in
      let q = Query.flow ~src:0 ~dst:4 () in
      Fail.arm ~count:1 "engine.chain";
      let degraded = Engine.query engine q in
      check_int "one chain lost" 3 degraded.Engine.chains_used;
      check_bool "still an estimate" true
        (Float.is_finite degraded.Engine.estimate);
      Fail.reset ();
      (* the degraded answer was not cached: the same query re-samples
         at full strength and only then becomes cacheable *)
      let full = Engine.query engine q in
      check_bool "re-sampled" false full.Engine.cached;
      check_int "full strength" 4 full.Engine.chains_used;
      check_bool "now cached" true (Engine.query engine q).Engine.cached)

let test_engine_too_many_chains_lost () =
  with_failpoints (fun () ->
      let engine =
        Engine.create ~config:light_config ~seed:5 (five_node_model 8)
      in
      Fail.arm "engine.chain";
      (match Engine.query engine (Query.flow ~src:0 ~dst:4 ()) with
      | _ -> Alcotest.fail "should have failed"
      | exception Engine.Chains_failed { failed; chains; _ } ->
        check_int "chains" 4 chains;
        check_bool "majority lost" true (2 * failed > chains));
      Fail.reset ();
      (* the engine itself survived *)
      let r = Engine.query engine (Query.flow ~src:0 ~dst:4 ()) in
      check_int "healthy afterwards" 4 r.Engine.chains_used)

(* ---------- Runner: on_error policies and degraded swaps ---------- *)

let substrate seed ~events =
  let rng = Rng.create seed in
  let g = Gen.gnm rng ~nodes:30 ~edges:120 in
  let m = Digraph.n_edges g in
  let icm =
    Icm.create g (Array.init m (fun _ -> 0.1 +. (0.6 *. Rng.uniform rng)))
  in
  let lines =
    List.init events (fun _ ->
        Event.to_line
          (Event.of_attributed g
             (Cascade.run rng icm ~sources:[ Rng.int rng (Digraph.n_nodes g) ])))
  in
  (g, lines)

(* a source whose every [period]-th pull raises before yielding *)
let flaky_source lines ~period =
  let rest = ref lines and pulls = ref 0 and pending = ref false in
  fun () ->
    incr pulls;
    if !pulls mod period = 0 && not !pending then begin
      pending := true;
      failwith "flaky read"
    end
    else begin
      pending := false;
      match !rest with
      | [] -> None
      | l :: tl ->
        rest := tl;
        Some l
    end

let test_runner_on_error_policies () =
  let g, lines = substrate 21 ~events:120 in
  let run policy source =
    Runner.run ~on_error:policy
      { Runner.batch = 32; checkpoint_every = None }
      (Online.create (Beta_icm.uninformed g))
      (Snapshot.create (Beta_icm.uninformed g))
      source
  in
  let reference = run Runner.Fail_fast (Runner.lines_of_list lines) in
  check_bool "fail-fast raises" true
    (match run Runner.Fail_fast (flaky_source lines ~period:50) with
    | exception Failure _ -> true
    | _ -> false);
  let skipped = run Runner.Skip_line (flaky_source lines ~period:50) in
  check_bool "skip absorbs the faults" true
    (skipped.Runner.read_errors > 0);
  check_string "and loses no lines (faults hit pulls, not data)"
    reference.Runner.final.Snapshot.digest skipped.Runner.final.Snapshot.digest;
  let retried = run (Runner.Retry_reads Retry.no_delay)
      (flaky_source lines ~period:50)
  in
  check_string "retry reaches the same model"
    reference.Runner.final.Snapshot.digest retried.Runner.final.Snapshot.digest;
  (* a permanently dead source must not spin Skip_line forever *)
  let dead () = failwith "dead source" in
  check_bool "skip gives up on a dead source" true
    (match run Runner.Skip_line dead with
    | exception Failure _ -> true
    | _ -> false)

let test_runner_degraded_swap () =
  with_failpoints (fun () ->
      let g, lines = substrate 22 ~events:100 in
      let prior = Beta_icm.uninformed g in
      let engine =
        Engine.create ~config:light_config ~seed:3
          (Beta_icm.expected_icm prior)
      in
      let stages = ref [] in
      Fail.arm ~count:2 "runner.swap";
      let report =
        Runner.run ~engine
          ~on_degraded:(fun ~stage _ -> stages := stage :: !stages)
          { Runner.batch = 25; checkpoint_every = None }
          (Online.create prior) (Snapshot.create prior)
          (Runner.lines_of_list lines)
      in
      check_int "both torn swaps counted" 2 report.Runner.swap_failures;
      check_bool "callback saw them" true
        (List.for_all (( = ) "swap") !stages && List.length !stages = 2);
      (* later swaps landed: the engine ended on the final version *)
      check_string "engine caught up" report.Runner.final.Snapshot.digest
        (Beta_icm.digest report.Runner.final.Snapshot.model))

let test_runner_checkpoint_failure_keeps_going () =
  with_temp_file (fun path ->
      with_failpoints (fun () ->
          let g, lines = substrate 23 ~events:100 in
          let prior = Beta_icm.uninformed g in
          Fail.arm "snapshot.checkpoint" (* every write fails, forever *);
          let report =
            Runner.run
              { Runner.batch = 25; checkpoint_every = Some 30 }
              (Online.create prior)
              (Snapshot.create ~checkpoint_path:path ~retry:Retry.no_delay
                 prior)
              (Runner.lines_of_list lines)
          in
          check_int "no checkpoint landed" 0 report.Runner.checkpoints_written;
          check_bool "all attempts failed" true
            (report.Runner.checkpoint_failures > 0);
          check_int "but every line was ingested" 100 report.Runner.lines))

(* The SIGKILL crash-recovery property test lives in test_crash.ml:
   Unix.fork is forbidden once any domain has been spawned, and the
   pool/engine tests above spawn domains. *)

let () =
  Alcotest.run "fault"
    [
      ( "crc32",
        [
          Alcotest.test_case "known answers" `Quick test_crc32_known_answers;
          Alcotest.test_case "chunked update" `Quick test_crc32_chunked;
        ] );
      ( "failpoints",
        [
          Alcotest.test_case "disarmed is a no-op" `Quick test_fail_disarmed;
          Alcotest.test_case "arm, count, disarm" `Quick test_fail_arm_and_count;
          Alcotest.test_case "probability triggers" `Quick test_fail_probability;
          Alcotest.test_case "wildcard" `Quick test_fail_wildcard;
          Alcotest.test_case "spec grammar" `Quick test_fail_configure;
        ] );
      ( "retry",
        [
          Alcotest.test_case "rides out transients" `Quick
            test_retry_rides_out_transients;
          Alcotest.test_case "exhausts and re-raises" `Quick test_retry_exhausts;
          Alcotest.test_case "retryable filter" `Quick
            test_retry_retryable_filter;
          Alcotest.test_case "backoff and budget" `Quick
            test_retry_backoff_and_budget;
        ] );
      ( "durable",
        [
          Alcotest.test_case "atomic write survives tearing" `Quick
            test_durable_write_atomic;
          Alcotest.test_case "rotation and generations" `Quick
            test_durable_rotation;
        ] );
      ( "model-io-integrity",
        [
          Alcotest.test_case "every truncation fails cleanly" `Quick
            test_model_io_every_truncation;
          Alcotest.test_case "every bit flip fails cleanly" `Slow
            test_model_io_every_bit_flip;
          Alcotest.test_case "errors name the damage" `Quick
            test_model_io_errors_name_the_damage;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "checkpoint rides out a fault" `Quick
            test_snapshot_checkpoint_retry;
          Alcotest.test_case "recover falls back past damage" `Quick
            test_snapshot_recover_falls_back;
          Alcotest.test_case "missing checkpoint" `Quick
            test_snapshot_recover_missing;
        ] );
      ("pool", [ Alcotest.test_case "run_results" `Quick test_pool_run_results ]);
      ( "engine",
        [
          Alcotest.test_case "degrades and recovers" `Quick
            test_engine_degrades_and_recovers;
          Alcotest.test_case "too many chains lost" `Quick
            test_engine_too_many_chains_lost;
        ] );
      ( "runner",
        [
          Alcotest.test_case "on_error policies" `Quick
            test_runner_on_error_policies;
          Alcotest.test_case "degraded swaps" `Quick test_runner_degraded_swap;
          Alcotest.test_case "checkpoint failures" `Quick
            test_runner_checkpoint_failure_keeps_going;
        ] );
    ]
