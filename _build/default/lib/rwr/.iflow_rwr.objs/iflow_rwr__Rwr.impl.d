lib/rwr/rwr.ml: Array Float Iflow_core Iflow_graph
