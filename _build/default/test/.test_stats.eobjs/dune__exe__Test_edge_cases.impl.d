test/test_edge_cases.ml: Alcotest Array Cascade Evidence Exact Float Icm Iflow_bucket Iflow_core Iflow_graph Iflow_gtm Iflow_learn Iflow_mcmc Iflow_rwr Iflow_stats List Summary
