module Icm = Iflow_core.Icm
module Pseudo_state = Iflow_core.Pseudo_state
module Reach = Iflow_graph.Reach

type kind =
  | Flow of { src : int; dst : int }
  | Community of { src : int; sinks : int list }
  | Joint of { flows : (int * int) list }

type t = { kind : kind; conditions : (int * int * bool) list }

let sort_conditions cs =
  List.sort_uniq (fun (a : int * int * bool) b -> compare a b) cs

let v ?(conditions = []) kind =
  let kind =
    (* canonicalise set-like payloads so equal queries get equal keys *)
    match kind with
    | Flow _ as k -> k
    | Community { src; sinks } ->
      Community { src; sinks = List.sort_uniq compare sinks }
    | Joint { flows } -> Joint { flows = List.sort_uniq compare flows }
  in
  (match kind with
  | Flow { src; dst } ->
    if src < 0 || dst < 0 then invalid_arg "Query: negative node id"
  | Community { src; sinks } ->
    if src < 0 || List.exists (fun s -> s < 0) sinks then
      invalid_arg "Query: negative node id";
    if sinks = [] then invalid_arg "Query: empty sink list"
  | Joint { flows } ->
    if List.exists (fun (u, d) -> u < 0 || d < 0) flows then
      invalid_arg "Query: negative node id";
    if flows = [] then invalid_arg "Query: empty flow list");
  { kind; conditions = sort_conditions conditions }

let flow ?conditions ~src ~dst () = v ?conditions (Flow { src; dst })
let community ?conditions ~src ~sinks () = v ?conditions (Community { src; sinks })
let joint ?conditions ~flows () = v ?conditions (Joint { flows })

let kind t = t.kind
let conditions t = t.conditions

let max_node t =
  let m = ref 0 in
  let see v = if v > !m then m := v in
  (match t.kind with
  | Flow { src; dst } -> see src; see dst
  | Community { src; sinks } -> see src; List.iter see sinks
  | Joint { flows } -> List.iter (fun (u, d) -> see u; see d) flows);
  List.iter (fun (u, d, _) -> see u; see d) t.conditions;
  !m

let indicator icm t state =
  match t.kind with
  | Flow { src; dst } -> Pseudo_state.flow icm state ~src ~dst
  | Community { src; sinks } ->
    let reached = Pseudo_state.reachable icm state ~sources:[ src ] in
    List.for_all (fun v -> reached.(v)) sinks
  | Joint { flows } ->
    List.for_all
      (fun (src, dst) -> Pseudo_state.flow icm state ~src ~dst)
      flows

let indicator_ws ws icm t state =
  match t.kind with
  | Flow { src; dst } -> Pseudo_state.flow_ws ws icm state ~src ~dst
  | Community { src; sinks } ->
    Pseudo_state.reachable_ws ws icm state ~sources:[ src ];
    List.for_all (fun v -> Reach.marked ws v) sinks
  | Joint { flows } ->
    List.for_all
      (fun (src, dst) -> Pseudo_state.flow_ws ws icm state ~src ~dst)
      flows

let key t =
  let b = Buffer.create 64 in
  (match t.kind with
  | Flow { src; dst } -> Buffer.add_string b (Printf.sprintf "flow %d %d" src dst)
  | Community { src; sinks } ->
    Buffer.add_string b (Printf.sprintf "community %d" src);
    List.iter (fun s -> Buffer.add_string b (Printf.sprintf " %d" s)) sinks
  | Joint { flows } ->
    Buffer.add_string b "joint";
    List.iter
      (fun (u, d) -> Buffer.add_string b (Printf.sprintf " %d>%d" u d))
      flows);
  if t.conditions <> [] then begin
    Buffer.add_string b " |";
    List.iter
      (fun (u, d, a) ->
        Buffer.add_string b
          (Printf.sprintf " %d:%d:%c" u d (if a then '+' else '-')))
      t.conditions
  end;
  Buffer.contents b

let equal a b = key a = key b

let pp ppf t = Format.pp_print_string ppf (key t)

(* ----- JSONL decoding ----- *)

let ( let* ) r f = Result.bind r f

let int_field name json =
  match Jsonl.member name json with
  | Some v -> (
    match Jsonl.to_int v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "field %S: expected an integer" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let pair_of_json what = function
  | Jsonl.List [ a; b ] -> (
    match (Jsonl.to_int a, Jsonl.to_int b) with
    | Some u, Some d -> Ok (u, d)
    | _ -> Error (Printf.sprintf "%s: expected [int, int]" what))
  | _ -> Error (Printf.sprintf "%s: expected [int, int]" what)

let condition_of_json = function
  | Jsonl.List [ u; d; a ] -> (
    let sign =
      match a with
      | Jsonl.Bool b -> Ok b
      | Jsonl.Str "+" -> Ok true
      | Jsonl.Str "-" -> Ok false
      | _ -> Error "condition: third element must be true/false or \"+\"/\"-\""
    in
    match (Jsonl.to_int u, Jsonl.to_int d, sign) with
    | Some u, Some d, Ok a -> Ok (u, d, a)
    | _, _, (Error _ as e) -> e
    | _ -> Error "condition: expected [int, int, sign]")
  | _ -> Error "condition: expected [src, dst, sign]"

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = collect f rest in
    Ok (y :: ys)

let of_json json =
  let* conditions =
    match Jsonl.member "conditions" json with
    | None -> Ok []
    | Some (Jsonl.List cs) -> collect condition_of_json cs
    | Some _ -> Error "field \"conditions\": expected a list"
  in
  let* kind =
    match Option.bind (Jsonl.member "type" json) Jsonl.to_string with
    | Some "flow" ->
      let* src = int_field "src" json in
      let* dst = int_field "dst" json in
      Ok (Flow { src; dst })
    | Some "community" ->
      let* src = int_field "src" json in
      let* sinks =
        match Option.bind (Jsonl.member "sinks" json) Jsonl.to_list with
        | Some vs ->
          collect
            (fun v ->
              match Jsonl.to_int v with
              | Some i -> Ok i
              | None -> Error "field \"sinks\": expected integers")
            vs
        | None -> Error "missing field \"sinks\""
      in
      Ok (Community { src; sinks })
    | Some "joint" ->
      let* flows =
        match Option.bind (Jsonl.member "flows" json) Jsonl.to_list with
        | Some vs -> collect (pair_of_json "flows") vs
        | None -> Error "missing field \"flows\""
      in
      Ok (Joint { flows })
    | Some other -> Error (Printf.sprintf "unknown query type %S" other)
    | None -> Error "missing field \"type\""
  in
  match v ~conditions kind with
  | q -> Ok q
  | exception Invalid_argument msg -> Error msg

let of_line ?lineno line =
  let r =
    let* json = Jsonl.parse line in
    of_json json
  in
  match (r, lineno) with
  | Error msg, Some n -> Error (Printf.sprintf "line %d: %s" n msg)
  | _ -> r
