(** The paper's "bucket experiment" (Section IV-C, adapted from Troncoso
    & Danezis): a calibration test for probabilistic flow predictions.

    Pairs [(estimate, outcome)] are binned by estimate into [bins]
    equal-width buckets over [0, 1]. Within bucket [j] we form the mean
    estimate and an empirical Beta over the outcome frequency
    ([alpha = 1 + positives], [beta = count - positives + 1]); a
    well-calibrated estimator has its mean estimate inside the Beta's
    95% interval in about 95% of buckets. *)

type bin = {
  lo : float;
  hi : float;
  count : int; (** volume of estimates landing here *)
  positives : int; (** how many outcomes were true *)
  mean_estimate : float; (** p-bar_j; NaN when the bin is empty *)
  empirical : Iflow_stats.Dist.Beta.t; (** posterior over the true rate *)
  interval : float * float; (** central 95% of [empirical] *)
  inside : bool; (** mean estimate within the interval *)
}

type t = {
  bins : bin array;
  total : int;
  coverage : float;
      (** fraction of non-empty bins whose mean estimate is inside the
          95% interval — should be near 0.95 for a calibrated model *)
  measures : Iflow_stats.Measures.row;
      (** Table III row (normalised likelihood and Brier) for the same
          predictions *)
}

val run :
  ?bins:int -> label:string -> Iflow_stats.Measures.prediction list -> t
(** [bins] defaults to the paper's 30. Raises [Invalid_argument] on an
    empty prediction list or estimates outside [0, 1]. *)

val pp : Format.formatter -> t -> unit
(** Per-bin table: bin range, volume, positive volume, mean estimate,
    empirical mean, 95% interval, and an in/out marker — the data behind
    the paper's calibration plots (Figs 1, 2, 5, 8, 9, 10). *)

val pp_summary : Format.formatter -> t -> unit
(** One line: coverage, normalised likelihood, Brier. *)
