(** Dynamic reachability: reusable zero-allocation BFS workspaces and
    incrementally maintained per-source reachable sets.

    {!Traverse} allocates a fresh visited array and queue on every call,
    which is fine for one-off queries but dominates the cost of the MH
    sampler's inner loop, where reachability is re-evaluated after every
    accepted single-edge flip. This module provides

    - a {e workspace}: an epoch-stamped visited array plus a
      preallocated int-ring queue, so repeated BFS runs over the same
      graph do no steady-state allocation (reset is a single epoch
      increment); and
    - a {e cache} ({!Cache}): a reachable set from one fixed source,
      maintained incrementally across single-edge activity flips with
      O(1) revert, so a rejected proposal costs nothing.

    A workspace may be shared by any number of sequential operations
    (including every {!Cache} attached to it), but it is single-domain
    scratch: one workspace per chain/domain, never shared across
    domains. Each workspace operation invalidates the marks left by the
    previous one. *)

type workspace

val workspace : int -> workspace
(** [workspace n] is scratch space for BFS over graphs with [n] nodes.
    Raises [Invalid_argument] when [n < 0]. *)

val capacity : workspace -> int

val bfs : workspace -> active:(int -> bool) -> Digraph.t -> src:int -> unit
(** [bfs ws ~active g ~src] marks every node reachable from [src]
    through active edges (the source included). Zero allocation. *)

val bfs_sources :
  workspace -> active:(int -> bool) -> Digraph.t -> int list -> unit
(** Multi-source variant of {!bfs}. *)

val bfs_rev : workspace -> active:(int -> bool) -> Digraph.t -> dst:int -> unit
(** [bfs_rev ws ~active g ~dst] marks every node that can reach [dst]
    through active edges (the sink included) — the ancestor cone, walked
    over in-edges. Zero allocation, same mark discipline as {!bfs}. *)

val marked : workspace -> int -> bool
(** Was this node reached by the latest [bfs]/[bfs_sources]? *)

val count_marked : workspace -> int
(** Number of marked nodes (O(capacity)). *)

val snapshot : workspace -> bool array
(** The marks as a fresh bool array (allocates; for compatibility with
    {!Traverse.reachable_from} consumers). *)

val reachable_from :
  workspace -> active:(int -> bool) -> Digraph.t -> int list -> bool array
(** [bfs_sources] + [snapshot]: drop-in for {!Traverse.reachable_from}
    that reuses the workspace for the traversal itself. *)

val shortest_path :
  workspace -> active:(int -> bool) -> Digraph.t ->
  src:int -> dst:int -> int list option
(** Drop-in for {!Traverse.shortest_path}: edge ids of a BFS shortest
    path, allocating only the returned list. *)

val cheapest_path :
  workspace -> usable:(int -> bool) -> zero_cost:(int -> bool) ->
  Digraph.t -> src:int -> dst:int -> int list option
(** 0-1 BFS over [usable] edges minimising the number of edges that are
    not [zero_cost] — e.g. a path activating as few new edges as
    possible. Allocates its deque internally; a repair-time routine,
    not a hot-path one. *)

(** An incrementally maintained reachable set from one fixed source.

    The set is stored as an epoch-stamped array together with the BFS
    tree that witnesses it (one parent edge per member). After a single
    edge changes activity, {!Cache.update} re-establishes correctness
    using the cheapest applicable rule:

    - edge activated, its source unreachable: the set cannot change —
      O(1);
    - edge activated, both endpoints already in the set: O(1);
    - edge activated, source in the set, destination outside: the set
      only grows — incremental forward BFS from the destination,
      touching just the newly reached region;
    - edge deactivated, its source outside the set: O(1);
    - edge deactivated, but it is not the BFS-tree parent edge of its
      destination: every member's witness path survives, so the set is
      unchanged — O(1);
    - edge deactivated and it is a tree edge: the only expensive case —
      full recompute from the source, into a double buffer so the
      previous set survives for {!Cache.undo}.

    Every update returns a constant-constructor receipt; {!Cache.undo}
    reverts it in O(changed nodes) (grow) or O(1) (buffer swap), which
    is what makes speculative "flip, check, maybe reject" MH steps
    allocation-free. *)
module Cache : sig
  type t

  val create :
    workspace -> Digraph.t -> source:int -> active:(int -> bool) -> t
  (** A cache over [g]'s node set, initialised by a full BFS. The
      workspace only lends its queue during operations; the set itself
      lives in the cache, so many caches can share one workspace. *)

  val source : t -> int
  val reaches : t -> int -> bool

  val rebuild : t -> active:(int -> bool) -> unit
  (** Recompute from scratch (e.g. after bulk state edits). *)

  type update = Unchanged | Grew | Rebuilt
  (** Receipt describing how the last {!update} changed the set. *)

  val update : t -> active:(int -> bool) -> edge:int -> update
  (** [update c ~active ~edge] repairs the set after exactly [edge]
      changed activity; [active] must reflect the {e post}-flip state.
      At most one update may be pending (i.e. not yet followed by
      another [update], an {!undo}, or a {!rebuild} of the same
      cache). *)

  val undo : t -> update -> unit
  (** Revert the most recent {!update} (the pre-flip activity must be
      restored by the caller; [undo] only restores the set). *)

  type stats = { unchanged : int; grew : int; rebuilt : int; undone : int }
  (** How many {!update}s resolved by each rule, plus non-trivial
      {!undo}s ([Unchanged] undos are free and uncounted), since
      creation. *)

  val stats : t -> stats
end
