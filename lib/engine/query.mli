(** Flow queries as first-class values.

    A query names an event over pseudo-states — end-to-end flow,
    source-to-community flow, or a conjunction of flows — plus optional
    flow conditions (paper Section III). Queries are pure data: the
    engine turns them into indicator functions, cache keys, and derived
    per-query seeds. Construction canonicalises set-like payloads
    (sorts sinks, flows, and conditions), so two queries that mean the
    same thing compare equal and share a cache entry. *)

type kind =
  | Flow of { src : int; dst : int }
  | Community of { src : int; sinks : int list }
  | Joint of { flows : (int * int) list }

type t

val v : ?conditions:(int * int * bool) list -> kind -> t
(** Raises [Invalid_argument] on negative node ids or empty
    sink / flow lists. *)

val flow : ?conditions:(int * int * bool) list -> src:int -> dst:int -> unit -> t
val community :
  ?conditions:(int * int * bool) list -> src:int -> sinks:int list -> unit -> t
val joint :
  ?conditions:(int * int * bool) list -> flows:(int * int) list -> unit -> t

val kind : t -> kind
val conditions : t -> (int * int * bool) list

val max_node : t -> int
(** Largest node id the query mentions (for model-bounds validation). *)

val indicator : Iflow_core.Icm.t -> t -> Iflow_core.Pseudo_state.t -> bool
(** Does this pseudo-state realise the queried event? (Conditions are
    {e not} checked here — the sampler conditions the chain itself.) *)

val indicator_ws :
  Iflow_graph.Reach.workspace ->
  Iflow_core.Icm.t -> t -> Iflow_core.Pseudo_state.t -> bool
(** {!indicator} through a reusable BFS workspace — what the engine's
    per-chain sample loops use, so evaluating a query over thousands of
    retained samples does no per-sample allocation. *)

val key : t -> string
(** Canonical textual form; equal queries have equal keys. Used in
    cache keys and derived seeds, and as the human-readable rendering. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val of_json : Jsonl.value -> (t, string) result
(** Decode the batch wire format:
    {v
    {"type":"flow","src":0,"dst":5}
    {"type":"community","src":0,"sinks":[3,4]}
    {"type":"joint","flows":[[0,3],[1,4]]}
    v}
    Any form takes an optional ["conditions"] field, a list of
    [[src, dst, sign]] with sign [true]/[false] or ["+"]/["-"]. *)

val of_line : ?lineno:int -> string -> (t, string) result
(** [of_json] composed with {!Jsonl.parse} — one JSONL line. Parse
    errors carry the byte offset of the damage within the line; when
    [lineno] is given, errors are prefixed with ["line N: "] so a
    quarantine report traces straight back to the offending input
    line. *)
