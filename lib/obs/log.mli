(** A leveled structured logger for the runner and CLI, replacing raw
    [eprintf] reporting. Lines go to [stderr] as
    ["<level> [<component>] <message>"]; the default level is {!Warn}
    so stdout-parsing callers see no new output unless they opt in. *)

type level = Error | Warn | Info | Debug

val set_level : level -> unit
val level : unit -> level

val level_of_string : string -> (level, string) result
(** Accepts ["error"], ["warn"], ["info"], ["debug"] (any case). *)

val string_of_level : level -> string

val err : ?component:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
val warn : ?component:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
val info : ?component:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
val debug : ?component:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted log statements; each emits one line (a trailing newline
    is appended) when its level is enabled, and evaluates its
    arguments' formatting only then. *)
