(** The ingest loop: drains an event-log line source through an
    {!Online} updater, publishing {!Snapshot} versions at batch
    boundaries, hot-swapping them into an optional engine, applying
    forgetting, and writing periodic checkpoints.

    Cadences:
    - a version is published (and the engine swapped, and one
      {!Online.decay} step applied) every [batch] {e applied} events,
      and once more at end of stream if anything is pending;
    - a checkpoint is written at the first publish at least
      [checkpoint_every] {e lines} after the previous one (lines, not
      events, so a recovered run skips exactly the consumed prefix —
      quarantined lines included), and once more at end of stream.

    Replay determinism: with forgetting off, any [batch] size — and any
    checkpoint/recover split — yields the same final model bit for bit,
    because publishing only freezes the accumulator. *)

type config = {
  batch : int;                   (** applied events per published version *)
  checkpoint_every : int option; (** lines between checkpoints *)
}

val default_config : config
(** batch 256, no checkpoints. *)

type report = {
  lines : int;                (** log lines consumed *)
  stats : Online.stats;
  final : Snapshot.version;   (** the last published version *)
  versions_published : int;   (** published by this run *)
  checkpoints_written : int;  (** written by this run *)
  cache_evictions : int;      (** engine cache entries retired by swaps *)
  drift_alerts : Drift.alert list;
  wall_ns : int;              (** monotonic wall time of the run *)
  events_per_sec : float;     (** applied events per wall second *)
}

val run :
  ?engine:Iflow_engine.Engine.t ->
  ?skip:int ->
  ?on_alert:(Drift.alert -> unit) ->
  ?on_publish:(Snapshot.version -> unit) ->
  config -> Online.t -> Snapshot.t -> (unit -> string option) -> report
(** [run config online snapshot next] pulls lines until [next ()]
    returns [None]. [skip] discards that many leading lines first (the
    offset of a recovered checkpoint). When [engine] is given it is
    swapped onto the current version up front and after every publish.
    Raises [Invalid_argument] on [batch < 1] or a non-positive
    [checkpoint_every]. *)

val lines_of_channel : in_channel -> unit -> string option
val lines_of_list : string list -> unit -> string option

val pp_report : Format.formatter -> report -> unit
