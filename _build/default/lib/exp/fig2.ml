open Iflow_core
module Digraph = Iflow_graph.Digraph
module Rng = Iflow_stats.Rng
module Measures = Iflow_stats.Measures
module Estimator = Iflow_mcmc.Estimator
module Conditions = Iflow_mcmc.Conditions
module Bucket = Iflow_bucket.Bucket

type result = {
  radius : int;
  known_flows : int;
  bucket : Bucket.t;
}

(* Predictions for one focus user at one radius. For every held-out
   cascade from the focus we predict flow to one random sink; with
   [known_flows] > 0 we reveal up to that many other activations from
   the same cascade as positive flow conditions. *)
let focus_predictions rng (lab : Twitter_lab.t) config ~focus ~radius
    ~known_flows ~max_tweets =
  let sub_model, node_of_sub, sub_focus =
    Twitter_lab.subgraph_around lab ~centre:focus ~radius
  in
  let sub_n = Beta_icm.n_nodes sub_model in
  if sub_n < 3 || sub_focus < 0 then []
  else begin
    let icm = Beta_icm.expected_icm sub_model in
    let outcomes = Twitter_lab.cascade_outcomes lab ~source:focus in
    let outcomes = List.filteri (fun i _ -> i < max_tweets) outcomes in
    List.filter_map
      (fun (_, active) ->
        let sink = Rng.int rng sub_n in
        if sink = sub_focus then None
        else begin
          let z = active.(node_of_sub.(sink)) in
          (* candidate known flows: other active sub-nodes *)
          let conditions =
            if known_flows = 0 then Conditions.empty
            else begin
              let candidates = ref [] in
              Array.iteri
                (fun v' v ->
                  if v' <> sub_focus && v' <> sink && active.(v) then
                    (* only feasible conditions: the subgraph must allow
                       the flow at all *)
                    if
                      Iflow_graph.Traverse.reaches
                        (Beta_icm.graph sub_model)
                        ~src:sub_focus ~dst:v'
                    then candidates := v' :: !candidates)
                node_of_sub;
              let chosen = List.filteri (fun i _ -> i < known_flows) !candidates in
              Conditions.v (List.map (fun v' -> (sub_focus, v', true)) chosen)
            end
          in
          match
            Estimator.flow_probability ~conditions rng icm config
              ~src:sub_focus ~dst:sink
          with
          | estimate -> Some { Measures.estimate; outcome = z }
          | exception Failure _ -> None
        end)
      outcomes
  end

let run scale rng lab =
  let config = Scale.mcmc scale in
  let focus_count = Scale.pick scale ~quick:8 ~full:50 in
  let max_tweets = Scale.pick scale ~quick:25 ~full:100 in
  let focuses = Twitter_lab.interesting_users lab ~count:focus_count in
  List.map
    (fun (radius, known_flows) ->
      let predictions =
        List.concat_map
          (fun focus ->
            focus_predictions rng lab config ~focus ~radius ~known_flows
              ~max_tweets)
          focuses
      in
      let label =
        Printf.sprintf "Fig 2 radius %d, %d known flows" radius known_flows
      in
      { radius; known_flows; bucket = Bucket.run ~bins:30 ~label predictions })
    [ (1, 0); (2, 0); (1, 5); (2, 5) ]

let report scale rng lab ppf =
  let results = run scale rng lab in
  Format.fprintf ppf "@[<v>== Fig 2: attributed Twitter bucket experiments ==@,";
  List.iter
    (fun r ->
      Format.fprintf ppf "-- radius %d, %d known flows --@,%a" r.radius
        r.known_flows Bucket.pp r.bucket)
    results;
  Format.fprintf ppf "@,@]";
  results
