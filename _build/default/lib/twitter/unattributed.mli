(** Unattributed evidence from hashtag and URL adoption (paper Section
    V-D).

    Hashtags and URLs can enter Twitter from the outside world, so the
    paper adds an {i omnipotent user} every user implicitly follows and
    who "is the true originator of all tweets". We augment the graph
    with that node and build one activation-time trace per hashtag/URL:
    the omnipotent user activates at time 0, each real user at the rank
    of their first use of the item. *)

val augment_with_omnipotent : Iflow_graph.Digraph.t -> Iflow_graph.Digraph.t * int
(** [(augmented, omni)] where [omni] is the new node, with an edge to
    every original node. Existing node and edge ids are preserved. *)

type item_kind = Hashtag | Url

val item_traces :
  ?min_users:int ->
  kind:item_kind ->
  node_of_name:(string -> int option) ->
  n_nodes:int ->
  omni:int ->
  Tweet.t list ->
  (string * Iflow_core.Evidence.trace) list
(** One trace per distinct item over the augmented graph ([n_nodes] must
    already count the omnipotent node). The omnipotent user is the
    single source, at time 0; real users activate at the rank of their
    first use. Items used by fewer than [min_users] (default 1) distinct
    users are dropped. Keep the default: items that never spread are the
    {i negative} evidence — restricting to spreading items conditions
    training on success and inflates every edge estimate. *)
