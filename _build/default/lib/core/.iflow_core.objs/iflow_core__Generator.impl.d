lib/core/generator.ml: Array Beta_icm Icm Iflow_graph Iflow_stats List
