(** Tweets and their syntax (paper Section IV-B).

    A tweet is at most 140 characters of text. Conventions parsed here:
    - [@name] references another user;
    - [#tag] attaches a hashtag;
    - [http://...] carries a (typically shortened) URL;
    - a retweet prefixes the forwarded text with [RT @name: ], and
      chains of retweets nest the prefix ([RT @a: RT @b: ...]), with the
      nearest ancestor first.

    The 140-character limit truncates deep chains — exactly the
    artefact the paper blames for the scarcity of long retweet chains —
    so the parser must tolerate text cut mid-token. *)

type t = {
  id : int;
  author : string;
  time : int; (** abstract, monotone timestamp *)
  text : string;
}

val max_length : int
(** 140. *)

val make : id:int -> author:string -> time:int -> text:string -> t
(** Truncates [text] to {!max_length}. *)

val mentions : string -> string list
(** All [@name] references, in order of appearance. *)

val hashtags : string -> string list
(** All [#tag] tags (without the [#]), in order, deduplicated. *)

val urls : string -> string list
(** All [http://]/[https://] tokens, in order, deduplicated. *)

val retweet_chain : string -> string list * string
(** [retweet_chain text] is [(ancestors, root_text)]: the RT-prefix
    names nearest-first, and the remaining (root) text. A tweet with no
    RT prefix returns [([], text)]. A chain cut by truncation yields the
    ancestors that survived intact. *)

val is_retweet : string -> bool

val retweet : id:int -> retweeter:string -> time:int -> of_:t -> t
(** Build the retweet a user would post: [RT @author: text],
    truncated. *)

val pp : Format.formatter -> t -> unit
