(** Buffered reads and careful writes over a socket.

    One reader per connection: a fixed read buffer plus a line
    splitter, shared by both wire dialects (HTTP header lines and raw
    JSONL), so the server can sniff the first line of a connection and
    then keep reading in whichever dialect it turned out to be.

    Lines are capped: a peer streaming an unbounded "line" is an
    admission-control problem, not an out-of-memory one. *)

type reader

val reader : ?max_line_bytes:int -> Unix.file_descr -> reader
(** Default cap 1 MiB per line. *)

type line =
  | Line of string     (** one line, terminator stripped (LF or CRLF) *)
  | Eof                (** clean end of stream *)
  | Too_long           (** line exceeded the cap; connection unusable *)
  | Timeout            (** the fd's [SO_RCVTIMEO] expired with the line
                           unfinished — the slow-loris guard; the
                           connection should be closed *)

val read_line : reader -> line
(** Raises [Unix.Unix_error] on hard socket errors ([EINTR] retried;
    [EAGAIN]/[EWOULDBLOCK] from a receive timeout becomes
    {!Timeout}). *)

val read_exactly : reader -> int -> string option
(** [read_exactly r n] returns [n] bytes (for Content-Length bodies) or
    [None] when the stream ends — or times out — first. *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string ([EINTR]/short writes retried). Raises
    [Unix.Unix_error] (e.g. [EPIPE]) when the peer is gone. *)
