(* Deadline-machinery overhead benchmark: the ISSUE 10 acceptance
   number. Every request now rides a Cancel token through the queue
   and into the engine; this measures what that costs when deadlines
   are NOT doing anything — the steady state for clients that never
   set one, and for clients whose budgets are ample.

   Serving-path arms (loopback TCP, cached requests — the worst case
   for relative overhead, since there is no sampling to hide behind):

   - off:    no deadline on any request — the shared disarmed token
             plus one status check at dequeue;
   - armed:  every request carries deadline_ms=60000 — an armed,
             never-tripping token: absolute-deadline arithmetic at
             decode, the admission floor check, the dequeue status
             check, and the engine's round-boundary polls.

   The PR pins the disarmed token's direct-call overhead < 1%: for
   requests that never asked for a deadline the machinery must be
   invisible. Arms alternate within each round and are compared as
   paired ratios, so scheduler noise hits both arms alike. A
   direct-call microbench (cache-hit Engine.query bare / with the
   shared disarmed token / with an armed token) isolates the
   engine-side cost from the socket path.

   Results go to BENCH_PR10.json. --quick / IFLOW_BENCH_QUICK=1
   shortens for CI. *)

module Rng = Iflow_stats.Rng
module Digraph = Iflow_graph.Digraph
module Beta_icm = Iflow_core.Beta_icm
module Generator = Iflow_core.Generator
module Cancel = Iflow_mcmc.Cancel
module Engine = Iflow_engine.Engine
module Query = Iflow_engine.Query
module Clock = Iflow_obs.Clock
module Flight = Iflow_obs.Flight
module Jsonl = Iflow_engine.Jsonl
module Sockio = Iflow_serve.Sockio
module Server = Iflow_serve.Server

let quick =
  Array.exists (fun a -> a = "--quick") Sys.argv
  || Sys.getenv_opt "IFLOW_BENCH_QUICK" <> None

let rounds = 5
let clients = 8
let requests_per_round = if quick then 2_000 else 20_000

(* the direct deltas are a few ns on a ~2us call, so the floor is
   estimated as the min over many short interleaved reps — one long
   rep per arm cannot resolve sub-1% at this machine's noise level *)
let direct_reps = if quick then 3 else 15
let direct_calls = if quick then 20_000 else 200_000
let warm_set = 32

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let ask r fd line =
  Sockio.write_all fd (line ^ "\n");
  match Sockio.read_line r with
  | Sockio.Line l -> l
  | Sockio.Eof | Sockio.Too_long | Sockio.Timeout ->
    failwith "deadline_bench: session lost"

let assert_answer line =
  match Jsonl.parse line with
  | Ok json when Jsonl.member "estimate" json <> None -> ()
  | Ok _ -> failwith ("deadline_bench: refused: " ^ line)
  | Error msg -> failwith ("deadline_bench: bad response: " ^ msg)

let query_line ?deadline_ms (src, dst) =
  match deadline_ms with
  | None -> Printf.sprintf {|{"type":"flow","src":%d,"dst":%d}|} src dst
  | Some ms ->
    Printf.sprintf {|{"deadline_ms":%d,"type":"flow","src":%d,"dst":%d}|} ms
      src dst

(* closed-loop cached storm: [clients] sessions splitting [total]
   requests drawn round-robin from the warm set; returns qps *)
let run_storm server ~total lines =
  let per = max 1 (total / clients) in
  let m = Mutex.create () in
  let cv = Condition.create () in
  let go = ref false in
  let ready = ref 0 in
  let client _i =
    let fd = connect (Server.port server) in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let r = Sockio.reader fd in
        Mutex.protect m (fun () ->
            incr ready;
            Condition.broadcast cv;
            while not !go do
              Condition.wait cv m
            done);
        for j = 0 to per - 1 do
          assert_answer (ask r fd lines.(j mod Array.length lines))
        done)
  in
  let threads = List.init clients (fun i -> Thread.create client i) in
  Mutex.protect m (fun () ->
      while !ready < clients do
        Condition.wait cv m
      done);
  let t0 = Clock.now_ns () in
  Mutex.protect m (fun () ->
      go := true;
      Condition.broadcast cv);
  List.iter Thread.join threads;
  let wall = Clock.seconds_of_ns (Clock.elapsed_ns t0) in
  float_of_int (per * clients) /. wall

let () =
  let rng = Rng.create 20120402 in
  let model = Generator.default_beta_icm rng ~nodes:6000 ~edges:12000 in
  let icm = Beta_icm.expected_icm model in
  let g = Beta_icm.graph model in
  let n = Digraph.n_nodes g in
  let light =
    {
      Engine.default_config with
      Engine.chains = 2;
      burn_in = 50;
      thin = 2;
      round_samples = 50;
      max_samples = 100;
      rhat_target = 10.0;
      cache_capacity = 4096;
    }
  in
  Printf.printf
    "deadline_bench: %d nodes, %d edges; %d clients, %d cached requests \
     per round, %d rounds per arm%s\n%!"
    n (Digraph.n_edges g) clients requests_per_round rounds
    (if quick then " (quick)" else "");

  (* ---- direct-call microbench: token cost on the engine path ---- *)
  let engine = Engine.create ~config:light ~seed:7 icm in
  let q = Query.flow ~src:0 ~dst:(n / 2) () in
  ignore (Engine.query engine q) (* warm the cache *);
  (* each arm runs [direct_reps] interleaved reps and keeps its
     fastest — the rep least disturbed by whatever else the machine
     was doing *)
  let timed f =
    let t0 = Clock.now_ns () in
    for _ = 1 to direct_calls do
      f ()
    done;
    float_of_int (Clock.elapsed_ns t0) /. float_of_int direct_calls
  in
  let f_bare () = ignore (Engine.query engine q) in
  (* what the server does for a deadline-free request: the shared
     disarmed token — one atomic load per poll, no allocation *)
  let f_disarmed () = ignore (Engine.query ~cancel:Cancel.none engine q) in
  let f_armed =
    let cancel = Cancel.with_budget ~budget_ns:(3_600 * 1_000_000_000) () in
    fun () -> ignore (Engine.query ~cancel ~on_deadline:`Partial engine q)
  in
  let arms = [| ("bare", f_bare); ("disarmed", f_disarmed); ("armed", f_armed) |] in
  Array.iter (fun (_, f) -> for _ = 1 to direct_calls / 10 do f () done) arms;
  let mins = Array.map (fun _ -> infinity) arms in
  for _rep = 1 to direct_reps do
    Array.iteri
      (fun i (_, f) -> mins.(i) <- Float.min mins.(i) (timed f))
      arms
  done;
  Array.iteri
    (fun i (label, _) ->
      Printf.printf "  direct %-10s %8.1f ns/call (cache hit, min of %d)\n%!"
        label mins.(i) direct_reps)
    arms;
  let bare_ns = mins.(0) and disarmed_ns = mins.(1) and armed_ns = mins.(2) in

  (* ---- serving-path arms: one server, two line sets ---- *)
  let config =
    { Server.default_config with Server.queue_capacity = 256; workers = 4 }
  in
  let server = Server.create ~config ~engine () in
  Server.start server;
  let best = Hashtbl.create 2 in
  let ratios = ref [] in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let pairs = Array.init warm_set (fun i -> (i, (i + (n / 2)) mod n)) in
      let lines_off = Array.map (fun p -> query_line p) pairs in
      let lines_armed =
        Array.map (fun p -> query_line ~deadline_ms:60_000 p) pairs
      in
      (* warm the cache through the server once *)
      let fd = connect (Server.port server) in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let r = Sockio.reader fd in
          Array.iter (fun line -> assert_answer (ask r fd line)) lines_off);
      for round = 1 to rounds do
        let one (label, lines) =
          let qps = run_storm server ~total:requests_per_round lines in
          Printf.printf "  round %d %-6s %10.0f qps\n%!" round label qps;
          let prev = Option.value ~default:0.0 (Hashtbl.find_opt best label) in
          Hashtbl.replace best label (Float.max prev qps);
          qps
        in
        let off = one ("off", lines_off) in
        let armed = one ("armed", lines_armed) in
        ratios := (armed /. off) :: !ratios
      done);
  let qps label = Hashtbl.find best label in
  (* machine drift between rounds dwarfs the effect being measured, so
     compare arms within each round and take the median ratio — paired,
     so a slow patch of wall-clock hits both arms alike *)
  let median_ratio =
    let a = Array.of_list !ratios in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let armed_overhead = 100.0 *. (1.0 -. median_ratio) in
  (* the pinned number: what the machinery costs requests that never
     asked for a deadline — the shared disarmed token on the engine's
     cache-hit path, where there is nothing to hide behind *)
  let disarmed_overhead = 100.0 *. ((disarmed_ns /. bare_ns) -. 1.0) in
  Printf.printf
    "best: off %.0f qps, armed %.0f qps (%.2f%% vs off)\n%!"
    (qps "off") (qps "armed") armed_overhead;
  Printf.printf
    "direct cache hit: bare %.1f ns, disarmed token %.1f ns (%.2f%% — \
     budget 1%%), armed token %.1f ns\n%!"
    bare_ns disarmed_ns disarmed_overhead armed_ns;

  let json =
    Jsonl.Obj
      [
        ("bench", Jsonl.Str "deadline_overhead");
        ("pr", Jsonl.Num 10.0);
        ("quick", Jsonl.Bool quick);
        ( "workload",
          Jsonl.Obj
            [
              ("nodes", Jsonl.Num (float_of_int n));
              ("edges", Jsonl.Num (float_of_int (Digraph.n_edges g)));
              ("clients", Jsonl.Num (float_of_int clients));
              ( "requests_per_round",
                Jsonl.Num (float_of_int requests_per_round) );
              ("rounds", Jsonl.Num (float_of_int rounds));
              ("dialect", Jsonl.Str "jsonl_cached");
            ] );
        ( "note",
          Jsonl.Str
            "cached loopback storm, best round per arm (arms alternate \
             within each round); off = no deadline on any request \
             (shared disarmed token), armed = deadline_ms=60000 \
             on every request (armed, never-tripping token: decode \
             arithmetic + admission floor check + dequeue status check \
             + engine round polls). Pinned: the disarmed token's \
             direct-call overhead < 1%, the cost paid by requests \
             that never set a deadline. The serve-path armed-vs-off \
             delta is reported alongside as the median of per-round \
             paired ratios (machine drift between rounds dwarfs the \
             effect at these qps; pairing cancels it)." );
        ( "serve",
          Jsonl.Obj
            [
              ("off_qps", Jsonl.Num (qps "off"));
              ("armed_qps", Jsonl.Num (qps "armed"));
              ("armed_overhead_percent_vs_off", Jsonl.Num armed_overhead);
            ] );
        ( "direct",
          Jsonl.Obj
            [
              ("bare_ns_per_call", Jsonl.Num bare_ns);
              ("disarmed_token_ns_per_call", Jsonl.Num disarmed_ns);
              ("armed_token_ns_per_call", Jsonl.Num armed_ns);
              ( "disarmed_overhead_percent_vs_bare",
                Jsonl.Num disarmed_overhead );
              ("budget_percent", Jsonl.Num 1.0);
            ] );
      ]
  in
  let oc = open_out "BENCH_PR10.json" in
  output_string oc (Bench_obs.pretty json);
  close_out oc;
  Printf.printf "wrote BENCH_PR10.json\n%!";
  Bench_obs.write_metrics_out ()
