type level = Error | Warn | Info | Debug

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3
let current = ref Warn
let set_level l = current := l
let level () = !current

let string_of_level = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii s with
  | "error" | "err" -> Result.Ok Error
  | "warn" | "warning" -> Result.Ok Warn
  | "info" -> Result.Ok Info
  | "debug" -> Result.Ok Debug
  | other ->
    Result.Error
      (Printf.sprintf "unknown log level %S (expected error|warn|info|debug)"
         other)

let log lvl ?component fmt =
  if severity lvl <= severity !current then begin
    let ppf = Format.err_formatter in
    (match component with
    | Some c -> Format.fprintf ppf "%s [%s] " (string_of_level lvl) c
    | None -> Format.fprintf ppf "%s " (string_of_level lvl));
    Format.kfprintf (fun ppf -> Format.fprintf ppf "@.") ppf fmt
  end
  else Format.ifprintf Format.err_formatter fmt

let err ?component fmt = log Error ?component fmt
let warn ?component fmt = log Warn ?component fmt
let info ?component fmt = log Info ?component fmt
let debug ?component fmt = log Debug ?component fmt
