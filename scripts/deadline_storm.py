#!/usr/bin/env python3
"""Deadline-storm chaos driver for `infoflow serve`: many concurrent
clients, every request carrying a tight randomized deadline (1-50 ms by
default) against a server whose queries take comparable time. Expects a
server already listening (the CI chaos job backgrounds one). Stdlib
only. Asserts:

  - every request settles into exactly one TYPED outcome: a full
    answer, a partial answer ("partial":true), deadline_exceeded, or
    deadline_unmeetable — never a closed connection, a hang, or an
    untyped error (quota_exceeded / over_capacity are retried with
    backoff, as the admission-control client contract requires);
  - the server's iflow_serve_deadline_total{outcome=...} counters agree
    exactly with the client-observed outcome counts — every
    deadline-carrying request is accounted once, under exactly the
    contention the counters exist to describe;
  - the whole storm fits a wall-clock budget: tight deadlines must make
    the system shed faster, not wedge it.

Exits non-zero on any failure."""

import argparse
import json
import os
import random
import socket
import sys
import threading
import time
import urllib.request

FAILURES = []
FAIL_LOCK = threading.Lock()

OUTCOMES = ("ok", "partial", "deadline_exceeded", "deadline_unmeetable")
RETRYABLE = ("over_capacity", "quota_exceeded")
MAX_RETRIES = 60
RETRY_SLEEP = 0.05


def fail(msg):
    with FAIL_LOCK:
        FAILURES.append(msg)


class Recorder:
    def __init__(self):
        self.lock = threading.Lock()
        self.counts = {o: 0 for o in OUTCOMES}
        self.retried_sheds = 0

    def outcome(self, o):
        with self.lock:
            self.counts[o] += 1

    def shed(self):
        with self.lock:
            self.retried_sheds += 1


def storm_client(host, port, requests, timeout, rec):
    """One raw-TCP JSONL session issuing deadline-carrying requests.
    Terminal outcomes are counted; retryable sheds back off and retry
    the same request (retries never double-count: the deadline counters
    only move on terminal outcomes)."""
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            f = sock.makefile("rwb")
            for req in requests:
                for attempt in range(MAX_RETRIES):
                    f.write((json.dumps(req) + "\n").encode())
                    f.flush()
                    line = f.readline()
                    if not line:
                        fail("server closed a storm session mid-stream")
                        return
                    reply = json.loads(line)
                    if "estimate" in reply:
                        rec.outcome(
                            "partial" if reply.get("partial") else "ok")
                        break
                    err = reply.get("error")
                    if err in ("deadline_exceeded", "deadline_unmeetable"):
                        rec.outcome(err)
                        break
                    if err in RETRYABLE:
                        rec.shed()
                        time.sleep(RETRY_SLEEP * (1 + attempt))
                        continue
                    fail(f"untyped storm outcome: {reply}")
                    break
                else:
                    fail(f"request still shed after {MAX_RETRIES} "
                         f"retries: {req}")
    except Exception as e:  # noqa: BLE001 - anything here is a failure
        fail(f"storm client: {e!r}")


def scrape_deadline_totals(host, port, timeout):
    req = urllib.request.Request(f"http://{host}:{port}/metrics")
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        exposition = resp.read().decode()
    totals = {}
    for line in exposition.splitlines():
        if line.startswith("iflow_serve_deadline_total{"):
            labels, value = line.rsplit(" ", 1)
            for o in OUTCOMES:
                if f'outcome="{o}"' in labels:
                    totals[o] = totals.get(o, 0) + int(float(value))
    return totals, exposition


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, required=True)
    ap.add_argument("--nodes", type=int, default=40,
                    help="node count of the served model")
    ap.add_argument("--clients", type=int, default=64)
    ap.add_argument("--requests-per-client", type=int, default=25)
    ap.add_argument("--deadline-ms-min", type=int, default=1)
    ap.add_argument("--deadline-ms-max", type=int, default=50)
    ap.add_argument("--request-timeout", type=float, default=30.0,
                    help="per-socket timeout: no single read may hang")
    ap.add_argument("--budget", type=float, default=300.0,
                    help="wall-clock budget for the whole storm")
    ap.add_argument("--seed", type=int, default=20120402)
    ap.add_argument("--metrics-out", default=None,
                    help="save the final /metrics exposition here")
    args = ap.parse_args()
    host, port, n = args.host, args.port, args.nodes

    # hard wall-clock backstop: a wedged server must fail the job in
    # minutes, not at the CI timeout
    def overdue():
        print(f"\nFAIL: storm exceeded its {args.budget}s wall-clock "
              "budget — tight deadlines wedged the server instead of "
              "shedding load", file=sys.stderr)
        os._exit(2)

    watchdog = threading.Timer(args.budget, overdue)
    watchdog.daemon = True
    watchdog.start()
    t_start = time.monotonic()

    # baseline: the counters may not be zero if anything deadline-laden
    # ran before us, so assert on the delta
    base, _ = scrape_deadline_totals(host, port, args.request_timeout)

    rng = random.Random(args.seed)
    rec = Recorder()
    threads = []
    total_requests = 0
    for _ in range(args.clients):
        requests = []
        for _ in range(args.requests_per_client):
            src = rng.randrange(n)
            dst = rng.randrange(n)
            while dst == src:  # self-flows answer exactly, no deadline risk
                dst = rng.randrange(n)
            requests.append({
                "type": "flow", "src": src, "dst": dst,
                "deadline_ms": rng.randint(args.deadline_ms_min,
                                           args.deadline_ms_max),
            })
        total_requests += len(requests)
        threads.append(threading.Thread(
            target=storm_client,
            args=(host, port, requests, args.request_timeout, rec)))
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.monotonic() - t_start
    watchdog.cancel()

    settled = sum(rec.counts.values())
    print(f"storm: {args.clients} clients x {args.requests_per_client} "
          f"requests, deadlines {args.deadline_ms_min}-"
          f"{args.deadline_ms_max} ms, {wall:.1f}s wall")
    print(f"client outcomes: {rec.counts} "
          f"({rec.retried_sheds} sheds retried)")
    if settled != total_requests:
        fail(f"{total_requests} requests sent but only {settled} "
             "settled into a typed outcome")

    # the server's accounting must match what the clients saw, exactly
    totals, exposition = scrape_deadline_totals(host, port,
                                                args.request_timeout)
    delta = {o: totals.get(o, 0) - base.get(o, 0) for o in OUTCOMES}
    print(f"server iflow_serve_deadline_total delta: {delta}")
    for o in OUTCOMES:
        if delta[o] != rec.counts[o]:
            fail(f"outcome {o}: server counted {delta[o]}, "
                 f"clients observed {rec.counts[o]}")
    if args.metrics_out:
        with open(args.metrics_out, "w") as f:
            f.write(exposition)
        print(f"wrote {args.metrics_out} ({len(exposition)} bytes)")

    if FAILURES:
        print("\nFAILURES:", file=sys.stderr)
        for msg in FAILURES:
            print(f"  - {msg}", file=sys.stderr)
        return 1
    print("deadline storm: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
