lib/learn/goyal.mli: Iflow_core Trainer
