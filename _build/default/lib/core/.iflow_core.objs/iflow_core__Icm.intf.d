lib/core/icm.mli: Format Iflow_graph
