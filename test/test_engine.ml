open Iflow_engine
module Icm = Iflow_core.Icm
module Exact = Iflow_core.Exact
module Gen = Iflow_graph.Gen
module Digraph = Iflow_graph.Digraph
module Rng = Iflow_stats.Rng
module Fingerprint = Iflow_stats.Fingerprint

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* a brute-force-checkable 5-node model *)
let five_node_icm seed =
  let rng = Rng.create seed in
  let g = Gen.gnm rng ~nodes:5 ~edges:12 in
  Icm.create g (Array.init 12 (fun _ -> 0.1 +. (0.8 *. Rng.uniform rng)))

let test_engine_config =
  {
    Engine.default_config with
    Engine.chains = 4;
    burn_in = 300;
    thin = 5;
    round_samples = 250;
    max_samples = 8000;
    rhat_target = 1.05;
    mcse_target = 0.01;
  }

(* ---------- Fingerprint ---------- *)

let test_fingerprint_deterministic () =
  let digest xs =
    let fp = Fingerprint.create () in
    List.iter (Fingerprint.add_int fp) xs;
    Fingerprint.to_hex fp
  in
  Alcotest.(check string) "same input" (digest [ 1; 2; 3 ]) (digest [ 1; 2; 3 ]);
  Alcotest.(check bool) "order matters" true
    (digest [ 1; 2; 3 ] <> digest [ 3; 2; 1 ]);
  let fp = Fingerprint.create () in
  Fingerprint.add_string fp "ab";
  Fingerprint.add_string fp "c";
  let fp' = Fingerprint.create () in
  Fingerprint.add_string fp' "a";
  Fingerprint.add_string fp' "bc";
  Alcotest.(check bool) "string framing" true
    (Fingerprint.to_hex fp <> Fingerprint.to_hex fp');
  Alcotest.(check bool) "seed non-negative" true (Fingerprint.to_seed fp >= 0)

let test_model_digest () =
  let icm = five_node_icm 11 in
  Alcotest.(check string) "stable" (Engine.icm_digest icm)
    (Engine.icm_digest icm);
  let probs = Icm.probs icm in
  probs.(0) <- probs.(0) +. 1e-9;
  let perturbed = Icm.create (Icm.graph icm) probs in
  Alcotest.(check bool) "sensitive to probabilities" true
    (Engine.icm_digest icm <> Engine.icm_digest perturbed)

(* ---------- Jsonl ---------- *)

let test_jsonl_parse () =
  (match Jsonl.parse {|{"a":1,"b":[true,null,"x\n"],"c":-2.5e1}|} with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok v ->
    Alcotest.(check (option int)) "int field" (Some 1)
      (Option.bind (Jsonl.member "a" v) Jsonl.to_int);
    (match Option.bind (Jsonl.member "b" v) Jsonl.to_list with
    | Some [ Jsonl.Bool true; Jsonl.Null; Jsonl.Str "x\n" ] -> ()
    | _ -> Alcotest.fail "list field");
    (match Jsonl.member "c" v with
    | Some (Jsonl.Num f) -> check_close "number" (-25.0) f
    | _ -> Alcotest.fail "num field"));
  (match Jsonl.parse "{\"a\":}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted malformed object");
  match Jsonl.parse "1 trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted trailing garbage"

(* ---------- Query ---------- *)

let test_query_canonicalisation () =
  let a = Query.community ~src:0 ~sinks:[ 4; 2; 2 ] () in
  let b = Query.community ~src:0 ~sinks:[ 2; 4 ] () in
  Alcotest.(check bool) "sinks sorted and deduped" true (Query.equal a b);
  let c =
    Query.flow ~conditions:[ (1, 2, true); (0, 3, false) ] ~src:0 ~dst:4 ()
  in
  let d =
    Query.flow ~conditions:[ (0, 3, false); (1, 2, true) ] ~src:0 ~dst:4 ()
  in
  Alcotest.(check string) "condition order irrelevant" (Query.key c)
    (Query.key d);
  Alcotest.check_raises "empty sinks" (Invalid_argument "Query: empty sink list")
    (fun () -> ignore (Query.community ~src:0 ~sinks:[] ()))

let test_query_of_line () =
  (match Query.of_line {|{"type":"flow","src":1,"dst":3}|} with
  | Ok q -> Alcotest.(check string) "flow" "flow 1 3" (Query.key q)
  | Error msg -> Alcotest.failf "flow: %s" msg);
  (match
     Query.of_line
       {|{"type":"joint","flows":[[1,3],[0,2]],"conditions":[[0,1,"+"],[2,3,false]]}|}
   with
  | Ok q ->
    Alcotest.(check string) "joint" "joint 0>2 1>3 | 0:1:+ 2:3:-" (Query.key q)
  | Error msg -> Alcotest.failf "joint: %s" msg);
  (match Query.of_line {|{"type":"flow","src":1}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted flow without dst");
  match Query.of_line {|{"type":"teleport","src":1,"dst":2}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown type"

(* ---------- Lru ---------- *)

let test_lru_eviction_order () =
  let c = Lru.create 2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Alcotest.(check (option int)) "a present" (Some 1) (Lru.find c "a");
  (* "b" is now least-recently-used; adding "c" evicts it *)
  Lru.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "c present" (Some 3) (Lru.find c "c");
  let s = Lru.stats c in
  Alcotest.(check int) "hits" 3 s.Lru.hits;
  Alcotest.(check int) "misses" 1 s.Lru.misses;
  Alcotest.(check int) "evictions" 1 s.Lru.evictions;
  Alcotest.(check int) "entries" 2 s.Lru.entries

let test_lru_zero_capacity () =
  let c = Lru.create 0 in
  Lru.add c "a" 1;
  Alcotest.(check (option int)) "disabled" None (Lru.find c "a");
  Alcotest.(check int) "no entries" 0 (Lru.length c)

(* ---------- Diagnostics ---------- *)

let iid_chain rng n = Array.init n (fun _ -> Rng.uniform rng)

let test_diagnostics_iid_chains () =
  let rng = Rng.create 101 in
  let chains = Array.init 4 (fun _ -> iid_chain rng 2000) in
  let s = Diagnostics.summary chains in
  Alcotest.(check bool) "rhat near 1" true (s.Diagnostics.rhat < 1.02);
  Alcotest.(check bool) "ess near n" true
    (s.Diagnostics.ess > 0.5 *. 8000.0 && s.Diagnostics.ess <= 1.05 *. 8000.0);
  (* iid uniform: sd = sqrt(1/12), so MCSE ~ sd / sqrt(ess) *)
  Alcotest.(check bool) "mcse sane" true
    (s.Diagnostics.mcse > 0.001 && s.Diagnostics.mcse < 0.01);
  check_close ~eps:0.02 "mean" 0.5 s.Diagnostics.mean

let test_diagnostics_divergent_chains () =
  let rng = Rng.create 102 in
  let chains =
    Array.init 4 (fun i ->
        let offset = float_of_int i in
        Array.init 500 (fun _ -> offset +. Rng.uniform rng))
  in
  let r = Diagnostics.split_rhat chains in
  Alcotest.(check bool) "rhat far above 1" true (r > 1.5)

let test_diagnostics_constant_chains () =
  let same = Array.init 3 (fun _ -> Array.make 100 1.0) in
  check_close "identical constants converge" 1.0 (Diagnostics.split_rhat same);
  let split = [| Array.make 100 1.0; Array.make 100 0.0 |] in
  Alcotest.(check bool) "disagreeing constants diverge" true
    (Diagnostics.split_rhat split = Float.infinity);
  Alcotest.(check bool) "too little data is nan" true
    (Float.is_nan (Diagnostics.split_rhat [| [| 1.0 |] |]))

let test_diagnostics_drift_detected () =
  (* a strongly trending chain: split halves disagree, rhat > 1 *)
  let chains =
    [| Array.init 1000 (fun i -> float_of_int i /. 1000.0) |]
  in
  Alcotest.(check bool) "drift inflates split-rhat" true
    (Diagnostics.split_rhat chains > 1.5)

(* ---------- Engine vs brute force ---------- *)

let test_engine_matches_exact () =
  let icm = five_node_icm 11 in
  let engine = Engine.create ~config:test_engine_config ~seed:21 icm in
  let truth = Exact.brute_force_flow icm ~src:0 ~dst:4 in
  let r = Engine.query engine (Query.flow ~src:0 ~dst:4 ()) in
  check_close ~eps:0.03 "flow matches brute force" truth r.Engine.estimate;
  Alcotest.(check bool) "rhat reported near 1" true (r.Engine.rhat < 1.05);
  Alcotest.(check bool) "ess positive" true (r.Engine.ess > 100.0);
  Alcotest.(check bool) "not from cache" false r.Engine.cached

let test_engine_conditional_matches_exact () =
  let icm = five_node_icm 11 in
  let engine = Engine.create ~config:test_engine_config ~seed:22 icm in
  let conditions = [ (0, 2, true) ] in
  let truth = Exact.brute_force_conditional icm ~conditions ~src:0 ~dst:4 in
  let r = Engine.query engine (Query.flow ~conditions ~src:0 ~dst:4 ()) in
  check_close ~eps:0.03 "conditional matches brute force" truth
    r.Engine.estimate

let test_engine_community_matches_exact () =
  let icm = five_node_icm 11 in
  let engine = Engine.create ~config:test_engine_config ~seed:23 icm in
  let truth = Exact.brute_force_community icm ~src:0 ~sinks:[ 3; 4 ] in
  let r = Engine.query engine (Query.community ~src:0 ~sinks:[ 3; 4 ] ()) in
  check_close ~eps:0.03 "community matches brute force" truth
    r.Engine.estimate

(* ---------- Determinism ---------- *)

let test_engine_deterministic () =
  let icm = five_node_icm 12 in
  let q = Query.flow ~src:0 ~dst:4 () in
  let run () =
    let engine = Engine.create ~config:test_engine_config ~seed:31 icm in
    Engine.query engine q
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-for-bit reproducible" true
    (a.Engine.estimate = b.Engine.estimate
    && a.Engine.rhat = b.Engine.rhat
    && a.Engine.total_samples = b.Engine.total_samples)

let test_engine_pool_size_invariant () =
  let icm = five_node_icm 12 in
  let q = Query.flow ~src:0 ~dst:4 () in
  let run domains =
    let config = { test_engine_config with Engine.domains = Some domains } in
    let engine = Engine.create ~config ~seed:32 icm in
    Engine.query engine q
  in
  let a = run 1 and b = run 3 in
  Alcotest.(check bool) "independent of pool size" true
    (a.Engine.estimate = b.Engine.estimate && a.Engine.rhat = b.Engine.rhat)

let test_engine_order_invariant () =
  let icm = five_node_icm 12 in
  let q1 = Query.flow ~src:0 ~dst:4 () in
  let q2 = Query.flow ~src:1 ~dst:3 () in
  let run qs =
    let engine = Engine.create ~config:test_engine_config ~seed:33 icm in
    List.map (fun r -> r.Engine.estimate) (Engine.query_all engine qs)
  in
  match (run [ q1; q2 ], run [ q2; q1 ]) with
  | [ a1; a2 ], [ b2; b1 ] ->
    Alcotest.(check bool) "per-query seeds ignore arrival order" true
      (a1 = b1 && a2 = b2)
  | _ -> Alcotest.fail "wrong result arity"

(* ---------- Cache ---------- *)

let test_engine_cache_hit () =
  let icm = five_node_icm 13 in
  let engine = Engine.create ~config:test_engine_config ~seed:41 icm in
  let q = Query.flow ~src:0 ~dst:4 () in
  let first = Engine.query engine q in
  let second = Engine.query engine q in
  Alcotest.(check bool) "first is computed" false first.Engine.cached;
  Alcotest.(check bool) "second is served from cache" true second.Engine.cached;
  Alcotest.(check bool) "identical estimate" true
    (first.Engine.estimate = second.Engine.estimate
    && first.Engine.total_samples = second.Engine.total_samples);
  let s = Engine.cache_stats engine in
  Alcotest.(check int) "one hit" 1 s.Lru.hits;
  Alcotest.(check int) "one miss" 1 s.Lru.misses

let test_engine_query_all_dedups () =
  let icm = five_node_icm 13 in
  let engine = Engine.create ~config:test_engine_config ~seed:42 icm in
  let q = Query.flow ~src:0 ~dst:4 () in
  let q' = Query.flow ~src:1 ~dst:3 () in
  let results = Engine.query_all engine [ q; q'; q ] in
  (match results with
  | [ a; b; c ] ->
    Alcotest.(check bool) "dup flagged cached" true c.Engine.cached;
    Alcotest.(check bool) "dup identical" true
      (a.Engine.estimate = c.Engine.estimate);
    Alcotest.(check bool) "others computed" true
      ((not a.Engine.cached) && not b.Engine.cached)
  | _ -> Alcotest.fail "wrong result arity");
  let s = Engine.cache_stats engine in
  Alcotest.(check int) "two misses" 2 s.Lru.misses;
  Alcotest.(check int) "one dedup hit" 1 s.Lru.hits

let test_engine_cache_disabled_still_dedups () =
  let icm = five_node_icm 13 in
  let config = { test_engine_config with Engine.cache_capacity = 0 } in
  let engine = Engine.create ~config ~seed:43 icm in
  let q = Query.flow ~src:0 ~dst:4 () in
  (match Engine.query_all engine [ q; q ] with
  | [ a; b ] ->
    Alcotest.(check bool) "dup flagged cached" true b.Engine.cached;
    Alcotest.(check bool) "identical" true
      (a.Engine.estimate = b.Engine.estimate)
  | _ -> Alcotest.fail "wrong result arity");
  (* but separate query calls recompute: nothing is retained *)
  let r = Engine.query engine q in
  Alcotest.(check bool) "no retention without capacity" false r.Engine.cached

(* ---------- Validation ---------- *)

let test_engine_validation () =
  let icm = five_node_icm 14 in
  Alcotest.check_raises "bad config"
    (Invalid_argument "Engine: bad config: chains must be >= 1 (got 0)")
    (fun () ->
      ignore
        (Engine.create
           ~config:{ test_engine_config with Engine.chains = 0 }
           ~seed:1 icm));
  let engine = Engine.create ~config:test_engine_config ~seed:1 icm in
  match Engine.query engine (Query.flow ~src:0 ~dst:99 ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range query accepted"

(* ---------- Deadlines & cancellation ---------- *)

module Cancel = Iflow_mcmc.Cancel

(* mcse_target is unreachable, so the adaptive loop never converges on
   its own — only a tripped cancel token (or max_samples, set far out
   of reach) can stop it. Rounds are tiny so round boundaries come up
   every fraction of a millisecond. *)
let never_converge =
  {
    test_engine_config with
    Engine.planner = false;
    chains = 2;
    burn_in = 20;
    thin = 1;
    round_samples = 20;
    max_samples = 10_000_000;
    rhat_target = 1.0;
    mcse_target = 1e-300;
  }

let test_engine_armed_token_bit_identity () =
  (* a live token with ample budget must not perturb the answer: the
     cancellation checks read the clock but never the RNG *)
  let icm = five_node_icm 12 in
  let q = Query.flow ~src:0 ~dst:4 () in
  let bare =
    let engine = Engine.create ~config:test_engine_config ~seed:31 icm in
    Engine.query engine q
  in
  let armed =
    let engine = Engine.create ~config:test_engine_config ~seed:31 icm in
    let cancel = Cancel.with_budget ~budget_ns:(3_600 * 1_000_000_000) () in
    Engine.query ~cancel ~on_deadline:`Partial engine q
  in
  Alcotest.(check bool) "armed token does not perturb the answer" true
    (bare.Engine.estimate = armed.Engine.estimate
    && bare.Engine.rhat = armed.Engine.rhat
    && bare.Engine.mcse = armed.Engine.mcse
    && bare.Engine.total_samples = armed.Engine.total_samples);
  Alcotest.(check bool) "converged answers are not partial" false
    armed.Engine.partial

let test_engine_pre_expired_sheds_before_sampling () =
  let icm = five_node_icm 12 in
  let config = { test_engine_config with Engine.planner = false } in
  let engine = Engine.create ~config ~seed:31 icm in
  let q = Query.flow ~src:0 ~dst:4 () in
  (* deadline 1 ns after the monotonic epoch: expired long ago *)
  let expired () = Cancel.create ~deadline_ns:1 () in
  let ph = Engine.phases () in
  (match Engine.query ~phases:ph ~cancel:(expired ()) engine q with
  | _ -> Alcotest.fail "expired token still sampled"
  | exception Engine.Deadline_exceeded { rounds; _ } ->
    Alcotest.(check int) "no rounds run" 0 rounds);
  Alcotest.(check int) "no sampling rounds recorded" 0 ph.Engine.rounds;
  (* `Partial cannot conjure an answer from zero rounds *)
  (match Engine.query ~cancel:(expired ()) ~on_deadline:`Partial engine q with
  | _ -> Alcotest.fail "partial answer with no round in hand"
  | exception Engine.Deadline_exceeded { rounds; _ } ->
    Alcotest.(check int) "still zero rounds" 0 rounds);
  (* an explicitly fired token carries its reason out in the exception *)
  let fired = Cancel.create () in
  Cancel.fire ~reason:"client gone" fired;
  match Engine.query ~cancel:fired engine q with
  | _ -> Alcotest.fail "fired token ignored"
  | exception Engine.Deadline_exceeded { reason; _ } ->
    Alcotest.(check string) "fire reason surfaced" "client gone" reason

let test_engine_partial_answer_not_cached () =
  let icm = five_node_icm 14 in
  let engine = Engine.create ~config:never_converge ~seed:51 icm in
  let q = Query.flow ~src:0 ~dst:4 () in
  let budget_ns = 150_000_000 in
  let r =
    Engine.query
      ~cancel:(Cancel.with_budget ~budget_ns ())
      ~on_deadline:`Partial engine q
  in
  Alcotest.(check bool) "flagged partial" true r.Engine.partial;
  Alcotest.(check bool) "pooled at least one full round" true
    (r.Engine.total_samples
    >= never_converge.Engine.chains * never_converge.Engine.round_samples);
  (* the default `Fail policy raises instead of answering *)
  (match Engine.query ~cancel:(Cancel.with_budget ~budget_ns ()) engine q with
  | _ -> Alcotest.fail "never-converging query finished on its own"
  | exception Engine.Deadline_exceeded { rounds; _ } ->
    Alcotest.(check bool) "rounds ran before the deadline" true (rounds >= 1));
  (* partial answers are never cached: ask again and it samples again *)
  let r2 =
    Engine.query
      ~cancel:(Cancel.with_budget ~budget_ns ())
      ~on_deadline:`Partial engine q
  in
  Alcotest.(check bool) "not served from a cache" false r2.Engine.cached;
  Alcotest.(check bool) "still partial" true r2.Engine.partial

let test_engine_deadline_6k_uncached () =
  (* the acceptance bound: a 6000-node uncached MH query under a 20 ms
     deadline must come back typed — partial or Deadline_exceeded —
     within 2x the deadline *)
  let rng = Rng.create 99 in
  let nodes = 6000 and edges = 24_000 in
  let g = Gen.gnm rng ~nodes ~edges in
  let icm =
    Icm.create g (Array.init edges (fun _ -> 0.05 +. (0.3 *. Rng.uniform rng)))
  in
  (* burn-in alone costs tens of seconds at this size: the only way
     out inside the budget is the mid-burn-in cancellation check *)
  let config =
    {
      never_converge with
      Engine.cache_capacity = 0;
      burn_in = 10_000_000;
      thin = 2;
      round_samples = 250;
    }
  in
  let engine = Engine.create ~config ~seed:7 icm in
  let src =
    let rec first n = if Digraph.out_degree g n > 0 then n else first (n + 1) in
    first 0
  in
  let dst = List.hd (Digraph.out_neighbours g src) in
  let q = Query.flow ~src ~dst () in
  let deadline_ms = 20 in
  let t0 = Unix.gettimeofday () in
  let cancel = Cancel.with_budget ~budget_ns:(deadline_ms * 1_000_000) () in
  (match Engine.query ~cancel ~on_deadline:`Partial engine q with
  | r -> Alcotest.(check bool) "answer is flagged partial" true r.Engine.partial
  | exception Engine.Deadline_exceeded _ -> ());
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  Alcotest.(check bool)
    (Printf.sprintf "typed answer within 2x the deadline (took %.1f ms)"
       elapsed_ms)
    true
    (elapsed_ms <= 2.0 *. float_of_int deadline_ms)

let () =
  Alcotest.run "iflow_engine"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "deterministic" `Quick test_fingerprint_deterministic;
          Alcotest.test_case "model digest" `Quick test_model_digest;
        ] );
      ( "jsonl",
        [ Alcotest.test_case "parse" `Quick test_jsonl_parse ] );
      ( "query",
        [
          Alcotest.test_case "canonicalisation" `Quick test_query_canonicalisation;
          Alcotest.test_case "of_line" `Quick test_query_of_line;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "zero capacity" `Quick test_lru_zero_capacity;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "iid chains" `Quick test_diagnostics_iid_chains;
          Alcotest.test_case "divergent chains" `Quick test_diagnostics_divergent_chains;
          Alcotest.test_case "constant chains" `Quick test_diagnostics_constant_chains;
          Alcotest.test_case "drift detected" `Quick test_diagnostics_drift_detected;
        ] );
      ( "engine",
        [
          Alcotest.test_case "flow vs exact" `Slow test_engine_matches_exact;
          Alcotest.test_case "conditional vs exact" `Slow
            test_engine_conditional_matches_exact;
          Alcotest.test_case "community vs exact" `Slow
            test_engine_community_matches_exact;
          Alcotest.test_case "deterministic" `Slow test_engine_deterministic;
          Alcotest.test_case "pool-size invariant" `Slow
            test_engine_pool_size_invariant;
          Alcotest.test_case "order invariant" `Slow test_engine_order_invariant;
          Alcotest.test_case "cache hit" `Slow test_engine_cache_hit;
          Alcotest.test_case "query_all dedups" `Slow
            test_engine_query_all_dedups;
          Alcotest.test_case "cache disabled" `Slow
            test_engine_cache_disabled_still_dedups;
          Alcotest.test_case "validation" `Quick test_engine_validation;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "armed token bit-identity" `Slow
            test_engine_armed_token_bit_identity;
          Alcotest.test_case "pre-expired sheds before sampling" `Quick
            test_engine_pre_expired_sheds_before_sampling;
          Alcotest.test_case "partial answer, never cached" `Slow
            test_engine_partial_answer_not_cached;
          Alcotest.test_case "6k nodes, 20ms deadline, typed in 2x" `Slow
            test_engine_deadline_6k_uncached;
        ] );
    ]
