(** Plain-text serialisation of models and corpora, so the CLI can pass
    artifacts between subcommands.

    betaICM format ([.bicm], v3):
    {v
    # bicm-v3 digest=<fnv-hex> [key=value ...]
    bicm <n_nodes>
    <src> <dst> <alpha> <beta>      (one line per edge)
    # crc32 <hex> <n_bytes>
    v}

    ICM format ([.icm]): same with a single probability column and an
    [# icm-v3] header. v2 files (digest header, no CRC footer) and
    legacy headerless files are still accepted.

    {b Durability.} Model writes are atomic (sibling temporary, fsync,
    rename — {!Iflow_fault.Durable.write_atomic}), so a crash
    mid-checkpoint leaves the previous file intact. The footer is the
    CRC-32 of every byte before it plus that byte count; loaders verify
    both, so truncation and bit flips fail loudly at any byte position
    instead of producing a silently wrong model.

    The header digest is the model's {!Iflow_core.Beta_icm.digest} /
    {!Iflow_core.Icm.digest}; loaders recompute it and raise [Failure]
    on a mismatch, so a corrupted v2 file — or a streaming checkpoint
    replayed against the wrong model or event log — fails loudly. The
    remaining [key=value] fields are free-form metadata (the streaming
    layer records its event offset and version id there).

    Tweets are tab-separated [id author time text] lines, one per tweet
    (tweet text never contains tabs or newlines).

    All loaders raise [Failure] on malformed input; model-file messages
    carry the path and the byte offset (and line number) of the damage,
    so recovery code and operators can tell {e which} checkpoint broke
    and where. *)

val save_beta_icm :
  ?meta:(string * string) list -> string -> Iflow_core.Beta_icm.t -> unit
(** Writes a v3 file atomically. [meta] keys and values must be
    non-empty and free of spaces, [=] and newlines; the [digest] key is
    reserved. Raises [Invalid_argument] otherwise. *)

val load_beta_icm : string -> Iflow_core.Beta_icm.t

val load_beta_icm_meta :
  string -> Iflow_core.Beta_icm.t * (string * string) list
(** Also return the header's metadata fields (including [digest];
    empty for a legacy file). *)

val save_icm :
  ?meta:(string * string) list -> string -> Iflow_core.Icm.t -> unit

val load_icm : string -> Iflow_core.Icm.t
val load_icm_meta : string -> Iflow_core.Icm.t * (string * string) list

val save_tweets : string -> Iflow_twitter.Tweet.t list -> unit
val load_tweets : string -> Iflow_twitter.Tweet.t list

val save_names : string -> string array -> unit
(** One name per line; line number = node id. *)

val load_names : string -> string array
