open Iflow_core
open Iflow_learn
module Rng = Iflow_stats.Rng

type result = {
  em_points : (float * float * float) list;
  mcmc_points : (float * float * float) list;
}

(* Paper Table II: parents A=0, B=1, C=2; sink 3. *)
let table_two () =
  Summary.of_table ~sink:3
    [ ([| 0; 1 |], 100, 50); ([| 1; 2 |], 100, 50); ([| 0; 1; 2 |], 100, 75) ]

let run scale rng =
  let summary = table_two () in
  let restarts = Scale.pick scale ~quick:200 ~full:1000 in
  (* as in the paper's caption: "Fixing Saito at 200 iterations" — no
     early stopping, so restarts land spread along the likelihood ridge *)
  let em_options =
    { Saito.default_options with max_iterations = 200; tolerance = 0.0 }
  in
  let em_points =
    List.map
      (fun (e : Trainer.estimate) ->
        (e.Trainer.mean.(0), e.Trainer.mean.(1), e.Trainer.mean.(2)))
      (Saito.restarts ~options:em_options rng ~n:restarts summary)
  in
  let samples = Scale.pick scale ~quick:1000 ~full:3000 in
  let mcmc =
    Joint_bayes.run
      ~options:
        { Joint_bayes.default_options with burn_in = 500; samples; thin = 3 }
      rng summary
  in
  let mcmc_points =
    Array.to_list
      (Array.map (fun s -> (s.(0), s.(1), s.(2))) mcmc.Joint_bayes.samples)
  in
  { em_points; mcmc_points }

let density_grid ~cells ~lo ~hi points =
  if cells <= 0 || hi <= lo then invalid_arg "Fig11.density_grid";
  let grid = Array.make_matrix cells cells 0 in
  let cell v =
    let c = int_of_float ((v -. lo) /. (hi -. lo) *. float_of_int cells) in
    max 0 (min (cells - 1) c)
  in
  List.iter
    (fun (x, y) -> grid.(cell y).(cell x) <- grid.(cell y).(cell x) + 1)
    points;
  grid

let pp_grid ppf grid ~lo ~hi ~xlabel ~ylabel =
  let cells = Array.length grid in
  let glyph c =
    if c = 0 then '.'
    else if c < 3 then ':'
    else if c < 10 then 'o'
    else if c < 40 then 'O'
    else '@'
  in
  Format.fprintf ppf "%s (y) vs %s (x), [%.2f, %.2f]^2@." ylabel xlabel lo hi;
  for row = cells - 1 downto 0 do
    Format.fprintf ppf "  ";
    Array.iter (fun c -> Format.fprintf ppf "%c" (glyph c)) grid.(row);
    Format.fprintf ppf "@."
  done

let report scale rng ppf =
  let r = run scale rng in
  Format.fprintf ppf
    "@[<v>== Fig 11 / Table II: EM local maxima vs joint Bayes posterior ==@,";
  Format.fprintf ppf "%a@," Summary.pp (table_two ());
  let ab points = List.map (fun (a, b, _) -> (a, b)) points in
  let ac points = List.map (fun (a, _, c) -> (a, c)) points in
  Format.fprintf ppf "-- Saito EM, %d random restarts --@,"
    (List.length r.em_points);
  pp_grid ppf (density_grid ~cells:24 ~lo:0.0 ~hi:0.8 (ab r.em_points))
    ~lo:0.0 ~hi:0.8 ~xlabel:"P(A)" ~ylabel:"P(B)";
  pp_grid ppf (density_grid ~cells:24 ~lo:0.0 ~hi:0.8 (ac r.em_points))
    ~lo:0.0 ~hi:0.8 ~xlabel:"P(A)" ~ylabel:"P(C)";
  let spread label points =
    let coord f = Array.of_list (List.map f points) in
    let stats xs =
      ( Iflow_stats.Descriptive.mean xs,
        Iflow_stats.Descriptive.std xs )
    in
    let (ma, sa) = stats (coord (fun (a, _, _) -> a)) in
    let (mb, sb) = stats (coord (fun (_, b, _) -> b)) in
    let (mc, sc) = stats (coord (fun (_, _, c) -> c)) in
    Format.fprintf ppf
      "%s: A %.3f+-%.3f, B %.3f+-%.3f, C %.3f+-%.3f@." label ma sa mb sb mc
      sc
  in
  spread "EM point estimates (per-restart spread only)" r.em_points;
  Format.fprintf ppf "-- joint Bayes MCMC, %d samples --@,"
    (List.length r.mcmc_points);
  pp_grid ppf (density_grid ~cells:24 ~lo:0.0 ~hi:0.8 (ab r.mcmc_points))
    ~lo:0.0 ~hi:0.8 ~xlabel:"P(A)" ~ylabel:"P(B)";
  pp_grid ppf (density_grid ~cells:24 ~lo:0.0 ~hi:0.8 (ac r.mcmc_points))
    ~lo:0.0 ~hi:0.8 ~xlabel:"P(A)" ~ylabel:"P(C)";
  spread "MCMC posterior" r.mcmc_points;
  Format.fprintf ppf "@]";
  r
