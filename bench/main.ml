(* Regenerates every table and figure of the paper's evaluation, plus
   the ablation studies and Bechamel micro-benchmarks.

   Default sizing is Scale.Quick so the whole run finishes in a few
   minutes; set IFLOW_FULL=1 for paper-scale runs. *)
open Iflow_exp
module Rng = Iflow_stats.Rng
module Icm = Iflow_core.Icm
module Generator = Iflow_core.Generator
module Gen = Iflow_graph.Gen
module Estimator = Iflow_mcmc.Estimator
module Chain = Iflow_mcmc.Chain
module Bucket = Iflow_bucket.Bucket

module Engine = Iflow_engine.Engine
module Query = Iflow_engine.Query

let ppf = Format.std_formatter

let section title =
  Format.fprintf ppf
    "@.############################################################@.# %s@.############################################################@.@."
    title

(* ---------- Engine throughput ---------- *)

(* Queries/sec through the parallel query engine on the paper's timing
   setting (~6K users, ~14K edges), at 1, 2, and 4 domains. The MCSE
   target is set unreachably tight so every query runs to the same
   fixed sample budget: identical work per row (the engine is
   bit-for-bit deterministic across pool sizes — checked below), so
   the ratio between rows is pure parallel speedup. With >= 4 hardware
   threads, 4 domains clear 1.5x over 1 domain comfortably; on fewer
   cores the extra domains just time-slice and the ratio tends to 1
   (minus scheduling overhead). *)
let engine_throughput rng =
  let g = Gen.preferential_attachment rng ~nodes:6000 ~mean_out_degree:2 in
  let m = Iflow_graph.Digraph.n_edges g in
  let probs = Array.init m (fun _ -> 0.1 +. (0.8 *. Rng.uniform rng)) in
  let icm = Icm.create g probs in
  let n = Iflow_graph.Digraph.n_nodes g in
  let n_queries = 12 in
  (* random pairs on this DAG are mostly unreachable — constant-0
     indicator chains converge instantly, so sample connected pairs to
     keep every query's MH work non-trivial *)
  let dsts = Array.make n 0 in
  let rec connected_pair () =
    let src = Rng.int rng n in
    let reachable = Iflow_graph.Traverse.reachable_from g [ src ] in
    let count = ref 0 in
    Array.iteri
      (fun v r ->
        if r && v <> src then begin
          dsts.(!count) <- v;
          incr count
        end)
      reachable;
    if !count = 0 then connected_pair ()
    else (src, dsts.(Rng.int rng !count))
  in
  let queries =
    List.init n_queries (fun _ ->
        let src, dst = connected_pair () in
        Query.flow ~src ~dst ())
  in
  Format.fprintf ppf
    "engine throughput: %d flow queries, 4 chains each, on %d nodes / %d edges@."
    n_queries n m;
  Format.fprintf ppf "%8s %12s %12s %10s@." "domains" "seconds"
    "queries/s" "speedup";
  let baseline = ref None in
  let estimates = ref [] in
  List.iter
    (fun domains ->
      let config =
        {
          Engine.default_config with
          Engine.chains = 4;
          domains = Some domains;
          burn_in = 200;
          thin = 20;
          round_samples = 250;
          max_samples = 2000;
          mcse_target = 1e-9 (* fixed budget: every query runs to the cap *);
          cache_capacity = 0 (* time sampling, not memoisation *);
        }
      in
      let engine = Engine.create ~config ~seed:4242 icm in
      let t0 = Unix.gettimeofday () in
      let results = Engine.query_all engine queries in
      let dt = Unix.gettimeofday () -. t0 in
      let qps = float_of_int n_queries /. dt in
      let speedup =
        match !baseline with
        | None -> baseline := Some dt; 1.0
        | Some base -> base /. dt
      in
      estimates := List.map (fun r -> r.Engine.estimate) results :: !estimates;
      Format.fprintf ppf "%8d %12.2f %12.1f %9.2fx@." domains dt qps speedup)
    [ 1; 2; 4 ];
  (match !estimates with
  | a :: rest when List.for_all (fun b -> b = a) rest ->
    Format.fprintf ppf
      "estimates identical across pool sizes (deterministic merge)@."
  | _ -> Format.fprintf ppf "WARNING: estimates differ across pool sizes!@.");
  Format.fprintf ppf "(this machine recommends %d domains)@."
    (Domain.recommended_domain_count ())

(* ---------- Bechamel micro-benchmarks ---------- *)

let micro_benchmarks rng =
  let open Bechamel in
  let open Toolkit in
  (* the paper's timing claim setting: ~6K users, ~14K edges *)
  let big_graph = Gen.preferential_attachment rng ~nodes:6000 ~mean_out_degree:2 in
  let m = Iflow_graph.Digraph.n_edges big_graph in
  let probs = Array.init m (fun _ -> 0.1 +. (0.8 *. Rng.uniform rng)) in
  let big_icm = Icm.create big_graph probs in
  let chain = Chain.create rng big_icm in
  let chain_rng = Rng.split rng in
  let small_icm =
    let g = Gen.gnm rng ~nodes:50 ~edges:200 in
    Icm.create g (Array.init 200 (fun _ -> 0.1 +. (0.8 *. Rng.uniform rng)))
  in
  let small_chain = Chain.create rng small_icm in
  let fenwick =
    Iflow_stats.Fenwick.of_array (Array.init 100_000 (fun _ -> Rng.uniform rng))
  in
  let summary =
    let pars = 8 in
    let ps = Array.init pars (fun _ -> Rng.uniform rng) in
    let g, icm, sink = Generator.in_star_icm ~probs:ps in
    let traces =
      List.init 20000 (fun _ ->
          let sources =
            List.filter (fun _ -> Rng.bool rng) (List.init pars (fun j -> j))
          in
          let sources = if sources = [] then [ 0 ] else sources in
          Iflow_core.Cascade.run_trace rng icm ~sources)
    in
    Iflow_core.Summary.build g traces ~sink
  in
  let kappa =
    Array.make
      (Array.length (Iflow_core.Summary.parents_union summary))
      0.5
  in
  let tests =
    [
      Test.make ~name:"chain_step_14k_edges"
        (Staged.stage (fun () -> Chain.step chain_rng chain));
      Test.make ~name:"chain_step_200_edges"
        (Staged.stage (fun () -> Chain.step chain_rng small_chain));
      Test.make ~name:"reachability_14k_edges"
        (Staged.stage (fun () ->
             ignore
               (Iflow_core.Pseudo_state.flow big_icm (Chain.state chain)
                  ~src:0 ~dst:1)));
      Test.make ~name:"fenwick_sample_100k"
        (Staged.stage (fun () -> ignore (Iflow_stats.Fenwick.sample chain_rng fenwick)));
      Test.make ~name:"goyal_train_summary"
        (Staged.stage (fun () -> ignore (Iflow_learn.Goyal.train summary)));
      Test.make ~name:"joint_bayes_log_posterior"
        (Staged.stage (fun () ->
             ignore
               (Iflow_learn.Joint_bayes.log_posterior
                  ~prior:(fun _ -> Iflow_stats.Dist.Beta.uniform)
                  ~ambiguous_only:false summary kappa)));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"iflow" tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.fprintf ppf "%-40s %16s %8s@." "benchmark" "ns/op" "r^2";
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> e
        | Some [] | None -> Float.nan
      in
      let r2 = Option.value (Analyze.OLS.r_square ols) ~default:Float.nan in
      Format.fprintf ppf "%-40s %16.1f %8.4f@." name estimate r2)
    (List.sort compare rows);
  (* The paper's Section IV-C claim: ~0.13 ms per chain update and
     ~27 ms per output sample on a ~6K-user, ~14K-edge graph. Our
     per-sample cost = thin * step + one reachability sweep. *)
  let t0 = Sys.time () in
  let sample_count = 200 in
  let config = { Estimator.burn_in = 0; thin = 200; samples = sample_count } in
  ignore (Estimator.flow_probability chain_rng big_icm config ~src:0 ~dst:42);
  let per_sample = (Sys.time () -. t0) /. float_of_int sample_count in
  Format.fprintf ppf
    "@.per-output-sample cost on %d-edge graph (thin 200): %.2f ms (paper: 27 ms on its hardware)@."
    m (per_sample *. 1000.0)

let () =
  let scale = Scale.from_env () in
  let rng = Rng.create 20120401 in
  Format.fprintf ppf "infoflow benchmark harness — scale: %a@." Scale.pp scale;
  Format.fprintf ppf
    "(set IFLOW_FULL=1 for paper-scale runs; shapes are stable across scales)@.";

  section "Fig 1 — MH bucket experiment on synthetic betaICMs";
  let b1 = Fig1.report scale (Rng.split rng) ppf in

  section "Fig 5 — RWR bucket experiment (baseline)";
  let b5 = Fig5.report scale (Rng.split rng) ppf in

  section "Twitter corpus (synthetic stand-in for the Choudhury crawl)";
  let lab = Twitter_lab.make scale (Rng.split rng) in
  Format.fprintf ppf
    "corpus: %d tweets (%d dropped for sparsity), %d users, %d follow edges@."
    (List.length lab.Twitter_lab.corpus.Iflow_twitter.Corpus.tweets)
    lab.Twitter_lab.corpus.Iflow_twitter.Corpus.dropped
    (Iflow_graph.Digraph.n_nodes lab.Twitter_lab.graph)
    (Iflow_graph.Digraph.n_edges lab.Twitter_lab.graph);
  Format.fprintf ppf "training objects (parsed cascades): %d@."
    (List.length lab.Twitter_lab.train_objects);

  section "Fig 2 — attributed Twitter bucket experiments";
  let f2 = Fig2.report scale (Rng.split rng) lab ppf in

  section "Fig 3 — uncertainty: modelled vs empirical";
  ignore (Fig3.report scale (Rng.split rng) lab ppf);

  section "Fig 4 — impact (retweeting users), predicted vs actual";
  ignore (Fig4.report scale (Rng.split rng) lab ppf);

  section "Fig 6 — per-sample cost, ours vs Goyal";
  ignore (Fig6.report scale (Rng.split rng) ppf);

  section "Fig 7 — RMSE of unattributed trainers vs #objects";
  ignore (Fig7.report scale (Rng.split rng) ppf);

  section "Fig 8 — URL flow (unattributed)";
  let f8 =
    Fig8_9.report scale (Rng.split rng) lab
      ~kind:Iflow_twitter.Unattributed.Url ppf
  in

  section "Fig 9 — hashtag flow (unattributed)";
  let f9 =
    Fig8_9.report scale (Rng.split rng) lab
      ~kind:Iflow_twitter.Unattributed.Hashtag ppf
  in

  section "Fig 10 — gaussian edge sampling";
  let b10 = Fig10.report scale (Rng.split rng) lab ppf in

  section "Fig 11 / Table II — EM local maxima vs joint Bayes";
  ignore (Fig11.report scale (Rng.split rng) ppf);

  section "Table I — example evidence summary";
  Tables.report_table_one ppf;

  section "Table III — accuracy measures";
  let buckets =
    (b1 :: b5
     :: List.map (fun (r : Fig2.result) -> r.Fig2.bucket) f2)
    @ List.map (fun (r : Fig8_9.result) -> r.Fig8_9.bucket) f8
    @ List.map (fun (r : Fig8_9.result) -> r.Fig8_9.bucket) f9
    @ [ b10 ]
  in
  Tables.report_table_three ppf buckets;

  section "Ablations";
  Ablations.report_proposal_tree (Rng.split rng) ppf;
  Ablations.report_thinning (Rng.split rng) ppf;
  Ablations.report_summarisation (Rng.split rng) ppf;
  Ablations.report_conditional_strategies (Rng.split rng) ppf;
  Ablations.report_point_vs_nested scale (Rng.split rng) ppf;

  section "Engine throughput — parallel flow queries";
  engine_throughput (Rng.split rng);

  section "Bechamel micro-benchmarks";
  micro_benchmarks (Rng.split rng);

  Format.fprintf ppf "@.done.@."
