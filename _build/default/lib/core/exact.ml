module Digraph = Iflow_graph.Digraph

(* Paper Equation (2):
   Pr[ s ~> k ex. X ] =
     1 - prod over edges (l, k) with l not in X of
           (1 - Pr[ s ~> l ex. X + {k} ] * p_{l,k})
   with Pr[ s ~> s ex. _ ] = 1. Sinks accumulate in X, so the recursion
   terminates; X is a bitmask over nodes. *)
let flow_probability icm ~src ~dst =
  let g = Icm.graph icm in
  let n = Digraph.n_nodes g in
  if n > 62 then invalid_arg "Exact.flow_probability: more than 62 nodes";
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Exact.flow_probability: node out of range";
  let memo = Hashtbl.create 1024 in
  let rec pr target exclude =
    if target = src then 1.0
    else begin
      match Hashtbl.find_opt memo (target, exclude) with
      | Some p -> p
      | None ->
        let exclude' = exclude lor (1 lsl target) in
        let product =
          Digraph.fold_in g target ~init:1.0 ~f:(fun acc e ->
              let l = Digraph.edge_src g e in
              if exclude land (1 lsl l) <> 0 then acc
              else acc *. (1.0 -. (pr l exclude' *. Icm.prob icm e)))
        in
        let p = 1.0 -. product in
        Hashtbl.add memo (target, exclude) p;
        p
    end
  in
  pr dst 0

(* Shared brute-force loop: fold a function over every pseudo-state with
   its probability. *)
let fold_pseudo_states icm ~init ~f =
  let m = Icm.n_edges icm in
  if m > 24 then invalid_arg "Exact: brute force limited to 24 edges";
  let state = Pseudo_state.create m in
  let acc = ref init in
  for code = 0 to (1 lsl m) - 1 do
    let prob = ref 1.0 in
    for e = 0 to m - 1 do
      let active = code land (1 lsl e) <> 0 in
      Pseudo_state.set state e active;
      let p = Icm.prob icm e in
      prob := !prob *. (if active then p else 1.0 -. p)
    done;
    if !prob > 0.0 then acc := f !acc state !prob
  done;
  !acc

let brute_force_flow icm ~src ~dst =
  fold_pseudo_states icm ~init:0.0 ~f:(fun acc state prob ->
      if Pseudo_state.flow icm state ~src ~dst then acc +. prob else acc)

let satisfies icm state conditions =
  List.for_all
    (fun (u, v, a) -> Pseudo_state.flow icm state ~src:u ~dst:v = a)
    conditions

let brute_force_conditional icm ~conditions ~src ~dst =
  let joint, marginal =
    fold_pseudo_states icm ~init:(0.0, 0.0)
      ~f:(fun (joint, marginal) state prob ->
        if satisfies icm state conditions then begin
          let marginal = marginal +. prob in
          if Pseudo_state.flow icm state ~src ~dst then (joint +. prob, marginal)
          else (joint, marginal)
        end
        else (joint, marginal))
  in
  if marginal <= 0.0 then
    failwith "Exact.brute_force_conditional: conditions have probability 0";
  joint /. marginal

let brute_force_community icm ~src ~sinks =
  fold_pseudo_states icm ~init:0.0 ~f:(fun acc state prob ->
      let reached = Pseudo_state.reachable icm state ~sources:[ src ] in
      if List.for_all (fun v -> reached.(v)) sinks then acc +. prob else acc)

let brute_force_impact icm ~src =
  let n = Icm.n_nodes icm in
  let impact = Array.make n 0.0 in
  let _ =
    fold_pseudo_states icm ~init:() ~f:(fun () state prob ->
        let reached = Pseudo_state.reachable icm state ~sources:[ src ] in
        let count = ref 0 in
        Array.iteri (fun v r -> if r && v <> src then incr count) reached;
        impact.(!count) <- impact.(!count) +. prob)
  in
  impact
