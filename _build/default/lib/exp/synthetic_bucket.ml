open Iflow_core
module Rng = Iflow_stats.Rng
module Measures = Iflow_stats.Measures
module Estimator = Iflow_mcmc.Estimator
module Bucket = Iflow_bucket.Bucket

type estimator =
  | Metropolis_hastings of Estimator.config
  | Random_walk_restart of float

let run rng ~models ~nodes ~edges ~estimator ~label =
  if models <= 0 then invalid_arg "Synthetic_bucket.run: models <= 0";
  let predictions = ref [] in
  for _ = 1 to models do
    let model = Generator.default_beta_icm rng ~nodes ~edges in
    let sampled = Beta_icm.sample_icm rng model in
    let test_state = Pseudo_state.sample rng sampled in
    let src = Rng.int rng nodes in
    let dst = (src + 1 + Rng.int rng (nodes - 1)) mod nodes in
    let outcome = Pseudo_state.flow sampled test_state ~src ~dst in
    let expected = Beta_icm.expected_icm model in
    let estimate =
      match estimator with
      | Metropolis_hastings config ->
        Estimator.flow_probability rng expected config ~src ~dst
      | Random_walk_restart restart ->
        Iflow_rwr.Rwr.flow_estimate ~restart expected ~src ~dst
    in
    predictions := { Measures.estimate; outcome } :: !predictions
  done;
  Bucket.run ~bins:30 ~label !predictions
