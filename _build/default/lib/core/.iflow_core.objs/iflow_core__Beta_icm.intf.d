lib/core/beta_icm.mli: Evidence Format Icm Iflow_graph Iflow_stats
