(* Tests for the observability layer (lib/obs) and its hard ISSUE 4
   guarantees:

   - histogram bucketing/quantiles agree with a brute-force sorted
     array under the documented power-of-two bucket rule;
   - domain-local counter shards merge to exact totals under real
     [Domain.spawn] parallelism;
   - turning metrics recording on does not perturb the sampler or the
     engine: estimates are bit-for-bit identical on and off;
   - the Prometheus exposition passes its own format checker (and the
     checker rejects the malformed documents it exists to catch);
   - trace spans round-trip through the JSONL sink as well-formed
     Chrome trace_event records. *)

module Rng = Iflow_stats.Rng
module Gen = Iflow_graph.Gen
module Digraph = Iflow_graph.Digraph
module Icm = Iflow_core.Icm
module Estimator = Iflow_mcmc.Estimator
module Engine = Iflow_engine.Engine
module Query = Iflow_engine.Query
module Jsonl = Iflow_engine.Jsonl
module Metrics = Iflow_obs.Metrics
module Prometheus = Iflow_obs.Prometheus
module Trace = Iflow_obs.Trace
module Log = Iflow_obs.Log
module Flight = Iflow_obs.Flight

let qcheck tests =
  List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0 |])) tests

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_float msg a b = Alcotest.(check (float 0.0)) msg a b

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || go (i + 1)
  in
  nn = 0 || go 0

(* Recording is a process-global switch; every test that flips it must
   restore it, or it would leak into the bit-for-bit tests. *)
let with_recording on f =
  let prev = Metrics.recording () in
  Metrics.set_recording on;
  Fun.protect ~finally:(fun () -> Metrics.set_recording prev) f

(* ---------- histogram vs brute force ---------- *)

(* the documented bucket rule: v <= 1 lands in bucket 0, otherwise the
   highest set bit indexes the bucket, capped at the open-ended last
   one; a bucket's upper edge is the next power of two *)
let expected_quantile values q =
  let sorted = Array.copy values in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let k = max 1 (int_of_float (ceil (q *. float_of_int n))) in
  let v = sorted.(k - 1) in
  let i =
    if v <= 1 then 0
    else begin
      let v = ref v and i = ref 0 in
      while !v > 1 do
        v := !v lsr 1;
        incr i
      done;
      min !i 47
    end
  in
  if i >= 47 then infinity else float_of_int (1 lsl (i + 1))

let histogram_quantile_matches_brute_force =
  QCheck.Test.make ~count:200 ~name:"histogram quantile = brute force"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 200) (int_bound 1_000_000))
        (int_range 1 100))
    (fun (values, qpct) ->
      let values = Array.of_list values in
      let q = float_of_int qpct /. 100.0 in
      let reg = Metrics.create_registry () in
      let h = Metrics.histogram ~registry:reg "test_hist_ns" in
      with_recording true (fun () -> Array.iter (Metrics.observe h) values);
      Metrics.quantile h q = expected_quantile values q
      && Metrics.histogram_count h = Array.length values
      && Metrics.histogram_sum h = Array.fold_left ( + ) 0 values)

let test_histogram_edges () =
  let reg = Metrics.create_registry () in
  let h = Metrics.histogram ~registry:reg "edge_hist" in
  check_bool "empty quantile is nan" true (Float.is_nan (Metrics.quantile h 0.5));
  with_recording true (fun () ->
      Metrics.observe h 0;
      Metrics.observe h 1;
      Metrics.observe h (-5) (* clamped to 0 *));
  check_int "count" 3 (Metrics.histogram_count h);
  check_int "sum" 1 (Metrics.histogram_sum h);
  (* all three land in bucket 0, upper edge 2 *)
  check_float "q=1 upper edge" 2.0 (Metrics.quantile h 1.0);
  Alcotest.check_raises "q=0 rejected"
    (Invalid_argument "Obs.Metrics.quantile: q outside (0, 1]") (fun () ->
      ignore (Metrics.quantile h 0.0));
  with_recording false (fun () -> Metrics.observe h 100);
  check_int "observe is a no-op while off" 3 (Metrics.histogram_count h)

(* ---------- sharded counters under Domain.spawn ---------- *)

let test_sharded_merge () =
  let reg = Metrics.create_registry () in
  let c = Metrics.counter ~registry:reg "spawned_total" in
  let h = Metrics.histogram ~registry:reg "spawned_hist" in
  let domains = 4 and per_domain = 25_000 in
  with_recording true (fun () ->
      let workers =
        List.init domains (fun d ->
            Domain.spawn (fun () ->
                for i = 1 to per_domain do
                  Metrics.inc c;
                  Metrics.observe h ((d * per_domain) + i)
                done))
      in
      List.iter Domain.join workers);
  check_int "counter merges exactly" (domains * per_domain)
    (Metrics.counter_value c);
  check_int "histogram count merges exactly" (domains * per_domain)
    (Metrics.histogram_count h);
  check_int "histogram sum merges exactly"
    (domains * per_domain * ((domains * per_domain) + 1) / 2)
    (Metrics.histogram_sum h)

let test_counter_semantics () =
  let reg = Metrics.create_registry () in
  let c = Metrics.counter ~registry:reg "sem_total" in
  with_recording true (fun () ->
      Metrics.inc c;
      Metrics.add c 41;
      Metrics.add c (-7) (* counters are monotone: negative adds ignored *));
  check_int "inc/add/negative-add" 42 (Metrics.counter_value c);
  let c' = Metrics.counter ~registry:reg "sem_total" in
  with_recording true (fun () -> Metrics.inc c');
  check_int "re-registration is the same counter" 43 (Metrics.counter_value c);
  check_bool "kind clash rejected" true
    (match Metrics.gauge ~registry:reg "sem_total" with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------- metrics on/off never perturbs estimates ---------- *)

let test_bit_for_bit_estimator () =
  let rng = Rng.create 7 in
  let g = Gen.gnm rng ~nodes:12 ~edges:40 in
  let icm =
    Icm.create g (Array.init 40 (fun _ -> 0.1 +. (0.8 *. Rng.uniform rng)))
  in
  let config = { Estimator.burn_in = 300; thin = 3; samples = 400 } in
  let run () =
    Estimator.flow_probability (Rng.create 99) icm config ~src:0 ~dst:7
  in
  let off = with_recording false run in
  let on = with_recording true run in
  check_float "estimator estimate identical with metrics on" off on

let test_bit_for_bit_engine () =
  let rng = Rng.create 11 in
  let g = Gen.gnm rng ~nodes:15 ~edges:60 in
  let icm =
    Icm.create g (Array.init 60 (fun _ -> 0.1 +. (0.8 *. Rng.uniform rng)))
  in
  let config =
    {
      Engine.default_config with
      Engine.chains = 2;
      burn_in = 100;
      round_samples = 100;
      max_samples = 400;
    }
  in
  let run () =
    let e = Engine.create ~config ~seed:5 icm in
    let r = Engine.query e (Query.flow ~src:0 ~dst:9 ()) in
    r.Engine.estimate
  in
  let off = with_recording false run in
  let on = with_recording true run in
  check_float "engine estimate identical with metrics on" off on

let test_bit_for_bit_flight_and_rid () =
  (* the full per-request observability stack — flight recorder on,
     trace sink installed, rid + phases threaded — must not move a
     single bit of the estimate *)
  let rng = Rng.create 13 in
  let g = Gen.gnm rng ~nodes:15 ~edges:60 in
  let icm =
    Icm.create g (Array.init 60 (fun _ -> 0.1 +. (0.8 *. Rng.uniform rng)))
  in
  let config =
    {
      Engine.default_config with
      Engine.chains = 2;
      burn_in = 100;
      round_samples = 100;
      max_samples = 400;
    }
  in
  let bare () =
    let e = Engine.create ~config ~seed:5 icm in
    (Engine.query e (Query.flow ~src:0 ~dst:9 ())).Engine.estimate
  in
  let observed () =
    let path = Filename.temp_file "iflow_obs_flight" ".json" in
    Flight.configure ~capacity:16 ();
    Trace.to_file path;
    Fun.protect
      ~finally:(fun () ->
        Trace.close ();
        Flight.disable ();
        Sys.remove path)
      (fun () ->
        let e = Engine.create ~config ~seed:5 icm in
        let ph = Engine.phases () in
        let r = Engine.query ~rid:"obs-1" ~phases:ph e (Query.flow ~src:0 ~dst:9 ()) in
        check_bool "sample phase measured" true (ph.Engine.sample_ns > 0);
        check_bool "rounds counted" true (ph.Engine.rounds > 0);
        r.Engine.estimate)
  in
  let off = with_recording false bare in
  let on = with_recording true observed in
  check_float "estimate identical with flight + trace + rid on" off on

(* ---------- Prometheus exposition ---------- *)

let test_prometheus_well_formed () =
  let reg = Metrics.create_registry () in
  let c = Metrics.counter ~registry:reg ~help:"a counter" "iflow_test_total" in
  let cl =
    Metrics.counter ~registry:reg
      ~labels:[ ("reason", "parse \"quoted\"\nnewline") ]
      ~help:"a counter" "iflow_test_labeled_total"
  in
  let gauge = Metrics.gauge ~registry:reg ~help:"a gauge" "iflow_test_gauge" in
  let h =
    Metrics.histogram ~registry:reg ~scale:1e-9 ~help:"a histogram"
      "iflow_test_seconds"
  in
  with_recording true (fun () ->
      Metrics.add c 3;
      Metrics.inc cl;
      Metrics.set gauge nan;
      Metrics.observe h 1_500_000);
  let text = Prometheus.to_string reg in
  (match Prometheus.check text with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "exposition rejected: %s" msg);
  List.iter
    (fun needle -> check_bool needle true (contains text needle))
    [
      "# TYPE iflow_test_total counter";
      "iflow_test_total 3";
      "# TYPE iflow_test_seconds histogram";
      "iflow_test_seconds_bucket{le=\"+Inf\"} 1";
      "iflow_test_seconds_count 1";
      "iflow_test_gauge NaN";
      (* label values escape backslash-style *)
      "reason=\"parse \\\"quoted\\\"\\nnewline\"";
    ]

let test_prometheus_default_registry_checks () =
  (* the real exposition — everything the instrumented libraries
     registered at init — is valid and spans the three namespaces. The
     stream layer must be referenced or the linker drops its modules
     (and with them their registrations) from this binary *)
  ignore Iflow_stream.Runner.default_config;
  let text = Prometheus.to_string Metrics.default in
  (match Prometheus.check text with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "default exposition rejected: %s" msg);
  List.iter
    (fun prefix ->
      check_bool ("has a " ^ prefix ^ " metric") true
        (contains text ("# TYPE " ^ prefix)))
    [ "iflow_mcmc_"; "iflow_engine_"; "iflow_stream_" ]

let test_prometheus_check_rejects () =
  let rejects label doc =
    match Prometheus.check doc with
    | Ok () -> Alcotest.failf "%s: malformed document accepted" label
    | Error _ -> ()
  in
  rejects "bad name" "0bad_name 1\n";
  rejects "duplicate sample" "a_total 1\na_total 2\n";
  rejects "duplicate sample, labels reordered"
    "a_total{x=\"1\",y=\"2\"} 1\na_total{y=\"2\",x=\"1\"} 2\n";
  rejects "duplicate TYPE" "# TYPE a counter\n# TYPE a counter\n";
  rejects "bad escape" "a_total{x=\"\\q\"} 1\n";
  rejects "unterminated label" "a_total{x=\"1\" 1\n";
  rejects "non-numeric value" "a_total one\n";
  rejects "trailing garbage" "a_total 1 2 3\n";
  Alcotest.(check (result unit string))
    "distinct label sets are fine" (Ok ())
    (Prometheus.check "a_total{x=\"1\"} 1\na_total{x=\"2\"} 2\n")

(* ---------- trace JSONL round-trip ---------- *)

let with_temp_file f =
  let path = Filename.temp_file "iflow_obs_test" ".jsonl" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      really_input_string ic (in_channel_length ic))

let field name v =
  match Jsonl.member name v with
  | Some x -> x
  | None -> Alcotest.failf "trace event missing %S" name

let test_trace_round_trip () =
  with_temp_file @@ fun path ->
  Trace.to_file path;
  check_bool "enabled once a sink is installed" true (Trace.enabled ());
  let result =
    Trace.with_span "outer" ~args:[ ("k", Trace.Int 3) ] (fun () ->
        Trace.instant "mark" ~args:[ ("x", Trace.Float 0.5) ] ();
        17)
  in
  (try Trace.with_span "raises" (fun () -> failwith "boom") with
  | Failure _ -> ());
  Trace.close ();
  Trace.close () (* idempotent *);
  check_int "with_span returns the body's value" 17 result;
  check_bool "disabled after close" false (Trace.enabled ());
  let doc = read_file path in
  let events =
    match Jsonl.parse doc with
    | Ok v -> (
      match Jsonl.to_list v with
      | Some l -> l
      | None -> Alcotest.fail "trace file is not a JSON array")
    | Error msg -> Alcotest.failf "trace file does not parse: %s" msg
  in
  check_int "three events" 3 (List.length events);
  let ph e = Option.get (Jsonl.to_string (field "ph" e)) in
  let name e = Option.get (Jsonl.to_string (field "name" e)) in
  (* the sink serialises in emission order: the instant fires inside
     the outer span, so it lands first; spans close in LIFO order *)
  check_string "phases" "i,X,X" (String.concat "," (List.map ph events));
  check_string "names" "mark,outer,raises"
    (String.concat "," (List.map name events));
  let is_num = function Jsonl.Num _ -> true | _ -> false in
  List.iter
    (fun e ->
      check_bool "ts is a number" true (is_num (field "ts" e));
      ignore (field "pid" e);
      ignore (field "tid" e))
    events;
  let x = List.nth events 1 in
  check_bool "span has a dur" true (is_num (field "dur" x));
  check_int "span args survive" 3
    (Option.get (Jsonl.to_int (field "k" (field "args" x))))

let test_trace_reinstall_closes_previous () =
  (* replacing the sink must terminate the previous file's JSON array,
     so a long-lived process rotating trace files never leaves the old
     one truncated *)
  with_temp_file @@ fun a ->
  with_temp_file @@ fun b ->
  Trace.to_file a;
  Trace.instant "in-a" ();
  Trace.to_file b (* closes a *);
  Trace.instant "in-b" ();
  Trace.close ();
  List.iter
    (fun (path, name) ->
      let doc = read_file path in
      check_bool (name ^ " array terminated") true (contains doc "\n]\n");
      match Jsonl.parse doc with
      | Ok v ->
        let events = Option.get (Jsonl.to_list v) in
        check_int (name ^ " has one event") 1 (List.length events);
        check_string (name ^ " right event") name
          (Option.get (Jsonl.to_string (field "name" (List.hd events))))
      | Error msg -> Alcotest.failf "%s does not parse: %s" path msg)
    [ (a, "in-a"); (b, "in-b") ]

(* ---------- flight recorder ---------- *)

let test_flight_note_and_find () =
  Flight.configure ~capacity:32 ();
  Fun.protect ~finally:Flight.disable (fun () ->
      check_bool "enabled" true (Flight.enabled ());
      check_int "capacity" 32 (Flight.capacity ());
      Flight.note ~id:"q-1" ~tenant:"a" ~kind:"flow 0 1" ~path:Flight.Exact
        ~version:3 ~digest:"d1" ~plan_ns:1000 ~serialize_ns:2000 ();
      Flight.note ~id:"q-2" ~tenant:"b" ~kind:"flow 1 2" ~path:Flight.Mh
        ~fallback:"cyclic" ~queue_wait_ns:10 ~sample_ns:5000 ~rounds:2
        ~samples:800 ~rhat:1.01 ~mcse:0.004 ();
      (match Flight.recent 10 with
      | [ r2; r1 ] ->
        check_string "newest first" "q-2" r2.Flight.id;
        check_string "oldest last" "q-1" r1.Flight.id;
        check_bool "seq ordered" true (r2.Flight.seq > r1.Flight.seq);
        check_string "tenant" "b" r2.Flight.tenant;
        check_string "fallback" "cyclic" r2.Flight.fallback;
        check_int "samples" 800 r2.Flight.samples;
        check_int "version default" (-1) r2.Flight.version;
        check_int "version recorded" 3 r1.Flight.version;
        check_bool "ts stamped" true (r1.Flight.ts_ns > 0)
      | l -> Alcotest.failf "expected 2 records, got %d" (List.length l));
      (match Flight.find "q-1" with
      | Some r ->
        check_string "find by id" "q-1" r.Flight.id;
        check_string "path" "exact" (Flight.string_of_path r.Flight.path)
      | None -> Alcotest.fail "q-1 not found");
      check_bool "miss is None" true (Flight.find "nope" = None);
      (* records are copies: recording more never mutates them *)
      let held = List.hd (Flight.recent 1) in
      Flight.note ~id:"q-3" ~tenant:"c" ~kind:"k" ~path:Flight.Err
        ~error:"bad_request" ();
      check_string "held copy untouched" "q-2" held.Flight.id;
      Flight.clear ();
      check_int "clear empties" 0 (List.length (Flight.recent 10));
      check_bool "still enabled after clear" true (Flight.enabled ()))

let test_flight_ring_overwrites () =
  (* capacity is a hard bound: old records fall off, the newest N
     survive, and every surviving record is intact *)
  Flight.configure ~capacity:8 ();
  Fun.protect ~finally:Flight.disable (fun () ->
      for i = 1 to 100 do
        Flight.note ~id:(Printf.sprintf "q-%d" i) ~tenant:"t" ~kind:"k"
          ~path:Flight.Cache ~queue_wait_ns:i ()
      done;
      let recs = Flight.recent 1000 in
      check_bool "bounded" true (List.length recs <= Flight.capacity ());
      check_bool "kept some" true (List.length recs > 0);
      (* everything surviving is from the recent tail, in seq order *)
      let seqs = List.map (fun r -> r.Flight.seq) recs in
      check_bool "newest first" true
        (List.sort (fun a b -> compare b a) seqs = seqs);
      List.iter
        (fun r ->
          let n = int_of_string (String.sub r.Flight.id 2
                                   (String.length r.Flight.id - 2)) in
          check_bool "tail records only" true (n > 100 - (2 * Flight.capacity ()));
          check_int "fields consistent" n r.Flight.queue_wait_ns)
        recs)

let test_flight_disabled_gate () =
  Flight.disable ();
  check_bool "disabled" false (Flight.enabled ());
  check_int "no capacity" 0 (Flight.capacity ());
  Flight.note ~id:"x" ~tenant:"t" ~kind:"k" ~path:Flight.Mh ();
  check_int "note is a no-op" 0 (List.length (Flight.recent 10));
  check_bool "find misses" true (Flight.find "x" = None)

let test_flight_to_json () =
  Flight.configure ~capacity:4 ();
  Fun.protect ~finally:Flight.disable (fun () ->
      Flight.note ~id:"j\"1" ~tenant:"t" ~kind:"flow 0 1" ~path:Flight.Mh
        ~fallback:"cyclic" ~version:2 ~digest:"ab" ~queue_wait_ns:5
        ~plan_ns:6 ~sample_ns:7 ~serialize_ns:8 ~rounds:1 ~samples:100
        ~rhat:1.5 ~mcse:0.25 ();
      Flight.note ~id:"j2" ~tenant:"t" ~kind:"k" ~path:Flight.Err
        ~error:"over_capacity" ();
      List.iter
        (fun r ->
          let s = Flight.to_json r in
          match Jsonl.parse s with
          | Error msg -> Alcotest.failf "to_json unparseable %S: %s" s msg
          | Ok json ->
            check_string "id round-trips (escaped)" r.Flight.id
              (Option.get
                 (Jsonl.to_string (field "request_id" json)));
            check_string "path" (Flight.string_of_path r.Flight.path)
              (Option.get (Jsonl.to_string (field "path" json))))
        (Flight.recent 10);
      (* nan diagnostics serialise as null, keeping the JSON valid *)
      let err = List.hd (Flight.recent 1) in
      check_bool "nan -> null" true
        (match Jsonl.member "rhat" (Result.get_ok
                                      (Jsonl.parse (Flight.to_json err))) with
        | Some Jsonl.Null -> true
        | _ -> false))

(* ---------- logger ---------- *)

let test_log_levels () =
  List.iter
    (fun (s, expect) ->
      check_bool s true (Log.level_of_string s = expect))
    [
      ("error", Result.Ok Log.Error);
      ("err", Result.Ok Log.Error);
      ("warn", Result.Ok Log.Warn);
      ("warning", Result.Ok Log.Warn);
      ("info", Result.Ok Log.Info);
      ("debug", Result.Ok Log.Debug);
    ];
  check_bool "unknown level rejected" true
    (match Log.level_of_string "loud" with
    | Result.Error _ -> true
    | Result.Ok _ -> false);
  let prev = Log.level () in
  Fun.protect ~finally:(fun () -> Log.set_level prev) (fun () ->
      Log.set_level Log.Error;
      (* must not raise, and must not evaluate anything visible *)
      Log.debug ~component:"test" "dropped %d" 1;
      Log.err ~component:"test" "kept (stderr) %d" 2)

(* capture stderr into a file across [f] — the logger writes (and
   flushes) whole lines to stderr under its mutex, so redirecting the
   fd sees exactly what a terminal would *)
let with_captured_stderr f =
  let path = Filename.temp_file "iflow_log_capture" ".txt" in
  flush stderr;
  let saved = Unix.dup Unix.stderr in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stderr;
  Unix.close fd;
  Fun.protect
    ~finally:(fun () ->
      flush stderr;
      Unix.dup2 saved Unix.stderr;
      Unix.close saved)
    f;
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () -> read_file path)

let test_log_line_format () =
  let prev = Log.level () in
  Fun.protect ~finally:(fun () -> Log.set_level prev) (fun () ->
      Log.set_level Log.Info;
      let out =
        with_captured_stderr (fun () ->
            Log.info ~component:"fmt" ~rid:"r-9" "payload %d" 42)
      in
      let line = String.trim out in
      (* <seconds>.<micros> info [fmt] rid=r-9 payload 42 *)
      (match String.index_opt line ' ' with
      | Some i ->
        let ts = String.sub line 0 i in
        check_bool "monotonic timestamp prefix" true
          (match float_of_string_opt ts with
          | Some t -> t >= 0.0 && String.contains ts '.'
          | None -> false)
      | None -> Alcotest.failf "no timestamp prefix in %S" line);
      check_bool "level" true (contains line " info ");
      check_bool "component" true (contains line "[fmt]");
      check_bool "rid key" true (contains line "rid=r-9");
      check_bool "message last" true (contains line "payload 42"))

let test_log_concurrent_writers_never_interleave () =
  let prev = Log.level () in
  Fun.protect ~finally:(fun () -> Log.set_level prev) (fun () ->
      Log.set_level Log.Info;
      let domains = 4 and per_domain = 250 in
      let out =
        with_captured_stderr (fun () ->
            let workers =
              List.init domains (fun d ->
                  Domain.spawn (fun () ->
                      for i = 1 to per_domain do
                        Log.info ~component:"race"
                          ~rid:(Printf.sprintf "d%d-%d" d i)
                          "begin-%d-%d-end" d i
                      done))
            in
            List.iter Domain.join workers)
      in
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
      in
      check_int "every line arrived whole"
        (domains * per_domain)
        (List.length lines);
      (* a torn write would split the begin-…-end marker across lines,
         or fuse two records onto one *)
      let count needle hay =
        let nn = String.length needle and nh = String.length hay in
        let c = ref 0 in
        for i = 0 to nh - nn do
          if String.sub hay i nn = needle then incr c
        done;
        !c
      in
      List.iter
        (fun l ->
          check_bool "line intact" true
            (contains l "[race]" && contains l "-end");
          check_int "exactly one record per line" 1 (count "begin-" l))
        lines)

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        qcheck [ histogram_quantile_matches_brute_force ]
        @ [
            Alcotest.test_case "edge cases" `Quick test_histogram_edges;
          ] );
      ( "shards",
        [
          Alcotest.test_case "Domain.spawn merge" `Quick test_sharded_merge;
          Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "estimator bit-for-bit" `Quick
            test_bit_for_bit_estimator;
          Alcotest.test_case "engine bit-for-bit" `Quick
            test_bit_for_bit_engine;
          Alcotest.test_case "flight + trace + rid bit-for-bit" `Quick
            test_bit_for_bit_flight_and_rid;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "exposition well-formed" `Quick
            test_prometheus_well_formed;
          Alcotest.test_case "default registry valid + namespaced" `Quick
            test_prometheus_default_registry_checks;
          Alcotest.test_case "checker rejects malformed" `Quick
            test_prometheus_check_rejects;
        ] );
      ( "trace",
        [
          Alcotest.test_case "JSONL round-trip" `Quick test_trace_round_trip;
          Alcotest.test_case "reinstall closes the previous sink" `Quick
            test_trace_reinstall_closes_previous;
        ] );
      ( "flight",
        [
          Alcotest.test_case "note, recent, find, clear" `Quick
            test_flight_note_and_find;
          Alcotest.test_case "ring overwrites, stays bounded" `Quick
            test_flight_ring_overwrites;
          Alcotest.test_case "disabled gate" `Quick test_flight_disabled_gate;
          Alcotest.test_case "to_json round-trips" `Quick test_flight_to_json;
        ] );
      ( "log",
        [
          Alcotest.test_case "levels" `Quick test_log_levels;
          Alcotest.test_case "line format" `Quick test_log_line_format;
          Alcotest.test_case "concurrent writers never interleave" `Quick
            test_log_concurrent_writers_never_interleave;
        ] );
    ]
