(** Fig 5: the same bucket experiment with random walk with restart as
    the estimator. The paper's point: RWR is a similarity score, not a
    probability — calibration collapses compared to Fig 1. *)

val run : Scale.t -> Iflow_stats.Rng.t -> Iflow_bucket.Bucket.t
val report : Scale.t -> Iflow_stats.Rng.t -> Format.formatter -> Iflow_bucket.Bucket.t
