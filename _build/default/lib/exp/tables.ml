open Iflow_core
module Measures = Iflow_stats.Measures
module Bucket = Iflow_bucket.Bucket

let table_one () =
  Summary.of_table ~sink:3
    [ ([| 0; 1 |], 5, 1); ([| 1; 2 |], 50, 15); ([| 0; 2 |], 10, 2) ]

let report_table_one ppf =
  Format.fprintf ppf
    "@[<v>== Table I: example evidence summary (A=0, B=1, C=2, sink k=3) ==@,%a@,"
    Summary.pp (table_one ());
  (* the same summary arises from raw traces *)
  let g =
    Iflow_graph.Digraph.of_edges ~nodes:4 [ (0, 3); (1, 3); (2, 3) ]
  in
  let trace sources leaked =
    Evidence.trace_of_active ~sources
      ~times:(if leaked then [ (3, 1) ] else [])
      ~n:4
  in
  let replicate n x = List.init n (fun _ -> x) in
  let traces =
    replicate 1 (trace [ 0; 1 ] true)
    @ replicate 4 (trace [ 0; 1 ] false)
    @ replicate 15 (trace [ 1; 2 ] true)
    @ replicate 35 (trace [ 1; 2 ] false)
    @ replicate 2 (trace [ 0; 2 ] true)
    @ replicate 8 (trace [ 0; 2 ] false)
  in
  let rebuilt = Summary.build g traces ~sink:3 in
  Format.fprintf ppf "rebuilt from %d raw traces:@,%a@]" (List.length traces)
    Summary.pp rebuilt

let report_table_three ppf buckets =
  Format.fprintf ppf
    "@[<v>== Table III: accuracy measures across experiments ==@,%a@]"
    Measures.pp_table
    (List.map (fun b -> b.Bucket.measures) buckets)
