module Digraph = Iflow_graph.Digraph
module Measures = Iflow_stats.Measures

type estimate = {
  sink : int;
  parents : int array;
  mean : float array;
  std : float array;
}

let parent_index e node =
  let n = Array.length e.parents in
  let rec search lo hi =
    if lo >= hi then None
    else begin
      let mid = (lo + hi) / 2 in
      if e.parents.(mid) = node then Some mid
      else if e.parents.(mid) < node then search (mid + 1) hi
      else search lo mid
    end
  in
  search 0 n

let mean_for e node = Option.map (fun i -> e.mean.(i)) (parent_index e node)

let rmse_vs_truth e ~truth =
  let expected = Array.map truth e.parents in
  Measures.rmse ~expected ~actual:e.mean

let apply_to_icm icm estimates =
  let g = Iflow_core.Icm.graph icm in
  let probs = Iflow_core.Icm.probs icm in
  List.iter
    (fun e ->
      Array.iteri
        (fun i parent ->
          match Digraph.find_edge g ~src:parent ~dst:e.sink with
          | Some edge -> probs.(edge) <- Float.max 0.0 (Float.min 1.0 e.mean.(i))
          | None -> ())
        e.parents)
    estimates;
  Iflow_core.Icm.create g probs

let mean_std_arrays g ~default_mean ~default_std estimates =
  let m = Digraph.n_edges g in
  let mean = Array.make m default_mean and std = Array.make m default_std in
  List.iter
    (fun e ->
      Array.iteri
        (fun i parent ->
          match Digraph.find_edge g ~src:parent ~dst:e.sink with
          | Some edge ->
            mean.(edge) <- e.mean.(i);
            std.(edge) <- e.std.(i)
          | None -> ())
        e.parents)
    estimates;
  (mean, std)
