(** Model versioning for the streaming pipeline: immutable published
    versions with monotonic ids and content digests, periodic [.bicm]
    checkpoints carrying a replay offset, and hot-swap into a running
    {!Iflow_engine.Engine}.

    The accumulator mutates continuously; what the rest of the system
    sees are the {e versions} published here. Each version is an
    immutable frozen model plus its {!Iflow_core.Beta_icm.digest} and
    the log offset (lines consumed) it reflects. Swapping a version
    into an engine evicts the retired version's cache entries by
    digest; queries already running finish on the version they
    captured. *)

type version = {
  id : int;          (** monotonic, starting at 0 for the seed model *)
  digest : string;   (** {!Iflow_core.Beta_icm.digest} of [model] *)
  model : Iflow_core.Beta_icm.t;
  offset : int;      (** event-log lines consumed when published *)
}

type t

val create :
  ?checkpoint_path:string -> ?id:int -> ?offset:int ->
  Iflow_core.Beta_icm.t -> t
(** The given seed model becomes the current version — id 0 at offset 0
    unless resuming from a {!recover}ed checkpoint, whose id and offset
    continue the original numbering. When [checkpoint_path] is set,
    {!checkpoint} writes there. *)

val current : t -> version

val published : t -> int
(** The current version id. *)

val checkpoints_written : t -> int

val publish : t -> Iflow_core.Beta_icm.t -> offset:int -> version
(** Freeze a new current version with the next id. *)

val swap_into : t -> Iflow_engine.Engine.t -> int
(** Hot-swap the engine onto the current version's expected ICM via
    {!Iflow_engine.Engine.swap}; returns the evicted cache-entry
    count. *)

val checkpoint : t -> unit
(** Write the current version to [checkpoint_path] as a v2 [.bicm]
    whose header records [digest], [offset] and [version] — everything
    {!recover} needs. No-op without a path. *)

val recover : string -> Iflow_core.Beta_icm.t * int * int
(** [recover path] loads a checkpoint and returns
    [(model, offset, version)]. Replay resumes by skipping [offset]
    lines of the event log. Raises [Failure] if the file's digest does
    not match its contents (corruption, or a checkpoint paired with the
    wrong model — see {!Iflow_io.Model_io}), or if the offset/version
    fields are missing or malformed. *)
