lib/exp/synthetic_bucket.ml: Beta_icm Generator Iflow_bucket Iflow_core Iflow_mcmc Iflow_rwr Iflow_stats Pseudo_state
