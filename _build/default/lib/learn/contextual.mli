(** Context-dependent activation probabilities — the first extension in
    the paper's Discussion: "using different retweet distributions when
    not quoting the originating user".

    Here the context of an edge activation is whether the parent held
    the {i original} object (it was a source) or a relayed copy. Each
    edge carries two Beta posteriors, trained with the paper's counting
    rule applied per context; the paper's own radius-1 results suggest
    originals are forwarded more readily, which this model captures and
    the plain betaICM averages away. *)

type context = From_source | From_relay

type t

val graph : t -> Iflow_graph.Digraph.t

val train : Iflow_graph.Digraph.t -> Iflow_core.Evidence.attributed -> t
(** For each object and each edge whose parent was active: the trial is
    assigned to [From_source] when the parent is one of the object's
    sources, [From_relay] otherwise; alpha increments when the edge was
    active, beta otherwise — exactly the attributed rule, split by
    context. *)

val edge_beta : t -> context -> int -> Iflow_stats.Dist.Beta.t

val model_for : t -> context -> Iflow_core.Beta_icm.t
(** The betaICM a context induces (e.g. the [From_source] model answers
    "who forwards fresh originals"). *)

val pooled : t -> Iflow_core.Beta_icm.t
(** Contexts merged back together — identical to
    [Beta_icm.train_attributed] on the same evidence (tested). *)

val context_gap : t -> int -> float
(** [mean from_source - mean from_relay] for an edge: positive when the
    user forwards originals more readily than relays. *)
