type path = Cache | Exact | Mh | Err

let string_of_path = function
  | Cache -> "cache"
  | Exact -> "exact"
  | Mh -> "mh"
  | Err -> "error"

type record = {
  mutable seq : int;
  mutable id : string;
  mutable tenant : string;
  mutable kind : string;
  mutable path : path;
  mutable fallback : string;
  mutable error : string;
  mutable version : int;
  mutable digest : string;
  mutable queue_wait_ns : int;
  mutable plan_ns : int;
  mutable sample_ns : int;
  mutable serialize_ns : int;
  mutable rounds : int;
  mutable samples : int;
  mutable rhat : float;
  mutable mcse : float;
  mutable deadline_ns : int;
  mutable cancelled : bool;
  mutable ts_ns : int;
}

let empty_cell () =
  {
    seq = -1;
    id = "";
    tenant = "";
    kind = "";
    path = Err;
    fallback = "";
    error = "";
    version = -1;
    digest = "";
    queue_wait_ns = 0;
    plan_ns = 0;
    sample_ns = 0;
    serialize_ns = 0;
    rounds = 0;
    samples = 0;
    rhat = Float.nan;
    mcse = Float.nan;
    deadline_ns = 0;
    cancelled = false;
    ts_ns = 0;
  }

(* 8 shards: enough that serve workers on distinct domains rarely
   contend, small enough that tiny capacities still spread sanely *)
let shard_bits = 3
let nshards = 1 lsl shard_bits

type shard = {
  m : Mutex.t;
  mutable cells : record array; (* [||] while disabled *)
  mutable cursor : int;
}

let shards =
  Array.init nshards (fun _ -> { m = Mutex.create (); cells = [||]; cursor = 0 })

(* the one-load-one-branch gate on the hot path; flipped only under
   every shard lock so [note] never sees a half-built ring *)
let on = Atomic.make false
let seq = Atomic.make 0

let enabled () = Atomic.get on

let with_all_shards f =
  Array.iter (fun s -> Mutex.lock s.m) shards;
  Fun.protect
    ~finally:(fun () -> Array.iter (fun s -> Mutex.unlock s.m) shards)
    f

let configure ?(capacity = 1024) () =
  let per = max 1 ((capacity + nshards - 1) / nshards) in
  with_all_shards (fun () ->
      Array.iter
        (fun s ->
          s.cells <- Array.init per (fun _ -> empty_cell ());
          s.cursor <- 0)
        shards;
      Atomic.set seq 0;
      Atomic.set on true)

let disable () =
  with_all_shards (fun () ->
      Atomic.set on false;
      Array.iter
        (fun s ->
          s.cells <- [||];
          s.cursor <- 0)
        shards)

let capacity () =
  if not (Atomic.get on) then 0
  else Array.fold_left (fun acc s -> acc + Array.length s.cells) 0 shards

let clear () =
  with_all_shards (fun () ->
      Array.iter
        (fun s ->
          Array.iter (fun c -> c.seq <- -1) s.cells;
          s.cursor <- 0)
        shards;
      Atomic.set seq 0)

let note ~id ~tenant ~kind ~path ?(fallback = "") ?(error = "") ?(version = -1)
    ?(digest = "") ?(queue_wait_ns = 0) ?(plan_ns = 0) ?(sample_ns = 0)
    ?(serialize_ns = 0) ?(rounds = 0) ?(samples = 0) ?(rhat = Float.nan)
    ?(mcse = Float.nan) ?(deadline_ns = 0) ?(cancelled = false) () =
  if Atomic.get on then begin
    let sh = shards.((Domain.self () :> int) land (nshards - 1)) in
    let n = Atomic.fetch_and_add seq 1 in
    let ts = Clock.now_ns () in
    Mutex.lock sh.m;
    (* [disable] may have raced us past the gate; the ring may be gone *)
    if Array.length sh.cells > 0 then begin
      let c = sh.cells.(sh.cursor) in
      sh.cursor <- (sh.cursor + 1) mod Array.length sh.cells;
      c.seq <- n;
      c.id <- id;
      c.tenant <- tenant;
      c.kind <- kind;
      c.path <- path;
      c.fallback <- fallback;
      c.error <- error;
      c.version <- version;
      c.digest <- digest;
      c.queue_wait_ns <- queue_wait_ns;
      c.plan_ns <- plan_ns;
      c.sample_ns <- sample_ns;
      c.serialize_ns <- serialize_ns;
      c.rounds <- rounds;
      c.samples <- samples;
      c.rhat <- rhat;
      c.mcse <- mcse;
      c.deadline_ns <- deadline_ns;
      c.cancelled <- cancelled;
      c.ts_ns <- ts
    end;
    Mutex.unlock sh.m
  end

(* ----- load hint -----

   An EWMA (alpha 1/8) of queue-wait and serialize times over the
   requests that actually ran (queue_wait_ns > 0 — refusals at
   admission never waited and would drag the estimate to zero). This
   is the conservative floor deadline-aware admission compares a
   request's budget against: every admitted request pays at least the
   queue wait plus serialization, whatever path answers it. Plain
   atomics with racy read-modify-write — a lost update nudges the
   EWMA by one sample, which is noise at admission-decision scale. *)

type hint = { h_queue_wait_ns : int; h_serialize_ns : int; h_count : int }

let hint_queue_wait = Atomic.make 0
let hint_serialize = Atomic.make 0
let hint_count = Atomic.make 0

let ewma cell x =
  let old = Atomic.get cell in
  Atomic.set cell (if old = 0 then x else old + ((x - old) asr 3))

let observe_load ~queue_wait_ns ~serialize_ns =
  if queue_wait_ns > 0 then begin
    ewma hint_queue_wait queue_wait_ns;
    ewma hint_serialize (max 0 serialize_ns);
    Atomic.incr hint_count
  end

let load_hint () =
  {
    h_queue_wait_ns = Atomic.get hint_queue_wait;
    h_serialize_ns = Atomic.get hint_serialize;
    h_count = Atomic.get hint_count;
  }

let reset_load_hint () =
  Atomic.set hint_queue_wait 0;
  Atomic.set hint_serialize 0;
  Atomic.set hint_count 0

let submit r =
  r.ts_ns <- Clock.now_ns ();
  observe_load ~queue_wait_ns:r.queue_wait_ns ~serialize_ns:r.serialize_ns;
  if Atomic.get on then begin
    r.seq <- Atomic.fetch_and_add seq 1;
    let sh = shards.((Domain.self () :> int) land (nshards - 1)) in
    Mutex.lock sh.m;
    if Array.length sh.cells > 0 then begin
      let c = sh.cells.(sh.cursor) in
      sh.cursor <- (sh.cursor + 1) mod Array.length sh.cells;
      c.seq <- r.seq;
      c.id <- r.id;
      c.tenant <- r.tenant;
      c.kind <- r.kind;
      c.path <- r.path;
      c.fallback <- r.fallback;
      c.error <- r.error;
      c.version <- r.version;
      c.digest <- r.digest;
      c.queue_wait_ns <- r.queue_wait_ns;
      c.plan_ns <- r.plan_ns;
      c.sample_ns <- r.sample_ns;
      c.serialize_ns <- r.serialize_ns;
      c.rounds <- r.rounds;
      c.samples <- r.samples;
      c.rhat <- r.rhat;
      c.mcse <- r.mcse;
      c.deadline_ns <- r.deadline_ns;
      c.cancelled <- r.cancelled;
      c.ts_ns <- r.ts_ns
    end;
    Mutex.unlock sh.m
  end

let copy c = { c with id = c.id }

let all_filled () =
  with_all_shards (fun () ->
      Array.fold_left
        (fun acc s ->
          Array.fold_left
            (fun acc c -> if c.seq >= 0 then copy c :: acc else acc)
            acc s.cells)
        [] shards)

let recent n =
  let all = all_filled () in
  let sorted = List.sort (fun a b -> compare b.seq a.seq) all in
  List.filteri (fun i _ -> i < n) sorted

let find id =
  let all = all_filled () in
  List.fold_left
    (fun best c ->
      if c.id <> id then best
      else
        match best with
        | Some b when b.seq >= c.seq -> best
        | _ -> Some c)
    None all

let escape buf s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s

let add_str buf k v =
  Buffer.add_char buf '"';
  Buffer.add_string buf k;
  Buffer.add_string buf "\":\"";
  escape buf v;
  Buffer.add_string buf "\","

let add_int buf k v =
  Buffer.add_char buf '"';
  Buffer.add_string buf k;
  Buffer.add_string buf "\":";
  Buffer.add_string buf (string_of_int v);
  Buffer.add_char buf ','

let add_float buf k v =
  Buffer.add_char buf '"';
  Buffer.add_string buf k;
  Buffer.add_string buf "\":";
  Buffer.add_string buf
    (if Float.is_finite v then Printf.sprintf "%.17g" v else "null");
  Buffer.add_char buf ','

let to_json r =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '{';
  add_int buf "seq" r.seq;
  add_str buf "request_id" r.id;
  add_str buf "tenant" r.tenant;
  add_str buf "kind" r.kind;
  add_str buf "path" (string_of_path r.path);
  if r.fallback <> "" then add_str buf "fallback" r.fallback;
  if r.error <> "" then add_str buf "error" r.error;
  add_int buf "version" r.version;
  add_str buf "digest" r.digest;
  add_int buf "queue_wait_ns" r.queue_wait_ns;
  add_int buf "plan_ns" r.plan_ns;
  add_int buf "sample_ns" r.sample_ns;
  add_int buf "serialize_ns" r.serialize_ns;
  add_int buf "rounds" r.rounds;
  add_int buf "samples" r.samples;
  add_float buf "rhat" r.rhat;
  add_float buf "mcse" r.mcse;
  if r.deadline_ns > 0 then add_int buf "deadline_ns" r.deadline_ns;
  if r.cancelled then begin
    Buffer.add_string buf "\"cancelled\":true";
    Buffer.add_char buf ','
  end;
  add_int buf "ts_ns" r.ts_ns;
  (* drop the trailing comma *)
  Buffer.truncate buf (Buffer.length buf - 1);
  Buffer.add_char buf '}';
  Buffer.contents buf
