module Icm = Iflow_core.Icm
module Pseudo_state = Iflow_core.Pseudo_state
module Fenwick = Iflow_stats.Fenwick
module Reach = Iflow_graph.Reach
module Rng = Iflow_stats.Rng

type t = {
  icm : Icm.t;
  conditions : Conditions.t;
  state : Pseudo_state.t;
  weights : Fenwick.t;
  mutable z : float; (* cached total proposal weight *)
  mutable steps : int;
  mutable accepted : int;
  mutable since_rebuild : int;
  ws : Reach.workspace; (* per-chain BFS scratch, shared with estimators *)
  active : int -> bool; (* preallocated view of [state]'s edge activity *)
  caches : Reach.Cache.t array; (* one reachable set per condition source *)
  checks : (int * int * bool) array; (* (cache index, dst, required) *)
  undos : Reach.Cache.update array; (* per-cache receipt of the last flip *)
}

(* Weight of proposing a flip of edge e: probability of the activity the
   edge would take after the flip. *)
let proposal_weight icm state e =
  let p = Icm.prob icm e in
  if Pseudo_state.get state e then 1.0 -. p else p

let rebuild_every = 1 lsl 16

let create ?(conditions = Conditions.empty) ?init rng icm =
  let state =
    match init with
    | Some s ->
      if Pseudo_state.n_edges s <> Icm.n_edges icm then
        invalid_arg "Chain.create: init size mismatch";
      if Pseudo_state.log_prob icm s = neg_infinity then
        invalid_arg "Chain.create: init has zero probability";
      if not (Conditions.satisfied icm s conditions) then
        invalid_arg "Chain.create: init violates conditions";
      Pseudo_state.copy s
    | None ->
      (match Conditions.initial_state rng icm conditions with
      | Some s -> s
      | None ->
        failwith "Chain.create: could not satisfy flow conditions")
  in
  let weights =
    Fenwick.of_array
      (Array.init (Icm.n_edges icm) (proposal_weight icm state))
  in
  let ws = Reach.workspace (Icm.n_nodes icm) in
  let active = Pseudo_state.get state in
  let g = Icm.graph icm in
  let srcs = Array.of_list (Conditions.sources conditions) in
  let caches =
    Array.map (fun u -> Reach.Cache.create ws g ~source:u ~active) srcs
  in
  let index_of u =
    let rec go i = if srcs.(i) = u then i else go (i + 1) in
    go 0
  in
  let checks =
    Array.of_list
      (List.map
         (fun (u, v, req) -> (index_of u, v, req))
         (Conditions.to_list conditions))
  in
  {
    icm;
    conditions;
    state;
    weights;
    z = Fenwick.total weights;
    steps = 0;
    accepted = 0;
    since_rebuild = 0;
    ws;
    active;
    caches;
    checks;
    undos = Array.make (Array.length caches) Reach.Cache.Unchanged;
  }

let icm t = t.icm
let conditions t = t.conditions
let state t = t.state
let workspace t = t.ws

(* The conditioned indicator check after edge [e] flipped: update every
   per-source cache incrementally (O(1) for flips the set cannot see,
   incremental BFS for growth, a workspace-reusing recompute only when a
   BFS-tree edge was cut), then read the condition verdicts straight off
   the caches. On violation the updates are reverted — Grew in O(newly
   marked), Rebuilt in O(1) (double-buffer swap) — so rejected proposals
   leave no trace and allocate nothing. *)
let conditions_hold_after_flip t e =
  let nc = Array.length t.caches in
  for i = 0 to nc - 1 do
    t.undos.(i) <- Reach.Cache.update t.caches.(i) ~active:t.active ~edge:e
  done;
  let ok = ref true in
  for j = 0 to Array.length t.checks - 1 do
    let ci, v, req = t.checks.(j) in
    if Reach.Cache.reaches t.caches.(ci) v <> req then ok := false
  done;
  if not !ok then
    for i = nc - 1 downto 0 do
      Reach.Cache.undo t.caches.(i) t.undos.(i)
    done;
  !ok

let step rng t =
  t.steps <- t.steps + 1;
  if t.z > 0.0 then begin
    let e = Fenwick.sample rng t.weights in
    let w = Fenwick.get t.weights e in
    (* Flipping e replaces its weight w by 1 - w (the two weights are p
       and 1-p), so Z' = Z + 1 - 2w; acceptance is min(Z/Z', 1). *)
    let z' = t.z +. 1.0 -. (2.0 *. w) in
    let a = if t.z < z' then t.z /. z' else 1.0 in
    if Rng.uniform rng <= a then begin
      Pseudo_state.flip t.state e;
      if Array.length t.caches = 0 || conditions_hold_after_flip t e then begin
        t.accepted <- t.accepted + 1;
        Fenwick.set t.weights e (1.0 -. w);
        t.since_rebuild <- t.since_rebuild + 1;
        if t.since_rebuild >= rebuild_every then begin
          Fenwick.rebuild t.weights;
          t.since_rebuild <- 0
        end;
        t.z <- Fenwick.total t.weights
      end
      else
        (* Candidate violates the conditions: indicator 0, reject. *)
        Pseudo_state.flip t.state e
    end
  end

let advance rng t k =
  for _ = 1 to k do
    step rng t
  done

let steps_taken t = t.steps

let acceptance_rate t =
  if t.steps = 0 then 0.0 else float_of_int t.accepted /. float_of_int t.steps

let normaliser t = t.z
