type request = {
  meth : string;
  path : string;
  headers : (string * string) list;
  body : string;
}

type parse = Request of request | Malformed of string | Overflow of string

let verbs = [ "GET"; "POST"; "HEAD"; "PUT"; "DELETE"; "OPTIONS"; "PATCH" ]

let is_http_verb line =
  List.exists
    (fun v ->
      let n = String.length v in
      String.length line > n
      && String.sub line 0 n = v
      && line.[n] = ' ')
    verbs

let header req name =
  let name = String.lowercase_ascii name in
  List.assoc_opt name req.headers

(* target = path['?'query]; the router matches on the path alone *)
let split_target target =
  match String.index_opt target '?' with
  | None -> (target, "")
  | Some i ->
    ( String.sub target 0 i,
      String.sub target (i + 1) (String.length target - i - 1) )

let query_param query name =
  if query = "" then None
  else
    List.find_map
      (fun kv ->
        match String.index_opt kv '=' with
        | None -> if kv = name then Some "" else None
        | Some i ->
          if String.sub kv 0 i = name then
            Some (String.sub kv (i + 1) (String.length kv - i - 1))
          else None)
      (String.split_on_char '&' query)

let reason = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 413 -> "Payload Too Large"
  | 422 -> "Unprocessable Entity"
  | 429 -> "Too Many Requests"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | c -> Printf.sprintf "Status %d" c

let read_request ?(max_headers = 100) ?(max_body_bytes = 8 lsl 20) r
    ~first_line =
  match String.split_on_char ' ' first_line with
  | [ meth; path; _version ] -> (
    let rec read_headers acc n =
      if n > max_headers then Error (Overflow "too many header lines")
      else
        match Sockio.read_line r with
        | Sockio.Eof -> Error (Malformed "connection closed mid-headers")
        | Sockio.Timeout -> Error (Malformed "read timed out mid-headers")
        | Sockio.Too_long -> Error (Overflow "header line too long")
        | Sockio.Line "" -> Ok (List.rev acc)
        | Sockio.Line h -> (
          match String.index_opt h ':' with
          | None -> Error (Malformed (Printf.sprintf "malformed header %S" h))
          | Some i ->
            let name = String.lowercase_ascii (String.sub h 0 i) in
            let value =
              String.trim (String.sub h (i + 1) (String.length h - i - 1))
            in
            read_headers ((name, value) :: acc) (n + 1))
    in
    match read_headers [] 0 with
    | Error e -> e
    | Ok headers -> (
      let content_length =
        match List.assoc_opt "content-length" headers with
        | None -> Ok 0
        | Some v -> (
          match int_of_string_opt (String.trim v) with
          | Some n when n >= 0 -> Ok n
          | _ -> Error (Malformed (Printf.sprintf "bad Content-Length %S" v)))
      in
      match content_length with
      | Error e -> e
      | Ok n when n > max_body_bytes ->
        Overflow (Printf.sprintf "body of %d bytes exceeds limit" n)
      | Ok n -> (
        match if n = 0 then Some "" else Sockio.read_exactly r n with
        | None -> Malformed "connection closed mid-body"
        | Some body ->
          Request { meth = String.uppercase_ascii meth; path; headers; body })))
  | _ -> Malformed (Printf.sprintf "malformed request line %S" first_line)

let response ?(headers = []) ?(content_type = "application/json") ~status body =
  let b = Buffer.create (String.length body + 256) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason status));
  Buffer.add_string b (Printf.sprintf "Content-Type: %s\r\n" content_type);
  Buffer.add_string b
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string b "Connection: close\r\n\r\n";
  Buffer.add_string b body;
  Buffer.contents b
