lib/stats/dist.mli: Format Rng
