lib/exp/fig11.mli: Format Iflow_core Iflow_stats Scale
