lib/learn/trainer.mli: Iflow_core Iflow_graph
