lib/exp/twitter_lab.mli: Iflow_core Iflow_graph Iflow_stats Iflow_twitter Scale
