(** Cooperative cancellation tokens for deadline-bounded sampling.

    A token carries an absolute monotonic deadline
    ({!Iflow_obs.Clock} base) fixed at creation, plus an explicit
    {!fire} used for client-disconnect and shutdown drain. Consumers
    ({!Estimator}, the engine's adaptive round loop) poll {!cancelled}
    at step and round boundaries; nothing is preempted, so work that
    completes before the token trips is bit-for-bit identical to an
    uncancelled run — the abandoned RNG streams are simply never read.

    Checking a {!none}/unarmed token costs one atomic load plus an
    integer compare (no clock read), so threading tokens through every
    query is effectively free for deadline-less traffic. *)

type t

val none : t
(** The shared disarmed token: never expires, must never be
    {!fire}d. [cancelled none] is [false] forever. *)

val create : ?deadline_ns:int -> unit -> t
(** A fresh token expiring at the given absolute
    {!Iflow_obs.Clock.now_ns} instant (omit for a fire-only token). *)

val with_budget : budget_ns:int -> unit -> t
(** [create ~deadline_ns:(now + budget_ns)]. Raises [Invalid_argument]
    on a negative budget ([budget_ns = 0] is an already-expired
    token). *)

val cancelled : t -> bool
(** True once the deadline has passed or {!fire} was called. Monotone:
    never becomes false again. *)

val fire : ?reason:string -> t -> unit
(** Trip the token now, recording [reason] (default ["cancelled"]).
    Idempotent; the first reason wins and outranks later expiry. *)

type status = Live | Expired | Fired of string

val status : t -> status
(** Distinguishes deadline expiry from an explicit fire — the serving
    layer maps [Expired] to [deadline_exceeded] and
    [Fired "shutdown"] to [shutting_down]. *)

val reason : t -> string option
(** Human-readable cause when cancelled, [None] while live. *)

val deadline_ns : t -> int option
(** The absolute deadline, [None] for fire-only / disarmed tokens. *)

val remaining_ns : t -> int option
(** Budget left until the deadline (negative once past); [None] when
    no deadline is set. *)
