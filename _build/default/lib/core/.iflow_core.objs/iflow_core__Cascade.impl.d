lib/core/cascade.ml: Array Evidence Icm Iflow_graph Iflow_stats List Queue
