(** Evidence summaries for unattributed learning (paper Section V-B,
    Table I).

    For a sink node [k], the {i characteristic} of an object is the set
    of [k]'s in-neighbours that were active before [k] (just before [k]
    activated, or at the end of the data when [k] never activated). A
    summary maps each distinct characteristic to how often it was
    observed and how often it "leaked" (resulted in [k] activating).
    The summary is a sufficient statistic for the per-sink model — the
    test suite checks this. *)

type entry = {
  parents : int array; (** the characteristic, sorted ascending *)
  count : int; (** n_J: observations of this characteristic *)
  leaks : int; (** L_J: observations where the sink then activated *)
}

type t = private { sink : int; entries : entry list }

val build : Iflow_graph.Digraph.t -> Evidence.unattributed -> sink:int -> t
(** Summarise every trace for one sink. Objects for which [k] is a
    source, or whose characteristic is empty, carry no information about
    [k]'s in-edges and are dropped. *)

val build_all : Iflow_graph.Digraph.t -> Evidence.unattributed -> t array
(** One summary per node, single pass over the evidence. *)

val of_table : sink:int -> (int array * int * int) list -> t
(** Build from explicit (characteristic, count, leaks) rows — used for
    the paper's Table I / Table II examples. Raises [Invalid_argument]
    on duplicate characteristics, [leaks > count], or unsorted rows with
    duplicate parents. *)

val n_entries : t -> int
val total_observations : t -> int
val total_leaks : t -> int

val parents_union : t -> int array
(** Every node appearing in some characteristic, sorted — the candidate
    parents the learners estimate edge probabilities for. *)

val unambiguous : t -> (int * int * int) list
(** [(parent, leaks, count)] for the singleton characteristics — the
    rows that attribute unambiguously, used for the paper's informed
    Beta priors and for the "filtered" baseline. *)

val log_likelihood : t -> prob:(int -> float) -> float
(** [ln Pr(D_k | M_k)] up to the constant binomial coefficients:
    for each characteristic J with probability
    [p_J = 1 - prod_{j in J} (1 - prob j)], add
    [L_J ln p_J + (n_J - L_J) ln (1 - p_J)] (paper Equation 9). *)

val log_likelihood_exact : t -> prob:(int -> float) -> float
(** Same including the [ln (n_J choose L_J)] constants. *)

val pp : Format.formatter -> t -> unit
