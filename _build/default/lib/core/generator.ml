module Rng = Iflow_stats.Rng
module Beta = Iflow_stats.Dist.Beta
module Gen = Iflow_graph.Gen

let beta_icm rng ~nodes ~edges ~a_range ~b_range =
  let la, ua = a_range and lb, ub = b_range in
  if la < 1.0 || lb < 1.0 || ua < la || ub < lb then
    invalid_arg "Generator.beta_icm: bad parameter ranges";
  let g = Gen.gnm rng ~nodes ~edges in
  let betas =
    Array.init edges (fun _ ->
        Beta.v (Rng.uniform_in rng la ua) (Rng.uniform_in rng lb ub))
  in
  Beta_icm.create g betas

let default_beta_icm rng ~nodes ~edges =
  beta_icm rng ~nodes ~edges ~a_range:(1.0, 20.0) ~b_range:(1.0, 20.0)

let skewed_ground_truth rng g =
  let high = Beta.v 16.0 4.0 and low = Beta.v 2.0 8.0 in
  let probs =
    Array.init (Iflow_graph.Digraph.n_edges g) (fun _ ->
        let component = if Rng.uniform rng < 0.9 then high else low in
        Beta.sample rng component)
  in
  Icm.create g probs

let retweet_ground_truth rng g =
  let weak = Beta.v 2.0 12.0 and strong = Beta.v 4.0 6.0 in
  let probs =
    Array.init (Iflow_graph.Digraph.n_edges g) (fun _ ->
        let component = if Rng.uniform rng < 0.9 then weak else strong in
        Beta.sample rng component)
  in
  Icm.create g probs

let in_star_icm ~probs =
  let d = Array.length probs in
  if d = 0 then invalid_arg "Generator.in_star_icm: no parents";
  let sink = d in
  let pairs = List.init d (fun i -> (i, sink)) in
  let g = Iflow_graph.Digraph.of_edges ~nodes:(d + 1) pairs in
  (g, Icm.create g probs, sink)
