/* Monotonic clock for Obs.Clock.

   OCaml 5.1's Unix module has no clock_gettime binding, so this is the
   one-line stub the interface promises: CLOCK_MONOTONIC nanoseconds as
   a tagged OCaml int (63 bits hold ~146 years of nanoseconds, so no
   allocation on the timing path — the stub is [@@noalloc]). */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value iflow_obs_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0) {
    /* monotonic clock unavailable: fall back to the realtime clock
       rather than fail — callers only ever take differences */
    clock_gettime(CLOCK_REALTIME, &ts);
  }
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
