(** A mutable LRU cache with hit / miss / eviction counters.

    Hashtbl for lookup plus an intrusive doubly-linked recency list, so
    [find], [add], and eviction are all O(1). Keys use polymorphic
    hashing — the engine keys entries by digest strings. A capacity of
    0 disables caching ([add] is a no-op) while still counting misses,
    which keeps the instrumented code path uniform.

    Not thread-safe: the engine only touches the cache from the
    coordinating domain. *)

type ('k, 'v) t

type stats = { hits : int; misses : int; evictions : int; entries : int }

val create : int -> ('k, 'v) t
(** [create capacity]. Raises [Invalid_argument] when negative. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Counts a hit (and refreshes recency) or a miss. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Pure lookup: no counter or recency update. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite, making the entry most-recent; evicts the
    least-recently-used entry when full. *)

val evict_where : ('k, 'v) t -> ('k -> bool) -> int
(** Evict every entry whose key satisfies the predicate, returning how
    many were dropped. Each drop counts as an eviction — this is how
    the engine retires a model version's cache entries on hot-swap. *)

val clear : ('k, 'v) t -> unit
(** Drop all entries (counters are retained). *)

val stats : ('k, 'v) t -> stats

val pp_stats : Format.formatter -> stats -> unit
