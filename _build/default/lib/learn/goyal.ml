module Summary = Iflow_core.Summary

let train (summary : Summary.t) =
  let parents = Summary.parents_union summary in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i p -> Hashtbl.add index p i) parents;
  let credit = Array.make (Array.length parents) 0.0 in
  let exposure = Array.make (Array.length parents) 0 in
  List.iter
    (fun (e : Summary.entry) ->
      let share = float_of_int e.leaks /. float_of_int (Array.length e.parents) in
      Array.iter
        (fun p ->
          let i = Hashtbl.find index p in
          credit.(i) <- credit.(i) +. share;
          exposure.(i) <- exposure.(i) + e.count)
        e.parents)
    summary.entries;
  let mean =
    Array.init (Array.length parents) (fun i ->
        if exposure.(i) = 0 then 0.0
        else Float.min 1.0 (credit.(i) /. float_of_int exposure.(i)))
  in
  {
    Trainer.sink = summary.sink;
    parents;
    mean;
    std = Array.make (Array.length parents) 0.0;
  }
