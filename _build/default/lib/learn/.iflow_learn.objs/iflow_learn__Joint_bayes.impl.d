lib/learn/joint_bayes.ml: Array Float Hashtbl Iflow_core Iflow_stats List Trainer
