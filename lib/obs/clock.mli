(** Monotonic wall-clock time.

    [Sys.time] is process CPU time — it under-counts multi-domain work
    and over-counts busy waiting — and [Unix.gettimeofday] can jump
    when the system clock is adjusted. Everything in [iflow_obs] (and
    every wall timing in the repo) goes through this interface instead:
    [clock_gettime(CLOCK_MONOTONIC)] via a tiny C stub, returned as
    tagged-int nanoseconds so reading the clock never allocates. *)

val now_ns : unit -> int
(** Nanoseconds on the monotonic clock, from an arbitrary origin. Only
    differences are meaningful. No allocation. *)

val elapsed_ns : int -> int
(** [elapsed_ns t0] is [now_ns () - t0]. *)

val seconds_of_ns : int -> float
(** Nanoseconds to seconds ([/. 1e9]). *)

val now_s : unit -> float
(** [seconds_of_ns (now_ns ())] — convenience for coarse timings. *)

val time_per_call : ?min_interval:float -> ?max_reps:int -> (unit -> unit) ->
  float
(** [time_per_call f] is the mean wall seconds per call of [f],
    repeating [f] in growing batches until a batch spans at least
    [min_interval] seconds (default 0.05) or [max_reps] calls (default
    10_000_000). The monotonic replacement for the [Sys.time] timing
    loops the experiment modules used to carry. *)
