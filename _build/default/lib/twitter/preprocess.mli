(** Preprocessing raw tweets into attributed evidence (paper Section
    IV-B): identify retweets and their ancestry from message syntax,
    link later retweets back through chains, and recover originals that
    are missing from the (incomplete) corpus. *)

type cascade = {
  root_author : string;
  root_text : string;
  original_observed : bool;
      (** false when the original tweet was reconstructed from RT chains
          — the paper's recovery step that grew its corpus from 10M to
          10.8M tweets *)
  activations : (string * string * int) list;
      (** (retweeter, attributed parent, time); includes intermediate
          hops recovered from deeper chains *)
}

val cascades : Tweet.t list -> cascade list
(** Reconstruct cascades from a raw corpus. Retweets are matched to
    their original by root author plus text-prefix comparison (deep
    chains truncate the root text, so exact equality is wrong). *)

val users : Tweet.t list -> string array
(** All user names appearing as authors or in mentions, sorted. *)

val infer_graph :
  Tweet.t list -> Iflow_graph.Digraph.t * string array * (string, int) Hashtbl.t
(** The paper infers topology "using the '@' references": one node per
    user, one edge parent -> child per attribution pair observed in some
    cascade. Returns (graph, names by node, node index by name). *)

val to_attributed :
  graph:Iflow_graph.Digraph.t ->
  node_of_name:(string -> int option) ->
  cascade list ->
  Iflow_core.Evidence.attributed
(** Project cascades onto a graph as attributed evidence. Activations
    whose user is unknown or whose attributed edge is absent from the
    graph are dropped (and their descendants with them), keeping every
    produced object consistent. *)
