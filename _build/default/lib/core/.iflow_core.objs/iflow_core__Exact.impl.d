lib/core/exact.ml: Array Hashtbl Icm Iflow_graph List Pseudo_state
