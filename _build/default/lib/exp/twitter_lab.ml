open Iflow_core
open Iflow_twitter
module Digraph = Iflow_graph.Digraph
module Traverse = Iflow_graph.Traverse
module Gen = Iflow_graph.Gen
module Rng = Iflow_stats.Rng

type t = {
  corpus : Corpus.t;
  graph : Digraph.t;
  train_objects : Evidence.attributed;
  test_cascades : Preprocess.cascade list;
  model : Beta_icm.t;
}

let make scale rng =
  let users = Scale.pick scale ~quick:150 ~full:600 in
  let originals = Scale.pick scale ~quick:1500 ~full:8000 in
  let g = Gen.preferential_attachment rng ~nodes:users ~mean_out_degree:4 in
  let truth = Generator.retweet_ground_truth rng g in
  let corpus =
    Corpus.generate
      ~params:{ Corpus.default_params with originals }
      rng truth
  in
  (* split tweets by time: first 80% train, rest test; cascades are
     reconstructed within each part so test outcomes never leak into
     training *)
  let tweets = corpus.Corpus.tweets in
  let cutoff =
    let times = List.map (fun (t : Tweet.t) -> t.Tweet.time) tweets in
    let sorted = List.sort compare times in
    List.nth sorted (4 * List.length sorted / 5)
  in
  let train_tweets, test_tweets =
    List.partition (fun (t : Tweet.t) -> t.Tweet.time <= cutoff) tweets
  in
  let node_of_name = Corpus.node_of_name corpus in
  let train_objects =
    Preprocess.to_attributed ~graph:g ~node_of_name
      (Preprocess.cascades train_tweets)
  in
  let test_cascades = Preprocess.cascades test_tweets in
  let model = Beta_icm.train_attributed g train_objects in
  { corpus; graph = g; train_objects; test_cascades; model }

let interesting_users t ~count =
  let n = Digraph.n_nodes t.graph in
  let retweets = Array.make n 0 in
  List.iter
    (fun (o : Evidence.attributed_object) ->
      match o.Evidence.sources with
      | [ src ] ->
        let reach = Iflow_core.Cascade.reached_count o in
        retweets.(src) <- retweets.(src) + reach
      | _ -> ())
    t.train_objects;
  let ranked = List.init n (fun v -> (retweets.(v), v)) in
  let ranked = List.sort (fun a b -> compare b a) ranked in
  List.filteri (fun i _ -> i < count) (List.map snd ranked)

let subgraph_around t ~centre ~radius =
  let keep =
    Traverse.within_radius ~direction:Traverse.Both t.graph ~centre ~radius
  in
  let sub, node_of_sub, edge_of_sub = Digraph.induced t.graph ~keep in
  let betas =
    Array.map (fun e -> Beta_icm.edge_beta t.model e) edge_of_sub
  in
  let sub_model = Beta_icm.create sub betas in
  let focus = ref (-1) in
  Array.iteri (fun v' v -> if v = centre then focus := v') node_of_sub;
  (sub_model, node_of_sub, !focus)

let cascade_outcomes t ~source =
  let node_of_name = Corpus.node_of_name t.corpus in
  let n = Digraph.n_nodes t.graph in
  List.mapi (fun i c -> (i, c)) t.test_cascades
  |> List.filter_map (fun (i, (c : Preprocess.cascade)) ->
         match node_of_name c.Preprocess.root_author with
         | Some src when src = source ->
           let active = Array.make n false in
           active.(src) <- true;
           List.iter
             (fun (child, _, _) ->
               match node_of_name child with
               | Some v -> active.(v) <- true
               | None -> ())
             c.Preprocess.activations;
           Some (i, active)
         | Some _ | None -> None)
