lib/learn/filtered.mli: Iflow_core Iflow_stats Trainer
