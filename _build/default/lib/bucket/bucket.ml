module Measures = Iflow_stats.Measures
module Beta = Iflow_stats.Dist.Beta

type bin = {
  lo : float;
  hi : float;
  count : int;
  positives : int;
  mean_estimate : float;
  empirical : Beta.t;
  interval : float * float;
  inside : bool;
}

type t = {
  bins : bin array;
  total : int;
  coverage : float;
  measures : Measures.row;
}

let run ?(bins = 30) ~label predictions =
  if bins <= 0 then invalid_arg "Bucket.run: bins <= 0";
  if predictions = [] then invalid_arg "Bucket.run: no predictions";
  let counts = Array.make bins 0 in
  let positives = Array.make bins 0 in
  let estimate_sum = Array.make bins 0.0 in
  List.iter
    (fun { Measures.estimate; outcome } ->
      if estimate < 0.0 || estimate > 1.0 then
        invalid_arg "Bucket.run: estimate outside [0,1]";
      let j =
        let j = int_of_float (estimate *. float_of_int bins) in
        if j >= bins then bins - 1 else j
      in
      counts.(j) <- counts.(j) + 1;
      if outcome then positives.(j) <- positives.(j) + 1;
      estimate_sum.(j) <- estimate_sum.(j) +. estimate)
    predictions;
  let make_bin j =
    let lo = float_of_int j /. float_of_int bins in
    let hi = float_of_int (j + 1) /. float_of_int bins in
    let count = counts.(j) and pos = positives.(j) in
    (* Paper's empirical distribution: alpha = 1 + sum z,
       beta = |bin| - alpha + 2 = (count - pos) + 1. *)
    let empirical = Beta.of_counts ~successes:pos ~failures:(count - pos) in
    let interval = Beta.interval empirical 0.95 in
    let mean_estimate =
      if count = 0 then Float.nan
      else estimate_sum.(j) /. float_of_int count
    in
    let inside =
      count > 0
      && fst interval <= mean_estimate
      && mean_estimate <= snd interval
    in
    { lo; hi; count; positives = pos; mean_estimate; empirical; interval;
      inside }
  in
  let bins_arr = Array.init bins make_bin in
  let occupied = Array.to_list bins_arr |> List.filter (fun b -> b.count > 0) in
  let covered = List.length (List.filter (fun b -> b.inside) occupied) in
  {
    bins = bins_arr;
    total = List.length predictions;
    coverage =
      (match occupied with
      | [] -> 0.0
      | _ -> float_of_int covered /. float_of_int (List.length occupied));
    measures = Measures.table_row ~label predictions;
  }

let pp ppf t =
  Format.fprintf ppf "%-13s %8s %8s %10s %10s %19s %s@." "bin" "volume"
    "positive" "mean est" "emp mean" "95% interval" "";
  Array.iter
    (fun b ->
      if b.count > 0 then begin
        let lo_ci, hi_ci = b.interval in
        Format.fprintf ppf "[%4.2f, %4.2f) %8d %8d %10.4f %10.4f [%6.4f, %6.4f]  %s@."
          b.lo b.hi b.count b.positives b.mean_estimate
          (Beta.mean b.empirical) lo_ci hi_ci
          (if b.inside then "in" else "OUT")
      end)
    t.bins;
  Format.fprintf ppf "coverage: %.3f over %d predictions@." t.coverage t.total

let pp_summary ppf t =
  Format.fprintf ppf
    "%s: coverage %.3f, NL %.4f, Brier %.4f (%d predictions)"
    t.measures.Measures.label t.coverage t.measures.Measures.nl_all
    t.measures.Measures.brier_all t.total
