test/test_graph.ml: Alcotest Array Digraph Gen Iflow_graph Iflow_stats List QCheck QCheck_alcotest Random Traverse
