(** A leveled structured logger for the runner and CLI, replacing raw
    [eprintf] reporting. Lines go to [stderr] as
    ["<ts> <level> [<component>] rid=<id> <message>"] where [<ts>] is
    the monotonic {!Clock} reading in seconds (microsecond precision) —
    subtract two to get an interval; the base is arbitrary. The default
    level is {!Warn} so stdout-parsing callers see no new output unless
    they opt in.

    Emission is serialised on a process-wide mutex: each call formats
    its whole line first, then writes and flushes it atomically, so
    concurrent domains never interleave partial lines. The optional
    [?rid] names the request a line belongs to, matching the
    [request_id] echoed on the wire and recorded by {!Flight}. *)

type level = Error | Warn | Info | Debug

val set_level : level -> unit
val level : unit -> level

val level_of_string : string -> (level, string) result
(** Accepts ["error"], ["warn"], ["info"], ["debug"] (any case). *)

val string_of_level : level -> string

val err :
  ?component:string ->
  ?rid:string ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a

val warn :
  ?component:string ->
  ?rid:string ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a

val info :
  ?component:string ->
  ?rid:string ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a

val debug :
  ?component:string ->
  ?rid:string ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** Formatted log statements; each emits one line (a trailing newline
    is appended) when its level is enabled, and evaluates its
    arguments' formatting only then. *)
