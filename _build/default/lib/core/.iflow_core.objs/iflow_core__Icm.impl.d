lib/core/icm.ml: Array Format Iflow_graph Printf
