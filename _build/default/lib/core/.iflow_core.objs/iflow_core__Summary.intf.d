lib/core/summary.mli: Evidence Format Iflow_graph
