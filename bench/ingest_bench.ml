(* Ingest-path benchmark: JSONL vs binary event log, sequential vs
   domain-sharded, on the paper's timing setting (~6K users, ~12K
   edges) — the PR 7 acceptance measurement.

   The same simulated attributed-cascade stream is ingested four ways:
   - jsonl: Online.apply_line per line (the BENCH_PR3 baseline path);
   - bin @ 1/2/4 shards: Binlog.Reader batches through
     Sharded.apply_batch (decode and accumulate both parallelized,
     posteriors bit-identical to the jsonl path — asserted here);
   - end to end: the binary path through Runner.run_binlog with its
     publish cadence.

   Results go to BENCH_PR7.json (committed). --quick (or
   IFLOW_BENCH_QUICK=1) shortens the run for CI. *)

module Rng = Iflow_stats.Rng
module Gen = Iflow_graph.Gen
module Digraph = Iflow_graph.Digraph
module Beta_icm = Iflow_core.Beta_icm
module Cascade = Iflow_core.Cascade
module Generator = Iflow_core.Generator
module Event = Iflow_stream.Event
module Online = Iflow_stream.Online
module Snapshot = Iflow_stream.Snapshot
module Runner = Iflow_stream.Runner
module Binlog = Iflow_stream.Binlog
module Sharded = Iflow_stream.Sharded
module Clock = Iflow_obs.Clock

let quick =
  Array.exists (fun a -> a = "--quick") Sys.argv
  || Sys.getenv_opt "IFLOW_BENCH_QUICK" <> None

let n_events = if quick then 5_000 else 200_000
let read_batch_frames = 4096

let timed f =
  let t0 = Clock.now_ns () in
  let x = f () in
  (x, Clock.seconds_of_ns (Clock.elapsed_ns t0))

let () =
  let rng = Rng.create 20120402 in
  let g = Gen.preferential_attachment rng ~nodes:6000 ~mean_out_degree:2 in
  let truth = Generator.retweet_ground_truth rng g in
  Printf.printf "ingest bench: %d nodes, %d edges, %d events (quick=%b)\n%!"
    (Digraph.n_nodes g) (Digraph.n_edges g) n_events quick;

  let events =
    List.init n_events (fun _ ->
        let src = Rng.int rng (Digraph.n_nodes g) in
        Event.of_attributed g (Cascade.run rng truth ~sources:[ src ]))
  in
  let lines = List.map Event.to_line events in
  let prior = Beta_icm.uninformed g in

  (* the binary twin of the log, segments on disk as in production *)
  let log = Filename.temp_file "iflow_ingest_bench" ".ibl" in
  let cleanup () =
    let rec rm k =
      let p = Binlog.segment_path log k in
      if Sys.file_exists p then begin
        Sys.remove p;
        rm (k + 1)
      end
    in
    rm 0
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let bytes_jsonl =
    List.fold_left (fun a l -> a + String.length l + 1) 0 lines
  in
  let w = Binlog.Writer.create log in
  let (), convert_dt =
    timed (fun () -> List.iter (Binlog.Writer.append w) events)
  in
  Binlog.Writer.close w;
  let bytes_bin =
    let rec total k acc =
      let p = Binlog.segment_path log k in
      if Sys.file_exists p then
        total (k + 1) (acc + (Unix.stat p).Unix.st_size)
      else acc
    in
    total 0 0
  in
  Printf.printf
    "  log size:        %10d bytes jsonl, %d bytes binary (%.1fx); encoded \
     in %.2f s\n\
     %!"
    bytes_jsonl bytes_bin
    (float_of_int bytes_jsonl /. float_of_int bytes_bin)
    convert_dt;

  (* 1. the JSONL baseline *)
  let jsonl_rate, jsonl_digest =
    let online = Online.create prior in
    let (), dt =
      timed (fun () ->
          List.iter (fun line -> ignore (Online.apply_line online line)) lines)
    in
    (float_of_int n_events /. dt, Beta_icm.digest (Online.model online))
  in
  Printf.printf "  jsonl:           %10.0f events/s\n%!" jsonl_rate;

  (* 2. binary at 1/2/4 shards — digest must equal the jsonl path's *)
  let bin_rate shards =
    let sharded = Sharded.create ~shards prior in
    Fun.protect
      ~finally:(fun () -> Sharded.close sharded)
      (fun () ->
        let reader = Binlog.Reader.open_ log in
        let batch = Binlog.Batch.create () in
        let (), dt =
          timed (fun () ->
              let line = ref 0 in
              while Binlog.Reader.read_batch reader batch ~max:read_batch_frames
              do
                ignore
                  (Sharded.apply_batch sharded batch ~first_line:(!line + 1));
                line := !line + Binlog.Batch.length batch
              done)
        in
        let digest = Beta_icm.digest (Sharded.model sharded) in
        if digest <> jsonl_digest then begin
          Printf.eprintf "FATAL: binary digest %s <> jsonl digest %s\n%!"
            digest jsonl_digest;
          exit 1
        end;
        float_of_int n_events /. dt)
  in
  let rates =
    List.map
      (fun shards ->
        let r = bin_rate shards in
        Printf.printf "  bin @ %d shard%s:  %10.0f events/s (%.1fx jsonl)\n%!"
          shards
          (if shards = 1 then " " else "s")
          r (r /. jsonl_rate);
        (shards, r))
      [ 1; 2; 4 ]
  in

  (* 3. end to end: publish cadence included *)
  let runner_rate =
    let sharded = Sharded.create ~shards:4 prior in
    Fun.protect
      ~finally:(fun () -> Sharded.close sharded)
      (fun () ->
        let snapshot = Snapshot.create prior in
        let report, dt =
          timed (fun () ->
              Runner.run_binlog
                { Runner.batch = 500; checkpoint_every = None }
                sharded snapshot
                (Binlog.Reader.open_ log))
        in
        ignore report;
        float_of_int n_events /. dt)
  in
  Printf.printf "  runner @ 4:      %10.0f events/s\n%!" runner_rate;

  let rate_of shards = List.assoc shards rates in
  let best = List.fold_left (fun a (_, r) -> Float.max a r) 0.0 rates in
  (* the committed BENCH_PR3 full-run baseline this PR is measured
     against (ingest_events_per_sec on the same substrate and seed) *)
  let pr3_baseline = 9997.0 in
  Printf.printf "  speedup:         %10.1fx vs jsonl here, %.1fx vs BENCH_PR3\n%!"
    (best /. jsonl_rate) (best /. pr3_baseline);

  let json =
    Printf.sprintf
      "{\n\
      \  \"bench\": \"binary_ingest\",\n\
      \  \"pr\": 7,\n\
      \  \"graph\": {\"nodes\": %d, \"edges\": %d, \"generator\": \
       \"preferential_attachment\", \"seed\": 20120402},\n\
      \  \"quick\": %b,\n\
      \  \"events\": %d,\n\
      \  \"bytes_jsonl\": %d,\n\
      \  \"bytes_binary\": %d,\n\
      \  \"baseline_pr3_events_per_sec\": %.0f,\n\
      \  \"measured\": {\n\
      \    \"jsonl_events_per_sec\": %.0f,\n\
      \    \"bin_1_shard_events_per_sec\": %.0f,\n\
      \    \"bin_2_shards_events_per_sec\": %.0f,\n\
      \    \"bin_4_shards_events_per_sec\": %.0f,\n\
      \    \"runner_bin_4_shards_events_per_sec\": %.0f,\n\
      \    \"speedup_vs_jsonl_here\": %.1f,\n\
      \    \"speedup_vs_pr3_baseline\": %.1f,\n\
      \    \"digests_bit_identical\": true\n\
      \  }\n\
       }\n"
      (Digraph.n_nodes g) (Digraph.n_edges g) quick n_events bytes_jsonl
      bytes_bin pr3_baseline jsonl_rate (rate_of 1) (rate_of 2) (rate_of 4)
      runner_rate (best /. jsonl_rate) (best /. pr3_baseline)
  in
  let oc = open_out "BENCH_PR7.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_PR7.json\n%!"
