module Digraph = Iflow_graph.Digraph
module Beta_icm = Iflow_core.Beta_icm
module Beta = Iflow_stats.Dist.Beta
module Metrics = Iflow_obs.Metrics

(* Registered under the same names as Online's counters — registration
   is idempotent by (name, labels), so both paths feed one series. *)
let m_applied =
  Metrics.counter ~help:"Evidence events applied to the online model"
    "iflow_stream_events_applied_total"

let m_observations =
  Metrics.counter ~help:"Per-edge Bernoulli trials absorbed"
    "iflow_stream_observations_total"

let m_graph_changes =
  Metrics.counter ~help:"Graph-change events applied"
    "iflow_stream_graph_changes_total"

let quarantined_counter reason =
  Metrics.counter ~labels:[ ("reason", reason) ]
    ~help:"Events quarantined instead of applied"
    "iflow_stream_quarantined_total"

let m_quar_inconsistent = quarantined_counter "inconsistent"
let m_quar_unknown = quarantined_counter "unknown_ref"
let m_quar_bad_crc = quarantined_counter (Binlog.reason_label Binlog.Bad_crc)
let m_quar_truncated = quarantined_counter (Binlog.reason_label Binlog.Truncated)

let m_quar_bad_varint =
  quarantined_counter (Binlog.reason_label Binlog.Bad_varint)

let m_quar_unknown_tag =
  quarantined_counter (Binlog.reason_label Binlog.Unknown_tag)

(* ----- workers ----- *)

(* Per-shard scratch. All arrays are sized to the graph and epoch
   stamped ([stamp.(v) = epoch] means marked for the current event;
   resetting is one integer increment), so steady-state decode
   allocates nothing — the reach-workspace discipline. *)
type worker = {
  id : int;
  cur : Binlog.Cursor.t;
  mutable node_stamp : int array; (* n: active this event *)
  mutable src_stamp : int array; (* n: a source this event *)
  mutable time_stamp : int array; (* n: has an activation time *)
  mutable time_val : int array; (* n: the time, valid when stamped *)
  mutable edge_stamp : int array; (* m: traversed this event *)
  mutable node_list : int array; (* n: actives in mark order *)
  mutable nnodes : int;
  mutable edge_list : int array; (* m: traversed edges, first-marked order *)
  mutable nedges : int;
  mutable epoch : int;
  (* packed observations: (edge lsl 1) lor fired, in event order *)
  mutable obs : int array;
  mutable obs_n : int;
  (* closure scratch (the closures below are allocated once per graph) *)
  mutable found : bool;
  mutable cmp_t : int;
  mutable emit_attr : int -> unit;
  mutable emit_trace : int -> unit;
  mutable check_in : int -> unit;
  mutable check_parent : int -> unit;
  (* phase assignments *)
  mutable a_lo : int;
  mutable a_hi : int;
  mutable e_lo : int;
  mutable e_hi : int;
  (* per-batch tallies, merged by the coordinator *)
  mutable applied : int;
  mutable parse_errors : int;
  mutable inconsistent : int;
  mutable unknown_refs : int;
  mutable n_bad_crc : int;
  mutable n_truncated : int;
  mutable n_bad_varint : int;
  mutable n_unknown_tag : int;
  mutable quarantines : (int * string) list; (* frame index, reason *)
  mutable failure : exn option;
}

let make_worker id =
  {
    id;
    cur = Binlog.Cursor.create ();
    node_stamp = [||];
    src_stamp = [||];
    time_stamp = [||];
    time_val = [||];
    edge_stamp = [||];
    node_list = [||];
    nnodes = 0;
    edge_list = [||];
    nedges = 0;
    epoch = 0;
    obs = [||];
    obs_n = 0;
    found = false;
    cmp_t = 0;
    emit_attr = ignore;
    emit_trace = ignore;
    check_in = ignore;
    check_parent = ignore;
    a_lo = 0;
    a_hi = 0;
    e_lo = 0;
    e_hi = 0;
    applied = 0;
    parse_errors = 0;
    inconsistent = 0;
    unknown_refs = 0;
    n_bad_crc = 0;
    n_truncated = 0;
    n_bad_varint = 0;
    n_unknown_tag = 0;
    quarantines = [];
    failure = None;
  }

let push_obs w x =
  if w.obs_n >= Array.length w.obs then begin
    let ncap = max 1024 (2 * Array.length w.obs) in
    let na = Array.make ncap 0 in
    Array.blit w.obs 0 na 0 w.obs_n;
    w.obs <- na
  end;
  Array.unsafe_set w.obs w.obs_n x;
  w.obs_n <- w.obs_n + 1

(* ----- the shared accumulator ----- *)

(* Phase barrier for the persistent worker domains: the coordinator
   publishes a job under the mutex and broadcasts; workers run it once
   (sequence-numbered) and count themselves back in. Spawning domains
   per batch would cost more than a small batch's decode, hence the
   pool lives as long as the ingest run. *)
type pool = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable seq : int;
  mutable job : int -> unit;
  mutable pending : int;
  mutable quit : bool;
  mutable domains : unit Domain.t array;
}

type t = {
  mutable graph : Digraph.t;
  mutable alpha : float array;
  mutable beta : float array;
  mutable observed : int;
  forget : float;
  nshards : int;
  workers : worker array;
  mutable pool : pool option;
  mutable applied : int;
  mutable graph_changes : int;
  mutable parse_errors : int;
  mutable inconsistent : int;
  mutable unknown_refs : int;
  mutable closed : bool;
}

let set_closures t w =
  let g = t.graph in
  w.emit_attr <-
    (fun e ->
      push_obs w
        ((e lsl 1)
        lor if Array.unsafe_get w.edge_stamp e = w.epoch then 1 else 0));
  w.emit_trace <-
    (fun e ->
      let dv = Digraph.edge_dst g e in
      let tv =
        if Array.unsafe_get w.time_stamp dv = w.epoch then
          Array.unsafe_get w.time_val dv
        else -1
      in
      if tv = w.cmp_t + 1 then push_obs w ((e lsl 1) lor 1)
      else if tv < 0 || tv > w.cmp_t + 1 then push_obs w (e lsl 1));
  w.check_in <-
    (fun e ->
      if Array.unsafe_get w.edge_stamp e = w.epoch then w.found <- true);
  w.check_parent <-
    (fun e ->
      let u = Digraph.edge_src g e in
      let tu =
        if Array.unsafe_get w.time_stamp u = w.epoch then
          Array.unsafe_get w.time_val u
        else -1
      in
      if tu >= 0 && tu < w.cmp_t then w.found <- true)

let rebuild_workspaces t =
  let n = Digraph.n_nodes t.graph and m = Digraph.n_edges t.graph in
  let ns = t.nshards in
  Array.iteri
    (fun k w ->
      w.node_stamp <- Array.make n 0;
      w.src_stamp <- Array.make n 0;
      w.time_stamp <- Array.make n 0;
      w.time_val <- Array.make n 0;
      w.edge_stamp <- Array.make m 0;
      w.node_list <- Array.make n 0;
      w.edge_list <- Array.make m 0;
      w.nnodes <- 0;
      w.nedges <- 0;
      w.epoch <- 0;
      w.e_lo <- k * m / ns;
      w.e_hi <- (k + 1) * m / ns;
      set_closures t w)
    t.workers

let worker_loop t p id =
  let seen = ref 0 in
  let live = ref true in
  while !live do
    Mutex.lock p.mutex;
    while p.seq = !seen && not p.quit do
      Condition.wait p.cond p.mutex
    done;
    if p.quit then begin
      live := false;
      Mutex.unlock p.mutex
    end
    else begin
      seen := p.seq;
      let job = p.job in
      Mutex.unlock p.mutex;
      (try job id with e -> t.workers.(id).failure <- Some e);
      Mutex.lock p.mutex;
      p.pending <- p.pending - 1;
      if p.pending = 0 then Condition.broadcast p.cond;
      Mutex.unlock p.mutex
    end
  done

let create ?(shards = 1) ?(forget = 0.0) model =
  if shards < 1 then invalid_arg "Sharded.create: shards must be >= 1";
  if not (forget >= 0.0 && forget < 1.0) then
    invalid_arg "Sharded.create: forget outside [0, 1)";
  let m = Beta_icm.n_edges model in
  let t =
    {
      graph = Beta_icm.graph model;
      alpha =
        Array.init m (fun e -> (Beta_icm.edge_beta model e).Beta.alpha);
      beta = Array.init m (fun e -> (Beta_icm.edge_beta model e).Beta.beta);
      observed = 0;
      forget;
      nshards = shards;
      workers = Array.init shards make_worker;
      pool = None;
      applied = 0;
      graph_changes = 0;
      parse_errors = 0;
      inconsistent = 0;
      unknown_refs = 0;
      closed = false;
    }
  in
  rebuild_workspaces t;
  if shards > 1 then begin
    let p =
      {
        mutex = Mutex.create ();
        cond = Condition.create ();
        seq = 0;
        job = ignore;
        pending = 0;
        quit = false;
        domains = [||];
      }
    in
    t.pool <- Some p;
    p.domains <-
      Array.init (shards - 1) (fun k ->
          Domain.spawn (fun () -> worker_loop t p (k + 1)))
  end;
  t

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.pool with
    | None -> ()
    | Some p ->
      Mutex.lock p.mutex;
      p.quit <- true;
      Condition.broadcast p.cond;
      Mutex.unlock p.mutex;
      Array.iter Domain.join p.domains;
      t.pool <- None
  end

let shards t = t.nshards
let graph t = t.graph

let run_phase t job =
  match t.pool with
  | None -> job 0
  | Some p ->
    Mutex.lock p.mutex;
    p.job <- job;
    p.seq <- p.seq + 1;
    p.pending <- t.nshards - 1;
    Condition.broadcast p.cond;
    Mutex.unlock p.mutex;
    (* the coordinating domain is worker 0; defer its failure until the
       barrier is down so the pool is never left mid-phase *)
    let main_exn = (match job 0 with () -> None | exception e -> Some e) in
    Mutex.lock p.mutex;
    while p.pending > 0 do
      Condition.wait p.cond p.mutex
    done;
    Mutex.unlock p.mutex;
    (match main_exn with Some e -> raise e | None -> ());
    Array.iter
      (fun w ->
        match w.failure with
        | Some e ->
          w.failure <- None;
          raise e
        | None -> ())
      t.workers

(* ----- phase A: decode + validate one chunk ----- *)

let mark_node w v =
  if Array.unsafe_get w.node_stamp v <> w.epoch then begin
    Array.unsafe_set w.node_stamp v w.epoch;
    Array.unsafe_set w.node_list w.nnodes v;
    w.nnodes <- w.nnodes + 1
  end

let guard_list c k ~bytes_per_item =
  if k * bytes_per_item > Binlog.Cursor.remaining c then
    raise (Binlog.Malformed (Binlog.Truncated, "list length exceeds the payload"))

let check_trailing c =
  if not (Binlog.Cursor.at_end c) then
    raise
      (Binlog.Malformed (Binlog.Bad_varint, "trailing bytes after the event body"))

(* Mirrors Online.apply_attributed byte for byte on the model: same
   check order (format > node range > unknown edge > consistency), same
   reasons, same observation set. The payload is walked to the end
   before classifying, so damage anywhere in the record wins over
   semantics — exactly as a JSONL parse error precedes all semantic
   checks. *)
let decode_attributed t w batch i =
  let g = t.graph in
  let n = Digraph.n_nodes g in
  let c = w.cur in
  let off = Binlog.frame_off batch i in
  Binlog.Cursor.set c (Binlog.frame_bytes batch i) ~pos:(off + 1)
    ~limit:(off + Binlog.frame_len batch i);
  w.epoch <- w.epoch + 1;
  w.nnodes <- 0;
  w.nedges <- 0;
  let ep = w.epoch in
  let bad_range = ref false in
  let unknown = ref None in
  let nsrc = Binlog.Cursor.varint c in
  guard_list c nsrc ~bytes_per_item:1;
  for _ = 1 to nsrc do
    let v = Binlog.Cursor.varint c in
    if v >= n then bad_range := true
    else begin
      Array.unsafe_set w.src_stamp v ep;
      mark_node w v
    end
  done;
  let nnode = Binlog.Cursor.varint c in
  guard_list c nnode ~bytes_per_item:1;
  for _ = 1 to nnode do
    let v = Binlog.Cursor.varint c in
    if v >= n then bad_range := true else mark_node w v
  done;
  let nedge = Binlog.Cursor.varint c in
  guard_list c nedge ~bytes_per_item:2;
  for _ = 1 to nedge do
    let s = Binlog.Cursor.varint c in
    let d = Binlog.Cursor.varint c in
    if s >= n || d >= n then begin
      if !unknown = None then unknown := Some (s, d)
    end
    else
      match Digraph.find_edge g ~src:s ~dst:d with
      | Some e ->
        if Array.unsafe_get w.edge_stamp e <> ep then begin
          Array.unsafe_set w.edge_stamp e ep;
          Array.unsafe_set w.edge_list w.nedges e;
          w.nedges <- w.nedges + 1
        end
      | None -> if !unknown = None then unknown := Some (s, d)
  done;
  check_trailing c;
  if !bad_range then `Quarantined (`Unknown, "attributed: node id out of range")
  else
    match !unknown with
    | Some (s, d) ->
      `Quarantined
        (`Unknown, Printf.sprintf "attributed: unknown edge (%d, %d)" s d)
    | None ->
      let ok = ref true in
      for j = 0 to w.nedges - 1 do
        let e = Array.unsafe_get w.edge_list j in
        if
          Array.unsafe_get w.node_stamp (Digraph.edge_src g e) <> ep
          || Array.unsafe_get w.node_stamp (Digraph.edge_dst g e) <> ep
        then ok := false
      done;
      if !ok then begin
        let j = ref 0 in
        while !ok && !j < w.nnodes do
          let v = Array.unsafe_get w.node_list !j in
          if Array.unsafe_get w.src_stamp v <> ep then begin
            w.found <- false;
            Digraph.iter_in g v w.check_in;
            if not w.found then ok := false
          end;
          incr j
        done
      end;
      if not !ok then `Quarantined (`Inconsistent, "attributed: inconsistent object")
      else begin
        for j = 0 to w.nnodes - 1 do
          Digraph.iter_out g (Array.unsafe_get w.node_list j) w.emit_attr
        done;
        `Applied
      end

(* Mirrors Online.apply_trace / Evidence.trace_of_active /
   trace_is_consistent: times entries overwrite in list order, sources
   override to time 0 afterwards, every non-source active needs an
   in-neighbour strictly earlier, and the counting rule is
   success at t+1 / failure when provably missed. *)
let decode_trace t w batch i =
  let g = t.graph in
  let n = Digraph.n_nodes g in
  let c = w.cur in
  let off = Binlog.frame_off batch i in
  Binlog.Cursor.set c (Binlog.frame_bytes batch i) ~pos:(off + 1)
    ~limit:(off + Binlog.frame_len batch i);
  w.epoch <- w.epoch + 1;
  w.nnodes <- 0;
  let ep = w.epoch in
  let bad_range = ref false in
  let nsrc = Binlog.Cursor.varint c in
  guard_list c nsrc ~bytes_per_item:1;
  for _ = 1 to nsrc do
    let v = Binlog.Cursor.varint c in
    if v >= n then bad_range := true
    else begin
      Array.unsafe_set w.src_stamp v ep;
      mark_node w v
    end
  done;
  let nt = Binlog.Cursor.varint c in
  guard_list c nt ~bytes_per_item:2;
  for _ = 1 to nt do
    let v = Binlog.Cursor.varint c in
    let tm = Binlog.Cursor.varint c in
    if v >= n then bad_range := true
    else begin
      Array.unsafe_set w.time_val v tm;
      Array.unsafe_set w.time_stamp v ep;
      mark_node w v
    end
  done;
  check_trailing c;
  if !bad_range then
    `Quarantined (`Unknown, "trace: node id or time out of range")
  else begin
    (* sources activate at time 0, overriding any listed time *)
    for j = 0 to w.nnodes - 1 do
      let v = Array.unsafe_get w.node_list j in
      if Array.unsafe_get w.src_stamp v = ep then begin
        Array.unsafe_set w.time_val v 0;
        Array.unsafe_set w.time_stamp v ep
      end
    done;
    let ok = ref true in
    let j = ref 0 in
    while !ok && !j < w.nnodes do
      let v = Array.unsafe_get w.node_list !j in
      if Array.unsafe_get w.src_stamp v <> ep then begin
        w.cmp_t <- Array.unsafe_get w.time_val v;
        w.found <- false;
        Digraph.iter_in g v w.check_parent;
        if not w.found then ok := false
      end;
      incr j
    done;
    if not !ok then
      `Quarantined (`Inconsistent, "trace: inconsistent activation times")
    else begin
      for j = 0 to w.nnodes - 1 do
        let u = Array.unsafe_get w.node_list j in
        w.cmp_t <- Array.unsafe_get w.time_val u;
        Digraph.iter_out g u w.emit_trace
      done;
      `Applied
    end
  end

let quarantine_bin (w : worker) i (e : Binlog.error) =
  w.parse_errors <- w.parse_errors + 1;
  (match e.Binlog.reason with
  | Binlog.Bad_crc -> w.n_bad_crc <- w.n_bad_crc + 1
  | Binlog.Truncated -> w.n_truncated <- w.n_truncated + 1
  | Binlog.Bad_varint -> w.n_bad_varint <- w.n_bad_varint + 1
  | Binlog.Unknown_tag -> w.n_unknown_tag <- w.n_unknown_tag + 1);
  w.quarantines <- (i, Binlog.error_message e) :: w.quarantines

let decode_chunk t batch w =
  for i = w.a_lo to w.a_hi - 1 do
    if Binlog.frame_len batch i < 0 then (
      match Binlog.frame_error batch i with
      | Some e -> quarantine_bin w i e
      | None -> assert false)
    else if not (Binlog.check_crc batch i) then
      quarantine_bin w i (Binlog.crc_error batch i)
    else begin
      let tag = Binlog.frame_tag batch i in
      match
        if tag = Binlog.tag_attributed then decode_attributed t w batch i
        else if tag = Binlog.tag_trace then decode_trace t w batch i
        else
          raise
            (Binlog.Malformed
               ( Binlog.Unknown_tag,
                 Printf.sprintf "unknown event tag %d" tag ))
      with
      | `Applied -> w.applied <- w.applied + 1
      | `Quarantined (`Unknown, reason) ->
        w.unknown_refs <- w.unknown_refs + 1;
        w.quarantines <- (i, reason) :: w.quarantines
      | `Quarantined (`Inconsistent, reason) ->
        w.inconsistent <- w.inconsistent + 1;
        w.quarantines <- (i, reason) :: w.quarantines
      | exception Binlog.Malformed (reason, detail) ->
        quarantine_bin w i
          {
            Binlog.segment = Binlog.frame_segment batch i;
            offset = Binlog.frame_offset batch i;
            reason;
            detail;
          }
    end
  done

(* ----- phase B: apply one edge range over all chunks ----- *)

let apply_range t w =
  let lo = w.e_lo and hi = w.e_hi in
  let alpha = t.alpha and beta = t.beta in
  let workers = t.workers in
  for c = 0 to Array.length workers - 1 do
    let wc = workers.(c) in
    let obs = wc.obs in
    for j = 0 to wc.obs_n - 1 do
      let x = Array.unsafe_get obs j in
      let e = x lsr 1 in
      if e >= lo && e < hi then
        if x land 1 = 1 then
          Array.unsafe_set alpha e (Array.unsafe_get alpha e +. 1.0)
        else Array.unsafe_set beta e (Array.unsafe_get beta e +. 1.0)
    done
  done

(* ----- coordination ----- *)

let reset_worker_outputs w =
  w.obs_n <- 0;
  w.applied <- 0;
  w.parse_errors <- 0;
  w.inconsistent <- 0;
  w.unknown_refs <- 0;
  w.n_bad_crc <- 0;
  w.n_truncated <- 0;
  w.n_bad_varint <- 0;
  w.n_unknown_tag <- 0;
  w.quarantines <- []

let process_evidence t batch lo hi ~on_quarantine ~first_line =
  let cnt = hi - lo in
  let ns = t.nshards in
  let per = cnt / ns and rem = cnt mod ns in
  let start = ref lo in
  Array.iteri
    (fun k w ->
      reset_worker_outputs w;
      let sz = per + if k < rem then 1 else 0 in
      w.a_lo <- !start;
      w.a_hi <- !start + sz;
      start := !start + sz)
    t.workers;
  run_phase t (fun k -> decode_chunk t batch t.workers.(k));
  run_phase t (fun k -> apply_range t t.workers.(k));
  Array.iter
    (fun (w : worker) ->
      t.applied <- t.applied + w.applied;
      t.observed <- t.observed + w.obs_n;
      t.parse_errors <- t.parse_errors + w.parse_errors;
      t.inconsistent <- t.inconsistent + w.inconsistent;
      t.unknown_refs <- t.unknown_refs + w.unknown_refs;
      Metrics.add m_applied w.applied;
      Metrics.add m_observations w.obs_n;
      Metrics.add m_quar_inconsistent w.inconsistent;
      Metrics.add m_quar_unknown w.unknown_refs;
      Metrics.add m_quar_bad_crc w.n_bad_crc;
      Metrics.add m_quar_truncated w.n_truncated;
      Metrics.add m_quar_bad_varint w.n_bad_varint;
      Metrics.add m_quar_unknown_tag w.n_unknown_tag;
      match on_quarantine with
      | Some f ->
        List.iter
          (fun (i, reason) -> f ~line:(first_line + i) ~reason)
          (List.rev w.quarantines)
      | None -> ())
    t.workers

let freeze t =
  Beta_icm.create t.graph
    (Array.init (Array.length t.alpha) (fun e ->
         Beta.v t.alpha.(e) t.beta.(e)))

let reload t model =
  t.graph <- Beta_icm.graph model;
  let m = Beta_icm.n_edges model in
  t.alpha <- Array.init m (fun e -> (Beta_icm.edge_beta model e).Beta.alpha);
  t.beta <- Array.init m (fun e -> (Beta_icm.edge_beta model e).Beta.beta);
  rebuild_workspaces t

let process_graph t batch i ~on_quarantine ~first_line =
  let outcome =
    match Binlog.decode_frame batch i with
    | Error e ->
      t.parse_errors <- t.parse_errors + 1;
      (match e.Binlog.reason with
      | Binlog.Bad_crc -> Metrics.inc m_quar_bad_crc
      | Binlog.Truncated -> Metrics.inc m_quar_truncated
      | Binlog.Bad_varint -> Metrics.inc m_quar_bad_varint
      | Binlog.Unknown_tag -> Metrics.inc m_quar_unknown_tag);
      Some (Binlog.error_message e)
    | Ok ev -> (
      let what, change =
        match ev with
        | Event.Add_nodes { count } ->
          ( "add_nodes",
            fun m -> Beta_icm.grow m ~new_nodes:count ~new_edges:[] )
        | Event.Add_edges { edges; prior } ->
          ( "add_edges",
            fun m ->
              Beta_icm.grow m ~new_nodes:0
                ~new_edges:(List.map (fun (s, d) -> (s, d, prior)) edges) )
        | Event.Remove_edges { edges } ->
          ("remove_edges", fun m -> Beta_icm.remove_edges m edges)
        | Event.Attributed _ | Event.Trace _ -> assert false
      in
      match change (freeze t) with
      | model ->
        reload t model;
        t.applied <- t.applied + 1;
        t.graph_changes <- t.graph_changes + 1;
        Metrics.inc m_applied;
        Metrics.inc m_graph_changes;
        None
      | exception Invalid_argument msg ->
        t.unknown_refs <- t.unknown_refs + 1;
        Metrics.inc m_quar_unknown;
        Some (Printf.sprintf "%s: %s" what msg))
  in
  match (outcome, on_quarantine) with
  | Some reason, Some f -> f ~line:(first_line + i) ~reason
  | _ -> ()

let is_graph_frame batch j =
  Binlog.frame_len batch j >= 1
  && Binlog.is_graph_change_tag (Binlog.frame_tag batch j)

let apply_batch ?on_quarantine t batch ~first_line =
  if t.closed then invalid_arg "Sharded.apply_batch: closed";
  let nb = Binlog.Batch.length batch in
  let applied0 = t.applied in
  let i = ref 0 in
  while !i < nb do
    (* graph changes are barriers: evidence runs go through the two
       parallel phases, the change itself is applied sequentially and
       re-partitions the edge ranges *)
    let j = ref !i in
    while !j < nb && not (is_graph_frame batch !j) do
      incr j
    done;
    if !j > !i then process_evidence t batch !i !j ~on_quarantine ~first_line;
    if !j < nb then begin
      process_graph t batch !j ~on_quarantine ~first_line;
      incr j
    end;
    i := !j
  done;
  t.applied - applied0

let model t = freeze t

let decay t =
  if t.forget > 0.0 then begin
    let keep = 1.0 -. t.forget in
    for e = 0 to Array.length t.alpha - 1 do
      t.alpha.(e) <- keep *. t.alpha.(e);
      t.beta.(e) <- keep *. t.beta.(e)
    done
  end

let stats t : Online.stats =
  {
    Online.applied = t.applied;
    observations = t.observed;
    graph_changes = t.graph_changes;
    parse_errors = t.parse_errors;
    inconsistent = t.inconsistent;
    unknown_refs = t.unknown_refs;
  }
