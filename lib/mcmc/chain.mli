(** The paper's Metropolis-Hastings sampler over pseudo-states
    (Section III, Algorithm 1).

    The proposal flips exactly one edge, drawn from a multinomial whose
    weight for edge [e] is the probability of the activity it would have
    {i after} the flip — [p_e] when currently inactive, [1 - p_e] when
    active. The weights live in a Fenwick tree, so drawing the proposal
    and maintaining its normaliser [Z] take O(log m) per step. With this
    proposal the acceptance probability collapses to

      [A(x, x') = I(x', C) * min (Z / Z', 1)]

    where [Z'] differs from [Z] only by the flipped edge's weight. *)

type t

val create :
  ?conditions:Conditions.t ->
  ?init:Iflow_core.Pseudo_state.t ->
  Iflow_stats.Rng.t -> Iflow_core.Icm.t -> t
(** Fresh chain. Without [init], the initial state is drawn from the
    marginal (or repaired to satisfy [conditions]). Raises [Failure]
    when no state satisfying the conditions could be constructed, and
    [Invalid_argument] when [init] itself violates them or has zero
    probability. *)

val icm : t -> Iflow_core.Icm.t
val conditions : t -> Conditions.t

val state : t -> Iflow_core.Pseudo_state.t
(** The live current state — not a copy; do not mutate (the chain's
    incremental reachability caches assume every edit goes through
    {!step}). *)

val workspace : t -> Iflow_graph.Reach.workspace
(** The chain's BFS workspace. Estimators reuse it for reachability
    sweeps over retained samples, so a whole chain — stepping and
    querying — runs on one preallocated scratch area. Single-domain,
    like the chain itself. *)

val step : Iflow_stats.Rng.t -> t -> unit
(** One Metropolis-Hastings transition (propose, accept or reject). *)

val advance : Iflow_stats.Rng.t -> t -> int -> unit
(** [advance rng t k] performs [k] steps — used for burn-in and
    thinning. *)

val steps_taken : t -> int
val acceptance_rate : t -> float

val cache_stats : t -> Iflow_graph.Reach.Cache.stats
(** Update-rule tallies summed over the chain's per-source reachability
    caches (all zero for an unconditioned chain). *)

val normaliser : t -> float
(** Current proposal normaliser Z (exposed for tests of the O(log m)
    bookkeeping). *)
