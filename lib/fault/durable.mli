(** Crash-safe file replacement and checkpoint rotation.

    {!write_atomic} guarantees a reader sees either the previous file
    or the complete new one — never a torn mixture — by writing to a
    sibling [.tmp], fsyncing, renaming over the destination and
    fsyncing the directory. SIGKILL at any instant leaves at worst a
    stale [.tmp] beside an intact previous generation.

    Failpoints [<prefix>.write], [<prefix>.fsync] and [<prefix>.rename]
    are planted at each stage (prefix [durable] by default), so chaos
    tests can tear a write at any phase. *)

val write_atomic :
  ?failpoint_prefix:string -> ?fsync:bool -> string ->
  (out_channel -> unit) -> unit
(** [write_atomic path content] replaces [path] atomically with
    whatever [content] writes. [fsync:false] skips both syncs (benches;
    crash-durability is then the OS's problem). On any failure the
    temporary is removed and the previous [path] is left untouched. *)

val tmp_of : string -> string
(** The sibling temporary used by {!write_atomic} ([path ^ ".tmp"]). *)

val rotated : string -> int -> string
(** Generation [n] of a rotated set: [rotated p 0 = p], then [p.1],
    [p.2], ... — generation 1 is the newest predecessor. *)

val rotate : string -> keep:int -> unit
(** Shift the rotated set down one generation so [path] is free for the
    next {!write_atomic}: [p.(keep-2)] → [p.(keep-1)], ..., [p] →
    [p.1]. With [keep = 1] nothing is kept and this is a no-op (the
    next write simply replaces [path]). Raises [Invalid_argument] when
    [keep < 1]. *)

val generations : string -> limit:int -> string list
(** Existing files of the rotated set, newest first, stopping at the
    first gap (generation 0 excepted — a crash can leave older
    generations behind a missing current) or at [limit]. *)
