lib/exp/ablations.mli: Format Iflow_stats Scale
