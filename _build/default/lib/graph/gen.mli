(** Random graph generators for synthetic experiments. *)

val gnm : Iflow_stats.Rng.t -> nodes:int -> edges:int -> Digraph.t
(** Uniform directed G(n, m): [edges] distinct ordered pairs without
    self loops — the topology behind the paper's synthetic betaICMs
    (e.g. 50 nodes, 200 edges). Raises [Invalid_argument] when
    [edges > nodes * (nodes - 1)]. *)

val preferential_attachment :
  Iflow_stats.Rng.t -> nodes:int -> mean_out_degree:int -> Digraph.t
(** Scale-free "follower"-style digraph: nodes arrive in sequence and
    each attaches edges from earlier nodes chosen with probability
    proportional to (1 + out-degree), giving the heavy-tailed audience
    sizes typical of Twitter. Edge direction is the direction of
    information flow: an edge u -> v means v sees (and may forward)
    u's posts, i.e. v follows u. *)

val star : centre_to_leaves:bool -> leaves:int -> Digraph.t
(** Node 0 plus [leaves] leaf nodes; edges point away from or into the
    centre. Handy for unattributed-learning tests (an in-star is the
    paper's per-sink model fragment). *)

val path : int -> Digraph.t
(** Directed path 0 -> 1 -> ... -> n-1. *)

val complete : int -> Digraph.t
(** All ordered pairs — worst case for the exact evaluator. *)
