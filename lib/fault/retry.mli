(** Bounded retries with exponential backoff, decorrelating jitter and
    an optional total-delay budget — the supervision primitive wrapped
    around checkpoint writes and ingest-source reads.

    The jitter stream is deterministic and private to this module, so
    retrying never perturbs the simulation RNGs: model results stay
    bit-for-bit identical whether or not a transient fault was ridden
    out along the way. *)

type policy = {
  max_attempts : int;   (** total attempts, including the first *)
  base_delay : float;   (** seconds before the first re-attempt *)
  multiplier : float;   (** geometric backoff factor, >= 1 *)
  jitter : float;       (** +/- fraction of each delay, in [0, 1] *)
  max_delay : float;    (** per-sleep cap, seconds *)
  budget : float option;
      (** cap on the {e sum} of sleeps; a re-attempt whose backoff
          would exceed it gives up immediately instead *)
}

val default : policy
(** 3 attempts, 10 ms base, x2 backoff, 10% jitter, 1 s cap,
    unlimited budget. *)

val no_delay : policy
(** [default] with zero delays — immediate re-attempts, for faults
    where backing off buys nothing (and for tests). *)

val delay_for : policy -> attempt:int -> float
(** The (jittered) sleep after failed attempt [attempt] (1-based). *)

val with_policy :
  ?retryable:(exn -> bool) ->
  ?on_retry:(attempt:int -> delay:float -> exn -> unit) ->
  ?sleep:(float -> unit) ->
  policy -> (unit -> 'a) -> 'a
(** [with_policy policy f] runs [f], re-attempting on exceptions that
    satisfy [retryable] (default: all) until one attempt succeeds, the
    attempts are exhausted, or the delay budget is spent — then the
    last exception is re-raised. [on_retry] observes each re-attempt;
    [sleep] defaults to [Unix.sleepf]. Retries and give-ups are counted
    in [iflow_fault_retries_total] / [iflow_fault_retry_giveups_total].
    Raises [Invalid_argument] on a nonsensical policy. *)
