module Digraph = Iflow_graph.Digraph
module Traverse = Iflow_graph.Traverse
module Reach = Iflow_graph.Reach
module Rng = Iflow_stats.Rng

type t = Bytes.t

let create m = Bytes.make m '\000'
let all_active m = Bytes.make m '\001'
let n_edges t = Bytes.length t
let get t e = Bytes.unsafe_get t e <> '\000'
let set t e b = Bytes.unsafe_set t e (if b then '\001' else '\000')
let flip t e = set t e (not (get t e))
let copy = Bytes.copy

let count_active t =
  let acc = ref 0 in
  for e = 0 to Bytes.length t - 1 do
    if get t e then incr acc
  done;
  !acc

let active_list t =
  let acc = ref [] in
  for e = Bytes.length t - 1 downto 0 do
    if get t e then acc := e :: !acc
  done;
  !acc

let equal = Bytes.equal

let sample rng icm =
  let m = Icm.n_edges icm in
  let t = create m in
  for e = 0 to m - 1 do
    if Rng.bernoulli rng (Icm.prob icm e) then set t e true
  done;
  t

let log_prob icm t =
  let m = Icm.n_edges icm in
  if Bytes.length t <> m then invalid_arg "Pseudo_state.log_prob: size mismatch";
  let acc = ref 0.0 in
  (try
     for e = 0 to m - 1 do
       let p = Icm.prob icm e in
       let term = if get t e then p else 1.0 -. p in
       if term <= 0.0 then begin
         acc := neg_infinity;
         raise Exit
       end;
       acc := !acc +. Float.log term
     done
   with Exit -> ());
  !acc

let reachable icm t ~sources =
  Traverse.reachable_from ~active:(get t) (Icm.graph icm) sources

let flow icm t ~src ~dst = (reachable icm t ~sources:[ src ]).(dst)

let reachable_ws ws icm t ~sources =
  Reach.bfs_sources ws ~active:(get t) (Icm.graph icm) sources

let flow_ws ws icm t ~src ~dst =
  Reach.bfs ws ~active:(get t) (Icm.graph icm) ~src;
  Reach.marked ws dst

let derive_active_edges icm t ~sources =
  let g = Icm.graph icm in
  let nodes = reachable icm t ~sources in
  Array.init (Digraph.n_edges g) (fun e ->
      get t e && nodes.(Digraph.edge_src g e))

let pp ppf t =
  Format.fprintf ppf "[";
  for e = 0 to Bytes.length t - 1 do
    Format.fprintf ppf "%c" (if get t e then '1' else '0')
  done;
  Format.fprintf ppf "]"
