(* Edge-case and validation tests across modules: the error paths a
   library user will actually hit. *)
open Iflow_core
module Digraph = Iflow_graph.Digraph
module Gen = Iflow_graph.Gen
module Rng = Iflow_stats.Rng
module Dist = Iflow_stats.Dist
module Fenwick = Iflow_stats.Fenwick
module Descriptive = Iflow_stats.Descriptive
module Measures = Iflow_stats.Measures
module Estimator = Iflow_mcmc.Estimator
module Conditions = Iflow_mcmc.Conditions
module Rwr = Iflow_rwr.Rwr
module Sgtm = Iflow_gtm.Sgtm
module Bucket = Iflow_bucket.Bucket

let invalid what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument _ -> ()

(* ---------- stats ---------- *)

let test_stats_validation () =
  let rng = Rng.create 1 in
  invalid "choose empty" (fun () -> Rng.choose rng [||]);
  invalid "gaussian std" (fun () -> Dist.gaussian rng ~mean:0.0 ~std:(-1.0));
  invalid "gamma shape" (fun () -> Dist.gamma rng ~shape:0.0 ~scale:1.0);
  invalid "binomial n" (fun () -> Dist.binomial rng ~n:(-1) ~p:0.5);
  invalid "categorical zero" (fun () -> Dist.categorical rng [| 0.0; 0.0 |]);
  invalid "beta params" (fun () -> Dist.Beta.v 0.0 1.0);
  invalid "beta interval" (fun () -> Dist.Beta.interval Dist.Beta.uniform 1.5);
  invalid "of_counts" (fun () -> Dist.Beta.of_counts ~successes:(-1) ~failures:0);
  invalid "fenwick size" (fun () -> Fenwick.create (-1));
  invalid "fenwick negative weight" (fun () ->
      Fenwick.set (Fenwick.create 3) 0 (-1.0));
  invalid "fenwick sample empty" (fun () ->
      Fenwick.sample rng (Fenwick.create 3));
  invalid "quantile q" (fun () -> Descriptive.quantile [| 1.0 |] 1.5);
  invalid "mean empty" (fun () -> Descriptive.mean [||]);
  invalid "histogram bins" (fun () ->
      Descriptive.histogram ~bins:0 [| 1.0 |]);
  invalid "measures empty" (fun () -> Measures.brier [])

let test_degenerate_beta_cdf () =
  (* extreme parameters must not produce NaN or non-monotone CDFs *)
  List.iter
    (fun (a, b) ->
      let beta = Dist.Beta.v a b in
      let prev = ref (-1.0) in
      for i = 0 to 100 do
        let x = float_of_int i /. 100.0 in
        let c = Dist.Beta.cdf beta x in
        if Float.is_nan c then Alcotest.failf "NaN cdf at %g" x;
        if c < !prev -. 1e-12 then Alcotest.failf "non-monotone at %g" x;
        prev := c
      done)
    [ (0.01, 0.01); (100.0, 1.0); (1.0, 100.0); (500.0, 500.0) ]

(* ---------- graph ---------- *)

let test_graph_edges_order_and_folds () =
  let g = Digraph.of_edges ~nodes:3 [ (0, 1); (1, 2); (0, 2) ] in
  Alcotest.(check (list (pair int int))) "edge order preserved"
    [ (0, 1); (1, 2); (0, 2) ]
    (Digraph.edges g);
  let sum = Digraph.fold_out g 0 ~init:0 ~f:(fun acc e -> acc + e) in
  Alcotest.(check int) "fold_out" 2 sum;
  let count = Digraph.fold_in g 2 ~init:0 ~f:(fun acc _ -> acc + 1) in
  Alcotest.(check int) "fold_in" 2 count

let test_empty_graph () =
  let g = Digraph.of_edges ~nodes:0 [] in
  Alcotest.(check int) "no nodes" 0 (Digraph.n_nodes g);
  let g1 = Digraph.of_edges ~nodes:1 [] in
  let marked = Iflow_graph.Traverse.reachable_from g1 [ 0 ] in
  Alcotest.(check (array bool)) "singleton" [| true |] marked

(* ---------- core ---------- *)

let test_exact_limits () =
  let rng = Rng.create 2 in
  let g = Gen.gnm rng ~nodes:5 ~edges:20 in
  let icm = Icm.create g (Array.make 20 0.5) in
  (* > 24 edges forbidden for brute force *)
  let g_big = Gen.gnm rng ~nodes:8 ~edges:30 in
  let icm_big = Icm.create g_big (Array.make 30 0.5) in
  invalid "brute force size" (fun () ->
      Exact.brute_force_flow icm_big ~src:0 ~dst:1);
  ignore (Exact.brute_force_flow icm ~src:0 ~dst:1);
  invalid "node range" (fun () -> Exact.flow_probability icm ~src:0 ~dst:99)

let test_cascade_validation () =
  let rng = Rng.create 3 in
  let icm = Icm.const (Gen.path 3) 0.5 in
  invalid "source range" (fun () -> Cascade.run rng icm ~sources:[ 7 ]);
  (* multiple sources work and all are active *)
  let o = Cascade.run rng icm ~sources:[ 0; 2 ] in
  Alcotest.(check bool) "both sources active" true
    (o.Evidence.active_nodes.(0) && o.Evidence.active_nodes.(2))

let test_isolated_sink_flow_is_zero () =
  (* a node with no in-edges can never receive flow *)
  let g = Digraph.of_edges ~nodes:3 [ (1, 0) ] in
  let icm = Icm.create g [| 1.0 |] in
  Alcotest.(check (float 0.0)) "exact zero" 0.0
    (Exact.flow_probability icm ~src:0 ~dst:2);
  let rng = Rng.create 4 in
  Alcotest.(check (float 0.0)) "sampled zero" 0.0
    (Estimator.flow_probability rng icm
       { Estimator.burn_in = 50; thin = 1; samples = 100 }
       ~src:0 ~dst:2)

let test_all_deterministic_chain () =
  (* every edge probability 0 or 1: the chain has nothing to flip and
     must still answer correctly *)
  let g = Digraph.of_edges ~nodes:3 [ (0, 1); (1, 2) ] in
  let icm = Icm.create g [| 1.0; 0.0 |] in
  let rng = Rng.create 5 in
  Alcotest.(check (float 0.0)) "certain hop" 1.0
    (Estimator.flow_probability rng icm
       { Estimator.burn_in = 20; thin = 1; samples = 50 }
       ~src:0 ~dst:1);
  Alcotest.(check (float 0.0)) "impossible hop" 0.0
    (Estimator.flow_probability rng icm
       { Estimator.burn_in = 20; thin = 1; samples = 50 }
       ~src:0 ~dst:2)

let test_estimator_config_validation () =
  let icm = Icm.const (Gen.path 2) 0.5 in
  let rng = Rng.create 6 in
  invalid "bad config" (fun () ->
      Estimator.flow_probability rng icm
        { Estimator.burn_in = -1; thin = 1; samples = 10 }
        ~src:0 ~dst:1);
  invalid "zero thin" (fun () ->
      Estimator.flow_probability rng icm
        { Estimator.burn_in = 0; thin = 0; samples = 10 }
        ~src:0 ~dst:1)

(* ---------- learners on thin evidence ---------- *)

let test_learners_on_empty_summary () =
  let s = Summary.of_table ~sink:0 [] in
  let goyal = Iflow_learn.Goyal.train s in
  Alcotest.(check int) "goyal empty" 0 (Array.length goyal.Iflow_learn.Trainer.parents);
  let saito = Iflow_learn.Saito.train s in
  Alcotest.(check int) "saito empty" 0 (Array.length saito.Iflow_learn.Trainer.parents);
  let filtered = Iflow_learn.Filtered.train s in
  Alcotest.(check int) "filtered empty" 0
    (Array.length filtered.Iflow_learn.Trainer.parents)

let test_joint_bayes_all_leaks () =
  (* every observation leaked: posterior should push towards 1 *)
  let s = Summary.of_table ~sink:1 [ ([| 0 |], 30, 30) ] in
  let est = Iflow_learn.Joint_bayes.train (Rng.create 7) s in
  Alcotest.(check bool) "near one" true (est.Iflow_learn.Trainer.mean.(0) > 0.9);
  let s = Summary.of_table ~sink:1 [ ([| 0 |], 30, 0) ] in
  let est = Iflow_learn.Joint_bayes.train (Rng.create 8) s in
  Alcotest.(check bool) "near zero" true (est.Iflow_learn.Trainer.mean.(0) < 0.1)

(* ---------- rwr / sgtm ---------- *)

let test_rwr_validation () =
  let icm = Icm.const (Gen.path 3) 0.5 in
  invalid "restart range" (fun () -> Rwr.scores ~restart:0.0 icm ~src:0);
  invalid "src range" (fun () -> Rwr.scores icm ~src:9)

let test_sgtm_validation () =
  let icm = Icm.const (Gen.path 3) 0.5 in
  let rng = Rng.create 9 in
  invalid "source range" (fun () -> Sgtm.run rng icm ~sources:[ 5 ]);
  invalid "runs" (fun () ->
      Sgtm.activation_frequency rng icm ~sources:[ 0 ] ~runs:0)

(* ---------- bucket boundaries ---------- *)

let test_bucket_boundary_estimates () =
  let p e o = { Measures.estimate = e; outcome = o } in
  let b = Bucket.run ~bins:4 ~label:"b" [ p 0.0 false; p 1.0 true; p 0.25 true ] in
  Alcotest.(check int) "first bin" 1 b.Bucket.bins.(0).Bucket.count;
  (* 0.25 is the left edge of bin 1 *)
  Alcotest.(check int) "edge lands right" 1 b.Bucket.bins.(1).Bucket.count;
  Alcotest.(check int) "one clamps into last bin" 1
    b.Bucket.bins.(3).Bucket.count

let () =
  Alcotest.run "iflow_edge_cases"
    [
      ( "stats",
        [
          Alcotest.test_case "validation" `Quick test_stats_validation;
          Alcotest.test_case "degenerate beta cdf" `Quick test_degenerate_beta_cdf;
        ] );
      ( "graph",
        [
          Alcotest.test_case "edges order and folds" `Quick test_graph_edges_order_and_folds;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
        ] );
      ( "core",
        [
          Alcotest.test_case "exact limits" `Quick test_exact_limits;
          Alcotest.test_case "cascade validation" `Quick test_cascade_validation;
          Alcotest.test_case "isolated sink" `Quick test_isolated_sink_flow_is_zero;
          Alcotest.test_case "deterministic chain" `Quick test_all_deterministic_chain;
          Alcotest.test_case "estimator config" `Quick test_estimator_config_validation;
        ] );
      ( "learn",
        [
          Alcotest.test_case "empty summary" `Quick test_learners_on_empty_summary;
          Alcotest.test_case "extreme leak rates" `Slow test_joint_bayes_all_leaks;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "rwr validation" `Quick test_rwr_validation;
          Alcotest.test_case "sgtm validation" `Quick test_sgtm_validation;
        ] );
      ( "bucket",
        [ Alcotest.test_case "boundary estimates" `Quick test_bucket_boundary_estimates ] );
    ]
