lib/twitter/tweet.ml: Format Hashtbl List Printf String
