(** Synthetic model generators matching the paper's experimental setups. *)

val beta_icm :
  Iflow_stats.Rng.t ->
  nodes:int -> edges:int ->
  a_range:float * float -> b_range:float * float ->
  Beta_icm.t
(** The paper's synthetic betaICM generator (Section IV-A): a uniform
    G(n, m) structure, each edge given Beta(a, b) with
    [a ~ U a_range], [b ~ U b_range]. The paper uses a, b ~ U(1, 20). *)

val default_beta_icm : Iflow_stats.Rng.t -> nodes:int -> edges:int -> Beta_icm.t
(** [beta_icm] with the paper's a, b ~ U(1, 20). *)

val skewed_ground_truth : Iflow_stats.Rng.t -> Iflow_graph.Digraph.t -> Icm.t
(** Ground-truth activation probabilities for Section V-C: 90% of edges
    drawn from Beta(16, 4) (mean 0.8, narrow), 10% from Beta(2, 8)
    (mean 0.2, wide). *)

val retweet_ground_truth : Iflow_stats.Rng.t -> Iflow_graph.Digraph.t -> Icm.t
(** Realistic retweet probabilities for the Twitter substrate: mostly
    low (90% from Beta(2, 12), mean ~0.14) with a minority of strong
    ties (10% from Beta(4, 6), mean 0.4). Real retweet rates are small —
    which is also why the paper sees almost no retweet chains longer
    than three users. *)

val in_star_icm : probs:float array -> Iflow_graph.Digraph.t * Icm.t * int
(** The Fig 7 fragment: one sink with [Array.length probs] parents, edge
    [i] carrying [probs.(i)]. Returns (graph, icm, sink). Parents are
    nodes [0 .. d-1]; the sink is node [d]. *)
