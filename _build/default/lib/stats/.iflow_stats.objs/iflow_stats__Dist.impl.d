lib/stats/dist.ml: Array Float Format Printf Rng Special
