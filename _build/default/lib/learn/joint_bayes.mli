(** The paper's generative unattributed trainer (Section V-B): a joint
    Bayesian posterior over the activation probabilities of all edges
    into one sink, sampled with Metropolis-Hastings.

    Model, per sink [k] with candidate parents [j] and evidence summary
    [D_k]: each characteristic [J] with [n_J] observations and [L_J]
    leaks contributes a Binomial([n_J], [p_J]) likelihood where
    [p_J = 1 - prod_{j in J} (1 - p_jk)]; each edge probability has a
    Beta prior.

    On priors: the paper sets the prior from the unambiguous
    characteristics and (reading [D_k] as the remaining evidence) the
    likelihood over the rest. Because Beta priors are conjugate to the
    unambiguous (singleton) rows, that construction is {i exactly
    equivalent} to a uniform Beta(1,1) prior with the likelihood over
    all characteristics — which is what [`Uniform] computes. [`Informed]
    computes the paper's formulation literally; the two posteriors agree
    and a test checks it. *)

type options = {
  burn_in : int; (** full coordinate sweeps discarded *)
  thin : int; (** sweeps between retained samples *)
  samples : int;
  step_std : float; (** reflected random-walk proposal width *)
  prior : [ `Uniform | `Informed | `Custom of int -> Iflow_stats.Dist.Beta.t ];
      (** [`Custom f] gives the prior for parent node [f j]. *)
}

val default_options : options

type result = {
  estimate : Trainer.estimate;
  samples : float array array;
      (** retained posterior samples; [samples.(s).(i)] is parent [i]'s
          probability in sample [s] — the Fig 11 scatter data *)
  acceptance : float;
}

val run :
  ?options:options -> Iflow_stats.Rng.t -> Iflow_core.Summary.t -> result

val train :
  ?options:options -> Iflow_stats.Rng.t -> Iflow_core.Summary.t ->
  Trainer.estimate
(** Posterior mean and std per candidate parent. *)

val log_posterior :
  prior:(int -> Iflow_stats.Dist.Beta.t) ->
  ambiguous_only:bool ->
  Iflow_core.Summary.t -> float array -> float
(** Unnormalised log posterior density at a probability vector (indexed
    like [Summary.parents_union]); exposed for tests and for the timing
    benches of Fig 6. *)
