lib/exp/fig3.mli: Format Iflow_stats Scale Twitter_lab
