lib/exp/fig5.mli: Format Iflow_bucket Iflow_stats Scale
