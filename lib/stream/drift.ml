module Digraph = Iflow_graph.Digraph
module Beta = Iflow_stats.Dist.Beta
module Beta_icm = Iflow_core.Beta_icm

type config = { window : int; delta : float; min_reference : float }

let default_config = { window = 200; delta = 1e-3; min_reference = 50.0 }

type alert = {
  edge : int;
  src : int;
  dst : int;
  reference_rate : float;
  window_rate : float;
  window_trials : int;
  threshold : float;
  at_trial : int;
}

type t = {
  config : config;
  mutable graph : Digraph.t;
  mutable ref_rate : float array;
  mutable ref_mass : float array;
  mutable win_fired : int array;
  mutable win_trials : int array;
  mutable flags : bool array;
  mutable n_flagged : int;
  mutable n_trials : int;
  mutable n_alerts : int;
  mutable alerts_rev : alert list;
}

let seed_reference model =
  let m = Beta_icm.n_edges model in
  let rate = Array.make m 0.0 and mass = Array.make m 0.0 in
  for e = 0 to m - 1 do
    let b = Beta_icm.edge_beta model e in
    rate.(e) <- Beta.mean b;
    mass.(e) <- b.Beta.alpha +. b.Beta.beta
  done;
  (rate, mass)

let create config model =
  if config.window < 1 then invalid_arg "Drift.create: window must be >= 1";
  if not (config.delta > 0.0 && config.delta < 1.0) then
    invalid_arg "Drift.create: delta outside (0, 1)";
  let m = Beta_icm.n_edges model in
  let ref_rate, ref_mass = seed_reference model in
  {
    config;
    graph = Beta_icm.graph model;
    ref_rate;
    ref_mass;
    win_fired = Array.make m 0;
    win_trials = Array.make m 0;
    flags = Array.make m false;
    n_flagged = 0;
    n_trials = 0;
    n_alerts = 0;
    alerts_rev = [];
  }

let reset t model =
  let m = Beta_icm.n_edges model in
  let ref_rate, ref_mass = seed_reference model in
  t.graph <- Beta_icm.graph model;
  t.ref_rate <- ref_rate;
  t.ref_mass <- ref_mass;
  t.win_fired <- Array.make m 0;
  t.win_trials <- Array.make m 0;
  t.flags <- Array.make m false;
  t.n_flagged <- 0

let hoeffding_threshold t e =
  (* AALpy HoeffdingChecker, two-sample form *)
  (sqrt (1.0 /. t.ref_mass.(e)) +. sqrt (1.0 /. float_of_int t.config.window))
  *. sqrt (0.5 *. log (2.0 /. t.config.delta))

let absorb t e =
  (* fold the passed window into the reference: the stationary
     reference sharpens, shrinking the threshold over time *)
  let w = float_of_int t.win_trials.(e) in
  let mass = t.ref_mass.(e) +. w in
  t.ref_rate.(e) <-
    ((t.ref_rate.(e) *. t.ref_mass.(e)) +. float_of_int t.win_fired.(e)) /. mass;
  t.ref_mass.(e) <- mass

let observe t ~edge ~fired =
  if edge < 0 || edge >= Array.length t.win_trials then
    invalid_arg "Drift.observe: bad edge";
  t.n_trials <- t.n_trials + 1;
  t.win_trials.(edge) <- t.win_trials.(edge) + 1;
  if fired then t.win_fired.(edge) <- t.win_fired.(edge) + 1;
  if t.win_trials.(edge) < t.config.window then None
  else begin
    let result =
      if t.ref_mass.(edge) < t.config.min_reference then begin
        (* not enough reference yet: build it up instead of testing *)
        absorb t edge;
        None
      end
      else begin
        let window_rate =
          float_of_int t.win_fired.(edge) /. float_of_int t.win_trials.(edge)
        in
        let threshold = hoeffding_threshold t edge in
        if Float.abs (window_rate -. t.ref_rate.(edge)) > threshold then begin
          let a =
            {
              edge;
              src = Digraph.edge_src t.graph edge;
              dst = Digraph.edge_dst t.graph edge;
              reference_rate = t.ref_rate.(edge);
              window_rate;
              window_trials = t.win_trials.(edge);
              threshold;
              at_trial = t.n_trials;
            }
          in
          t.alerts_rev <- a :: t.alerts_rev;
          t.n_alerts <- t.n_alerts + 1;
          if not t.flags.(edge) then begin
            t.flags.(edge) <- true;
            t.n_flagged <- t.n_flagged + 1
          end;
          Some a
        end
        else begin
          if t.flags.(edge) then begin
            t.flags.(edge) <- false;
            t.n_flagged <- t.n_flagged - 1
          end;
          absorb t edge;
          None
        end
      end
    in
    t.win_trials.(edge) <- 0;
    t.win_fired.(edge) <- 0;
    result
  end

let trials t = t.n_trials
let flagged t = t.n_flagged

let is_flagged t e =
  if e < 0 || e >= Array.length t.flags then
    invalid_arg "Drift.is_flagged: bad edge";
  t.flags.(e)

let alerts t = List.rev t.alerts_rev
let alert_count t = t.n_alerts

let pp_alert ppf a =
  Format.fprintf ppf
    "edge %d (%d -> %d): window rate %.3f vs reference %.3f (threshold %.3f, \
     window %d, trial %d)"
    a.edge a.src a.dst a.window_rate a.reference_rate a.threshold
    a.window_trials a.at_trial
