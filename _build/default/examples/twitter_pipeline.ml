(* End-to-end Twitter pipeline: raw tweet text in, calibrated flow
   predictions out.

   This walks the exact path the paper describes for its attributed
   experiments: parse retweet syntax, reconstruct cascades (recovering
   originals missing from the crawl), infer the topology from '@'
   references, train a betaICM, and check calibration with the bucket
   experiment.

   Run with: dune exec examples/twitter_pipeline.exe *)
module Digraph = Iflow_graph.Digraph
module Gen = Iflow_graph.Gen
module Rng = Iflow_stats.Rng
module Generator = Iflow_core.Generator
module Beta_icm = Iflow_core.Beta_icm
module Evidence = Iflow_core.Evidence
module Estimator = Iflow_mcmc.Estimator
module Measures = Iflow_stats.Measures
module Bucket = Iflow_bucket.Bucket
open Iflow_twitter

let () =
  let rng = Rng.create 3 in

  (* 1. A raw corpus. In production this would be your crawl; here the
        synthetic substrate produces tweets with real syntax, missing
        originals included. *)
  let follow_graph =
    Gen.preferential_attachment rng ~nodes:120 ~mean_out_degree:4
  in
  let dynamics = Generator.retweet_ground_truth rng follow_graph in
  let corpus =
    Corpus.generate
      ~params:{ Corpus.default_params with originals = 2500 }
      rng dynamics
  in
  Printf.printf "corpus: %d tweets (%d dropped to simulate an incomplete crawl)\n"
    (List.length corpus.Corpus.tweets) corpus.Corpus.dropped;

  (* 2. Reconstruct cascades from the text alone. *)
  let cascades = Preprocess.cascades corpus.Corpus.tweets in
  let recovered =
    List.length
      (List.filter (fun c -> not c.Preprocess.original_observed) cascades)
  in
  Printf.printf "cascades: %d reconstructed, %d with recovered originals\n"
    (List.length cascades) recovered;

  (* 3. Infer the topology from '@' references, as the paper does. *)
  let g, names, index = Preprocess.infer_graph corpus.Corpus.tweets in
  Printf.printf "inferred graph: %d users, %d edges\n" (Digraph.n_nodes g)
    (Digraph.n_edges g);
  ignore names;

  (* 4. Train/test split by time, then train the betaICM. *)
  let cutoff =
    let times =
      List.sort compare
        (List.map (fun (t : Tweet.t) -> t.Tweet.time) corpus.Corpus.tweets)
    in
    List.nth times (4 * List.length times / 5)
  in
  let train, test =
    List.partition
      (fun (t : Tweet.t) -> t.Tweet.time <= cutoff)
      corpus.Corpus.tweets
  in
  let node_of_name name = Hashtbl.find_opt index name in
  let train_objects =
    Preprocess.to_attributed ~graph:g ~node_of_name (Preprocess.cascades train)
  in
  let model = Beta_icm.train_attributed g train_objects in
  let icm = Beta_icm.expected_icm model in
  Printf.printf "trained on %d cascades\n\n" (List.length train_objects);

  (* 5. Predict held-out flows and measure calibration. *)
  let test_objects =
    Preprocess.to_attributed ~graph:g ~node_of_name (Preprocess.cascades test)
  in
  let config = { Estimator.burn_in = 300; thin = 5; samples = 400 } in
  let predictions = ref [] in
  List.iteri
    (fun i (o : Evidence.attributed_object) ->
      if i < 150 then begin
        match o.Evidence.sources with
        | [ src ] ->
          let n = Digraph.n_nodes g in
          let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
          let estimate =
            Estimator.flow_probability rng icm config ~src ~dst
          in
          predictions :=
            { Measures.estimate; outcome = o.Evidence.active_nodes.(dst) }
            :: !predictions
        | _ -> ()
      end)
    test_objects;
  let bucket = Bucket.run ~bins:10 ~label:"twitter pipeline" !predictions in
  Format.printf "%a@." Bucket.pp bucket;
  Format.printf "%a@." Bucket.pp_summary bucket
