(* Smoke tests for the experiment layer: each figure's machinery runs at
   tiny scale and produces structurally sane output. The bench binary
   runs them at real scale. *)
module Rng = Iflow_stats.Rng
module Bucket = Iflow_bucket.Bucket
open Iflow_exp

let tiny_lab =
  (* built once; Twitter_lab.make at Quick scale is the smallest size *)
  lazy (Twitter_lab.make Scale.Quick (Rng.create 401))

let test_scale () =
  Alcotest.(check int) "pick quick" 1 (Scale.pick Scale.Quick ~quick:1 ~full:2);
  Alcotest.(check int) "pick full" 2 (Scale.pick Scale.Full ~quick:1 ~full:2);
  let config = Scale.mcmc Scale.Quick in
  Alcotest.(check bool) "config sane" true
    (config.Iflow_mcmc.Estimator.samples > 0)

let test_synthetic_bucket_runs () =
  let rng = Rng.create 402 in
  let bucket =
    Synthetic_bucket.run rng ~models:30 ~nodes:12 ~edges:36
      ~estimator:
        (Synthetic_bucket.Metropolis_hastings
           { Iflow_mcmc.Estimator.burn_in = 100; thin = 2; samples = 100 })
      ~label:"smoke"
  in
  Alcotest.(check int) "total" 30 bucket.Bucket.total;
  Alcotest.(check bool) "coverage in range" true
    (bucket.Bucket.coverage >= 0.0 && bucket.Bucket.coverage <= 1.0)

let test_twitter_lab () =
  let lab = Lazy.force tiny_lab in
  Alcotest.(check bool) "has training objects" true
    (List.length lab.Twitter_lab.train_objects > 100);
  Alcotest.(check bool) "has test cascades" true
    (List.length lab.Twitter_lab.test_cascades > 10);
  let interesting = Twitter_lab.interesting_users lab ~count:5 in
  Alcotest.(check int) "five focus users" 5 (List.length interesting);
  (* interesting users are ranked: the first has the most retweets *)
  match interesting with
  | first :: _ ->
    let sub, node_of_sub, focus =
      Twitter_lab.subgraph_around lab ~centre:first ~radius:1
    in
    Alcotest.(check bool) "focus present" true (focus >= 0);
    Alcotest.(check int) "focus maps back" first node_of_sub.(focus);
    Alcotest.(check bool) "subgraph nonempty" true
      (Iflow_core.Beta_icm.n_nodes sub > 1)
  | [] -> Alcotest.fail "no interesting users"

let test_fig7_point_structure () =
  let rng = Rng.create 403 in
  let panels = Fig7.run Scale.Quick rng in
  Alcotest.(check int) "four panels" 4 (List.length panels);
  List.iter
    (fun (p : Fig7.panel) ->
      List.iter
        (fun (pt : Fig7.point) ->
          List.iter
            (fun (_, rmse) ->
              if not (Float.is_nan rmse) && (rmse < 0.0 || rmse > 1.0) then
                Alcotest.failf "rmse %g out of range" rmse)
            pt.Fig7.rmse)
        p.Fig7.points)
    panels;
  (* with 1000 objects, our method should be accurate on panel (a) *)
  let panel_a = List.hd panels in
  let last = List.nth panel_a.Fig7.points (List.length panel_a.Fig7.points - 1) in
  let ours = List.assoc Fig7.Ours last.Fig7.rmse in
  Alcotest.(check bool)
    (Printf.sprintf "ours converges (%.3f)" ours)
    true (ours < 0.1)

let test_fig11_structure () =
  let rng = Rng.create 404 in
  let r = Fig11.run Scale.Quick rng in
  Alcotest.(check int) "em restarts" 200 (List.length r.Fig11.em_points);
  Alcotest.(check int) "mcmc samples" 1000 (List.length r.Fig11.mcmc_points);
  List.iter
    (fun (a, b, c) ->
      if a < 0.0 || a > 1.0 || b < 0.0 || b > 1.0 || c < 0.0 || c > 1.0 then
        Alcotest.fail "point out of range")
    (r.Fig11.em_points @ r.Fig11.mcmc_points)

let test_density_grid () =
  let grid =
    Fig11.density_grid ~cells:4 ~lo:0.0 ~hi:1.0
      [ (0.1, 0.1); (0.9, 0.9); (0.9, 0.95); (1.2, -0.5) ]
  in
  Alcotest.(check int) "bottom-left" 1 grid.(0).(0);
  Alcotest.(check int) "top-right" 2 grid.(3).(3);
  (* out-of-range points clamp to border cells *)
  Alcotest.(check int) "clamped" 1 grid.(0).(3)

let test_fig6_rows_positive () =
  let rng = Rng.create 405 in
  let rows =
    [ Fig6.(
        let r = List.hd (run Scale.Quick rng) in
        r) ]
  in
  List.iter
    (fun (r : Fig6.row) ->
      Alcotest.(check bool) "goyal > 0" true (r.Fig6.goyal_seconds > 0.0);
      Alcotest.(check bool) "ours > 0" true (r.Fig6.ours_core_seconds > 0.0);
      Alcotest.(check bool) "amortised <= with-summary" true
        (r.Fig6.ours_amortised_seconds <= r.Fig6.ours_with_summary_seconds))
    rows

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let test_tables () =
  (* Table I prints without error and matches the paper's rows *)
  let s = Tables.table_one () in
  Alcotest.(check int) "entries" 3 (Iflow_core.Summary.n_entries s);
  Alcotest.(check int) "observations" 65
    (Iflow_core.Summary.total_observations s);
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Tables.report_table_one ppf;
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "mentions rebuild" true
    (contains_substring (Buffer.contents buf) "rebuilt")

let () =
  Alcotest.run "iflow_exp"
    [
      ( "scale",
        [ Alcotest.test_case "pick and mcmc" `Quick test_scale ] );
      ( "machinery",
        [
          Alcotest.test_case "synthetic bucket" `Slow test_synthetic_bucket_runs;
          Alcotest.test_case "twitter lab" `Slow test_twitter_lab;
          Alcotest.test_case "fig7 structure" `Slow test_fig7_point_structure;
          Alcotest.test_case "fig11 structure" `Slow test_fig11_structure;
          Alcotest.test_case "density grid" `Quick test_density_grid;
          Alcotest.test_case "fig6 rows" `Slow test_fig6_rows_positive;
          Alcotest.test_case "tables" `Quick test_tables;
        ] );
    ]
