(* Seed selection for marketing: "maximising marketing impact on social
   media" from the paper's introduction.

   Given a learned information-flow model of a social network, compare
   candidate seed users by the *distribution* of their campaign impact
   (how many users the message reaches), and by source-to-community
   flow into a target audience segment.

   Run with: dune exec examples/marketing_reach.exe *)
module Digraph = Iflow_graph.Digraph
module Gen = Iflow_graph.Gen
module Rng = Iflow_stats.Rng
module Icm = Iflow_core.Icm
module Cascade = Iflow_core.Cascade
module Beta_icm = Iflow_core.Beta_icm
module Generator = Iflow_core.Generator
module Estimator = Iflow_mcmc.Estimator
module Descriptive = Iflow_stats.Descriptive

let () =
  let rng = Rng.create 11 in

  (* A scale-free social network with realistic (low) share rates. *)
  let n = 400 in
  let g = Gen.preferential_attachment rng ~nodes:n ~mean_out_degree:4 in
  let ground_truth = Generator.retweet_ground_truth rng g in

  (* Learn the model from historical cascades seeded all over. *)
  let history =
    List.init 3000 (fun _ ->
        Cascade.run rng ground_truth ~sources:[ Rng.int rng n ])
  in
  let model = Beta_icm.train_attributed g history in
  let icm = Beta_icm.expected_icm model in
  let config = { Estimator.burn_in = 800; thin = 10; samples = 1500 } in

  (* Candidate seeds: the three largest audiences plus a random user. *)
  let by_audience =
    List.sort
      (fun a b -> compare (Digraph.out_degree g b) (Digraph.out_degree g a))
      (List.init n (fun v -> v))
  in
  let candidates =
    match by_audience with
    | a :: b :: c :: _ -> [ a; b; c; Rng.int rng n ]
    | _ -> assert false
  in

  Printf.printf "Campaign seed comparison (%d users, %d edges)\n\n" n
    (Digraph.n_edges g);
  Printf.printf "%8s %10s %10s %10s %10s %10s\n" "seed" "followers" "mean"
    "median" "p90" "max";
  let scored =
    List.map
      (fun seed ->
        let impact = Estimator.impact_samples rng icm config ~src:seed in
        let floats = Array.map float_of_int impact in
        let mean = Descriptive.mean floats in
        let _, impact_max = Descriptive.min_max floats in
        Printf.printf "%8d %10d %10.1f %10.0f %10.0f %10.0f\n" seed
          (Digraph.out_degree g seed) mean
          (Descriptive.median floats)
          (Descriptive.quantile floats 0.9)
          impact_max;
        (seed, mean))
      candidates
  in

  (* Targeted reach: probability of covering a whole audience segment
     (source-to-community flow), not just expected volume. *)
  let segment =
    (* three random users standing in for, say, key industry voices *)
    List.init 3 (fun _ -> Rng.int rng n)
  in
  Printf.printf "\nProbability of reaching ALL of a 3-user segment:\n";
  List.iter
    (fun (seed, _) ->
      let p = Estimator.community_flow rng icm config ~src:seed ~sinks:segment in
      Printf.printf "  seed %4d: %.4f\n" seed p)
    scored;

  let best = List.fold_left (fun (bs, bm) (s, m) ->
      if m > bm then (s, m) else (bs, bm))
      (-1, neg_infinity) scored
  in
  Printf.printf "\nRecommended single seed by expected impact: user %d (mean %.1f)\n"
    (fst best) (snd best);

  (* Multi-seed campaign: greedy influence maximisation (CELF). Picking
     the k biggest audiences is NOT optimal — their reach overlaps;
     greedy accounts for the marginal gain. *)
  let k = 3 in
  let seeds, spread = Iflow_mcmc.Influence.greedy_seeds ~runs:200 rng icm ~k in
  Printf.printf "\nGreedy %d-seed campaign: users [%s], expected reach %.1f\n" k
    (String.concat "; " (List.map string_of_int seeds))
    spread;
  let naive = List.filteri (fun i _ -> i < k) by_audience in
  Printf.printf "vs top-%d audiences [%s]: expected reach %.1f\n" k
    (String.concat "; " (List.map string_of_int naive))
    (Iflow_mcmc.Influence.expected_spread rng icm ~seeds:naive ~runs:1000)
