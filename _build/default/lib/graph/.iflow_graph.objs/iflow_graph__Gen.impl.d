lib/graph/gen.ml: Array Digraph Hashtbl Iflow_stats List Printf
