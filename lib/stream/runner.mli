(** The ingest loop: drains an event-log line source through an
    {!Online} updater, publishing {!Snapshot} versions at batch
    boundaries, hot-swapping them into an optional engine, applying
    forgetting, and writing periodic checkpoints.

    Cadences:
    - a version is published (and the engine swapped, and one
      {!Online.decay} step applied) every [batch] {e applied} events,
      and once more at end of stream if anything is pending;
    - a checkpoint is written at the first publish at least
      [checkpoint_every] {e lines} after the previous one (lines, not
      events, so a recovered run skips exactly the consumed prefix —
      quarantined lines included), and once more at end of stream.

    Replay determinism: with forgetting off, any [batch] size — and any
    checkpoint/recover split — yields the same final model bit for bit,
    because publishing only freezes the accumulator.

    {b Supervision.} Read failures from the source follow the [on_error]
    policy; engine-swap and checkpoint-write failures never kill the
    run: the engine keeps serving the last successfully swapped version
    and ingest continues (counted in
    [iflow_stream_degraded_swaps_total] /
    [iflow_stream_checkpoint_failures_total] and surfaced in the
    {!report}). *)

type error_policy =
  | Fail_fast      (** re-raise the first read error (default) *)
  | Skip_line
      (** count the error ([iflow_stream_read_errors_total]), notify
          [on_degraded], pull the next line; gives up (re-raises) after
          100 {e consecutive} failures so a permanently dead source
          cannot spin the loop forever *)
  | Retry_reads of Iflow_fault.Retry.policy
      (** retry the same read with backoff; a read that exhausts the
          policy is counted and re-raised *)

type config = {
  batch : int;                   (** applied events per published version *)
  checkpoint_every : int option; (** lines between checkpoints *)
}

val default_config : config
(** batch 256, no checkpoints. *)

type report = {
  lines : int;                (** log lines consumed *)
  stats : Online.stats;
  final : Snapshot.version;   (** the last published version *)
  versions_published : int;   (** published by this run *)
  checkpoints_written : int;  (** written by this run *)
  cache_evictions : int;      (** engine cache entries retired by swaps *)
  drift_alerts : Drift.alert list;
  read_errors : int;          (** reads absorbed by the [on_error] policy *)
  swap_failures : int;        (** swaps degraded to the last-good version *)
  checkpoint_failures : int;  (** checkpoint writes that failed post-retry *)
  wall_ns : int;              (** monotonic wall time of the run *)
  events_per_sec : float;     (** applied events per wall second *)
}

val run :
  ?engine:Iflow_engine.Engine.t ->
  ?skip:int ->
  ?on_error:error_policy ->
  ?on_degraded:(stage:string -> exn -> unit) ->
  ?on_alert:(Drift.alert -> unit) ->
  ?on_publish:(Snapshot.version -> unit) ->
  ?on_quarantine:(line:int -> reason:string -> unit) ->
  config -> Online.t -> Snapshot.t -> (unit -> string option) -> report
(** [run config online snapshot next] pulls lines until [next ()]
    returns [None]. [skip] discards that many leading lines first (the
    offset of a recovered checkpoint; skip reads are never retried or
    skipped — a failure there means the resume point is unreachable).
    When [engine] is given it is swapped onto the current version up
    front and after every publish. [on_degraded ~stage e] fires once per
    absorbed fault with [stage] one of ["read"], ["swap"],
    ["checkpoint"]. [on_quarantine ~line ~reason] fires once per
    quarantined event with the 1-based line number of the event log —
    [reason] already carries the same line number (and, for malformed
    JSON, the byte offset of the damage) via {!Online.apply_line}.
    Failpoints: [runner.read] per pull, [runner.swap]
    per engine swap. Raises [Invalid_argument] on [batch < 1] or a
    non-positive [checkpoint_every]. *)

val run_binlog :
  ?engine:Iflow_engine.Engine.t ->
  ?skip:int ->
  ?on_error:error_policy ->
  ?on_degraded:(stage:string -> exn -> unit) ->
  ?on_publish:(Snapshot.version -> unit) ->
  ?on_quarantine:(line:int -> reason:string -> unit) ->
  config -> Sharded.t -> Snapshot.t -> Binlog.Reader.t -> report
(** The binary-log twin of {!run}: drains a {!Binlog.Reader} through a
    {!Sharded} accumulator in batches. Cadences, supervision, and the
    report are as in {!run}, with "line" meaning the event-slot offset
    in the binary log (so checkpoints resume with [skip] exactly as on
    the JSONL path). The reader never pulls more frames than fill the
    current batch of applied events, so the events absorbed between
    publishes — and hence every published digest, forgetting included —
    are identical to the sequential path's. Drift detection is not
    available here (see {!Sharded}); [drift_alerts] is always [[]].
    [Skip_line] treats a whole failed batch read as one absorbed fault.
    Failpoints: [runner.read] per batch read, [runner.swap] per swap.
    Raises [Failure] when [skip] runs past the end of the log. *)

val lines_of_channel : in_channel -> unit -> string option
(** Reads one line per call; [EINTR] (a signal interrupting the read —
    e.g. SIGCHLD from a supervised child) is retried transparently
    rather than surfaced as [Sys_error]. *)

val lines_of_list : string list -> unit -> string option

val pp_report : Format.formatter -> report -> unit
