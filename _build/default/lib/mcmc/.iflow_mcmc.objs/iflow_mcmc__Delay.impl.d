lib/mcmc/delay.ml: Array Estimator Float Iflow_core Iflow_graph Iflow_stats Set
