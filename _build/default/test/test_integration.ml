(* End-to-end integration tests: the full pipelines the experiments run,
   at reduced scale. *)
open Iflow_core
module Digraph = Iflow_graph.Digraph
module Gen = Iflow_graph.Gen
module Rng = Iflow_stats.Rng
module Measures = Iflow_stats.Measures
module Estimator = Iflow_mcmc.Estimator
module Conditions = Iflow_mcmc.Conditions
module Nested = Iflow_mcmc.Nested
module Bucket = Iflow_bucket.Bucket
module Corpus = Iflow_twitter.Corpus
module Preprocess = Iflow_twitter.Preprocess
module Unattributed = Iflow_twitter.Unattributed
module Joint_bayes = Iflow_learn.Joint_bayes
module Trainer = Iflow_learn.Trainer

(* Miniature Fig 1: the bucket experiment on synthetic betaICMs must be
   calibrated — MH estimates of flow vs cascade outcomes. *)
let test_bucket_experiment_synthetic () =
  let rng = Rng.create 201 in
  let config = { Estimator.burn_in = 400; thin = 5; samples = 400 } in
  let predictions = ref [] in
  for _ = 1 to 60 do
    let model = Generator.default_beta_icm rng ~nodes:15 ~edges:45 in
    let icm = Beta_icm.sample_icm rng model in
    let src = Rng.int rng 15 in
    let dst = (src + 1 + Rng.int rng 14) mod 15 in
    let o = Cascade.run rng icm ~sources:[ src ] in
    let z = o.Evidence.active_nodes.(dst) in
    let p =
      Estimator.flow_probability rng
        (Beta_icm.expected_icm model)
        config ~src ~dst
    in
    predictions := { Measures.estimate = p; outcome = z } :: !predictions
  done;
  let b = Bucket.run ~bins:10 ~label:"mini fig1" !predictions in
  (* With only 60 points per-bucket intervals are wide; coverage should
     still be decent for a sound estimator. *)
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.2f" b.Bucket.coverage)
    true (b.Bucket.coverage >= 0.6);
  Alcotest.(check bool) "brier sane" true
    (b.Bucket.measures.Measures.brier_all < 0.3)

(* Miniature Fig 2 pipeline: corpus -> preprocess -> betaICM -> predict
   held-out retweet outcomes, with and without flow conditions. *)
let test_twitter_attributed_pipeline () =
  let rng = Rng.create 202 in
  let g = Gen.preferential_attachment rng ~nodes:50 ~mean_out_degree:3 in
  let truth = Generator.skewed_ground_truth rng g in
  let corpus =
    Corpus.generate
      ~params:
        {
          Corpus.default_params with
          originals = 800;
          hashtag_prob = 0.0;
          url_prob = 0.0;
          offline_hashtag_rate = 0.0;
        }
      rng truth
  in
  let cascades = Preprocess.cascades corpus.Corpus.tweets in
  let objects =
    Preprocess.to_attributed ~graph:g
      ~node_of_name:(Corpus.node_of_name corpus)
      cascades
  in
  let model = Beta_icm.train_attributed g objects in
  let icm = Beta_icm.expected_icm model in
  let config = { Estimator.burn_in = 300; thin = 4; samples = 300 } in
  (* held-out outcomes straight from the ground truth model *)
  let predictions = ref [] in
  for _ = 1 to 40 do
    let src = Rng.int rng 50 in
    let o = Cascade.run rng truth ~sources:[ src ] in
    let dst = (src + 1 + Rng.int rng 49) mod 50 in
    let p = Estimator.flow_probability rng icm config ~src ~dst in
    predictions :=
      { Measures.estimate = p; outcome = o.Evidence.active_nodes.(dst) }
      :: !predictions
  done;
  let row = Measures.table_row ~label:"pipeline" !predictions in
  Alcotest.(check bool)
    (Printf.sprintf "brier %.3f beats chance" row.Measures.brier_all)
    true
    (row.Measures.brier_all < 0.25);
  (* conditional query runs end to end *)
  let src = 0 in
  let o = Cascade.run rng truth ~sources:[ src ] in
  let active =
    Array.to_list
      (Array.mapi (fun v a -> if a && v <> src then Some v else None)
         o.Evidence.active_nodes)
    |> List.filter_map (fun x -> x)
  in
  match active with
  | known :: _ ->
    let conditions = Conditions.v [ (src, known, true) ] in
    let p =
      Estimator.flow_probability ~conditions rng icm config ~src ~dst:known
    in
    Alcotest.(check (float 1e-9)) "conditioned flow certain" 1.0 p
  | [] -> ()

(* Miniature Fig 8 pipeline: URL traces -> summaries -> joint Bayes ->
   flow prediction on the omnipotent-augmented graph. *)
let test_twitter_unattributed_pipeline () =
  let rng = Rng.create 203 in
  let g = Gen.preferential_attachment rng ~nodes:40 ~mean_out_degree:3 in
  let truth = Generator.skewed_ground_truth rng g in
  let corpus =
    Corpus.generate
      ~params:{ Corpus.default_params with originals = 600; url_prob = 0.5 }
      rng truth
  in
  let aug, omni = Unattributed.augment_with_omnipotent g in
  let traces =
    Unattributed.item_traces ~kind:Unattributed.Url
      ~node_of_name:(Corpus.node_of_name corpus)
      ~n_nodes:(Digraph.n_nodes aug) ~omni corpus.Corpus.tweets
  in
  Alcotest.(check bool) "traces" true (List.length traces > 20);
  let traces = List.map snd traces in
  (* train a handful of sinks with the joint Bayes method *)
  let options =
    { Joint_bayes.default_options with burn_in = 150; samples = 200; thin = 2 }
  in
  let estimates =
    List.filter_map
      (fun sink ->
        let summary = Summary.build aug traces ~sink in
        if Summary.n_entries summary = 0 then None
        else Some (Joint_bayes.train ~options rng summary))
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "estimates produced" true (List.length estimates > 0);
  List.iter
    (fun (e : Trainer.estimate) ->
      Array.iter
        (fun m ->
          if m < 0.0 || m > 1.0 then Alcotest.failf "estimate %g" m)
        e.Trainer.mean)
    estimates;
  (* write estimates onto an ICM over the augmented graph and query *)
  let icm = Trainer.apply_to_icm (Icm.const aug 0.0) estimates in
  let config = { Estimator.burn_in = 200; thin = 3; samples = 200 } in
  let p = Estimator.flow_probability rng icm config ~src:omni ~dst:1 in
  Alcotest.(check bool) "query runs" true (p >= 0.0 && p <= 1.0)

(* Nested MH uncertainty on a trained model mirrors the evidence
   uncertainty (mini Fig 3). *)
let test_uncertainty_mirrors_evidence () =
  let rng = Rng.create 204 in
  let g = Digraph.of_edges ~nodes:2 [ (0, 1) ] in
  let truth = Icm.create g [| 0.3 |] in
  let objects =
    List.init 40 (fun _ -> Cascade.run rng truth ~sources:[ 0 ])
  in
  let model = Beta_icm.train_attributed g objects in
  let config = { Estimator.burn_in = 150; thin = 2; samples = 300 } in
  let samples = Nested.flow_samples rng model config ~reps:50 ~src:0 ~dst:1 in
  let mean, (lo, hi) = Nested.mean_and_interval samples in
  let b = Beta_icm.edge_beta model 0 in
  Alcotest.(check (float 0.05)) "nested mean tracks posterior mean"
    (Iflow_stats.Dist.Beta.mean b) mean;
  (* the empirical beta's central mass should overlap the sample interval *)
  let blo, bhi = Iflow_stats.Dist.Beta.interval b 0.95 in
  Alcotest.(check bool) "intervals overlap" true (lo < bhi && blo < hi)

let () =
  Alcotest.run "iflow_integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "synthetic bucket experiment" `Slow
            test_bucket_experiment_synthetic;
          Alcotest.test_case "twitter attributed pipeline" `Slow
            test_twitter_attributed_pipeline;
          Alcotest.test_case "twitter unattributed pipeline" `Slow
            test_twitter_unattributed_pipeline;
          Alcotest.test_case "uncertainty mirrors evidence" `Slow
            test_uncertainty_mirrors_evidence;
        ] );
    ]
