lib/learn/contextual.mli: Iflow_core Iflow_graph Iflow_stats
