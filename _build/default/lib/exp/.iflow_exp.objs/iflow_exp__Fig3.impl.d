lib/exp/fig3.ml: Array Evidence Format Iflow_core Iflow_graph Iflow_mcmc Iflow_stats List Scale Twitter_lab
