lib/exp/fig4.mli: Format Iflow_stats Scale Twitter_lab
