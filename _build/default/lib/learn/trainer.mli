(** Common shape of the unattributed trainers (paper Section V).

    Every method estimates, for one sink node [k], the activation
    probability of each candidate in-edge [(j, k)] from an evidence
    {!Iflow_core.Summary.t}. Point methods report zero uncertainty;
    the joint Bayes method reports posterior standard deviations. *)

type estimate = {
  sink : int;
  parents : int array; (** candidate parent node ids, sorted ascending *)
  mean : float array; (** estimated activation probability per parent *)
  std : float array; (** posterior std per parent; zeros for point methods *)
}

val parent_index : estimate -> int -> int option
(** Position of a parent node in [parents], if present. *)

val mean_for : estimate -> int -> float option
(** Estimated probability for a given parent node. *)

val rmse_vs_truth : estimate -> truth:(int -> float) -> float
(** Root mean squared error between [mean] and the ground-truth
    activation probability per parent (Fig 7's metric). *)

val apply_to_icm : Iflow_core.Icm.t -> estimate list -> Iflow_core.Icm.t
(** Produce a new ICM over the same graph with the estimated
    probabilities written onto the corresponding edges (edges not
    covered by any estimate keep their old value). The input ICM
    typically carries a default (e.g. 0 or the prior mean). *)

val mean_std_arrays :
  Iflow_graph.Digraph.t -> default_mean:float -> default_std:float ->
  estimate list -> float array * float array
(** Per-edge mean/std arrays over the whole graph, for the Gaussian
    approximation experiments (Fig 10). *)
