lib/stats/descriptive.ml: Array Float Format Option String
