(* The dynamic reachability layer (PR 2): workspace BFS vs Traverse,
   the incremental per-source cache vs fresh BFS over long random flip
   sequences, and a bit-for-bit regression of the conditioned chain
   against a replica of the seed implementation. *)

module Digraph = Iflow_graph.Digraph
module Gen = Iflow_graph.Gen
module Traverse = Iflow_graph.Traverse
module Reach = Iflow_graph.Reach
module Rng = Iflow_stats.Rng
module Fenwick = Iflow_stats.Fenwick
module Icm = Iflow_core.Icm
module Pseudo_state = Iflow_core.Pseudo_state
module Chain = Iflow_mcmc.Chain
module Conditions = Iflow_mcmc.Conditions
module Estimator = Iflow_mcmc.Estimator

(* ---------- Workspace vs Traverse ---------- *)

let random_setting seed =
  let rng = Rng.create seed in
  let nodes = 2 + Rng.int rng 40 in
  let max_edges = nodes * (nodes - 1) in
  let edges = min max_edges (1 + Rng.int rng (4 * nodes)) in
  let g = Gen.gnm rng ~nodes ~edges in
  let active = Array.init edges (fun _ -> Rng.bool rng) in
  (rng, g, active)

let test_workspace_matches_traverse () =
  for seed = 1 to 50 do
    let rng, g, active = random_setting (1000 + seed) in
    let n = Digraph.n_nodes g in
    let ws = Reach.workspace n in
    let act e = active.(e) in
    (* single and multi-source reachability *)
    for _ = 1 to 5 do
      let k = 1 + Rng.int rng 3 in
      let sources = List.init k (fun _ -> Rng.int rng n) in
      let fresh = Traverse.reachable_from ~active:act g sources in
      let ours = Reach.reachable_from ws ~active:act g sources in
      if fresh <> ours then
        Alcotest.failf "seed %d: reachable_from mismatch" seed;
      (* the marks survive until the next workspace operation *)
      Array.iteri
        (fun v m ->
          if Reach.marked ws v <> m then
            Alcotest.failf "seed %d: marked mismatch at %d" seed v)
        fresh
    done;
    (* shortest paths *)
    for _ = 1 to 10 do
      let src = Rng.int rng n and dst = Rng.int rng n in
      let fresh = Traverse.shortest_path ~active:act g ~src ~dst in
      let ours = Reach.shortest_path ws ~active:act g ~src ~dst in
      if fresh <> ours then
        Alcotest.failf "seed %d: shortest_path mismatch %d->%d" seed src dst
    done
  done

let test_workspace_reuse_resets () =
  (* back-to-back BFS runs on the same workspace never leak marks *)
  let g = Digraph.of_edges ~nodes:4 [ (0, 1); (1, 2); (2, 3) ] in
  let ws = Reach.workspace 4 in
  let all e = e >= 0 in
  Reach.bfs ws ~active:all g ~src:0;
  Alcotest.(check int) "all reached" 4 (Reach.count_marked ws);
  Reach.bfs ws ~active:all g ~src:3;
  Alcotest.(check int) "only 3" 1 (Reach.count_marked ws);
  Alcotest.(check bool) "0 not marked" false (Reach.marked ws 0);
  Alcotest.(check (array bool)) "snapshot"
    [| false; false; false; true |]
    (Reach.snapshot ws)

let test_cheapest_path_prefers_zero_cost () =
  (* direct 1-hop inactive edge vs 3-hop all-active path: the 0-1 BFS
     must take the longer path that activates nothing *)
  let g =
    Digraph.of_edges ~nodes:4 [ (0, 3); (0, 1); (1, 2); (2, 3) ]
  in
  let ws = Reach.workspace 4 in
  let usable _ = true in
  let active = [| false; true; true; true |] in
  Alcotest.(check (option (list int)))
    "all-active detour wins"
    (Some [ 1; 2; 3 ])
    (Reach.cheapest_path ws ~usable ~zero_cost:(fun e -> active.(e)) g
       ~src:0 ~dst:3);
  (* when nothing is active the direct edge is cheapest *)
  Alcotest.(check (option (list int)))
    "direct edge when all cost 1"
    (Some [ 0 ])
    (Reach.cheapest_path ws ~usable ~zero_cost:(fun _ -> false) g
       ~src:0 ~dst:3);
  Alcotest.(check (option (list int)))
    "unreachable" None
    (Reach.cheapest_path ws ~usable:(fun e -> e = 1) ~zero_cost:(fun _ -> false)
       g ~src:0 ~dst:3);
  Alcotest.(check (option (list int)))
    "self" (Some [])
    (Reach.cheapest_path ws ~usable ~zero_cost:(fun _ -> false) g ~src:2 ~dst:2)

let test_cheapest_path_cost_minimal () =
  (* on random graphs, the number of newly activated edges never exceeds
     that of the plain shortest path, and the path is sound *)
  for seed = 1 to 30 do
    let rng, g, active = random_setting (2000 + seed) in
    let n = Digraph.n_nodes g in
    let ws = Reach.workspace n in
    let usable _ = true in
    let zero_cost e = active.(e) in
    let cost = List.fold_left (fun c e -> if active.(e) then c else c + 1) 0 in
    for _ = 1 to 10 do
      let src = Rng.int rng n and dst = Rng.int rng n in
      match
        ( Reach.cheapest_path ws ~usable ~zero_cost g ~src ~dst,
          Traverse.shortest_path g ~src ~dst )
      with
      | None, None -> ()
      | None, Some _ | Some _, None ->
        Alcotest.failf "seed %d: reachability disagreement" seed
      | Some cheap, Some short ->
        if cost cheap > cost short then
          Alcotest.failf "seed %d: cheapest path costs more" seed;
        (* soundness: consecutive edges from src to dst *)
        let at = ref src in
        List.iter
          (fun e ->
            if Digraph.edge_src g e <> !at then
              Alcotest.failf "seed %d: broken path" seed;
            at := Digraph.edge_dst g e)
          cheap;
        if !at <> dst then Alcotest.failf "seed %d: path misses dst" seed
    done
  done

(* ---------- Incremental cache vs fresh BFS ---------- *)

(* >= 10k random single-edge flips per run, against a model with clamped
   (p = 0 / p = 1) edges that stay pinned while the free edges churn;
   every flip's incremental update — and, periodically, its undo — must
   agree with a from-scratch Traverse BFS. *)
let cache_flip_run seed flips =
  let rng = Rng.create seed in
  let nodes = 3 + Rng.int rng 40 in
  let max_edges = nodes * (nodes - 1) in
  let edges = min max_edges (2 + Rng.int rng (5 * nodes)) in
  let g = Gen.gnm rng ~nodes ~edges in
  let probs =
    Array.init edges (fun _ ->
        let u = Rng.uniform rng in
        if u < 0.1 then 0.0
        else if u > 0.9 then 1.0
        else 0.1 +. (0.8 *. Rng.uniform rng))
  in
  let active =
    Array.init edges (fun e ->
        if probs.(e) >= 1.0 then true
        else if probs.(e) <= 0.0 then false
        else Rng.bool rng)
  in
  let flippable =
    Array.of_list
      (List.filter
         (fun e -> probs.(e) > 0.0 && probs.(e) < 1.0)
         (List.init edges Fun.id))
  in
  if Array.length flippable = 0 then ()
  else begin
    let act e = active.(e) in
    let ws = Reach.workspace nodes in
    let source = Rng.int rng nodes in
    let cache = Reach.Cache.create ws g ~source ~active:act in
    let agree_with_fresh what =
      let fresh = Traverse.reachable_from ~active:act g [ source ] in
      for v = 0 to nodes - 1 do
        if fresh.(v) <> Reach.Cache.reaches cache v then
          Alcotest.failf "seed %d: %s: node %d disagrees with fresh BFS" seed
            what v
      done
    in
    for step = 1 to flips do
      let e = flippable.(Rng.int rng (Array.length flippable)) in
      active.(e) <- not active.(e);
      let receipt = Reach.Cache.update cache ~active:act ~edge:e in
      if step mod 13 = 0 then begin
        (* rejected-proposal path: revert the flip and the cache *)
        Reach.Cache.undo cache receipt;
        active.(e) <- not active.(e);
        agree_with_fresh "after undo";
        (* re-apply so the run keeps drifting *)
        active.(e) <- not active.(e);
        ignore (Reach.Cache.update cache ~active:act ~edge:e)
      end;
      agree_with_fresh "after flip"
    done
  end

let test_cache_vs_fresh_bfs () =
  (* several graphs; > 10k flips in total per graph family *)
  List.iter (fun seed -> cache_flip_run seed 3500) [ 11; 12; 13; 14 ]

let test_cache_long_run () = cache_flip_run 99 12_000

let test_cache_rebuild () =
  (* bulk edits go through rebuild, not update *)
  let g = Digraph.of_edges ~nodes:3 [ (0, 1); (1, 2) ] in
  let active = [| true; true |] in
  let ws = Reach.workspace 3 in
  let cache = Reach.Cache.create ws g ~source:0 ~active:(fun e -> active.(e)) in
  Alcotest.(check bool) "reaches end" true (Reach.Cache.reaches cache 2);
  Alcotest.(check int) "source" 0 (Reach.Cache.source cache);
  active.(0) <- false;
  active.(1) <- false;
  Reach.Cache.rebuild cache ~active:(fun e -> active.(e));
  Alcotest.(check bool) "only source" false (Reach.Cache.reaches cache 1);
  Alcotest.(check bool) "source itself" true (Reach.Cache.reaches cache 0)

(* ---------- satisfied_ws agrees with satisfied ---------- *)

let test_satisfied_ws_agrees () =
  for seed = 1 to 40 do
    let rng = Rng.create (3000 + seed) in
    let nodes = 3 + Rng.int rng 12 in
    let max_edges = nodes * (nodes - 1) in
    let edges = min max_edges (2 + Rng.int rng (3 * nodes)) in
    let g = Gen.gnm rng ~nodes ~edges in
    let icm =
      Icm.create g (Array.init edges (fun _ -> 0.1 +. (0.8 *. Rng.uniform rng)))
    in
    let ws = Reach.workspace nodes in
    for _ = 1 to 10 do
      let s = Pseudo_state.sample rng icm in
      let k = 1 + Rng.int rng 4 in
      let raw =
        List.init k (fun _ ->
            (Rng.int rng nodes, Rng.int rng nodes, Rng.bool rng))
      in
      (* keep one condition per (src, dst): Conditions.v rejects
         contradictions *)
      let dedup =
        List.fold_left
          (fun acc (u, v, r) ->
            if List.exists (fun (u', v', _) -> u = u' && v = v') acc then acc
            else (u, v, r) :: acc)
          [] raw
      in
      let conds = Conditions.v dedup in
      let expected = Conditions.satisfied icm s conds in
      let got = Conditions.satisfied_ws ws icm s conds in
      if expected <> got then
        Alcotest.failf "seed %d: satisfied_ws disagrees (%b vs %b)" seed
          expected got
    done
  done

(* ---------- bit-for-bit chain regression vs the seed sampler ---------- *)

(* The seed implementation's step, replicated verbatim against the
   public API: fresh allocating `Conditions.satisfied` check on every
   accepted proposal. The incremental chain must walk the exact same
   trajectory — same RNG draws, same accept/reject decisions, same
   states — under a fixed seed. *)
module Seed_chain = struct
  type t = {
    icm : Icm.t;
    conditions : Conditions.t;
    state : Pseudo_state.t;
    weights : Fenwick.t;
    mutable z : float;
    mutable accepted : int;
  }

  let proposal_weight icm state e =
    let p = Icm.prob icm e in
    if Pseudo_state.get state e then 1.0 -. p else p

  let create rng icm conditions =
    let state =
      match Conditions.initial_state rng icm conditions with
      | Some s -> s
      | None -> failwith "Seed_chain.create: unsatisfiable conditions"
    in
    let weights =
      Fenwick.of_array
        (Array.init (Icm.n_edges icm) (proposal_weight icm state))
    in
    { icm; conditions; state; weights; z = Fenwick.total weights; accepted = 0 }

  let step rng t =
    if t.z > 0.0 then begin
      let e = Fenwick.sample rng t.weights in
      let w = Fenwick.get t.weights e in
      let z' = t.z +. 1.0 -. (2.0 *. w) in
      let a = if t.z < z' then t.z /. z' else 1.0 in
      if Rng.uniform rng <= a then begin
        Pseudo_state.flip t.state e;
        if Conditions.satisfied t.icm t.state t.conditions then begin
          t.accepted <- t.accepted + 1;
          Fenwick.set t.weights e (1.0 -. w);
          t.z <- Fenwick.total t.weights
        end
        else Pseudo_state.flip t.state e
      end
    end
end

let bit_for_bit_run ~seed ~conditions ~steps icm =
  let rng_a = Rng.create seed in
  let rng_b = Rng.create seed in
  let chain = Chain.create ~conditions rng_a icm in
  let reference = Seed_chain.create rng_b icm conditions in
  Alcotest.(check bool) "identical initial state" true
    (Pseudo_state.equal (Chain.state chain) reference.Seed_chain.state);
  for i = 1 to steps do
    Chain.step rng_a chain;
    Seed_chain.step rng_b reference;
    if not (Pseudo_state.equal (Chain.state chain) reference.Seed_chain.state)
    then Alcotest.failf "states diverge at step %d" i
  done;
  Alcotest.(check int) "same acceptance count"
    reference.Seed_chain.accepted
    (int_of_float
       (Chain.acceptance_rate chain *. float_of_int (Chain.steps_taken chain)
       +. 0.5));
  Alcotest.(check (float 0.0)) "same normaliser" reference.Seed_chain.z
    (Chain.normaliser chain)

let test_chain_bit_for_bit_conditioned () =
  let rng = Rng.create 515 in
  let nodes = 30 and edges = 120 in
  let g = Gen.gnm rng ~nodes ~edges in
  let probs =
    Array.init edges (fun e ->
        (* include clamped edges so determinism interacts with p=0/p=1 *)
        if e mod 17 = 0 then 1.0
        else if e mod 23 = 0 then 0.0
        else 0.1 +. (0.8 *. Rng.uniform rng))
  in
  let icm = Icm.create g probs in
  (* find a feasible positive pair and a negative condition *)
  let reach0 = Traverse.reachable_from g [ 0 ] in
  let dst = ref (-1) in
  Array.iteri (fun v r -> if r && v <> 0 && !dst < 0 then dst := v) reach0;
  Alcotest.(check bool) "test graph has a reachable pair" true (!dst >= 0);
  let conditions = Conditions.v [ (0, !dst, true) ] in
  bit_for_bit_run ~seed:616 ~conditions ~steps:4000 icm;
  (* mixed positive + negative conditions when feasible *)
  let neg = Conditions.v [ (0, !dst, true); (!dst, 0, false) ] in
  match Conditions.initial_state (Rng.create 717) icm neg with
  | None -> () (* infeasible on this topology; the positive run covered it *)
  | Some _ -> bit_for_bit_run ~seed:818 ~conditions:neg ~steps:4000 icm

let test_chain_bit_for_bit_unconditioned () =
  let rng = Rng.create 525 in
  let nodes = 20 and edges = 80 in
  let g = Gen.gnm rng ~nodes ~edges in
  let icm =
    Icm.create g (Array.init edges (fun _ -> 0.1 +. (0.8 *. Rng.uniform rng)))
  in
  bit_for_bit_run ~seed:626 ~conditions:Conditions.empty ~steps:4000 icm

(* ---------- estimator still matches the brute-force oracle ---------- *)

let test_estimator_with_workspace_vs_exact () =
  let rng = Rng.create 535 in
  let nodes = 7 and edges = 15 in
  let g = Gen.gnm rng ~nodes ~edges in
  let icm =
    Icm.create g (Array.init edges (fun _ -> 0.1 +. (0.8 *. Rng.uniform rng)))
  in
  let config = { Estimator.burn_in = 2000; thin = 10; samples = 6000 } in
  let truth = Iflow_core.Exact.brute_force_flow icm ~src:0 ~dst:6 in
  let estimate =
    Estimator.flow_probability (Rng.create 536) icm config ~src:0 ~dst:6
  in
  Alcotest.(check (float 0.03)) "flow vs exact" truth estimate

let () =
  Alcotest.run "iflow_reach"
    [
      ( "workspace",
        [
          Alcotest.test_case "matches Traverse" `Quick
            test_workspace_matches_traverse;
          Alcotest.test_case "reuse resets" `Quick test_workspace_reuse_resets;
          Alcotest.test_case "cheapest path prefers active" `Quick
            test_cheapest_path_prefers_zero_cost;
          Alcotest.test_case "cheapest path minimal" `Quick
            test_cheapest_path_cost_minimal;
        ] );
      ( "cache",
        [
          Alcotest.test_case "incremental vs fresh BFS" `Quick
            test_cache_vs_fresh_bfs;
          Alcotest.test_case "12k-flip long run" `Slow test_cache_long_run;
          Alcotest.test_case "rebuild" `Quick test_cache_rebuild;
        ] );
      ( "conditions",
        [
          Alcotest.test_case "satisfied_ws agrees" `Quick
            test_satisfied_ws_agrees;
        ] );
      ( "chain",
        [
          Alcotest.test_case "bit-for-bit (conditioned)" `Slow
            test_chain_bit_for_bit_conditioned;
          Alcotest.test_case "bit-for-bit (unconditioned)" `Slow
            test_chain_bit_for_bit_unconditioned;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "workspace estimator vs exact" `Slow
            test_estimator_with_workspace_vs_exact;
        ] );
    ]
