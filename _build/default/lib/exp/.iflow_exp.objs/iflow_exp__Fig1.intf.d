lib/exp/fig1.mli: Format Iflow_bucket Iflow_stats Scale
