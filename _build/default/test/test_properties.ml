(* Cross-module property and fuzz tests. *)
open Iflow_core
module Digraph = Iflow_graph.Digraph
module Gen = Iflow_graph.Gen
module Rng = Iflow_stats.Rng
module Tweet = Iflow_twitter.Tweet
module Preprocess = Iflow_twitter.Preprocess
module Estimator = Iflow_mcmc.Estimator
module Conditions = Iflow_mcmc.Conditions
module Delay = Iflow_mcmc.Delay

let qcheck tests =
  List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0 |])) tests

(* ---------- tweet parser fuzz ---------- *)

let printable_string =
  QCheck.(string_gen_of_size (Gen.int_range 0 200) Gen.printable)

let prop_parser_total =
  QCheck.Test.make ~count:500 ~name:"tweet parsers never raise" printable_string
    (fun text ->
      let _ = Tweet.mentions text in
      let _ = Tweet.hashtags text in
      let _ = Tweet.urls text in
      let _ = Tweet.retweet_chain text in
      true)

let prop_chain_root_is_suffix =
  QCheck.Test.make ~count:500 ~name:"retweet-chain root is a suffix"
    printable_string
    (fun text ->
      let _, root = Tweet.retweet_chain text in
      let n = String.length text and r = String.length root in
      r <= n && String.sub text (n - r) r = root)

let prop_chain_names_are_mentions =
  QCheck.Test.make ~count:300 ~name:"chain ancestors appear as mentions"
    QCheck.(pair (list_of_size Gen.(1 -- 4) (string_gen_of_size (Gen.return 3) (Gen.char_range 'a' 'z'))) printable_string)
    (fun (names, tail) ->
      let text =
        List.fold_right (fun n acc -> Printf.sprintf "RT @%s: %s" n acc) names tail
      in
      let chain, _ = Tweet.retweet_chain text in
      let mentions = Tweet.mentions text in
      List.for_all (fun n -> List.mem n mentions) chain)

let prop_cascades_total =
  QCheck.Test.make ~count:100 ~name:"cascade reconstruction never raises"
    QCheck.(list_of_size Gen.(0 -- 10) (pair printable_string small_nat))
    (fun rows ->
      let tweets =
        List.mapi
          (fun i (text, time) ->
            Tweet.make ~id:i ~author:(Printf.sprintf "u%d" (i mod 3)) ~time
              ~text)
          rows
      in
      let _ = Preprocess.cascades tweets in
      let _ = Preprocess.users tweets in
      true)

(* ---------- conditional sampling vs brute force ---------- *)

let prop_conditional_matches_brute_force =
  QCheck.Test.make ~count:5 ~name:"conditional MH matches brute force"
    QCheck.(int_range 0 500)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Gen.gnm rng ~nodes:6 ~edges:12 in
      let icm =
        Icm.create g (Array.init 12 (fun _ -> 0.15 +. (0.7 *. Rng.uniform rng)))
      in
      let conditions = [ (0, 2, true); (1, 5, false) ] in
      match Exact.brute_force_conditional icm ~conditions ~src:0 ~dst:4 with
      | truth -> (
        match
          Estimator.flow_probability
            ~conditions:(Conditions.v conditions)
            rng icm
            { Estimator.burn_in = 1500; thin = 8; samples = 4000 }
            ~src:0 ~dst:4
        with
        | estimate -> Float.abs (estimate -. truth) < 0.05
        | exception Failure _ -> false)
      | exception Failure _ -> true (* conditions infeasible: nothing to test *))

(* ---------- grow/remove round trip ---------- *)

let prop_grow_remove_roundtrip =
  QCheck.Test.make ~count:50 ~name:"grow then remove restores the model"
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Gen.gnm rng ~nodes:6 ~edges:10 in
      let model = Generator.default_beta_icm rng ~nodes:6 ~edges:0 in
      ignore model;
      let betas =
        Array.init 10 (fun _ ->
            Iflow_stats.Dist.Beta.v
              (1.0 +. Rng.uniform rng)
              (1.0 +. Rng.uniform rng))
      in
      let model = Beta_icm.create g betas in
      (* pick a fresh edge to add *)
      let rec fresh () =
        let s = Rng.int rng 6 and d = Rng.int rng 6 in
        if s <> d && not (Digraph.mem_edge g ~src:s ~dst:d) then (s, d)
        else fresh ()
      in
      let s, d = fresh () in
      let grown =
        Beta_icm.grow model ~new_nodes:0
          ~new_edges:[ (s, d, Iflow_stats.Dist.Beta.v 3.0 4.0) ]
      in
      let restored = Beta_icm.remove_edges grown [ (s, d) ] in
      Beta_icm.n_edges restored = 10
      && List.for_all
           (fun e ->
             let b = Beta_icm.edge_beta model e in
             let pair = (Digraph.edge_src g e, Digraph.edge_dst g e) in
             match
               Digraph.find_edge (Beta_icm.graph restored) ~src:(fst pair)
                 ~dst:(snd pair)
             with
             | Some e' ->
               let b' = Beta_icm.edge_beta restored e' in
               b.Iflow_stats.Dist.Beta.alpha = b'.Iflow_stats.Dist.Beta.alpha
               && b.Iflow_stats.Dist.Beta.beta = b'.Iflow_stats.Dist.Beta.beta
             | None -> false)
           (List.init 10 (fun e -> e)))

(* ---------- delay monotonicity ---------- *)

let prop_delay_monotone_in_active_set =
  QCheck.Test.make ~count:100
    ~name:"activating more edges never delays arrival"
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Gen.gnm rng ~nodes:8 ~edges:20 in
      let icm = Icm.const g 1.0 in
      let delays = Array.init 20 (fun _ -> Rng.uniform rng *. 5.0) in
      let active1 = Array.init 20 (fun _ -> Rng.bool rng) in
      let active2 = Array.mapi (fun _ a -> a || Rng.bool rng) active1 in
      let arrival active =
        Delay.earliest_arrival icm
          ~active:(fun e -> active.(e))
          ~delay:(fun e -> delays.(e))
          ~src:0 ~dst:7
      in
      match (arrival active1, arrival active2) with
      | None, _ -> true
      | Some _, None -> false
      | Some t1, Some t2 -> t2 <= t1 +. 1e-9)

(* ---------- summary totals ---------- *)

let prop_summary_totals =
  QCheck.Test.make ~count:80
    ~name:"summary observations bounded by usable traces"
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Gen.gnm rng ~nodes:8 ~edges:20 in
      let icm = Icm.create g (Array.init 20 (fun _ -> Rng.uniform rng)) in
      let traces =
        List.init 40 (fun _ -> Cascade.run_trace rng icm ~sources:[ Rng.int rng 8 ])
      in
      let sink = Rng.int rng 8 in
      let s = Summary.build g traces ~sink in
      Summary.total_observations s <= 40
      && Summary.total_leaks s <= Summary.total_observations s)

(* ---------- impact conservation ---------- *)

let prop_impact_samples_bounded =
  QCheck.Test.make ~count:10 ~name:"impact samples bounded by n - 1"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Gen.gnm rng ~nodes:7 ~edges:14 in
      let icm = Icm.create g (Array.init 14 (fun _ -> Rng.uniform rng)) in
      let samples =
        Estimator.impact_samples rng icm
          { Estimator.burn_in = 100; thin = 2; samples = 100 }
          ~src:0
      in
      Array.for_all (fun k -> k >= 0 && k <= 6) samples)

let () =
  Alcotest.run "iflow_properties"
    [
      ( "parser fuzz",
        qcheck
          [
            prop_parser_total; prop_chain_root_is_suffix;
            prop_chain_names_are_mentions; prop_cascades_total;
          ] );
      ( "sampling",
        qcheck
          [ prop_conditional_matches_brute_force; prop_impact_samples_bounded ]
      );
      ("models", qcheck [ prop_grow_remove_roundtrip; prop_summary_totals ]);
      ("delay", qcheck [ prop_delay_monotone_in_active_set ]);
    ]
