(** Edge latency — the extension sketched in the paper's Discussion:
    "assigning a delay distribution to each edge, and sample from these
    distributions for each sample from the posterior, i.e., assigning a
    weight to each edge that represents a time, and running a shortest
    path algorithm."

    For each retained pseudo-state of the Metropolis-Hastings chain, we
    draw a delay for every active edge and compute the earliest arrival
    time from source to sink over the active subgraph (Dijkstra). The
    result is a sample of the {i time-to-flow} distribution, including
    its defective mass (the probability the flow never happens). *)

type dist =
  | Constant of float
  | Uniform of float * float
  | Exponential of float (** mean *)
  | Gamma of { shape : float; scale : float }

val sample_dist : Iflow_stats.Rng.t -> dist -> float
(** Non-negative delay sample. Raises [Invalid_argument] on
    non-positive parameters. *)

type t

val create : Iflow_core.Icm.t -> dist array -> t
(** One delay distribution per edge. *)

val uniform_delay : Iflow_core.Icm.t -> dist -> t
(** The same distribution on every edge. *)

val icm : t -> Iflow_core.Icm.t

type arrival_sample = {
  reached : int; (** retained samples in which the flow existed *)
  missed : int; (** retained samples with no flow *)
  times : float array; (** arrival time for each reaching sample *)
}

val arrival_samples :
  ?conditions:Conditions.t ->
  Iflow_stats.Rng.t -> t -> Estimator.config -> src:int -> dst:int ->
  arrival_sample

val probability_within :
  ?conditions:Conditions.t ->
  Iflow_stats.Rng.t -> t -> Estimator.config -> src:int -> dst:int ->
  deadline:float -> float
(** [Pr (src ~> dst within deadline)] — flow probability weighted by the
    latency race, the risk-aware quantity a response team cares about. *)

val earliest_arrival :
  Iflow_core.Icm.t -> active:(int -> bool) -> delay:(int -> float) ->
  src:int -> dst:int -> float option
(** Dijkstra over the active edges with the given per-edge delays;
    [None] when [dst] is unreachable. Exposed for tests. *)
