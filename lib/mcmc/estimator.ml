module Icm = Iflow_core.Icm
module Pseudo_state = Iflow_core.Pseudo_state
module Reach = Iflow_graph.Reach
module Rng = Iflow_stats.Rng

type config = { burn_in : int; thin : int; samples : int }

let default_config = { burn_in = 1000; thin = 20; samples = 1000 }
let quick_config = { burn_in = 300; thin = 5; samples = 400 }

let validate { burn_in; thin; samples } =
  if burn_in < 0 || thin < 1 || samples < 1 then
    invalid_arg "Estimator: bad config"

exception Cancelled

let () =
  Printexc.register_printer (function
    | Cancelled -> Some "Iflow_mcmc.Estimator.Cancelled"
    | _ -> None)

type stream = {
  chain : Chain.t;
  stream_rng : Rng.t;
  stream_thin : int;
  stream_cancel : Cancel.t;
}

(* Cancellation granularity inside the burn-in: the token is polled
   every [burnin_chunk] MH steps. Chunking [Chain.advance] is exact —
   the step/RNG sequence is identical to one big advance (the only
   repeated work is the metrics flush) — so an unexpired token cannot
   perturb the chain. *)
let burnin_chunk = 128

let stream ?(cancel = Cancel.none) ?conditions rng icm ~burn_in ~thin =
  if burn_in < 0 || thin < 1 then invalid_arg "Estimator.stream: bad config";
  if Cancel.cancelled cancel then raise Cancelled;
  let chain = Chain.create ?conditions rng icm in
  Iflow_obs.Trace.with_span "mcmc.burnin"
    ~args:[ ("steps", Iflow_obs.Trace.Int burn_in) ]
    (fun () ->
      let remaining = ref burn_in in
      while !remaining > 0 do
        let k = min burnin_chunk !remaining in
        Chain.advance rng chain k;
        remaining := !remaining - k;
        if !remaining > 0 && Cancel.cancelled cancel then raise Cancelled
      done);
  { chain; stream_rng = rng; stream_thin = thin; stream_cancel = cancel }

let stream_next st ~f =
  if Cancel.cancelled st.stream_cancel then raise Cancelled;
  Chain.advance st.stream_rng st.chain st.stream_thin;
  f (Chain.state st.chain)

let stream_chain st = st.chain
let stream_workspace st = Chain.workspace st.chain

let fold_samples_ws ?conditions rng icm config ~init ~f =
  validate config;
  let st = stream ?conditions rng icm ~burn_in:config.burn_in ~thin:config.thin in
  let ws = Chain.workspace st.chain in
  let acc = ref init in
  for _ = 1 to config.samples do
    acc := stream_next st ~f:(fun state -> f !acc ws state)
  done;
  !acc

let fold_samples ?conditions rng icm config ~init ~f =
  fold_samples_ws ?conditions rng icm config ~init ~f:(fun acc _ws state ->
      f acc state)

let flow_probability ?conditions rng icm config ~src ~dst =
  let hits =
    fold_samples_ws ?conditions rng icm config ~init:0 ~f:(fun acc ws state ->
        if Pseudo_state.flow_ws ws icm state ~src ~dst then acc + 1 else acc)
  in
  float_of_int hits /. float_of_int config.samples

let conditional_flow_by_ratio rng icm config ~conditions ~src ~dst =
  let joint, satisfied =
    fold_samples_ws rng icm config ~init:(0, 0)
      ~f:(fun (joint, satisfied) ws state ->
        if Conditions.satisfied_ws ws icm state conditions then begin
          let satisfied = satisfied + 1 in
          if Pseudo_state.flow_ws ws icm state ~src ~dst then
            (joint + 1, satisfied)
          else (joint, satisfied)
        end
        else (joint, satisfied))
  in
  if satisfied = 0 then
    failwith "Estimator.conditional_flow_by_ratio: no sample satisfied C";
  float_of_int joint /. float_of_int satisfied

let source_to_all ?conditions rng icm config ~src =
  let n = Icm.n_nodes icm in
  let counts = Array.make n 0 in
  let () =
    fold_samples_ws ?conditions rng icm config ~init:() ~f:(fun () ws state ->
        Pseudo_state.reachable_ws ws icm state ~sources:[ src ];
        for v = 0 to n - 1 do
          if Reach.marked ws v then counts.(v) <- counts.(v) + 1
        done)
  in
  Array.map (fun c -> float_of_int c /. float_of_int config.samples) counts

let community_flow ?conditions rng icm config ~src ~sinks =
  let hits =
    fold_samples_ws ?conditions rng icm config ~init:0 ~f:(fun acc ws state ->
        Pseudo_state.reachable_ws ws icm state ~sources:[ src ];
        if List.for_all (fun v -> Reach.marked ws v) sinks then acc + 1
        else acc)
  in
  float_of_int hits /. float_of_int config.samples

let joint_flow ?conditions rng icm config ~flows =
  let hits =
    fold_samples_ws ?conditions rng icm config ~init:0 ~f:(fun acc ws state ->
        let all =
          List.for_all
            (fun (u, v) -> Pseudo_state.flow_ws ws icm state ~src:u ~dst:v)
            flows
        in
        if all then acc + 1 else acc)
  in
  float_of_int hits /. float_of_int config.samples

let impact_samples ?conditions rng icm config ~src =
  let n = Icm.n_nodes icm in
  let out = Array.make config.samples 0 in
  let i = ref 0 in
  let () =
    fold_samples_ws ?conditions rng icm config ~init:() ~f:(fun () ws state ->
        Pseudo_state.reachable_ws ws icm state ~sources:[ src ];
        let count = ref 0 in
        for v = 0 to n - 1 do
          if v <> src && Reach.marked ws v then incr count
        done;
        out.(!i) <- !count;
        incr i)
  in
  out
