test/test_stats.ml: Alcotest Array Descriptive Dist Fenwick Float Gen Iflow_stats List Measures Printf QCheck QCheck_alcotest Random Rng Special
