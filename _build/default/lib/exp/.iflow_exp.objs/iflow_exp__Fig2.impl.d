lib/exp/fig2.ml: Array Beta_icm Format Iflow_bucket Iflow_core Iflow_graph Iflow_mcmc Iflow_stats List Printf Scale Twitter_lab
