(** Failpoint injection registry, after the FreeBSD and Rust [fail]
    crates: named points planted at failure-prone sites raise
    {!Injected} when armed, and cost one atomic load and a branch when
    not — cheap enough to leave compiled into production binaries at
    per-line / per-round call frequency (pinned by BENCH_PR5).

    Arm points programmatically ({!arm}) in tests, or through the
    [IFLOW_FAILPOINTS] environment variable in chaos runs:

    {[ IFLOW_FAILPOINTS="snapshot.rename=1%raise;runner.read=3*raise" ]}

    Each entry is [name=task] with task [[P%][N*]raise] (fire with
    probability [P]% at most [N] times) or [off]. The name [*] is a
    catch-all matched when no specific entry exists. Probability
    triggers draw from a deterministic splitmix64 stream seeded by
    [IFLOW_FAILPOINTS_SEED], so a chaos run is reproducible. A
    malformed spec in the environment aborts the process at link time
    (exit 2) rather than running with silently disarmed chaos. *)

exception Injected of string
(** Raised by an armed {!point}, carrying the point's name. *)

val point : string -> unit
(** [point name] does nothing unless the registry is armed and an entry
    for [name] (or ["*"]) triggers, in which case it raises
    [Injected name]. *)

val enabled : unit -> bool
(** Whether any point is currently armed. *)

val arm : ?prob:float -> ?count:int -> string -> unit
(** Arm [name]: fire with probability [prob] (default 1) per
    evaluation, at most [count] times (default unlimited). Raises
    [Invalid_argument] on [prob] outside [0, 1] or [count < 1]. *)

val disarm : string -> unit
val reset : unit -> unit
(** Disarm one point / every point. *)

val hits : string -> int
(** How many times the named entry has fired since it was armed. *)

val configure : string -> (unit, string) result
(** Parse and apply a spec string (the [IFLOW_FAILPOINTS] grammar
    above). Entries are applied left to right; [Error] describes the
    first malformed entry. *)

val setup_from_env : unit -> (unit, string) result
(** Re-read [IFLOW_FAILPOINTS] and [IFLOW_FAILPOINTS_SEED]. Called
    automatically when the library is linked. *)

val set_seed : int -> unit
(** Reseed the probability-trigger stream. *)

val env_var : string
val env_seed_var : string
