(** Structured trace spans, written as Chrome [trace_event] records so
    a run opens directly in [chrome://tracing] or Perfetto.

    The sink is a process-global JSONL file: one event object per line,
    wrapped in a JSON array ([[] on open, [\]] on {!close}) — the exact
    shape both viewers ingest; a crash that skips {!close} leaves an
    unterminated array, which they also accept. Each record carries
    [{name, ph, ts, dur, pid, tid, args}] with [ts]/[dur] in
    microseconds from {!Clock}, [tid] the recording domain's id.

    Tracing is independent of {!Metrics} recording: a span with no sink
    installed costs one load and a branch, and never touches the
    clock. Writers from multiple domains serialise on one mutex — spans
    are per-query / per-publish constructs, not per-MH-step ones. *)

type arg = Int of int | Float of float | Str of string

val to_file : string -> unit
(** Install a sink writing to [path] (truncates). Replaces (and
    closes) any previous sink, and registers an [at_exit] {!close}
    exactly once per process — repeated installs are idempotent about
    the hook, so normal exits always terminate the JSON array. Raises
    [Sys_error] like [open_out]. *)

val close : unit -> unit
(** Terminate the JSON array and close the sink. Idempotent; a no-op
    when no sink is installed. *)

val enabled : unit -> bool

val with_span : string -> ?args:(string * arg) list -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] and emits one complete ("ph":"X") event
    covering it, exceptional exits included. When no sink is installed
    this is just [f ()]. *)

val instant : string -> ?args:(string * arg) list -> unit -> unit
(** Emit an instant ("ph":"i") event, e.g. a drift alert. *)

val complete : ?args:(string * arg) list -> string -> ts_ns:int ->
  dur_ns:int -> unit
(** Emit a complete event from an externally measured interval. *)

val flow_id : string -> int
(** Hash a request id into the numeric flow id viewers key arrows on. *)

val flow_start : ?args:(string * arg) list -> string -> id:int -> unit
(** Emit a flow-start ("ph":"s") event. Emit it from inside the span
    where the request is admitted; the matching {!flow_finish} on
    another domain draws the cross-thread arrow. *)

val flow_step : ?args:(string * arg) list -> string -> id:int -> unit
(** Emit a flow-step ("ph":"t") event — an intermediate hop (e.g. the
    first MH chain task picking the request up on a pool domain). *)

val flow_finish : ?args:(string * arg) list -> string -> id:int -> unit
(** Emit a flow-finish ("ph":"f", binding to the enclosing slice) event
    from the domain that completed the request's work. *)
