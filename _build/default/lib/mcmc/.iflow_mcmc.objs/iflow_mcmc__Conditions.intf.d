lib/mcmc/conditions.mli: Format Iflow_core Iflow_stats
