let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.variance: empty";
  if n = 1 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let std xs = Float.sqrt (variance xs)

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Descriptive.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.quantile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Descriptive.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let i = int_of_float (Float.floor pos) in
  if i >= n - 1 then sorted.(n - 1)
  else begin
    let frac = pos -. float_of_int i in
    (sorted.(i) *. (1.0 -. frac)) +. (sorted.(i + 1) *. frac)
  end

let median xs = quantile xs 0.5

let autocorrelation xs ~lag =
  let n = Array.length xs in
  if lag < 0 || lag >= n then invalid_arg "Descriptive.autocorrelation: lag";
  let m = mean xs in
  let denom = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
  if denom <= 0.0 then 0.0
  else begin
    let acc = ref 0.0 in
    for i = 0 to n - lag - 1 do
      acc := !acc +. ((xs.(i) -. m) *. (xs.(i + lag) -. m))
    done;
    !acc /. denom
  end

let effective_sample_size xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.effective_sample_size: empty";
  if n = 1 then 1.0
  else begin
    let rho_sum = ref 0.0 in
    (try
       for lag = 1 to n - 1 do
         let rho = autocorrelation xs ~lag in
         if rho <= 0.0 then raise Exit;
         rho_sum := !rho_sum +. rho
       done
     with Exit -> ());
    float_of_int n /. (1.0 +. (2.0 *. !rho_sum))
  end

type histogram = {
  lo : float;
  hi : float;
  counts : int array;
  underflow : int;
  overflow : int;
}

let histogram ?lo ?hi ~bins xs =
  if bins <= 0 then invalid_arg "Descriptive.histogram: bins <= 0";
  if Array.length xs = 0 then invalid_arg "Descriptive.histogram: empty";
  let sample_lo, sample_hi = min_max xs in
  let lo = Option.value lo ~default:sample_lo in
  let hi = Option.value hi ~default:sample_hi in
  let hi = if hi > lo then hi else lo +. 1.0 in
  let counts = Array.make bins 0 in
  let underflow = ref 0 and overflow = ref 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      if x < lo then incr underflow
      else if x > hi then incr overflow
      else begin
        let b = int_of_float ((x -. lo) /. width) in
        let b = if b >= bins then bins - 1 else b in
        counts.(b) <- counts.(b) + 1
      end)
    xs;
  { lo; hi; counts; underflow = !underflow; overflow = !overflow }

let histogram_bin_center h i =
  let bins = Array.length h.counts in
  let width = (h.hi -. h.lo) /. float_of_int bins in
  h.lo +. ((float_of_int i +. 0.5) *. width)

let pp_histogram ppf h =
  let max_count = Array.fold_left max 1 h.counts in
  Array.iteri
    (fun i c ->
      let bar_len = c * 40 / max_count in
      Format.fprintf ppf "%8.4f | %6d %s@." (histogram_bin_center h i) c
        (String.make bar_len '#'))
    h.counts;
  if h.underflow > 0 || h.overflow > 0 then
    Format.fprintf ppf "(underflow %d, overflow %d)@." h.underflow h.overflow
