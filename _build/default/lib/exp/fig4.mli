(** Fig 4: predicted vs actual impact (number of retweeting users).

    The trained betaICM's impact distribution for a focus user (sampled
    with Metropolis-Hastings) against the retweet counts of that user's
    held-out cascades. The paper found a similar range with the mean
    somewhat overestimated. *)

type result = {
  focus : int;
  predicted : int array; (** sampled impact per retained MH state *)
  actual : int array; (** retweeters per held-out cascade *)
}

val run : Scale.t -> Iflow_stats.Rng.t -> Twitter_lab.t -> result
val report :
  Scale.t -> Iflow_stats.Rng.t -> Twitter_lab.t -> Format.formatter -> result
