lib/learn/joint_bayes.mli: Iflow_core Iflow_stats Trainer
