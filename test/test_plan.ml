(* Tests for the exact-oracle query planner (lib/plan): cone
   extraction, the soundness certificate, the generalised Eq. 2
   evaluator, and the engine routing built on them. The contract under
   test: the planner answers exactly or refuses — it never
   approximates — and whatever it answers agrees with brute-force
   pseudo-state enumeration. *)

module Icm = Iflow_core.Icm
module Exact = Iflow_core.Exact
module Digraph = Iflow_graph.Digraph
module Gen = Iflow_graph.Gen
module Rng = Iflow_stats.Rng
module Cone = Iflow_plan.Cone
module Exact_eval = Iflow_plan.Exact_eval
module Planner = Iflow_plan.Planner
module Engine = Iflow_engine.Engine
module Query = Iflow_engine.Query
module Metrics = Iflow_obs.Metrics

let check_close ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let icm_of ~nodes edges probs =
  Icm.create (Digraph.of_edges ~nodes edges) (Array.of_list probs)

let plan ?budget icm ~targets ~conditions =
  Planner.plan ?budget icm ~targets ~conditions

let value_exn = function
  | Ok (e : Planner.exact) -> e
  | Error r -> Alcotest.failf "expected exact plan, got fallback %s"
                 (Planner.reason_label r)

let reason_exn = function
  | Ok (_ : Planner.exact) -> Alcotest.fail "expected a fallback, got exact"
  | Error r -> r

(* ---------- cone extraction ---------- *)

let test_cone_extraction () =
  (* 0 -> 1 -> 2 -> 3 plus a distractor component 4 -> 5 and a dead-end
     1 -> 4: the (0, 3) cone must be exactly the path *)
  let icm =
    icm_of ~nodes:6
      [ (0, 1); (1, 2); (2, 3); (1, 4); (4, 5) ]
      [ 0.5; 0.5; 0.5; 0.9; 0.9 ]
  in
  (match Cone.extract icm ~src:0 ~dst:3 with
  | None -> Alcotest.fail "reachable pair produced no cone"
  | Some c ->
    Alcotest.(check int) "cone nodes" 4 (Cone.n_nodes c);
    Alcotest.(check int) "cone edges" 3 (Cone.n_edges c);
    Alcotest.(check (array int)) "node map" [| 0; 1; 2; 3 |] c.Cone.node_of_sub;
    Alcotest.(check int) "local src" 0 (Cone.local c 0);
    Alcotest.check Alcotest.bool "outside raises" true
      (match Cone.local c 5 with
      | exception Not_found -> true
      | _ -> false));
  (* unreachable: no cone *)
  Alcotest.check Alcotest.bool "unreachable" true
    (Cone.extract icm ~src:3 ~dst:0 = None);
  (* a zero-probability edge cannot carry flow: cone ignores it *)
  let icm0 =
    icm_of ~nodes:3 [ (0, 1); (1, 2) ] [ 0.5; 0.0 ]
  in
  Alcotest.check Alcotest.bool "zero-prob edge breaks the cone" true
    (Cone.extract icm0 ~src:0 ~dst:2 = None);
  Alcotest.check Alcotest.bool "src = dst rejected" true
    (match Cone.extract icm ~src:1 ~dst:1 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- tree tier: unique path, product form ---------- *)

let test_path_product () =
  let icm =
    icm_of ~nodes:4 [ (0, 1); (1, 2); (2, 3) ] [ 0.3; 0.7; 0.9 ]
  in
  let e = value_exn (plan icm ~targets:[ (0, 3) ] ~conditions:[]) in
  check_close "product of path probabilities" (0.3 *. 0.7 *. 0.9)
    e.Planner.value;
  check_close "matches Eq. 2" (Exact.flow_probability icm ~src:0 ~dst:3)
    e.Planner.value;
  match e.Planner.targets with
  | [ tp ] ->
    Alcotest.(check (option (list int))) "unique path reported"
      (Some [ 0; 1; 2; 3 ]) tp.Planner.path
  | _ -> Alcotest.fail "one target expected"

(* ---------- certified non-tree shapes match brute force ---------- *)

let diamond = [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_diamond_exact () =
  let icm = icm_of ~nodes:4 diamond [ 0.5; 0.5; 0.5; 0.5 ] in
  let e = value_exn (plan icm ~targets:[ (0, 3) ] ~conditions:[]) in
  check_close "diamond vs brute force"
    (Exact.brute_force_flow icm ~src:0 ~dst:3)
    e.Planner.value

let test_double_diamond_exact () =
  (* two diamonds in series — the second join's parents both descend
     from the first join, but only through src-side history that the
     cone ancestor test correctly attributes: all sharing is at node 3,
     which is NOT the source, so this must be refused ... unless the
     parent flows are measured from node 3 onward. Eq. 2's factors are
     flows from src, so sharing at node 3 is real: refused. *)
  let edges =
    [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4); (3, 5); (4, 6); (5, 6) ]
  in
  let icm = icm_of ~nodes:7 edges [ 0.5; 0.5; 0.5; 0.5; 0.5; 0.5; 0.5; 0.5 ] in
  (match reason_exn (plan icm ~targets:[ (0, 6) ] ~conditions:[]) with
  | Planner.Unsound_join { node } -> Alcotest.(check int) "join" 6 node
  | r -> Alcotest.failf "wrong reason %s" (Planner.reason_label r));
  (* asked from the bottleneck itself, the second diamond is sound *)
  let e = value_exn (plan icm ~targets:[ (3, 6) ] ~conditions:[]) in
  check_close "second diamond from its own source"
    (Exact.brute_force_flow icm ~src:3 ~dst:6)
    e.Planner.value

let test_triangle_and_cycle_exact () =
  (* the paper's triangle: join at 2 shares only the source *)
  let tri = icm_of ~nodes:3 [ (0, 1); (1, 2); (0, 2) ] [ 0.6; 0.7; 0.2 ] in
  let e = value_exn (plan tri ~targets:[ (0, 2) ] ~conditions:[]) in
  check_close "triangle vs brute force"
    (Exact.brute_force_flow tri ~src:0 ~dst:2)
    e.Planner.value;
  (* a 2-cycle hanging off the path: 0 -> 1 <-> 2, dst 2 *)
  let cyc = icm_of ~nodes:3 [ (0, 1); (1, 2); (2, 1) ] [ 0.5; 0.5; 0.5 ] in
  let e = value_exn (plan cyc ~targets:[ (0, 2) ] ~conditions:[]) in
  check_close "cycle vs brute force"
    (Exact.brute_force_flow cyc ~src:0 ~dst:2)
    e.Planner.value

(* ---------- the documented overestimate is refused ---------- *)

(* DESIGN.md's bottleneck: both parents of the sink flow through node 1,
   Eq. 2 says 0.234375 where the truth is 0.21875 *)
let bottleneck = [ (0, 1); (1, 2); (1, 3); (2, 4); (3, 4) ]

let test_bottleneck_refused () =
  let icm = icm_of ~nodes:5 bottleneck [ 0.5; 0.5; 0.5; 0.5; 0.5 ] in
  (match reason_exn (plan icm ~targets:[ (0, 4) ] ~conditions:[]) with
  | Planner.Unsound_join { node } -> Alcotest.(check int) "join node" 4 node
  | r -> Alcotest.failf "wrong reason %s" (Planner.reason_label r));
  (* and the value Eq. 2 would have produced really is wrong *)
  let eq2 = Exact.flow_probability icm ~src:0 ~dst:4 in
  let truth = Exact.brute_force_flow icm ~src:0 ~dst:4 in
  Alcotest.check Alcotest.bool "Eq. 2 overestimates here" true
    (eq2 > truth +. 1e-6)

(* ---------- budget ---------- *)

let test_budget_refusal () =
  let icm = icm_of ~nodes:4 diamond [ 0.5; 0.5; 0.5; 0.5 ] in
  match reason_exn (plan ~budget:1 icm ~targets:[ (0, 3) ] ~conditions:[]) with
  | Planner.Budget_exceeded -> ()
  | r -> Alcotest.failf "wrong reason %s" (Planner.reason_label r)

(* ---------- trivial targets ---------- *)

let test_trivial_targets () =
  let icm = icm_of ~nodes:4 [ (0, 1); (2, 3) ] [ 0.5; 0.5 ] in
  let e = value_exn (plan icm ~targets:[ (1, 1) ] ~conditions:[]) in
  check_close "src = dst is certainty" 1.0 e.Planner.value;
  let e = value_exn (plan icm ~targets:[ (0, 3) ] ~conditions:[]) in
  check_close "unreachable is impossibility" 0.0 e.Planner.value

(* ---------- conditions ---------- *)

let test_conditions () =
  (* target component 0 -> 1 -> 2; condition component 3 -> 4 *)
  let icm =
    icm_of ~nodes:5 [ (0, 1); (1, 2); (3, 4) ] [ 0.4; 0.6; 0.3 ]
  in
  (* independent feasible condition: cancels out of the conditional *)
  let e =
    value_exn (plan icm ~targets:[ (0, 2) ] ~conditions:[ (3, 4, true) ])
  in
  check_close "independent condition cancels"
    (Exact.brute_force_conditional icm ~conditions:[ (3, 4, true) ] ~src:0
       ~dst:2)
    e.Planner.value;
  (* vacuous negative condition (on an impossible flow): dropped *)
  let e =
    value_exn (plan icm ~targets:[ (0, 2) ] ~conditions:[ (4, 3, false) ])
  in
  Alcotest.(check int) "vacuous negative dropped" 1
    e.Planner.dropped_conditions;
  check_close "value unchanged" (0.4 *. 0.6) e.Planner.value;
  (* infeasible positive condition: impossible flow demanded *)
  (match
     reason_exn (plan icm ~targets:[ (0, 2) ] ~conditions:[ (4, 3, true) ])
   with
  | Planner.Condition_infeasible { c_src = 4; c_dst = 3; want = true } -> ()
  | r -> Alcotest.failf "wrong reason %s" (Planner.reason_label r));
  (* infeasible negative condition: a certain flow denied *)
  let certain =
    icm_of ~nodes:5 [ (0, 1); (1, 2); (3, 4) ] [ 0.4; 0.6; 1.0 ]
  in
  (match
     reason_exn
       (plan certain ~targets:[ (0, 2) ] ~conditions:[ (3, 4, false) ])
   with
  | Planner.Condition_infeasible { want = false; _ } -> ()
  | r -> Alcotest.failf "wrong reason %s" (Planner.reason_label r));
  (* condition sharing an edge with the target cone: refused *)
  match
    reason_exn (plan icm ~targets:[ (0, 2) ] ~conditions:[ (0, 1, true) ])
  with
  | Planner.Condition_overlap -> ()
  | r -> Alcotest.failf "wrong reason %s" (Planner.reason_label r)

(* ---------- community / joint products ---------- *)

let test_community_product () =
  let icm = icm_of ~nodes:3 [ (0, 1); (0, 2) ] [ 0.35; 0.8 ] in
  let e =
    value_exn (plan icm ~targets:[ (0, 1); (0, 2) ] ~conditions:[])
  in
  check_close "star community vs brute force"
    (Exact.brute_force_community icm ~src:0 ~sinks:[ 1; 2 ])
    e.Planner.value

let test_target_overlap_refused () =
  let icm = icm_of ~nodes:3 [ (0, 1); (1, 2) ] [ 0.5; 0.5 ] in
  match reason_exn (plan icm ~targets:[ (0, 2); (1, 2) ] ~conditions:[]) with
  | Planner.Target_overlap -> ()
  | r -> Alcotest.failf "wrong reason %s" (Planner.reason_label r)

(* ---------- Exact.flow_probability_checked ---------- *)

let test_checked_exact () =
  let icm = icm_of ~nodes:4 diamond [ 0.5; 0.5; 0.5; 0.5 ] in
  (match Exact.flow_probability_checked icm ~src:0 ~dst:3 with
  | Ok p ->
    Alcotest.check Alcotest.bool "bit-equal to unchecked" true
      (Int64.equal (Int64.bits_of_float p)
         (Int64.bits_of_float (Exact.flow_probability icm ~src:0 ~dst:3)))
  | Error e -> Alcotest.failf "diamond refused: %a" Exact.pp_error e);
  let bn = icm_of ~nodes:5 bottleneck [ 0.5; 0.5; 0.5; 0.5; 0.5 ] in
  (match Exact.flow_probability_checked bn ~src:0 ~dst:4 with
  | Error (Exact.Unsound { join }) -> Alcotest.(check int) "join" 4 join
  | Ok _ -> Alcotest.fail "bottleneck accepted"
  | Error e -> Alcotest.failf "wrong error: %a" Exact.pp_error e);
  (match Exact.flow_probability_checked icm ~src:3 ~dst:0 with
  | Ok p -> check_close "unreachable" 0.0 p
  | Error e -> Alcotest.failf "unreachable errored: %a" Exact.pp_error e);
  (match Exact.flow_probability_checked icm ~src:2 ~dst:2 with
  | Ok p -> check_close "self" 1.0 p
  | Error e -> Alcotest.failf "self errored: %a" Exact.pp_error e);
  let big = Gen.path 80 in
  let bicm = Icm.create big (Array.make (Digraph.n_edges big) 0.5) in
  match Exact.flow_probability_checked bicm ~src:0 ~dst:79 with
  | Error (Exact.Too_large { nodes = 80; limit = 62 }) -> ()
  | Ok _ -> Alcotest.fail "80 nodes accepted by the bitmask recursion"
  | Error e -> Alcotest.failf "wrong error: %a" Exact.pp_error e

(* ---------- properties ---------- *)

let random_tree_icm rng ~nodes =
  let edges = ref [] and probs = ref [] in
  for v = 1 to nodes - 1 do
    let parent = Rng.int rng v in
    edges := (parent, v) :: !edges;
    probs := (0.1 +. (0.85 *. Rng.uniform rng)) :: !probs
  done;
  icm_of ~nodes (List.rev !edges) (List.rev !probs)

let prop_trees_exact =
  QCheck.Test.make ~count:100 ~name:"random trees certify and match truth"
    QCheck.(pair (int_range 2 12) (int_range 0 10_000))
    (fun (nodes, seed) ->
      let rng = Rng.create seed in
      let icm = random_tree_icm rng ~nodes in
      let dst = 1 + Rng.int rng (nodes - 1) in
      let e = value_exn (plan icm ~targets:[ (0, dst) ] ~conditions:[]) in
      Float.abs (e.Planner.value -. Exact.brute_force_flow icm ~src:0 ~dst)
      <= 1e-12)

let prop_certified_matches_brute_force =
  (* arbitrary dense digraphs: whenever the planner certifies, the
     answer must equal enumeration; refusals just skip *)
  QCheck.Test.make ~count:100 ~name:"certified answers equal enumeration"
    QCheck.(triple (int_range 3 7) (int_range 3 16) (int_range 0 10_000))
    (fun (nodes, edges, seed) ->
      (* qcheck shrinking can step outside int_range: clamp *)
      let nodes = max 2 nodes and edges = max 1 edges in
      let edges = min edges (nodes * (nodes - 1)) in
      let rng = Rng.create seed in
      let g = Gen.gnm rng ~nodes ~edges in
      let icm =
        Icm.create g
          (Array.init edges (fun _ -> 0.05 +. (0.9 *. Rng.uniform rng)))
      in
      let dst = 1 + Rng.int rng (nodes - 1) in
      match plan icm ~targets:[ (0, dst) ] ~conditions:[] with
      | Error _ -> true
      | Ok e ->
        Float.abs (e.Planner.value -. Exact.brute_force_flow icm ~src:0 ~dst)
        <= 1e-9)

let prop_shared_bottleneck_refused =
  (* 0 -> 1 fans out to b branches that reconverge on the sink: every
     pair of sink parents shares node 1, so certification must fail *)
  QCheck.Test.make ~count:50 ~name:"shared bottlenecks always refused"
    QCheck.(pair (int_range 2 6) (int_range 0 10_000))
    (fun (branches, seed) ->
      let rng = Rng.create seed in
      let sink = branches + 2 in
      let edges =
        (0, 1)
        :: List.concat
             (List.init branches (fun i ->
                  [ (1, 2 + i); (2 + i, sink) ]))
      in
      let probs =
        List.map (fun _ -> 0.1 +. (0.85 *. Rng.uniform rng)) edges
      in
      let icm = icm_of ~nodes:(sink + 1) edges probs in
      match plan icm ~targets:[ (0, sink) ] ~conditions:[] with
      | Error (Planner.Unsound_join _) -> true
      | _ -> false)

(* ---------- engine routing ---------- *)

let fast_config =
  {
    Engine.default_config with
    Engine.chains = 2;
    domains = Some 1;
    burn_in = 100;
    thin = 2;
    round_samples = 100;
    max_samples = 2000;
    rhat_target = 1.2;
    mcse_target = 0.05;
  }

let test_engine_routes_exact () =
  let icm = icm_of ~nodes:3 [ (0, 1); (1, 2) ] [ 0.5; 0.5 ] in
  let engine = Engine.create ~config:fast_config ~seed:7 icm in
  let r = Engine.query engine (Query.flow ~src:0 ~dst:2 ()) in
  check_close "exact value" 0.25 r.Engine.estimate;
  (match r.Engine.plan with
  | Engine.Plan_exact { cone_nodes; validated } ->
    Alcotest.(check int) "cone size" 3 cone_nodes;
    Alcotest.(check bool) "not validated" false validated
  | Engine.Plan_mh _ -> Alcotest.fail "path query was not planned exact");
  check_close "all diagnostics finite and trivial" 1.0 r.Engine.rhat;
  Alcotest.(check int) "no samples drawn" 0 r.Engine.total_samples;
  Alcotest.(check int) "no chains used" 0 r.Engine.chains_used;
  (* exact answers are cached like sampled ones *)
  let r2 = Engine.query engine (Query.flow ~src:0 ~dst:2 ()) in
  Alcotest.(check bool) "second ask cached" true r2.Engine.cached;
  check_close "cached value identical" r.Engine.estimate r2.Engine.estimate

let test_engine_fallback_tagged () =
  let icm = icm_of ~nodes:5 bottleneck [ 0.5; 0.5; 0.5; 0.5; 0.5 ] in
  let engine = Engine.create ~config:fast_config ~seed:7 icm in
  let r = Engine.query engine (Query.flow ~src:0 ~dst:4 ()) in
  (match r.Engine.plan with
  | Engine.Plan_mh { fallback = Some "unsound_join" } -> ()
  | Engine.Plan_mh { fallback } ->
    Alcotest.failf "wrong fallback tag %s"
      (Option.value fallback ~default:"<none>")
  | Engine.Plan_exact _ -> Alcotest.fail "bottleneck answered exactly");
  Alcotest.(check bool) "sampled" true (r.Engine.total_samples > 0)

let test_engine_mh_bit_identical () =
  (* on a query the planner refuses, answers must be bit-for-bit what a
     planner-less engine produces *)
  let icm = icm_of ~nodes:5 bottleneck [ 0.5; 0.5; 0.5; 0.5; 0.5 ] in
  let q = Query.flow ~src:0 ~dst:4 () in
  let on = Engine.query (Engine.create ~config:fast_config ~seed:7 icm) q in
  let off =
    Engine.query
      (Engine.create
         ~config:{ fast_config with Engine.planner = false }
         ~seed:7 icm)
      q
  in
  Alcotest.(check bool) "estimate bits" true
    (Int64.equal
       (Int64.bits_of_float on.Engine.estimate)
       (Int64.bits_of_float off.Engine.estimate));
  Alcotest.(check int) "samples" on.Engine.total_samples
    off.Engine.total_samples;
  match off.Engine.plan with
  | Engine.Plan_mh { fallback = Some "disabled" } -> ()
  | _ -> Alcotest.fail "planner-off engine not tagged disabled"

let test_engine_counters () =
  Metrics.set_recording true;
  Fun.protect
    ~finally:(fun () -> Metrics.set_recording false)
    (fun () ->
      let hits = Metrics.counter "iflow_plan_exact_hits_total" in
      let falls =
        Metrics.counter
          ~labels:[ ("reason", "unsound_join") ]
          "iflow_plan_fallbacks_total"
      in
      let h0 = Metrics.counter_value hits
      and f0 = Metrics.counter_value falls in
      let path = icm_of ~nodes:3 [ (0, 1); (1, 2) ] [ 0.5; 0.5 ] in
      let engine = Engine.create ~config:fast_config ~seed:7 path in
      ignore (Engine.query engine (Query.flow ~src:0 ~dst:2 ()));
      let bn = icm_of ~nodes:5 bottleneck [ 0.5; 0.5; 0.5; 0.5; 0.5 ] in
      let engine = Engine.create ~config:fast_config ~seed:7 bn in
      ignore (Engine.query engine (Query.flow ~src:0 ~dst:4 ()));
      Alcotest.(check int) "exact hit counted" (h0 + 1)
        (Metrics.counter_value hits);
      Alcotest.(check int) "fallback counted" (f0 + 1)
        (Metrics.counter_value falls))

let test_engine_validate_mode () =
  let icm = icm_of ~nodes:3 [ (0, 1); (1, 2) ] [ 0.5; 0.5 ] in
  let engine =
    Engine.create
      ~config:{ fast_config with Engine.plan_validate = true }
      ~seed:7 icm
  in
  let r = Engine.query engine (Query.flow ~src:0 ~dst:2 ()) in
  check_close "still the exact value" 0.25 r.Engine.estimate;
  match r.Engine.plan with
  | Engine.Plan_exact { validated = true; _ } -> ()
  | _ -> Alcotest.fail "validation not recorded on the plan"

(* the headline scale case: a 6000-node tree answers exactly and agrees
   with MH on the same engine seed within the sampler's own error bar *)
let test_engine_large_tree () =
  let nodes = 6000 in
  let rng = Rng.create 9 in
  let icm = random_tree_icm rng ~nodes in
  (* pick a node three levels deep so the MH estimate is comfortably
     away from 0 and converges quickly *)
  let child_of v =
    let g = Icm.graph icm in
    let c = ref None in
    Digraph.iter_out g v (fun e ->
        if !c = None then c := Some (Digraph.edge_dst g e));
    !c
  in
  let dst =
    match Option.bind (child_of 0) child_of with
    | Some v -> v
    | None -> 1
  in
  let q = Query.flow ~src:0 ~dst () in
  let exact =
    Engine.query (Engine.create ~config:fast_config ~seed:7 icm) q
  in
  (match exact.Engine.plan with
  | Engine.Plan_exact _ -> ()
  | Engine.Plan_mh _ -> Alcotest.fail "6000-node tree cone not planned exact");
  (* the sampler needs thinning on the order of the edge count: a
     proposal touches one edge in 6000, so the two path coins decohere
     only every few thousand steps *)
  let mh_config =
    {
      fast_config with
      Engine.planner = false;
      burn_in = 30_000;
      thin = 3_000;
      round_samples = 100;
      max_samples = 600;
      mcse_target = 0.005;
    }
  in
  let mh = Engine.query (Engine.create ~config:mh_config ~seed:7 icm) q in
  let tol = (5.0 *. mh.Engine.mcse) +. 1e-9 in
  Alcotest.(check bool)
    (Printf.sprintf "exact %.5f within %.5f of MH %.5f" exact.Engine.estimate
       tol mh.Engine.estimate)
    true
    (Float.abs (exact.Engine.estimate -. mh.Engine.estimate) <= tol)

let props tests =
  List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0 |])) tests

let () =
  Alcotest.run "iflow_plan"
    [
      ( "cone",
        [
          Alcotest.test_case "extraction" `Quick test_cone_extraction;
          Alcotest.test_case "path product" `Quick test_path_product;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "diamond exact" `Quick test_diamond_exact;
          Alcotest.test_case "double diamond" `Quick test_double_diamond_exact;
          Alcotest.test_case "triangle and cycle" `Quick
            test_triangle_and_cycle_exact;
          Alcotest.test_case "bottleneck refused" `Quick
            test_bottleneck_refused;
          Alcotest.test_case "budget" `Quick test_budget_refusal;
          Alcotest.test_case "trivial targets" `Quick test_trivial_targets;
        ] );
      ( "queries",
        [
          Alcotest.test_case "conditions" `Quick test_conditions;
          Alcotest.test_case "community product" `Quick test_community_product;
          Alcotest.test_case "target overlap" `Quick
            test_target_overlap_refused;
        ] );
      ( "checked-exact",
        [ Alcotest.test_case "typed results" `Quick test_checked_exact ] );
      ( "properties",
        props
          [
            prop_trees_exact;
            prop_certified_matches_brute_force;
            prop_shared_bottleneck_refused;
          ] );
      ( "engine",
        [
          Alcotest.test_case "routes exact" `Quick test_engine_routes_exact;
          Alcotest.test_case "fallback tagged" `Slow
            test_engine_fallback_tagged;
          Alcotest.test_case "mh bit-identical" `Slow
            test_engine_mh_bit_identical;
          Alcotest.test_case "counters" `Slow test_engine_counters;
          Alcotest.test_case "validate mode" `Slow test_engine_validate_mode;
          Alcotest.test_case "6000-node tree" `Slow test_engine_large_tree;
        ] );
    ]
