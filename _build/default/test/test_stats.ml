open Iflow_stats

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* ---------- Special functions ---------- *)

let test_log_gamma_reference () =
  check_close "lgamma 1" 0.0 (Special.log_gamma 1.0);
  check_close "lgamma 2" 0.0 (Special.log_gamma 2.0);
  check_close ~eps:1e-10 "lgamma 0.5" 0.5723649429247001 (Special.log_gamma 0.5);
  check_close ~eps:1e-10 "lgamma 5" 3.1780538303479458 (Special.log_gamma 5.0);
  check_close ~eps:1e-9 "lgamma 10" 12.801827480081469 (Special.log_gamma 10.0);
  check_close ~eps:1e-8 "lgamma 0.1" 2.252712651734206 (Special.log_gamma 0.1)

let test_log_gamma_recurrence () =
  (* Gamma(x+1) = x Gamma(x) over a sweep of x. *)
  let x = ref 0.3 in
  while !x < 30.0 do
    let lhs = Special.log_gamma (!x +. 1.0) in
    let rhs = Special.log_gamma !x +. Float.log !x in
    check_close ~eps:1e-8 (Printf.sprintf "recurrence at %g" !x) rhs lhs;
    x := !x +. 0.7
  done

let test_log_gamma_invalid () =
  Alcotest.check_raises "x = 0" (Invalid_argument "Special.log_gamma: x = 0 <= 0")
    (fun () -> ignore (Special.log_gamma 0.0))

let test_log_beta () =
  (* B(1,1) = 1; B(2,3) = 1/12; B(0.5,0.5) = pi *)
  check_close "logB(1,1)" 0.0 (Special.log_beta 1.0 1.0);
  check_close ~eps:1e-10 "logB(2,3)" (Float.log (1.0 /. 12.0))
    (Special.log_beta 2.0 3.0);
  check_close ~eps:1e-10 "logB(.5,.5)" (Float.log Float.pi)
    (Special.log_beta 0.5 0.5)

let test_log_choose () =
  check_close "C(10,3)" (Float.log 120.0) (Special.log_choose 10 3);
  check_close "C(5,0)" 0.0 (Special.log_choose 5 0);
  check_close "C(5,5)" 0.0 (Special.log_choose 5 5);
  check_close ~eps:1e-8 "C(50,25)"
    (Float.log 126410606437752.0) (Special.log_choose 50 25)

let test_betai_reference () =
  check_close "I_x(1,1) = x" 0.42 (Special.betai 1.0 1.0 0.42);
  check_close ~eps:1e-10 "I_.5(2,2)" 0.5 (Special.betai 2.0 2.0 0.5);
  (* I_x(2,5) = P(Binomial(6, .3) >= 2) at x = .3 *)
  check_close ~eps:1e-9 "I_.3(2,5)" 0.579825 (Special.betai 2.0 5.0 0.3);
  check_close "I_0" 0.0 (Special.betai 3.0 4.0 0.0);
  check_close "I_1" 1.0 (Special.betai 3.0 4.0 1.0)

let test_betai_symmetry () =
  (* I_x(a,b) = 1 - I_{1-x}(b,a) *)
  List.iter
    (fun (a, b, x) ->
      check_close ~eps:1e-9
        (Printf.sprintf "symmetry a=%g b=%g x=%g" a b x)
        (1.0 -. Special.betai b a (1.0 -. x))
        (Special.betai a b x))
    [ (2.0, 3.0, 0.2); (5.5, 1.2, 0.7); (10.0, 10.0, 0.5); (0.5, 8.0, 0.01) ]

let test_betai_inv_roundtrip () =
  List.iter
    (fun (a, b, p) ->
      let x = Special.betai_inv a b p in
      check_close ~eps:1e-7
        (Printf.sprintf "roundtrip a=%g b=%g p=%g" a b p)
        p (Special.betai a b x))
    [ (1.0, 1.0, 0.3); (2.0, 5.0, 0.95); (16.0, 4.0, 0.025); (3.0, 3.0, 0.5) ]

(* ---------- Distributions ---------- *)

let rng () = Rng.create 42

let test_gaussian_moments () =
  let r = rng () in
  let xs = Array.init 20000 (fun _ -> Dist.gaussian r ~mean:2.0 ~std:3.0) in
  check_close ~eps:0.1 "mean" 2.0 (Descriptive.mean xs);
  check_close ~eps:0.15 "std" 3.0 (Descriptive.std xs)

let test_gaussian_log_pdf () =
  check_close ~eps:1e-12 "standard normal at 0"
    (-0.5 *. Float.log (2.0 *. Float.pi))
    (Dist.gaussian_log_pdf ~mean:0.0 ~std:1.0 0.0);
  check_close ~eps:1e-12 "shifted"
    (Dist.gaussian_log_pdf ~mean:0.0 ~std:1.0 1.5)
    (Dist.gaussian_log_pdf ~mean:2.0 ~std:1.0 3.5)

let test_gamma_moments () =
  let r = rng () in
  let xs = Array.init 20000 (fun _ -> Dist.gamma r ~shape:3.0 ~scale:2.0) in
  check_close ~eps:0.15 "mean" 6.0 (Descriptive.mean xs);
  (* var = shape * scale^2 = 12 *)
  check_close ~eps:0.6 "variance" 12.0 (Descriptive.variance xs);
  let small = Array.init 20000 (fun _ -> Dist.gamma r ~shape:0.5 ~scale:1.0) in
  check_close ~eps:0.05 "small-shape mean" 0.5 (Descriptive.mean small)

let test_binomial_bounds_and_mean () =
  let r = rng () in
  List.iter
    (fun (n, p) ->
      let xs = Array.init 5000 (fun _ -> Dist.binomial r ~n ~p) in
      Array.iter
        (fun k ->
          if k < 0 || k > n then Alcotest.failf "binomial out of range: %d" k)
        xs;
      let mean = Descriptive.mean (Array.map float_of_int xs) in
      let expect = float_of_int n *. p in
      let tol = 4.0 *. Float.sqrt (float_of_int n *. p *. (1.0 -. p)) /. Float.sqrt 5000.0 +. 0.02 in
      check_close ~eps:tol (Printf.sprintf "mean n=%d p=%g" n p) expect mean)
    [ (1, 0.3); (10, 0.5); (100, 0.05); (500, 0.9) ];
  Alcotest.(check int) "p=0" 0 (Dist.binomial r ~n:50 ~p:0.0);
  Alcotest.(check int) "p=1" 50 (Dist.binomial r ~n:50 ~p:1.0)

let test_binomial_log_pmf () =
  (* Binomial(4, .5): pmf(2) = 6/16 *)
  check_close ~eps:1e-12 "pmf(2;4,.5)" (Float.log (6.0 /. 16.0))
    (Dist.binomial_log_pmf ~n:4 ~p:0.5 2);
  check_close "pmf(0; n, 0)" 0.0 (Dist.binomial_log_pmf ~n:7 ~p:0.0 0);
  Alcotest.(check bool) "impossible" true
    (Dist.binomial_log_pmf ~n:7 ~p:0.0 1 = neg_infinity);
  (* sums to 1 *)
  let total =
    List.fold_left
      (fun acc k -> acc +. Float.exp (Dist.binomial_log_pmf ~n:12 ~p:0.37 k))
      0.0
      (List.init 13 (fun k -> k))
  in
  check_close ~eps:1e-10 "normalised" 1.0 total

let test_categorical () =
  let r = rng () in
  let weights = [| 1.0; 0.0; 3.0 |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 10000 do
    let i = Dist.categorical r weights in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight never drawn" 0 counts.(1);
  check_close ~eps:0.03 "ratio" 0.25
    (float_of_int counts.(0) /. 10000.0)

(* ---------- Beta distribution ---------- *)

let test_beta_moments () =
  let b = Dist.Beta.v 16.0 4.0 in
  check_close "mean" 0.8 (Dist.Beta.mean b);
  check_close ~eps:1e-12 "variance" (16.0 *. 4.0 /. (400.0 *. 21.0))
    (Dist.Beta.variance b);
  check_close ~eps:1e-12 "mode" (15.0 /. 18.0) (Dist.Beta.mode b)

let test_beta_cdf_quantile () =
  let b = Dist.Beta.v 2.0 5.0 in
  check_close ~eps:1e-9 "cdf" 0.579825 (Dist.Beta.cdf b 0.3);
  let lo, hi = Dist.Beta.interval b 0.95 in
  check_close ~eps:1e-6 "interval mass" 0.95
    (Dist.Beta.cdf b hi -. Dist.Beta.cdf b lo);
  Alcotest.(check bool) "lo < mean < hi" true
    (lo < Dist.Beta.mean b && Dist.Beta.mean b < hi)

let test_beta_sampling () =
  let r = rng () in
  let b = Dist.Beta.v 3.0 7.0 in
  let xs = Array.init 20000 (fun _ -> Dist.Beta.sample r b) in
  Array.iter
    (fun x -> if x < 0.0 || x > 1.0 then Alcotest.failf "out of range %g" x)
    xs;
  check_close ~eps:0.01 "mean" 0.3 (Descriptive.mean xs);
  check_close ~eps:0.005 "variance" (Dist.Beta.variance b)
    (Descriptive.variance xs)

let test_beta_fit_moments () =
  let b = Dist.Beta.v 5.0 9.0 in
  (match
     Dist.Beta.fit_moments ~mean:(Dist.Beta.mean b)
       ~variance:(Dist.Beta.variance b)
   with
  | None -> Alcotest.fail "fit failed"
  | Some fitted ->
    check_close ~eps:1e-9 "alpha" 5.0 fitted.Dist.Beta.alpha;
    check_close ~eps:1e-9 "beta" 9.0 fitted.Dist.Beta.beta);
  Alcotest.(check bool) "impossible variance" true
    (Dist.Beta.fit_moments ~mean:0.5 ~variance:0.3 = None);
  Alcotest.(check bool) "degenerate mean" true
    (Dist.Beta.fit_moments ~mean:0.0 ~variance:0.01 = None)

let test_beta_of_counts () =
  let b = Dist.Beta.of_counts ~successes:3 ~failures:1 in
  check_close "alpha" 4.0 b.Dist.Beta.alpha;
  check_close "beta" 2.0 b.Dist.Beta.beta

let test_beta_log_pdf_normalised () =
  (* numeric integration of pdf over a grid *)
  let b = Dist.Beta.v 2.5 4.0 in
  let steps = 20000 in
  let h = 1.0 /. float_of_int steps in
  let total = ref 0.0 in
  for i = 0 to steps - 1 do
    let x = (float_of_int i +. 0.5) *. h in
    total := !total +. (Float.exp (Dist.Beta.log_pdf b x) *. h)
  done;
  check_close ~eps:1e-4 "integrates to 1" 1.0 !total

(* ---------- Fenwick ---------- *)

let test_fenwick_basic () =
  let t = Fenwick.of_array [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close "total" 10.0 (Fenwick.total t);
  check_close "prefix 0" 0.0 (Fenwick.prefix_sum t 0);
  check_close "prefix 2" 3.0 (Fenwick.prefix_sum t 2);
  Fenwick.set t 1 5.0;
  check_close "after set" 13.0 (Fenwick.total t);
  check_close "get" 5.0 (Fenwick.get t 1);
  Alcotest.(check int) "find 0.5" 0 (Fenwick.find_prefix t 0.5);
  Alcotest.(check int) "find 1.5" 1 (Fenwick.find_prefix t 1.5);
  Alcotest.(check int) "find 12.9" 3 (Fenwick.find_prefix t 12.9)

let test_fenwick_zero_weight_skipped () =
  let t = Fenwick.of_array [| 0.0; 1.0; 0.0; 2.0 |] in
  let r = rng () in
  for _ = 1 to 2000 do
    let i = Fenwick.sample r t in
    if i = 0 || i = 2 then Alcotest.failf "sampled zero-weight index %d" i
  done

let test_fenwick_sampling_distribution () =
  let weights = [| 0.5; 0.0; 2.0; 1.5; 0.25 |] in
  let t = Fenwick.of_array weights in
  let r = rng () in
  let counts = Array.make 5 0 in
  let n = 40000 in
  for _ = 1 to n do
    let i = Fenwick.sample r t in
    counts.(i) <- counts.(i) + 1
  done;
  let total_weight = Array.fold_left ( +. ) 0.0 weights in
  Array.iteri
    (fun i w ->
      check_close ~eps:0.02
        (Printf.sprintf "frequency %d" i)
        (w /. total_weight)
        (float_of_int counts.(i) /. float_of_int n))
    weights

let test_fenwick_rebuild () =
  let t = Fenwick.of_array (Array.init 100 (fun i -> float_of_int i /. 7.0)) in
  let r = rng () in
  for _ = 1 to 10000 do
    Fenwick.set t (Rng.int r 100) (Rng.uniform r)
  done;
  let before = Fenwick.total t in
  Fenwick.rebuild t;
  check_close ~eps:1e-9 "rebuild preserves total" before (Fenwick.total t)

let prop_fenwick_matches_naive =
  QCheck.Test.make ~count:200 ~name:"fenwick prefix sums match naive"
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 10.0))
    (fun weights ->
      let arr = Array.of_list (List.map Float.abs weights) in
      let t = Fenwick.of_array arr in
      let ok = ref true in
      let acc = ref 0.0 in
      Array.iteri
        (fun i w ->
          if Float.abs (Fenwick.prefix_sum t i -. !acc) > 1e-9 then ok := false;
          acc := !acc +. w)
        arr;
      !ok && Float.abs (Fenwick.total t -. !acc) < 1e-9)

let prop_fenwick_find_prefix_correct =
  QCheck.Test.make ~count:200 ~name:"find_prefix returns covering index"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 30) (float_bound_inclusive 5.0))
        (float_bound_inclusive 0.999))
    (fun (weights, frac) ->
      let arr = Array.of_list (List.map (fun w -> Float.abs w +. 0.01) weights) in
      let t = Fenwick.of_array arr in
      let u = frac *. Fenwick.total t in
      let i = Fenwick.find_prefix t u in
      Fenwick.prefix_sum t i <= u +. 1e-9
      && u < Fenwick.prefix_sum t (i + 1) +. 1e-9)

(* ---------- Descriptive ---------- *)

let test_descriptive_basics () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_close "mean" 3.0 (Descriptive.mean xs);
  check_close "variance" 2.5 (Descriptive.variance xs);
  check_close "median" 3.0 (Descriptive.median xs);
  check_close "q0" 1.0 (Descriptive.quantile xs 0.0);
  check_close "q1" 5.0 (Descriptive.quantile xs 1.0);
  check_close "q.25" 2.0 (Descriptive.quantile xs 0.25);
  let lo, hi = Descriptive.min_max xs in
  check_close "min" 1.0 lo;
  check_close "max" 5.0 hi

let test_autocorrelation () =
  let constant = Array.make 50 3.0 in
  check_close "constant series" 0.0 (Descriptive.autocorrelation constant ~lag:1);
  let alternating = Array.init 100 (fun i -> if i mod 2 = 0 then 1.0 else -1.0) in
  check_close ~eps:1e-9 "lag 0" 1.0 (Descriptive.autocorrelation alternating ~lag:0);
  Alcotest.(check bool) "alternating lag 1 negative" true
    (Descriptive.autocorrelation alternating ~lag:1 < -0.9);
  Alcotest.(check bool) "alternating lag 2 positive" true
    (Descriptive.autocorrelation alternating ~lag:2 > 0.9);
  let r = rng () in
  let iid = Array.init 5000 (fun _ -> Rng.uniform r) in
  check_close ~eps:0.05 "iid lag 1 near zero" 0.0
    (Descriptive.autocorrelation iid ~lag:1)

let test_effective_sample_size () =
  let r = rng () in
  let n = 4000 in
  let iid = Array.init n (fun _ -> Rng.uniform r) in
  let ess = Descriptive.effective_sample_size iid in
  Alcotest.(check bool)
    (Printf.sprintf "iid ESS %.0f near n" ess)
    true
    (ess > 0.7 *. float_of_int n);
  (* a sticky AR(1)-style chain has far fewer effective samples *)
  let sticky = Array.make n 0.0 in
  for i = 1 to n - 1 do
    sticky.(i) <- (0.95 *. sticky.(i - 1)) +. Rng.uniform r
  done;
  let ess_sticky = Descriptive.effective_sample_size sticky in
  Alcotest.(check bool)
    (Printf.sprintf "sticky ESS %.0f much smaller" ess_sticky)
    true
    (ess_sticky < 0.2 *. float_of_int n)

let test_histogram () =
  let xs = [| 0.05; 0.15; 0.15; 0.95; -0.5; 1.5 |] in
  let h = Descriptive.histogram ~lo:0.0 ~hi:1.0 ~bins:10 xs in
  Alcotest.(check int) "bin 0" 1 h.Descriptive.counts.(0);
  Alcotest.(check int) "bin 1" 2 h.Descriptive.counts.(1);
  Alcotest.(check int) "bin 9" 1 h.Descriptive.counts.(9);
  Alcotest.(check int) "underflow" 1 h.Descriptive.underflow;
  Alcotest.(check int) "overflow" 1 h.Descriptive.overflow;
  check_close "center" 0.05 (Descriptive.histogram_bin_center h 0)

(* ---------- Measures ---------- *)

let p e o = { Measures.estimate = e; outcome = o }

let test_brier () =
  check_close "perfect" 0.0 (Measures.brier [ p 1.0 true; p 0.0 false ]);
  check_close "worst" 1.0 (Measures.brier [ p 0.0 true; p 1.0 false ]);
  check_close "half" 0.25 (Measures.brier [ p 0.5 true; p 0.5 false ])

let test_normalised_likelihood () =
  check_close ~eps:1e-6 "certain correct" (1.0 -. 1e-6)
    (Measures.normalised_likelihood [ p 1.0 true ]);
  check_close ~eps:1e-9 "uniform" 0.5
    (Measures.normalised_likelihood [ p 0.5 true; p 0.5 false ]);
  (* geometric mean of 0.8 and 0.4: answers 0.8-true and 0.6-true *)
  check_close ~eps:1e-9 "geometric mean"
    (Float.sqrt (0.8 *. 0.4))
    (Measures.normalised_likelihood [ p 0.8 true; p 0.6 false ])

let test_middle_values () =
  let preds = [ p 0.0 false; p 0.5 true; p 1.0 true; p 0.99 true ] in
  Alcotest.(check int) "filtered" 2 (List.length (Measures.middle_values preds))

let test_rmse () =
  check_close "zero" 0.0
    (Measures.rmse ~expected:[| 1.0; 2.0 |] ~actual:[| 1.0; 2.0 |]);
  check_close "known" (Float.sqrt 0.5)
    (Measures.rmse ~expected:[| 0.0; 0.0 |] ~actual:[| 1.0; 0.0 |] *. Float.sqrt 1.0);
  check_close "mae" 0.5 (Measures.mae ~expected:[| 0.0; 0.0 |] ~actual:[| 1.0; 0.0 |])

let test_table_row () =
  let row =
    Measures.table_row ~label:"x" [ p 0.0 false; p 0.6 true; p 0.7 false ]
  in
  Alcotest.(check int) "count all" 3 row.Measures.count_all;
  Alcotest.(check int) "count middle" 2 row.Measures.count_middle;
  Alcotest.(check bool) "middle brier present" true
    (row.Measures.brier_middle <> None)

(* ---------- Rng ---------- *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check_close "same stream" (Rng.uniform a) (Rng.uniform b)
  done

let test_rng_split_independence () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  (* streams should differ *)
  let same = ref true in
  for _ = 1 to 20 do
    if Rng.uniform a <> Rng.uniform c then same := false
  done;
  Alcotest.(check bool) "split diverges" false !same

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0 |])) tests

let () =
  Alcotest.run "iflow_stats"
    [
      ( "special",
        [
          Alcotest.test_case "log_gamma reference" `Quick test_log_gamma_reference;
          Alcotest.test_case "log_gamma recurrence" `Quick test_log_gamma_recurrence;
          Alcotest.test_case "log_gamma invalid" `Quick test_log_gamma_invalid;
          Alcotest.test_case "log_beta" `Quick test_log_beta;
          Alcotest.test_case "log_choose" `Quick test_log_choose;
          Alcotest.test_case "betai reference" `Quick test_betai_reference;
          Alcotest.test_case "betai symmetry" `Quick test_betai_symmetry;
          Alcotest.test_case "betai_inv roundtrip" `Quick test_betai_inv_roundtrip;
        ] );
      ( "dist",
        [
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "gaussian log pdf" `Quick test_gaussian_log_pdf;
          Alcotest.test_case "gamma moments" `Quick test_gamma_moments;
          Alcotest.test_case "binomial bounds/mean" `Quick test_binomial_bounds_and_mean;
          Alcotest.test_case "binomial log pmf" `Quick test_binomial_log_pmf;
          Alcotest.test_case "categorical" `Quick test_categorical;
        ] );
      ( "beta",
        [
          Alcotest.test_case "moments" `Quick test_beta_moments;
          Alcotest.test_case "cdf and quantile" `Quick test_beta_cdf_quantile;
          Alcotest.test_case "sampling" `Quick test_beta_sampling;
          Alcotest.test_case "fit moments" `Quick test_beta_fit_moments;
          Alcotest.test_case "of_counts" `Quick test_beta_of_counts;
          Alcotest.test_case "pdf normalised" `Quick test_beta_log_pdf_normalised;
        ] );
      ( "fenwick",
        [
          Alcotest.test_case "basic" `Quick test_fenwick_basic;
          Alcotest.test_case "zero weights skipped" `Quick test_fenwick_zero_weight_skipped;
          Alcotest.test_case "sampling distribution" `Quick test_fenwick_sampling_distribution;
          Alcotest.test_case "rebuild" `Quick test_fenwick_rebuild;
        ]
        @ qcheck [ prop_fenwick_matches_naive; prop_fenwick_find_prefix_correct ] );
      ( "descriptive",
        [
          Alcotest.test_case "basics" `Quick test_descriptive_basics;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "autocorrelation" `Quick test_autocorrelation;
          Alcotest.test_case "effective sample size" `Quick test_effective_sample_size;
        ] );
      ( "measures",
        [
          Alcotest.test_case "brier" `Quick test_brier;
          Alcotest.test_case "normalised likelihood" `Quick test_normalised_likelihood;
          Alcotest.test_case "middle values" `Quick test_middle_values;
          Alcotest.test_case "rmse" `Quick test_rmse;
          Alcotest.test_case "table row" `Quick test_table_row;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
        ] );
    ]
