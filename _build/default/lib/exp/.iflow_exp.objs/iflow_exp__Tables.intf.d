lib/exp/tables.mli: Format Iflow_bucket Iflow_core
