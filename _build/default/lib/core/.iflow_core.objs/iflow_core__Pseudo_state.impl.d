lib/core/pseudo_state.ml: Array Bytes Float Format Icm Iflow_graph Iflow_stats
