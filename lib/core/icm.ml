module Digraph = Iflow_graph.Digraph

type t = { graph : Digraph.t; probs : float array }

let create graph probs =
  if Array.length probs <> Digraph.n_edges graph then
    invalid_arg
      (Printf.sprintf "Icm.create: %d probabilities for %d edges"
         (Array.length probs) (Digraph.n_edges graph));
  Array.iteri
    (fun e p ->
      if not (p >= 0.0 && p <= 1.0) then
        invalid_arg (Printf.sprintf "Icm.create: p(%d) = %g outside [0,1]" e p))
    probs;
  { graph; probs = Array.copy probs }

let const graph p = create graph (Array.make (Digraph.n_edges graph) p)
let graph t = t.graph
let prob t e = t.probs.(e)
let probs t = Array.copy t.probs
let n_nodes t = Digraph.n_nodes t.graph
let n_edges t = Digraph.n_edges t.graph

let digest t =
  let module Fp = Iflow_stats.Fingerprint in
  let fp = Fp.create () in
  Fp.add_int fp (Digraph.n_nodes t.graph);
  Fp.add_int fp (Digraph.n_edges t.graph);
  Digraph.iter_edges t.graph (fun _ { Digraph.src; dst } ->
      Fp.add_int fp src;
      Fp.add_int fp dst);
  Fp.add_floats fp t.probs;
  Fp.to_hex fp

let pp ppf t =
  Format.fprintf ppf "icm(%d nodes, %d edges)" (n_nodes t) (n_edges t)
