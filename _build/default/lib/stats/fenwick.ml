type t = {
  tree : float array; (* 1-based Fenwick array *)
  weights : float array; (* exact current weights, source of truth *)
  n : int;
  mutable pow2 : int; (* largest power of two <= n, for find_prefix *)
}

let top_power_of_two n =
  let p = ref 1 in
  while !p * 2 <= n do
    p := !p * 2
  done;
  !p

let create n =
  if n < 0 then invalid_arg "Fenwick.create: negative size";
  {
    tree = Array.make (n + 1) 0.0;
    weights = Array.make n 0.0;
    n;
    pow2 = (if n = 0 then 0 else top_power_of_two n);
  }

let length t = t.n

let add_internal t i delta =
  let i = ref (i + 1) in
  while !i <= t.n do
    t.tree.(!i) <- t.tree.(!i) +. delta;
    i := !i + (!i land - !i)
  done

let of_array weights =
  let n = Array.length weights in
  let t = create n in
  Array.iteri
    (fun i w ->
      if w < 0.0 then invalid_arg "Fenwick.of_array: negative weight";
      t.weights.(i) <- w;
      add_internal t i w)
    weights;
  t

let get t i = t.weights.(i)

let set t i w =
  if w < 0.0 then invalid_arg "Fenwick.set: negative weight";
  let delta = w -. t.weights.(i) in
  t.weights.(i) <- w;
  add_internal t i delta

let prefix_sum t i =
  let acc = ref 0.0 in
  let i = ref i in
  while !i > 0 do
    acc := !acc +. t.tree.(!i);
    i := !i - (!i land - !i)
  done;
  !acc

let total t = prefix_sum t t.n

(* Standard Fenwick descent: find smallest index whose inclusive prefix
   sum exceeds u. Clamps to the last index to absorb float round-off at
   the upper boundary. *)
let find_prefix t u =
  if t.n = 0 then invalid_arg "Fenwick.find_prefix: empty tree";
  let pos = ref 0 in
  let remaining = ref u in
  let step = ref t.pow2 in
  while !step > 0 do
    let next = !pos + !step in
    if next <= t.n && t.tree.(next) <= !remaining then begin
      pos := next;
      remaining := !remaining -. t.tree.(next)
    end;
    step := !step / 2
  done;
  if !pos >= t.n then t.n - 1 else !pos

let sample rng t =
  let z = total t in
  if not (z > 0.0) then invalid_arg "Fenwick.sample: zero total weight";
  find_prefix t (Rng.float rng z)

let rebuild t =
  Array.fill t.tree 0 (t.n + 1) 0.0;
  Array.iteri (fun i w -> add_internal t i w) t.weights
