lib/graph/gen.mli: Digraph Iflow_stats
