module Digraph = Iflow_graph.Digraph
module Evidence = Iflow_core.Evidence

type cascade = {
  root_author : string;
  root_text : string;
  original_observed : bool;
  activations : (string * string * int) list;
}

let is_prefix ~prefix s =
  String.length prefix <= String.length s
  && String.sub s 0 (String.length prefix) = prefix

(* Two observations of the same original may be truncated to different
   lengths; they agree iff one text is a prefix of the other. *)
let same_root a b = is_prefix ~prefix:a b || is_prefix ~prefix:b a

type builder = {
  b_author : string;
  mutable b_text : string; (* longest version of the root text seen *)
  mutable b_observed : bool;
  mutable b_time : int; (* earliest sighting, for ordering *)
  (* retweeter -> (parent, earliest time) *)
  b_activations : (string, string * int) Hashtbl.t;
}

let cascades tweets =
  (* Group by root author; match within the group by text prefix. *)
  let by_author : (string, builder list ref) Hashtbl.t = Hashtbl.create 256 in
  let find_builder author text time =
    let cell =
      match Hashtbl.find_opt by_author author with
      | Some cell -> cell
      | None ->
        let cell = ref [] in
        Hashtbl.add by_author author cell;
        cell
    in
    match List.find_opt (fun b -> same_root b.b_text text) !cell with
    | Some b ->
      if String.length text > String.length b.b_text then b.b_text <- text;
      if time < b.b_time then b.b_time <- time;
      b
    | None ->
      let b =
        {
          b_author = author;
          b_text = text;
          b_observed = false;
          b_time = time;
          b_activations = Hashtbl.create 8;
        }
      in
      cell := b :: !cell;
      b
  in
  let record_activation b child parent time =
    if child <> b.b_author then begin
      match Hashtbl.find_opt b.b_activations child with
      | Some (_, t0) when t0 <= time -> ()
      | _ -> Hashtbl.replace b.b_activations child (parent, time)
    end
  in
  List.iter
    (fun (tw : Tweet.t) ->
      match Tweet.retweet_chain tw.text with
      | [], _root ->
        let b = find_builder tw.author tw.text tw.time in
        b.b_observed <- true
      | chain, root ->
        (* chain = [nearest ancestor; ...; deepest known ancestor]. The
           deepest is our best guess at the original author. *)
        let deepest = List.nth chain (List.length chain - 1) in
        let b = find_builder deepest root tw.time in
        (* The retweeter forwarded from the nearest ancestor... *)
        (match chain with
        | nearest :: _ -> record_activation b tw.author nearest tw.time
        | [] -> ());
        (* ...and each ancestor (except the original author) forwarded
           from the next one up, at some earlier time. Times of the
           recovered hops are bounded above by this tweet's time; use
           decreasing offsets to keep the order right. *)
        let rec link hops offset =
          match hops with
          | child :: (parent :: _ as rest) ->
            if child <> deepest then
              record_activation b child parent (tw.time - offset);
            link rest (offset + 1)
          | [ _ ] | [] -> ()
        in
        link chain 1)
    tweets;
  let all =
    Hashtbl.fold (fun _ cell acc -> List.rev_append !cell acc) by_author []
  in
  let finish b =
    let activations =
      Hashtbl.fold (fun child (parent, t) acc -> (child, parent, t) :: acc)
        b.b_activations []
    in
    {
      root_author = b.b_author;
      root_text = b.b_text;
      original_observed = b.b_observed;
      activations =
        List.sort (fun (_, _, t1) (_, _, t2) -> compare t1 t2) activations;
    }
  in
  List.map finish (List.sort (fun a b -> compare a.b_time b.b_time) all)

let users tweets =
  let module SS = Set.Make (String) in
  let set =
    List.fold_left
      (fun acc (tw : Tweet.t) ->
        let acc = SS.add tw.author acc in
        List.fold_left (fun acc m -> SS.add m acc) acc
          (Tweet.mentions tw.text))
      SS.empty tweets
  in
  Array.of_list (SS.elements set)

let infer_graph tweets =
  let names = users tweets in
  let index = Hashtbl.create (Array.length names * 2) in
  Array.iteri (fun i n -> Hashtbl.add index n i) names;
  let edges = Hashtbl.create 1024 in
  List.iter
    (fun c ->
      List.iter
        (fun (child, parent, _) ->
          match (Hashtbl.find_opt index parent, Hashtbl.find_opt index child)
          with
          | Some p, Some ch when p <> ch -> Hashtbl.replace edges (p, ch) ()
          | _ -> ())
        c.activations)
    (cascades tweets);
  let pairs = Hashtbl.fold (fun pair () acc -> pair :: acc) edges [] in
  let g = Digraph.of_edges ~nodes:(Array.length names) pairs in
  (g, names, index)

let to_attributed ~graph ~node_of_name cascade_list =
  let n = Digraph.n_nodes graph in
  List.filter_map
    (fun c ->
      match node_of_name c.root_author with
      | None -> None
      | Some source ->
        let active_nodes = Array.make n false in
        let active_edges = Array.make (Digraph.n_edges graph) false in
        active_nodes.(source) <- true;
        (* Activations are time-sorted, so a child's parent is processed
           first; drop activations whose parent never made it in. *)
        List.iter
          (fun (child_name, parent_name, _) ->
            match (node_of_name child_name, node_of_name parent_name) with
            | Some child, Some parent when active_nodes.(parent) -> begin
              match Digraph.find_edge graph ~src:parent ~dst:child with
              | Some e ->
                active_edges.(e) <- true;
                active_nodes.(child) <- true
              | None -> ()
            end
            | _ -> ())
          c.activations;
        Some { Evidence.sources = [ source ]; active_nodes; active_edges })
    cascade_list
