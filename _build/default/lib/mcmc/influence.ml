module Icm = Iflow_core.Icm
module Cascade = Iflow_core.Cascade
module Rng = Iflow_stats.Rng

let expected_spread rng icm ~seeds ~runs =
  if runs <= 0 then invalid_arg "Influence.expected_spread: runs <= 0";
  let total = ref 0 in
  for _ = 1 to runs do
    let o = Cascade.run rng icm ~sources:seeds in
    Array.iter (fun a -> if a then incr total) o.Iflow_core.Evidence.active_nodes
  done;
  float_of_int !total /. float_of_int runs

(* Lazy greedy (CELF): keep an upper bound on each node's marginal gain
   (its gain when last evaluated); submodularity means bounds only
   shrink, so we re-evaluate the top candidate until it stays on top. *)
let greedy_seeds ?(runs = 300) rng icm ~k =
  let n = Icm.n_nodes icm in
  if k < 0 || k > n then invalid_arg "Influence.greedy_seeds: bad k";
  let seeds = ref [] in
  let current_spread = ref 0.0 in
  (* (bound, node, round last evaluated) max-heap via sorted list *)
  let bounds = Array.init n (fun v -> (Float.infinity, v, -1)) in
  let better (b1, _, _) (b2, _, _) = compare b2 b1 in
  for round = 0 to k - 1 do
    Array.sort better bounds;
    let chosen = ref None in
    while !chosen = None do
      Array.sort better bounds;
      let bound, v, evaluated = bounds.(0) in
      ignore bound;
      if List.mem v !seeds then
        (* already selected: retire it *)
        bounds.(0) <- (neg_infinity, v, round)
      else if evaluated = round then begin
        (* freshest bound is on top: it wins this round *)
        chosen := Some v
      end
      else begin
        let gain =
          expected_spread rng icm ~seeds:(v :: !seeds) ~runs -. !current_spread
        in
        bounds.(0) <- (gain, v, round)
      end
    done;
    match !chosen with
    | Some v ->
      seeds := v :: !seeds;
      current_spread := expected_spread rng icm ~seeds:!seeds ~runs
    | None -> assert false
  done;
  (List.rev !seeds, !current_spread)
