examples/quickstart.mli:
