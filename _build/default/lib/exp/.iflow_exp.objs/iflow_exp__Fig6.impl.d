lib/exp/fig6.ml: Array Cascade Format Generator Goyal Iflow_core Iflow_learn Iflow_stats Joint_bayes List Scale Summary Sys
