test/test_misc.ml: Alcotest Array Cascade Evidence Exact Float Icm Iflow_bucket Iflow_core Iflow_graph Iflow_gtm Iflow_rwr Iflow_stats List Printf QCheck QCheck_alcotest Random
