type t = { id : int; author : string; time : int; text : string }

let max_length = 140

let truncate text =
  if String.length text <= max_length then text
  else String.sub text 0 max_length

let make ~id ~author ~time ~text = { id; author; time; text = truncate text }

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let is_url_char c = is_name_char c || c = '/' || c = '.' || c = ':' || c = '-'

(* Scan for marker-introduced tokens: '@name', '#tag'. *)
let tokens_after marker text =
  let n = String.length text in
  let acc = ref [] in
  let i = ref 0 in
  while !i < n do
    if text.[!i] = marker && !i + 1 < n && is_name_char text.[!i + 1] then begin
      let start = !i + 1 in
      let stop = ref start in
      while !stop < n && is_name_char text.[!stop] do
        incr stop
      done;
      acc := String.sub text start (!stop - start) :: !acc;
      i := !stop
    end
    else incr i
  done;
  List.rev !acc

let mentions text = tokens_after '@' text

let dedup_keep_order list =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    list

let hashtags text = dedup_keep_order (tokens_after '#' text)

let urls text =
  let n = String.length text in
  let acc = ref [] in
  let i = ref 0 in
  let matches_at pos prefix =
    let k = String.length prefix in
    pos + k <= n && String.sub text pos k = prefix
  in
  while !i < n do
    if matches_at !i "http://" || matches_at !i "https://" then begin
      let stop = ref !i in
      while !stop < n && is_url_char text.[!stop] do
        incr stop
      done;
      acc := String.sub text !i (!stop - !i) :: !acc;
      i := !stop
    end
    else incr i
  done;
  dedup_keep_order (List.rev !acc)

(* Parse nested "RT @name: " prefixes. Stops as soon as the pattern
   breaks (e.g. truncation cut the prefix). *)
let retweet_chain text =
  let rec peel text acc =
    let n = String.length text in
    if n >= 5 && String.sub text 0 4 = "RT @" then begin
      let stop = ref 4 in
      while !stop < n && is_name_char text.[!stop] do
        incr stop
      done;
      if !stop > 4 && !stop + 1 < n && text.[!stop] = ':' && text.[!stop + 1] = ' '
      then begin
        let name = String.sub text 4 (!stop - 4) in
        let rest = String.sub text (!stop + 2) (n - !stop - 2) in
        peel rest (name :: acc)
      end
      else (List.rev acc, text)
    end
    else (List.rev acc, text)
  in
  peel text []

let is_retweet text =
  match retweet_chain text with [], _ -> false | _ :: _, _ -> true

let retweet ~id ~retweeter ~time ~of_ =
  make ~id ~author:retweeter ~time
    ~text:(Printf.sprintf "RT @%s: %s" of_.author of_.text)

let pp ppf t =
  Format.fprintf ppf "[%d t=%d @%s] %s" t.id t.time t.author t.text
