(** The binary event log: a compact, CRC-framed, segmented encoding of
    {!Event} streams for high-rate ingest.

    The JSONL log is the auditable source of truth; this codec is its
    fast twin — {!Writer}/{!Reader} round-trip every event exactly
    (`infoflow convert` transcodes in either direction), and replaying
    either encoding of the same stream produces bit-identical
    posteriors (pinned by the cross-codec tests).

    {b On-disk format} (DESIGN.md §2g). A log is a chain of segments:
    [path], [path.1], [path.2], ... Each segment starts with a 28-byte
    self-describing header

    {v
      bytes 0..3    magic "IBL1"
      byte  4       format version (1)
      bytes 5..7    zero padding
      bytes 8..15   segment index, u64 LE
      bytes 16..23  base event offset, u64 LE (events in prior segments)
      bytes 24..27  CRC-32 of bytes 0..23, u32 LE
    v}

    followed by frames, back to back:

    {v [payload length: varint] [payload] [CRC-32 of payload: u32 LE] v}

    A payload is one tag byte (1 attributed, 2 trace, 3 add_nodes,
    4 add_edges, 5 remove_edges) followed by the event body as unsigned
    LEB128 varints in original list order (lists are length-prefixed;
    edges travel as (src, dst) node pairs so the log is self-contained;
    [add_edges] priors are two f64 LE). Unknown {e tags} are a
    quarantinable record error; unknown {e versions} and damaged
    headers are structural ({!Corrupt}) — a reader that does not
    understand the segment must refuse it loudly rather than guess.

    {b Corruption policy.} Record-level damage never kills a read: a
    bad payload CRC quarantines that one record (framing was intact, so
    the reader resyncs at the next frame); a truncated or unframeable
    record quarantines once and skips to the next segment boundary.
    Every {!error} carries the segment path and byte offset. *)

type reason =
  | Bad_crc      (** payload CRC-32 mismatch — the frame was readable *)
  | Truncated    (** record runs past the end of its segment/payload *)
  | Bad_varint   (** malformed varint, implausible length, bad value *)
  | Unknown_tag  (** well-formed record of an unknown event kind *)

type error = {
  segment : string;  (** segment file the damage is in *)
  offset : int;      (** byte offset of the frame start *)
  reason : reason;
  detail : string;
}

val reason_label : reason -> string
(** ["bad_crc"], ["truncated"], ["bad_varint"], ["unknown_tag"] — the
    [reason] label values of [iflow_stream_quarantined_total]. *)

val error_message : error -> string
(** ["SEGMENT@OFFSET: REASON (DETAIL)"]. *)

exception Corrupt of string
(** Structural damage: missing/short/bad-magic/bad-version header, or
    a segment chain whose indices do not line up. Unlike record damage
    this is never quarantined — the file is not a usable log. *)

val magic : string
val header_size : int

val segment_path : string -> int -> string
(** [segment_path base k] is [base] for [k = 0], [base.k] after. *)

val is_binlog : string -> bool
(** True when the file exists and starts with the magic bytes — the
    format sniff used by [--format=auto]. *)

(** {1 Writing} *)

module Writer : sig
  type t

  val create : ?segment_bytes:int -> string -> t
  (** Truncate/create a log at the given base path. A new segment is
      rolled when the current one would exceed [segment_bytes]
      (default 64 MiB; a frame never spans segments). Raises
      [Invalid_argument] when [segment_bytes] cannot hold a header and
      one small frame. *)

  val append : t -> Event.t -> unit
  (** Raises [Invalid_argument] on events the format cannot carry
      (negative ids/counts/times — such events would only ever be
      quarantined downstream). *)

  val events : t -> int
  val segments : t -> int

  val close : t -> unit
end

(** {1 Reading} *)

(** A decoded run of frames, reused across reads (zero steady-state
    allocation: the arrays grow to the high-water mark and stay). Each
    slot is either a readable frame or a framing-error placeholder —
    both count as one event towards offsets. *)
module Batch : sig
  type t

  val create : unit -> t
  val length : t -> int
end

val frame_len : Batch.t -> int -> int
(** Payload length, or [-1] for a framing-error slot. *)

val frame_tag : Batch.t -> int -> int
(** First payload byte. Only valid when [frame_len >= 1]. *)

val frame_bytes : Batch.t -> int -> Bytes.t
val frame_off : Batch.t -> int -> int
val frame_segment : Batch.t -> int -> string
val frame_offset : Batch.t -> int -> int
(** Backing buffer, payload offset in it, and the segment path / byte
    offset of the frame (for error reports). *)

val frame_error : Batch.t -> int -> error option
(** The framing error of an error slot ([frame_len] = -1). *)

val check_crc : Batch.t -> int -> bool
(** Recompute the payload CRC-32 and compare with the stored one. *)

val crc_error : Batch.t -> int -> error
(** The {!Bad_crc} error describing frame [i] (for reporting after
    {!check_crc} fails). *)

val decode_frame : Batch.t -> int -> (Event.t, error) result
(** Full allocating decode of one frame: CRC check, tag dispatch, body
    decode, trailing-byte check. This is the slow, convenient path
    (`infoflow convert`, tests); the sharded ingest decodes in place. *)

val tag_attributed : int
val tag_trace : int
val tag_add_nodes : int
val tag_add_edges : int
val tag_remove_edges : int

val is_graph_change_tag : int -> bool

module Reader : sig
  type t

  val open_ : string -> t
  (** Loads the first segment; raises [Sys_error] when the file is
      missing and {!Corrupt} on structural damage. Segments are read
      whole into memory (they are bounded by the writer's
      [segment_bytes]), so batch extraction is pure pointer walking. *)

  val read_batch : t -> Batch.t -> max:int -> bool
  (** Fill [batch] with up to [max] event slots, crossing segment
      boundaries transparently; false at end of log (batch empty).
      Framing errors become error slots: a bad length varint or a
      truncated record consumes the rest of its segment as one
      quarantined event (the frame chain is unrecoverable there), a
      bad payload CRC consumes just that record. *)

  val next : t -> (Event.t, error) result option
  (** One-event convenience wrapper ([read_batch] of 1 +
      {!decode_frame}). *)

  val skip : t -> int -> int
  (** [skip r n] consumes up to [n] event slots (the resume path —
      mirrors line skipping, framing errors included) and returns the
      number actually skipped. *)

  val events_seen : t -> int
  (** Event slots consumed so far (the replay offset). *)

  val segment : t -> string
  (** Path of the segment currently being read. *)
end

(** {1 Zero-allocation decode primitives}

    Used by the sharded ingest path to decode payloads in place. *)

exception Malformed of reason * string
(** Raised by {!Cursor} reads on damaged payloads; only ever raised on
    corrupt input, so the happy path stays allocation-free. *)

module Cursor : sig
  type t

  val create : unit -> t
  val set : t -> Bytes.t -> pos:int -> limit:int -> unit
  val pos : t -> int
  val remaining : t -> int
  val at_end : t -> bool

  val varint : t -> int
  (** Unsigned LEB128; raises {!Malformed} ([Truncated] past the
      limit, [Bad_varint] on > 63 bits / negative). *)

  val float64 : t -> float
end

module Varint : sig
  val write : Buffer.t -> int -> unit
  (** Unsigned LEB128; raises [Invalid_argument] on negatives. *)
end
