(* Epoch-stamped BFS scratch. A node is marked iff stamp.(v) = epoch;
   clearing all marks is one increment. Epochs start at 1 and only grow,
   so a raw 0 stamp is never "marked" and can be used to unmark. *)

type workspace = {
  n : int;
  qcap : int; (* ring capacity n + 1: full never aliases empty *)
  mutable epoch : int;
  stamp : int array;
  stamp2 : int array; (* second mark set (settled nodes in 0-1 BFS) *)
  queue : int array; (* ring buffer; each node enqueued <= once per run *)
  mutable head : int;
  mutable tail : int;
  parent : int array; (* parent edge ids, meaningful iff stamp current *)
  dist : int array; (* distances, meaningful iff stamp current *)
}

let workspace n =
  if n < 0 then invalid_arg "Reach.workspace: negative capacity";
  {
    n;
    qcap = n + 1;
    epoch = 1;
    stamp = Array.make n 0;
    stamp2 = Array.make n 0;
    queue = Array.make (n + 1) 0;
    head = 0;
    tail = 0;
    parent = Array.make n (-1);
    dist = Array.make n 0;
  }

let capacity ws = ws.n
let marked ws v = ws.stamp.(v) = ws.epoch

let check_node ws what v =
  if v < 0 || v >= ws.n then invalid_arg ("Reach." ^ what ^ ": bad node")

let reset ws =
  ws.epoch <- ws.epoch + 1;
  ws.head <- 0;
  ws.tail <- 0

let push ws v =
  ws.queue.(ws.tail) <- v;
  ws.tail <- (if ws.tail + 1 = ws.qcap then 0 else ws.tail + 1)

let pop ws =
  let v = ws.queue.(ws.head) in
  ws.head <- (if ws.head + 1 = ws.qcap then 0 else ws.head + 1);
  v

let queue_empty ws = ws.head = ws.tail

(* Mark-and-enqueue sources, then expand through active out-edges. *)
let expand ws ~active g =
  while not (queue_empty ws) do
    let v = pop ws in
    Digraph.iter_out g v (fun e ->
        if active e then begin
          let w = Digraph.edge_dst g e in
          if ws.stamp.(w) <> ws.epoch then begin
            ws.stamp.(w) <- ws.epoch;
            push ws w
          end
        end)
  done

let bfs ws ~active g ~src =
  check_node ws "bfs" src;
  reset ws;
  ws.stamp.(src) <- ws.epoch;
  push ws src;
  expand ws ~active g

let bfs_sources ws ~active g sources =
  reset ws;
  List.iter
    (fun v ->
      check_node ws "bfs_sources" v;
      if ws.stamp.(v) <> ws.epoch then begin
        ws.stamp.(v) <- ws.epoch;
        push ws v
      end)
    sources;
  expand ws ~active g

(* Reverse expansion: walk in-edges, marking everything that can reach
   the enqueued seeds through active edges. *)
let expand_rev ws ~active g =
  while not (queue_empty ws) do
    let v = pop ws in
    Digraph.iter_in g v (fun e ->
        if active e then begin
          let w = Digraph.edge_src g e in
          if ws.stamp.(w) <> ws.epoch then begin
            ws.stamp.(w) <- ws.epoch;
            push ws w
          end
        end)
  done

let bfs_rev ws ~active g ~dst =
  check_node ws "bfs_rev" dst;
  reset ws;
  ws.stamp.(dst) <- ws.epoch;
  push ws dst;
  expand_rev ws ~active g

let count_marked ws =
  let c = ref 0 in
  for v = 0 to ws.n - 1 do
    if ws.stamp.(v) = ws.epoch then incr c
  done;
  !c

let snapshot ws = Array.init ws.n (fun v -> ws.stamp.(v) = ws.epoch)

let reachable_from ws ~active g sources =
  bfs_sources ws ~active g sources;
  snapshot ws

let unwind ws g ~src ~dst =
  let rec go v acc =
    if v = src then acc
    else begin
      let e = ws.parent.(v) in
      go (Digraph.edge_src g e) (e :: acc)
    end
  in
  go dst []

let shortest_path ws ~active g ~src ~dst =
  check_node ws "shortest_path" src;
  check_node ws "shortest_path" dst;
  if src = dst then Some []
  else begin
    reset ws;
    ws.stamp.(src) <- ws.epoch;
    push ws src;
    let found = ref false in
    while (not !found) && not (queue_empty ws) do
      let v = pop ws in
      Digraph.iter_out g v (fun e ->
          if (not !found) && active e then begin
            let w = Digraph.edge_dst g e in
            if ws.stamp.(w) <> ws.epoch then begin
              ws.stamp.(w) <- ws.epoch;
              ws.parent.(w) <- e;
              if w = dst then found := true else push ws w
            end
          end)
    done;
    if !found then Some (unwind ws g ~src ~dst) else None
  end

(* 0-1 BFS (Dial's deque variant): zero_cost edges extend the current
   frontier from the front, unit-cost edges from the back. A node can be
   re-queued once per incident edge, so the deque is sized by edges and
   allocated per call — this is a repair-time path, not the hot loop. *)
let cheapest_path ws ~usable ~zero_cost g ~src ~dst =
  check_node ws "cheapest_path" src;
  check_node ws "cheapest_path" dst;
  if src = dst then Some []
  else begin
    reset ws;
    let cap = Digraph.n_edges g + 2 in
    let deque = Array.make cap 0 in
    let head = ref 0 and tail = ref 0 and count = ref 0 in
    let push_back v =
      deque.(!tail) <- v;
      tail := (!tail + 1) mod cap;
      incr count
    in
    let push_front v =
      head := (!head + cap - 1) mod cap;
      deque.(!head) <- v;
      incr count
    in
    let pop_front () =
      let v = deque.(!head) in
      head := (!head + 1) mod cap;
      decr count;
      v
    in
    (* stamp marks "dist tentatively set"; stamp2 marks "settled". The
       deque pops in nondecreasing distance order, so a node's first pop
       carries its final distance; later (stale) pops are skipped. Each
       edge is then relaxed at most once, bounding pushes by edges + 1. *)
    ws.stamp.(src) <- ws.epoch;
    ws.dist.(src) <- 0;
    push_back src;
    let relax v e w n_cost =
      let dv = ws.dist.(v) + n_cost in
      if ws.stamp.(w) <> ws.epoch || dv < ws.dist.(w) then begin
        ws.stamp.(w) <- ws.epoch;
        ws.dist.(w) <- dv;
        ws.parent.(w) <- e;
        if n_cost = 0 then push_front w else push_back w
      end
    in
    while !count > 0 do
      let v = pop_front () in
      if ws.stamp2.(v) <> ws.epoch then begin
        ws.stamp2.(v) <- ws.epoch;
        Digraph.iter_out g v (fun e ->
            if usable e then begin
              let w = Digraph.edge_dst g e in
              if ws.stamp2.(w) <> ws.epoch then
                relax v e w (if zero_cost e then 0 else 1)
            end)
      end
    done;
    if ws.stamp.(dst) = ws.epoch then Some (unwind ws g ~src ~dst) else None
  end

module Cache = struct
  (* Double-buffered membership: the expensive invalidation (a deleted
     tree edge) recomputes into the spare buffer and swaps, so undo is a
     swap back. Each buffer keeps its own epoch counter; raw stamp 0 is
     never current, so unmarking a node is stamp := 0. *)
  type buf = {
    mutable stamp : int array;
    mutable parent : int array;
    mutable epoch : int;
  }

  type t = {
    g : Digraph.t;
    source : int;
    ws : workspace;
    mutable cur : buf;
    mutable alt : buf;
    trail : int array; (* nodes added by the last Grew, for undo *)
    mutable trail_len : int;
    (* plain always-on tallies of which update rule fired; read by the
       sampler's metrics flush and by the ablation reports *)
    mutable n_unchanged : int;
    mutable n_grew : int;
    mutable n_rebuilt : int;
    mutable n_undone : int;
  }

  type update = Unchanged | Grew | Rebuilt

  type stats = { unchanged : int; grew : int; rebuilt : int; undone : int }

  let stats t =
    {
      unchanged = t.n_unchanged;
      grew = t.n_grew;
      rebuilt = t.n_rebuilt;
      undone = t.n_undone;
    }

  let source t = t.source
  let reaches t v = t.cur.stamp.(v) = t.cur.epoch

  (* Full BFS from the source into [buf], recording the tree. *)
  let full_bfs t buf ~active =
    let ws = t.ws in
    buf.epoch <- buf.epoch + 1;
    ws.head <- 0;
    ws.tail <- 0;
    buf.stamp.(t.source) <- buf.epoch;
    buf.parent.(t.source) <- -1;
    push ws t.source;
    while not (queue_empty ws) do
      let v = pop ws in
      Digraph.iter_out t.g v (fun e ->
          if active e then begin
            let w = Digraph.edge_dst t.g e in
            if buf.stamp.(w) <> buf.epoch then begin
              buf.stamp.(w) <- buf.epoch;
              buf.parent.(w) <- e;
              push ws w
            end
          end)
    done

  let rebuild t ~active = full_bfs t t.cur ~active

  let create ws g ~source ~active =
    let n = Digraph.n_nodes g in
    if capacity ws < n then invalid_arg "Reach.Cache.create: workspace too small";
    if source < 0 || source >= n then invalid_arg "Reach.Cache.create: bad source";
    let buf () = { stamp = Array.make n 0; parent = Array.make n (-1); epoch = 0 } in
    let t =
      {
        g;
        source;
        ws;
        cur = buf ();
        alt = buf ();
        trail = Array.make n 0;
        trail_len = 0;
        n_unchanged = 0;
        n_grew = 0;
        n_rebuilt = 0;
        n_undone = 0;
      }
    in
    rebuild t ~active;
    t

  (* Incremental forward BFS from [d] (just activated, reachable
     source-side endpoint): marks only the newly reached region, and
     records it so a rejection can unmark it again. *)
  let grow t ~active ~edge d =
    let ws = t.ws in
    let buf = t.cur in
    ws.head <- 0;
    ws.tail <- 0;
    t.trail_len <- 0;
    buf.stamp.(d) <- buf.epoch;
    buf.parent.(d) <- edge;
    t.trail.(t.trail_len) <- d;
    t.trail_len <- t.trail_len + 1;
    push ws d;
    while not (queue_empty ws) do
      let v = pop ws in
      Digraph.iter_out t.g v (fun e ->
          if active e then begin
            let w = Digraph.edge_dst t.g e in
            if buf.stamp.(w) <> buf.epoch then begin
              buf.stamp.(w) <- buf.epoch;
              buf.parent.(w) <- e;
              t.trail.(t.trail_len) <- w;
              t.trail_len <- t.trail_len + 1;
              push ws w
            end
          end)
    done

  let update t ~active ~edge =
    let s = Digraph.edge_src t.g edge in
    if not (reaches t s) then begin
      (* flipping an edge whose source the set cannot see never changes
         what the source reaches, in either direction *)
      t.n_unchanged <- t.n_unchanged + 1;
      Unchanged
    end
    else if active edge then begin
      let d = Digraph.edge_dst t.g edge in
      if reaches t d then begin
        t.n_unchanged <- t.n_unchanged + 1;
        Unchanged
      end
      else begin
        grow t ~active ~edge d;
        t.n_grew <- t.n_grew + 1;
        Grew
      end
    end
    else begin
      let d = Digraph.edge_dst t.g edge in
      if t.cur.stamp.(d) <> t.cur.epoch || t.cur.parent.(d) <> edge then begin
        (* not the tree parent of its destination: every member's
           witness path avoids this edge, so the set is intact *)
        t.n_unchanged <- t.n_unchanged + 1;
        Unchanged
      end
      else begin
        full_bfs t t.alt ~active;
        let old = t.cur in
        t.cur <- t.alt;
        t.alt <- old;
        t.n_rebuilt <- t.n_rebuilt + 1;
        Rebuilt
      end
    end

  let undo t = function
    | Unchanged -> ()
    | Grew ->
      for i = 0 to t.trail_len - 1 do
        t.cur.stamp.(t.trail.(i)) <- 0
      done;
      t.trail_len <- 0;
      t.n_undone <- t.n_undone + 1
    | Rebuilt ->
      let fresh = t.cur in
      t.cur <- t.alt;
      t.alt <- fresh;
      t.n_undone <- t.n_undone + 1
end
