lib/core/summary.ml: Array Evidence Float Format Hashtbl Iflow_graph Iflow_stats Int List Set String
