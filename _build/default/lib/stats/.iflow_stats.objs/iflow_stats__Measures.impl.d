lib/stats/measures.ml: Array Float Format List
