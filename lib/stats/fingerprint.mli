(** Incremental 64-bit FNV-1a fingerprints.

    Deterministic, platform-independent content hashing for cache keys
    and derived seeds: feed ints / floats / strings in a fixed order and
    read the digest out as hex (cache keys) or as a non-negative int
    (seeding an {!Rng.t}). Not cryptographic — collision resistance is
    the 64-bit birthday bound, plenty for memoisation keys. *)

type t

val create : unit -> t
(** A fresh fingerprint at the FNV-1a offset basis. *)

val add_byte : t -> int -> unit
(** Feed the low 8 bits of an int. *)

val add_int : t -> int -> unit
val add_int64 : t -> int64 -> unit

val add_float : t -> float -> unit
(** Feeds the IEEE-754 bit pattern, so [0.0] and [-0.0] differ and
    NaNs hash by representation. *)

val add_bool : t -> bool -> unit

val add_string : t -> string -> unit
(** Feeds the bytes then the length, so consecutive strings of
    different splits fingerprint differently. *)

val add_floats : t -> float array -> unit
val add_ints : t -> int array -> unit

val value : t -> int64
(** The current 64-bit digest. *)

val to_hex : t -> string
(** The digest as 16 lowercase hex characters. *)

val to_seed : t -> int
(** The digest folded to a non-negative OCaml int, for [Rng.create]. *)
