(** Random walk with restart (Tong, Faloutsos & Pan, ICDM 2006) — the
    alternative flow predictor the paper compares against in Fig 5.

    RWR computes a stationary similarity score, not a probability: a
    walker starts at the source, follows out-edges with probability
    proportional to their weight, and teleports back to the source with
    the restart probability each step. The paper's point is precisely
    that using these scores as flow probabilities is badly calibrated. *)

val scores :
  ?restart:float -> ?tolerance:float -> ?max_iterations:int ->
  Iflow_core.Icm.t -> src:int -> float array
(** Stationary distribution of the restarting walk, one score per node,
    summing to 1. Edge weights are the ICM activation probabilities,
    row-normalised per node; a node with no (positive-weight) out-edge
    teleports. [restart] defaults to 0.15. *)

val flow_estimate :
  ?restart:float -> Iflow_core.Icm.t -> src:int -> dst:int -> float
(** The RWR stand-in for [Pr (src ~> dst)]: the sink's score rescaled by
    the maximum non-source score so the estimates span [0, 1] (raw
    stationary mass is vanishingly small on large graphs, which would
    make the comparison in the bucket experiment degenerate). *)
