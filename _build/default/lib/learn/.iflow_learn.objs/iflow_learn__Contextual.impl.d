lib/learn/contextual.ml: Array Iflow_core Iflow_graph Iflow_stats List
