(** Special mathematical functions needed by the probability machinery.

    All functions are pure and implemented from scratch (no external
    numerics in the sealed environment). Accuracy targets are documented
    per function and checked against reference values in the test suite. *)

val log_gamma : float -> float
(** [log_gamma x] is [ln (Gamma x)] for [x > 0], via the Lanczos
    approximation (g = 7, 9 coefficients). Relative error below 1e-13 on
    the tested range. Raises [Invalid_argument] for [x <= 0]. *)

val log_beta : float -> float -> float
(** [log_beta a b] is [ln (Beta (a, b))] for [a, b > 0]. *)

val log_choose : int -> int -> float
(** [log_choose n k] is [ln (n choose k)]. Raises [Invalid_argument]
    unless [0 <= k <= n]. *)

val betai : float -> float -> float -> float
(** [betai a b x] is the regularised incomplete beta function
    [I_x(a, b)] for [a, b > 0] and [x] in [[0, 1]] — the CDF of the
    Beta(a, b) distribution at [x]. Continued-fraction evaluation
    (Numerical Recipes style) with the symmetry transform for
    convergence. *)

val betai_inv : float -> float -> float -> float
(** [betai_inv a b p] is the quantile function of Beta(a, b): the [x]
    with [betai a b x = p], found by bisection. [p] outside [[0, 1]] is
    clamped. *)
