(** The network serving layer: a long-lived TCP front end over one
    {!Iflow_engine.Engine}, answering flow queries while the streaming
    learner hot-swaps model versions underneath it.

    {b Dialects.} The server sniffs the first line of every connection:
    an HTTP request-line gets the HTTP surface ([POST /query],
    [POST /evidence], [GET /metrics], [GET /healthz], one request per
    connection); anything else is a raw JSONL session — each line a
    {!Iflow_engine.Query} object (plus optional ["id"]/["tenant"]
    fields), each answer one {!Wire} line, connection held open
    (netcat-friendly). Both dialects share the same admission path.

    {b Admission pipeline.} Request lifecycle is
    decode → quota → queue → execute → respond:
    - a per-tenant token bucket ({!Quota}, keyed by the ["tenant"]
      field or [X-Tenant] header) sheds sustained abusers with a typed
      [quota_exceeded] response and a retry hint;
    - a bounded queue ({!Bqueue}) is the {e only} place requests wait;
      when it is full the request is refused {e immediately} with
      [over_capacity] — latency under overload stays bounded because
      backlog cannot grow;
    - a small pool of executor threads drains the queue through
      {!Iflow_engine.Engine.query} (whose chains fan out over the
      domain pool). Answers are bit-identical to [infoflow batch] on
      the same model and seed: the engine derives per-query seeds from
      (seed, model digest, query) alone, so neither concurrency nor
      arrival order can perturb an estimate.

    {b Hot-swap consistency.} Each query runs against the (model,
    digest) pair it captured at entry; the digest comes back in the
    answer and is mapped to the published version id via
    {!on_publish}. While a swap fails ({!note_degraded}), the engine
    keeps serving the last-good version and [/healthz] reports
    [degraded] — serving never stops because learning hiccuped.

    {b Observability.} Every stage records into {!Iflow_obs.Metrics}
    ([iflow_serve_*]: request/queue-wait SLO histograms, shed and
    degraded counters, queue depth, active connections, and the
    per-tenant [iflow_serve_phase_seconds] decomposition with phases
    [queue_wait] / [plan] / [sample] / [serialize]), scrapeable live at
    [GET /metrics].

    {b Request ids and the flight recorder.} Every decoded query line
    gets a request id — client-supplied via a ["request_id"] field
    (JSONL) or [X-Request-Id] header (HTTP; batched bodies suffix
    [-<lineno>] per line), server-minted otherwise — echoed on every
    answer and error line as ["request_id"] (and back in the
    [X-Request-Id] response header when the client supplied one). The
    id is threaded through the queue entry into
    {!Iflow_engine.Engine.query}, which tags the [engine.query] trace
    span and links the connection thread, worker thread, and pool
    domains with Chrome-trace flow events. One {!Iflow_obs.Flight}
    record per line — answer path, version/digest, the full phase
    decomposition in nanoseconds, convergence diagnostics or typed
    error — lands in the ring served by [GET /debug/requests?n=], and
    requests over [slow_query_ms] additionally log a structured
    slow-query line carrying the same record. None of this can perturb
    answers: ids and timings never reach the RNG, the cache key, or the
    result.

    {b Deadlines and cancellation.} A request may carry a deadline —
    a ["deadline_ms"] JSON member (JSONL or HTTP body line), an
    [X-Deadline-Ms] header covering an HTTP body, or the server-wide
    [default_deadline_ms] — clamped to [max_deadline_ms]. The budget
    becomes an {!Iflow_mcmc.Cancel} token riding the queue entry:
    admission refuses [deadline_unmeetable] when the recent overhead
    floor (queue-wait + serialize EWMA from the flight recorder)
    already exceeds the budget; workers drop entries that expired
    while queued with [deadline_exceeded] {e before} any sampling; the
    engine polls the token at round boundaries and mid-burn-in, and
    answers with whatever converged rounds it has (flagged
    ["partial":true], never cached) or a typed [deadline_exceeded].
    Every deadline-carrying request settles into exactly one outcome
    counted by [iflow_serve_deadline_total{outcome=
    ok|partial|deadline_exceeded|deadline_unmeetable}]. Requests
    without deadlines run exactly as before — the token is never
    consulted mid-draw on their behalf, and answers stay bit-for-bit
    identical with the machinery compiled in. *)

type config = {
  host : string;            (** bind address, default 127.0.0.1 *)
  port : int;               (** 0 picks an ephemeral port *)
  backlog : int;            (** listen(2) backlog *)
  queue_capacity : int;     (** bounded request queue — the knob that
                                trades queueing delay for shed rate *)
  workers : int;            (** executor threads draining the queue *)
  max_connections : int;    (** concurrent connections before shedding
                                at accept time *)
  quota : Quota.config option;  (** per-tenant buckets; [None] = off *)
  ingest_capacity : int;    (** bounded evidence queue for [POST /evidence] *)
  max_line_bytes : int;     (** per-line cap, both dialects *)
  max_body_bytes : int;     (** HTTP body cap *)
  flight_capacity : int;    (** flight-recorder ring size; {!start}
                                (re)configures the process-global
                                {!Iflow_obs.Flight} ring to this many
                                records; 0 leaves the recorder alone
                                (off unless someone else enabled it) *)
  slow_query_ms : int option;
      (** log a structured slow-query line (level [warn], full flight
          record attached) for any request whose admission-to-serialized
          wall time reaches this many milliseconds; [None] = off *)
  default_deadline_ms : int option;
      (** deadline applied to requests that do not carry their own
          (["deadline_ms"] member / [X-Deadline-Ms] header);
          [None] = no implicit deadline *)
  max_deadline_ms : int option;
      (** client-supplied deadlines are clamped down to this cap;
          [None] = unclamped *)
  read_timeout_ms : int option;
      (** per-connection [SO_RCVTIMEO]: a peer that sends {e nothing}
          inside one window gets a typed error and the connection is
          closed; a byte-dribbler that never completes a request line
          is reaped after ~4 windows of no progress. [None] disables
          both guards (and the reaper thread). *)
}

val default_config : config
(** 127.0.0.1:0, backlog 128, queue 64, 2 workers, 1024 connections,
    no quota, ingest queue 65536, 1 MiB lines, 8 MiB bodies, flight
    ring 1024, slow-query logging off, no deadlines, 30 s read
    timeout. *)

type t

val create :
  ?config:config -> ?gate:(unit -> unit) -> ?initial_version:int ->
  engine:Iflow_engine.Engine.t -> unit -> t
(** Wrap an engine. [initial_version] (default 0) is the version id of
    the model the engine currently holds — a resumed checkpoint's id
    when the CLI resumed one. [gate], when given, is called by every
    executor after dequeuing and before running a request — a test
    hook for deterministically stalling the executors (and thus
    filling the queue). Raises [Invalid_argument] on a nonsensical
    config. *)

val start : t -> unit
(** Bind, listen, and spawn the accept loop and executor threads;
    returns immediately. Raises [Unix.Unix_error] when the port cannot
    be bound, [Invalid_argument] when already started. *)

val port : t -> int
(** The bound port (the ephemeral one when config said 0). Only valid
    after {!start}. *)

val wait : t -> unit
(** Block until {!stop} completes (the CLI parks its main thread
    here). *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, close live connections, refuse
    new work with [shutting_down], drain already-admitted requests,
    join every thread, and close the ingest queue (ending a
    {!ingest_source} consumer). Idempotent. *)

(** {1 Ingest bridge} — evidence arriving over the network.

    [POST /evidence] body lines land in a bounded queue;
    {!ingest_source} adapts it to the line source
    {!Iflow_stream.Runner.run} pulls from, so the CLI runs learner and
    server in one process and models hot-swap under live traffic. *)

val ingest_line : t -> string -> bool
(** Offer one evidence line; [false] when the queue is full or closed
    (the HTTP handler turns that into [over_capacity]). *)

val ingest_source : t -> unit -> string option
(** Blocking puller over the evidence queue; [None] after {!stop}. *)

val ingest_pending : t -> int

(** {1 Learner integration} *)

val on_publish : t -> Iflow_stream.Snapshot.version -> unit
(** Hook for {!Iflow_stream.Runner.run}'s [on_publish]: records the
    digest the engine now serves under the published version id (the
    runner swaps before publishing, so reading the engine digest here
    is exact), and clears the degraded flag a failed swap set. When the
    preceding swap failed, the mapping is {e not} updated — answers
    keep reporting the version actually served. *)

val note_degraded : t -> stage:string -> exn -> unit
(** Hook for [on_degraded]: a ["swap"] failure marks the server
    degraded (surfaced in [/healthz] and
    [iflow_serve_degraded_total]) until a subsequent publish swaps
    cleanly. *)

val current_version : t -> int
val degraded : t -> bool

(** {1 Introspection} *)

type stats = {
  connections : int;     (** accepted since start *)
  active : int;          (** open right now *)
  requests : int;        (** decoded query requests *)
  answered : int;        (** answered with an estimate *)
  shed_capacity : int;   (** refused: queue full *)
  shed_quota : int;      (** refused: tenant bucket dry *)
  shed_deadline : int;   (** refused: [deadline_unmeetable] *)
  bad_requests : int;    (** undecodable or unanswerable *)
  engine_errors : int;   (** [Chains_failed] surfaced as 500s *)
  evidence_lines : int;  (** accepted via [POST /evidence] *)
}

val stats : t -> stats
val queue_depth : t -> int
val health_json : t -> string
(** The [GET /healthz] body (also handy for tests). *)
