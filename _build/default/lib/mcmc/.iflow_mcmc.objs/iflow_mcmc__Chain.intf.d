lib/mcmc/chain.mli: Conditions Iflow_core Iflow_stats
