lib/exp/scale.ml: Format Iflow_mcmc Sys
