lib/exp/fig7.mli: Format Iflow_stats Scale
