lib/exp/tables.ml: Evidence Format Iflow_bucket Iflow_core Iflow_graph Iflow_stats List Summary
