type prediction = { estimate : float; outcome : bool }

let brier predictions =
  match predictions with
  | [] -> invalid_arg "Measures.brier: empty"
  | _ ->
    let n = List.length predictions in
    let acc =
      List.fold_left
        (fun acc { estimate; outcome } ->
          let target = if outcome then 1.0 else 0.0 in
          let d = estimate -. target in
          acc +. (d *. d))
        0.0 predictions
    in
    acc /. float_of_int n

let normalised_likelihood ?(epsilon = 1e-6) predictions =
  match predictions with
  | [] -> invalid_arg "Measures.normalised_likelihood: empty"
  | _ ->
    let n = List.length predictions in
    let log_sum =
      List.fold_left
        (fun acc { estimate; outcome } ->
          let p = Float.max epsilon (Float.min (1.0 -. epsilon) estimate) in
          acc +. Float.log (if outcome then p else 1.0 -. p))
        0.0 predictions
    in
    Float.exp (log_sum /. float_of_int n)

let middle_values predictions =
  List.filter (fun { estimate; _ } -> estimate > 0.0 && estimate < 1.0) predictions

let paired_fold f ~expected ~actual =
  let n = Array.length expected in
  if n = 0 then invalid_arg "Measures: empty arrays";
  if n <> Array.length actual then invalid_arg "Measures: length mismatch";
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. f expected.(i) actual.(i)
  done;
  !acc /. float_of_int n

let rmse ~expected ~actual =
  Float.sqrt
    (paired_fold (fun e a -> (e -. a) *. (e -. a)) ~expected ~actual)

let mae ~expected ~actual =
  paired_fold (fun e a -> Float.abs (e -. a)) ~expected ~actual

type row = {
  label : string;
  nl_all : float;
  brier_all : float;
  count_all : int;
  nl_middle : float option;
  brier_middle : float option;
  count_middle : int;
}

let table_row ~label predictions =
  let middle = middle_values predictions in
  {
    label;
    nl_all = normalised_likelihood predictions;
    brier_all = brier predictions;
    count_all = List.length predictions;
    nl_middle =
      (match middle with [] -> None | m -> Some (normalised_likelihood m));
    brier_middle = (match middle with [] -> None | m -> Some (brier m));
    count_middle = List.length middle;
  }

let pp_opt ppf = function
  | None -> Format.fprintf ppf "%10s" "-"
  | Some x -> Format.fprintf ppf "%10.6f" x

let pp_row ppf r =
  Format.fprintf ppf "%-28s %10.6f %10.6f %7d %a %a %7d" r.label r.nl_all
    r.brier_all r.count_all pp_opt r.nl_middle pp_opt r.brier_middle
    r.count_middle

let pp_table ppf rows =
  Format.fprintf ppf "%-28s %10s %10s %7s %10s %10s %7s@." "experiment"
    "NL(all)" "Brier(all)" "n" "NL(mid)" "Brier(mid)" "n_mid";
  List.iter (fun r -> Format.fprintf ppf "%a@." pp_row r) rows
