lib/exp/fig7.ml: Array Cascade Float Format Generator Iflow_core Iflow_learn Iflow_stats Joint_bayes List Scale Summary Trainer
