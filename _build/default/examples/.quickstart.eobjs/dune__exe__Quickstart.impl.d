examples/quickstart.ml: Format Iflow_core Iflow_graph Iflow_mcmc Iflow_stats List Printf
