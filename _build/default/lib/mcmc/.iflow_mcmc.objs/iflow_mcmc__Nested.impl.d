lib/mcmc/nested.ml: Array Estimator Iflow_core Iflow_stats
