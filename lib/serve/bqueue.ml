type 'a t = {
  q : 'a Queue.t;
  capacity : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  {
    q = Queue.create ();
    capacity;
    lock = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let capacity t = t.capacity

let length t = Mutex.protect t.lock (fun () -> Queue.length t.q)

let try_push t x =
  Mutex.protect t.lock (fun () ->
      if t.closed || Queue.length t.q >= t.capacity then false
      else begin
        Queue.push x t.q;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  Mutex.protect t.lock (fun () ->
      let rec wait () =
        match Queue.take_opt t.q with
        | Some x -> Some x
        | None ->
          if t.closed then None
          else begin
            Condition.wait t.nonempty t.lock;
            wait ()
          end
      in
      wait ())

let pop_opt t = Mutex.protect t.lock (fun () -> Queue.take_opt t.q)

let iter t f = Mutex.protect t.lock (fun () -> Queue.iter f t.q)

let close t =
  Mutex.protect t.lock (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let is_closed t = Mutex.protect t.lock (fun () -> t.closed)
