lib/mcmc/influence.ml: Array Float Iflow_core Iflow_stats List
