(** Flow conditions: constraints on which end-to-end flows exist
    (paper Section III, "constrained flow" tuples (u, v, a)).

    Conditioning the Metropolis-Hastings chain on a set of conditions
    samples pseudo-states from [Pr (x | M, C)] (Equation 6); the chain
    only ever moves between states whose combined indicator
    [I(x, C) = 1] (Equation 7). *)

type t

val empty : t

val v : (int * int * bool) list -> t
(** [(u, v, required)] — when [required], flow [u ~> v] must exist;
    otherwise it must not. Raises [Invalid_argument] on a directly
    contradictory pair. Conditions are stored grouped by source (stable
    within a source), so indicator checks do one reachability sweep per
    distinct source. *)

val is_empty : t -> bool
val to_list : t -> (int * int * bool) list
val length : t -> int

val sources : t -> int list
(** Distinct condition sources (reachability is computed once per
    source when checking the indicator). *)

val satisfied : Iflow_core.Icm.t -> Iflow_core.Pseudo_state.t -> t -> bool
(** The combined indicator I(x, C). *)

val satisfied_ws :
  Iflow_graph.Reach.workspace ->
  Iflow_core.Icm.t -> Iflow_core.Pseudo_state.t -> t -> bool
(** Allocation-free {!satisfied}: one workspace BFS per distinct
    condition source (conditions are kept grouped by source). *)

val initial_state :
  Iflow_stats.Rng.t -> Iflow_core.Icm.t -> t ->
  Iflow_core.Pseudo_state.t option
(** A pseudo-state with positive probability under the model that
    satisfies the conditions: first rejection-sample from the marginal,
    then fall back on greedy repair (activate the path requiring the
    fewest new edge activations for unmet positive conditions, cut
    paths for violated negative ones).
    [None] when no satisfying state was found — e.g. a positive
    condition between disconnected nodes. *)

val pp : Format.formatter -> t -> unit
