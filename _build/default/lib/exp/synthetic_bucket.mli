(** Shared machinery for Figs 1 and 5: the bucket experiment on synthetic
    betaICMs (paper Section IV-C).

    Per repetition: generate a synthetic betaICM; sample a point ICM
    from it; sample a pseudo-state (the "active test state"); pick a
    random source/sink pair; the boolean outcome is whether an active
    path connects them; the estimate comes from the estimator under
    test, reading the betaICM. *)

type estimator =
  | Metropolis_hastings of Iflow_mcmc.Estimator.config
      (** MH flow sampling on the betaICM's expected ICM (Fig 1) *)
  | Random_walk_restart of float (** restart probability (Fig 5) *)

val run :
  Iflow_stats.Rng.t ->
  models:int ->
  nodes:int ->
  edges:int ->
  estimator:estimator ->
  label:string ->
  Iflow_bucket.Bucket.t
(** The paper runs 2000 models of 50 nodes / 200 edges with 30 bins. *)
