open Iflow_core
open Iflow_mcmc
module Digraph = Iflow_graph.Digraph
module Gen = Iflow_graph.Gen
module Rng = Iflow_stats.Rng
module Descriptive = Iflow_stats.Descriptive

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let triangle p12 p13 p23 =
  let g = Digraph.of_edges ~nodes:3 [ (0, 1); (0, 2); (1, 2) ] in
  Icm.create g [| p12; p13; p23 |]

let small_random_icm seed ~nodes ~edges =
  let rng = Rng.create seed in
  let g = Gen.gnm rng ~nodes ~edges in
  (* keep probabilities away from 0/1 so chains mix quickly *)
  Icm.create g (Array.init edges (fun _ -> 0.1 +. (0.8 *. Rng.uniform rng)))

let test_config = { Estimator.burn_in = 2000; thin = 10; samples = 6000 }

(* ---------- Conditions ---------- *)

let test_conditions_basics () =
  let c = Conditions.v [ (0, 2, true); (1, 2, false) ] in
  Alcotest.(check int) "length" 2 (Conditions.length c);
  Alcotest.(check (list int)) "sources" [ 0; 1 ] (Conditions.sources c);
  Alcotest.(check bool) "empty" true (Conditions.is_empty Conditions.empty);
  Alcotest.check_raises "contradiction"
    (Invalid_argument "Conditions.v: contradictory conditions on 0 ~> 2")
    (fun () -> ignore (Conditions.v [ (0, 2, true); (0, 2, false) ]))

let test_conditions_satisfied () =
  let icm = triangle 1.0 0.0 1.0 in
  let s = Pseudo_state.create 3 in
  Pseudo_state.set s 0 true;
  Pseudo_state.set s 2 true;
  Alcotest.(check bool) "positive held" true
    (Conditions.satisfied icm s (Conditions.v [ (0, 2, true) ]));
  Alcotest.(check bool) "negative violated" false
    (Conditions.satisfied icm s (Conditions.v [ (0, 2, false) ]));
  Alcotest.(check bool) "mixed" true
    (Conditions.satisfied icm s (Conditions.v [ (0, 1, true); (2, 0, false) ]))

let test_conditions_initial_state () =
  let icm = triangle 0.5 0.5 0.5 in
  let rng = Rng.create 21 in
  let c = Conditions.v [ (0, 2, true); (0, 1, false) ] in
  (match Conditions.initial_state rng icm c with
  | None -> Alcotest.fail "feasible conditions unsatisfied"
  | Some s ->
    Alcotest.(check bool) "satisfies" true (Conditions.satisfied icm s c));
  (* infeasible: no edge or path 2 -> 0 exists in the triangle *)
  let impossible = Conditions.v [ (2, 0, true) ] in
  Alcotest.(check bool) "infeasible detected" true
    (Conditions.initial_state rng icm impossible = None)

let test_conditions_initial_state_respects_determinism () =
  (* edges with p = 0 must stay inactive even while repairing *)
  let icm = triangle 0.0 0.5 0.5 in
  let rng = Rng.create 22 in
  let c = Conditions.v [ (0, 1, true) ] in
  (* only route to 1 is edge 0, which has probability 0: infeasible *)
  Alcotest.(check bool) "zero-prob path unusable" true
    (Conditions.initial_state rng icm c = None)

(* ---------- Chain mechanics ---------- *)

let test_chain_normaliser_consistency () =
  let icm = small_random_icm 31 ~nodes:10 ~edges:30 in
  let rng = Rng.create 32 in
  let chain = Chain.create rng icm in
  Chain.advance rng chain 5000;
  let state = Chain.state chain in
  let z = ref 0.0 in
  for e = 0 to 29 do
    let p = Icm.prob icm e in
    z := !z +. (if Pseudo_state.get state e then 1.0 -. p else p)
  done;
  check_close ~eps:1e-6 "normaliser tracked" !z (Chain.normaliser chain)

let test_chain_respects_impossible_edges () =
  let icm = triangle 0.0 1.0 0.5 in
  let rng = Rng.create 33 in
  let chain = Chain.create rng icm in
  Chain.advance rng chain 2000;
  let s = Chain.state chain in
  Alcotest.(check bool) "p=0 edge never active" false (Pseudo_state.get s 0);
  Alcotest.(check bool) "p=1 edge always active" true (Pseudo_state.get s 1)

let test_chain_acceptance_reported () =
  let icm = small_random_icm 34 ~nodes:8 ~edges:20 in
  let rng = Rng.create 35 in
  let chain = Chain.create rng icm in
  Chain.advance rng chain 1000;
  Alcotest.(check int) "steps" 1000 (Chain.steps_taken chain);
  let rate = Chain.acceptance_rate chain in
  Alcotest.(check bool) "acceptance sane" true (rate > 0.2 && rate <= 1.0)

let test_chain_init_validation () =
  let icm = triangle 0.5 0.5 0.5 in
  let rng = Rng.create 36 in
  let bad = Pseudo_state.create 2 in
  Alcotest.check_raises "size" (Invalid_argument "Chain.create: init size mismatch")
    (fun () -> ignore (Chain.create ~init:bad rng icm));
  let violating = Pseudo_state.create 3 in
  Alcotest.check_raises "conditions"
    (Invalid_argument "Chain.create: init violates conditions") (fun () ->
      ignore
        (Chain.create
           ~conditions:(Conditions.v [ (0, 1, true) ])
           ~init:violating rng icm))

(* The chain's stationary edge-activation frequencies must match the
   independent Bernoulli marginals of Equation 3. *)
let test_chain_stationary_marginals () =
  let icm = triangle 0.2 0.7 0.5 in
  let rng = Rng.create 37 in
  let counts = Array.make 3 0 in
  let n = 20000 in
  let () =
    Estimator.fold_samples rng icm
      { Estimator.burn_in = 1000; thin = 5; samples = n }
      ~init:()
      ~f:(fun () s ->
        for e = 0 to 2 do
          if Pseudo_state.get s e then counts.(e) <- counts.(e) + 1
        done)
  in
  Array.iteri
    (fun e c ->
      check_close ~eps:0.02
        (Printf.sprintf "edge %d marginal" e)
        (Icm.prob icm e)
        (float_of_int c /. float_of_int n))
    counts

(* ---------- Estimators vs brute force ---------- *)

let test_flow_probability_matches_exact () =
  let icm = triangle 0.5 0.25 0.75 in
  let rng = Rng.create 41 in
  let estimate = Estimator.flow_probability rng icm test_config ~src:0 ~dst:2 in
  check_close ~eps:0.02 "triangle flow"
    (Exact.brute_force_flow icm ~src:0 ~dst:2)
    estimate

let test_flow_probability_random_graphs () =
  for seed = 1 to 4 do
    let icm = small_random_icm (100 + seed) ~nodes:8 ~edges:18 in
    let rng = Rng.create (200 + seed) in
    let truth = Exact.brute_force_flow icm ~src:0 ~dst:7 in
    let estimate =
      Estimator.flow_probability rng icm test_config ~src:0 ~dst:7
    in
    check_close ~eps:0.03 (Printf.sprintf "seed %d" seed) truth estimate
  done

let test_conditional_flow_matches_exact () =
  let icm = small_random_icm 51 ~nodes:7 ~edges:15 in
  let rng = Rng.create 52 in
  let conditions = [ (0, 3, true) ] in
  let truth = Exact.brute_force_conditional icm ~conditions ~src:0 ~dst:6 in
  let estimate =
    Estimator.flow_probability
      ~conditions:(Conditions.v conditions)
      rng icm test_config ~src:0 ~dst:6
  in
  check_close ~eps:0.03 "positive condition" truth estimate;
  let conditions = [ (0, 3, false); (1, 6, true) ] in
  match Exact.brute_force_conditional icm ~conditions ~src:0 ~dst:6 with
  | truth ->
    let estimate =
      Estimator.flow_probability
        ~conditions:(Conditions.v conditions)
        rng icm test_config ~src:0 ~dst:6
    in
    check_close ~eps:0.03 "mixed conditions" truth estimate
  | exception Failure _ -> ()

let test_conditional_by_ratio_matches_constrained () =
  (* the footnote-2 rejection/ratio estimator agrees with both the
     constrained chain and brute force *)
  let icm = small_random_icm 59 ~nodes:7 ~edges:15 in
  let rng = Rng.create 60 in
  let conditions = [ (0, 3, true) ] in
  let truth = Exact.brute_force_conditional icm ~conditions ~src:0 ~dst:6 in
  let by_ratio =
    Estimator.conditional_flow_by_ratio rng icm test_config
      ~conditions:(Conditions.v conditions) ~src:0 ~dst:6
  in
  check_close ~eps:0.04 "ratio estimator" truth by_ratio

let test_community_flow_matches_exact () =
  let icm = small_random_icm 53 ~nodes:7 ~edges:15 in
  let rng = Rng.create 54 in
  let sinks = [ 4; 5; 6 ] in
  let truth = Exact.brute_force_community icm ~src:0 ~sinks in
  let estimate = Estimator.community_flow rng icm test_config ~src:0 ~sinks in
  check_close ~eps:0.03 "community" truth estimate

let test_joint_flow () =
  let icm = small_random_icm 55 ~nodes:7 ~edges:15 in
  let rng = Rng.create 56 in
  (* joint flow from a single source to two sinks equals community flow *)
  let a = Estimator.joint_flow rng icm test_config ~flows:[ (0, 5); (0, 6) ] in
  let b = Exact.brute_force_community icm ~src:0 ~sinks:[ 5; 6 ] in
  check_close ~eps:0.03 "joint = community" b a

let test_source_to_all () =
  let icm = triangle 0.5 0.25 0.75 in
  let rng = Rng.create 57 in
  let all = Estimator.source_to_all rng icm test_config ~src:0 in
  check_close "self" 1.0 all.(0);
  check_close ~eps:0.02 "to 1" 0.5 all.(1);
  check_close ~eps:0.02 "to 2"
    (Exact.brute_force_flow icm ~src:0 ~dst:2)
    all.(2)

let test_impact_distribution_matches_exact () =
  let icm = triangle 0.5 0.25 0.75 in
  let rng = Rng.create 58 in
  let samples = Estimator.impact_samples rng icm test_config ~src:0 in
  let truth = Exact.brute_force_impact icm ~src:0 in
  let n = Array.length samples in
  let freq = Array.make 3 0 in
  Array.iter (fun k -> freq.(k) <- freq.(k) + 1) samples;
  for k = 0 to 2 do
    check_close ~eps:0.02
      (Printf.sprintf "impact %d" k)
      truth.(k)
      (float_of_int freq.(k) /. float_of_int n)
  done

(* ---------- Nested MH ---------- *)

let test_nested_flow_samples () =
  let rng = Rng.create 61 in
  let g = Digraph.of_edges ~nodes:2 [ (0, 1) ] in
  (* tight beta: nested samples should cluster near its mean *)
  let model = Beta_icm.create g [| Iflow_stats.Dist.Beta.v 80.0 20.0 |] in
  let samples =
    Nested.flow_samples rng model
      { Estimator.burn_in = 200; thin = 5; samples = 500 }
      ~reps:40 ~src:0 ~dst:1
  in
  Alcotest.(check int) "reps" 40 (Array.length samples);
  check_close ~eps:0.04 "clustered at beta mean" 0.8 (Descriptive.mean samples);
  Alcotest.(check bool) "spread is small" true (Descriptive.std samples < 0.1)

let test_nested_uncertainty_widens_with_flat_beta () =
  let rng = Rng.create 62 in
  let g = Digraph.of_edges ~nodes:2 [ (0, 1) ] in
  let config = { Estimator.burn_in = 200; thin = 5; samples = 400 } in
  let tight = Beta_icm.create g [| Iflow_stats.Dist.Beta.v 200.0 200.0 |] in
  let flat = Beta_icm.create g [| Iflow_stats.Dist.Beta.v 2.0 2.0 |] in
  let s_tight = Nested.flow_samples rng tight config ~reps:60 ~src:0 ~dst:1 in
  let s_flat = Nested.flow_samples rng flat config ~reps:60 ~src:0 ~dst:1 in
  Alcotest.(check bool) "flat beta gives wider flow distribution" true
    (Descriptive.std s_flat > 2.0 *. Descriptive.std s_tight)

let test_nested_fit_beta () =
  let rng = Rng.create 63 in
  let b = Iflow_stats.Dist.Beta.v 6.0 3.0 in
  let samples = Array.init 5000 (fun _ -> Iflow_stats.Dist.Beta.sample rng b) in
  match Nested.fit_beta samples with
  | None -> Alcotest.fail "fit failed"
  | Some fitted ->
    check_close ~eps:0.5 "alpha" 6.0 fitted.Iflow_stats.Dist.Beta.alpha;
    check_close ~eps:0.3 "beta" 3.0 fitted.Iflow_stats.Dist.Beta.beta

let test_gaussian_flow_samples () =
  let rng = Rng.create 64 in
  let g = Digraph.of_edges ~nodes:2 [ (0, 1) ] in
  let samples =
    Nested.gaussian_flow_samples rng g ~mean:[| 0.6 |] ~std:[| 0.05 |]
      { Estimator.burn_in = 100; thin = 2; samples = 300 }
      ~reps:40 ~src:0 ~dst:1
  in
  check_close ~eps:0.04 "gaussian mean" 0.6 (Descriptive.mean samples)

(* ---------- Delay (latency extension) ---------- *)

let test_delay_sample_dist () =
  let rng = Rng.create 71 in
  check_close "constant" 2.5 (Delay.sample_dist rng (Delay.Constant 2.5));
  let us = Array.init 5000 (fun _ -> Delay.sample_dist rng (Delay.Uniform (1.0, 3.0))) in
  Array.iter (fun u -> if u < 1.0 || u > 3.0 then Alcotest.fail "range") us;
  check_close ~eps:0.05 "uniform mean" 2.0 (Descriptive.mean us);
  let es = Array.init 20000 (fun _ -> Delay.sample_dist rng (Delay.Exponential 1.5)) in
  check_close ~eps:0.05 "exponential mean" 1.5 (Descriptive.mean es);
  let gs =
    Array.init 20000 (fun _ ->
        Delay.sample_dist rng (Delay.Gamma { shape = 2.0; scale = 0.5 }))
  in
  check_close ~eps:0.05 "gamma mean" 1.0 (Descriptive.mean gs);
  Alcotest.check_raises "negative constant"
    (Invalid_argument "Delay: negative constant") (fun () ->
      ignore (Delay.sample_dist rng (Delay.Constant (-1.0))))

let test_delay_earliest_arrival () =
  (* 0 -> 1 -> 2 plus a direct slow edge 0 -> 2 *)
  let g = Digraph.of_edges ~nodes:3 [ (0, 1); (1, 2); (0, 2) ] in
  let icm = Icm.const g 1.0 in
  let delays = [| 1.0; 1.0; 3.0 |] in
  let delay e = delays.(e) in
  Alcotest.(check (option (float 1e-12))) "two-hop wins" (Some 2.0)
    (Delay.earliest_arrival icm ~active:(fun _ -> true) ~delay ~src:0 ~dst:2);
  Alcotest.(check (option (float 1e-12))) "direct when hop cut" (Some 3.0)
    (Delay.earliest_arrival icm ~active:(fun e -> e <> 0) ~delay ~src:0 ~dst:2);
  Alcotest.(check (option (float 1e-12))) "unreachable" None
    (Delay.earliest_arrival icm
       ~active:(fun e -> e = 1)
       ~delay ~src:0 ~dst:2);
  Alcotest.(check (option (float 1e-12))) "self" (Some 0.0)
    (Delay.earliest_arrival icm ~active:(fun _ -> true) ~delay ~src:2 ~dst:2)

let test_delay_arrival_samples () =
  let rng = Rng.create 72 in
  let g = Digraph.of_edges ~nodes:2 [ (0, 1) ] in
  let model = Delay.uniform_delay (Icm.create g [| 0.5 |]) (Delay.Constant 2.0) in
  let config = { Estimator.burn_in = 500; thin = 5; samples = 4000 } in
  let result = Delay.arrival_samples rng model config ~src:0 ~dst:1 in
  Alcotest.(check int) "accounting" 4000
    (result.Delay.reached + result.Delay.missed);
  Array.iter (fun t -> check_close "constant delay" 2.0 t) result.Delay.times;
  check_close ~eps:0.03 "defective mass is flow probability" 0.5
    (float_of_int result.Delay.reached /. 4000.0);
  check_close ~eps:0.03 "deadline beats delay" 0.5
    (Delay.probability_within rng model config ~src:0 ~dst:1 ~deadline:2.5);
  check_close ~eps:0.03 "deadline too tight" 0.0
    (Delay.probability_within rng model config ~src:0 ~dst:1 ~deadline:1.0)

(* ---------- Influence maximisation ---------- *)

let test_influence_expected_spread () =
  let rng = Rng.create 75 in
  (* path 0 -> 1 -> 2 with certain edges: spread from {0} is 3 *)
  let icm = Icm.const (Gen.path 3) 1.0 in
  check_close "deterministic spread" 3.0
    (Influence.expected_spread rng icm ~seeds:[ 0 ] ~runs:50);
  (* single edge at p = 0.4: E[spread from {0}] = 1 + 0.4 *)
  let icm = Icm.create (Gen.path 2) [| 0.4 |] in
  check_close ~eps:0.03 "bernoulli spread" 1.4
    (Influence.expected_spread rng icm ~seeds:[ 0 ] ~runs:10000)

let test_influence_greedy_picks_hub () =
  let rng = Rng.create 76 in
  (* a star out of node 0 plus an isolated pair: the hub dominates *)
  let g =
    Digraph.of_edges ~nodes:7
      [ (0, 1); (0, 2); (0, 3); (0, 4); (5, 6) ]
  in
  let icm = Icm.const g 0.9 in
  let seeds, spread = Influence.greedy_seeds ~runs:300 rng icm ~k:2 in
  Alcotest.(check int) "two seeds" 2 (List.length seeds);
  Alcotest.(check bool) "hub selected first" true (List.hd seeds = 0);
  Alcotest.(check bool) "second seed covers the pair" true (List.mem 5 seeds);
  Alcotest.(check bool) "spread sane" true (spread > 5.0 && spread <= 7.0)

let test_influence_greedy_validation () =
  let rng = Rng.create 77 in
  let icm = Icm.const (Gen.path 3) 0.5 in
  Alcotest.check_raises "k too large"
    (Invalid_argument "Influence.greedy_seeds: bad k") (fun () ->
      ignore (Influence.greedy_seeds rng icm ~k:4))

(* ---------- Properties ---------- *)

let prop_conditioned_flow_is_certain =
  QCheck.Test.make ~count:8 ~name:"P(src~>mid | src~>mid) = 1 via sampling"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let icm = small_random_icm seed ~nodes:6 ~edges:12 in
      if not (Iflow_graph.Traverse.reaches (Icm.graph icm) ~src:0 ~dst:3) then
        true (* condition infeasible on this topology: nothing to test *)
      else begin
        let rng = Rng.create (seed + 7) in
        let estimate =
          Estimator.flow_probability
            ~conditions:(Conditions.v [ (0, 3, true) ])
            rng icm
            { Estimator.burn_in = 500; thin = 5; samples = 500 }
            ~src:0 ~dst:3
        in
        estimate = 1.0
      end)

let qcheck tests =
  List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0 |])) tests

let () =
  Alcotest.run "iflow_mcmc"
    [
      ( "conditions",
        [
          Alcotest.test_case "basics" `Quick test_conditions_basics;
          Alcotest.test_case "satisfied" `Quick test_conditions_satisfied;
          Alcotest.test_case "initial state" `Quick test_conditions_initial_state;
          Alcotest.test_case "determinism respected" `Quick
            test_conditions_initial_state_respects_determinism;
        ] );
      ( "chain",
        [
          Alcotest.test_case "normaliser consistency" `Quick test_chain_normaliser_consistency;
          Alcotest.test_case "impossible edges" `Quick test_chain_respects_impossible_edges;
          Alcotest.test_case "acceptance reported" `Quick test_chain_acceptance_reported;
          Alcotest.test_case "init validation" `Quick test_chain_init_validation;
          Alcotest.test_case "stationary marginals" `Slow test_chain_stationary_marginals;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "triangle vs exact" `Slow test_flow_probability_matches_exact;
          Alcotest.test_case "random graphs vs exact" `Slow test_flow_probability_random_graphs;
          Alcotest.test_case "conditional vs exact" `Slow test_conditional_flow_matches_exact;
          Alcotest.test_case "conditional by ratio" `Slow
            test_conditional_by_ratio_matches_constrained;
          Alcotest.test_case "community vs exact" `Slow test_community_flow_matches_exact;
          Alcotest.test_case "joint flow" `Slow test_joint_flow;
          Alcotest.test_case "source to all" `Slow test_source_to_all;
          Alcotest.test_case "impact distribution" `Slow test_impact_distribution_matches_exact;
        ]
        @ qcheck [ prop_conditioned_flow_is_certain ] );
      ( "influence",
        [
          Alcotest.test_case "expected spread" `Quick test_influence_expected_spread;
          Alcotest.test_case "greedy picks hub" `Slow test_influence_greedy_picks_hub;
          Alcotest.test_case "validation" `Quick test_influence_greedy_validation;
        ] );
      ( "delay",
        [
          Alcotest.test_case "sample dist" `Quick test_delay_sample_dist;
          Alcotest.test_case "earliest arrival" `Quick test_delay_earliest_arrival;
          Alcotest.test_case "arrival samples" `Slow test_delay_arrival_samples;
        ] );
      ( "nested",
        [
          Alcotest.test_case "flow samples" `Slow test_nested_flow_samples;
          Alcotest.test_case "uncertainty widens" `Slow test_nested_uncertainty_widens_with_flat_beta;
          Alcotest.test_case "fit beta" `Quick test_nested_fit_beta;
          Alcotest.test_case "gaussian sampling" `Slow test_gaussian_flow_samples;
        ] );
    ]
