test/test_io.ml: Alcotest Array Filename Fun Iflow_core Iflow_graph Iflow_io Iflow_stats Iflow_twitter List Sys
