(** Probability distributions: samplers and (log-)densities.

    Samplers take an explicit {!Rng.t}. Densities are pure. *)

val gaussian : Rng.t -> mean:float -> std:float -> float
(** Box-Muller normal sample. Requires [std >= 0]. *)

val gaussian_log_pdf : mean:float -> std:float -> float -> float

val gamma : Rng.t -> shape:float -> scale:float -> float
(** Marsaglia-Tsang gamma sample; [shape > 0], [scale > 0]. *)

val binomial : Rng.t -> n:int -> p:float -> int
(** Binomial sample by pmf inversion. O(n) worst case, fine for the
    evidence sizes used here. *)

val binomial_log_pmf : n:int -> p:float -> int -> float
(** [binomial_log_pmf ~n ~p k] is [ln Pr(K = k)] for K ~ Binomial(n, p).
    Handles [p = 0] and [p = 1] exactly (0 or [neg_infinity]). *)

val categorical : Rng.t -> float array -> int
(** [categorical rng weights] draws index [i] with probability
    proportional to [weights.(i)] (weights must be non-negative with a
    positive sum). Linear scan; use {!Fenwick} when weights mutate. *)

(** Beta distributions, the workhorse of betaICMs. *)
module Beta : sig
  type t = { alpha : float; beta : float }

  val v : float -> float -> t
  (** [v alpha beta] with both parameters [> 0]. *)

  val uniform : t
  (** Beta(1, 1), the uninformative prior used throughout the paper. *)

  val mean : t -> float
  val variance : t -> float
  val std : t -> float

  val mode : t -> float
  (** Mode for [alpha, beta > 1]; falls back to the mean otherwise. *)

  val log_pdf : t -> float -> float
  val cdf : t -> float -> float
  val quantile : t -> float -> float

  val interval : t -> float -> float * float
  (** [interval t mass] is the central credible interval holding [mass]
      probability, e.g. [interval t 0.95] is the (2.5%, 97.5%) quantile
      pair used for the paper's confidence bands. *)

  val sample : Rng.t -> t -> float
  (** Sample via two gamma draws. *)

  val fit_moments : mean:float -> variance:float -> t option
  (** Method-of-moments fit; [None] when the moments are not achievable
      by any beta distribution (variance too large or degenerate mean).
      Used for the dashed "implied beta" curves of the paper's Fig 3. *)

  val of_counts : successes:int -> failures:int -> t
  (** Posterior from a uniform prior and the given Bernoulli counts:
      Beta(successes + 1, failures + 1) — exactly the paper's attributed
      training rule and its empirical-bucket distribution. *)

  val pp : Format.formatter -> t -> unit
end
