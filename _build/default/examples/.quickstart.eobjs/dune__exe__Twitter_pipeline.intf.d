examples/twitter_pipeline.mli:
