type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;          (* bytes received, not yet consumed *)
  chunk : Bytes.t;
  max_line_bytes : int;
  mutable eof : bool;
}

let reader ?(max_line_bytes = 1 lsl 20) fd =
  {
    fd;
    buf = Buffer.create 1024;
    chunk = Bytes.create 8192;
    max_line_bytes;
    eof = false;
  }

type line = Line of string | Eof | Too_long | Timeout

exception Timed_out

(* EAGAIN/EWOULDBLOCK here means the fd carries SO_RCVTIMEO and the
   peer sent nothing inside it — the slow-loris guard, not an error *)
let rec refill r =
  match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
  | 0 ->
    r.eof <- true;
    false
  | n ->
    Buffer.add_subbytes r.buf r.chunk 0 n;
    true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> refill r
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    raise Timed_out

(* consume [n] bytes from the front of the buffer *)
let take r n =
  let s = Buffer.sub r.buf 0 n in
  let rest = Buffer.sub r.buf n (Buffer.length r.buf - n) in
  Buffer.clear r.buf;
  Buffer.add_string r.buf rest;
  s

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let read_line r =
  let rec go scanned =
    let data = Buffer.contents r.buf in
    match String.index_from_opt data scanned '\n' with
    | Some i ->
      let line = take r (i + 1) in
      Line (strip_cr (String.sub line 0 i))
    | None ->
      if Buffer.length r.buf > r.max_line_bytes then Too_long
      else if r.eof then
        if Buffer.length r.buf = 0 then Eof
        else
          (* final unterminated line: accept it (netcat-friendly) *)
          Line (strip_cr (take r (Buffer.length r.buf)))
      else begin
        let scanned = Buffer.length r.buf in
        match refill r with
        | (_ : bool) -> go scanned
        | exception Timed_out -> Timeout
      end
  in
  go 0

let read_exactly r n =
  let rec go () =
    if Buffer.length r.buf >= n then Some (take r n)
    else if r.eof then None
    else begin
      match refill r with
      | (_ : bool) -> go ()
      | exception Timed_out -> None
    end
  in
  go ()

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < Bytes.length b then begin
      let n =
        try Unix.write fd b off (Bytes.length b - off)
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      go (off + n)
    end
  in
  go 0
