open Iflow_core
module Rng = Iflow_stats.Rng
module Fenwick = Iflow_stats.Fenwick
module Dist = Iflow_stats.Dist
module Measures = Iflow_stats.Measures
module Gen = Iflow_graph.Gen
module Estimator = Iflow_mcmc.Estimator
module Chain = Iflow_mcmc.Chain
module Bucket = Iflow_bucket.Bucket

(* Monotonic wall time per call; [Sys.time] (CPU time) under-counts
   multi-domain work, so timings go through the shared clock. *)
let time_per_call f = Iflow_obs.Clock.time_per_call f

(* ----- proposal: Fenwick vs naive scan ----- *)

let report_proposal_tree rng ppf =
  Format.fprintf ppf
    "@[<v>== Ablation: proposal sampling, Fenwick tree vs naive scan ==@,";
  Format.fprintf ppf "%10s %16s %16s %10s@." "edges" "fenwick (s/op)"
    "naive (s/op)" "speedup";
  List.iter
    (fun m ->
      let weights = Array.init m (fun _ -> Rng.uniform rng) in
      let tree = Fenwick.of_array weights in
      let fenwick_time =
        time_per_call (fun () ->
            let e = Fenwick.sample rng tree in
            (* the chain also updates the flipped edge's weight *)
            Fenwick.set tree e (1.0 -. Fenwick.get tree e))
      in
      let naive_time =
        time_per_call (fun () ->
            let e = Dist.categorical rng weights in
            weights.(e) <- 1.0 -. weights.(e))
      in
      Format.fprintf ppf "%10d %16.3e %16.3e %9.1fx@." m fenwick_time
        naive_time (naive_time /. fenwick_time))
    [ 1_000; 10_000; 100_000 ];
  Format.fprintf ppf "@]"

(* ----- thinning ----- *)

let report_thinning rng ppf =
  Format.fprintf ppf
    "@[<v>== Ablation: thinning interval at a fixed retained-sample budget ==@,";
  let g = Gen.gnm rng ~nodes:8 ~edges:18 in
  let icm =
    Icm.create g (Array.init 18 (fun _ -> 0.1 +. (0.8 *. Rng.uniform rng)))
  in
  let truth = Exact.brute_force_flow icm ~src:0 ~dst:7 in
  Format.fprintf ppf "truth Pr(0 ~> 7) = %.4f@." truth;
  Format.fprintf ppf "%6s %12s %14s@." "thin" "mean |error|" "indicator ESS";
  List.iter
    (fun thin ->
      let trials = 20 in
      let samples = 500 in
      let err = ref 0.0 in
      let ess = ref 0.0 in
      for _ = 1 to trials do
        (* collect the flow-indicator series so we can report both the
           estimate error and the effective sample size of the chain *)
        let series = Array.make samples 0.0 in
        let i = ref 0 in
        Estimator.fold_samples rng icm
          { Estimator.burn_in = 200; thin; samples }
          ~init:()
          ~f:(fun () state ->
            series.(!i) <-
              (if Iflow_core.Pseudo_state.flow icm state ~src:0 ~dst:7 then 1.0
               else 0.0);
            incr i);
        let estimate = Iflow_stats.Descriptive.mean series in
        err := !err +. Float.abs (estimate -. truth);
        ess := !ess +. Iflow_stats.Descriptive.effective_sample_size series
      done;
      Format.fprintf ppf "%6d %12.4f %14.0f@." thin
        (!err /. float_of_int trials)
        (!ess /. float_of_int trials))
    [ 1; 2; 5; 20; 50 ];
  Format.fprintf ppf "@]"

(* ----- summarisation ----- *)

let report_summarisation rng ppf =
  Format.fprintf ppf
    "@[<v>== Ablation: likelihood cost, per-event Bernoulli vs summarised Binomial ==@,";
  Format.fprintf ppf "%10s %8s %16s %16s@." "objects" "omega" "bernoulli (s)"
    "binomial (s)";
  List.iter
    (fun objects ->
      let parents = 6 in
      let probs = Array.init parents (fun _ -> Rng.uniform rng) in
      let g, icm, sink = Generator.in_star_icm ~probs in
      let traces =
        List.init objects (fun _ ->
            let sources =
              List.filter (fun _ -> Rng.bool rng)
                (List.init parents (fun j -> j))
            in
            let sources =
              if sources = [] then [ Rng.int rng parents ] else sources
            in
            Cascade.run_trace rng icm ~sources)
      in
      let summary = Summary.build g traces ~sink in
      let kappa _ = 0.5 in
      (* per-event likelihood straight off the traces *)
      let bernoulli () =
        List.fold_left
          (fun acc (tr : Evidence.trace) ->
            let survive = ref 1.0 in
            for j = 0 to parents - 1 do
              if tr.Evidence.times.(j) >= 0 then
                survive := !survive *. (1.0 -. kappa j)
            done;
            let p = 1.0 -. !survive in
            acc
            +. Float.log
                 (Float.max 1e-300
                    (if tr.Evidence.times.(sink) >= 0 then p else 1.0 -. p)))
          0.0 traces
      in
      let binomial () = Summary.log_likelihood summary ~prob:kappa in
      Format.fprintf ppf "%10d %8d %16.3e %16.3e@." objects
        (Summary.n_entries summary)
        (time_per_call (fun () -> ignore (bernoulli ())))
        (time_per_call (fun () -> ignore (binomial ()))))
    [ 1_000; 10_000; 50_000 ];
  Format.fprintf ppf "@]"

(* ----- conditional estimation strategies ----- *)

let report_conditional_strategies rng ppf =
  Format.fprintf ppf
    "@[<v>== Ablation: conditional flow, constrained chain vs sample ratio ==@,";
  let g = Gen.gnm rng ~nodes:8 ~edges:18 in
  let icm =
    Icm.create g (Array.init 18 (fun _ -> 0.15 +. (0.7 *. Rng.uniform rng)))
  in
  let conditions = [ (0, 3, true) ] in
  match Exact.brute_force_conditional icm ~conditions ~src:0 ~dst:7 with
  | exception Failure _ ->
    Format.fprintf ppf "(conditions infeasible on this draw)@,@]"
  | truth ->
    Format.fprintf ppf "truth Pr(0 ~> 7 | 0 ~> 3) = %.4f@." truth;
    Format.fprintf ppf "%-18s %12s %12s@." "strategy" "mean |error|" "secs/run";
    let config = { Estimator.burn_in = 500; thin = 10; samples = 2000 } in
    let cset = Iflow_mcmc.Conditions.v conditions in
    let measure label f =
      let trials = 10 in
      let err = ref 0.0 in
      let t0 = Iflow_obs.Clock.now_ns () in
      for _ = 1 to trials do
        err := !err +. Float.abs (f () -. truth)
      done;
      let dt =
        Iflow_obs.Clock.seconds_of_ns (Iflow_obs.Clock.elapsed_ns t0)
        /. float_of_int trials
      in
      Format.fprintf ppf "%-18s %12.4f %12.4f@." label
        (!err /. float_of_int trials)
        dt
    in
    measure "constrained chain" (fun () ->
        Estimator.flow_probability ~conditions:cset rng icm config ~src:0
          ~dst:7);
    measure "sample ratio" (fun () ->
        Estimator.conditional_flow_by_ratio rng icm config ~conditions:cset
          ~src:0 ~dst:7);
    Format.fprintf ppf "@]"

(* ----- point prediction vs nested mean ----- *)

let report_point_vs_nested scale rng ppf =
  Format.fprintf ppf
    "@[<v>== Ablation: expected-ICM point estimate vs nested-MH mean ==@,";
  let models = Scale.pick scale ~quick:60 ~full:300 in
  let reps = Scale.pick scale ~quick:10 ~full:30 in
  let config =
    Scale.pick scale
      ~quick:{ Estimator.burn_in = 200; thin = 3; samples = 200 }
      ~full:{ Estimator.burn_in = 500; thin = 5; samples = 500 }
  in
  let point = ref [] and nested = ref [] in
  for _ = 1 to models do
    let model = Generator.default_beta_icm rng ~nodes:12 ~edges:36 in
    let sampled = Beta_icm.sample_icm rng model in
    let state = Pseudo_state.sample rng sampled in
    let src = Rng.int rng 12 in
    let dst = (src + 1 + Rng.int rng 11) mod 12 in
    let outcome = Pseudo_state.flow sampled state ~src ~dst in
    let p_point =
      Estimator.flow_probability rng
        (Beta_icm.expected_icm model)
        config ~src ~dst
    in
    let samples =
      Iflow_mcmc.Nested.flow_samples rng model
        { config with samples = config.Estimator.samples / 2 }
        ~reps ~src ~dst
    in
    let p_nested = Iflow_stats.Descriptive.mean samples in
    point := { Measures.estimate = p_point; outcome } :: !point;
    nested := { Measures.estimate = p_nested; outcome } :: !nested
  done;
  let b_point = Bucket.run ~bins:10 ~label:"expected-ICM point" !point in
  let b_nested = Bucket.run ~bins:10 ~label:"nested-MH mean" !nested in
  Format.fprintf ppf "%a@,%a@,@]" Bucket.pp_summary b_point Bucket.pp_summary
    b_nested
