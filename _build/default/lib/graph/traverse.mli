(** Breadth-first traversal: reachability, radius-limited neighbourhoods,
    and shortest paths, optionally restricted to "active" edges.

    The [active] predicate (on edge ids) lets callers reuse these
    routines on a pseudo-state of an ICM: flow [u ~> v] exists in a
    pseudo-state iff [v] is reachable from [u] through active edges. *)

type direction = Out | In | Both

val reachable_from :
  ?active:(int -> bool) -> Digraph.t -> int list -> bool array
(** [reachable_from g sources] marks every node reachable from any
    source through (active) out-edges; sources themselves are marked. *)

val reaches : ?active:(int -> bool) -> Digraph.t -> src:int -> dst:int -> bool

val within_radius :
  ?direction:direction -> Digraph.t -> centre:int -> radius:int -> bool array
(** Nodes at hop distance [<= radius] from [centre], following edges in
    the given [direction] ([Both] treats the graph as undirected — used
    to carve the paper's radius-n Twitter subgraphs). *)

val shortest_path :
  ?active:(int -> bool) -> Digraph.t -> src:int -> dst:int -> int list option
(** Edge ids of a BFS shortest path from [src] to [dst], or [None]. *)
