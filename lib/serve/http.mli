(** Just enough HTTP/1.1 for the serving endpoints.

    The server is not a general web server: it accepts one request per
    connection (responses carry [Connection: close]), reads bodies by
    [Content-Length] only, and bounds both header and body sizes. The
    full HTTP surface is four routes ([POST /query],
    [POST /evidence], [GET /metrics], [GET /healthz]); everything
    richer speaks the raw JSONL dialect instead. *)

type request = {
  meth : string;                      (** uppercased, e.g. ["POST"] *)
  path : string;                      (** as sent, query string included *)
  headers : (string * string) list;   (** names lowercased *)
  body : string;
}

type parse =
  | Request of request
  | Malformed of string   (** answer 400 and close *)
  | Overflow of string    (** answer 431/413 and close *)

val read_request :
  ?max_headers:int -> ?max_body_bytes:int -> Sockio.reader ->
  first_line:string -> parse
(** Parse a request whose request-line, already consumed by the
    protocol sniffer, is [first_line]; reads headers and body from the
    reader. Defaults: 100 header lines, 8 MiB body. *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val is_http_verb : string -> bool
(** Does this first line look like an HTTP request-line? (The protocol
    sniff: anything else is treated as a JSONL query line.) *)

val response :
  ?headers:(string * string) list -> ?content_type:string ->
  status:int -> string -> string
(** Serialise a full response (status line, headers, [Content-Length],
    [Connection: close], body). *)

val reason : int -> string
(** Canonical reason phrase ([200 -> "OK"], [429 -> "Too Many
    Requests"], ...). *)
