lib/stats/fenwick.ml: Array Rng
