test/test_exp.ml: Alcotest Array Buffer Fig11 Fig6 Fig7 Float Format Iflow_bucket Iflow_core Iflow_exp Iflow_mcmc Iflow_stats Lazy List Printf Scale String Synthetic_bucket Tables Twitter_lab
