lib/twitter/preprocess.ml: Array Hashtbl Iflow_core Iflow_graph List Set String Tweet
