(** Descriptive statistics and histograms over float samples. *)

val mean : float array -> float
(** Arithmetic mean; raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased (n-1) sample variance; 0 for a singleton. *)

val std : float array -> float

val min_max : float array -> float * float

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [[0, 1]], linear interpolation between
    order statistics. Does not mutate [xs]. *)

val median : float array -> float

val autocorrelation : float array -> lag:int -> float
(** Sample autocorrelation at a lag (normalised to [autocorrelation
    ~lag:0 = 1]). 0 for constant series; raises [Invalid_argument] on
    negative lags or lags beyond the series. *)

val effective_sample_size : float array -> float
(** MCMC effective sample size: [n / (1 + 2 sum rho_k)], truncating the
    autocorrelation sum at the first non-positive term (Geyer's initial
    positive sequence, simplified). Equals [n] for i.i.d. series and
    shrinks as the chain autocorrelates. *)

type histogram = {
  lo : float;
  hi : float;
  counts : int array; (** one cell per bin, equal widths across [lo, hi] *)
  underflow : int;
  overflow : int;
}

val histogram : ?lo:float -> ?hi:float -> bins:int -> float array -> histogram
(** Equal-width histogram; bounds default to the sample range. *)

val histogram_bin_center : histogram -> int -> float

val pp_histogram : Format.formatter -> histogram -> unit
(** One line per bin: center, count, and a proportional bar — the text
    stand-in for the paper's frequency plots (Figs 3, 4). *)
