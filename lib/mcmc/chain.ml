module Icm = Iflow_core.Icm
module Pseudo_state = Iflow_core.Pseudo_state
module Fenwick = Iflow_stats.Fenwick
module Reach = Iflow_graph.Reach
module Rng = Iflow_stats.Rng
module Metrics = Iflow_obs.Metrics

(* Registered once; recording into them is a no-op until the obs layer
   is switched on. The hot loop never touches these — [advance] flushes
   deltas from the chain's plain fields once per call. *)
let m_steps = Metrics.counter ~help:"MH proposals attempted" "iflow_mcmc_steps_total"
let m_accepts = Metrics.counter ~help:"MH proposals accepted" "iflow_mcmc_accepts_total"

let m_accept_rate =
  Metrics.gauge ~help:"Lifetime acceptance rate of the most recently flushed chain"
    "iflow_mcmc_acceptance_rate"

let m_reach_unchanged =
  Metrics.counter ~help:"Reach cache updates classified O(1) unchanged"
    "iflow_mcmc_reach_unchanged_total"

let m_reach_grown =
  Metrics.counter ~help:"Reach cache updates repaired by incremental growth"
    "iflow_mcmc_reach_grown_total"

let m_reach_rebuilt =
  Metrics.counter ~help:"Reach cache updates repaired by full recompute"
    "iflow_mcmc_reach_rebuilt_total"

let m_reach_undone =
  Metrics.counter ~help:"Reach cache updates reverted after a rejected proposal"
    "iflow_mcmc_reach_undo_total"

type t = {
  icm : Icm.t;
  conditions : Conditions.t;
  state : Pseudo_state.t;
  weights : Fenwick.t;
  mutable z : float; (* cached total proposal weight *)
  mutable steps : int;
  mutable accepted : int;
  mutable since_rebuild : int;
  ws : Reach.workspace; (* per-chain BFS scratch, shared with estimators *)
  active : int -> bool; (* preallocated view of [state]'s edge activity *)
  caches : Reach.Cache.t array; (* one reachable set per condition source *)
  checks : (int * int * bool) array; (* (cache index, dst, required) *)
  undos : Reach.Cache.update array; (* per-cache receipt of the last flip *)
  (* high-water marks of what has already been flushed to the obs
     registry, so [advance] adds exact deltas *)
  mutable fl_steps : int;
  mutable fl_accepted : int;
  mutable fl_cache : Reach.Cache.stats;
}

(* Weight of proposing a flip of edge e: probability of the activity the
   edge would take after the flip. *)
let proposal_weight icm state e =
  let p = Icm.prob icm e in
  if Pseudo_state.get state e then 1.0 -. p else p

let rebuild_every = 1 lsl 16

let create ?(conditions = Conditions.empty) ?init rng icm =
  let state =
    match init with
    | Some s ->
      if Pseudo_state.n_edges s <> Icm.n_edges icm then
        invalid_arg "Chain.create: init size mismatch";
      if Pseudo_state.log_prob icm s = neg_infinity then
        invalid_arg "Chain.create: init has zero probability";
      if not (Conditions.satisfied icm s conditions) then
        invalid_arg "Chain.create: init violates conditions";
      Pseudo_state.copy s
    | None ->
      (match Conditions.initial_state rng icm conditions with
      | Some s -> s
      | None ->
        failwith "Chain.create: could not satisfy flow conditions")
  in
  let weights =
    Fenwick.of_array
      (Array.init (Icm.n_edges icm) (proposal_weight icm state))
  in
  let ws = Reach.workspace (Icm.n_nodes icm) in
  let active = Pseudo_state.get state in
  let g = Icm.graph icm in
  let srcs = Array.of_list (Conditions.sources conditions) in
  let caches =
    Array.map (fun u -> Reach.Cache.create ws g ~source:u ~active) srcs
  in
  let index_of u =
    let rec go i = if srcs.(i) = u then i else go (i + 1) in
    go 0
  in
  let checks =
    Array.of_list
      (List.map
         (fun (u, v, req) -> (index_of u, v, req))
         (Conditions.to_list conditions))
  in
  {
    icm;
    conditions;
    state;
    weights;
    z = Fenwick.total weights;
    steps = 0;
    accepted = 0;
    since_rebuild = 0;
    ws;
    active;
    caches;
    checks;
    undos = Array.make (Array.length caches) Reach.Cache.Unchanged;
    fl_steps = 0;
    fl_accepted = 0;
    fl_cache = { Reach.Cache.unchanged = 0; grew = 0; rebuilt = 0; undone = 0 };
  }

let icm t = t.icm
let conditions t = t.conditions
let state t = t.state
let workspace t = t.ws

(* The conditioned indicator check after edge [e] flipped: update every
   per-source cache incrementally (O(1) for flips the set cannot see,
   incremental BFS for growth, a workspace-reusing recompute only when a
   BFS-tree edge was cut), then read the condition verdicts straight off
   the caches. On violation the updates are reverted — Grew in O(newly
   marked), Rebuilt in O(1) (double-buffer swap) — so rejected proposals
   leave no trace and allocate nothing. *)
let conditions_hold_after_flip t e =
  let nc = Array.length t.caches in
  for i = 0 to nc - 1 do
    t.undos.(i) <- Reach.Cache.update t.caches.(i) ~active:t.active ~edge:e
  done;
  let ok = ref true in
  for j = 0 to Array.length t.checks - 1 do
    let ci, v, req = t.checks.(j) in
    if Reach.Cache.reaches t.caches.(ci) v <> req then ok := false
  done;
  if not !ok then
    for i = nc - 1 downto 0 do
      Reach.Cache.undo t.caches.(i) t.undos.(i)
    done;
  !ok

let step rng t =
  t.steps <- t.steps + 1;
  if t.z > 0.0 then begin
    let e = Fenwick.sample rng t.weights in
    let w = Fenwick.get t.weights e in
    (* Flipping e replaces its weight w by 1 - w (the two weights are p
       and 1-p), so Z' = Z + 1 - 2w; acceptance is min(Z/Z', 1). *)
    let z' = t.z +. 1.0 -. (2.0 *. w) in
    let a = if t.z < z' then t.z /. z' else 1.0 in
    if Rng.uniform rng <= a then begin
      Pseudo_state.flip t.state e;
      if Array.length t.caches = 0 || conditions_hold_after_flip t e then begin
        t.accepted <- t.accepted + 1;
        Fenwick.set t.weights e (1.0 -. w);
        t.since_rebuild <- t.since_rebuild + 1;
        if t.since_rebuild >= rebuild_every then begin
          Fenwick.rebuild t.weights;
          t.since_rebuild <- 0
        end;
        t.z <- Fenwick.total t.weights
      end
      else
        (* Candidate violates the conditions: indicator 0, reject. *)
        Pseudo_state.flip t.state e
    end
  end

let steps_taken t = t.steps

let acceptance_rate t =
  if t.steps = 0 then 0.0 else float_of_int t.accepted /. float_of_int t.steps

let cache_stats t =
  Array.fold_left
    (fun (acc : Reach.Cache.stats) c ->
      let s = Reach.Cache.stats c in
      {
        Reach.Cache.unchanged = acc.unchanged + s.unchanged;
        grew = acc.grew + s.grew;
        rebuilt = acc.rebuilt + s.rebuilt;
        undone = acc.undone + s.undone;
      })
    { Reach.Cache.unchanged = 0; grew = 0; rebuilt = 0; undone = 0 }
    t.caches

(* Push everything accumulated since the last flush into the registry.
   Runs once per [advance] call (i.e. per thinning interval), so the
   per-step cost of observability is a handful of plain int updates
   that happen with recording on or off — estimates cannot depend on
   the recording switch. *)
let flush_metrics t =
  if Metrics.recording () then begin
    Metrics.add m_steps (t.steps - t.fl_steps);
    t.fl_steps <- t.steps;
    Metrics.add m_accepts (t.accepted - t.fl_accepted);
    t.fl_accepted <- t.accepted;
    let s = cache_stats t in
    let fl = t.fl_cache in
    Metrics.add m_reach_unchanged (s.unchanged - fl.unchanged);
    Metrics.add m_reach_grown (s.grew - fl.grew);
    Metrics.add m_reach_rebuilt (s.rebuilt - fl.rebuilt);
    Metrics.add m_reach_undone (s.undone - fl.undone);
    t.fl_cache <- s;
    Metrics.set m_accept_rate (acceptance_rate t)
  end

let advance rng t k =
  for _ = 1 to k do
    step rng t
  done;
  flush_metrics t

let normaliser t = t.z
