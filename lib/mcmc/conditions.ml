module Icm = Iflow_core.Icm
module Pseudo_state = Iflow_core.Pseudo_state
module Reach = Iflow_graph.Reach
module Rng = Iflow_stats.Rng
module Metrics = Iflow_obs.Metrics

let m_repair_flips =
  Metrics.counter
    ~help:"Edges flipped while repairing an initial state into the \
           conditioned slice"
    "iflow_mcmc_repair_flips_total"

type constrained_flow = { cond_src : int; cond_dst : int; required : bool }
type t = constrained_flow list

let empty = []

let v list =
  let seen = Hashtbl.create 16 in
  let conds =
    List.map
      (fun (u, v, required) ->
        (match Hashtbl.find_opt seen (u, v) with
        | Some prev when prev <> required ->
          invalid_arg
            (Printf.sprintf "Conditions.v: contradictory conditions on %d ~> %d"
               u v)
        | _ -> Hashtbl.replace seen (u, v) required);
        { cond_src = u; cond_dst = v; required })
      list
  in
  (* grouped by source so the indicator needs one reachability sweep
     per distinct source ([satisfied_ws] relies on this) *)
  List.stable_sort (fun a b -> compare a.cond_src b.cond_src) conds

let is_empty t = t = []
let to_list t = List.map (fun c -> (c.cond_src, c.cond_dst, c.required)) t
let length = List.length

let sources t = List.sort_uniq compare (List.map (fun c -> c.cond_src) t)

let satisfied icm state t =
  match t with
  | [] -> true
  | _ ->
    let reach = Hashtbl.create 4 in
    let reach_from u =
      match Hashtbl.find_opt reach u with
      | Some r -> r
      | None ->
        let r = Pseudo_state.reachable icm state ~sources:[ u ] in
        Hashtbl.add reach u r;
        r
    in
    List.for_all
      (fun { cond_src; cond_dst; required } ->
        (reach_from cond_src).(cond_dst) = required)
      t

let satisfied_ws ws icm state t =
  match t with
  | [] -> true
  | _ ->
    (* conditions are sorted by source (see [v]): one BFS per distinct
       source, all into the same workspace, no allocation *)
    let g = Icm.graph icm in
    let active = Pseudo_state.get state in
    let rec go current = function
      | [] -> true
      | { cond_src; cond_dst; required } :: rest ->
        if cond_src <> current then Reach.bfs ws ~active g ~src:cond_src;
        if Reach.marked ws cond_dst = required then go cond_src rest
        else false
    in
    go (-1) t

(* A state with positive model probability: edges with p = 1 must be
   active, edges with p = 0 must be inactive; others free. *)
let clamp_determined icm state =
  for e = 0 to Icm.n_edges icm - 1 do
    let p = Icm.prob icm e in
    if p >= 1.0 then Pseudo_state.set state e true
    else if p <= 0.0 then Pseudo_state.set state e false
  done

let repair_positive ws icm state { cond_src; cond_dst; _ } =
  (* Activate a path through edges that are allowed to be active
     (p > 0), preferring already-active ones: a 0-1 BFS in which active
     edges cost nothing finds the path activating the fewest new edges,
     so the repair perturbs the state as little as possible. *)
  let g = Icm.graph icm in
  let usable e = Icm.prob icm e > 0.0 in
  let zero_cost e = Pseudo_state.get state e in
  match
    Reach.cheapest_path ws ~usable ~zero_cost g ~src:cond_src ~dst:cond_dst
  with
  | None -> false
  | Some edges ->
    Metrics.add m_repair_flips
      (List.length (List.filter (fun e -> not (Pseudo_state.get state e)) edges));
    List.iter (fun e -> Pseudo_state.set state e true) edges;
    true

let repair_negative ws rng icm state { cond_src; cond_dst; _ } =
  (* While an active path exists, cut a random deactivatable edge on it. *)
  let g = Icm.graph icm in
  let rec loop budget =
    if budget = 0 then false
    else begin
      match
        Reach.shortest_path ws ~active:(Pseudo_state.get state) g
          ~src:cond_src ~dst:cond_dst
      with
      | None -> true
      | Some edges ->
        let cuttable =
          List.filter (fun e -> Icm.prob icm e < 1.0) edges
        in
        (match cuttable with
        | [] -> false
        | _ ->
          let e = Rng.choose rng (Array.of_list cuttable) in
          Metrics.inc m_repair_flips;
          Pseudo_state.set state e false;
          loop (budget - 1))
    end
  in
  loop (Icm.n_edges icm + 1)

let initial_state rng icm t =
  if is_empty t then begin
    let s = Pseudo_state.sample rng icm in
    Some s
  end
  else begin
    (* Phase 1: rejection sampling from the marginal. *)
    let rec reject tries =
      if tries = 0 then None
      else begin
        let s = Pseudo_state.sample rng icm in
        if satisfied icm s t then Some s else reject (tries - 1)
      end
    in
    match reject 50 with
    | Some s -> Some s
    | None ->
      (* Phase 2: greedy repair from a fresh sample. Positive conditions
         first (adding edges), then negative (cutting), then re-check:
         cutting can break a positive condition, so iterate a few
         times. *)
      let ws = Reach.workspace (Icm.n_nodes icm) in
      let rec attempt tries =
        if tries = 0 then None
        else begin
          let s = Pseudo_state.sample rng icm in
          clamp_determined icm s;
          let rec rounds k =
            if k = 0 then false
            else if satisfied icm s t then true
            else begin
              let ok =
                List.for_all
                  (fun c ->
                    if c.required then repair_positive ws icm s c
                    else repair_negative ws rng icm s c)
                  t
              in
              if not ok then false else rounds (k - 1)
            end
          in
          if rounds (2 + length t) && satisfied icm s t then Some s
          else attempt (tries - 1)
        end
      in
      attempt 20
  end

let pp ppf t =
  Format.fprintf ppf "{";
  List.iteri
    (fun i { cond_src; cond_dst; required } ->
      if i > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%d %s %d" cond_src
        (if required then "~>" else "!~>")
        cond_dst)
    t;
  Format.fprintf ppf "}"
