(** Domain-sharded ingest of binary event batches: the parallel
    counterpart of {!Online} for {!Binlog} streams, with posteriors
    {e bit-identical} to the sequential JSONL path.

    {b Why edge-range partitioning is exact.} Each per-edge posterior
    cell is a float pair updated by [+. 1.0] per observation, and any
    one event observes an edge at most once (an edge has one source
    node). Partitioning {e edges} into contiguous ranges — one range
    per shard — means every cell is written by exactly one shard, which
    applies that edge's observations in event order. The per-edge
    operation sequence is therefore exactly the sequential one, so the
    result is bit-identical at any shard count — including after
    {!decay} makes the counts fractional, where merging per-shard
    deltas by addition would {e not} be exact.

    {b Two-phase batches.} Phase A partitions a batch's records into
    contiguous chunks, one per shard: each worker decodes and validates
    its chunk into a packed observation buffer (epoch-stamped
    workspaces, zero steady-state allocation — the discipline of
    {!Iflow_graph.Reach}). Phase B partitions the {e edges}: each
    worker scans all chunks' buffers in order and applies exactly the
    observations in its edge range. Both decode and accumulate
    parallelize; record order is preserved per edge. Rare graph-change
    records are barriers: the batch is split around them and they are
    applied sequentially (ranges re-partition on the new edge set).

    {b Quarantine.} Semantic checks replicate {!Online} exactly
    (unknown refs, inconsistent evidence — same reasons, same
    counters). Binary decode errors quarantine per reason — [bad_crc],
    [truncated], [bad_varint], [unknown_tag] on
    [iflow_stream_quarantined_total] — and count as [parse_errors] in
    {!Online.stats}, so the [--max-quarantine-rate] gate applies
    unchanged. One deliberate deviation: an attributed edge pair naming
    an out-of-range endpoint quarantines as an unknown edge here
    (the JSONL path's [find_edge] would raise on it).

    The drift detector is not available on this path (it is inherently
    sequential per edge window; digests never depend on it). *)

type t

val create : ?shards:int -> ?forget:float -> Iflow_core.Beta_icm.t -> t
(** [shards] (default 1) fixes the worker count; [shards - 1] domains
    are spawned immediately and live until {!close} — create once per
    ingest run. [forget] as in {!Online.create}. Raises
    [Invalid_argument] on [shards < 1] or a bad lambda. *)

val close : t -> unit
(** Join the worker domains. Idempotent; {!apply_batch} after [close]
    raises. *)

val shards : t -> int

val apply_batch :
  ?on_quarantine:(line:int -> reason:string -> unit) ->
  t -> Binlog.Batch.t -> first_line:int -> int
(** Apply one decoded batch; returns the number of events applied (the
    publish-cadence delta). [on_quarantine] fires once per quarantined
    record, in record order, after the batch is absorbed; [line] is
    [first_line + index-in-batch] (1-based log offsets, framing-error
    slots included, mirroring JSONL line numbers). *)

val model : t -> Iflow_core.Beta_icm.t
(** Freeze the current posterior (bit-identical to the sequential
    {!Online.model} over the same event sequence). *)

val graph : t -> Iflow_graph.Digraph.t

val decay : t -> unit
(** One step of exponential forgetting, as {!Online.decay}. *)

val stats : t -> Online.stats
(** Binary decode errors are reported as [parse_errors]. *)
