(* Serving-layer benchmark: queries/sec and latency percentiles through
   the full network path (socket -> admission -> bounded queue ->
   executor -> engine -> wire encode) on the paper's timing setting
   (~6K users, ~12K edges).

   Measured at 1, 8 and 64 concurrent closed-loop clients, twice per
   level:
   - cached: every request hits the engine's LRU, so the number is the
     serving overhead itself (framing, queueing, scheduling);
   - uncached: every request is a fresh (src, dst) pair and runs the
     MCMC estimator under a light budget, so the number shows how the
     queue multiplexes real work across clients.

   Results go to BENCH_PR6.json (machine-readable, committed). --quick
   (or IFLOW_BENCH_QUICK=1) shortens the run for CI; percentiles above
   the per-level request count (p999 on small runs) degrade to the max,
   which is recorded alongside. *)

module Rng = Iflow_stats.Rng
module Gen = Iflow_graph.Gen
module Digraph = Iflow_graph.Digraph
module Beta_icm = Iflow_core.Beta_icm
module Generator = Iflow_core.Generator
module Engine = Iflow_engine.Engine
module Clock = Iflow_obs.Clock
module Jsonl = Iflow_engine.Jsonl
module Sockio = Iflow_serve.Sockio
module Server = Iflow_serve.Server

let quick =
  Array.exists (fun a -> a = "--quick") Sys.argv
  || Sys.getenv_opt "IFLOW_BENCH_QUICK" <> None

let levels = [ 1; 8; 64 ]
let cached_total = if quick then 1_000 else 10_000
let uncached_total = if quick then 48 else 384
let warm_set = 32

(* fresh (src, dst) pairs: distinct counter values map to distinct
   pairs, so "uncached" requests can never collide with each other or
   with the warm set *)
let pair_counter = ref 0

let fresh_pair n =
  let k = !pair_counter in
  incr pair_counter;
  let src = k mod n in
  let off = 1 + (k / n mod (n - 1)) in
  (src, (src + off) mod n)

let query_line (src, dst) =
  Printf.sprintf {|{"type":"flow","src":%d,"dst":%d}|} src dst

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let ask r fd line =
  Sockio.write_all fd (line ^ "\n");
  match Sockio.read_line r with
  | Sockio.Line l -> l
  | Sockio.Eof | Sockio.Too_long | Sockio.Timeout ->
    failwith "serve_bench: session lost"

let assert_answer line =
  match Jsonl.parse line with
  | Ok json when Jsonl.member "estimate" json <> None -> ()
  | Ok _ -> failwith ("serve_bench: refused: " ^ line)
  | Error msg -> failwith ("serve_bench: bad response: " ^ msg)

type level_result = {
  clients : int;
  requests : int;
  qps : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  max_us : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  let i = int_of_float (p *. float_of_int n) in
  sorted.(min (n - 1) i)

(* closed-loop: [clients] sessions, each draining its share of [lines]
   sequentially; per-request latency in ns, wall clock for throughput *)
let run_level server ~clients ~lines =
  let total = Array.length lines in
  (* every client must have work even when clients > total requests *)
  let per = max 1 (total / clients) in
  let lat = Array.make (per * clients) 0 in
  let m = Mutex.create () in
  let cv = Condition.create () in
  let go = ref false in
  let ready = ref 0 in
  let client i =
    let fd = connect (Server.port server) in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let r = Sockio.reader fd in
        Mutex.protect m (fun () ->
            incr ready;
            Condition.broadcast cv;
            while not !go do
              Condition.wait cv m
            done);
        for j = i * per to ((i + 1) * per) - 1 do
          let t0 = Clock.now_ns () in
          let line = ask r fd lines.(j) in
          lat.(j) <- Clock.elapsed_ns t0;
          assert_answer line
        done)
  in
  let threads = List.init clients (fun i -> Thread.create client i) in
  Mutex.protect m (fun () ->
      while !ready < clients do
        Condition.wait cv m
      done);
  let t0 = Clock.now_ns () in
  Mutex.protect m (fun () ->
      go := true;
      Condition.broadcast cv);
  List.iter Thread.join threads;
  let wall = Clock.seconds_of_ns (Clock.elapsed_ns t0) in
  let requests = per * clients in
  let sorted = Array.sub lat 0 requests in
  Array.sort compare sorted;
  let us i = 1e-3 *. float_of_int i in
  {
    clients;
    requests;
    qps = float_of_int requests /. wall;
    p50_us = us (percentile sorted 0.50);
    p99_us = us (percentile sorted 0.99);
    p999_us = us (percentile sorted 0.999);
    max_us = us sorted.(requests - 1);
  }

let print_result label r =
  Printf.printf
    "  %-10s %3d clients: %8.0f q/s  p50 %9.1f us  p99 %9.1f us  p999 \
     %9.1f us  max %9.1f us  (%d reqs)\n\
     %!"
    label r.clients r.qps r.p50_us r.p99_us r.p999_us r.max_us r.requests

let result_json r =
  Jsonl.Obj
    [
      ("requests", Jsonl.Num (float_of_int r.requests));
      ("qps", Jsonl.Num (Float.round r.qps));
      ("p50_us", Jsonl.Num (Float.round (r.p50_us *. 10.0) /. 10.0));
      ("p99_us", Jsonl.Num (Float.round (r.p99_us *. 10.0) /. 10.0));
      ("p999_us", Jsonl.Num (Float.round (r.p999_us *. 10.0) /. 10.0));
      ("max_us", Jsonl.Num (Float.round (r.max_us *. 10.0) /. 10.0));
    ]

let () =
  let rng = Rng.create 20120402 in
  let g = Gen.preferential_attachment rng ~nodes:6000 ~mean_out_degree:2 in
  let truth = Generator.retweet_ground_truth rng g in
  let n = Digraph.n_nodes g in
  let light =
    {
      Engine.default_config with
      Engine.chains = 2;
      burn_in = 100;
      round_samples = 50;
      max_samples = 100;
      rhat_target = 10.0;
      mcse_target = 1.0;
    }
  in
  let engine = Engine.create ~config:light ~seed:42 truth in
  let config =
    {
      Server.default_config with
      Server.workers = 8;
      queue_capacity = 256;
      max_connections = 128;
    }
  in
  let server = Server.create ~config ~engine () in
  Server.start server;
  Printf.printf "serve bench: %d nodes, %d edges, port %d (quick=%b)\n%!" n
    (Digraph.n_edges g) (Server.port server) quick;
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      (* warm a fixed set of queries once; cached rounds cycle over it *)
      let warm = Array.init warm_set (fun _ -> query_line (fresh_pair n)) in
      let fd = connect (Server.port server) in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let r = Sockio.reader fd in
          Array.iter (fun line -> assert_answer (ask r fd line)) warm);
      let measure clients =
        let cached =
          run_level server ~clients
            ~lines:
              (Array.init cached_total (fun i -> warm.(i mod warm_set)))
        in
        print_result "cached" cached;
        let uncached =
          run_level server ~clients
            ~lines:
              (Array.init
                 (max uncached_total clients)
                 (fun _ -> query_line (fresh_pair n)))
        in
        print_result "uncached" uncached;
        (cached, uncached)
      in
      let results = List.map (fun c -> (c, measure c)) levels in
      let s = Server.stats server in
      if s.Server.shed_capacity > 0 || s.Server.shed_quota > 0 then
        Printf.printf "  WARNING: %d requests shed during the bench\n%!"
          (s.Server.shed_capacity + s.Server.shed_quota);
      let json =
        Jsonl.Obj
          [
            ("bench", Jsonl.Str "serve_latency");
            ("pr", Jsonl.Num 6.0);
            ("quick", Jsonl.Bool quick);
            ( "graph",
              Jsonl.Obj
                [
                  ("nodes", Jsonl.Num (float_of_int n));
                  ("edges", Jsonl.Num (float_of_int (Digraph.n_edges g)));
                  ("generator", Jsonl.Str "preferential_attachment");
                  ("seed", Jsonl.Num 20120402.0);
                ] );
            ( "server",
              Jsonl.Obj
                [
                  ("workers", Jsonl.Num (float_of_int config.Server.workers));
                  ( "queue_capacity",
                    Jsonl.Num (float_of_int config.Server.queue_capacity) );
                ] );
            ( "engine",
              Jsonl.Obj
                [
                  ("chains", Jsonl.Num (float_of_int light.Engine.chains));
                  ( "max_samples",
                    Jsonl.Num (float_of_int light.Engine.max_samples) );
                ] );
            ( "note",
              Jsonl.Str
                "closed-loop clients over loopback TCP, JSONL dialect; \
                 cached = all requests hit the LRU (serving overhead), \
                 uncached = every request runs the estimator; percentiles \
                 above the request count degrade to the max" );
            ( "levels",
              Jsonl.List
                (List.map
                   (fun (c, (cached, uncached)) ->
                     Jsonl.Obj
                       [
                         ("clients", Jsonl.Num (float_of_int c));
                         ("cached", result_json cached);
                         ("uncached", result_json uncached);
                       ])
                   results) );
          ]
      in
      let oc = open_out "BENCH_PR6.json" in
      output_string oc (Bench_obs.pretty json);
      close_out oc;
      Printf.printf "wrote BENCH_PR6.json\n%!";
      Bench_obs.write_metrics_out ())
