(** Fig 2: bucket experiments on attributed Twitter evidence.

    Four configurations: subgraph radius 1 and 2 around each focus user,
    each with zero or up to five known flows supplied as conditions to
    the Metropolis-Hastings sampler. Outcomes come from held-out
    cascades; estimates from the betaICM trained on the training split. *)

type result = {
  radius : int;
  known_flows : int;
  bucket : Iflow_bucket.Bucket.t;
}

val run : Scale.t -> Iflow_stats.Rng.t -> Twitter_lab.t -> result list
(** The four (radius, known-flows) configurations of the paper:
    (1, 0), (2, 0), (1, 5), (2, 5). *)

val report :
  Scale.t -> Iflow_stats.Rng.t -> Twitter_lab.t -> Format.formatter ->
  result list
