lib/learn/filtered.ml: Array Iflow_core Iflow_stats List Trainer
