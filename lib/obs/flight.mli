(** A domain-sharded ring-buffer flight recorder: one record per
    answered (or refused) query, kept in a fixed-size ring so the last
    N requests are always reconstructible after the fact — which path
    answered (cache / exact planner / MH / typed error), on which model
    version, and where the time went (queue wait, plan, sample,
    serialize).

    The ring is allocation-free in steady state: every cell is
    pre-allocated at {!configure} and {!note} fills the current cell's
    mutable fields in place under a per-shard mutex (shards are indexed
    by the calling domain, so recorders on different domains rarely
    contend). With the recorder off, {!note} costs one atomic load and
    a branch. Scrapes ({!recent}, {!find}) copy records out and may
    allocate freely — they run on the debug path, not the hot one.

    Recording never feeds back into answers: records hold only ids,
    labels and clock readings, so enabling the recorder cannot perturb
    the sampler (the PR 4 bit-for-bit invariant). *)

type path = Cache | Exact | Mh | Err
(** Which layer produced the answer. [Err] covers typed refusals
    (quota, capacity, bad query, chains failed). *)

val string_of_path : path -> string
(** ["cache" | "exact" | "mh" | "error"]. *)

type record = {
  mutable seq : int;  (** global completion order; -1 = empty cell *)
  mutable id : string;  (** request id as echoed on the wire *)
  mutable tenant : string;
  mutable kind : string;  (** query cache key, e.g. ["flow 0 5"] *)
  mutable path : path;
  mutable fallback : string;  (** planner fallback reason, [""] = none *)
  mutable error : string;  (** typed error code, [""] = none *)
  mutable version : int;  (** served model version, -1 = unknown *)
  mutable digest : string;  (** model digest, [""] = unknown *)
  mutable queue_wait_ns : int;
  mutable plan_ns : int;
  mutable sample_ns : int;
  mutable serialize_ns : int;
  mutable rounds : int;  (** adaptive MH rounds (0 for exact/cache) *)
  mutable samples : int;  (** total MH samples *)
  mutable rhat : float;  (** nan when not sampled *)
  mutable mcse : float;  (** nan when not sampled *)
  mutable deadline_ns : int;
      (** the request's deadline budget in ns, 0 = none carried *)
  mutable cancelled : bool;
      (** the deadline (or an explicit cancel) cut this request short —
          a partial answer or a typed [deadline_exceeded] *)
  mutable ts_ns : int;  (** monotonic completion time, {!Clock} base *)
}

val configure : ?capacity:int -> unit -> unit
(** Enable the recorder with room for [capacity] records (default
    1024, clamped to at least one per shard). Pre-allocates every
    cell; calling again resizes and clears. *)

val disable : unit -> unit
(** Stop recording and drop the rings. *)

val enabled : unit -> bool

val capacity : unit -> int
(** Total cells across all shards; 0 when disabled. *)

val note :
  id:string ->
  tenant:string ->
  kind:string ->
  path:path ->
  ?fallback:string ->
  ?error:string ->
  ?version:int ->
  ?digest:string ->
  ?queue_wait_ns:int ->
  ?plan_ns:int ->
  ?sample_ns:int ->
  ?serialize_ns:int ->
  ?rounds:int ->
  ?samples:int ->
  ?rhat:float ->
  ?mcse:float ->
  ?deadline_ns:int ->
  ?cancelled:bool ->
  unit ->
  unit
(** Record one completed request, overwriting the oldest cell in the
    calling domain's shard. A no-op while disabled. *)

val submit : record -> unit
(** Record a caller-built record: stamps [ts_ns] on the argument
    (always — slow-query logging prints the same record even when the
    ring is off), assigns [seq] when enabled, and copies the fields
    into the ring. The argument is not retained. *)

val recent : int -> record list
(** The most recent [n] records across all shards, newest first.
    Copies — safe to hold across further recording. *)

val find : string -> record option
(** The most recent record whose [id] matches, if still in the ring. *)

val clear : unit -> unit
(** Empty the rings without disabling (tests). *)

val to_json : record -> string
(** One JSON object (no trailing newline) with every field; [rhat] and
    [mcse] serialise as [null] when not finite ([deadline_ns] /
    [cancelled] appear only when set). *)

(** {1 Load hint} — what recent requests actually paid.

    Deadline-aware admission asks: can this request's budget cover
    even the floor every admitted request pays (queue wait +
    serialization)? The floor comes from an EWMA (alpha 1/8) over
    {!submit}ted records that ran ([queue_wait_ns > 0]), updated
    whether or not the ring is enabled. Reads are racy-by-design
    atomics — cheap enough for the admission path. *)

type hint = {
  h_queue_wait_ns : int;  (** EWMA queue wait of executed requests *)
  h_serialize_ns : int;   (** EWMA serialize time of the same *)
  h_count : int;          (** executed requests folded in since reset *)
}

val load_hint : unit -> hint

val reset_load_hint : unit -> unit
(** Back to all-zero (tests; also sensible after a long idle gap). *)
