(** Table I (example evidence summary) and Table III (accuracy measures
    across experiments). *)

val table_one : unit -> Iflow_core.Summary.t
(** The paper's Table I rows. *)

val report_table_one : Format.formatter -> unit
(** Prints the Table I summary, plus the same summary rebuilt from raw
    traces — demonstrating that summarisation reproduces the table. *)

val report_table_three :
  Format.formatter -> Iflow_bucket.Bucket.t list -> unit
(** The paper's appendix table: normalised likelihood and Brier score
    (all values and middle values) for each supplied experiment. *)
