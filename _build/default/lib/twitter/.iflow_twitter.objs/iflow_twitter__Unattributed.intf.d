lib/twitter/unattributed.mli: Iflow_core Iflow_graph Tweet
