(** CRC-32 (IEEE / zlib polynomial) for checkpoint footers.

    A 32-bit cyclic redundancy check detects every single-bit flip,
    every burst shorter than 32 bits, and any truncation that removes
    the footer — exactly the torn-write and bit-rot cases a crash-safe
    checkpoint must refuse to load. It is {e not} cryptographic; the
    model digest in the header guards semantic identity, the CRC guards
    physical integrity. *)

val string : string -> int
(** CRC-32 of a whole string. The result fits in 32 bits. *)

val update : int -> string -> int -> int -> int
(** [update crc s pos len] extends [crc] over [s.[pos .. pos+len-1]],
    so large payloads can be checksummed in chunks:
    [string s = update 0 s 0 (String.length s)]. Raises
    [Invalid_argument] when the range falls outside [s]. *)

val to_hex : int -> string
(** Fixed-width lowercase hex, 8 characters. *)

val of_hex : string -> int option
(** Inverse of {!to_hex}; [None] unless exactly 8 hex characters. *)
