module Digraph = Iflow_graph.Digraph
module Beta = Iflow_stats.Dist.Beta
module Beta_icm = Iflow_core.Beta_icm
module Icm = Iflow_core.Icm
module Tweet = Iflow_twitter.Tweet
module Crc32 = Iflow_fault.Crc32
module Durable = Iflow_fault.Durable

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let with_in path f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let fold_lines ic f init =
  let rec loop lineno acc =
    match input_line ic with
    | line -> loop (lineno + 1) (f lineno acc line)
    | exception End_of_file -> acc
  in
  loop 1 init

let malformed path lineno what =
  failwith (Printf.sprintf "%s:%d: malformed %s" path lineno what)

(* Model-file corruption is reported with the byte offset of the
   offending line, so an operator staring at a torn checkpoint can jump
   straight to the damage (and recovery code upstream can tell "this
   file is damaged" from "this model is the wrong one"). *)
let corrupt path ~lineno ~offset what =
  failwith
    (Printf.sprintf "%s: byte %d (line %d): malformed %s" path offset lineno
       what)

(* ----- graph-with-edge-payload formats ----- *)

(* v3 files open with a comment header carrying the model fingerprint
   (and free-form key=value metadata such as a checkpoint's event
   offset) ahead of the legacy "<magic> <n>" line, and close with a
   CRC-32 footer over every byte before it:

     # bicm-v3 digest=29ab... events=1200
     bicm 50
     ...
     # crc32 7f9a1c02 1234

   Writes are atomic (tmp + fsync + rename, see
   {!Iflow_fault.Durable}), so a crash mid-checkpoint leaves the
   previous file intact; the footer makes the torn cases that slip past
   rename semantics (partial copies, bit rot, truncation in transit)
   fail loudly at load. Loaders accept v2 files (digest header, no
   footer) and legacy headerless files, and always verify the header
   digest against the reloaded model — a checkpoint replayed against
   the wrong event log fails instead of silently training the wrong
   posterior. *)

let meta_field_ok s =
  s <> "" && String.for_all (fun c -> c <> ' ' && c <> '=' && c <> '\n') s

let header_of_meta ~magic ~digest meta =
  List.iter
    (fun (k, v) ->
      if k = "digest" || not (meta_field_ok k && meta_field_ok v) then
        invalid_arg "Model_io: bad metadata field")
    meta;
  String.concat " "
    (Printf.sprintf "# %s-v3 digest=%s" magic digest
    :: List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) meta)

let meta_of_header path ~magic line =
  (* "# <magic>-v2 k=v ..." / "# <magic>-v3 k=v ..." ->
     Some (fields, has_footer); None when not a versioned header *)
  match String.split_on_char ' ' line with
  | "#" :: tag :: fields when tag = magic ^ "-v2" || tag = magic ^ "-v3" ->
    Some
      ( List.filter_map
          (fun field ->
            if field = "" then None
            else
              match String.index_opt field '=' with
              | Some i ->
                Some
                  ( String.sub field 0 i,
                    String.sub field (i + 1) (String.length field - i - 1) )
              | None -> malformed path 1 "header field (expected key=value)")
          fields,
        tag = magic ^ "-v3" )
  | "#" :: _ ->
    malformed path 1 (Printf.sprintf "header (expected '# %s-v3')" magic)
  | _ -> None

let footer_prefix = "# crc32 "

let render ~magic ~header ~nodes ~n_edges ~edge_line =
  let buf = Buffer.create (64 + (n_edges * 24)) in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "%s %d\n" magic nodes);
  for e = 0 to n_edges - 1 do
    Buffer.add_string buf (edge_line e);
    Buffer.add_char buf '\n'
  done;
  let body = Buffer.contents buf in
  Printf.sprintf "%s%s%08x %d\n" body footer_prefix (Crc32.string body)
    (String.length body)

let save_edges path ~magic ~header ~nodes ~n_edges ~edge_line =
  let content = render ~magic ~header ~nodes ~n_edges ~edge_line in
  Durable.write_atomic ~failpoint_prefix:"model_io" path (fun oc ->
      output_string oc content)

(* Split into (byte_offset, lineno, line) triples; the fragment after a
   trailing newline is dropped, matching input_line. *)
let lines_with_offsets s =
  let n = String.length s in
  let rec go pos lineno acc =
    if pos >= n then List.rev acc
    else
      let stop =
        match String.index_from_opt s pos '\n' with Some i -> i | None -> n
      in
      let line = String.sub s pos (stop - pos) in
      go (stop + 1) (lineno + 1) ((pos, lineno, line) :: acc)
  in
  go 0 1 []

(* v3 integrity gate: the last line must be the CRC footer, its
   recorded length must equal the footer's own byte offset, and the
   checksum of that prefix must match. Any truncation or bit flip —
   header, body or footer — fails here with the damaged offset. *)
let check_footer path content lines =
  match List.rev lines with
  | [] -> malformed path 1 "empty file"
  | (offset, lineno, last) :: body_rev ->
    let fail what = corrupt path ~lineno ~offset what in
    (* a writer always terminates the footer line, so a file that does
       not end in a newline lost at least its last byte *)
    if content.[String.length content - 1] <> '\n' then
      fail "or missing crc32 footer (file truncated?)";
    if not (String.length last > String.length footer_prefix
            && String.sub last 0 (String.length footer_prefix) = footer_prefix)
    then fail "or missing crc32 footer (file truncated?)";
    (match
       String.split_on_char ' '
         (String.sub last (String.length footer_prefix)
            (String.length last - String.length footer_prefix))
     with
    | [ hex; len ] -> (
      match (Crc32.of_hex hex, int_of_string_opt len) with
      | Some expected, Some nbytes ->
        if nbytes <> offset then
          fail
            (Printf.sprintf
               "crc32 footer: recorded length %d does not match footer offset \
                %d (file truncated or spliced)"
               nbytes offset);
        let actual = Crc32.update 0 content 0 offset in
        if actual <> expected then
          failwith
            (Printf.sprintf
               "%s: crc32 mismatch (footer %s, contents %s) — the file is \
                truncated or corrupted"
               path hex (Crc32.to_hex actual))
      | _ -> fail "crc32 footer")
    | _ -> fail "crc32 footer");
    List.rev body_rev

let load_edges path ~magic ~parse_payload =
  let content =
    with_in path (fun ic -> really_input_string ic (in_channel_length ic))
  in
  let lines = lines_with_offsets content in
  let first = match lines with (_, _, l) :: _ -> l | [] -> "" in
  let meta, rest =
    match meta_of_header path ~magic first with
    | Some (meta, has_footer) ->
      let lines = if has_footer then check_footer path content lines else lines in
      (Some meta, List.tl lines)
    | None -> (None, lines)
  in
  let nodes, body =
    match rest with
    | (offset, lineno, header) :: body -> (
      match String.split_on_char ' ' header with
      | [ m; n ] when m = magic -> (
        match int_of_string_opt n with
        | Some n when n >= 0 -> (n, body)
        | Some _ | None -> corrupt path ~lineno ~offset "header")
      | _ ->
        corrupt path ~lineno ~offset
          (Printf.sprintf "header (expected '%s <n>')" magic))
    | [] -> malformed path 1 (Printf.sprintf "header (expected '%s <n>')" magic)
  in
  let rows =
    List.fold_left
      (fun acc (offset, lineno, line) ->
        if String.trim line = "" then acc
        else begin
          match String.split_on_char ' ' line with
          | src :: dst :: payload -> (
            match (int_of_string_opt src, int_of_string_opt dst) with
            | Some s, Some d ->
              (s, d, parse_payload path ~lineno ~offset payload) :: acc
            | _ -> corrupt path ~lineno ~offset "edge endpoints")
          | _ -> corrupt path ~lineno ~offset "edge line"
        end)
      [] body
  in
  (meta, nodes, List.rev rows)

let check_digest path meta digest =
  match Option.bind meta (List.assoc_opt "digest") with
  | Some expected when expected <> digest ->
    failwith
      (Printf.sprintf
         "%s: model digest mismatch (header %s, contents %s) — the file is \
          corrupted or this checkpoint belongs to a different model / event \
          log"
         path expected digest)
  | Some _ | None -> ()

let save_beta_icm ?(meta = []) path model =
  let g = Beta_icm.graph model in
  save_edges path ~magic:"bicm"
    ~header:(header_of_meta ~magic:"bicm" ~digest:(Beta_icm.digest model) meta)
    ~nodes:(Digraph.n_nodes g) ~n_edges:(Digraph.n_edges g)
    ~edge_line:(fun e ->
      let { Digraph.src; dst } = Digraph.edge g e in
      let b = Beta_icm.edge_beta model e in
      Printf.sprintf "%d %d %.17g %.17g" src dst b.Beta.alpha b.Beta.beta)

let load_beta_icm_meta path =
  let parse path ~lineno ~offset = function
    | [ a; b ] -> (
      match (float_of_string_opt a, float_of_string_opt b) with
      | Some a, Some b when a > 0.0 && b > 0.0 -> Beta.v a b
      | _ -> corrupt path ~lineno ~offset "beta parameters")
    | _ -> corrupt path ~lineno ~offset "beta parameters"
  in
  let meta, nodes, rows = load_edges path ~magic:"bicm" ~parse_payload:parse in
  let g = Digraph.of_edges ~nodes (List.map (fun (s, d, _) -> (s, d)) rows) in
  let model =
    Beta_icm.create g (Array.of_list (List.map (fun (_, _, b) -> b) rows))
  in
  check_digest path meta (Beta_icm.digest model);
  (model, Option.value meta ~default:[])

let load_beta_icm path = fst (load_beta_icm_meta path)

let save_icm ?(meta = []) path icm =
  let g = Icm.graph icm in
  save_edges path ~magic:"icm"
    ~header:(header_of_meta ~magic:"icm" ~digest:(Icm.digest icm) meta)
    ~nodes:(Digraph.n_nodes g) ~n_edges:(Digraph.n_edges g)
    ~edge_line:(fun e ->
      let { Digraph.src; dst } = Digraph.edge g e in
      Printf.sprintf "%d %d %.17g" src dst (Icm.prob icm e))

let load_icm_meta path =
  let parse path ~lineno ~offset = function
    | [ p ] -> (
      match float_of_string_opt p with
      | Some p when p >= 0.0 && p <= 1.0 -> p
      | _ -> corrupt path ~lineno ~offset "probability")
    | _ -> corrupt path ~lineno ~offset "probability"
  in
  let meta, nodes, rows = load_edges path ~magic:"icm" ~parse_payload:parse in
  let g = Digraph.of_edges ~nodes (List.map (fun (s, d, _) -> (s, d)) rows) in
  let icm = Icm.create g (Array.of_list (List.map (fun (_, _, p) -> p) rows)) in
  check_digest path meta (Icm.digest icm);
  (icm, Option.value meta ~default:[])

let load_icm path = fst (load_icm_meta path)

(* ----- tweets ----- *)

let sanitise text =
  String.map (fun c -> if c = '\t' || c = '\n' || c = '\r' then ' ' else c) text

let save_tweets path tweets =
  with_out path (fun oc ->
      List.iter
        (fun (t : Tweet.t) ->
          Printf.fprintf oc "%d\t%s\t%d\t%s\n" t.Tweet.id t.Tweet.author
            t.Tweet.time (sanitise t.Tweet.text))
        tweets)

let load_tweets path =
  with_in path (fun ic ->
      List.rev
        (fold_lines ic
           (fun lineno acc line ->
             if String.trim line = "" then acc
             else begin
               match String.split_on_char '\t' line with
               | [ id; author; time; text ] -> (
                 match (int_of_string_opt id, int_of_string_opt time) with
                 | Some id, Some time ->
                   Tweet.make ~id ~author ~time ~text :: acc
                 | _ -> malformed path lineno "tweet ids")
               | _ -> malformed path lineno "tweet line"
             end)
           []))

let save_names path names =
  with_out path (fun oc ->
      Array.iter (fun n -> Printf.fprintf oc "%s\n" n) names)

let load_names path =
  with_in path (fun ic ->
      Array.of_list (List.rev (fold_lines ic (fun _ acc line -> line :: acc) [])))
