#!/usr/bin/env python3
"""Smoke test for `infoflow serve`: concurrent query load over both wire
dialects while streamed evidence hot-swaps model versions underneath.

Expects a server already listening (the CI job backgrounds one). Stdlib
only. Asserts:

  - every query from every concurrent session gets a well-formed answer
    (an "estimate" plus the "version"/"digest" pair it was computed on);
  - the (version, digest) mapping is consistent across all answers — a
    version id never shows up with two digests, i.e. no answer is torn
    across a hot-swap;
  - POSTed evidence is accepted and the served model version advances
    while the query load is still running;
  - every answer carries a "plan" tag ("exact" or "mh"), a self-flow
    query is answered by the exact planner (plan "exact", estimate 1.0,
    not degraded), and the iflow_plan_exact_hits_total counter moved;
  - every answer echoes a non-empty "request_id" (server-minted when
    the client sent none), a client-supplied X-Request-Id comes back in
    both the body and the response header, and GET /debug/requests
    shows flight records for both exact-planned and MH answers with
    the phase decomposition filled in;
  - /healthz reports ok and /metrics scrapes non-trivially, including
    the iflow_serve_phase_seconds histograms (saved for the exposition
    format check and artifact upload).

Writes client-side latency percentiles to --latency-out and the raw
/metrics exposition (including the iflow_serve_request_seconds
histogram) to --metrics-out. Every request carries a socket timeout
(--request-timeout) and the whole run a wall-clock budget (--budget):
a wedged server fails the job in minutes, never at the CI timeout.
Exits non-zero on any failure.
"""

import argparse
import json
import os
import socket
import sys
import threading
import time
import urllib.request

FAILURES = []
FAIL_LOCK = threading.Lock()

# per-request socket timeout; overridden by --request-timeout in main()
REQUEST_TIMEOUT = 30.0


def fail(msg):
    with FAIL_LOCK:
        FAILURES.append(msg)


def http(host, port, method, path, body=None, headers=None):
    req = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=body.encode() if body is not None else None,
        method=method,
        headers=headers or {},
    )
    with urllib.request.urlopen(req, timeout=REQUEST_TIMEOUT) as resp:
        return resp.status, resp.read().decode()


def healthz(host, port):
    _, body = http(host, port, "GET", "/healthz")
    return json.loads(body)


RETRYABLE = ("over_capacity", "quota_exceeded")
MAX_RETRIES = 60
RETRY_SLEEP = 0.25


class Recorder:
    """Thread-safe latency samples + (version, digest) consistency."""

    def __init__(self):
        self.lock = threading.Lock()
        self.latencies = []
        self.version_digest = {}
        self.answers = 0
        self.sheds = 0

    def shed(self):
        with self.lock:
            self.sheds += 1

    def answer(self, reply, dt):
        with self.lock:
            self.latencies.append(dt)
            self.answers += 1
            if reply.get("plan") not in ("exact", "mh"):
                fail(f"answer without a plan tag: {reply}")
            if not reply.get("request_id"):
                fail(f"answer without a request_id: {reply}")
            v, d = reply.get("version"), reply.get("digest")
            if v is None or d is None:
                fail(f"answer without version/digest: {reply}")
                return
            if self.version_digest.setdefault(v, d) != d:
                fail(
                    f"torn hot-swap: version {v} seen with digests "
                    f"{self.version_digest[v]} and {d}"
                )


def jsonl_session(host, port, queries, rec):
    """One raw-TCP session: send each query, read each answer line.
    Typed sheds (over_capacity / quota_exceeded) are retried with
    backoff — that is the client contract admission control assumes."""
    try:
        with socket.create_connection((host, port),
                                      timeout=REQUEST_TIMEOUT) as sock:
            f = sock.makefile("rwb")
            for q in queries:
                for attempt in range(MAX_RETRIES):
                    t0 = time.monotonic()
                    f.write((json.dumps(q) + "\n").encode())
                    f.flush()
                    line = f.readline()
                    dt = time.monotonic() - t0
                    if not line:
                        fail("server closed a JSONL session mid-stream")
                        return
                    reply = json.loads(line)
                    if "estimate" in reply:
                        rec.answer(reply, dt)
                        break
                    if reply.get("error") in RETRYABLE:
                        rec.shed()
                        time.sleep(RETRY_SLEEP * (1 + attempt))
                        continue
                    fail(f"query refused: {reply}")
                    break
                else:
                    fail(f"query still shed after {MAX_RETRIES} retries: {q}")
    except Exception as e:  # noqa: BLE001 - anything here is a failure
        fail(f"jsonl session: {e!r}")


def http_session(host, port, queries, rec):
    """The same queries through POST /query, one batch per request;
    shed lines are collected and re-POSTed with backoff."""
    try:
        pending = list(queries)
        for attempt in range(MAX_RETRIES):
            body = "\n".join(json.dumps(q) for q in pending)
            t0 = time.monotonic()
            status, text = http(host, port, "POST", "/query", body)
            dt = (time.monotonic() - t0) / max(1, len(pending))
            if status != 200:
                fail(f"POST /query -> {status}")
                return
            retry = []
            for q, line in zip(pending, text.splitlines()):
                reply = json.loads(line)
                if "estimate" in reply:
                    rec.answer(reply, dt)
                elif reply.get("error") in RETRYABLE:
                    rec.shed()
                    retry.append(q)
                else:
                    fail(f"http query refused: {reply}")
            if not retry:
                return
            pending = retry
            time.sleep(RETRY_SLEEP * (1 + attempt))
        fail(f"queries still shed after {MAX_RETRIES} retries: {pending}")
    except Exception as e:  # noqa: BLE001
        fail(f"http session: {e!r}")


def percentile(sorted_xs, p):
    return sorted_xs[min(len(sorted_xs) - 1, int(p * len(sorted_xs)))]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, required=True)
    ap.add_argument("--nodes", type=int, default=40,
                    help="node count of the served model")
    ap.add_argument("--sessions", type=int, default=100,
                    help="concurrent client sessions")
    ap.add_argument("--queries-per-session", type=int, default=2)
    ap.add_argument("--evidence-events", type=int, default=200)
    ap.add_argument("--swap-timeout", type=float, default=120.0)
    ap.add_argument("--latency-out", default="serve-latency.json")
    ap.add_argument("--metrics-out", default="serve-metrics.prom")
    ap.add_argument("--request-timeout", type=float, default=30.0,
                    help="per-socket timeout: no single read may hang")
    ap.add_argument("--budget", type=float, default=600.0,
                    help="wall-clock budget for the whole smoke run")
    args = ap.parse_args()
    host, port, n = args.host, args.port, args.nodes

    global REQUEST_TIMEOUT
    REQUEST_TIMEOUT = args.request_timeout

    # hard wall-clock backstop: per-request timeouts bound each read,
    # this bounds the sum (retry loops included)
    def overdue():
        print(f"\nFAIL: smoke exceeded its {args.budget}s wall-clock "
              "budget", file=sys.stderr)
        os._exit(2)

    watchdog = threading.Timer(args.budget, overdue)
    watchdog.daemon = True
    watchdog.start()

    v0 = healthz(host, port)
    print(f"healthz before load: {v0}")
    if v0.get("status") not in ("ok", "degraded"):
        fail(f"unexpected initial health: {v0}")

    # concurrent load: each session asks its own (src, dst) pairs, so
    # the mix covers both cache misses and hits across sessions
    rec = Recorder()
    threads = []
    for i in range(args.sessions):
        queries = [
            {"type": "flow", "src": (i + k) % n, "dst": (i + k + 1 + i % 7) % n}
            for k in range(args.queries_per_session)
            if (i + k) % n != (i + k + 1 + i % 7) % n
        ]
        target = jsonl_session if i % 2 == 0 else http_session
        threads.append(threading.Thread(target=target,
                                        args=(host, port, queries, rec)))
    for t in threads:
        t.start()

    # while that load runs: stream evidence and wait for the hot-swap.
    # add_edges first so the attributed events reference known edges —
    # one edge per line, because the generated graph may already contain
    # some of them and a duplicate only quarantines its own line.
    edges = [[0, 3], [3, 5], [5, 7]]
    events = [{"type": "add_edges", "edges": [e]} for e in edges]
    for k in range(args.evidence_events):
        events.append({
            "type": "attributed",
            "sources": [0],
            "nodes": [0, 3, 5, 7][: 2 + k % 3],
            "edges": edges[: 1 + k % 3],
        })
    status, body = http(host, port, "POST", "/evidence",
                        "\n".join(json.dumps(e) for e in events))
    if status != 202:
        fail(f"POST /evidence -> {status}: {body}")
    else:
        print(f"evidence accepted: {body.strip()}")

    base = v0.get("version", 0)
    deadline = time.monotonic() + args.swap_timeout
    swapped = None
    while time.monotonic() < deadline:
        h = healthz(host, port)
        if h.get("version", 0) > base:
            swapped = h
            break
        time.sleep(0.2)
    if swapped is None:
        fail(f"model version never advanced past {base} "
             f"within {args.swap_timeout}s")
    else:
        print(f"hot-swapped under load: version {base} -> "
              f"{swapped['version']} (digest {swapped['digest']})")

    for t in threads:
        t.join()

    expected = sum(1 for i in range(args.sessions)
                   for k in range(args.queries_per_session)
                   if (i + k) % n != (i + k + 1 + i % 7) % n)
    print(f"answers: {rec.answers}/{expected} "
          f"across versions {sorted(rec.version_digest)} "
          f"({rec.sheds} sheds retried)")
    if rec.answers != expected:
        fail(f"expected {expected} answers, got {rec.answers}")

    # a few queries after the swap must answer from the new version
    post = Recorder()
    jsonl_session(host, port,
                  [{"type": "flow", "src": 0, "dst": d} for d in (3, 5, 7)],
                  post)
    if swapped is not None and post.version_digest:
        if max(post.version_digest) < swapped["version"]:
            fail(f"post-swap queries still answered from "
                 f"{sorted(post.version_digest)}; expected "
                 f">= {swapped['version']}")

    # a self-flow is certainty: the planner must answer it exactly over
    # HTTP, tagged as such and never degraded
    status, text = http(host, port, "POST", "/query",
                        json.dumps({"type": "flow", "src": 0, "dst": 0}))
    if status != 200:
        fail(f"self-flow POST /query -> {status}")
    else:
        reply = json.loads(text.splitlines()[0])
        if reply.get("plan") != "exact":
            fail(f"self-flow not planned exact: {reply}")
        if reply.get("estimate") != 1.0:
            fail(f"self-flow estimate is not 1.0: {reply}")
        if reply.get("degraded"):
            fail(f"exact answer marked degraded: {reply}")
        print(f"self-flow answered exactly: {text.splitlines()[0]}")

    # client-supplied request ids round-trip: body field and header
    req = urllib.request.Request(
        f"http://{host}:{port}/query",
        data=json.dumps({"type": "flow", "src": 0, "dst": 3}).encode(),
        method="POST",
        headers={"X-Request-Id": "smoke-rid-1"},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        echoed = resp.headers.get("X-Request-Id")
        reply = json.loads(resp.read().decode().splitlines()[0])
    if echoed != "smoke-rid-1":
        fail(f"X-Request-Id header not echoed: {echoed!r}")
    if reply.get("request_id") != "smoke-rid-1":
        fail(f"client request_id not echoed in body: {reply}")
    print("request id round-trip: OK")

    # the flight recorder must hold records for both answer paths of
    # the storm above: MH-sampled flows and the exact-planned self-flow
    status, body = http(host, port, "GET", "/debug/requests?n=256")
    if status != 200:
        fail(f"GET /debug/requests -> {status}")
    else:
        records = json.loads(body)
        paths = {}
        for r in records:
            paths.setdefault(r.get("path"), 0)
            paths[r.get("path")] += 1
            if not r.get("request_id"):
                fail(f"flight record without request_id: {r}")
            for field in ("queue_wait_ns", "plan_ns", "sample_ns",
                          "serialize_ns", "seq", "version"):
                if not isinstance(r.get(field), int):
                    fail(f"flight record missing {field}: {r}")
        if not paths.get("mh"):
            fail(f"no MH answers in the flight recorder: {paths}")
        if not paths.get("exact"):
            fail(f"no exact-planned answers in the flight recorder: {paths}")
        mine = [r for r in records if r.get("request_id") == "smoke-rid-1"]
        if not mine:
            fail("smoke-rid-1 not found in /debug/requests")
        elif mine[0].get("serialize_ns", 0) <= 0:
            fail(f"smoke-rid-1 record has no serialize time: {mine[0]}")
        print(f"flight recorder: {len(records)} records, paths {paths}")

    # scrape /metrics for the format check + latency histogram artifact
    status, exposition = http(host, port, "GET", "/metrics")
    if status != 200 or "iflow_serve_request_seconds" not in exposition:
        fail(f"/metrics scrape unusable (status {status})")
    if "iflow_serve_phase_seconds" not in exposition:
        fail("iflow_serve_phase_seconds missing from /metrics")
    # the exact-planned answer above must have moved the planner counter
    # (the CI job runs the server with metrics recording on)
    hits = [
        line.split()[-1]
        for line in exposition.splitlines()
        if line.startswith("iflow_plan_exact_hits_total")
    ]
    if not hits:
        fail("iflow_plan_exact_hits_total missing from /metrics")
    elif float(hits[0]) < 1:
        fail(f"iflow_plan_exact_hits_total = {hits[0]}, expected >= 1")
    with open(args.metrics_out, "w") as f:
        f.write(exposition)
    print(f"wrote {args.metrics_out} ({len(exposition)} bytes)")

    lat = sorted(rec.latencies)
    with open(args.latency_out, "w") as f:
        json.dump({
            "sessions": args.sessions,
            "answers": rec.answers,
            "sheds_retried": rec.sheds,
            "versions_seen": {str(v): d
                              for v, d in sorted(rec.version_digest.items())},
            "client_latency_ms": {
                "p50": round(1e3 * percentile(lat, 0.50), 3),
                "p99": round(1e3 * percentile(lat, 0.99), 3),
                "max": round(1e3 * lat[-1], 3),
            } if lat else None,
        }, f, indent=2)
    print(f"wrote {args.latency_out}")

    watchdog.cancel()
    if FAILURES:
        print("\nFAILURES:", file=sys.stderr)
        for msg in FAILURES:
            print(f"  - {msg}", file=sys.stderr)
        return 1
    print("serve smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
