open Iflow_core
module Digraph = Iflow_graph.Digraph
module Gen = Iflow_graph.Gen
module Rng = Iflow_stats.Rng
module Beta = Iflow_stats.Dist.Beta

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* The paper's running example: v1 -> v2, v1 -> v3, v2 -> v3 (0-indexed
   as 0 -> 1, 0 -> 2, 1 -> 2). *)
let triangle p12 p13 p23 =
  let g = Digraph.of_edges ~nodes:3 [ (0, 1); (0, 2); (1, 2) ] in
  Icm.create g [| p12; p13; p23 |]

(* ---------- Icm ---------- *)

let test_icm_create () =
  let icm = triangle 0.5 0.25 0.75 in
  Alcotest.(check int) "nodes" 3 (Icm.n_nodes icm);
  Alcotest.(check int) "edges" 3 (Icm.n_edges icm);
  check_close "p13" 0.25 (Icm.prob icm 1);
  Alcotest.check_raises "bad prob"
    (Invalid_argument "Icm.create: p(0) = 1.5 outside [0,1]") (fun () ->
      ignore (triangle 1.5 0.0 0.0));
  let g = Gen.path 3 in
  Alcotest.check_raises "size"
    (Invalid_argument "Icm.create: 1 probabilities for 2 edges") (fun () ->
      ignore (Icm.create g [| 0.5 |]))

(* ---------- Pseudo_state ---------- *)

let test_pseudo_state_basics () =
  let s = Pseudo_state.create 5 in
  Alcotest.(check int) "none active" 0 (Pseudo_state.count_active s);
  Pseudo_state.set s 2 true;
  Pseudo_state.set s 4 true;
  Alcotest.(check bool) "get" true (Pseudo_state.get s 2);
  Alcotest.(check (list int)) "active list" [ 2; 4 ] (Pseudo_state.active_list s);
  Pseudo_state.flip s 2;
  Alcotest.(check bool) "flipped off" false (Pseudo_state.get s 2);
  let c = Pseudo_state.copy s in
  Pseudo_state.flip c 0;
  Alcotest.(check bool) "copy isolated" false (Pseudo_state.get s 0);
  Alcotest.(check bool) "equal self" true (Pseudo_state.equal s s);
  Alcotest.(check bool) "not equal" false (Pseudo_state.equal s c)

let test_pseudo_state_log_prob () =
  let icm = triangle 0.5 0.25 0.75 in
  let s = Pseudo_state.create 3 in
  (* all inactive: (1-.5)(1-.25)(1-.75) = 0.09375 *)
  check_close ~eps:1e-12 "all inactive" (Float.log 0.09375)
    (Pseudo_state.log_prob icm s);
  Pseudo_state.set s 0 true;
  (* 0.5 * 0.75 * 0.25 *)
  check_close ~eps:1e-12 "one active" (Float.log 0.09375)
    (Pseudo_state.log_prob icm s);
  let deterministic = triangle 0.0 1.0 0.5 in
  let s = Pseudo_state.create 3 in
  Alcotest.(check bool) "impossible state" true
    (Pseudo_state.log_prob deterministic s = neg_infinity)

let test_pseudo_state_flow () =
  let icm = triangle 1.0 0.0 1.0 in
  let s = Pseudo_state.create 3 in
  Pseudo_state.set s 0 true;
  Pseudo_state.set s 2 true;
  Alcotest.(check bool) "flow via chain" true
    (Pseudo_state.flow icm s ~src:0 ~dst:2);
  let reached = Pseudo_state.reachable icm s ~sources:[ 0 ] in
  Alcotest.(check (array bool)) "reachable" [| true; true; true |] reached;
  let s2 = Pseudo_state.create 3 in
  Pseudo_state.set s2 1 true;
  Alcotest.(check bool) "direct edge" true
    (Pseudo_state.flow icm s2 ~src:0 ~dst:2);
  Alcotest.(check bool) "no path" false (Pseudo_state.flow icm s2 ~src:0 ~dst:1)

let test_derive_active_edges () =
  let icm = triangle 1.0 1.0 1.0 in
  let s = Pseudo_state.create 3 in
  (* edge 2 (1->2) active but node 1 unreachable: not an active edge *)
  Pseudo_state.set s 2 true;
  let active = Pseudo_state.derive_active_edges icm s ~sources:[ 0 ] in
  Alcotest.(check (array bool)) "dangling edge dropped"
    [| false; false; false |] active;
  Pseudo_state.set s 0 true;
  let active = Pseudo_state.derive_active_edges icm s ~sources:[ 0 ] in
  Alcotest.(check (array bool)) "chain" [| true; false; true |] active

let test_pseudo_state_sample_frequency () =
  let icm = triangle 0.2 0.8 0.5 in
  let rng = Rng.create 3 in
  let counts = Array.make 3 0 in
  let n = 20000 in
  for _ = 1 to n do
    let s = Pseudo_state.sample rng icm in
    for e = 0 to 2 do
      if Pseudo_state.get s e then counts.(e) <- counts.(e) + 1
    done
  done;
  Array.iteri
    (fun e c ->
      check_close ~eps:0.02
        (Printf.sprintf "edge %d frequency" e)
        (Icm.prob icm e)
        (float_of_int c /. float_of_int n))
    counts

(* ---------- Exact ---------- *)

let test_exact_triangle_closed_form () =
  (* Paper Equation (1): Pr[v1 ~> v3] = 1 - (1 - p12 p23)(1 - p13) *)
  List.iter
    (fun (p12, p13, p23) ->
      let icm = triangle p12 p13 p23 in
      let expected = 1.0 -. ((1.0 -. (p12 *. p23)) *. (1.0 -. p13)) in
      check_close ~eps:1e-12 "closed form" expected
        (Exact.flow_probability icm ~src:0 ~dst:2))
    [ (0.5, 0.25, 0.75); (0.1, 0.9, 0.3); (1.0, 0.0, 1.0); (0.0, 0.0, 0.7) ]

let test_exact_cycle_unchanged () =
  (* Adding the arc v3 -> v2 must not change Pr[v1 ~> v3] (paper Sec II). *)
  let p12 = 0.5 and p13 = 0.25 and p23 = 0.75 and p32 = 0.6 in
  let g = Digraph.of_edges ~nodes:3 [ (0, 1); (0, 2); (1, 2); (2, 1) ] in
  let icm = Icm.create g [| p12; p13; p23; p32 |] in
  let expected = 1.0 -. ((1.0 -. (p12 *. p23)) *. (1.0 -. p13)) in
  check_close ~eps:1e-12 "cycle" expected
    (Exact.flow_probability icm ~src:0 ~dst:2);
  (* but Pr[v1 ~> v2] does change: flow can route through v3. *)
  let without = triangle p12 p13 p23 in
  Alcotest.(check bool) "v1~>v2 grows" true
    (Exact.flow_probability icm ~src:0 ~dst:1
    > Exact.flow_probability without ~src:0 ~dst:1)

(* Equation 2 is exact when flows to a sink's parents are edge-disjoint;
   random trees qualify (each node has a single path from the root). *)
let test_exact_matches_brute_force_on_trees () =
  let rng = Rng.create 11 in
  for trial = 1 to 20 do
    (* random tree rooted at 0 with 8 nodes *)
    let pairs = List.init 7 (fun i -> (Rng.int rng (i + 1), i + 1)) in
    let g = Digraph.of_edges ~nodes:8 pairs in
    let probs = Array.init 7 (fun _ -> Rng.uniform rng) in
    let icm = Icm.create g probs in
    let dst = 1 + Rng.int rng 7 in
    check_close ~eps:1e-9
      (Printf.sprintf "trial %d" trial)
      (Exact.brute_force_flow icm ~src:0 ~dst)
      (Exact.flow_probability icm ~src:0 ~dst)
  done

(* The documented caveat: when two parents are fed through a shared
   edge, Equation 2 slightly overestimates the union. Pin the exact
   values so any change in behaviour is noticed. *)
let test_exact_shared_edge_overestimate () =
  let g =
    Digraph.of_edges ~nodes:5 [ (0, 1); (1, 2); (1, 3); (2, 4); (3, 4) ]
  in
  let icm = Icm.create g (Array.make 5 0.5) in
  (* truth: x01 and then either branch: 0.5 * (1 - (1 - 0.25)^2) *)
  check_close ~eps:1e-12 "brute force truth" 0.21875
    (Exact.brute_force_flow icm ~src:0 ~dst:4);
  check_close ~eps:1e-12 "equation 2 value" 0.234375
    (Exact.flow_probability icm ~src:0 ~dst:4);
  Alcotest.(check bool) "overestimates" true
    (Exact.flow_probability icm ~src:0 ~dst:4
    > Exact.brute_force_flow icm ~src:0 ~dst:4)

let test_exact_self_flow () =
  let icm = triangle 0.5 0.5 0.5 in
  check_close "self" 1.0 (Exact.flow_probability icm ~src:1 ~dst:1)

let test_brute_force_conditional () =
  let icm = triangle 0.5 0.25 0.75 in
  let unconditional = Exact.brute_force_flow icm ~src:0 ~dst:2 in
  let conditional =
    Exact.brute_force_conditional icm ~conditions:[ (0, 1, true) ] ~src:0
      ~dst:2
  in
  Alcotest.(check bool) "conditioning raises" true (conditional > unconditional);
  (* given 0 ~> 1 (edge 0 active): flow = 1 - (1 - p23)(1 - p13) *)
  check_close ~eps:1e-9 "hand value"
    (1.0 -. ((1.0 -. 0.75) *. (1.0 -. 0.25)))
    conditional;
  (* given NOT 0 ~> 1 (edge 0 inactive): flow = p13 *)
  check_close ~eps:1e-9 "negative condition" 0.25
    (Exact.brute_force_conditional icm ~conditions:[ (0, 1, false) ] ~src:0
       ~dst:2)

let test_brute_force_community_and_impact () =
  let icm = triangle 0.5 0.25 0.75 in
  let p_both = Exact.brute_force_community icm ~src:0 ~sinks:[ 1; 2 ] in
  let p1 = Exact.brute_force_flow icm ~src:0 ~dst:1 in
  let p2 = Exact.brute_force_flow icm ~src:0 ~dst:2 in
  Alcotest.(check bool) "community <= min marginal" true
    (p_both <= min p1 p2 +. 1e-12);
  let impact = Exact.brute_force_impact icm ~src:0 in
  check_close ~eps:1e-9 "impact normalised" 1.0
    (Array.fold_left ( +. ) 0.0 impact);
  (* E[#reached] = p1 + p2 by linearity of expectation *)
  check_close ~eps:1e-9 "impact mean" (p1 +. p2)
    (impact.(1) +. (2.0 *. impact.(2)))

(* ---------- Cascade ---------- *)

let test_cascade_deterministic () =
  let icm = triangle 1.0 0.0 1.0 in
  let rng = Rng.create 5 in
  let o = Cascade.run rng icm ~sources:[ 0 ] in
  Alcotest.(check (array bool)) "nodes" [| true; true; true |] o.Evidence.active_nodes;
  Alcotest.(check (array bool)) "edges" [| true; false; true |] o.Evidence.active_edges;
  Alcotest.(check int) "impact" 2 (Cascade.reached_count o)

let test_cascade_consistency () =
  let rng = Rng.create 6 in
  let g = Gen.gnm rng ~nodes:15 ~edges:40 in
  let icm = Icm.create g (Array.init 40 (fun _ -> Rng.uniform rng)) in
  for _ = 1 to 50 do
    let src = Rng.int rng 15 in
    let o = Cascade.run rng icm ~sources:[ src ] in
    Alcotest.(check bool) "consistent" true
      (Evidence.attributed_object_is_consistent g o)
  done

let test_cascade_flow_frequency_matches_exact () =
  let icm = triangle 0.5 0.25 0.75 in
  let rng = Rng.create 7 in
  let n = 30000 in
  let hits = ref 0 in
  for _ = 1 to n do
    let o = Cascade.run rng icm ~sources:[ 0 ] in
    if o.Evidence.active_nodes.(2) then incr hits
  done;
  check_close ~eps:0.01 "frequency vs exact"
    (Exact.flow_probability icm ~src:0 ~dst:2)
    (float_of_int !hits /. float_of_int n)

let test_trace_generation () =
  let icm = triangle 1.0 0.0 1.0 in
  let rng = Rng.create 8 in
  let tr = Cascade.run_trace rng icm ~sources:[ 0 ] in
  Alcotest.(check (array int)) "times" [| 0; 1; 2 |] tr.Evidence.times;
  Alcotest.(check bool) "consistent" true
    (Evidence.trace_is_consistent (Icm.graph icm) tr)

(* ---------- Evidence ---------- *)

let test_evidence_consistency_checks () =
  let g = Digraph.of_edges ~nodes:3 [ (0, 1); (1, 2) ] in
  let good =
    {
      Evidence.sources = [ 0 ];
      active_nodes = [| true; true; false |];
      active_edges = [| true; false |];
    }
  in
  Alcotest.(check bool) "good" true
    (Evidence.attributed_object_is_consistent g good);
  let orphan =
    {
      Evidence.sources = [ 0 ];
      active_nodes = [| true; false; true |];
      active_edges = [| false; false |];
    }
  in
  Alcotest.(check bool) "orphan active node" false
    (Evidence.attributed_object_is_consistent g orphan);
  let dangling =
    {
      Evidence.sources = [ 0 ];
      active_nodes = [| true; false; false |];
      active_edges = [| true; false |];
    }
  in
  Alcotest.(check bool) "edge into inactive node" false
    (Evidence.attributed_object_is_consistent g dangling)

let test_trace_of_active () =
  let tr =
    Evidence.trace_of_active ~sources:[ 0 ] ~times:[ (2, 3); (1, 1) ] ~n:4
  in
  Alcotest.(check (array int)) "times" [| 0; 1; 3; -1 |] tr.Evidence.times

(* ---------- Beta_icm ---------- *)

let test_train_attributed_counting () =
  let g = Digraph.of_edges ~nodes:3 [ (0, 1); (1, 2) ] in
  (* object A: 0 tweeted, 1 retweeted, 2 did not.
     object B: 0 tweeted, nobody retweeted. *)
  let a =
    {
      Evidence.sources = [ 0 ];
      active_nodes = [| true; true; false |];
      active_edges = [| true; false |];
    }
  in
  let b =
    {
      Evidence.sources = [ 0 ];
      active_nodes = [| true; false; false |];
      active_edges = [| false; false |];
    }
  in
  let model = Beta_icm.train_attributed g [ a; b ] in
  let b0 = Beta_icm.edge_beta model 0 in
  (* edge 0: fired once (A), parent active without firing once (B) *)
  check_close "alpha0" 2.0 b0.Beta.alpha;
  check_close "beta0" 2.0 b0.Beta.beta;
  let b1 = Beta_icm.edge_beta model 1 in
  (* edge 1: parent active in A only, never fired *)
  check_close "alpha1" 1.0 b1.Beta.alpha;
  check_close "beta1" 2.0 b1.Beta.beta

let test_train_recovers_probabilities () =
  let rng = Rng.create 9 in
  let g = Gen.gnm rng ~nodes:10 ~edges:30 in
  let truth = Icm.create g (Array.init 30 (fun _ -> Rng.uniform rng)) in
  let objects =
    List.init 3000 (fun _ -> Cascade.run rng truth ~sources:[ Rng.int rng 10 ])
  in
  let model = Beta_icm.train_attributed g objects in
  let icm = Beta_icm.expected_icm model in
  (* edges whose parent was active often should be estimated well *)
  let errors = ref [] in
  for e = 0 to 29 do
    let b = Beta_icm.edge_beta model e in
    let evidence_count = b.Beta.alpha +. b.Beta.beta -. 2.0 in
    if evidence_count > 200.0 then
      errors := Float.abs (Icm.prob icm e -. Icm.prob truth e) :: !errors
  done;
  Alcotest.(check bool) "some well-observed edges" true
    (List.length !errors > 5);
  let worst = List.fold_left Float.max 0.0 !errors in
  Alcotest.(check bool)
    (Printf.sprintf "max error %.3f < 0.12" worst)
    true (worst < 0.12)

let test_beta_icm_sampling_and_observe () =
  let g = Gen.path 2 in
  let model = Beta_icm.uninformed g in
  let model = Beta_icm.observe model ~edge:0 ~fired:true in
  let model = Beta_icm.observe model ~edge:0 ~fired:true in
  let model = Beta_icm.observe model ~edge:0 ~fired:false in
  let b = Beta_icm.edge_beta model 0 in
  check_close "alpha" 3.0 b.Beta.alpha;
  check_close "beta" 2.0 b.Beta.beta;
  check_close "expected" 0.6 (Icm.prob (Beta_icm.expected_icm model) 0);
  let rng = Rng.create 10 in
  let sampled = Beta_icm.sample_icm rng model in
  let p = Icm.prob sampled 0 in
  Alcotest.(check bool) "sampled in range" true (p >= 0.0 && p <= 1.0)

let test_grow_and_remove () =
  let g = Digraph.of_edges ~nodes:3 [ (0, 1); (1, 2) ] in
  let model =
    Beta_icm.create g [| Beta.v 5.0 3.0; Beta.v 2.0 2.0 |]
  in
  let grown =
    Beta_icm.grow model ~new_nodes:1
      ~new_edges:[ (2, 3, Beta.v 7.0 1.0); (3, 0, Beta.v 1.0 9.0) ]
  in
  Alcotest.(check int) "nodes" 4 (Beta_icm.n_nodes grown);
  Alcotest.(check int) "edges" 4 (Beta_icm.n_edges grown);
  (* existing edge ids and betas preserved *)
  check_close "old alpha kept" 5.0 (Beta_icm.edge_beta grown 0).Beta.alpha;
  check_close "new alpha" 7.0 (Beta_icm.edge_beta grown 2).Beta.alpha;
  Alcotest.(check bool) "new edge present" true
    (Digraph.mem_edge (Beta_icm.graph grown) ~src:3 ~dst:0);
  let pruned = Beta_icm.remove_edges grown [ (1, 2); (9, 9) ] in
  Alcotest.(check int) "edge removed" 3 (Beta_icm.n_edges pruned);
  Alcotest.(check bool) "gone" false
    (Digraph.mem_edge (Beta_icm.graph pruned) ~src:1 ~dst:2);
  (* betas stay aligned with their edges after the id shift *)
  (match Digraph.find_edge (Beta_icm.graph pruned) ~src:2 ~dst:3 with
  | Some e -> check_close "realigned" 7.0 (Beta_icm.edge_beta pruned e).Beta.alpha
  | None -> Alcotest.fail "edge 2->3 missing");
  (* evidence accumulated before the change survives it *)
  match Digraph.find_edge (Beta_icm.graph pruned) ~src:0 ~dst:1 with
  | Some e -> check_close "evidence kept" 5.0 (Beta_icm.edge_beta pruned e).Beta.alpha
  | None -> Alcotest.fail "edge 0->1 missing"

(* ---------- Summary ---------- *)

let table_one () =
  (* Paper Table I: sink k with incident nodes A=0, B=1, C=2 *)
  Summary.of_table ~sink:3
    [ ([| 0; 1 |], 5, 1); ([| 1; 2 |], 50, 15); ([| 0; 2 |], 10, 2) ]

let test_summary_of_table () =
  let s = table_one () in
  Alcotest.(check int) "entries" 3 (Summary.n_entries s);
  Alcotest.(check int) "observations" 65 (Summary.total_observations s);
  Alcotest.(check int) "leaks" 18 (Summary.total_leaks s);
  Alcotest.(check (array int)) "parents" [| 0; 1; 2 |] (Summary.parents_union s);
  Alcotest.(check (list (triple int int int))) "no unambiguous" []
    (Summary.unambiguous s)

let test_summary_of_table_errors () =
  Alcotest.check_raises "leaks > count"
    (Invalid_argument "Summary.of_table: bad counts") (fun () ->
      ignore (Summary.of_table ~sink:0 [ ([| 1 |], 2, 3) ]));
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Summary.of_table: characteristic not strictly sorted")
    (fun () -> ignore (Summary.of_table ~sink:0 [ ([| 2; 1 |], 2, 1) ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Summary.of_table: duplicate characteristic") (fun () ->
      ignore (Summary.of_table ~sink:0 [ ([| 1 |], 2, 1); ([| 1 |], 3, 1) ]))

let test_summary_build_from_traces () =
  (* Graph: 0 -> 2, 1 -> 2. Traces vary who was active before 2. *)
  let g = Digraph.of_edges ~nodes:3 [ (0, 2); (1, 2) ] in
  let tr sources times = Evidence.trace_of_active ~sources ~times ~n:3 in
  let traces =
    [
      (* {0}, leak *)
      tr [ 0 ] [ (2, 1) ];
      (* {0}, no leak *)
      tr [ 0 ] [];
      (* {0,1}, leak *)
      tr [ 0 ] [ (1, 1); (2, 2) ];
      (* 1 activated after 2: characteristic is {0} only; leak *)
      tr [ 0 ] [ (2, 1); (1, 2) ];
      (* 2 is a source: dropped *)
      tr [ 2 ] [ (0, 1) ];
      (* {1}, no leak *)
      tr [ 1 ] [];
    ]
  in
  let s = Summary.build g traces ~sink:2 in
  let find parents =
    List.find_opt (fun (e : Summary.entry) -> e.parents = parents) s.entries
  in
  (match find [| 0 |] with
  | Some e ->
    Alcotest.(check int) "{0} count" 3 e.count;
    Alcotest.(check int) "{0} leaks" 2 e.leaks
  | None -> Alcotest.fail "{0} missing");
  (match find [| 0; 1 |] with
  | Some e ->
    Alcotest.(check int) "{0,1} count" 1 e.count;
    Alcotest.(check int) "{0,1} leaks" 1 e.leaks
  | None -> Alcotest.fail "{0,1} missing");
  match find [| 1 |] with
  | Some e ->
    Alcotest.(check int) "{1} count" 1 e.count;
    Alcotest.(check int) "{1} leaks" 0 e.leaks
  | None -> Alcotest.fail "{1} missing"

let test_summary_likelihood () =
  let s = Summary.of_table ~sink:2 [ ([| 0 |], 10, 7) ] in
  let ll = Summary.log_likelihood s ~prob:(fun _ -> 0.7) in
  check_close ~eps:1e-12 "bernoulli ll"
    ((7.0 *. Float.log 0.7) +. (3.0 *. Float.log 0.3))
    ll;
  let exact = Summary.log_likelihood_exact s ~prob:(fun _ -> 0.7) in
  check_close ~eps:1e-9 "with binomial coefficient"
    (ll +. Iflow_stats.Special.log_choose 10 7)
    exact

(* The summary is a sufficient statistic: for any two parameter vectors,
   the log-likelihood difference computed from the summary equals the
   one computed from the raw per-object events. *)
let test_summary_sufficiency () =
  let rng = Rng.create 12 in
  let g = Digraph.of_edges ~nodes:4 [ (0, 3); (1, 3); (2, 3) ] in
  let truth = Icm.create g [| 0.7; 0.3; 0.5 |] in
  let traces =
    List.init 300 (fun _ ->
        let active = Array.init 3 (fun _ -> Rng.bool rng) in
        let sources =
          List.filter_map
            (fun j -> if active.(j) then Some j else None)
            [ 0; 1; 2 ]
        in
        match sources with
        | [] -> Evidence.trace_of_active ~sources:[ 0 ] ~times:[] ~n:4
        | _ ->
          let survive = ref 1.0 in
          Array.iteri
            (fun j a ->
              if a then survive := !survive *. (1.0 -. Icm.prob truth j))
            active;
          let leaked = Rng.uniform rng < 1.0 -. !survive in
          let times = if leaked then [ (3, 1) ] else [] in
          Evidence.trace_of_active ~sources ~times ~n:4)
  in
  let s = Summary.build g traces ~sink:3 in
  let raw_ll prob =
    List.fold_left
      (fun acc (tr : Evidence.trace) ->
        let parents = List.filter (fun j -> tr.times.(j) >= 0) [ 0; 1; 2 ] in
        match parents with
        | [] -> acc
        | _ ->
          let survive =
            List.fold_left (fun a j -> a *. (1.0 -. prob j)) 1.0 parents
          in
          let p = 1.0 -. survive in
          if tr.times.(3) >= 0 then acc +. Float.log (Float.max p 1e-300)
          else acc +. Float.log (Float.max (1.0 -. p) 1e-300))
      0.0 traces
  in
  let prob_a j = [| 0.6; 0.2; 0.45 |].(j) in
  let prob_b j = [| 0.3; 0.55; 0.8 |].(j) in
  let delta_summary =
    Summary.log_likelihood s ~prob:prob_a
    -. Summary.log_likelihood s ~prob:prob_b
  in
  let delta_raw = raw_ll prob_a -. raw_ll prob_b in
  check_close ~eps:1e-6 "sufficiency" delta_raw delta_summary

(* ---------- Generator ---------- *)

let test_generator_beta_icm () =
  let rng = Rng.create 13 in
  let model = Generator.default_beta_icm rng ~nodes:50 ~edges:200 in
  Alcotest.(check int) "nodes" 50 (Beta_icm.n_nodes model);
  Alcotest.(check int) "edges" 200 (Beta_icm.n_edges model);
  for e = 0 to 199 do
    let b = Beta_icm.edge_beta model e in
    if
      b.Beta.alpha < 1.0 || b.Beta.alpha > 20.0 || b.Beta.beta < 1.0
      || b.Beta.beta > 20.0
    then Alcotest.failf "edge %d out of range" e
  done

let test_generator_skewed () =
  let rng = Rng.create 14 in
  let g = Gen.gnm rng ~nodes:40 ~edges:600 in
  let icm = Generator.skewed_ground_truth rng g in
  let probs = Icm.probs icm in
  let high = Array.fold_left (fun c p -> if p > 0.5 then c + 1 else c) 0 probs in
  (* ~90% from Beta(16,4) (mean .8): expect most probabilities > 0.5 *)
  Alcotest.(check bool) "skew shape" true (high > 420 && high < 600)

let test_generator_in_star () =
  let g, icm, sink = Generator.in_star_icm ~probs:[| 0.68; 0.73; 0.85 |] in
  Alcotest.(check int) "sink" 3 sink;
  Alcotest.(check int) "in degree" 3 (Digraph.in_degree g sink);
  check_close "p0" 0.68 (Icm.prob icm 0)

let prop_exact_flow_in_unit_interval =
  QCheck.Test.make ~count:60 ~name:"exact flow probability lies in [0,1]"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Gen.gnm rng ~nodes:7 ~edges:14 in
      let icm = Icm.create g (Array.init 14 (fun _ -> Rng.uniform rng)) in
      let p = Exact.flow_probability icm ~src:0 ~dst:6 in
      p >= 0.0 && p <= 1.0)

let prop_exact_flow_monotone_in_probs =
  QCheck.Test.make ~count:40
    ~name:"raising edge probabilities never lowers flow"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Gen.gnm rng ~nodes:6 ~edges:12 in
      let probs = Array.init 12 (fun _ -> Rng.uniform rng) in
      let boosted =
        Array.map (fun p -> p +. ((1.0 -. p) *. Rng.uniform rng)) probs
      in
      let p1 = Exact.flow_probability (Icm.create g probs) ~src:0 ~dst:5 in
      let p2 = Exact.flow_probability (Icm.create g boosted) ~src:0 ~dst:5 in
      p2 >= p1 -. 1e-12)

let prop_pseudo_state_gives_consistent_active_state =
  QCheck.Test.make ~count:60
    ~name:"derived active state is consistent attributed evidence"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Gen.gnm rng ~nodes:8 ~edges:20 in
      let icm = Icm.create g (Array.init 20 (fun _ -> Rng.uniform rng)) in
      let s = Pseudo_state.sample rng icm in
      let src = Rng.int rng 8 in
      let o =
        {
          Evidence.sources = [ src ];
          active_nodes = Pseudo_state.reachable icm s ~sources:[ src ];
          active_edges = Pseudo_state.derive_active_edges icm s ~sources:[ src ];
        }
      in
      Evidence.attributed_object_is_consistent g o)

let qcheck tests =
  List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0 |])) tests

let () =
  Alcotest.run "iflow_core"
    [
      ("icm", [ Alcotest.test_case "create" `Quick test_icm_create ]);
      ( "pseudo_state",
        [
          Alcotest.test_case "basics" `Quick test_pseudo_state_basics;
          Alcotest.test_case "log prob" `Quick test_pseudo_state_log_prob;
          Alcotest.test_case "flow" `Quick test_pseudo_state_flow;
          Alcotest.test_case "derive active edges" `Quick test_derive_active_edges;
          Alcotest.test_case "sample frequency" `Quick test_pseudo_state_sample_frequency;
        ]
        @ qcheck [ prop_pseudo_state_gives_consistent_active_state ] );
      ( "exact",
        [
          Alcotest.test_case "triangle closed form" `Quick test_exact_triangle_closed_form;
          Alcotest.test_case "cycle unchanged" `Quick test_exact_cycle_unchanged;
          Alcotest.test_case "matches brute force on trees" `Quick
            test_exact_matches_brute_force_on_trees;
          Alcotest.test_case "shared-edge overestimate (caveat)" `Quick
            test_exact_shared_edge_overestimate;
          Alcotest.test_case "self flow" `Quick test_exact_self_flow;
          Alcotest.test_case "conditional" `Quick test_brute_force_conditional;
          Alcotest.test_case "community and impact" `Quick test_brute_force_community_and_impact;
        ]
        @ qcheck
            [ prop_exact_flow_in_unit_interval; prop_exact_flow_monotone_in_probs ] );
      ( "cascade",
        [
          Alcotest.test_case "deterministic" `Quick test_cascade_deterministic;
          Alcotest.test_case "consistency" `Quick test_cascade_consistency;
          Alcotest.test_case "frequency vs exact" `Quick test_cascade_flow_frequency_matches_exact;
          Alcotest.test_case "trace generation" `Quick test_trace_generation;
        ] );
      ( "evidence",
        [
          Alcotest.test_case "consistency checks" `Quick test_evidence_consistency_checks;
          Alcotest.test_case "trace of active" `Quick test_trace_of_active;
        ] );
      ( "beta_icm",
        [
          Alcotest.test_case "attributed counting" `Quick test_train_attributed_counting;
          Alcotest.test_case "recovers probabilities" `Quick test_train_recovers_probabilities;
          Alcotest.test_case "sampling and observe" `Quick test_beta_icm_sampling_and_observe;
          Alcotest.test_case "grow and remove" `Quick test_grow_and_remove;
        ] );
      ( "summary",
        [
          Alcotest.test_case "of_table (Table I)" `Quick test_summary_of_table;
          Alcotest.test_case "of_table errors" `Quick test_summary_of_table_errors;
          Alcotest.test_case "build from traces" `Quick test_summary_build_from_traces;
          Alcotest.test_case "likelihood" `Quick test_summary_likelihood;
          Alcotest.test_case "sufficiency" `Quick test_summary_sufficiency;
        ] );
      ( "generator",
        [
          Alcotest.test_case "beta icm" `Quick test_generator_beta_icm;
          Alcotest.test_case "skewed" `Quick test_generator_skewed;
          Alcotest.test_case "in star" `Quick test_generator_in_star;
        ] );
    ]
