lib/bucket/bucket.ml: Array Float Format Iflow_stats List
