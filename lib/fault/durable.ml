(* Crash-safe file replacement: write the full payload to a sibling
   temporary, fsync it, rename over the destination, fsync the
   directory. A reader therefore sees either the old bytes or the new
   bytes, never a torn mixture — SIGKILL at any instant leaves at worst
   a stale [.tmp] beside an intact previous file. *)

let tmp_of path = path ^ ".tmp"

let fp prefix what = prefix ^ "." ^ what

let fsync_dir dir =
  (* Not all filesystems allow opening a directory for fsync; degraded
     durability there is strictly better than refusing to checkpoint. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let write_atomic ?(failpoint_prefix = "durable") ?(fsync = true) path content =
  let tmp = tmp_of path in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  try
    let fd =
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Fail.point (fp failpoint_prefix "write");
        let oc = Unix.out_channel_of_descr fd in
        content oc;
        flush oc;
        if fsync then begin
          Fail.point (fp failpoint_prefix "fsync");
          Unix.fsync fd
        end);
    Fail.point (fp failpoint_prefix "rename");
    Sys.rename tmp path;
    if fsync then fsync_dir (Filename.dirname path)
  with e ->
    cleanup ();
    raise e

let rotated path n = if n = 0 then path else Printf.sprintf "%s.%d" path n

let rotate path ~keep =
  if keep < 1 then invalid_arg "Durable.rotate: keep must be >= 1";
  (* shift path.(keep-2) -> path.(keep-1), ..., path -> path.1; the
     oldest generation falls off the end. Renames only: an interrupted
     rotation loses rotation depth, never checkpoint integrity. *)
  if keep > 1 && Sys.file_exists path then begin
    for n = keep - 2 downto 0 do
      let src = rotated path n in
      if Sys.file_exists src then Sys.rename src (rotated path (n + 1))
    done
  end

let generations path ~limit =
  let rec go n acc =
    if n >= limit then List.rev acc
    else
      let p = rotated path n in
      if Sys.file_exists p then go (n + 1) (p :: acc)
      else if n = 0 then go (n + 1) acc (* current missing, older may exist *)
      else List.rev acc
  in
  go 0 []
