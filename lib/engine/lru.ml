type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable first : ('k, 'v) node option; (* most recently used *)
  mutable last : ('k, 'v) node option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

let create capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  {
    capacity;
    table = Hashtbl.create (max 16 capacity);
    first = None;
    last = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.first <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.last <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.first;
  node.prev <- None;
  (match t.first with Some f -> f.prev <- Some node | None -> ());
  t.first <- Some node;
  if t.last = None then t.last <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    t.hits <- t.hits + 1;
    unlink t node;
    push_front t node;
    Some node.value
  | None ->
    t.misses <- t.misses + 1;
    None

let mem t key = Hashtbl.mem t.table key

let evict_last t =
  match t.last with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key;
    t.evictions <- t.evictions + 1

let add t key value =
  if t.capacity > 0 then begin
    (match Hashtbl.find_opt t.table key with
    | Some node ->
      node.value <- value;
      unlink t node;
      push_front t node
    | None ->
      if Hashtbl.length t.table >= t.capacity then evict_last t;
      let node = { key; value; prev = None; next = None } in
      Hashtbl.replace t.table key node;
      push_front t node)
  end

let evict_where t pred =
  let doomed =
    Hashtbl.fold
      (fun key node acc -> if pred key then node :: acc else acc)
      t.table []
  in
  List.iter
    (fun node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      t.evictions <- t.evictions + 1)
    doomed;
  List.length doomed

let clear t =
  Hashtbl.reset t.table;
  t.first <- None;
  t.last <- None

let stats (t : (_, _) t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    entries = Hashtbl.length t.table;
  }

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "hits %d, misses %d, evictions %d, entries %d" s.hits
    s.misses s.evictions s.entries
