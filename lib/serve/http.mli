(** Just enough HTTP/1.1 for the serving endpoints.

    The server is not a general web server: it accepts one request per
    connection (responses carry [Connection: close]), reads bodies by
    [Content-Length] only, and bounds both header and body sizes. The
    full HTTP surface is five routes ([POST /query], [POST /evidence],
    [GET /metrics], [GET /healthz], [GET /debug/requests]); everything
    richer speaks the raw JSONL dialect instead. *)

type request = {
  meth : string;                      (** uppercased, e.g. ["POST"] *)
  path : string;                      (** as sent, query string included *)
  headers : (string * string) list;   (** names lowercased *)
  body : string;
}

type parse =
  | Request of request
  | Malformed of string   (** answer 400 and close *)
  | Overflow of string    (** answer 431/413 and close *)

val read_request :
  ?max_headers:int -> ?max_body_bytes:int -> Sockio.reader ->
  first_line:string -> parse
(** Parse a request whose request-line, already consumed by the
    protocol sniffer, is [first_line]; reads headers and body from the
    reader. Defaults: 100 header lines, 8 MiB body. *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val split_target : string -> string * string
(** Split a request target into (path, query string); the query is
    [""] when there is no ['?']. *)

val query_param : string -> string -> string option
(** [query_param query name] finds [name]'s value in an
    ["a=1&b=2"]-style query string ([Some ""] for a bare key). No
    percent-decoding — the debug endpoints only take small integers. *)

val is_http_verb : string -> bool
(** Does this first line look like an HTTP request-line? (The protocol
    sniff: anything else is treated as a JSONL query line.) *)

val response :
  ?headers:(string * string) list -> ?content_type:string ->
  status:int -> string -> string
(** Serialise a full response (status line, headers, [Content-Length],
    [Connection: close], body). *)

val reason : int -> string
(** Canonical reason phrase ([200 -> "OK"], [429 -> "Too Many
    Requests"], ...). *)
