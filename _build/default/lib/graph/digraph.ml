type edge = { src : int; dst : int }

type t = {
  n : int;
  srcs : int array; (* edge id -> source node *)
  dsts : int array; (* edge id -> destination node *)
  out_offsets : int array; (* length n+1; CSR rows over out-edge ids *)
  out_ids : int array;
  in_offsets : int array;
  in_ids : int array;
}

let of_edges ~nodes pairs =
  if nodes < 0 then invalid_arg "Digraph.of_edges: negative node count";
  let m = List.length pairs in
  let srcs = Array.make m 0 and dsts = Array.make m 0 in
  let seen = Hashtbl.create (2 * m) in
  List.iteri
    (fun i (s, d) ->
      if s < 0 || s >= nodes || d < 0 || d >= nodes then
        invalid_arg
          (Printf.sprintf "Digraph.of_edges: edge (%d, %d) out of range" s d);
      if s = d then
        invalid_arg (Printf.sprintf "Digraph.of_edges: self loop at %d" s);
      if Hashtbl.mem seen (s, d) then
        invalid_arg
          (Printf.sprintf "Digraph.of_edges: duplicate edge (%d, %d)" s d);
      Hashtbl.add seen (s, d) ();
      srcs.(i) <- s;
      dsts.(i) <- d)
    pairs;
  let csr key =
    let offsets = Array.make (nodes + 1) 0 in
    for e = 0 to m - 1 do
      let v = key e in
      offsets.(v + 1) <- offsets.(v + 1) + 1
    done;
    for v = 1 to nodes do
      offsets.(v) <- offsets.(v) + offsets.(v - 1)
    done;
    let cursor = Array.copy offsets in
    let ids = Array.make m 0 in
    for e = 0 to m - 1 do
      let v = key e in
      ids.(cursor.(v)) <- e;
      cursor.(v) <- cursor.(v) + 1
    done;
    (offsets, ids)
  in
  let out_offsets, out_ids = csr (fun e -> srcs.(e)) in
  let in_offsets, in_ids = csr (fun e -> dsts.(e)) in
  { n = nodes; srcs; dsts; out_offsets; out_ids; in_offsets; in_ids }

let n_nodes g = g.n
let n_edges g = Array.length g.srcs
let edge g e = { src = g.srcs.(e); dst = g.dsts.(e) }
let edge_src g e = g.srcs.(e)
let edge_dst g e = g.dsts.(e)
let out_degree g v = g.out_offsets.(v + 1) - g.out_offsets.(v)
let in_degree g v = g.in_offsets.(v + 1) - g.in_offsets.(v)

let iter_out g v f =
  for i = g.out_offsets.(v) to g.out_offsets.(v + 1) - 1 do
    f g.out_ids.(i)
  done

let iter_in g v f =
  for i = g.in_offsets.(v) to g.in_offsets.(v + 1) - 1 do
    f g.in_ids.(i)
  done

let fold_out g v ~init ~f =
  let acc = ref init in
  iter_out g v (fun e -> acc := f !acc e);
  !acc

let fold_in g v ~init ~f =
  let acc = ref init in
  iter_in g v (fun e -> acc := f !acc e);
  !acc

let out_edges g v = List.rev (fold_out g v ~init:[] ~f:(fun acc e -> e :: acc))
let in_edges g v = List.rev (fold_in g v ~init:[] ~f:(fun acc e -> e :: acc))
let in_neighbours g v = List.map (fun e -> g.srcs.(e)) (in_edges g v)
let out_neighbours g v = List.map (fun e -> g.dsts.(e)) (out_edges g v)

let find_edge g ~src ~dst =
  let found = ref None in
  (try
     iter_out g src (fun e ->
         if g.dsts.(e) = dst then begin
           found := Some e;
           raise Exit
         end)
   with Exit -> ());
  !found

let mem_edge g ~src ~dst = Option.is_some (find_edge g ~src ~dst)

let edges g =
  List.init (n_edges g) (fun e -> (g.srcs.(e), g.dsts.(e)))

let iter_edges g f =
  for e = 0 to n_edges g - 1 do
    f e (edge g e)
  done

let induced g ~keep =
  if Array.length keep <> g.n then invalid_arg "Digraph.induced: keep size";
  let node_of_sub =
    Array.of_list
      (List.filter (fun v -> keep.(v)) (List.init g.n (fun v -> v)))
  in
  let sub_of_node = Array.make g.n (-1) in
  Array.iteri (fun v' v -> sub_of_node.(v) <- v') node_of_sub;
  let kept_edges = ref [] in
  for e = n_edges g - 1 downto 0 do
    if keep.(g.srcs.(e)) && keep.(g.dsts.(e)) then kept_edges := e :: !kept_edges
  done;
  let edge_of_sub = Array.of_list !kept_edges in
  let pairs =
    List.map
      (fun e -> (sub_of_node.(g.srcs.(e)), sub_of_node.(g.dsts.(e))))
      !kept_edges
  in
  (of_edges ~nodes:(Array.length node_of_sub) pairs, node_of_sub, edge_of_sub)

let pp ppf g =
  Format.fprintf ppf "digraph(%d nodes, %d edges)" g.n (n_edges g)
