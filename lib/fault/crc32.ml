(* CRC-32 (IEEE 802.3, the zlib/PNG polynomial 0xEDB88320), table
   driven. Pure OCaml so the io layer needs no C stubs; at checkpoint
   sizes (KBs to a few MBs) throughput is far from mattering. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update: range outside the string";
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let string s = update 0 s 0 (String.length s)
let to_hex crc = Printf.sprintf "%08x" (crc land 0xFFFFFFFF)

(* strict inverse of [to_hex]: lowercase only, so a checksum field has
   exactly one valid encoding and any flipped bit in it is detectable *)
let of_hex s =
  if String.length s <> 8 then None
  else
    let rec go i acc =
      if i = 8 then Some acc
      else
        match s.[i] with
        | '0' .. '9' as c -> go (i + 1) ((acc lsl 4) lor (Char.code c - 48))
        | 'a' .. 'f' as c -> go (i + 1) ((acc lsl 4) lor (Char.code c - 87))
        | _ -> None
    in
    go 0 0
