(** Simplified General Threshold Model (paper Section V-A, Theorem 1).

    Each node draws a uniform threshold per object; with active parent
    set [S], the joint influence on [v] is
    [p_v(S) = 1 - prod_{u in S} (1 - p_uv)], and [v] activates at the
    first step where the influence exceeds its threshold. Theorem 1
    states this process is distributionally identical to the ICM with
    the same edge weights — the property tests exercise exactly that. *)

val run :
  Iflow_stats.Rng.t -> Iflow_core.Icm.t -> sources:int list -> bool array
(** One SGTM cascade; returns the final active-node set. *)

val influence : Iflow_core.Icm.t -> node:int -> active:bool array -> float
(** [p_v(S)]: joint influence of the currently active in-neighbours. *)

val activation_frequency :
  Iflow_stats.Rng.t -> Iflow_core.Icm.t -> sources:int list -> runs:int ->
  float array
(** Per-node frequency of ending active over [runs] simulations —
    comparable against the same statistic from ICM cascades. *)
