(** A fixed-size pool of OCaml 5 domains for running independent tasks.

    [run] is fork–join: tasks are struck round-robin across at most
    [size] domains (one of which is the calling domain) and results are
    returned in task order. Task assignment is a pure function of the
    task index, never of timing, so any state a task owns (chain, RNG)
    is touched by exactly one domain per [run], and results are
    bit-for-bit identical whatever the pool size — parallelism changes
    wall-clock only.

    Domains are spawned per [run] call. OCaml domains are cheap
    (hundreds of microseconds) relative to the sampling rounds they
    carry here; a persistent worker pool would buy little and cost a
    shutdown protocol. *)

type t

val create : ?size:int -> unit -> t
(** Default size is [Domain.recommended_domain_count ()]. Raises
    [Invalid_argument] when [size < 1]. *)

val size : t -> int

val run : t -> ('a -> 'b) -> 'a array -> 'b array
(** [run t f tasks] applies [f] to every task, in parallel across the
    pool, and returns results in task order. If any task raises, the
    first (lowest-index) exception is re-raised after all domains have
    been joined — no domain is leaked. *)

val run_results : t -> ('a -> 'b) -> 'a array -> ('b, exn) result array
(** Like {!run}, but a raising task yields [Error exn] in its slot
    instead of failing the whole run — both on the calling domain and on
    spawned workers. A task failure never tears down a domain mid-run:
    every task is still attempted, and callers decide whether partial
    results are enough. *)
