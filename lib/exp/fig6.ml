open Iflow_core
open Iflow_learn
module Rng = Iflow_stats.Rng
module Beta = Iflow_stats.Dist.Beta

type row = {
  parents : int;
  objects : int;
  unique_characteristics : int;
  goyal_seconds : float;
  ours_core_seconds : float;
  ours_with_summary_seconds : float;
  ours_amortised_seconds : float;
}

(* Wall-time a thunk on the monotonic clock, repeating until the
   measurement is long enough to trust, and return seconds per call. *)
let time_per_call f = Iflow_obs.Clock.time_per_call ~max_reps:1_000_000 f

let generate_setting rng ~parents ~objects =
  let probs = Array.init parents (fun _ -> 0.1 +. (0.8 *. Rng.uniform rng)) in
  let g, icm, sink = Generator.in_star_icm ~probs in
  let traces =
    List.init objects (fun _ ->
        let sources =
          List.filter (fun _ -> Rng.bool rng) (List.init parents (fun j -> j))
        in
        let sources =
          if sources = [] then [ Rng.int rng parents ] else sources
        in
        Cascade.run_trace rng icm ~sources)
  in
  (g, traces, sink)

let measure rng ~parents ~objects =
  let g, traces, sink = generate_setting rng ~parents ~objects in
  let summary = Summary.build g traces ~sink in
  let d = Array.length (Summary.parents_union summary) in
  let kappa = Array.make (max d 1) 0.5 in
  let goyal_seconds = time_per_call (fun () -> ignore (Goyal.train summary)) in
  let ours_core_seconds =
    time_per_call (fun () ->
        ignore
          (Joint_bayes.log_posterior
             ~prior:(fun _ -> Beta.uniform)
             ~ambiguous_only:false summary kappa))
  in
  let summarise_seconds =
    time_per_call (fun () -> ignore (Summary.build g traces ~sink))
  in
  let k = 1000.0 in
  {
    parents;
    objects;
    unique_characteristics = Summary.n_entries summary;
    goyal_seconds;
    ours_core_seconds;
    ours_with_summary_seconds = summarise_seconds +. ours_core_seconds;
    ours_amortised_seconds = (summarise_seconds /. k) +. ours_core_seconds;
  }

let run scale rng =
  let settings =
    Scale.pick scale
      ~quick:[ (3, 200); (5, 1000); (8, 5000); (10, 20000) ]
      ~full:[ (3, 1000); (5, 10000); (8, 50000); (10, 200000); (12, 500000) ]
  in
  List.map (fun (parents, objects) -> measure rng ~parents ~objects) settings

let report scale rng ppf =
  let rows = run scale rng in
  Format.fprintf ppf
    "@[<v>== Fig 6: per-sample cost, ours vs Goyal (seconds) ==@,";
  Format.fprintf ppf "%8s %8s %6s %12s %12s %14s %14s@." "parents" "objects"
    "omega" "goyal" "ours-core" "ours+summary" "ours-amortised";
  List.iter
    (fun r ->
      Format.fprintf ppf "%8d %8d %6d %12.3e %12.3e %14.3e %14.3e@." r.parents
        r.objects r.unique_characteristics r.goyal_seconds r.ours_core_seconds
        r.ours_with_summary_seconds r.ours_amortised_seconds)
    rows;
  Format.fprintf ppf "@]";
  rows
