lib/learn/saito.ml: Array Float Hashtbl Iflow_core Iflow_graph Iflow_stats List Option Trainer
